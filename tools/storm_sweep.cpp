// storm_sweep: a crash-safe storm-sweep runner around
// analysis::run_storm_experiment_resilient.
//
// This is the process the supervisor harness (tools/sweep_supervisor.cpp)
// babysits, and the smallest complete demonstration of the durability stack:
//
//   * a CheckpointStore under --ckpt-dir persists generation files with the
//     temp + fsync + rename idiom, rotates them past --keep, and quarantines
//     corrupt ones on load;
//   * --ckpt-every (or $PR_CKPT_EVERY) arms the executor's monitor-thread
//     auto-checkpointing, so a SIGKILL'd or aborted run loses at most one
//     cadence interval of work;
//   * a sim::SignalGuard turns SIGINT/SIGTERM into a cooperative drain: the
//     sweep truncates to its canonical prefix, a final generation is
//     persisted, and the process exits sim::kInterruptedExitStatus (75) so a
//     supervisor can tell "resume me" from a crash;
//   * --resume-from-latest reloads the newest good generation and continues
//     the sweep to results BIT-IDENTICAL to an uninterrupted run -- the
//     state_digest printed at the end is the proof handle the tests compare
//     across kill/resume sequences.
//
// PR_FAULT_* variables (sim/fault_plan.hpp) inject crashes and stalls into
// the run, PR_SWEEP_THREADS pins the pool, and --emit-json writes a small
// machine-readable summary (atomically, like every other artifact).
//
//   $ storm_sweep --scenarios 20000 --threads 4 --ckpt-dir /tmp/store
//                 --ckpt-every 1000u --resume-from-latest
#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <limits>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/checkpoint.hpp"
#include "analysis/checkpoint_store.hpp"
#include "analysis/protocols.hpp"
#include "analysis/storm.hpp"
#include "analysis/traffic.hpp"
#include "net/storm_model.hpp"
#include "sim/fault_plan.hpp"
#include "sim/parallel_sweep.hpp"
#include "sim/run_control.hpp"
#include "sim/signal_guard.hpp"
#include "topo/topologies.hpp"
#include "traffic/capacity.hpp"
#include "traffic/demand.hpp"
#include "util/atomic_file.hpp"

namespace {

using namespace pr;

constexpr double kTotalDemandPps = 1e6;
constexpr double kBaselineUtilization = 0.6;
constexpr double kOutageProbability = 0.02;

struct Args {
  std::size_t scenarios = 20000;
  std::size_t threads = 0;  // 0 = PR_SWEEP_THREADS / hardware
  std::uint64_t seed = 0x5708;
  std::size_t top_k = 10;
  std::string topology = "geant";
  std::string ckpt_dir;
  std::string ckpt_every;  // empty = $PR_CKPT_EVERY
  std::size_t keep = 4;
  bool resume_from_latest = false;
  std::string emit_json;
};

[[noreturn]] void usage_error(const std::string& detail) {
  std::cerr << "storm_sweep: " << detail << "\n"
            << "usage: storm_sweep [--scenarios N] [--threads N] [--seed N]\n"
            << "                   [--top-k N] [--topology abilene|geant]\n"
            << "                   [--ckpt-dir DIR] [--ckpt-every SPEC] [--keep N]\n"
            << "                   [--resume-from-latest] [--emit-json PATH]\n";
  std::exit(1);
}

std::size_t count_arg(const char* value, const char* flag, std::size_t max_value) {
  std::size_t out = 0;
  if (!sim::parse_count_arg(value, max_value, out)) {
    usage_error(std::string(flag) + " expects a decimal in [0, " +
                std::to_string(max_value) + "], got '" + value + "'");
  }
  return out;
}

Args parse_args(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string_view flag = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) usage_error(std::string(flag) + " expects a value");
      return argv[++i];
    };
    if (flag == "--scenarios") {
      args.scenarios = count_arg(value(), "--scenarios", 10000000);
      if (args.scenarios == 0) usage_error("--scenarios must be > 0");
    } else if (flag == "--threads") {
      args.threads = count_arg(value(), "--threads", sim::kMaxSweepThreads);
    } else if (flag == "--seed") {
      args.seed = static_cast<std::uint64_t>(
          count_arg(value(), "--seed", std::numeric_limits<std::size_t>::max() - 1));
    } else if (flag == "--top-k") {
      args.top_k = count_arg(value(), "--top-k", 100);
      if (args.top_k == 0) usage_error("--top-k must be > 0");
    } else if (flag == "--topology") {
      args.topology = value();
      if (args.topology != "abilene" && args.topology != "geant") {
        usage_error("--topology must be 'abilene' or 'geant', got '" +
                    args.topology + "'");
      }
    } else if (flag == "--ckpt-dir") {
      args.ckpt_dir = value();
    } else if (flag == "--ckpt-every") {
      args.ckpt_every = value();
    } else if (flag == "--keep") {
      args.keep = count_arg(value(), "--keep", 100000);
      if (args.keep == 0) usage_error("--keep must be >= 1");
    } else if (flag == "--resume-from-latest") {
      args.resume_from_latest = true;
    } else if (flag == "--emit-json") {
      args.emit_json = value();
    } else {
      usage_error("unknown flag '" + std::string(flag) + "'");
    }
  }
  if (args.resume_from_latest && args.ckpt_dir.empty()) {
    usage_error("--resume-from-latest requires --ckpt-dir");
  }
  if (!args.ckpt_every.empty() && args.ckpt_dir.empty()) {
    usage_error("--ckpt-every requires --ckpt-dir");
  }
  return args;
}

/// Same sizing rule as the benches: the busiest pristine SPF interface runs
/// at the baseline utilization, so the plan is a pure function of the
/// topology and demand -- a resumed incarnation rebuilds it bit-identically.
traffic::CapacityPlan size_plan(const graph::Graph& g,
                                const analysis::ProtocolSuite& suite,
                                const traffic::TrafficMatrix& demand) {
  std::vector<sim::FlowSpec> flows;
  std::vector<double> demands;
  analysis::collect_demand_flows(demand, flows, demands);
  net::Network network(g);
  const auto spf = suite.spf().make(network);
  traffic::LoadMap load;
  sim::BatchResult batch;
  sim::route_batch(network, *spf, flows, demands, load, sim::TraceMode::kStats, batch);
  double peak = 0.0;
  for (const double v : load.darts()) peak = std::max(peak, v);
  return traffic::CapacityPlan::uniform(g, peak / kBaselineUtilization);
}

std::string hex_digest(std::uint64_t digest) {
  std::ostringstream out;
  out << std::hex << digest;
  return out.str();
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse_args(argc, argv);

  sim::CheckpointCadence cadence;
  sim::FaultPlan faults;
  try {
    cadence = args.ckpt_every.empty()
                  ? sim::CheckpointCadence::from_env()
                  : sim::CheckpointCadence::parse(args.ckpt_every, "--ckpt-every");
    faults = sim::FaultPlan::from_env();
  } catch (const std::invalid_argument& e) {
    std::cerr << "storm_sweep: " << e.what() << "\n";
    return 1;
  }

  const graph::Graph g = args.topology == "abilene" ? topo::abilene() : topo::geant();
  const analysis::ProtocolSuite suite(g);
  const std::vector<analysis::NamedFactory> protocols = {suite.pr(), suite.lfa(),
                                                         suite.reconvergence()};
  const traffic::TrafficMatrix demand =
      traffic::gravity_demand(g, kTotalDemandPps, traffic::GravityMass::kDegree);
  const traffic::CapacityPlan plan = size_plan(g, suite, demand);
  const net::SrlgCatalog catalog = net::geographic_srlgs(g, 2);
  const net::IndependentOutages model =
      net::IndependentOutages::uniform(catalog, kOutageProbability);

  analysis::StormSweepConfig config;
  config.scenarios = args.scenarios;
  config.seed = args.seed;
  config.top_k = args.top_k;

  const std::size_t threads =
      args.threads != 0 ? args.threads : sim::threads_from_env(0);
  sim::SweepExecutor executor(threads);

  sim::RunControl control;
  if (!faults.empty()) {
    control.set_fault_plan(&faults);
    std::cerr << "storm_sweep: fault plan: " << faults.describe() << "\n";
  }
  // Installed before the store is opened: a SIGTERM during a slow resume scan
  // still cancels the sweep before it claims a single unit.
  sim::SignalGuard guard(control);

  std::optional<analysis::CheckpointStore> store;
  analysis::StormRunOptions options;
  options.control = &control;
  std::string resume_blob;  // must outlive the run (options holds a view)
  std::uint64_t resumed_generation = 0;
  try {
    if (!args.ckpt_dir.empty()) {
      store.emplace(args.ckpt_dir,
                    analysis::CheckpointStoreOptions{.keep_generations = args.keep});
      if (args.resume_from_latest) {
        if (auto loaded = store->load_latest()) {
          resumed_generation = loaded->generation;
          resume_blob = std::move(loaded->blob);
          options.resume_from = resume_blob;
          std::cerr << "storm_sweep: resuming from generation "
                    << resumed_generation << "\n";
        } else {
          std::cerr << "storm_sweep: no good generation to resume from; "
                       "starting fresh\n";
        }
        if (store->quarantined() > 0) {
          std::cerr << "storm_sweep: quarantined " << store->quarantined()
                    << " corrupt generation(s)\n";
        }
      }
      if (cadence.any()) {
        options.checkpoint_cadence = cadence;
        options.persist_checkpoint = [&store](std::size_t completed,
                                              std::string&& blob) {
          const std::uint64_t gen = store->persist(blob);
          std::cerr << "storm_sweep: checkpoint generation " << gen << " at "
                    << completed << " scenarios\n";
        };
      }
    }

    const analysis::StormRunResult run = run_storm_experiment_resilient(
        g, demand, plan, model, protocols, config, executor, options);

    // Persist the final state as its own generation: a graceful stop (signal,
    // deadline, budget) must leave the newest generation AT the stop cursor,
    // not one cadence interval behind it.
    std::uint64_t final_generation = 0;
    if (store.has_value() && !run.checkpoint.empty()) {
      final_generation = store->persist(run.checkpoint);
    }
    const std::uint64_t digest =
        run.checkpoint.empty() ? 0 : analysis::checkpoint_digest(run.checkpoint);

    std::cout << "storm_sweep: topology=" << args.topology
              << " scenarios=" << args.scenarios
              << " threads=" << executor.thread_count() << " seed=" << args.seed
              << "\n"
              << "storm_sweep: stop=" << to_string(run.outcome.stop_reason)
              << " completed=" << run.completed_scenarios
              << " resumed=" << (run.resumed ? 1 : 0)
              << " auto_checkpoints=" << run.outcome.auto_checkpoints
              << " checkpoint_failures=" << run.outcome.checkpoint_failures
              << "\n"
              << "storm_sweep: final_generation=" << final_generation
              << " state_digest=" << hex_digest(digest) << "\n";
    if (!run.checkpoint_error.empty()) {
      std::cerr << "storm_sweep: final checkpoint failed: "
                << run.checkpoint_error << "\n";
    }

    if (!args.emit_json.empty()) {
      std::ostringstream json;
      json << "{\n  \"tool\": \"storm_sweep\",\n  \"topology\": \""
           << args.topology << "\",\n  \"scenarios\": " << args.scenarios
           << ",\n  \"threads\": " << executor.thread_count()
           << ",\n  \"seed\": " << args.seed << ",\n  \"stop_reason\": \""
           << to_string(run.outcome.stop_reason)
           << "\",\n  \"completed_scenarios\": " << run.completed_scenarios
           << ",\n  \"resumed\": " << (run.resumed ? "true" : "false")
           << ",\n  \"auto_checkpoints\": " << run.outcome.auto_checkpoints
           << ",\n  \"checkpoint_failures\": " << run.outcome.checkpoint_failures
           << ",\n  \"final_generation\": " << final_generation
           << ",\n  \"state_digest\": \"" << hex_digest(digest) << "\"\n}\n";
      util::atomic_write_file(args.emit_json, json.str());
    }

    if (guard.triggered()) {
      std::cerr << "storm_sweep: interrupted by signal " << guard.signal_number()
                << "; state saved, exit " << sim::kInterruptedExitStatus << "\n";
      return guard.exit_status();
    }
    if (!run.complete()) {
      // Stopped without a signal (deadline, budget, contained error): state
      // is saved, but the job is not done -- a distinct status so callers do
      // not mistake a truncated run for success.  The supervisor relaunches
      // on this and the resume converges.
      std::cerr << "storm_sweep: stopped early (" << to_string(run.outcome.stop_reason)
                << "), exit 2\n";
      return 2;
    }
    if (!run.checkpoint_error.empty()) return 1;
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "storm_sweep: fatal: " << e.what() << "\n";
    return 1;
  }
}
