#!/usr/bin/env python3
"""Bench regression gate: a fresh bench run vs its committed baseline.

Compares two BENCH_*.json documents of the same bench type and fails when any
tracked metric regresses more than --tolerance (default 0.20, the nightly
job's 20% budget) beyond its baseline counterpart.  Improvements are never an
error: faster runs simply pass, so a baseline captured on slow hardware stays
a valid floor on faster CI runners.

Tracked metrics per bench:
  * failure_storms -- best scenarios/sec across the thread curve;
  * backbone       -- per-scale scenarios/sec, matched by scale name.

Both benches additionally gate on telemetry quality metrics when (and only
when) the baseline carries a "telemetry" section: cache_hit_rate and
repair_fraction are higher-is-better ratios whose decay signals an
effectiveness regression (e.g. a cache key change silently disabling reuse)
that raw throughput on fast hardware can mask.  Baselines captured before the
telemetry schema existed simply skip those gates.

Every verdict line names the metric and says by how much it moved; the
failing lines are the complete list of what regressed.

Usage: check_bench_regression.py BASELINE CURRENT [--tolerance 0.2]
"""

import argparse
import json
import sys

# Telemetry ratios gated as higher-is-better (fractional drop vs baseline).
TELEMETRY_METRICS = ("cache_hit_rate", "repair_fraction")


def load(path):
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        raise SystemExit(f"check_bench_regression: cannot read {path}: {err}")


def throughputs(doc, path):
    """Extracts {metric name: scenarios/sec} from a bench document.

    Tolerant of schema growth in either direction: entries missing the
    throughput key (e.g. a baseline captured before a bench gained new
    sections or columns) are skipped rather than KeyError'd, and unknown
    extra keys are ignored.  Only a document with NO usable throughput
    figure at all is an error.
    """
    bench = doc.get("bench")
    if bench == "failure_storms":
        curve = doc.get("threads") or []
        rates = [t["scenarios_per_second"] for t in curve
                 if isinstance(t, dict) and "scenarios_per_second" in t]
        if not rates:
            raise SystemExit(
                f"check_bench_regression: {path} has no thread-curve "
                f"scenarios_per_second figures")
        return {"best_threads": max(rates)}
    if bench == "backbone":
        scales = doc.get("scales") or []
        out = {s["name"]: s["scenarios_per_second"] for s in scales
               if isinstance(s, dict)
               and "name" in s and "scenarios_per_second" in s}
        if not out:
            raise SystemExit(
                f"check_bench_regression: {path} has no per-scale "
                f"scenarios_per_second figures")
        return out
    raise SystemExit(
        f"check_bench_regression: no throughput metric registered for bench "
        f"'{bench}' ({path})")


def telemetry_metrics(doc):
    """Extracts {metric name: ratio} from a document's telemetry section.

    Returns {} when the document has no telemetry section (pre-telemetry
    baseline) -- the caller skips those gates rather than failing, so the
    gate switches on automatically once a baseline with telemetry lands.
    """
    telemetry = doc.get("telemetry")
    if not isinstance(telemetry, dict):
        return {}
    out = {}
    for key in TELEMETRY_METRICS:
        value = telemetry.get(key)
        if isinstance(value, (int, float)):
            out[f"telemetry.{key}"] = float(value)
    return out


def compare(baseline_doc, current_doc, tolerance,
            baseline_path="<baseline>", current_path="<current>"):
    """Compares two parsed bench documents; returns a list of result rows.

    Each row is a dict:
      name      -- metric name ("best_threads", "isp-1024",
                   "telemetry.cache_hit_rate", ...)
      unit      -- "scenarios/s" or "ratio"
      baseline  -- baseline value
      current   -- current value, or None when missing from the current run
      floor     -- lowest passing current value
      drop      -- fractional decline vs baseline (negative = improved),
                   or None when current is missing
      ok        -- True when the metric passes

    Pure function of its inputs (aside from SystemExit on malformed
    documents), so tests can drive it on literal dicts.
    """
    if baseline_doc.get("bench") != current_doc.get("bench"):
        raise SystemExit("check_bench_regression: baseline and current are "
                         "different bench types")

    metric_sets = [
        ("scenarios/s", throughputs(baseline_doc, baseline_path),
         throughputs(current_doc, current_path)),
        ("ratio", telemetry_metrics(baseline_doc),
         telemetry_metrics(current_doc)),
    ]

    rows = []
    for unit, baseline, current in metric_sets:
        for name, base_value in sorted(baseline.items()):
            cur_value = current.get(name)
            floor = (1.0 - tolerance) * base_value
            if cur_value is None:
                rows.append({"name": name, "unit": unit,
                             "baseline": base_value, "current": None,
                             "floor": floor, "drop": None, "ok": False})
                continue
            drop = (1.0 - cur_value / base_value) if base_value > 0 else 0.0
            rows.append({"name": name, "unit": unit,
                         "baseline": base_value, "current": cur_value,
                         "floor": floor, "drop": drop,
                         "ok": cur_value >= floor})
    return rows


def format_row(row, tolerance):
    """One human-readable verdict line naming the metric and its movement."""
    if row["current"] is None:
        return (f"{row['name']}: baseline {row['baseline']:.4g} {row['unit']} "
                f"but metric is MISSING from the current run")
    direction = "down" if row["drop"] > 0 else "up"
    moved = abs(row["drop"]) * 100.0
    verdict = "ok" if row["ok"] else \
        f"REGRESSION ({moved:.1f}% drop exceeds the {tolerance * 100.0:.0f}% budget)"
    return (f"{row['name']}: baseline {row['baseline']:.4g} -> current "
            f"{row['current']:.4g} {row['unit']} ({direction} {moved:.1f}%, "
            f"floor {row['floor']:.4g}) {verdict}")


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--tolerance", type=float, default=0.20,
                        help="allowed fractional drop below baseline (default 0.20)")
    args = parser.parse_args(argv[1:])

    rows = compare(load(args.baseline), load(args.current), args.tolerance,
                   args.baseline, args.current)
    failed = False
    for row in rows:
        print(format_row(row, args.tolerance),
              file=sys.stderr if not row["ok"] else sys.stdout)
        failed = failed or not row["ok"]
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
