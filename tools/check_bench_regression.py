#!/usr/bin/env python3
"""Throughput regression gate: a fresh bench run vs its committed baseline.

Compares the scenarios/sec figures of two BENCH_*.json documents of the same
bench type and fails when any current figure drops more than --tolerance
(default 0.20, the nightly job's 20% budget) below its baseline counterpart.
Speedups are never an error: faster runs simply pass, so a baseline captured
on slow hardware stays a valid floor on faster CI runners.

Metrics per bench:
  * failure_storms -- best scenarios/sec across the thread curve;
  * backbone       -- per-scale scenarios/sec, matched by scale name.

Usage: check_bench_regression.py BASELINE CURRENT [--tolerance 0.2]
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        raise SystemExit(f"check_bench_regression: cannot read {path}: {err}")


def throughputs(doc, path):
    """Extracts {metric name: scenarios/sec} from a bench document.

    Tolerant of schema growth in either direction: entries missing the
    throughput key (e.g. a baseline captured before a bench gained new
    sections or columns) are skipped rather than KeyError'd, and unknown
    extra keys are ignored.  Only a document with NO usable throughput
    figure at all is an error.
    """
    bench = doc.get("bench")
    if bench == "failure_storms":
        curve = doc.get("threads") or []
        rates = [t["scenarios_per_second"] for t in curve
                 if isinstance(t, dict) and "scenarios_per_second" in t]
        if not rates:
            raise SystemExit(
                f"check_bench_regression: {path} has no thread-curve "
                f"scenarios_per_second figures")
        return {"best_threads": max(rates)}
    if bench == "backbone":
        scales = doc.get("scales") or []
        out = {s["name"]: s["scenarios_per_second"] for s in scales
               if isinstance(s, dict)
               and "name" in s and "scenarios_per_second" in s}
        if not out:
            raise SystemExit(
                f"check_bench_regression: {path} has no per-scale "
                f"scenarios_per_second figures")
        return out
    raise SystemExit(
        f"check_bench_regression: no throughput metric registered for bench "
        f"'{bench}' ({path})")


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--tolerance", type=float, default=0.20,
                        help="allowed fractional drop below baseline (default 0.20)")
    args = parser.parse_args(argv[1:])

    baseline_doc = load(args.baseline)
    current_doc = load(args.current)
    if baseline_doc.get("bench") != current_doc.get("bench"):
        raise SystemExit("check_bench_regression: baseline and current are "
                         "different bench types")

    baseline = throughputs(baseline_doc, args.baseline)
    current = throughputs(current_doc, args.current)

    failed = False
    for name, base_value in sorted(baseline.items()):
        cur_value = current.get(name)
        if cur_value is None:
            print(f"{name}: missing from current run", file=sys.stderr)
            failed = True
            continue
        floor = (1.0 - args.tolerance) * base_value
        verdict = "ok" if cur_value >= floor else "REGRESSION"
        ratio = cur_value / base_value if base_value > 0 else float("inf")
        print(f"{name}: baseline {base_value:.1f} -> current {cur_value:.1f} "
              f"scenarios/s ({ratio:.2f}x, floor {floor:.1f}) {verdict}")
        if cur_value < floor:
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
