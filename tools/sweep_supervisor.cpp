// sweep_supervisor: a supervised-resume harness for crash-safe sweeps.
//
// Launches a sweep command (typically tools/storm_sweep.cpp) as a child
// process and keeps it honest:
//
//   * a clean exit (0) ends the supervision successfully;
//   * sim::kInterruptedExitStatus (75) means the child drained gracefully
//     after a signal and persisted its state -- the supervisor STOPS and
//     propagates 75 (the operator asked the whole tree to stop, not just the
//     child);
//   * any other exit -- a non-zero status, a SIGKILL, a SIGABRT from
//     PR_FAULT_ABORT_UNIT -- is a crash: the supervisor relaunches the child
//     with --resume-from-latest appended (when not already present), up to
//     --max-restarts times.  Every persisted checkpoint generation is a
//     canonical prefix, so each incarnation makes forward progress and a
//     crash-looping sweep still converges to the bit-identical final state;
//   * a WEDGED child (alive but no longer persisting generations) is detected
//     out-of-process: with --store and --wedge-timeout-ms, the supervisor
//     watches the store directory for new generation files and SIGKILLs the
//     child when none appears within the timeout while it is still running --
//     then resumes it like any other crash.
//
// SIGINT/SIGTERM sent to the supervisor are forwarded to the child, which is
// expected to drain and exit 75.
//
//   $ sweep_supervisor --max-restarts 5 --wedge-timeout-ms 5000
//       --store /tmp/store -- ./storm_sweep --scenarios 20000
//       --ckpt-dir /tmp/store --ckpt-every 500u
#include <sys/types.h>
#include <sys/wait.h>

#include <csignal>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "sim/parallel_sweep.hpp"
#include "sim/signal_guard.hpp"

namespace {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

struct Args {
  std::size_t max_restarts = 5;
  std::size_t wedge_timeout_ms = 0;  // 0 = wedge detection off
  std::size_t poll_ms = 20;
  std::string store;
  std::vector<std::string> child;  // everything after "--"
};

[[noreturn]] void usage_error(const std::string& detail) {
  std::cerr << "sweep_supervisor: " << detail << "\n"
            << "usage: sweep_supervisor [--max-restarts N] [--wedge-timeout-ms N]\n"
            << "                        [--poll-ms N] [--store DIR] -- CMD [ARG...]\n";
  std::exit(1);
}

std::size_t count_arg(const char* value, const char* flag, std::size_t max_value) {
  std::size_t out = 0;
  if (!pr::sim::parse_count_arg(value, max_value, out)) {
    usage_error(std::string(flag) + " expects a decimal in [0, " +
                std::to_string(max_value) + "], got '" + value + "'");
  }
  return out;
}

Args parse_args(int argc, char** argv) {
  Args args;
  int i = 1;
  for (; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--") {
      ++i;
      break;
    }
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) usage_error(flag + " expects a value");
      return argv[++i];
    };
    if (flag == "--max-restarts") {
      args.max_restarts = count_arg(value(), "--max-restarts", 100000);
    } else if (flag == "--wedge-timeout-ms") {
      args.wedge_timeout_ms = count_arg(value(), "--wedge-timeout-ms", 86400000);
    } else if (flag == "--poll-ms") {
      args.poll_ms = count_arg(value(), "--poll-ms", 60000);
      if (args.poll_ms == 0) usage_error("--poll-ms must be > 0");
    } else if (flag == "--store") {
      args.store = value();
    } else {
      usage_error("unknown flag '" + flag + "' (child command goes after --)");
    }
  }
  for (; i < argc; ++i) args.child.emplace_back(argv[i]);
  if (args.child.empty()) usage_error("no child command given (after --)");
  if (args.wedge_timeout_ms != 0 && args.store.empty()) {
    usage_error("--wedge-timeout-ms requires --store (the generation files ARE "
                "the heartbeat)");
  }
  return args;
}

// Signal forwarding: the handler only reads/writes lock-free atomics and
// calls kill(), both async-signal-safe.  Forwarding rather than handling --
// the CHILD owns graceful drain; the supervisor just relays the request.
std::atomic<pid_t> g_child_pid{0};
std::atomic<int> g_forwarded{0};

void forward_signal(int signo) {
  g_forwarded.store(signo, std::memory_order_relaxed);
  const pid_t child = g_child_pid.load(std::memory_order_relaxed);
  if (child > 0) ::kill(child, signo);
}

/// Newest generation number in the store directory ("ckpt-<digits>.prckpt"),
/// 0 when none.  A fresh scan per poll: the supervisor deliberately shares no
/// state with the child but the filesystem.
std::uint64_t newest_generation(const std::string& store) {
  std::uint64_t newest = 0;
  std::error_code ec;
  fs::directory_iterator it(store, ec);
  if (ec) return 0;
  for (const fs::directory_entry& entry : it) {
    const std::string name = entry.path().filename().string();
    constexpr std::string_view prefix = "ckpt-";
    constexpr std::string_view suffix = ".prckpt";
    if (name.size() <= prefix.size() + suffix.size()) continue;
    if (name.compare(0, prefix.size(), prefix) != 0) continue;
    if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
      continue;
    }
    const std::string digits =
        name.substr(prefix.size(), name.size() - prefix.size() - suffix.size());
    if (digits.find_first_not_of("0123456789") != std::string::npos) continue;
    newest = std::max(
        newest, static_cast<std::uint64_t>(std::strtoull(digits.c_str(), nullptr, 10)));
  }
  return newest;
}

pid_t spawn(const std::vector<std::string>& command) {
  std::vector<char*> argv;
  argv.reserve(command.size() + 1);
  for (const std::string& arg : command) argv.push_back(const_cast<char*>(arg.c_str()));
  argv.push_back(nullptr);
  const pid_t pid = ::fork();
  if (pid == 0) {
    ::execvp(argv[0], argv.data());
    // Only reached when exec failed; 127 is the shell's "command not found".
    std::cerr << "sweep_supervisor: exec '" << command[0]
              << "' failed: " << std::strerror(errno) << "\n";
    ::_exit(127);
  }
  if (pid < 0) {
    std::cerr << "sweep_supervisor: fork failed: " << std::strerror(errno) << "\n";
    std::exit(1);
  }
  return pid;
}

std::string describe_exit(int status) {
  if (WIFEXITED(status)) {
    return "exit status " + std::to_string(WEXITSTATUS(status));
  }
  if (WIFSIGNALED(status)) {
    return std::string("killed by signal ") + std::to_string(WTERMSIG(status));
  }
  return "unknown wait status " + std::to_string(status);
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse_args(argc, argv);

  struct sigaction action {};
  action.sa_handler = forward_signal;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;  // no SA_RESTART: waitpid polling tolerates EINTR
  ::sigaction(SIGINT, &action, nullptr);
  ::sigaction(SIGTERM, &action, nullptr);

  std::vector<std::string> command = args.child;
  std::size_t restarts = 0;
  while (true) {
    const pid_t child = spawn(command);
    g_child_pid.store(child, std::memory_order_relaxed);
    // A signal delivered between spawn attempts must still reach the new
    // child -- same handoff rule as SignalGuard::rebind.
    if (const int signo = g_forwarded.load(std::memory_order_relaxed)) {
      ::kill(child, signo);
    }

    std::uint64_t last_generation =
        args.wedge_timeout_ms != 0 ? newest_generation(args.store) : 0;
    Clock::time_point last_progress = Clock::now();
    bool wedge_killed = false;
    int status = 0;
    while (true) {
      const pid_t waited = ::waitpid(child, &status, WNOHANG);
      if (waited == child) break;
      if (waited < 0 && errno != EINTR) {
        std::cerr << "sweep_supervisor: waitpid failed: " << std::strerror(errno)
                  << "\n";
        return 1;
      }
      if (args.wedge_timeout_ms != 0 && !wedge_killed) {
        const std::uint64_t now_generation = newest_generation(args.store);
        if (now_generation != last_generation) {
          last_generation = now_generation;
          last_progress = Clock::now();
        } else if (Clock::now() - last_progress >
                   std::chrono::milliseconds(args.wedge_timeout_ms)) {
          std::cerr << "sweep_supervisor: child " << child
                    << " wedged (no new generation in " << args.wedge_timeout_ms
                    << " ms), killing\n";
          ::kill(child, SIGKILL);
          wedge_killed = true;  // keep waiting for the corpse, kill only once
        }
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(args.poll_ms));
    }
    g_child_pid.store(0, std::memory_order_relaxed);

    if (WIFEXITED(status) && WEXITSTATUS(status) == 0) {
      std::cerr << "sweep_supervisor: child completed after " << restarts
                << " restart(s)\n";
      return 0;
    }
    if (WIFEXITED(status) && WEXITSTATUS(status) == pr::sim::kInterruptedExitStatus) {
      std::cerr << "sweep_supervisor: child interrupted gracefully, state "
                   "saved; stopping\n";
      return pr::sim::kInterruptedExitStatus;
    }
    if (restarts >= args.max_restarts) {
      std::cerr << "sweep_supervisor: giving up after " << restarts
                << " restart(s); last child " << describe_exit(status) << "\n";
      return 2;
    }
    ++restarts;
    // First relaunch: make sure the child resumes instead of starting over.
    bool has_resume = false;
    for (const std::string& arg : command) {
      if (arg == "--resume-from-latest") has_resume = true;
    }
    if (!has_resume) command.emplace_back("--resume-from-latest");
    std::cerr << "sweep_supervisor: restart " << restarts << "/"
              << args.max_restarts << " after " << describe_exit(status)
              << (wedge_killed ? " (wedge kill)" : "") << "\n";
  }
}
