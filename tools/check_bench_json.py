#!/usr/bin/env python3
"""Validate emitted BENCH_*.json files.

Replaces the inline grep checks that used to live in .github/workflows/ci.yml:
every file must parse as JSON, carry a "bench" field, and -- for benches with
a schema registered below -- contain every required key somewhere in the
document (nested objects and arrays included).  Presence-of-key is the right
strength for this gate: the benches assert their own numeric invariants
(bit-identity, oracle convergence) and exit non-zero when they fail, so CI
only needs to catch a bench silently dropping a reporting column.

Usage: check_bench_json.py [FILE...]
Defaults to every BENCH_*.json in the current directory; fails when none
exist, when a file does not parse, or when a required key is missing.
"""

import glob
import json
import sys

REQUIRED_KEYS = {
    "route_batch": [
        "topology",
        "results",
        "batch_stats_ns_per_flow",
        "batch_full_trace_ns_per_flow",
        "speedup_stats_vs_per_packet",
    ],
    "parallel_sweep": [
        "threads",
        "scenarios",
        "serial_ms",
        "speedup_vs_serial",
    ],
    "spf_incremental": [
        "topologies",
        "incremental_ms",
        "full_ms",
        "geomean_speedup_single_geant_or_larger",
    ],
    "traffic_sweep": [
        "topologies",
        "ms_incremental",
        "speedup_incremental",
        "affected_flow_fraction",
        "protocols",
        # Telemetry section (obs counters aggregated over the sweep executor).
        "telemetry",
        "cache_hit_rate",
        "counters",
        "per_worker",
        "utilization",
    ],
    "backbone": [
        "scales",
        "repair_speedup",
        "scenarios_per_second",
        "peak_rss_mb",
        # Per-scale attribution + telemetry section.
        "phase_ms",
        "telemetry",
        "cache_hit_rate",
        "repair_fraction",
        "counters",
        "per_worker",
        "utilization",
    ],
    "failure_storms": [
        "scenarios",
        "catalog_groups",
        "disconnecting_groups",
        "oracle",
        "sampled_mean_max_utilization",
        "threads",
        "scenarios_per_second",
        "bit_identical_across_threads",
        "protocols",
        "utilization_quantiles",
        "stretch_quantiles",
        "worst",
        # Resilience section (deadline + checkpoint/resume leg).
        "resilience",
        "stop_reason",
        "completed_units",
        "resumed",
        "bit_identical_after_resume",
        "peak_rss_mb",
        # Telemetry section (obs counters, overhead probe, bit-identity).
        "telemetry",
        "cache_hit_rate",
        "repair_fraction",
        "counters",
        "per_worker",
        "utilization",
        "telemetry_overhead_fraction",
        "telemetry_bit_identical",
    ],
}


def collect_keys(node, out):
    if isinstance(node, dict):
        for key, value in node.items():
            out.add(key)
            collect_keys(value, out)
    elif isinstance(node, list):
        for value in node:
            collect_keys(value, out)


def check(path):
    """Returns a list of problems with `path` (empty when it passes)."""
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        return [f"unreadable or invalid JSON: {err}"]

    bench = doc.get("bench") if isinstance(doc, dict) else None
    if not isinstance(bench, str):
        return ['missing or non-string "bench" field']

    required = REQUIRED_KEYS.get(bench)
    if required is None:
        print(f"{path}: bench '{bench}' has no registered schema; parse-checked only")
        return []

    keys = set()
    collect_keys(doc, keys)
    return [f'missing required key "{k}" (bench "{bench}")'
            for k in required if k not in keys]


def main(argv):
    files = argv[1:] or sorted(glob.glob("BENCH_*.json"))
    if not files:
        print("check_bench_json: no BENCH_*.json files found", file=sys.stderr)
        return 1

    failed = False
    for path in files:
        problems = check(path)
        if problems:
            failed = True
            for problem in problems:
                print(f"{path}: {problem}", file=sys.stderr)
        else:
            print(f"{path}: ok")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
