#!/usr/bin/env python3
"""Unit tests for the bench gate tools (run by ctest as bench_tools_py_test).

Drives check_bench_regression.compare() and check_bench_json.check() on
literal documents -- no bench binaries required -- so the gate logic itself
is covered by tier-1 tests rather than only exercised in the nightly job.
"""

import json
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import check_bench_json
import check_bench_regression


def storms_doc(best=100.0, hit_rate=0.9, repair=0.8, telemetry=True):
    doc = {
        "bench": "failure_storms",
        "threads": [{"threads": 1, "scenarios_per_second": best / 2},
                    {"threads": 2, "scenarios_per_second": best}],
    }
    if telemetry:
        doc["telemetry"] = {"cache_hit_rate": hit_rate,
                            "repair_fraction": repair}
    return doc


class CompareTest(unittest.TestCase):
    def rows_by_name(self, rows):
        return {row["name"]: row for row in rows}

    def test_identical_docs_pass(self):
        rows = check_bench_regression.compare(storms_doc(), storms_doc(), 0.2)
        self.assertTrue(rows)
        self.assertTrue(all(row["ok"] for row in rows))

    def test_throughput_drop_beyond_tolerance_fails_and_names_metric(self):
        rows = check_bench_regression.compare(
            storms_doc(best=100.0), storms_doc(best=70.0), 0.2)
        row = self.rows_by_name(rows)["best_threads"]
        self.assertFalse(row["ok"])
        self.assertAlmostEqual(row["drop"], 0.30)
        line = check_bench_regression.format_row(row, 0.2)
        self.assertIn("best_threads", line)
        self.assertIn("30.0%", line)
        self.assertIn("REGRESSION", line)

    def test_throughput_drop_within_tolerance_passes(self):
        rows = check_bench_regression.compare(
            storms_doc(best=100.0), storms_doc(best=85.0), 0.2)
        self.assertTrue(self.rows_by_name(rows)["best_threads"]["ok"])

    def test_speedup_is_never_an_error(self):
        rows = check_bench_regression.compare(
            storms_doc(best=100.0, hit_rate=0.5), storms_doc(best=250.0), 0.2)
        self.assertTrue(all(row["ok"] for row in rows))

    def test_telemetry_hit_rate_decay_fails(self):
        rows = check_bench_regression.compare(
            storms_doc(hit_rate=0.9), storms_doc(hit_rate=0.4), 0.2)
        row = self.rows_by_name(rows)["telemetry.cache_hit_rate"]
        self.assertFalse(row["ok"])
        self.assertIn("telemetry.cache_hit_rate",
                      check_bench_regression.format_row(row, 0.2))

    def test_pre_telemetry_baseline_skips_telemetry_gates(self):
        rows = check_bench_regression.compare(
            storms_doc(telemetry=False), storms_doc(), 0.2)
        names = set(self.rows_by_name(rows))
        self.assertEqual(names, {"best_threads"})

    def test_telemetry_missing_from_current_fails(self):
        rows = check_bench_regression.compare(
            storms_doc(), storms_doc(telemetry=False), 0.2)
        row = self.rows_by_name(rows)["telemetry.cache_hit_rate"]
        self.assertFalse(row["ok"])
        self.assertIsNone(row["current"])
        self.assertIn("MISSING", check_bench_regression.format_row(row, 0.2))

    def test_backbone_scales_matched_by_name(self):
        def backbone(small, large):
            return {"bench": "backbone",
                    "scales": [
                        {"name": "isp-256", "scenarios_per_second": small},
                        {"name": "isp-1024", "scenarios_per_second": large}],
                    "telemetry": {"cache_hit_rate": 0.7,
                                  "repair_fraction": 0.9}}
        rows = check_bench_regression.compare(
            backbone(1000.0, 100.0), backbone(1000.0, 50.0), 0.2)
        by_name = self.rows_by_name(rows)
        self.assertTrue(by_name["isp-256"]["ok"])
        self.assertFalse(by_name["isp-1024"]["ok"])

    def test_mismatched_bench_types_rejected(self):
        with self.assertRaises(SystemExit):
            check_bench_regression.compare(
                storms_doc(), {"bench": "backbone", "scales": []}, 0.2)


class SchemaCheckTest(unittest.TestCase):
    def check_doc(self, doc):
        with tempfile.NamedTemporaryFile("w", suffix=".json", delete=False) as f:
            json.dump(doc, f)
            path = f.name
        try:
            return check_bench_json.check(path)
        finally:
            os.unlink(path)

    def test_telemetry_keys_required_for_storms(self):
        problems = self.check_doc({"bench": "failure_storms"})
        missing = " ".join(problems)
        for key in ("telemetry", "cache_hit_rate", "repair_fraction",
                    "per_worker", "utilization", "telemetry_overhead_fraction",
                    "telemetry_bit_identical"):
            self.assertIn(f'"{key}"', missing)

    def test_nested_telemetry_keys_satisfy_backbone_schema(self):
        doc = {
            "bench": "backbone",
            "scales": [{"name": "isp-256", "repair_speedup": 2.0,
                        "scenarios_per_second": 10.0,
                        "phase_ms": {"verify": 1.0}, "peak_rss_mb": 5.0}],
            "telemetry": {"cache_hit_rate": 0.5, "repair_fraction": 0.5,
                          "counters": {}, "phases": {},
                          "per_worker": [{"worker": 0, "utilization": 0.9}]},
            "peak_rss_mb": 6.0,
        }
        self.assertEqual(self.check_doc(doc), [])


if __name__ == "__main__":
    unittest.main()
