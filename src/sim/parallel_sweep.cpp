#include "sim/parallel_sweep.hpp"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <limits>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>

#include "obs/progress.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace_log.hpp"
#include "sim/fault_plan.hpp"

namespace pr::sim {

bool parse_count_arg(const char* raw, std::size_t max_value, std::size_t& out) {
  if (raw == nullptr || *raw == '\0' || *raw == '-' || *raw == '+') return false;
  char* end = nullptr;
  errno = 0;
  const unsigned long long parsed = std::strtoull(raw, &end, 10);
  if (end == raw || *end != '\0' || errno == ERANGE) return false;
  if (parsed > max_value) return false;
  out = static_cast<std::size_t>(parsed);
  return true;
}

std::uint64_t split_seed(std::uint64_t seed, std::uint64_t stream) {
  // The library-wide splitmix64 discipline lives in graph/rng.hpp; this alias
  // is kept so sweep callers keep one obvious name for unit streams.
  return graph::split_seed(seed, stream);
}

std::size_t threads_from_env(std::size_t fallback) {
  std::size_t parsed = 0;
  if (!parse_count_arg(std::getenv("PR_SWEEP_THREADS"), kMaxSweepThreads, parsed)) {
    return fallback;
  }
  return parsed;
}

std::size_t threads_from_arg(int argc, char** argv, int index, std::size_t fallback) {
  if (index <= 0 || index >= argc) return threads_from_env(fallback);
  std::size_t parsed = 0;
  if (!parse_count_arg(argv[index], kMaxSweepThreads, parsed)) {
    throw std::invalid_argument(
        "thread count must be a decimal in [0, " +
        std::to_string(kMaxSweepThreads) + "], got \"" + argv[index] + "\"");
  }
  return parsed;
}

struct SweepExecutor::Impl {
  static constexpr std::size_t kNoTruncation = std::numeric_limits<std::size_t>::max();

  std::mutex mutex;
  std::condition_variable work_ready;
  std::condition_variable job_done;
  std::vector<std::thread> workers;

  // Current job, guarded by `mutex` except for the atomics.
  const UnitFn* fn = nullptr;
  std::size_t unit_count = 0;
  std::size_t claim_limit = 0;  // min(unit_count, control budget)
  std::uint64_t seed = 0;
  std::uint64_t generation = 0;  // bumped per run(); wakes the pool
  std::size_t idle_workers = 0;  // workers finished with the current job
  bool job_active = false;       // run() admits one caller at a time
  bool stopping = false;

  // Observability attachments (set_telemetry, outside any job).  Workers
  // snapshot these under `mutex` when they pick up a generation, so swapping
  // telemetry between runs is safe.
  SweepTelemetry telemetry;

  // Run-control plumbing for the current job.  `control` is read-only;
  // `policy`/`faults` are snapshots taken at job start.  Legacy (void) entry
  // points run with kStop policy and rethrow the lowest-unit failure.
  const RunControl* control = nullptr;
  const FaultPlan* faults = nullptr;
  UnitErrorPolicy policy = UnitErrorPolicy::kStop;
  std::atomic<bool> halted{false};  // stop claiming; in-flight units finish
  bool saw_cancel = false;          // guarded by `mutex`
  bool saw_deadline = false;        // guarded by `mutex`

  // Error containment, guarded by `mutex`.  `truncate_at` is the lowest unit
  // whose failure truncates the prefix (kStop/legacy policy, or a reduce()
  // failure under any policy); kNoTruncation when none has.
  std::vector<UnitError> errors;
  std::size_t error_count = 0;
  std::size_t truncate_at = kNoTruncation;
  std::exception_ptr lowest_error;       // for the legacy rethrow
  std::size_t lowest_error_unit = kNoTruncation;
  std::size_t lowest_error_worker = 0;

  // Auto-checkpoint plumbing for the current job (controlled ordered runs
  // only).  The hooks run on the monitor thread; the counters are written
  // there under `mutex` and read by run_job after the monitor joins.
  const AutoCheckpoint* auto_ckpt = nullptr;
  std::size_t auto_checkpoints = 0;
  std::size_t checkpoint_failures = 0;

  // Ordered-reduction state (run_ordered only), guarded by `mutex`.
  const ReduceFn* reduce = nullptr;
  std::size_t window = 0;
  std::size_t watermark = 0;        // next unit to reduce, strictly ascending
  std::vector<std::uint8_t> done;   // ring, size `window`: 0 pending, 1 ok, 2 failed
  std::condition_variable slot_free;

  std::atomic<std::size_t> next_unit{0};
  std::atomic<std::size_t> executed{0};  // claimed units actually attempted

  /// Captures the active exception as a UnitError (and as the legacy rethrow
  /// candidate when it is the lowest unit so far).  Under a truncating policy
  /// also halts claiming and lowers `truncate_at`.  Caller must hold `mutex`
  /// and be inside a catch block.
  void record_error_locked(std::size_t unit, std::size_t worker, bool truncating) {
    ++error_count;
    std::string what;
    try {
      throw;
    } catch (const std::exception& e) {
      what = e.what();
    } catch (...) {
      what = "unknown exception";
    }
    if (errors.size() < SweepOutcome::kMaxRecordedErrors) {
      errors.push_back(UnitError{unit, worker, std::move(what)});
    }
    if (unit < lowest_error_unit) {
      lowest_error_unit = unit;
      lowest_error_worker = worker;
      lowest_error = std::current_exception();
    }
    if (truncating) {
      halted.store(true, std::memory_order_relaxed);
      if (unit < truncate_at) truncate_at = unit;
      slot_free.notify_all();  // waiters above the truncation point bail
    }
  }

  void worker_main(std::size_t worker_index) {
    WorkerContext ctx;
    ctx.worker_ = worker_index;
    std::uint64_t seen_generation = 0;
    while (true) {
      obs::Counters* cell = nullptr;
      obs::TraceLog* trace = nullptr;
      obs::SweepProgress* progress = nullptr;
      {
        std::unique_lock<std::mutex> lock(mutex);
        work_ready.wait(lock, [&] { return stopping || generation != seen_generation; });
        if (stopping) return;
        seen_generation = generation;
        if (telemetry.registry != nullptr &&
            worker_index < telemetry.registry->worker_count()) {
          cell = &telemetry.registry->worker(worker_index);
        }
        trace = telemetry.trace;
        progress = telemetry.progress;
      }
      // Worker w's counter cell becomes this thread's sink for the whole
      // job, so instrumented subsystems deep in the unit function (SPF
      // repair, routing caches, incidence probes, forwarding) attribute to
      // the right worker with zero plumbing.  Null cell == telemetry off ==
      // one predictable branch per instrumentation point.
      obs::ScopedSink sink_guard(cell);
      // Clocks are only read when something consumes them; an unobserved
      // sweep runs the exact pre-telemetry claim loop.
      const bool timed = cell != nullptr || trace != nullptr || progress != nullptr;
      while (true) {
        if (halted.load(std::memory_order_relaxed)) break;
        if (control != nullptr) {
          // Cooperative stop checks happen BEFORE claiming: a claimed unit
          // always runs to completion, which is what keeps the executed set
          // a contiguous prefix (claims are handed out in order).
          if (control->cancelled()) {
            halted.store(true, std::memory_order_relaxed);
            std::lock_guard<std::mutex> lock(mutex);
            saw_cancel = true;
            break;
          }
          if (control->deadline_expired()) {
            halted.store(true, std::memory_order_relaxed);
            std::lock_guard<std::mutex> lock(mutex);
            saw_deadline = true;
            break;
          }
        }
        const std::size_t unit = next_unit.fetch_add(1, std::memory_order_relaxed);
        if (unit >= claim_limit) break;
        if (faults != nullptr && faults->should_abort(unit)) {
          // A REAL crash, on purpose: no unwinding, no drain, no final
          // checkpoint -- SIGABRT at the claim of unit `unit`.  This is the
          // injection the durable store and the supervisor are proven
          // against; every auto-checkpoint already persisted is a canonical
          // prefix strictly below this unit, so resume loses at most one
          // cadence interval of work.
          std::abort();
        }
        if (reduce != nullptr) {
          // Ordered job: the unit's ring slot must be free, i.e. every unit
          // `window` or more below must have been reduced.  The holder of the
          // watermark unit never waits here, so the pipeline always advances.
          // A truncation below this unit makes its result irrelevant -- bail
          // (dropping a claim ABOVE the truncation point cannot hole the
          // surviving prefix).  Waiters at or below the truncation point must
          // keep going: the watermark still has to reach them.
          std::unique_lock<std::mutex> lock(mutex);
          slot_free.wait(lock, [&] {
            return truncate_at < unit || unit < watermark + window;
          });
          if (truncate_at < unit) continue;
        }
        ctx.rng_ = graph::Rng(split_seed(seed, unit));
        std::uint64_t unit_t0 = 0;
        if (timed) {
          unit_t0 = obs::now_ns();
          // Started BEFORE any injected stall so the stall detector sees the
          // wedged claim -- exactly what PR_FAULT_STALL_UNIT exercises.
          if (progress != nullptr) progress->unit_started(worker_index, unit, unit_t0);
        }
        if (faults != nullptr) {
          const auto stall = faults->stall_for(unit);
          if (stall.count() > 0) {
            if (trace != nullptr) {
              trace->record_instant(obs::SpanKind::kFault,
                                    static_cast<std::uint32_t>(worker_index), unit,
                                    static_cast<std::uint64_t>(stall.count()));
            }
            std::this_thread::sleep_for(stall);
          }
        }
        bool ok = true;
        try {
          if (faults != nullptr && faults->should_throw(unit)) {
            if (trace != nullptr) {
              trace->record_instant(obs::SpanKind::kFault,
                                    static_cast<std::uint32_t>(worker_index), unit);
            }
            throw InjectedFault("injected fault in unit " + std::to_string(unit));
          }
          (*fn)(unit, ctx);
        } catch (...) {
          ok = false;
          if (cell != nullptr) cell->add(obs::Counter::kUnitErrors);
          std::lock_guard<std::mutex> lock(mutex);
          record_error_locked(unit, worker_index,
                              policy == UnitErrorPolicy::kStop);
        }
        executed.fetch_add(1, std::memory_order_relaxed);
        if (timed) {
          const std::uint64_t unit_t1 = obs::now_ns();
          if (progress != nullptr) progress->unit_finished(worker_index, unit_t1);
          if (cell != nullptr) {
            cell->add(obs::Counter::kUnitsExecuted);
            cell->add_phase(obs::Phase::kUnit, unit_t1 - unit_t0);
          }
          if (trace != nullptr) {
            trace->record(obs::TraceSpan{obs::SpanKind::kUnit,
                                         static_cast<std::uint32_t>(worker_index), unit,
                                         unit_t0, unit_t1, ok ? 0u : 1u});
          }
        }
        if (reduce != nullptr) {
          std::unique_lock<std::mutex> lock(mutex);
          if (truncate_at <= unit) continue;  // truncated at/below: slot irrelevant
          done[unit % window] = ok ? 1 : 2;
          // Fold every contiguously-completed unit from the watermark up, in
          // canonical order.  Serialised by `mutex`, so reduce() never runs
          // concurrently with itself and the sequence is 0, 1, 2, ... for
          // every thread count.  Mark 2 (contained unit failure under
          // kContinue) advances the watermark without folding.
          bool advanced = false;
          while (watermark < claim_limit && watermark < truncate_at &&
                 done[watermark % window] != 0) {
            const bool fold = done[watermark % window] == 1;
            done[watermark % window] = 0;
            if (fold) {
              try {
                const std::uint64_t reduce_t0 = timed ? obs::now_ns() : 0;
                (*reduce)(watermark);
                if (timed) {
                  const std::uint64_t reduce_t1 = obs::now_ns();
                  if (cell != nullptr) {
                    cell->add(obs::Counter::kReduceCalls);
                    cell->add_phase(obs::Phase::kReduce, reduce_t1 - reduce_t0);
                  }
                  if (trace != nullptr) {
                    trace->record(obs::TraceSpan{
                        obs::SpanKind::kReduce, static_cast<std::uint32_t>(worker_index),
                        watermark, reduce_t0, reduce_t1, 0});
                  }
                }
              } catch (...) {
                // A reduce failure truncates under EVERY policy: streaming
                // state past this point would be half-folded.
                record_error_locked(watermark, worker_index, /*truncating=*/true);
                break;
              }
            }
            ++watermark;
            advanced = true;
          }
          if (advanced) slot_free.notify_all();
        }
      }
      {
        std::lock_guard<std::mutex> lock(mutex);
        if (++idle_workers == workers.size()) job_done.notify_all();
      }
    }
  }
};

SweepExecutor::SweepExecutor(std::size_t threads) {
  if (threads > kMaxSweepThreads) {
    throw std::invalid_argument("SweepExecutor: " + std::to_string(threads) +
                                " threads exceeds kMaxSweepThreads (" +
                                std::to_string(kMaxSweepThreads) + ")");
  }
  if (threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads = hw == 0 ? 1 : hw;
  }
  impl_ = std::make_unique<Impl>();
  impl_->idle_workers = threads;  // no job yet; everyone counts as finished
  impl_->workers.reserve(threads);
  try {
    for (std::size_t w = 0; w < threads; ++w) {
      impl_->workers.emplace_back([this, w] { impl_->worker_main(w); });
    }
  } catch (...) {
    // A spawn failed partway (e.g. RLIMIT_NPROC): stop and join the workers
    // that did start, so unwinding never destroys a joinable std::thread.
    {
      std::lock_guard<std::mutex> lock(impl_->mutex);
      impl_->stopping = true;
    }
    impl_->work_ready.notify_all();
    for (std::thread& t : impl_->workers) t.join();
    throw;
  }
}

SweepExecutor::~SweepExecutor() {
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->stopping = true;
  }
  impl_->work_ready.notify_all();
  for (std::thread& t : impl_->workers) t.join();
}

std::size_t SweepExecutor::thread_count() const noexcept {
  return impl_->workers.size();
}

void SweepExecutor::set_telemetry(const SweepTelemetry& telemetry) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  if (impl_->job_active) {
    throw std::logic_error(
        "SweepExecutor::set_telemetry: cannot swap telemetry while a job is "
        "running");
  }
  if (telemetry.registry != nullptr) {
    telemetry.registry->ensure_workers(impl_->workers.size());
  }
  impl_->telemetry = telemetry;
}

void SweepExecutor::run(std::size_t unit_count, const UnitFn& fn, std::uint64_t seed) {
  run_job(unit_count, fn, nullptr, nullptr, nullptr, seed, 0, /*legacy=*/true);
}

SweepOutcome SweepExecutor::run(std::size_t unit_count, const UnitFn& fn,
                                const RunControl& control, std::uint64_t seed) {
  return run_job(unit_count, fn, nullptr, &control, nullptr, seed, 0,
                 /*legacy=*/false);
}

std::size_t SweepExecutor::default_ordered_window() const noexcept {
  return std::max<std::size_t>(4 * impl_->workers.size(), 16);
}

void SweepExecutor::run_ordered(std::size_t unit_count, const UnitFn& fn,
                                const ReduceFn& reduce, std::uint64_t seed,
                                std::size_t window) {
  if (window == 0) window = default_ordered_window();
  run_job(unit_count, fn, &reduce, nullptr, nullptr, seed, window, /*legacy=*/true);
}

SweepOutcome SweepExecutor::run_ordered(std::size_t unit_count, const UnitFn& fn,
                                        const ReduceFn& reduce,
                                        const RunControl& control,
                                        std::uint64_t seed, std::size_t window) {
  if (window == 0) window = default_ordered_window();
  return run_job(unit_count, fn, &reduce, &control, nullptr, seed, window,
                 /*legacy=*/false);
}

SweepOutcome SweepExecutor::run_ordered(std::size_t unit_count, const UnitFn& fn,
                                        const ReduceFn& reduce,
                                        const RunControl& control,
                                        const AutoCheckpoint& checkpoint,
                                        std::uint64_t seed, std::size_t window) {
  if (window == 0) window = default_ordered_window();
  return run_job(unit_count, fn, &reduce, &control, &checkpoint, seed, window,
                 /*legacy=*/false);
}

SweepOutcome SweepExecutor::run_job(std::size_t unit_count, const UnitFn& fn,
                                    const ReduceFn* reduce,
                                    const RunControl* control,
                                    const AutoCheckpoint* auto_checkpoint,
                                    std::uint64_t seed, std::size_t window,
                                    bool legacy) {
  if (unit_count == 0) return SweepOutcome{};
  std::unique_lock<std::mutex> lock(impl_->mutex);
  if (impl_->job_active) {
    throw std::logic_error(
        "SweepExecutor::run: executor already driving a job (no reentrant or "
        "concurrent run() calls; give each driving thread its own executor)");
  }
  impl_->job_active = true;
  impl_->fn = &fn;
  impl_->unit_count = unit_count;
  impl_->claim_limit =
      control == nullptr ? unit_count : std::min(unit_count, control->unit_budget());
  impl_->seed = seed;
  impl_->reduce = reduce;
  impl_->window = window;
  impl_->watermark = 0;
  impl_->done.assign(window, 0);
  impl_->control = control;
  impl_->faults = control == nullptr ? nullptr : control->fault_plan();
  impl_->policy = (legacy || control == nullptr) ? UnitErrorPolicy::kStop
                                                 : control->error_policy();
  impl_->halted.store(false, std::memory_order_relaxed);
  impl_->saw_cancel = false;
  impl_->saw_deadline = false;
  impl_->errors.clear();
  impl_->error_count = 0;
  impl_->truncate_at = Impl::kNoTruncation;
  impl_->lowest_error = nullptr;
  impl_->lowest_error_unit = Impl::kNoTruncation;
  impl_->lowest_error_worker = 0;
  impl_->next_unit.store(0, std::memory_order_relaxed);
  impl_->executed.store(0, std::memory_order_relaxed);
  impl_->idle_workers = 0;
  impl_->auto_ckpt =
      (auto_checkpoint != nullptr && auto_checkpoint->active()) ? auto_checkpoint
                                                                : nullptr;
  impl_->auto_checkpoints = 0;
  impl_->checkpoint_failures = 0;

  // A monitor thread runs while progress is attached and/or an active
  // auto-checkpoint is installed: progress ticks (snapshot callbacks, stall
  // detection) and periodic checkpoints both belong off the worker threads.
  // Taking the executor mutex only to WAIT keeps the monitor off the
  // workers' lock hot path; progress ticks and checkpoint persists run
  // unlocked -- only checkpoint SERIALIZATION runs under the lock, which is
  // precisely what freezes the watermark and makes the blob a canonical
  // prefix (see AutoCheckpoint).
  obs::SweepProgress* progress = impl_->telemetry.progress;
  obs::TraceLog* trace = impl_->telemetry.trace;
  const AutoCheckpoint* ckpt = impl_->auto_ckpt;
  std::thread monitor;
  if (progress != nullptr || ckpt != nullptr) {
    if (progress != nullptr) {
      progress->begin_job(impl_->workers.size(), impl_->claim_limit, obs::now_ns());
    }
    // Poll granularity: the progress interval and/or the checkpoint period,
    // whichever is finer.  A pure unit cadence still needs the watermark
    // observed; 10ms keeps worst-case checkpoint lag far below any fsync.
    std::chrono::nanoseconds interval = std::chrono::nanoseconds::max();
    if (progress != nullptr) {
      interval = std::chrono::nanoseconds(progress->options().interval_ns);
    }
    if (ckpt != nullptr) {
      const std::chrono::nanoseconds ckpt_poll =
          ckpt->cadence.period.count() > 0
              ? std::chrono::nanoseconds(ckpt->cadence.period)
              : std::chrono::nanoseconds(std::chrono::milliseconds(10));
      interval = std::min(interval, ckpt_poll);
    }
    monitor = std::thread([this, progress, trace, ckpt, interval] {
      auto last_ckpt_time = std::chrono::steady_clock::now();
      std::size_t last_ckpt_units = 0;
      std::unique_lock<std::mutex> mon_lock(impl_->mutex);
      while (impl_->idle_workers != impl_->workers.size()) {
        if (impl_->job_done.wait_for(mon_lock, interval, [&] {
              return impl_->idle_workers == impl_->workers.size();
            })) {
          break;
        }
        if (ckpt != nullptr) {
          const std::size_t k = impl_->watermark;
          const auto now = std::chrono::steady_clock::now();
          const bool unit_due =
              ckpt->cadence.units != 0 && k >= last_ckpt_units + ckpt->cadence.units;
          const bool time_due = ckpt->cadence.period.count() != 0 &&
                                now - last_ckpt_time >= ckpt->cadence.period;
          if ((unit_due || time_due) && k != last_ckpt_units) {
            // k > last_ckpt_units always (the watermark is monotone); skip
            // only when nothing new completed since the last generation.
            std::string blob;
            bool sealed = true;
            try {
              blob = ckpt->serialize(k);  // under the lock: watermark frozen
            } catch (...) {
              sealed = false;
              ++impl_->checkpoint_failures;
            }
            if (sealed) {
              mon_lock.unlock();
              bool persisted = true;
              try {
                ckpt->persist(k, std::move(blob));
              } catch (...) {
                persisted = false;
              }
              if (persisted && trace != nullptr) {
                trace->record_instant(obs::SpanKind::kCheckpoint, 0, k);
              }
              mon_lock.lock();
              if (persisted) {
                ++impl_->auto_checkpoints;
                last_ckpt_units = k;
              } else {
                ++impl_->checkpoint_failures;
              }
            }
            last_ckpt_time = now;  // re-arm the timer even on failure
          } else if (unit_due || time_due) {
            last_ckpt_time = now;  // due but idle: nothing new to persist
          }
        }
        if (progress != nullptr) {
          mon_lock.unlock();
          const std::uint64_t stalls_before = progress->stalls_detected();
          progress->tick(obs::now_ns());
          if (trace != nullptr && progress->stalls_detected() > stalls_before) {
            trace->record_instant(obs::SpanKind::kStall, 0, 0,
                                  progress->stalls_detected());
          }
          mon_lock.lock();
        }
      }
    });
  }

  ++impl_->generation;
  impl_->work_ready.notify_all();
  impl_->job_done.wait(lock, [&] { return impl_->idle_workers == impl_->workers.size(); });
  impl_->fn = nullptr;
  impl_->reduce = nullptr;
  impl_->control = nullptr;
  impl_->faults = nullptr;
  impl_->auto_ckpt = nullptr;  // the monitor holds its own copy until joined
  impl_->job_active = false;

  SweepOutcome outcome;
  const bool truncated = impl_->truncate_at != Impl::kNoTruncation;
  if (reduce != nullptr) {
    outcome.completed_units = impl_->watermark;
  } else {
    outcome.completed_units = truncated
                                  ? impl_->truncate_at
                                  : impl_->executed.load(std::memory_order_relaxed);
  }
  outcome.errors = std::move(impl_->errors);
  impl_->errors.clear();
  std::sort(outcome.errors.begin(), outcome.errors.end(),
            [](const UnitError& a, const UnitError& b) {
              return a.unit != b.unit ? a.unit < b.unit : a.worker < b.worker;
            });
  outcome.error_count = impl_->error_count;
  if (truncated) {
    outcome.stop_reason = StopReason::kUnitError;
  } else if (outcome.completed_units == unit_count) {
    outcome.stop_reason = StopReason::kCompleted;
  } else if (impl_->saw_cancel) {
    outcome.stop_reason = StopReason::kCancelled;
  } else if (impl_->saw_deadline) {
    outcome.stop_reason = StopReason::kDeadline;
  } else {
    outcome.stop_reason = StopReason::kBudget;  // claim_limit < unit_count
  }

  std::exception_ptr legacy_error;
  std::size_t legacy_unit = 0;
  std::size_t legacy_worker = 0;
  if (legacy && impl_->lowest_error) {
    legacy_error = impl_->lowest_error;
    legacy_unit = impl_->lowest_error_unit;
    legacy_worker = impl_->lowest_error_worker;
  }
  impl_->lowest_error = nullptr;
  const std::size_t truncation_point = impl_->truncate_at;
  lock.unlock();

  // The monitor holds the mutex while waiting, so it is joined only after
  // the lock is released.
  if (monitor.joinable()) monitor.join();
  // Checkpoint counters are read AFTER the join: a persist in flight when the
  // pool drained still completes (and counts) before run_job returns.
  outcome.auto_checkpoints = impl_->auto_checkpoints;
  outcome.checkpoint_failures = impl_->checkpoint_failures;
  if (progress != nullptr) progress->end_job(obs::now_ns());
  if (trace != nullptr && truncated) {
    trace->record_instant(obs::SpanKind::kTruncate, 0, truncation_point,
                          outcome.completed_units);
  }

  if (legacy_error) {
    // Rethrow with unit/worker context; std::throw_with_nested attaches the
    // original so callers can still dig out its concrete type.
    try {
      std::rethrow_exception(legacy_error);
    } catch (const std::exception& e) {
      std::throw_with_nested(SweepUnitError(legacy_unit, legacy_worker, e.what()));
    } catch (...) {
      std::throw_with_nested(
          SweepUnitError(legacy_unit, legacy_worker, "unknown exception"));
    }
  }
  return outcome;
}

}  // namespace pr::sim
