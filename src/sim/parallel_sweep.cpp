#include "sim/parallel_sweep.hpp"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>

namespace pr::sim {

bool parse_count_arg(const char* raw, std::size_t max_value, std::size_t& out) {
  if (raw == nullptr || *raw == '\0' || *raw == '-' || *raw == '+') return false;
  char* end = nullptr;
  errno = 0;
  const unsigned long long parsed = std::strtoull(raw, &end, 10);
  if (end == raw || *end != '\0' || errno == ERANGE) return false;
  if (parsed > max_value) return false;
  out = static_cast<std::size_t>(parsed);
  return true;
}

std::uint64_t split_seed(std::uint64_t seed, std::uint64_t stream) {
  // The library-wide splitmix64 discipline lives in graph/rng.hpp; this alias
  // is kept so sweep callers keep one obvious name for unit streams.
  return graph::split_seed(seed, stream);
}

std::size_t threads_from_env(std::size_t fallback) {
  std::size_t parsed = 0;
  if (!parse_count_arg(std::getenv("PR_SWEEP_THREADS"), kMaxSweepThreads, parsed)) {
    return fallback;
  }
  return parsed;
}

std::size_t threads_from_arg(int argc, char** argv, int index, std::size_t fallback) {
  if (index <= 0 || index >= argc) return threads_from_env(fallback);
  std::size_t parsed = 0;
  if (!parse_count_arg(argv[index], kMaxSweepThreads, parsed)) {
    throw std::invalid_argument(
        "thread count must be a decimal in [0, " +
        std::to_string(kMaxSweepThreads) + "], got \"" + argv[index] + "\"");
  }
  return parsed;
}

struct SweepExecutor::Impl {
  std::mutex mutex;
  std::condition_variable work_ready;
  std::condition_variable job_done;
  std::vector<std::thread> workers;

  // Current job, guarded by `mutex` except for the unit cursor.
  const UnitFn* fn = nullptr;
  std::size_t unit_count = 0;
  std::uint64_t seed = 0;
  std::uint64_t generation = 0;  // bumped per run(); wakes the pool
  std::size_t idle_workers = 0;  // workers finished with the current job
  std::exception_ptr first_error;
  bool job_active = false;  // run() admits one caller at a time
  bool stopping = false;

  // Ordered-reduction state (run_ordered only), guarded by `mutex`.
  const ReduceFn* reduce = nullptr;
  std::size_t window = 0;
  std::size_t watermark = 0;        // next unit to reduce, strictly ascending
  std::vector<std::uint8_t> done;   // completed-not-yet-reduced ring, size `window`
  std::condition_variable slot_free;
  bool aborted = false;  // an exception abandoned the job; wake slot waiters

  std::atomic<std::size_t> next_unit{0};

  /// Records the first exception and abandons the job: the unit cursor jumps
  /// past the end so claim loops drain, and slot waiters are woken to bail.
  /// Caller must hold `mutex`.
  void abandon_locked() {
    if (!first_error) first_error = std::current_exception();
    aborted = true;
    next_unit.store(unit_count, std::memory_order_relaxed);
    slot_free.notify_all();
  }

  void worker_main(std::size_t worker_index) {
    WorkerContext ctx;
    ctx.worker_ = worker_index;
    std::uint64_t seen_generation = 0;
    while (true) {
      {
        std::unique_lock<std::mutex> lock(mutex);
        work_ready.wait(lock, [&] { return stopping || generation != seen_generation; });
        if (stopping) return;
        seen_generation = generation;
      }
      while (true) {
        const std::size_t unit = next_unit.fetch_add(1, std::memory_order_relaxed);
        if (unit >= unit_count) break;
        if (reduce != nullptr) {
          // Ordered job: the unit's ring slot must be free, i.e. every unit
          // `window` or more below must have been reduced.  The holder of the
          // watermark unit never waits here, so the pipeline always advances.
          std::unique_lock<std::mutex> lock(mutex);
          slot_free.wait(lock, [&] { return aborted || unit < watermark + window; });
          if (aborted) continue;  // drain remaining claims
        }
        ctx.rng_ = graph::Rng(split_seed(seed, unit));
        try {
          (*fn)(unit, ctx);
        } catch (...) {
          std::lock_guard<std::mutex> lock(mutex);
          abandon_locked();
          continue;
        }
        if (reduce != nullptr) {
          std::unique_lock<std::mutex> lock(mutex);
          if (aborted) continue;
          done[unit % window] = 1;
          // Fold every contiguously-completed unit from the watermark up, in
          // canonical order.  Serialised by `mutex`, so reduce() never runs
          // concurrently with itself and the sequence is 0, 1, 2, ... for
          // every thread count.
          bool advanced = false;
          while (watermark < unit_count && done[watermark % window] != 0) {
            done[watermark % window] = 0;
            try {
              (*reduce)(watermark);
            } catch (...) {
              abandon_locked();
              break;
            }
            ++watermark;
            advanced = true;
          }
          if (advanced) slot_free.notify_all();
        }
      }
      {
        std::lock_guard<std::mutex> lock(mutex);
        if (++idle_workers == workers.size()) job_done.notify_all();
      }
    }
  }
};

SweepExecutor::SweepExecutor(std::size_t threads) {
  if (threads > kMaxSweepThreads) {
    throw std::invalid_argument("SweepExecutor: " + std::to_string(threads) +
                                " threads exceeds kMaxSweepThreads (" +
                                std::to_string(kMaxSweepThreads) + ")");
  }
  if (threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads = hw == 0 ? 1 : hw;
  }
  impl_ = std::make_unique<Impl>();
  impl_->idle_workers = threads;  // no job yet; everyone counts as finished
  impl_->workers.reserve(threads);
  try {
    for (std::size_t w = 0; w < threads; ++w) {
      impl_->workers.emplace_back([this, w] { impl_->worker_main(w); });
    }
  } catch (...) {
    // A spawn failed partway (e.g. RLIMIT_NPROC): stop and join the workers
    // that did start, so unwinding never destroys a joinable std::thread.
    {
      std::lock_guard<std::mutex> lock(impl_->mutex);
      impl_->stopping = true;
    }
    impl_->work_ready.notify_all();
    for (std::thread& t : impl_->workers) t.join();
    throw;
  }
}

SweepExecutor::~SweepExecutor() {
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->stopping = true;
  }
  impl_->work_ready.notify_all();
  for (std::thread& t : impl_->workers) t.join();
}

std::size_t SweepExecutor::thread_count() const noexcept {
  return impl_->workers.size();
}

void SweepExecutor::run(std::size_t unit_count, const UnitFn& fn, std::uint64_t seed) {
  run_job(unit_count, fn, nullptr, seed, 0);
}

std::size_t SweepExecutor::default_ordered_window() const noexcept {
  return std::max<std::size_t>(4 * impl_->workers.size(), 16);
}

void SweepExecutor::run_ordered(std::size_t unit_count, const UnitFn& fn,
                                const ReduceFn& reduce, std::uint64_t seed,
                                std::size_t window) {
  if (window == 0) window = default_ordered_window();
  run_job(unit_count, fn, &reduce, seed, window);
}

void SweepExecutor::run_job(std::size_t unit_count, const UnitFn& fn,
                            const ReduceFn* reduce, std::uint64_t seed,
                            std::size_t window) {
  if (unit_count == 0) return;
  std::unique_lock<std::mutex> lock(impl_->mutex);
  if (impl_->job_active) {
    throw std::logic_error(
        "SweepExecutor::run: executor already driving a job (no reentrant or "
        "concurrent run() calls; give each driving thread its own executor)");
  }
  impl_->job_active = true;
  impl_->fn = &fn;
  impl_->unit_count = unit_count;
  impl_->seed = seed;
  impl_->reduce = reduce;
  impl_->window = window;
  impl_->watermark = 0;
  impl_->done.assign(window, 0);
  impl_->aborted = false;
  impl_->next_unit.store(0, std::memory_order_relaxed);
  impl_->idle_workers = 0;
  impl_->first_error = nullptr;
  ++impl_->generation;
  impl_->work_ready.notify_all();
  impl_->job_done.wait(lock, [&] { return impl_->idle_workers == impl_->workers.size(); });
  impl_->fn = nullptr;
  impl_->reduce = nullptr;
  impl_->job_active = false;
  if (impl_->first_error) {
    std::exception_ptr error = impl_->first_error;
    impl_->first_error = nullptr;
    lock.unlock();
    std::rethrow_exception(error);
  }
}

}  // namespace pr::sim
