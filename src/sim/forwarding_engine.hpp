// The allocation-free simulation core shared by every way of pushing packets
// through the library.
//
// Exactly one place implements the hop semantics -- terminal checks (delivery,
// TTL), the protocol decision, the forwarding-contract validation, and the
// cost/hop accounting: ForwardingEngine.  Three front-ends drive it:
//
//   * net::route_packet      -- the legacy synchronous single-packet walker,
//                               now a thin shim (net/forwarding.cpp);
//   * sim::route_batch       -- routes many flows with preallocated, reusable
//                               buffers; its stats-only mode never touches the
//                               heap per flow, which is what the coverage and
//                               stretch sweeps (millions of trials) need;
//   * net::launch_packet     -- the discrete-event simulator, which interleaves
//                               the same decide/commit steps with timing and
//                               queueing (net/event_sim.cpp).
//
// Because all three call decide()/commit(), a timed flight and a synchronous
// walk of the same flow can never disagree on status, hops or cost.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "net/forwarding.hpp"
#include "net/network.hpp"
#include "traffic/load_map.hpp"

namespace pr::sim {

using graph::DartId;
using graph::NodeId;
using net::DeliveryStatus;
using net::DropReason;
using net::ForwardingProtocol;
using net::Network;
using net::Packet;

/// Where a flow currently stands; the engine advances it hop by hop.
/// reset() recycles the contained Packet (keeping its FCP-list capacity), so
/// one FlowState can serve an arbitrarily long batch without reallocating.
struct FlowState {
  Packet packet;
  NodeId at = graph::kInvalidNode;
  DartId arrived_over = graph::kInvalidDart;
  double cost = 0.0;
  std::uint32_t hops = 0;

  void reset(NodeId source, NodeId destination, std::uint32_t ttl,
             std::uint8_t traffic_class = 0) {
    packet.source = source;
    packet.destination = destination;
    packet.pr_bit = false;
    packet.dd = 0;
    packet.fcp_failures.clear();  // keeps capacity for the next flow
    packet.ttl = ttl;
    packet.traffic_class = traffic_class;
    packet.id = 0;
    at = source;
    arrived_over = graph::kInvalidDart;
    cost = 0.0;
    hops = 0;
  }
};

/// Outcome of one ForwardingEngine::decide() call.
struct HopDecision {
  enum class Kind : std::uint8_t { kForward, kDelivered, kDropped };
  Kind kind = Kind::kDropped;
  /// Valid when kind == kForward; already contract-checked (leaves the current
  /// node over a link that is up).
  DartId out_dart = graph::kInvalidDart;
  /// Valid when kind == kDropped.
  DropReason reason = DropReason::kNone;
};

/// Terminal status of a completed flow.
struct FlowOutcome {
  DeliveryStatus status = DeliveryStatus::kDropped;
  DropReason reason = DropReason::kNone;
};

/// The single hop-execution core.  Cheap to construct (two pointers); holds no
/// per-flow state, so one engine can drive any number of concurrent flows.
class ForwardingEngine {
 public:
  /// Both referents must outlive the engine.
  ForwardingEngine(const Network& net, ForwardingProtocol& protocol) noexcept
      : net_(&net), protocol_(&protocol) {}

  /// Terminal checks + protocol decision + forwarding-contract validation for
  /// the next hop of `fs`.  May mutate the packet header (PR/DD bits, FCP
  /// list) but does not advance the flow; call commit() on a kForward result
  /// to take the hop.  Throws std::logic_error when the protocol violates the
  /// forwarding contract (delivers away from the destination, forwards from
  /// the wrong node, or forwards over a failed link).
  [[nodiscard]] HopDecision decide(FlowState& fs) const;

  /// Takes the hop chosen by decide(): cost/hop/TTL accounting, then moves the
  /// flow across `out`.
  void commit(FlowState& fs, DartId out) const;

  /// Runs `fs` to completion synchronously.  `on_visit` is invoked with each
  /// node the flow moves to (the source is already in `fs`, so it is not
  /// reported).  Statically dispatched so stats-only sweeps pay nothing for
  /// the hook.
  template <typename NodeSink>
  FlowOutcome run(FlowState& fs, NodeSink&& on_visit) const {
    while (true) {
      const HopDecision d = decide(fs);
      if (d.kind == HopDecision::Kind::kDelivered) {
        return {DeliveryStatus::kDelivered, DropReason::kNone};
      }
      if (d.kind == HopDecision::Kind::kDropped) {
        return {DeliveryStatus::kDropped, d.reason};
      }
      commit(fs, d.out_dart);
      on_visit(fs.at);
    }
  }

  FlowOutcome run(FlowState& fs) const {
    return run(fs, [](NodeId) {});
  }

  [[nodiscard]] const Network& network() const noexcept { return *net_; }
  [[nodiscard]] ForwardingProtocol& protocol() const noexcept { return *protocol_; }

 private:
  const Network* net_;
  ForwardingProtocol* protocol_;
};

/// How much per-flow evidence route_batch keeps.
enum class TraceMode : std::uint8_t {
  kStats,      ///< delivery status / drop reason / hops / cost only; no per-flow
               ///< heap traffic at all once the result buffers are warm
  kFullTrace,  ///< additionally record every flow's node and dart sequences
               ///< (flattened)
};

/// One (source, destination) trial of a sweep.
struct FlowSpec {
  NodeId source = graph::kInvalidNode;
  NodeId destination = graph::kInvalidNode;
  std::uint32_t ttl = 0;  ///< 0 selects net::default_ttl()
  std::uint8_t traffic_class = 0;
};

/// What one flow experienced (the stats-mode subset of net::PathTrace).
struct FlowStats {
  DeliveryStatus status = DeliveryStatus::kDropped;
  DropReason drop_reason = DropReason::kNone;
  std::uint32_t hops = 0;
  double cost = 0.0;

  [[nodiscard]] bool delivered() const noexcept {
    return status == DeliveryStatus::kDelivered;
  }
};

/// Results of a route_batch call.  All storage is flat and reusable: pass the
/// same BatchResult to successive calls and, once warm, routing allocates
/// nothing.
class BatchResult {
 public:
  [[nodiscard]] std::size_t size() const noexcept { return stats_.size(); }
  [[nodiscard]] std::span<const FlowStats> stats() const noexcept { return stats_; }
  [[nodiscard]] const FlowStats& operator[](std::size_t flow) const {
    return stats_.at(flow);
  }

  [[nodiscard]] TraceMode mode() const noexcept { return mode_; }
  [[nodiscard]] std::size_t delivered_count() const noexcept { return delivered_; }
  [[nodiscard]] std::size_t dropped_count() const noexcept {
    return stats_.size() - delivered_;
  }

  /// Node sequence of flow `flow` (source first).  Empty in stats mode.
  [[nodiscard]] std::span<const NodeId> nodes(std::size_t flow) const {
    if (mode_ == TraceMode::kStats) return {};
    return std::span<const NodeId>(nodes_).subspan(
        offsets_.at(flow), offsets_.at(flow + 1) - offsets_.at(flow));
  }

  /// Dart sequence of flow `flow` (the interfaces the flow actually crossed,
  /// in hop order -- exactly the darts the demand-weighted overload charges).
  /// Empty in stats mode.  A flow's dart count is its node count minus one,
  /// so the node fenceposts serve both views: darts of flow f start at
  /// offsets_[f] - f.
  [[nodiscard]] std::span<const DartId> darts(std::size_t flow) const {
    if (mode_ == TraceMode::kStats) return {};
    const std::size_t begin = offsets_.at(flow) - flow;
    const std::size_t end = offsets_.at(flow + 1) - (flow + 1);
    return std::span<const DartId>(darts_).subspan(begin, end - begin);
  }

  /// Empties the result but keeps every buffer's capacity.
  void clear() noexcept {
    stats_.clear();
    nodes_.clear();
    darts_.clear();
    offsets_.clear();
    delivered_ = 0;
  }

 private:
  friend void route_batch(const Network&, ForwardingProtocol&,
                          std::span<const FlowSpec>, TraceMode, BatchResult&);
  friend void route_batch(const Network&, ForwardingProtocol&,
                          std::span<const FlowSpec>, std::span<const double>,
                          traffic::LoadMap&, TraceMode, BatchResult&);

  std::vector<FlowStats> stats_;
  std::vector<NodeId> nodes_;         // full-trace mode: all sequences, flattened
  std::vector<DartId> darts_;         // full-trace mode: hops taken, flattened
  std::vector<std::size_t> offsets_;  // full-trace mode: size()+1 fenceposts
  std::size_t delivered_ = 0;
  TraceMode mode_ = TraceMode::kStats;
};

/// All ordered (source, destination) pairs of `g` -- the standard sweep
/// work-list used by the CLI summary, the coverage benches and the parity
/// tests.
[[nodiscard]] std::vector<FlowSpec> all_pairs_flows(const graph::Graph& g);

/// Routes every flow of `flows` under `protocol`, in order, reusing one
/// FlowState throughout.  Flows see the protocol instance sequentially, so a
/// stateful protocol (e.g. FCP's SPF cache) behaves exactly as if the legacy
/// route_packet had been called once per flow.  Throws std::out_of_range if
/// any endpoint is not a node of the network's graph.
void route_batch(const Network& net, ForwardingProtocol& protocol,
                 std::span<const FlowSpec> flows, TraceMode mode, BatchResult& out);

[[nodiscard]] BatchResult route_batch(const Network& net, ForwardingProtocol& protocol,
                                      std::span<const FlowSpec> flows,
                                      TraceMode mode = TraceMode::kStats);

/// Demand-weighted variant: flow f additionally contributes demands[f] packets
/// per second of offered load to every dart it traverses -- including the
/// partial path of a dropped flow, whose packets occupy real transmitters
/// before being lost.  `load` is reset to this batch's load (sized for the
/// network's graph; capacity is reused, so the hot loop stays allocation-free
/// once warm).  Routing outcomes in `out` are identical to the plain overload.
/// Throws std::invalid_argument when demands.size() != flows.size().
void route_batch(const Network& net, ForwardingProtocol& protocol,
                 std::span<const FlowSpec> flows, std::span<const double> demands,
                 traffic::LoadMap& load, TraceMode mode, BatchResult& out);

}  // namespace pr::sim
