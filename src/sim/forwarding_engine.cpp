#include "sim/forwarding_engine.hpp"

#include <stdexcept>

#include "obs/telemetry.hpp"

namespace pr::sim {

HopDecision ForwardingEngine::decide(FlowState& fs) const {
  const graph::Graph& g = net_->graph();
  if (fs.at == fs.packet.destination) {
    return {HopDecision::Kind::kDelivered, graph::kInvalidDart, DropReason::kNone};
  }
  if (fs.packet.ttl == 0) {
    return {HopDecision::Kind::kDropped, graph::kInvalidDart, DropReason::kTtlExpired};
  }
  const net::ForwardingDecision decision =
      protocol_->forward(*net_, fs.at, fs.arrived_over, fs.packet);
  switch (decision.action) {
    case net::ForwardingDecision::Action::kDeliver:
      // Protocols may only deliver at the destination.
      if (fs.at != fs.packet.destination) {
        throw std::logic_error(
            "ForwardingEngine: protocol delivered away from destination");
      }
      return {HopDecision::Kind::kDelivered, graph::kInvalidDart, DropReason::kNone};
    case net::ForwardingDecision::Action::kDrop:
      return {HopDecision::Kind::kDropped, graph::kInvalidDart, decision.reason};
    case net::ForwardingDecision::Action::kForward:
      break;
  }
  const DartId out = decision.out_dart;
  if (out == graph::kInvalidDart || g.dart_tail(out) != fs.at) {
    throw std::logic_error("ForwardingEngine: protocol forwarded from the wrong node");
  }
  if (!net_->dart_usable(out)) {
    throw std::logic_error("ForwardingEngine: protocol forwarded over a failed link (" +
                           g.dart_name(out) + ")");
  }
  return {HopDecision::Kind::kForward, out, DropReason::kNone};
}

void ForwardingEngine::commit(FlowState& fs, DartId out) const {
  const graph::Graph& g = net_->graph();
  fs.cost += g.edge_weight(graph::dart_edge(out));
  ++fs.hops;
  --fs.packet.ttl;
  fs.at = g.dart_head(out);
  fs.arrived_over = out;
}

std::vector<FlowSpec> all_pairs_flows(const graph::Graph& g) {
  std::vector<FlowSpec> flows;
  if (g.node_count() < 2) return flows;
  flows.reserve(g.node_count() * (g.node_count() - 1));
  for (NodeId s = 0; s < g.node_count(); ++s) {
    for (NodeId t = 0; t < g.node_count(); ++t) {
      if (s != t) flows.push_back(FlowSpec{s, t});
    }
  }
  return flows;
}

namespace {

/// The one batch loop both route_batch overloads drive.  The friended public
/// functions pass BatchResult's internals in, so this stays file-local; the
/// per-hop hook receives (flow index, FlowState) after every committed hop
/// (fs.arrived_over is the dart just taken) and compiles away when empty.
template <typename PerHop>
void run_flow_batch(const Network& net, ForwardingProtocol& protocol,
                    std::span<const FlowSpec> flows, TraceMode mode,
                    std::vector<FlowStats>& stats, std::vector<NodeId>& nodes,
                    std::vector<DartId>& darts, std::vector<std::size_t>& offsets,
                    std::size_t& delivered, PerHop&& per_hop) {
  const graph::Graph& g = net.graph();
  for (const FlowSpec& flow : flows) {
    if (flow.source >= g.node_count() || flow.destination >= g.node_count()) {
      throw std::out_of_range("route_batch: endpoint out of range");
    }
  }
  const std::uint32_t fallback_ttl = net::default_ttl(g);

  stats.reserve(flows.size());
  if (mode == TraceMode::kFullTrace) offsets.reserve(flows.size() + 1);

  const ForwardingEngine engine(net, protocol);
  // Dataplane telemetry accumulates in locals and flushes ONCE per batch:
  // the hot loop never touches thread-local state, and a disabled sink costs
  // exactly one branch per route_batch call.
  const bool observed = obs::enabled();
  std::uint64_t obs_delivered = 0;
  std::uint64_t obs_dropped = 0;
  std::uint64_t obs_hops = 0;
  std::uint64_t obs_cycle_flows = 0;
  std::uint64_t obs_cycle_hops = 0;
  FlowState fs;  // recycled across flows; FCP-list capacity survives reset()
  for (std::size_t i = 0; i < flows.size(); ++i) {
    const FlowSpec& flow = flows[i];
    fs.reset(flow.source, flow.destination,
             flow.ttl == 0 ? fallback_ttl : flow.ttl, flow.traffic_class);

    FlowOutcome outcome;
    if (mode == TraceMode::kFullTrace) {
      offsets.push_back(nodes.size());
      nodes.push_back(flow.source);
      outcome = engine.run(fs, [&](NodeId v) {
        nodes.push_back(v);
        darts.push_back(fs.arrived_over);
        per_hop(i, fs);
      });
    } else {
      outcome = engine.run(fs, [&](NodeId) { per_hop(i, fs); });
    }

    stats.push_back(FlowStats{outcome.status, outcome.reason, fs.hops, fs.cost});
    if (outcome.status == DeliveryStatus::kDelivered) ++delivered;
    if (observed) {
      obs_hops += fs.hops;
      if (outcome.status == DeliveryStatus::kDelivered) {
        ++obs_delivered;
      } else {
        ++obs_dropped;
      }
      if (fs.packet.pr_bit) {
        // The flow ended in PR cycle-follow mode: its whole walk priced the
        // paper's recovery mechanism, so its hop count feeds the
        // cycle-follow-length telemetry.
        ++obs_cycle_flows;
        obs_cycle_hops += fs.hops;
      }
    }
  }
  if (mode == TraceMode::kFullTrace) offsets.push_back(nodes.size());
  if (observed) {
    obs::count(obs::Counter::kFlowsRouted, flows.size());
    obs::count(obs::Counter::kFlowsDelivered, obs_delivered);
    obs::count(obs::Counter::kFlowsDropped, obs_dropped);
    obs::count(obs::Counter::kForwardHops, obs_hops);
    obs::count(obs::Counter::kCycleFollowFlows, obs_cycle_flows);
    obs::count(obs::Counter::kCycleFollowHops, obs_cycle_hops);
  }
}

}  // namespace

void route_batch(const Network& net, ForwardingProtocol& protocol,
                 std::span<const FlowSpec> flows, TraceMode mode, BatchResult& out) {
  out.clear();
  out.mode_ = mode;
  run_flow_batch(net, protocol, flows, mode, out.stats_, out.nodes_, out.darts_,
                 out.offsets_, out.delivered_, [](std::size_t, const FlowState&) {});
}

BatchResult route_batch(const Network& net, ForwardingProtocol& protocol,
                        std::span<const FlowSpec> flows, TraceMode mode) {
  BatchResult out;
  route_batch(net, protocol, flows, mode, out);
  return out;
}

void route_batch(const Network& net, ForwardingProtocol& protocol,
                 std::span<const FlowSpec> flows, std::span<const double> demands,
                 traffic::LoadMap& load, TraceMode mode, BatchResult& out) {
  if (demands.size() != flows.size()) {
    throw std::invalid_argument("route_batch: one demand per flow required");
  }
  out.clear();
  out.mode_ = mode;
  load.reset(net.graph().dart_count());
  run_flow_batch(net, protocol, flows, mode, out.stats_, out.nodes_, out.darts_,
                 out.offsets_, out.delivered_,
                 [&load, demands](std::size_t i, const FlowState& fs) {
                   load.add(fs.arrived_over, demands[i]);
                 });
}

}  // namespace pr::sim
