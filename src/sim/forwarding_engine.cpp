#include "sim/forwarding_engine.hpp"

#include <stdexcept>

namespace pr::sim {

HopDecision ForwardingEngine::decide(FlowState& fs) const {
  const graph::Graph& g = net_->graph();
  if (fs.at == fs.packet.destination) {
    return {HopDecision::Kind::kDelivered, graph::kInvalidDart, DropReason::kNone};
  }
  if (fs.packet.ttl == 0) {
    return {HopDecision::Kind::kDropped, graph::kInvalidDart, DropReason::kTtlExpired};
  }
  const net::ForwardingDecision decision =
      protocol_->forward(*net_, fs.at, fs.arrived_over, fs.packet);
  switch (decision.action) {
    case net::ForwardingDecision::Action::kDeliver:
      // Protocols may only deliver at the destination.
      if (fs.at != fs.packet.destination) {
        throw std::logic_error(
            "ForwardingEngine: protocol delivered away from destination");
      }
      return {HopDecision::Kind::kDelivered, graph::kInvalidDart, DropReason::kNone};
    case net::ForwardingDecision::Action::kDrop:
      return {HopDecision::Kind::kDropped, graph::kInvalidDart, decision.reason};
    case net::ForwardingDecision::Action::kForward:
      break;
  }
  const DartId out = decision.out_dart;
  if (out == graph::kInvalidDart || g.dart_tail(out) != fs.at) {
    throw std::logic_error("ForwardingEngine: protocol forwarded from the wrong node");
  }
  if (!net_->dart_usable(out)) {
    throw std::logic_error("ForwardingEngine: protocol forwarded over a failed link (" +
                           g.dart_name(out) + ")");
  }
  return {HopDecision::Kind::kForward, out, DropReason::kNone};
}

void ForwardingEngine::commit(FlowState& fs, DartId out) const {
  const graph::Graph& g = net_->graph();
  fs.cost += g.edge_weight(graph::dart_edge(out));
  ++fs.hops;
  --fs.packet.ttl;
  fs.at = g.dart_head(out);
  fs.arrived_over = out;
}

std::vector<FlowSpec> all_pairs_flows(const graph::Graph& g) {
  std::vector<FlowSpec> flows;
  if (g.node_count() < 2) return flows;
  flows.reserve(g.node_count() * (g.node_count() - 1));
  for (NodeId s = 0; s < g.node_count(); ++s) {
    for (NodeId t = 0; t < g.node_count(); ++t) {
      if (s != t) flows.push_back(FlowSpec{s, t});
    }
  }
  return flows;
}

void route_batch(const Network& net, ForwardingProtocol& protocol,
                 std::span<const FlowSpec> flows, TraceMode mode, BatchResult& out) {
  const graph::Graph& g = net.graph();
  for (const FlowSpec& flow : flows) {
    if (flow.source >= g.node_count() || flow.destination >= g.node_count()) {
      throw std::out_of_range("route_batch: endpoint out of range");
    }
  }
  const std::uint32_t fallback_ttl = net::default_ttl(g);

  out.clear();
  out.mode_ = mode;
  out.stats_.reserve(flows.size());
  if (mode == TraceMode::kFullTrace) out.offsets_.reserve(flows.size() + 1);

  const ForwardingEngine engine(net, protocol);
  FlowState fs;  // recycled across flows; FCP-list capacity survives reset()
  for (const FlowSpec& flow : flows) {
    fs.reset(flow.source, flow.destination,
             flow.ttl == 0 ? fallback_ttl : flow.ttl, flow.traffic_class);

    FlowOutcome outcome;
    if (mode == TraceMode::kFullTrace) {
      out.offsets_.push_back(out.nodes_.size());
      out.nodes_.push_back(flow.source);
      outcome = engine.run(fs, [&out](NodeId v) { out.nodes_.push_back(v); });
    } else {
      outcome = engine.run(fs);
    }

    out.stats_.push_back(FlowStats{outcome.status, outcome.reason, fs.hops, fs.cost});
    if (outcome.status == DeliveryStatus::kDelivered) ++out.delivered_;
  }
  if (mode == TraceMode::kFullTrace) out.offsets_.push_back(out.nodes_.size());
}

BatchResult route_batch(const Network& net, ForwardingProtocol& protocol,
                        std::span<const FlowSpec> flows, TraceMode mode) {
  BatchResult out;
  route_batch(net, protocol, flows, mode, out);
  return out;
}

}  // namespace pr::sim
