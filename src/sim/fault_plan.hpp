// Deterministic fault injection for sweep runs.
//
// A FaultPlan is a fixed, seed-independent script of failures keyed on
// RUN-RELATIVE executor unit indices (unit 0 is the first unit of the run it
// is attached to, not an absolute scenario id -- a resumed sweep restarts
// unit numbering at its offset).  The executor and the storm driver consult
// it at well-defined hook points:
//
//   - throw_in_unit(u): the executor throws InjectedFault instead of running
//     unit u, exercising per-unit error containment and truncation.
//   - stall_unit(u, d): the executor sleeps d before running unit u, skewing
//     worker timing to shake out ordering assumptions (results must not
//     change -- that is the point).
//   - malformed_scenario(u): the storm driver corrupts unit u's sampled
//     scenario (an out-of-range risk-group id) before validation, proving
//     input validation feeds the same containment path.
//   - fail_at_checkpoint(): checkpoint serialization throws CheckpointError,
//     proving a failed checkpoint never corrupts in-memory results.
//   - abort_in_unit(u): the executor raises std::abort() when unit u is
//     claimed -- a REAL crash (SIGABRT, no unwinding, no destructors), the
//     injection the durable checkpoint store and the supervisor harness are
//     proven against.  Only meaningful in a child process under a test or
//     supervisor; keyed run-relative like every other fault, so a resumed
//     incarnation re-arms at its own unit u (which is how a crash-looping
//     supervised sweep still converges: each incarnation persists u units of
//     progress before dying).
//
// Plans come from tests directly or from the environment (from_env) so CI
// can inject faults into stock benches without recompiling.
#pragma once

#include <chrono>
#include <cstddef>
#include <map>
#include <set>
#include <stdexcept>
#include <string>

namespace pr::sim {

/// The exception injected by throw-in-unit faults.
class InjectedFault : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class FaultPlan {
 public:
  FaultPlan() = default;

  // -- builders (chainable) -------------------------------------------------
  FaultPlan& throw_in_unit(std::size_t unit) {
    throw_units_.insert(unit);
    return *this;
  }
  FaultPlan& stall_unit(std::size_t unit, std::chrono::milliseconds delay) {
    stalls_[unit] = delay;
    return *this;
  }
  FaultPlan& fail_at_checkpoint() {
    fail_checkpoint_ = true;
    return *this;
  }
  FaultPlan& malformed_scenario(std::size_t unit) {
    malformed_units_.insert(unit);
    return *this;
  }
  FaultPlan& abort_in_unit(std::size_t unit) {
    abort_units_.insert(unit);
    return *this;
  }

  // -- queries --------------------------------------------------------------
  [[nodiscard]] bool should_throw(std::size_t unit) const {
    return throw_units_.count(unit) != 0;
  }
  /// Zero when unit has no stall scheduled.
  [[nodiscard]] std::chrono::milliseconds stall_for(std::size_t unit) const {
    const auto it = stalls_.find(unit);
    return it == stalls_.end() ? std::chrono::milliseconds{0} : it->second;
  }
  [[nodiscard]] bool fail_checkpoint() const { return fail_checkpoint_; }
  [[nodiscard]] bool malformed(std::size_t unit) const {
    return malformed_units_.count(unit) != 0;
  }
  [[nodiscard]] bool should_abort(std::size_t unit) const {
    return abort_units_.count(unit) != 0;
  }
  [[nodiscard]] bool empty() const {
    return throw_units_.empty() && stalls_.empty() && !fail_checkpoint_ &&
           malformed_units_.empty() && abort_units_.empty();
  }

  /// Human-readable one-line summary ("no faults" when empty).
  [[nodiscard]] std::string describe() const;

  /// Build a plan from PR_FAULT_* environment variables:
  ///   PR_FAULT_THROW_UNIT=u[,u...]      throw InjectedFault in these units
  ///   PR_FAULT_STALL_UNIT=u:ms[,u:ms]   sleep ms before these units
  ///   PR_FAULT_FAIL_CHECKPOINT=1        checkpoint serialization fails
  ///   PR_FAULT_MALFORMED_UNIT=u[,u...]  corrupt these units' scenarios
  ///   PR_FAULT_ABORT_UNIT=u[,u...]      std::abort() when these units claim
  /// Unset variables contribute nothing; malformed values throw
  /// std::invalid_argument (a typo'd fault plan must not silently pass CI).
  /// A unit listed twice in the same variable is rejected the same way: a
  /// duplicate is always a script editing mistake (sets would silently
  /// collapse it; the stall map would silently keep only the last delay).
  /// Every error message names the offending variable and its full value.
  [[nodiscard]] static FaultPlan from_env();

 private:
  std::set<std::size_t> throw_units_;
  std::map<std::size_t, std::chrono::milliseconds> stalls_;
  std::set<std::size_t> malformed_units_;
  std::set<std::size_t> abort_units_;
  bool fail_checkpoint_ = false;
};

}  // namespace pr::sim
