// Cooperative run control for long sweeps: cancel tokens, monotonic
// deadlines, unit budgets -- and the outcome report a bounded sweep returns
// instead of tearing itself down.
//
// The paper's premise is graceful degradation under failure; a sweep engine
// that abandons a million-scenario job because one worker threw, or that has
// no way to stop at a deadline with its partial results intact, does not hold
// itself to that contract.  RunControl threads the stop signals into
// SweepExecutor's claim loop, which checks them cooperatively at unit
// boundaries and guarantees DETERMINISTIC TRUNCATION: however a sweep stops
// (cancel, deadline, budget, contained unit error), the set of units whose
// results count -- and, for run_ordered, the reduce sequence -- is a
// canonical prefix [0, k) of the unit order.  Partial results are therefore
// bit-identical to a serial run of the same prefix, which is what makes
// checkpoint/resume (analysis/checkpoint.hpp) exact rather than approximate.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

namespace pr::sim {

class FaultPlan;

/// Why a controlled sweep stopped.  kCompleted means every requested unit ran
/// (contained per-unit errors may still be listed under kContinue policy).
enum class StopReason : std::uint8_t {
  kCompleted,  ///< all units executed
  kCancelled,  ///< RunControl::cancel() observed at a unit boundary
  kDeadline,   ///< the monotonic deadline passed
  kBudget,     ///< the unit budget was exhausted
  kUnitError,  ///< a unit (or reduce) threw and the policy stops at errors
};

[[nodiscard]] const char* to_string(StopReason reason) noexcept;

/// What to do when a work unit throws under an outcome-returning run:
/// truncate the sweep at the failing unit (the canonical-prefix default) or
/// skip just that unit and keep going, accumulating the error.  The legacy
/// void run()/run_ordered() entry points always stop and rethrow.
enum class UnitErrorPolicy : std::uint8_t {
  kStop,      ///< contain the error, drain to the prefix [0, failing unit)
  kContinue,  ///< record the error, skip the unit's reduce, keep sweeping
};

/// One contained work-unit failure: which unit, which worker ran it, and the
/// exception's what().  The worker index is diagnostic only -- results never
/// depend on it; the unit index is part of the truncation contract.
struct UnitError {
  std::size_t unit = 0;
  std::size_t worker = 0;
  std::string what;
};

/// How a controlled sweep ended.  `completed_units` is the canonical prefix
/// length k: units [0, k) all executed -- and, for run_ordered, were reduced
/// in order 0, 1, ..., k-1 -- except units listed in `errors` (non-empty
/// inside the prefix only under UnitErrorPolicy::kContinue).  Results for
/// units >= k must be ignored even if their slots were written.
struct SweepOutcome {
  std::size_t completed_units = 0;
  StopReason stop_reason = StopReason::kCompleted;
  /// Contained failures, ascending by unit; capped at kMaxRecordedErrors
  /// entries (error_count keeps the true total).
  std::vector<UnitError> errors;
  std::size_t error_count = 0;
  /// Periodic checkpoints persisted by the monitor thread during this run
  /// (excludes any final checkpoint the driver takes after the run returns).
  std::size_t auto_checkpoints = 0;
  /// Auto-checkpoint attempts that threw (serialize or persist).  A failed
  /// checkpoint never perturbs results -- it only loses durability; the sweep
  /// keeps going and retries at the next cadence tick.
  std::size_t checkpoint_failures = 0;

  static constexpr std::size_t kMaxRecordedErrors = 64;

  [[nodiscard]] bool complete() const noexcept {
    return stop_reason == StopReason::kCompleted;
  }
  /// The lowest-unit contained failure, or nullptr when none was recorded.
  [[nodiscard]] const UnitError* first_error() const noexcept {
    return errors.empty() ? nullptr : errors.data();
  }
};

/// How often a sweep should auto-checkpoint: every `units` completed units,
/// every `period` of wall time, or both (whichever trips first; the trigger
/// re-arms after each persisted generation).  Zero/unset fields are inactive;
/// a cadence with any() == false disables periodic checkpointing entirely.
///
/// Cadence affects DURABILITY ONLY, never results: every persisted generation
/// is a canonical prefix [0, k) regardless of when the timer fires, so two
/// runs with different cadences produce bit-identical final state.
struct CheckpointCadence {
  /// Persist after this many newly completed units (0 = no unit trigger).
  std::size_t units = 0;
  /// Persist after this much wall time (zero = no time trigger).
  std::chrono::milliseconds period{0};

  [[nodiscard]] bool any() const noexcept {
    return units != 0 || period.count() != 0;
  }

  /// Parses a cadence spec: comma-separated terms, each either
  ///   "N" or "Nu"  -- every N units
  ///   "Nms" / "Ns" -- every N milliseconds / seconds
  /// At most one unit term and one time term; empty/garbage/duplicate terms
  /// throw std::invalid_argument naming `var` and the full raw value.
  [[nodiscard]] static CheckpointCadence parse(std::string_view spec,
                                               const char* var = "cadence");

  /// parse() of $PR_CKPT_EVERY; an unset/empty variable yields an inactive
  /// cadence (any() == false).
  [[nodiscard]] static CheckpointCadence from_env();
};

/// Shared stop-signal bundle for one (or several sequential) controlled
/// sweeps.  cancel() and the deadline are safe to trip from any thread while
/// a sweep runs; the budget, error policy and fault plan must be configured
/// BEFORE the run starts and left alone until it returns.  The executor only
/// reads -- a RunControl can be reused across runs (clear_deadline()/a fresh
/// budget between them; cancellation is sticky until reset_cancel()).
class RunControl {
 public:
  using Clock = std::chrono::steady_clock;

  RunControl() = default;
  RunControl(const RunControl&) = delete;
  RunControl& operator=(const RunControl&) = delete;

  /// Sticky cooperative cancellation: workers stop claiming new units at the
  /// next unit boundary; in-flight units finish and count toward the prefix.
  void cancel() noexcept { cancelled_.store(true, std::memory_order_relaxed); }
  void reset_cancel() noexcept { cancelled_.store(false, std::memory_order_relaxed); }
  [[nodiscard]] bool cancelled() const noexcept {
    return cancelled_.load(std::memory_order_relaxed);
  }

  /// Monotonic deadline; workers stop claiming once Clock::now() reaches it.
  void set_deadline(Clock::time_point deadline) noexcept {
    deadline_ns_.store(deadline.time_since_epoch().count(),
                       std::memory_order_relaxed);
  }
  /// Deadline relative to now.
  void set_timeout(Clock::duration timeout) noexcept {
    set_deadline(Clock::now() + timeout);
  }
  void clear_deadline() noexcept {
    deadline_ns_.store(kNoDeadline, std::memory_order_relaxed);
  }
  [[nodiscard]] bool has_deadline() const noexcept {
    return deadline_ns_.load(std::memory_order_relaxed) != kNoDeadline;
  }
  [[nodiscard]] bool deadline_expired() const noexcept {
    const auto ns = deadline_ns_.load(std::memory_order_relaxed);
    return ns != kNoDeadline && Clock::now().time_since_epoch().count() >= ns;
  }

  /// Maximum units the NEXT run may claim (default: unlimited).  Because the
  /// claim cursor is a monotone counter, a budget of b truncates to exactly
  /// the prefix [0, min(b, unit_count)) -- deterministically, unlike a
  /// deadline -- which is what the checkpoint tests pin down.
  void set_unit_budget(std::size_t units) noexcept { budget_ = units; }
  void clear_unit_budget() noexcept { budget_ = kNoBudget; }
  [[nodiscard]] std::size_t unit_budget() const noexcept { return budget_; }

  void set_error_policy(UnitErrorPolicy policy) noexcept { policy_ = policy; }
  [[nodiscard]] UnitErrorPolicy error_policy() const noexcept { return policy_; }

  /// Deterministic fault injection (sim/fault_plan.hpp); the plan must
  /// outlive every run it is attached to.  nullptr = no faults.
  void set_fault_plan(const FaultPlan* plan) noexcept { faults_ = plan; }
  [[nodiscard]] const FaultPlan* fault_plan() const noexcept { return faults_; }

  static constexpr std::size_t kNoBudget = std::numeric_limits<std::size_t>::max();

 private:
  static constexpr Clock::rep kNoDeadline =
      std::numeric_limits<Clock::rep>::max();

  std::atomic<bool> cancelled_{false};
  std::atomic<Clock::rep> deadline_ns_{kNoDeadline};
  std::size_t budget_ = kNoBudget;
  UnitErrorPolicy policy_ = UnitErrorPolicy::kStop;
  const FaultPlan* faults_ = nullptr;
};

}  // namespace pr::sim
