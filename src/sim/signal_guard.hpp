// Signal-driven graceful shutdown for long sweeps.
//
// SIGINT/SIGTERM are how operators (and supervisors, and CI runners) stop a
// process; a crash-safe sweep must translate them into the cooperative stop
// path instead of dying mid-write.  SignalGuard installs handlers that do the
// ONLY async-signal-safe thing useful here: a lock-free atomic store --
// RunControl::cancel() -- which the executor's claim loop observes at the
// next unit boundary.  The sweep then drains to its canonical prefix [0, k),
// the driver persists a final checkpoint generation, and the process exits
// with kInterruptedExitStatus so a supervisor can tell "interrupted, state
// saved, resume me" apart from both success (0) and a crash (anything else).
//
// One guard may be active per process at a time (the handler routes through a
// process-global slot); rebind() retargets it between sweep legs so a bench
// with several controlled sections keeps one guard for its whole lifetime.
#pragma once

namespace pr::sim {

class RunControl;

/// Exit status meaning "interrupted by a signal, final checkpoint persisted,
/// safe to resume" (BSD sysexits' EX_TEMPFAIL).  Distinct from 0 (done), from
/// generic failures, and from the shell's 128+signo death statuses, so
/// supervisors can branch on it.
inline constexpr int kInterruptedExitStatus = 75;

class SignalGuard {
 public:
  /// Installs SIGINT + SIGTERM handlers routing to `control.cancel()`.
  /// Throws std::logic_error if another SignalGuard is already active.
  explicit SignalGuard(RunControl& control);

  /// Restores the previously installed handlers.
  ~SignalGuard();

  SignalGuard(const SignalGuard&) = delete;
  SignalGuard& operator=(const SignalGuard&) = delete;

  /// Retargets the guard at another RunControl (e.g. the next sweep leg).
  /// If a signal already fired, the new control is cancelled immediately --
  /// a shutdown request must never be lost in a handoff window.
  void rebind(RunControl& control) noexcept;

  /// True once SIGINT or SIGTERM was delivered (sticky).
  [[nodiscard]] bool triggered() const noexcept;

  /// The first delivered signal number (0 when none yet).
  [[nodiscard]] int signal_number() const noexcept;

  /// kInterruptedExitStatus when triggered, 0 otherwise -- the value a
  /// draining main() should return.
  [[nodiscard]] int exit_status() const noexcept {
    return triggered() ? kInterruptedExitStatus : 0;
  }
};

}  // namespace pr::sim
