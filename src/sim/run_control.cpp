#include "sim/run_control.hpp"

#include <cerrno>
#include <cstdlib>
#include <stdexcept>

namespace pr::sim {
namespace {

[[noreturn]] void fail_cadence(const char* var, std::string_view raw,
                               const std::string& detail) {
  throw std::invalid_argument(std::string(var) + "='" + std::string(raw) +
                              "': " + detail);
}

std::uint64_t parse_count(std::string_view digits, const char* var,
                          std::string_view raw) {
  if (digits.empty() ||
      digits.find_first_not_of("0123456789") != std::string_view::npos) {
    fail_cadence(var, raw,
                 "expected a positive integer, got '" + std::string(digits) + "'");
  }
  errno = 0;
  const unsigned long long value =
      std::strtoull(std::string(digits).c_str(), nullptr, 10);
  if (errno != 0) {
    fail_cadence(var, raw, "value out of range '" + std::string(digits) + "'");
  }
  if (value == 0) {
    fail_cadence(var, raw, "cadence terms must be > 0 (omit the term instead)");
  }
  return static_cast<std::uint64_t>(value);
}

}  // namespace

CheckpointCadence CheckpointCadence::parse(std::string_view spec, const char* var) {
  CheckpointCadence cadence;
  std::size_t start = 0;
  bool saw_units = false;
  bool saw_period = false;
  while (start <= spec.size()) {
    const std::size_t comma = spec.find(',', start);
    const std::size_t end = comma == std::string_view::npos ? spec.size() : comma;
    const std::string_view term = spec.substr(start, end - start);
    if (term.empty()) {
      fail_cadence(var, spec, "empty cadence term");
    }
    // Suffix decides the dimension: ms/s are time, a bare number or a 'u'
    // suffix is units.  Checked longest-suffix-first ("ms" before "s").
    if (term.size() > 2 && term.substr(term.size() - 2) == "ms") {
      if (saw_period) fail_cadence(var, spec, "more than one time term");
      saw_period = true;
      cadence.period = std::chrono::milliseconds(
          parse_count(term.substr(0, term.size() - 2), var, spec));
    } else if (term.size() > 1 && term.back() == 's') {
      if (saw_period) fail_cadence(var, spec, "more than one time term");
      saw_period = true;
      cadence.period = std::chrono::seconds(
          parse_count(term.substr(0, term.size() - 1), var, spec));
    } else {
      const std::string_view digits =
          term.back() == 'u' ? term.substr(0, term.size() - 1) : term;
      if (saw_units) fail_cadence(var, spec, "more than one unit term");
      saw_units = true;
      cadence.units = static_cast<std::size_t>(parse_count(digits, var, spec));
    }
    if (comma == std::string_view::npos) break;
    start = comma + 1;
  }
  return cadence;
}

CheckpointCadence CheckpointCadence::from_env() {
  const char* raw = std::getenv("PR_CKPT_EVERY");
  if (raw == nullptr || *raw == '\0') return CheckpointCadence{};
  return parse(raw, "PR_CKPT_EVERY");
}

const char* to_string(StopReason reason) noexcept {
  switch (reason) {
    case StopReason::kCompleted: return "completed";
    case StopReason::kCancelled: return "cancelled";
    case StopReason::kDeadline: return "deadline";
    case StopReason::kBudget: return "budget";
    case StopReason::kUnitError: return "unit-error";
  }
  return "unknown";
}

}  // namespace pr::sim
