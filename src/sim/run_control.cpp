#include "sim/run_control.hpp"

namespace pr::sim {

const char* to_string(StopReason reason) noexcept {
  switch (reason) {
    case StopReason::kCompleted: return "completed";
    case StopReason::kCancelled: return "cancelled";
    case StopReason::kDeadline: return "deadline";
    case StopReason::kBudget: return "budget";
    case StopReason::kUnitError: return "unit-error";
  }
  return "unknown";
}

}  // namespace pr::sim
