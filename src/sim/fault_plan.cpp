#include "sim/fault_plan.hpp"

#include <cstdlib>
#include <limits>
#include <sstream>
#include <string_view>
#include <vector>

namespace pr::sim {
namespace {

std::vector<std::string> split_commas(std::string_view text) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    const std::size_t end = comma == std::string_view::npos ? text.size() : comma;
    out.emplace_back(text.substr(start, end - start));
    if (comma == std::string_view::npos) break;
    start = comma + 1;
  }
  return out;
}

std::size_t parse_index(const std::string& token, const char* var) {
  if (token.empty() || token.find_first_not_of("0123456789") != std::string::npos) {
    throw std::invalid_argument(std::string(var) + ": expected a non-negative integer, got '" +
                                token + "'");
  }
  errno = 0;
  const unsigned long long value = std::strtoull(token.c_str(), nullptr, 10);
  if (errno != 0 || value > std::numeric_limits<std::size_t>::max()) {
    throw std::invalid_argument(std::string(var) + ": value out of range '" + token + "'");
  }
  return static_cast<std::size_t>(value);
}

}  // namespace

std::string FaultPlan::describe() const {
  if (empty()) return "no faults";
  std::ostringstream out;
  const char* sep = "";
  if (!throw_units_.empty()) {
    out << sep << "throw in unit";
    for (const std::size_t u : throw_units_) out << ' ' << u;
    sep = "; ";
  }
  if (!stalls_.empty()) {
    out << sep << "stall";
    for (const auto& [u, d] : stalls_) out << ' ' << u << ':' << d.count() << "ms";
    sep = "; ";
  }
  if (!malformed_units_.empty()) {
    out << sep << "malformed scenario in unit";
    for (const std::size_t u : malformed_units_) out << ' ' << u;
    sep = "; ";
  }
  if (fail_checkpoint_) out << sep << "fail at checkpoint";
  return out.str();
}

FaultPlan FaultPlan::from_env() {
  FaultPlan plan;
  if (const char* raw = std::getenv("PR_FAULT_THROW_UNIT"); raw != nullptr && *raw != '\0') {
    for (const auto& token : split_commas(raw)) {
      plan.throw_in_unit(parse_index(token, "PR_FAULT_THROW_UNIT"));
    }
  }
  if (const char* raw = std::getenv("PR_FAULT_STALL_UNIT"); raw != nullptr && *raw != '\0') {
    for (const auto& token : split_commas(raw)) {
      const std::size_t colon = token.find(':');
      if (colon == std::string::npos) {
        throw std::invalid_argument("PR_FAULT_STALL_UNIT: expected 'unit:ms', got '" + token +
                                    "'");
      }
      const std::size_t unit = parse_index(token.substr(0, colon), "PR_FAULT_STALL_UNIT");
      const std::size_t ms = parse_index(token.substr(colon + 1), "PR_FAULT_STALL_UNIT");
      plan.stall_unit(unit, std::chrono::milliseconds(ms));
    }
  }
  if (const char* raw = std::getenv("PR_FAULT_FAIL_CHECKPOINT"); raw != nullptr && *raw != '\0') {
    const std::string_view value(raw);
    if (value == "1" || value == "true" || value == "yes") {
      plan.fail_at_checkpoint();
    } else if (value != "0" && value != "false" && value != "no") {
      throw std::invalid_argument("PR_FAULT_FAIL_CHECKPOINT: expected 0/1, got '" +
                                  std::string(value) + "'");
    }
  }
  if (const char* raw = std::getenv("PR_FAULT_MALFORMED_UNIT"); raw != nullptr && *raw != '\0') {
    for (const auto& token : split_commas(raw)) {
      plan.malformed_scenario(parse_index(token, "PR_FAULT_MALFORMED_UNIT"));
    }
  }
  return plan;
}

}  // namespace pr::sim
