#include "sim/fault_plan.hpp"

#include <cstdlib>
#include <limits>
#include <sstream>
#include <string_view>
#include <vector>

namespace pr::sim {
namespace {

std::vector<std::string> split_commas(std::string_view text) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    const std::size_t end = comma == std::string_view::npos ? text.size() : comma;
    out.emplace_back(text.substr(start, end - start));
    if (comma == std::string_view::npos) break;
    start = comma + 1;
  }
  return out;
}

/// Every from_env failure goes through here so the message always names the
/// offending variable AND its full raw value -- a typo'd fault script in CI
/// must be diagnosable from the error alone.
[[noreturn]] void fail_env(const char* var, std::string_view raw,
                           const std::string& detail) {
  throw std::invalid_argument(std::string(var) + "='" + std::string(raw) +
                              "': " + detail);
}

std::size_t parse_index(const std::string& token, const char* var,
                        std::string_view raw) {
  if (token.empty() || token.find_first_not_of("0123456789") != std::string::npos) {
    fail_env(var, raw, "expected a non-negative integer, got '" + token + "'");
  }
  errno = 0;
  const unsigned long long value = std::strtoull(token.c_str(), nullptr, 10);
  if (errno != 0 || value > std::numeric_limits<std::size_t>::max()) {
    fail_env(var, raw, "value out of range '" + token + "'");
  }
  return static_cast<std::size_t>(value);
}

/// Duplicate unit indices in one variable are rejected rather than silently
/// collapsed (sets) or last-wins overwritten (the stall map).
void reject_duplicate(std::set<std::size_t>& seen, std::size_t unit, const char* var,
                      std::string_view raw) {
  if (!seen.insert(unit).second) {
    fail_env(var, raw, "duplicate unit " + std::to_string(unit));
  }
}

}  // namespace

std::string FaultPlan::describe() const {
  if (empty()) return "no faults";
  std::ostringstream out;
  const char* sep = "";
  if (!throw_units_.empty()) {
    out << sep << "throw in unit";
    for (const std::size_t u : throw_units_) out << ' ' << u;
    sep = "; ";
  }
  if (!stalls_.empty()) {
    out << sep << "stall";
    for (const auto& [u, d] : stalls_) out << ' ' << u << ':' << d.count() << "ms";
    sep = "; ";
  }
  if (!malformed_units_.empty()) {
    out << sep << "malformed scenario in unit";
    for (const std::size_t u : malformed_units_) out << ' ' << u;
    sep = "; ";
  }
  if (!abort_units_.empty()) {
    out << sep << "abort in unit";
    for (const std::size_t u : abort_units_) out << ' ' << u;
    sep = "; ";
  }
  if (fail_checkpoint_) out << sep << "fail at checkpoint";
  return out.str();
}

FaultPlan FaultPlan::from_env() {
  FaultPlan plan;
  if (const char* raw = std::getenv("PR_FAULT_THROW_UNIT"); raw != nullptr && *raw != '\0') {
    std::set<std::size_t> seen;
    for (const auto& token : split_commas(raw)) {
      const std::size_t unit = parse_index(token, "PR_FAULT_THROW_UNIT", raw);
      reject_duplicate(seen, unit, "PR_FAULT_THROW_UNIT", raw);
      plan.throw_in_unit(unit);
    }
  }
  if (const char* raw = std::getenv("PR_FAULT_STALL_UNIT"); raw != nullptr && *raw != '\0') {
    std::set<std::size_t> seen;
    for (const auto& token : split_commas(raw)) {
      const std::size_t colon = token.find(':');
      if (colon == std::string::npos) {
        fail_env("PR_FAULT_STALL_UNIT", raw, "expected 'unit:ms', got '" + token + "'");
      }
      const std::size_t unit =
          parse_index(token.substr(0, colon), "PR_FAULT_STALL_UNIT", raw);
      const std::size_t ms =
          parse_index(token.substr(colon + 1), "PR_FAULT_STALL_UNIT", raw);
      reject_duplicate(seen, unit, "PR_FAULT_STALL_UNIT", raw);
      plan.stall_unit(unit, std::chrono::milliseconds(ms));
    }
  }
  if (const char* raw = std::getenv("PR_FAULT_FAIL_CHECKPOINT"); raw != nullptr && *raw != '\0') {
    const std::string_view value(raw);
    if (value == "1" || value == "true" || value == "yes") {
      plan.fail_at_checkpoint();
    } else if (value != "0" && value != "false" && value != "no") {
      fail_env("PR_FAULT_FAIL_CHECKPOINT", raw, "expected 0/1");
    }
  }
  if (const char* raw = std::getenv("PR_FAULT_MALFORMED_UNIT"); raw != nullptr && *raw != '\0') {
    std::set<std::size_t> seen;
    for (const auto& token : split_commas(raw)) {
      const std::size_t unit = parse_index(token, "PR_FAULT_MALFORMED_UNIT", raw);
      reject_duplicate(seen, unit, "PR_FAULT_MALFORMED_UNIT", raw);
      plan.malformed_scenario(unit);
    }
  }
  if (const char* raw = std::getenv("PR_FAULT_ABORT_UNIT"); raw != nullptr && *raw != '\0') {
    std::set<std::size_t> seen;
    for (const auto& token : split_commas(raw)) {
      const std::size_t unit = parse_index(token, "PR_FAULT_ABORT_UNIT", raw);
      reject_duplicate(seen, unit, "PR_FAULT_ABORT_UNIT", raw);
      plan.abort_in_unit(unit);
    }
  }
  return plan;
}

}  // namespace pr::sim
