// Parallel sharded sweep execution on top of the batched forwarding engine.
//
// The paper's guarantee -- zero loss for any failure combination the cycle
// table covers -- is only demonstrable by enumerating large
// (scenario x ordered-pair x protocol) spaces.  PR 1 made one sweep
// allocation-free (sim::route_batch); this layer shards a sweep's work units
// (a failure scenario plus its affected flow list) across a persistent worker
// pool so enumeration scales with the hardware.
//
// Determinism contract: results are bit-identical for every thread count,
// including 1, and identical to the serial route_batch path.  Three rules
// make that hold:
//   1. a work unit is the atom of scheduling -- all flows of a scenario are
//      routed by one worker, in the caller's flow order, against protocol
//      instances built fresh for that unit (exactly what the serial sweeps
//      in analysis/ do per scenario);
//   2. randomness comes from per-unit streams split off the caller's seed
//      (split_seed), never from a per-thread or shared generator, so a unit
//      draws the same numbers no matter which worker runs it;
//   3. callers write per-unit results into preallocated slots and merge them
//      in canonical unit order after run() returns -- never in completion
//      order.  Integer counters are order-insensitive anyway; floating-point
//      accumulators (costs, stretch sums) are not, which is why the merge
//      order is part of the contract.
//
// Robustness contract (PR 8): the controlled overloads taking a RunControl
// return a SweepOutcome instead of throwing, stop cooperatively at unit
// boundaries on cancel/deadline/budget, contain per-unit exceptions, and
// guarantee the surviving results form the canonical prefix [0, k) -- see
// sim/run_control.hpp for the truncation contract.  The legacy void
// overloads keep their throwing behaviour, now with unit/worker context
// attached via SweepUnitError.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "graph/rng.hpp"
#include "route/scenario_cache.hpp"
#include "sim/forwarding_engine.hpp"
#include "sim/run_control.hpp"
#include "traffic/incidence.hpp"
#include "traffic/load_map.hpp"

namespace pr::obs {
class Registry;
class TraceLog;
class SweepProgress;
}  // namespace pr::obs

namespace pr::sim {

/// Optional observability attachments for an executor (see src/obs/).  All
/// three are borrowed pointers the caller keeps alive across runs; any subset
/// may be null.  Telemetry is purely observational -- attaching it must not
/// (and, by obs_test, does not) change a single result bit.
///   * registry -- per-worker obs::Counters cells; the executor installs
///     worker w's cell as the thread-local sink while w runs units, so every
///     instrumented subsystem (SPF repair, routing caches, incidence probes,
///     forwarding) attributes to the right worker without plumbing.
///   * trace    -- obs::TraceLog receiving unit/reduce/fault/stall/truncate
///     spans for chrome://tracing export.
///   * progress -- obs::SweepProgress fed per-unit start/finish events; when
///     attached, run()/run_ordered() drive a monitor thread that calls
///     progress->tick() on its configured interval (snapshot callbacks,
///     stall detection).
struct SweepTelemetry {
  obs::Registry* registry = nullptr;
  obs::TraceLog* trace = nullptr;
  obs::SweepProgress* progress = nullptr;

  [[nodiscard]] bool any() const noexcept {
    return registry != nullptr || trace != nullptr || progress != nullptr;
  }
};

/// Hard ceiling on pool size -- far above any real machine, so it only ever
/// trips on caller bugs ("-1" parsed through strtoull, uninitialised config)
/// before they reach the OS as thousands of thread spawns.
inline constexpr std::size_t kMaxSweepThreads = 4096;

/// Periodic durability hook for controlled ordered sweeps.  When attached,
/// the executor's monitor thread persists mid-run checkpoints on `cadence`
/// without ever pausing the sweep:
///
///   * serialize(k) runs on the monitor thread UNDER the executor's internal
///     lock.  reduce() is serialised by that same lock, so the watermark k is
///     frozen and the caller's streaming reducer state is EXACTLY the
///     canonical prefix [0, k) -- the blob it returns is bit-identical to the
///     checkpoint a deadline-stopped run at k would have written.  Keep it to
///     in-memory encoding (KBs of reducer state); every worker that reaches
///     its reduce step blocks while it runs.
///   * persist(k, blob) runs OFF the lock, so fsync/rename latency never
///     stalls a worker.  By the time it runs the sweep has typically moved
///     past k; that is fine -- the blob was sealed under the lock.
///
/// Either hook throwing counts a checkpoint_failure on the outcome and the
/// sweep keeps going (a missed checkpoint loses durability, never results).
/// The driver still owns the FINAL checkpoint after the run returns; this
/// hook is what bounds the re-execution window when the process dies without
/// warning (SIGKILL, std::abort) between final checkpoints.
struct AutoCheckpoint {
  std::function<std::string(std::size_t completed_units)> serialize;
  std::function<void(std::size_t completed_units, std::string&& blob)> persist;
  CheckpointCadence cadence;

  [[nodiscard]] bool active() const noexcept {
    return serialize != nullptr && persist != nullptr && cadence.any();
  }
};

/// Thrown by the legacy (void) run()/run_ordered() overloads when a unit
/// function throws: carries the failing unit index and the worker that ran
/// it, with the original exception attached via std::throw_with_nested.
/// When several in-flight units fail before the pool drains, the LOWEST unit
/// is the one rethrown, so the surfaced error is deterministic across thread
/// counts whenever the failure itself is.
class SweepUnitError : public std::runtime_error {
 public:
  SweepUnitError(std::size_t unit, std::size_t worker, const std::string& what)
      : std::runtime_error("sweep unit " + std::to_string(unit) +
                           " failed on worker " + std::to_string(worker) +
                           ": " + what),
        unit_(unit),
        worker_(worker) {}

  [[nodiscard]] std::size_t unit() const noexcept { return unit_; }
  [[nodiscard]] std::size_t worker() const noexcept { return worker_; }

 private:
  std::size_t unit_;
  std::size_t worker_;
};

/// Deterministic stream splitting (splitmix64 over seed ^ f(stream)): the
/// RNG stream for work unit `stream` of a sweep seeded with `seed`.
/// Adjacent units get statistically independent streams; the mapping depends
/// only on (seed, stream), never on thread placement.
[[nodiscard]] std::uint64_t split_seed(std::uint64_t seed, std::uint64_t stream);

/// Per-worker scratch owned by the pool: one context lives as long as its
/// worker thread, so the reusable route_batch buffer set keeps the hot loop
/// allocation-free across every unit the worker executes, across run() calls.
class WorkerContext {
 public:
  /// Reusable sweep buffers (cleared by the unit function, capacity kept).
  std::vector<FlowSpec> flows;
  std::vector<double> base_costs;
  std::vector<char> flags;
  BatchResult batch;

  /// Reusable per-dart load accumulator for demand-weighted sweeps: the
  /// load-accumulating route_batch overload resets it per call, so once warm
  /// a traffic sweep adds no per-scenario heap traffic.
  traffic::LoadMap load;

  /// Per-worker scratch for incremental traffic sweeps: affected-flow marks
  /// and the compacted re-route list a scenario cell probes out of the shared
  /// FlowIncidenceIndex.  Reused across units like the buffers above.
  traffic::IncidenceScratch incidence;

  /// Per-worker scenario routing cache: protocols that reconverge borrow
  /// delta-repaired tables from here instead of building a fresh RoutingDb
  /// per scenario.  Served tables are bit-identical to from-scratch builds,
  /// so results stay independent of worker placement.
  route::ScenarioRoutingCache routes;

  /// Per-unit RNG: reseeded to split_seed(run seed, unit) before every unit
  /// function invocation, so draws depend on the unit, not the worker.
  [[nodiscard]] graph::Rng& rng() noexcept { return rng_; }

  /// Index of the owning worker in [0, thread_count()); for diagnostics
  /// only -- results must never depend on it.
  [[nodiscard]] std::size_t worker() const noexcept { return worker_; }

 private:
  friend class SweepExecutor;
  graph::Rng rng_{0};
  std::size_t worker_ = 0;
};

/// Persistent worker pool that shards [0, unit_count) across threads.
/// Construction spawns the workers once; run() reuses them, so repeated
/// sweeps (a bench's repetitions, a multi-k enumeration) pay no per-call
/// thread churn.  run() is synchronous and admits ONE caller at a time: it
/// must not be called reentrantly from inside a unit function, nor
/// concurrently from two threads sharing the executor (enforced -- the
/// second caller gets std::logic_error instead of silently corrupted
/// sharding).  Give each driving thread its own executor instead.
class SweepExecutor {
 public:
  /// Function applied to each work unit.  Runs on a worker thread; touching
  /// anything other than per-unit slots and the passed context requires the
  /// caller's own synchronisation.
  using UnitFn = std::function<void(std::size_t unit, WorkerContext& ctx)>;

  /// Streaming reduction hook for run_ordered(): called exactly once per
  /// unit, in canonical unit order (0, 1, 2, ...), never concurrently with
  /// itself or with another reduce call.  It runs on whichever worker thread
  /// happened to close the gap, under the executor's internal lock: keep it
  /// light -- fold the unit's slot into reducer state -- and leave the heavy
  /// work to the unit function.
  using ReduceFn = std::function<void(std::size_t unit)>;

  /// `threads` == 0 selects std::thread::hardware_concurrency() (minimum 1).
  /// Throws std::invalid_argument when threads > kMaxSweepThreads.
  explicit SweepExecutor(std::size_t threads = 0);
  ~SweepExecutor();

  SweepExecutor(const SweepExecutor&) = delete;
  SweepExecutor& operator=(const SweepExecutor&) = delete;

  [[nodiscard]] std::size_t thread_count() const noexcept;

  /// Attaches (or, with a default-constructed SweepTelemetry, detaches)
  /// observability sinks for subsequent runs; sizes `telemetry.registry` to
  /// the pool.  Must not be called while a job is running (throws
  /// std::logic_error).  See SweepTelemetry for the determinism guarantee.
  void set_telemetry(const SweepTelemetry& telemetry);

  /// Applies `fn` to every unit in [0, unit_count), dynamically sharded
  /// across the pool; returns when all units finished.  `seed` roots the
  /// per-unit RNG streams.  If any invocation throws, no new units are
  /// claimed, in-flight units finish, and the lowest failing unit's
  /// exception is rethrown here wrapped in SweepUnitError (original
  /// attached via std::throw_with_nested).
  void run(std::size_t unit_count, const UnitFn& fn, std::uint64_t seed = 0);

  /// Controlled sweep: like run(), but stop signals (cancel, deadline, unit
  /// budget -- checked cooperatively before each claim), fault injection and
  /// the error policy come from `control`, and instead of throwing the call
  /// returns a SweepOutcome whose completed_units is the canonical prefix
  /// length k: units [0, k) all executed (contained failures listed in
  /// errors under kContinue), results of any unit >= k must be discarded.
  /// `control` is read-only here and may be shared with a canceller thread.
  SweepOutcome run(std::size_t unit_count, const UnitFn& fn,
                   const RunControl& control, std::uint64_t seed = 0);

  /// run() plus a canonical-order streaming reduction: after unit u's
  /// function returns, `reduce(u)` fires once the reductions of every unit
  /// below u have fired -- so the reduce sequence is 0, 1, 2, ... for every
  /// thread count, which makes order-sensitive streaming state (P^2 quantile
  /// markers, top-K heaps, floating-point accumulators) bit-identical to a
  /// serial sweep without any per-unit result vector.
  ///
  /// `window` bounds the in-flight span: unit u is not started before
  /// reduce(u - window) has returned, so the caller can hand results from
  /// unit fn to reduce fn through a ring of exactly `window` slots (index
  /// unit % window) and memory stays flat no matter how many units run.
  /// window == 0 selects default_ordered_window(); an explicit window may be
  /// as small as 1 (fully serialised pipeline).
  void run_ordered(std::size_t unit_count, const UnitFn& fn, const ReduceFn& reduce,
                   std::uint64_t seed = 0, std::size_t window = 0);

  /// Controlled ordered sweep: run_ordered() under a RunControl.  The reduce
  /// sequence is exactly 0, 1, ..., completed_units-1 however the sweep
  /// stops, so streaming reducer state is always a clean canonical prefix --
  /// the property checkpoint/resume builds on.  Under
  /// UnitErrorPolicy::kContinue a failed unit's reduce is skipped (the
  /// watermark steps over it) and the unit still counts toward the prefix;
  /// reduce() itself throwing always truncates (streaming state is
  /// potentially half-folded past that point).
  SweepOutcome run_ordered(std::size_t unit_count, const UnitFn& fn,
                           const ReduceFn& reduce, const RunControl& control,
                           std::uint64_t seed = 0, std::size_t window = 0);

  /// Controlled ordered sweep with periodic auto-checkpointing: the monitor
  /// thread invokes `checkpoint` on its cadence while the sweep runs (see
  /// AutoCheckpoint for the exact locking/prefix guarantees).  `checkpoint`
  /// must outlive the call; an inactive checkpoint (no hooks or no cadence)
  /// degrades to the plain controlled overload.  Checkpointing is durability
  /// only: results are bit-identical with it on, off, or failing.
  SweepOutcome run_ordered(std::size_t unit_count, const UnitFn& fn,
                           const ReduceFn& reduce, const RunControl& control,
                           const AutoCheckpoint& checkpoint,
                           std::uint64_t seed = 0, std::size_t window = 0);

  /// The window run_ordered(..., window = 0) selects: wide enough to keep
  /// every worker busy across reduction stalls (4 * thread_count(), floor 16).
  /// Callers sizing slot rings should use this.
  [[nodiscard]] std::size_t default_ordered_window() const noexcept;

 private:
  SweepOutcome run_job(std::size_t unit_count, const UnitFn& fn,
                       const ReduceFn* reduce, const RunControl* control,
                       const AutoCheckpoint* auto_checkpoint, std::uint64_t seed,
                       std::size_t window, bool legacy);

  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Thread count requested via the PR_SWEEP_THREADS environment variable, or
/// `fallback` when unset, unparsable or above kMaxSweepThreads.  0 means
/// "one per hardware thread"; the benches and examples all honour this so CI
/// can pin their parallelism.
[[nodiscard]] std::size_t threads_from_env(std::size_t fallback = 0);

/// Shared CLI handling for every sweep binary: the thread count from
/// argv[index] when present, else threads_from_env(fallback).  An explicit
/// argument must be a plain decimal <= kMaxSweepThreads (0 = hardware);
/// anything else throws std::invalid_argument rather than silently spawning
/// a surprise pool size.
[[nodiscard]] std::size_t threads_from_arg(int argc, char** argv, int index,
                                           std::size_t fallback = 0);

/// Strict decimal parse for CLI counts that size allocations or loops:
/// rejects signs, suffixes ("x4", "4x"), empty strings, overflow and values
/// above `max_value`.  Returns false instead of throwing so callers can
/// print their own usage line.  The thread-count helpers above use the same
/// rules.
[[nodiscard]] bool parse_count_arg(const char* raw, std::size_t max_value,
                                   std::size_t& out);

/// Mergeable reduction of FlowStats over a shard: delivery counts plus hop
/// and cost totals.  add() in flow order within a shard, merge() in canonical
/// shard order across shards -- that exact order makes the floating-point
/// cost total bit-identical to a serial sweep accumulating per shard.
struct FlowStatsReduction {
  std::size_t flows = 0;
  std::size_t delivered = 0;
  std::uint64_t hops = 0;
  double cost = 0.0;

  void add(const FlowStats& s) noexcept {
    ++flows;
    delivered += s.delivered() ? 1 : 0;
    hops += s.hops;
    cost += s.cost;
  }

  void merge(const FlowStatsReduction& other) noexcept {
    flows += other.flows;
    delivered += other.delivered;
    hops += other.hops;
    cost += other.cost;
  }
};

}  // namespace pr::sim
