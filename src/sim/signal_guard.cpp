#include "sim/signal_guard.hpp"

#include <csignal>

#include <atomic>
#include <stdexcept>

#include "sim/run_control.hpp"

namespace pr::sim {
namespace {

// The handler's whole world: a lock-free pointer to the control to cancel and
// the first signal seen.  RunControl::cancel() is a relaxed store into an
// std::atomic<bool>, which is async-signal-safe when lock-free (it is on
// every platform this builds for; the static_assert below pins that down).
std::atomic<RunControl*> g_control{nullptr};
std::atomic<int> g_signal{0};
static_assert(std::atomic<bool>::is_always_lock_free,
              "SignalGuard requires lock-free atomic<bool> for "
              "async-signal-safe cancellation");

void on_signal(int signo) {
  int expected = 0;
  g_signal.compare_exchange_strong(expected, signo, std::memory_order_relaxed);
  if (RunControl* control = g_control.load(std::memory_order_relaxed)) {
    control->cancel();
  }
}

struct sigaction g_previous_int;
struct sigaction g_previous_term;

}  // namespace

SignalGuard::SignalGuard(RunControl& control) {
  RunControl* expected = nullptr;
  if (!g_control.compare_exchange_strong(expected, &control,
                                         std::memory_order_relaxed)) {
    throw std::logic_error(
        "SignalGuard: another guard is already active in this process "
        "(rebind() the existing one instead of nesting)");
  }
  g_signal.store(0, std::memory_order_relaxed);
  struct sigaction action {};
  action.sa_handler = on_signal;
  sigemptyset(&action.sa_mask);
  // No SA_RESTART: a sweep blocked in a slow syscall (a checkpoint fsync, a
  // pipe write) should see EINTR and reach its next cancellation check.
  action.sa_flags = 0;
  ::sigaction(SIGINT, &action, &g_previous_int);
  ::sigaction(SIGTERM, &action, &g_previous_term);
}

SignalGuard::~SignalGuard() {
  ::sigaction(SIGINT, &g_previous_int, nullptr);
  ::sigaction(SIGTERM, &g_previous_term, nullptr);
  g_control.store(nullptr, std::memory_order_relaxed);
}

void SignalGuard::rebind(RunControl& control) noexcept {
  g_control.store(&control, std::memory_order_relaxed);
  // Close the handoff race: a signal delivered between legs (old control
  // cancelled, new one not yet bound) must still stop the new leg.
  if (triggered()) control.cancel();
}

bool SignalGuard::triggered() const noexcept {
  return g_signal.load(std::memory_order_relaxed) != 0;
}

int SignalGuard::signal_number() const noexcept {
  return g_signal.load(std::memory_order_relaxed);
}

}  // namespace pr::sim
