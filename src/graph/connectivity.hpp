// Connectivity analysis: components, bridges, articulation points,
// 2-edge-connectivity.
//
// Packet Re-cycling's single-failure guarantee (Section 4.2 of the paper)
// requires a 2-edge-connected network; its multi-failure guarantee holds for
// failure combinations that keep source and destination connected.  The
// experiment harness therefore needs fast residual-connectivity checks to
// filter sampled failure scenarios, and topology constructors assert
// 2-edge-connectivity up front.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace pr::graph {

/// Component id per node (ids are dense, 0-based, assigned in node order).
/// Edges in `excluded` are treated as absent.
[[nodiscard]] std::vector<std::uint32_t> connected_components(
    const Graph& g, const EdgeSet* excluded = nullptr);

/// Caller-owned scratch for repeated component computations (per-scenario
/// residual-connectivity checks, SRLG risk reports): reusing one scratch
/// across calls makes each computation allocation-free once warm.
struct ComponentScratch {
  std::vector<std::uint32_t> component;  ///< per-node ids after each call
  std::vector<NodeId> fifo;              ///< internal BFS queue
};

/// connected_components() into `scratch.component`; returns the component
/// count.  Identical ids to the allocating overload.
std::size_t connected_components_into(const Graph& g, const EdgeSet* excluded,
                                      ComponentScratch& scratch);

/// True when every node is reachable from every other (vacuously true for the
/// empty graph).  Edges in `excluded` are treated as absent.
[[nodiscard]] bool is_connected(const Graph& g, const EdgeSet* excluded = nullptr);

/// True when `a` and `b` are in the same component of G minus `excluded`.
[[nodiscard]] bool same_component(const Graph& g, NodeId a, NodeId b,
                                  const EdgeSet* excluded = nullptr);

/// All bridges (cut edges).  Multigraph-aware: a parallel pair is never a bridge.
[[nodiscard]] std::vector<EdgeId> bridges(const Graph& g);

/// All articulation points (cut vertices).
[[nodiscard]] std::vector<NodeId> articulation_points(const Graph& g);

/// Connected and bridge-free: the precondition for single-failure coverage.
[[nodiscard]] bool is_two_edge_connected(const Graph& g);

/// Connected and articulation-free (and at least 3 nodes): "2-connected" in
/// the paper's terminology.
[[nodiscard]] bool is_biconnected(const Graph& g);

/// Partition of the edges into biconnected components (blocks).  Used by the
/// planar embedder, which embeds blocks independently and merges them at cut
/// vertices.
[[nodiscard]] std::vector<std::vector<EdgeId>> biconnected_components(const Graph& g);

}  // namespace pr::graph
