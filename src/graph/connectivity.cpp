#include "graph/connectivity.hpp"

#include <algorithm>
#include <limits>
#include <stack>

namespace pr::graph {

namespace {

constexpr std::uint32_t kUnvisited = std::numeric_limits<std::uint32_t>::max();

// Iterative DFS shared by bridges / articulation points / blocks.  Tarjan
// low-link over the dart structure; the dart we arrived through is skipped by
// id, so parallel edges correctly act as back edges.
struct LowLink {
  std::vector<std::uint32_t> disc;
  std::vector<std::uint32_t> low;
  std::vector<EdgeId> bridge_list;
  std::vector<NodeId> cut_list;
  std::vector<std::vector<EdgeId>> blocks;

  explicit LowLink(const Graph& g) { run(g); }

 private:
  void run(const Graph& g) {
    const std::size_t n = g.node_count();
    disc.assign(n, kUnvisited);
    low.assign(n, kUnvisited);
    std::vector<std::uint8_t> is_cut(n, 0);
    std::uint32_t timer = 0;

    struct Frame {
      NodeId v;
      DartId entered_by;     // dart used to reach v (kInvalidDart at roots)
      std::size_t next_out;  // index into out_darts(v)
      std::uint32_t tree_children = 0;
    };

    std::vector<Frame> stack;
    std::vector<EdgeId> edge_stack;  // for biconnected components

    for (NodeId root = 0; root < n; ++root) {
      if (disc[root] != kUnvisited) continue;
      stack.push_back(Frame{root, kInvalidDart, 0});
      disc[root] = low[root] = timer++;

      while (!stack.empty()) {
        Frame& fr = stack.back();
        const NodeId v = fr.v;
        const auto outs = g.out_darts(v);
        if (fr.next_out < outs.size()) {
          const DartId d = outs[fr.next_out++];
          if (fr.entered_by != kInvalidDart && d == reverse(fr.entered_by)) {
            continue;  // don't ride the entering dart back up
          }
          const NodeId u = g.dart_head(d);
          const EdgeId e = dart_edge(d);
          if (disc[u] == kUnvisited) {
            edge_stack.push_back(e);
            ++fr.tree_children;
            disc[u] = low[u] = timer++;
            stack.push_back(Frame{u, d, 0});
          } else if (disc[u] < disc[v]) {
            edge_stack.push_back(e);  // genuine back edge (also parallel edges)
            low[v] = std::min(low[v], disc[u]);
          }
          continue;
        }

        // v fully explored: propagate low to the parent and classify.
        stack.pop_back();
        if (fr.entered_by == kInvalidDart) {
          if (fr.tree_children >= 2) is_cut[v] = 1;  // root rule
          continue;
        }
        const NodeId parent = g.dart_tail(fr.entered_by);
        const EdgeId tree_edge = dart_edge(fr.entered_by);
        low[parent] = std::min(low[parent], low[v]);
        if (low[v] > disc[parent]) bridge_list.push_back(tree_edge);
        if (low[v] >= disc[parent]) {
          // The edges accumulated above tree_edge form one block, and parent
          // is a cut vertex unless it is the root (roots use the >=2-children
          // rule at their own pop).
          const bool parent_is_root = stack.back().entered_by == kInvalidDart;
          if (!parent_is_root) is_cut[parent] = 1;
          std::vector<EdgeId> block;
          while (!edge_stack.empty()) {
            const EdgeId e = edge_stack.back();
            edge_stack.pop_back();
            block.push_back(e);
            if (e == tree_edge) break;
          }
          blocks.push_back(std::move(block));
        }
      }
    }
    for (NodeId v = 0; v < n; ++v) {
      if (is_cut[v] != 0) cut_list.push_back(v);
    }
  }
};

}  // namespace

std::size_t connected_components_into(const Graph& g, const EdgeSet* excluded,
                                      ComponentScratch& scratch) {
  const std::size_t n = g.node_count();
  auto& comp = scratch.component;
  auto& fifo = scratch.fifo;
  comp.assign(n, kUnvisited);
  fifo.clear();
  fifo.reserve(n);
  std::uint32_t next_comp = 0;
  for (NodeId s = 0; s < n; ++s) {
    if (comp[s] != kUnvisited) continue;
    comp[s] = next_comp;
    fifo.clear();
    fifo.push_back(s);
    for (std::size_t head = 0; head < fifo.size(); ++head) {
      const NodeId v = fifo[head];
      for (DartId d : g.out_darts(v)) {
        if (excluded != nullptr && excluded->contains(dart_edge(d))) continue;
        const NodeId u = g.dart_head(d);
        if (comp[u] == kUnvisited) {
          comp[u] = next_comp;
          fifo.push_back(u);
        }
      }
    }
    ++next_comp;
  }
  return next_comp;
}

std::vector<std::uint32_t> connected_components(const Graph& g, const EdgeSet* excluded) {
  ComponentScratch scratch;
  connected_components_into(g, excluded, scratch);
  return std::move(scratch.component);
}

bool is_connected(const Graph& g, const EdgeSet* excluded) {
  if (g.node_count() == 0) return true;
  ComponentScratch scratch;
  return connected_components_into(g, excluded, scratch) == 1;
}

bool same_component(const Graph& g, NodeId a, NodeId b, const EdgeSet* excluded) {
  const auto comp = connected_components(g, excluded);
  return comp.at(a) == comp.at(b);
}

std::vector<EdgeId> bridges(const Graph& g) {
  LowLink ll(g);
  auto result = ll.bridge_list;
  std::sort(result.begin(), result.end());
  return result;
}

std::vector<NodeId> articulation_points(const Graph& g) {
  LowLink ll(g);
  return ll.cut_list;  // already in node order
}

bool is_two_edge_connected(const Graph& g) {
  return g.node_count() >= 2 && is_connected(g) && bridges(g).empty();
}

bool is_biconnected(const Graph& g) {
  return g.node_count() >= 3 && is_connected(g) && articulation_points(g).empty();
}

std::vector<std::vector<EdgeId>> biconnected_components(const Graph& g) {
  LowLink ll(g);
  auto blocks = ll.blocks;
  for (auto& b : blocks) std::sort(b.begin(), b.end());
  std::sort(blocks.begin(), blocks.end());
  return blocks;
}

}  // namespace pr::graph
