// Reusable scratch state for shortest-path-tree computation.
//
// Failure sweeps build the same trees over and over (one per destination per
// scenario), so the SPF core must not allocate per tree.  SpfWorkspace owns
// the transient state -- an index-based binary heap ordered by the canonical
// (cost, hops, node-id) key, plus the orphan-classification scratch used by
// delta repair -- and writes results straight into caller-provided columns
// (e.g. route::RoutingDb's contiguous destination-major arrays).  Capacity is
// retained across calls, so a warm workspace allocates nothing.
//
// Three entry points:
//   * full_build: Dijkstra from scratch, bit-identical to the classic
//     graph::shortest_paths_to (which is now a thin wrapper over it).
//   * repair: Ramalingam-Reps-style delta repair.  Given columns holding the
//     PRISTINE (no-exclusions) tree, detaches the subtrees orphaned by the
//     excluded edges and regrows only them from the surviving boundary,
//     seeded in the exact (cost, hops, node-id) pop order a from-scratch run
//     would relax them in -- so the repaired columns are bit-identical
//     (dist, hops AND next_dart) to a full rebuild under the same exclusions.
//   * repair_tree: the backbone-sweep fast path.  Same post-state as repair,
//     but every per-tree cost is O(orphan region), not O(n): orphan subtrees
//     are discovered by descending precomputed pristine child lists from the
//     failed tree edges, and all per-node scratch is epoch-stamped so nothing
//     is cleared per call.  A sweep batching many destination trees per
//     scenario through one workspace (route::RoutingDb::rebuild) therefore
//     pays for the trees' damage, not for the topology size.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace pr::graph {

class SpfWorkspace {
 public:
  /// Dijkstra toward `destination`, writing per-node cost / hop count / first
  /// dart into `dist` / `hops` / `next_dart` (each an array of at least
  /// g.node_count() entries).  Edges in `excluded` (when non-null) are
  /// ignored.  Ties break by (cost, hops, node id); unreachable nodes end as
  /// (kUnreachable, UINT32_MAX, kInvalidDart).
  void full_build(const Graph& g, NodeId destination, const EdgeSet* excluded,
                  Weight* dist, std::uint32_t* hops, DartId* next_dart);

  /// Delta repair: the columns must currently hold the pristine
  /// (no-exclusions) tree toward `destination`; on return they hold exactly
  /// what full_build with `excluded` would have produced.  Cost is
  /// O(n + affected-region search) instead of a full Dijkstra: nodes whose
  /// pristine path avoids every excluded edge are provably unchanged
  /// (removing edges cannot shorten a surviving path, and the deterministic
  /// parent choice is preserved), so only orphaned subtrees are regrown.
  void repair(const Graph& g, NodeId destination, const EdgeSet& excluded,
              Weight* dist, std::uint32_t* hops, DartId* next_dart);

  /// Child lists of one destination's pristine shortest-path tree in CSR form:
  /// node v's tree children are ids[offsets[v]] .. ids[offsets[v + 1]], with
  /// offsets absolute into the shared id array (so per-destination slices of
  /// one flat index share a single payload; route::RoutingDb materialises the
  /// index this way for all destinations at once).
  struct TreeChildren {
    const std::uint32_t* offsets;
    const NodeId* ids;
  };

  /// Batched-sweep tree repair.  The columns must hold the pristine tree and
  /// `children` must describe that same tree; on return the columns equal
  /// what repair() / a from-scratch build with `excluded` would produce, bit
  /// for bit.  Unlike repair(), no step scans all n nodes: the orphan set is
  /// the union of pristine subtrees hanging below excluded tree edges, found
  /// by descending the child lists from the failed darts' tail endpoints, and
  /// the per-node marks are epoch stamps that are never cleared.  Returns the
  /// orphan list -- the exact set of rows that may now differ from pristine
  /// (callers use it for sparse restores); valid until the next workspace
  /// call.
  [[nodiscard]] std::span<const NodeId> repair_tree(const Graph& g,
                                                    const EdgeSet& excluded,
                                                    Weight* dist, std::uint32_t* hops,
                                                    DartId* next_dart,
                                                    TreeChildren children);

 private:
  /// Heap key: the canonical Dijkstra pop order (cost, hops, node id).
  /// Entries are lazily deleted -- a pop that no longer matches the node's
  /// current label is stale and skipped, mirroring the reference algorithm.
  struct Entry {
    Weight cost;
    std::uint32_t hops;
    NodeId node;

    [[nodiscard]] bool operator<(const Entry& other) const noexcept {
      if (cost != other.cost) return cost < other.cost;
      if (hops != other.hops) return hops < other.hops;
      return node < other.node;
    }
  };

  /// Node roles during repair.
  enum : std::uint8_t {
    kUnknown = 0,  ///< orphan status not yet resolved
    kSafe = 1,     ///< pristine path survives; label and parent keep
    kOrphan = 2,   ///< pristine path crosses an excluded edge; regrow
    kSource = 3,   ///< safe boundary node already pushed as a repair seed
  };

  void heap_push(Entry e);
  [[nodiscard]] Entry heap_pop();

  /// Shared pop/relax loop.  `skip_relax(u)` vetoes label updates for node u;
  /// repair passes filters that restrict relaxation to orphans (safe labels
  /// are final and the reference run could never improve them either).
  template <typename SkipRelax>
  void run_impl(const Graph& g, const EdgeSet* excluded, Weight* dist,
                std::uint32_t* hops, DartId* next_dart, SkipRelax skip_relax);

  /// Advances the epoch-stamp pair used by repair_tree (orphan mark, seed
  /// mark) and sizes stamp_ for `n` nodes, zeroing it only on counter wrap.
  void advance_stamps(std::size_t n);

  std::vector<Entry> heap_;
  std::vector<std::uint8_t> state_;  ///< per-node role during repair
  std::vector<NodeId> chain_;        ///< memoised-walk / subtree-BFS scratch
  std::vector<std::uint32_t> stamp_;  ///< repair_tree per-node epoch marks
  std::uint32_t stamp_cur_ = 0;       ///< current orphan mark (seed = cur + 1)
  std::vector<NodeId> orphans_;       ///< repair_tree result list
};

}  // namespace pr::graph
