// Shortest-path trees toward a destination.
//
// Packet Re-cycling routes packets *to* destinations, so the natural object is
// the reverse shortest-path tree rooted at the destination: for every node v
// it stores the first dart of v's shortest path toward the destination, the
// total cost, and the hop count.  The hop count doubles as the paper's default
// "distance discriminator" (Section 4.3); the weighted cost is the alternative
// discriminator evaluated in ablation A4.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace pr::graph {

/// Reverse shortest-path tree: per-node next dart / cost / hops toward `destination`.
struct ShortestPathTree {
  NodeId destination = kInvalidNode;
  /// dist[v] = weighted cost of the shortest v -> destination path
  /// (infinity when unreachable).
  std::vector<Weight> dist;
  /// hops[v] = number of links on that same path (ties broken toward fewer hops).
  std::vector<std::uint32_t> hops;
  /// next_dart[v] = first dart on the path (kInvalidDart at the destination and
  /// at unreachable nodes).
  std::vector<DartId> next_dart;

  [[nodiscard]] bool reachable(NodeId v) const;
};

/// Dijkstra from `destination` over the undirected graph, optionally ignoring
/// the edges in `excluded` (the failure set).  Deterministic: ties are broken
/// first by hop count, then by smaller neighbour id.
///
/// This is a thin reference wrapper over SpfWorkspace::full_build (one
/// workspace + tree allocation per call); hot paths that build many trees
/// should hold a workspace and write into their own columns instead.
[[nodiscard]] ShortestPathTree shortest_paths_to(const Graph& g, NodeId destination,
                                                 const EdgeSet* excluded = nullptr);

/// Follows `next_dart` from `source`; returns the node sequence
/// source, ..., destination (empty if unreachable; single element if source ==
/// destination).
[[nodiscard]] std::vector<NodeId> extract_path(const Graph& g, const ShortestPathTree& spt,
                                               NodeId source);

/// Weighted cost of the path `nodes` (consecutive nodes must be adjacent;
/// throws otherwise).  Used to price the routes packets actually travelled.
[[nodiscard]] Weight path_cost(const Graph& g, const std::vector<NodeId>& nodes);

/// Weighted graph diameter (max finite shortest-path cost over all pairs).
[[nodiscard]] Weight weighted_diameter(const Graph& g);

/// Hop-count diameter: max hops of any shortest path, with unit-cost search.
[[nodiscard]] std::uint32_t hop_diameter(const Graph& g);

}  // namespace pr::graph
