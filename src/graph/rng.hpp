// Deterministic randomness for experiments.
//
// Every stochastic component in the library draws from an explicitly seeded
// Rng so that tests and benches are reproducible; benches print their seed.
#pragma once

#include <cstdint>
#include <random>

namespace pr::graph {

/// Thin wrapper over mt19937_64 with the handful of draws the library needs.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [0, bound) ; bound must be > 0.
  [[nodiscard]] std::size_t below(std::size_t bound) {
    return std::uniform_int_distribution<std::size_t>(0, bound - 1)(engine_);
  }

  /// Uniform real in [0, 1).
  [[nodiscard]] double unit() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Bernoulli draw.
  [[nodiscard]] bool chance(double p) { return unit() < p; }

  [[nodiscard]] std::mt19937_64& engine() noexcept { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace pr::graph
