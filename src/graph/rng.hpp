// Deterministic randomness for experiments.
//
// Every stochastic component in the library draws from an explicitly seeded
// Rng so that tests and benches are reproducible; benches print their seed.
#pragma once

#include <cstdint>
#include <random>

namespace pr::graph {

/// Deterministic stream splitting -- splitmix64 (Steele et al.), the standard
/// generator-splitting finaliser: one pass over seed + golden-ratio-spaced
/// stream index.  Adjacent streams get statistically independent seeds; the
/// mapping depends only on (seed, stream).  This is the library-wide seeding
/// discipline: sweep units (sim::split_seed wraps this), demand generators
/// and any other per-stream randomness derive their Rng seeds here.
[[nodiscard]] constexpr std::uint64_t split_seed(std::uint64_t seed,
                                                 std::uint64_t stream) noexcept {
  std::uint64_t z = seed + 0x9E3779B97F4A7C15ULL * (stream + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Thin wrapper over mt19937_64 with the handful of draws the library needs.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [0, bound) ; bound must be > 0.
  [[nodiscard]] std::size_t below(std::size_t bound) {
    return std::uniform_int_distribution<std::size_t>(0, bound - 1)(engine_);
  }

  /// Uniform real in [0, 1).
  [[nodiscard]] double unit() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Bernoulli draw.
  [[nodiscard]] bool chance(double p) { return unit() < p; }

  [[nodiscard]] std::mt19937_64& engine() noexcept { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace pr::graph
