#include "graph/generators.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <stdexcept>
#include <string>
#include <utility>

namespace pr::graph {

Graph ring(std::size_t n) {
  if (n < 3) throw std::invalid_argument("ring: need n >= 3");
  Graph g(n);
  for (NodeId v = 0; v < n; ++v) {
    g.add_edge(v, static_cast<NodeId>((v + 1) % n));
  }
  return g;
}

Graph complete(std::size_t n) {
  if (n < 2) throw std::invalid_argument("complete: need n >= 2");
  Graph g(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) g.add_edge(u, v);
  }
  return g;
}

Graph grid(std::size_t rows, std::size_t cols, bool wrap) {
  if (rows < 2 || cols < 2) throw std::invalid_argument("grid: need rows, cols >= 2");
  if (wrap && (rows < 3 || cols < 3)) {
    throw std::invalid_argument("grid: wrap requires rows, cols >= 3");
  }
  Graph g(rows * cols);
  const auto id = [cols](std::size_t r, std::size_t c) {
    return static_cast<NodeId>(r * cols + c);
  };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) g.add_edge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) g.add_edge(id(r, c), id(r + 1, c));
    }
  }
  if (wrap) {
    for (std::size_t r = 0; r < rows; ++r) g.add_edge(id(r, cols - 1), id(r, 0));
    for (std::size_t c = 0; c < cols; ++c) g.add_edge(id(rows - 1, c), id(0, c));
  }
  return g;
}

Graph torus(std::size_t rows, std::size_t cols) { return grid(rows, cols, true); }

Graph erdos_renyi(std::size_t n, double p, Rng& rng) {
  if (n < 2) throw std::invalid_argument("erdos_renyi: need n >= 2");
  if (p < 0 || p > 1) throw std::invalid_argument("erdos_renyi: p must be in [0,1]");
  Graph g(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      if (rng.chance(p)) g.add_edge(u, v);
    }
  }
  return g;
}

Graph waxman(std::size_t n, double alpha, double beta, Rng& rng) {
  if (n < 2) throw std::invalid_argument("waxman: need n >= 2");
  if (alpha <= 0 || beta <= 0) throw std::invalid_argument("waxman: alpha, beta > 0");
  std::vector<std::pair<double, double>> pos(n);
  for (auto& [x, y] : pos) {
    x = rng.unit();
    y = rng.unit();
  }
  const double scale = beta * std::sqrt(2.0);
  Graph g(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      const double dx = pos[u].first - pos[v].first;
      const double dy = pos[u].second - pos[v].second;
      const double dist = std::sqrt(dx * dx + dy * dy);
      if (rng.chance(alpha * std::exp(-dist / scale))) g.add_edge(u, v);
    }
  }
  return g;
}

Graph random_two_edge_connected(std::size_t n, std::size_t extra_edges, Rng& rng) {
  if (n < 3) throw std::invalid_argument("random_two_edge_connected: need n >= 3");
  const std::size_t max_chords = n * (n - 1) / 2 - n;
  if (extra_edges > max_chords) {
    throw std::invalid_argument("random_two_edge_connected: too many extra edges");
  }
  Graph g = ring(n);
  std::set<std::pair<NodeId, NodeId>> used;
  for (NodeId v = 0; v < n; ++v) {
    const auto u = static_cast<NodeId>((v + 1) % n);
    used.insert({std::min(v, u), std::max(v, u)});
  }
  std::size_t added = 0;
  while (added < extra_edges) {
    const auto u = static_cast<NodeId>(rng.below(n));
    const auto v = static_cast<NodeId>(rng.below(n));
    if (u == v) continue;
    const auto key = std::make_pair(std::min(u, v), std::max(u, v));
    if (used.contains(key)) continue;
    used.insert(key);
    g.add_edge(key.first, key.second);
    ++added;
  }
  return g;
}

Graph random_outerplanar(std::size_t n, std::size_t chords, Rng& rng) {
  if (n < 3) throw std::invalid_argument("random_outerplanar: need n >= 3");
  Graph g = ring(n);
  std::vector<std::pair<NodeId, NodeId>> placed;

  // Chords (a,b) and (c,d), normalised a<b and c<d, cross iff one endpoint of
  // the second lies strictly inside (a,b) and the other strictly outside.
  const auto crosses = [](std::pair<NodeId, NodeId> x, std::pair<NodeId, NodeId> y) {
    const bool c_inside = y.first > x.first && y.first < x.second;
    const bool d_inside = y.second > x.first && y.second < x.second;
    return c_inside != d_inside;
  };

  std::size_t attempts = 8 * chords + 64;
  while (chords > 0 && attempts-- > 0) {
    auto a = static_cast<NodeId>(rng.below(n));
    auto b = static_cast<NodeId>(rng.below(n));
    if (a > b) std::swap(a, b);
    if (a == b || b - a == 1 || (a == 0 && b + 1 == n)) continue;  // ring edge
    const std::pair<NodeId, NodeId> cand{a, b};
    bool ok = std::find(placed.begin(), placed.end(), cand) == placed.end();
    for (const auto& p : placed) {
      if (!ok) break;
      if (crosses(p, cand) || crosses(cand, p)) ok = false;
    }
    if (!ok) continue;
    placed.push_back(cand);
    g.add_edge(a, b);
    --chords;
  }
  return g;
}

IspTopology hierarchical_isp(const IspParams& params, Rng& rng) {
  if (params.core < 3) {
    throw std::invalid_argument("hierarchical_isp: need core >= 3");
  }
  if (params.aggs_per_core == 0) {
    throw std::invalid_argument("hierarchical_isp: need aggs_per_core >= 1");
  }
  if (params.agg_cross_link_prob < 0 || params.agg_cross_link_prob > 1) {
    throw std::invalid_argument("hierarchical_isp: cross-link prob in [0,1]");
  }
  if (params.core_weight <= 0 || params.agg_weight <= 0 ||
      params.edge_weight <= 0) {
    throw std::invalid_argument("hierarchical_isp: weights must be positive");
  }

  IspTopology t;
  t.core_count = params.core;
  t.aggregation_count = params.core * params.aggs_per_core;
  t.edge_router_count = t.aggregation_count * params.edges_per_agg;
  Graph& g = t.graph;
  for (std::size_t i = 0; i < t.core_count; ++i) g.add_node("c" + std::to_string(i));
  for (std::size_t i = 0; i < t.aggregation_count; ++i) {
    g.add_node("a" + std::to_string(i));
  }
  for (std::size_t i = 0; i < t.edge_router_count; ++i) {
    g.add_node("e" + std::to_string(i));
  }

  std::set<std::pair<NodeId, NodeId>> used;
  const auto add_once = [&](NodeId u, NodeId v, Weight w) {
    if (u == v) return false;
    const auto key = std::make_pair(std::min(u, v), std::max(u, v));
    if (!used.insert(key).second) return false;
    g.add_edge(u, v, w);
    return true;
  };

  // Core: ring plus degree-preferential chords (Barabasi-Albert flavour).
  // The urn holds each core node once per incident core link, so
  // well-connected cores attract further chords -- the heavy-tailed backbone
  // degrees the Topology Zoo carrier maps show.
  std::vector<NodeId> urn;
  for (NodeId c = 0; c < params.core; ++c) {
    const auto next = static_cast<NodeId>((c + 1) % params.core);
    add_once(c, next, params.core_weight);
    urn.push_back(c);
    urn.push_back(next);
  }
  std::size_t placed = 0;
  std::size_t attempts = 8 * params.core_extra_chords + 64;
  while (placed < params.core_extra_chords && attempts-- > 0) {
    const NodeId u = urn[rng.below(urn.size())];
    const NodeId v = urn[rng.below(urn.size())];
    if (!add_once(u, v, params.core_weight)) continue;
    urn.push_back(u);
    urn.push_back(v);
    ++placed;
  }

  // Aggregation tier: aggs_per_core per core, each dual-homed to its owning
  // core and that core's ring successor.  Two uplinks to DISTINCT nodes of an
  // already 2-edge-connected subgraph form an ear, so 2-edge-connectivity is
  // preserved tier by tier.
  const auto agg_base = static_cast<NodeId>(t.core_count);
  for (std::size_t i = 0; i < t.aggregation_count; ++i) {
    const auto agg = static_cast<NodeId>(agg_base + i);
    const auto home = static_cast<NodeId>(i / params.aggs_per_core);
    const auto backup = static_cast<NodeId>((home + 1) % params.core);
    add_once(agg, home, params.agg_weight);
    add_once(agg, backup, params.agg_weight);
  }
  // Lateral aggregation peerings (metro-ring shortcuts).
  for (std::size_t i = 0; i < t.aggregation_count; ++i) {
    if (!rng.chance(params.agg_cross_link_prob)) continue;
    const std::size_t j = rng.below(t.aggregation_count);
    add_once(static_cast<NodeId>(agg_base + i), static_cast<NodeId>(agg_base + j),
             params.agg_weight);
  }

  // Edge tier: dual-homed to the owning aggregation and its successor
  // (distinct because the aggregation tier always has >= 3 routers).
  const auto edge_base = static_cast<NodeId>(t.core_count + t.aggregation_count);
  for (std::size_t i = 0; i < t.edge_router_count; ++i) {
    const auto er = static_cast<NodeId>(edge_base + i);
    const std::size_t owner = i / params.edges_per_agg;
    add_once(er, static_cast<NodeId>(agg_base + owner), params.edge_weight);
    add_once(er,
             static_cast<NodeId>(agg_base + (owner + 1) % t.aggregation_count),
             params.edge_weight);
  }
  return t;
}

IspParams sized_isp_params(std::size_t approx_nodes) {
  if (approx_nodes < 27) {
    throw std::invalid_argument("sized_isp_params: need approx_nodes >= 27");
  }
  IspParams p;
  p.core = std::clamp<std::size_t>(approx_nodes / 64, 8, 64);
  p.aggs_per_core = 3;
  // Solve approx = core * (1 + aggs * (1 + e)) for the edge fan-out.
  const double per_core = static_cast<double>(approx_nodes) / static_cast<double>(p.core);
  const double e = (per_core - 1.0) / static_cast<double>(p.aggs_per_core) - 1.0;
  p.edges_per_agg = e < 1.0 ? 1 : static_cast<std::size_t>(std::llround(e));
  p.core_extra_chords = p.core / 2;
  return p;
}

Graph petersen() {
  Graph g(10);
  // Outer 5-cycle, inner pentagram, five spokes.
  for (NodeId v = 0; v < 5; ++v) {
    g.add_edge(v, (v + 1) % 5);
    g.add_edge(static_cast<NodeId>(5 + v), static_cast<NodeId>(5 + (v + 2) % 5));
    g.add_edge(v, static_cast<NodeId>(5 + v));
  }
  return g;
}

Graph k5() { return complete(5); }

Graph k33() {
  Graph g(6);
  for (NodeId u = 0; u < 3; ++u) {
    for (NodeId v = 3; v < 6; ++v) g.add_edge(u, v);
  }
  return g;
}

}  // namespace pr::graph
