#include "graph/generators.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <stdexcept>
#include <utility>

namespace pr::graph {

Graph ring(std::size_t n) {
  if (n < 3) throw std::invalid_argument("ring: need n >= 3");
  Graph g(n);
  for (NodeId v = 0; v < n; ++v) {
    g.add_edge(v, static_cast<NodeId>((v + 1) % n));
  }
  return g;
}

Graph complete(std::size_t n) {
  if (n < 2) throw std::invalid_argument("complete: need n >= 2");
  Graph g(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) g.add_edge(u, v);
  }
  return g;
}

Graph grid(std::size_t rows, std::size_t cols, bool wrap) {
  if (rows < 2 || cols < 2) throw std::invalid_argument("grid: need rows, cols >= 2");
  if (wrap && (rows < 3 || cols < 3)) {
    throw std::invalid_argument("grid: wrap requires rows, cols >= 3");
  }
  Graph g(rows * cols);
  const auto id = [cols](std::size_t r, std::size_t c) {
    return static_cast<NodeId>(r * cols + c);
  };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) g.add_edge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) g.add_edge(id(r, c), id(r + 1, c));
    }
  }
  if (wrap) {
    for (std::size_t r = 0; r < rows; ++r) g.add_edge(id(r, cols - 1), id(r, 0));
    for (std::size_t c = 0; c < cols; ++c) g.add_edge(id(rows - 1, c), id(0, c));
  }
  return g;
}

Graph torus(std::size_t rows, std::size_t cols) { return grid(rows, cols, true); }

Graph erdos_renyi(std::size_t n, double p, Rng& rng) {
  if (n < 2) throw std::invalid_argument("erdos_renyi: need n >= 2");
  if (p < 0 || p > 1) throw std::invalid_argument("erdos_renyi: p must be in [0,1]");
  Graph g(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      if (rng.chance(p)) g.add_edge(u, v);
    }
  }
  return g;
}

Graph waxman(std::size_t n, double alpha, double beta, Rng& rng) {
  if (n < 2) throw std::invalid_argument("waxman: need n >= 2");
  if (alpha <= 0 || beta <= 0) throw std::invalid_argument("waxman: alpha, beta > 0");
  std::vector<std::pair<double, double>> pos(n);
  for (auto& [x, y] : pos) {
    x = rng.unit();
    y = rng.unit();
  }
  const double scale = beta * std::sqrt(2.0);
  Graph g(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      const double dx = pos[u].first - pos[v].first;
      const double dy = pos[u].second - pos[v].second;
      const double dist = std::sqrt(dx * dx + dy * dy);
      if (rng.chance(alpha * std::exp(-dist / scale))) g.add_edge(u, v);
    }
  }
  return g;
}

Graph random_two_edge_connected(std::size_t n, std::size_t extra_edges, Rng& rng) {
  if (n < 3) throw std::invalid_argument("random_two_edge_connected: need n >= 3");
  const std::size_t max_chords = n * (n - 1) / 2 - n;
  if (extra_edges > max_chords) {
    throw std::invalid_argument("random_two_edge_connected: too many extra edges");
  }
  Graph g = ring(n);
  std::set<std::pair<NodeId, NodeId>> used;
  for (NodeId v = 0; v < n; ++v) {
    const auto u = static_cast<NodeId>((v + 1) % n);
    used.insert({std::min(v, u), std::max(v, u)});
  }
  std::size_t added = 0;
  while (added < extra_edges) {
    const auto u = static_cast<NodeId>(rng.below(n));
    const auto v = static_cast<NodeId>(rng.below(n));
    if (u == v) continue;
    const auto key = std::make_pair(std::min(u, v), std::max(u, v));
    if (used.contains(key)) continue;
    used.insert(key);
    g.add_edge(key.first, key.second);
    ++added;
  }
  return g;
}

Graph random_outerplanar(std::size_t n, std::size_t chords, Rng& rng) {
  if (n < 3) throw std::invalid_argument("random_outerplanar: need n >= 3");
  Graph g = ring(n);
  std::vector<std::pair<NodeId, NodeId>> placed;

  // Chords (a,b) and (c,d), normalised a<b and c<d, cross iff one endpoint of
  // the second lies strictly inside (a,b) and the other strictly outside.
  const auto crosses = [](std::pair<NodeId, NodeId> x, std::pair<NodeId, NodeId> y) {
    const bool c_inside = y.first > x.first && y.first < x.second;
    const bool d_inside = y.second > x.first && y.second < x.second;
    return c_inside != d_inside;
  };

  std::size_t attempts = 8 * chords + 64;
  while (chords > 0 && attempts-- > 0) {
    auto a = static_cast<NodeId>(rng.below(n));
    auto b = static_cast<NodeId>(rng.below(n));
    if (a > b) std::swap(a, b);
    if (a == b || b - a == 1 || (a == 0 && b + 1 == n)) continue;  // ring edge
    const std::pair<NodeId, NodeId> cand{a, b};
    bool ok = std::find(placed.begin(), placed.end(), cand) == placed.end();
    for (const auto& p : placed) {
      if (!ok) break;
      if (crosses(p, cand) || crosses(cand, p)) ok = false;
    }
    if (!ok) continue;
    placed.push_back(cand);
    g.add_edge(a, b);
    --chords;
  }
  return g;
}

Graph petersen() {
  Graph g(10);
  // Outer 5-cycle, inner pentagram, five spokes.
  for (NodeId v = 0; v < 5; ++v) {
    g.add_edge(v, (v + 1) % 5);
    g.add_edge(static_cast<NodeId>(5 + v), static_cast<NodeId>(5 + (v + 2) % 5));
    g.add_edge(v, static_cast<NodeId>(5 + v));
  }
  return g;
}

Graph k5() { return complete(5); }

Graph k33() {
  Graph g(6);
  for (NodeId u = 0; u < 3; ++u) {
    for (NodeId v = 3; v < 6; ++v) g.add_edge(u, v);
  }
  return g;
}

}  // namespace pr::graph
