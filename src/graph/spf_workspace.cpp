#include "graph/spf_workspace.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <utility>

#include "obs/telemetry.hpp"

namespace pr::graph {

namespace {
constexpr std::uint32_t kNoHops = std::numeric_limits<std::uint32_t>::max();

/// std::*_heap builds a max-heap; invert the comparator for a min-heap.
/// Entries are pairwise-distinct tuples (a node is re-pushed only on strict
/// label improvement), so the (cost, hops, node) total order makes the pop
/// sequence identical to the reference std::priority_queue.
constexpr auto kEntryGreater = [](const auto& a, const auto& b) { return b < a; };
}  // namespace

void SpfWorkspace::heap_push(Entry e) {
  heap_.push_back(e);
  std::push_heap(heap_.begin(), heap_.end(), kEntryGreater);
}

SpfWorkspace::Entry SpfWorkspace::heap_pop() {
  std::pop_heap(heap_.begin(), heap_.end(), kEntryGreater);
  const Entry top = heap_.back();
  heap_.pop_back();
  return top;
}

template <typename SkipRelax>
void SpfWorkspace::run_impl(const Graph& g, const EdgeSet* excluded, Weight* dist,
                            std::uint32_t* hops, DartId* next_dart,
                            SkipRelax skip_relax) {
  while (!heap_.empty()) {
    const Entry e = heap_pop();
    const NodeId v = e.node;
    if (e.cost > dist[v] || (e.cost == dist[v] && e.hops > hops[v])) {
      continue;  // stale entry
    }
    // Relax v's neighbours: the tree grows from the destination outward, so a
    // neighbour u reaches the destination via the dart u->v.
    for (const DartId d_vu : g.out_darts(v)) {
      const EdgeId edge = dart_edge(d_vu);
      if (excluded != nullptr && excluded->contains(edge)) continue;
      const NodeId u = g.dart_head(d_vu);
      if (skip_relax(u)) continue;
      const Weight cand = e.cost + g.edge_weight(edge);
      const std::uint32_t cand_hops = e.hops + 1;
      if (cand < dist[u] || (cand == dist[u] && cand_hops < hops[u])) {
        dist[u] = cand;
        hops[u] = cand_hops;
        next_dart[u] = reverse(d_vu);  // dart u->v
        heap_push(Entry{cand, cand_hops, u});
      }
    }
  }
}

void SpfWorkspace::full_build(const Graph& g, NodeId destination,
                              const EdgeSet* excluded, Weight* dist,
                              std::uint32_t* hops, DartId* next_dart) {
  if (destination >= g.node_count()) {
    throw std::out_of_range("SpfWorkspace::full_build: destination out of range");
  }
  obs::count(obs::Counter::kSpfFullBuilds);
  const std::size_t n = g.node_count();
  std::fill_n(dist, n, kUnreachable);
  std::fill_n(hops, n, kNoHops);
  std::fill_n(next_dart, n, kInvalidDart);
  dist[destination] = 0;
  hops[destination] = 0;
  heap_.clear();
  heap_push(Entry{0.0, 0U, destination});
  run_impl(g, excluded, dist, hops, next_dart, [](NodeId) { return false; });
}

void SpfWorkspace::repair(const Graph& g, NodeId destination, const EdgeSet& excluded,
                          Weight* dist, std::uint32_t* hops, DartId* next_dart) {
  if (destination >= g.node_count()) {
    throw std::out_of_range("SpfWorkspace::repair: destination out of range");
  }
  if (excluded.empty()) return;  // pristine columns already correct
  obs::count(obs::Counter::kSpfRepairs);
  const std::size_t n = g.node_count();

  // 1. Classify every node: a node is orphaned exactly when its pristine tree
  //    path crosses an excluded edge, i.e. its own next dart failed or its
  //    tree parent is orphaned.  Memoised walk toward the destination: each
  //    node is resolved once, so classification is O(n) total.
  state_.assign(n, kUnknown);
  state_[destination] = kSafe;
  bool any_orphans = false;
  for (NodeId v = 0; v < n; ++v) {
    if (state_[v] != kUnknown) continue;
    chain_.clear();
    NodeId w = v;
    while (state_[w] == kUnknown) {
      const DartId d = next_dart[w];
      if (d == kInvalidDart) {
        // Pristine-unreachable: removing edges cannot connect it; keep as is.
        state_[w] = kSafe;
        break;
      }
      if (excluded.contains(dart_edge(d))) {
        state_[w] = kOrphan;
        break;
      }
      chain_.push_back(w);
      if (chain_.size() > n) {
        throw std::logic_error("SpfWorkspace::repair: cycle in pristine tree");
      }
      w = g.dart_head(d);
    }
    const std::uint8_t resolved = state_[w];
    any_orphans = any_orphans || resolved == kOrphan;
    for (const NodeId u : chain_) state_[u] = resolved;
  }
  if (!any_orphans) return;

  // 2. Detach the orphaned subtrees and seed the regrow frontier.  Every safe
  //    node adjacent to an orphan over a surviving edge is pushed once with
  //    its (final, unchanged) label: the heap then interleaves those boundary
  //    sources with regrown orphans in exactly the (cost, hops, id) order a
  //    from-scratch run pops them, so each orphan sees the same relaxation
  //    sequence -- and therefore records the same parent dart -- as a full
  //    rebuild.
  heap_.clear();
  for (NodeId v = 0; v < n; ++v) {
    if (state_[v] != kOrphan) continue;
    dist[v] = kUnreachable;
    hops[v] = kNoHops;
    next_dart[v] = kInvalidDart;
  }
  for (NodeId v = 0; v < n; ++v) {
    if (state_[v] != kOrphan) continue;
    for (const DartId d : g.out_darts(v)) {
      if (excluded.contains(dart_edge(d))) continue;
      const NodeId u = g.dart_head(d);
      if (state_[u] == kSafe && dist[u] < kUnreachable) {
        state_[u] = kSource;  // push each boundary node once
        heap_push(Entry{dist[u], hops[u], u});
      }
    }
  }
  run_impl(g, &excluded, dist, hops, next_dart,
           [this](NodeId u) { return state_[u] != kOrphan; });
}

void SpfWorkspace::advance_stamps(std::size_t n) {
  if (stamp_.size() < n) stamp_.resize(n, 0);
  // Marks come in (orphan, seed) pairs; wrap the counter well before the pair
  // could collide with stale marks from a previous epoch.
  if (stamp_cur_ >= std::numeric_limits<std::uint32_t>::max() - 3) {
    std::fill(stamp_.begin(), stamp_.end(), 0U);
    stamp_cur_ = 0;
  }
  stamp_cur_ += 2;
}

std::span<const NodeId> SpfWorkspace::repair_tree(const Graph& g,
                                                  const EdgeSet& excluded,
                                                  Weight* dist, std::uint32_t* hops,
                                                  DartId* next_dart,
                                                  TreeChildren children) {
  orphans_.clear();
  if (excluded.empty()) return orphans_;  // pristine columns already correct
  advance_stamps(g.node_count());
  const std::uint32_t orphan_mark = stamp_cur_;
  const std::uint32_t seed_mark = stamp_cur_ + 1;

  // 1. Roots: a failed edge e is in this tree exactly when one of its
  //    endpoints routes over it (two would form a 2-cycle), so the orphan
  //    subtree roots are found in O(1) per failed edge -- no whole-tree
  //    classification pass.
  chain_.clear();
  for (const EdgeId e : excluded.elements()) {
    if (e >= g.edge_count()) continue;  // unknown edge id
    for (const NodeId v : {g.edge_u(e), g.edge_v(e)}) {
      const DartId d = next_dart[v];
      if (d != kInvalidDart && dart_edge(d) == e && stamp_[v] != orphan_mark) {
        stamp_[v] = orphan_mark;
        chain_.push_back(v);
      }
    }
  }
  if (chain_.empty()) return orphans_;  // no failed edge is a tree edge

  // 2. The orphan set is the union of the pristine subtrees below the roots:
  //    descend the child lists (marks dedup nested failed edges), touching
  //    only the damaged region.
  while (!chain_.empty()) {
    const NodeId v = chain_.back();
    chain_.pop_back();
    orphans_.push_back(v);
    for (std::uint32_t i = children.offsets[v]; i < children.offsets[v + 1]; ++i) {
      const NodeId child = children.ids[i];
      if (stamp_[child] != orphan_mark) {
        stamp_[child] = orphan_mark;
        chain_.push_back(child);
      }
    }
  }

  // 3. Detach and regrow, exactly as repair(): reset the orphans, push every
  //    reachable safe node adjacent to an orphan over a surviving edge once
  //    with its final label, then run the restricted relax loop.  Push order
  //    differs from repair()'s node-id order, but entries are pairwise
  //    distinct so the pop order -- and therefore every recorded parent
  //    dart -- is identical.
  for (const NodeId v : orphans_) {
    dist[v] = kUnreachable;
    hops[v] = kNoHops;
    next_dart[v] = kInvalidDart;
  }
  heap_.clear();
  for (const NodeId v : orphans_) {
    for (const DartId d : g.out_darts(v)) {
      if (excluded.contains(dart_edge(d))) continue;
      const NodeId u = g.dart_head(d);
      if (stamp_[u] == orphan_mark || stamp_[u] == seed_mark) continue;
      if (dist[u] == kUnreachable) continue;
      stamp_[u] = seed_mark;
      heap_push(Entry{dist[u], hops[u], u});
    }
  }
  run_impl(g, &excluded, dist, hops, next_dart,
           [this, orphan_mark](NodeId u) { return stamp_[u] != orphan_mark; });
  obs::count(obs::Counter::kSpfTreeRepairs);
  obs::count(obs::Counter::kSpfOrphanNodes, orphans_.size());
  return orphans_;
}

}  // namespace pr::graph
