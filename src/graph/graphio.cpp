#include "graph/graphio.hpp"

#include <charconv>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace pr::graph {

namespace {

std::vector<std::string> tokenize(std::string_view line) {
  std::vector<std::string> tokens;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    if (i >= line.size() || line[i] == '#') break;
    std::size_t j = i;
    while (j < line.size() && line[j] != ' ' && line[j] != '\t' && line[j] != '#') ++j;
    tokens.emplace_back(line.substr(i, j - i));
    i = j;
  }
  return tokens;
}

[[noreturn]] void fail(std::size_t line_no, const std::string& what) {
  throw std::invalid_argument("edge list line " + std::to_string(line_no) + ": " + what);
}

}  // namespace

std::string to_edge_list(const Graph& g) {
  std::ostringstream out;
  out << "# " << g.node_count() << " nodes, " << g.edge_count() << " edges\n";
  for (NodeId v = 0; v < g.node_count(); ++v) {
    out << "node " << g.display_name(v) << "\n";
  }
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    out << "edge " << g.display_name(g.edge_u(e)) << " " << g.display_name(g.edge_v(e));
    if (g.edge_weight(e) != 1.0) out << " " << g.edge_weight(e);
    out << "\n";
  }
  return out.str();
}

std::string to_dot(const Graph& g, const EdgeSet* failed) {
  std::ostringstream out;
  out << "graph network {\n  node [shape=ellipse];\n";
  for (NodeId v = 0; v < g.node_count(); ++v) {
    out << "  \"" << g.display_name(v) << "\";\n";
  }
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    out << "  \"" << g.display_name(g.edge_u(e)) << "\" -- \""
        << g.display_name(g.edge_v(e)) << "\"";
    std::vector<std::string> attrs;
    if (g.edge_weight(e) != 1.0) {
      std::ostringstream w;
      w << "label=\"" << g.edge_weight(e) << "\"";
      attrs.push_back(w.str());
    }
    if (failed != nullptr && failed->contains(e)) {
      attrs.emplace_back("color=red");
      attrs.emplace_back("style=dashed");
    }
    if (!attrs.empty()) {
      out << " [";
      for (std::size_t i = 0; i < attrs.size(); ++i) {
        out << (i ? ", " : "") << attrs[i];
      }
      out << "]";
    }
    out << ";\n";
  }
  out << "}\n";
  return out.str();
}

Graph from_edge_list(std::string_view text) {
  Graph g;
  const auto get_or_add = [&g](const std::string& label) -> NodeId {
    if (auto v = g.find_node(label)) return *v;
    return g.add_node(label);
  };

  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    const std::string_view line =
        text.substr(pos, eol == std::string_view::npos ? std::string_view::npos : eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    ++line_no;

    const auto tokens = tokenize(line);
    if (tokens.empty()) continue;
    if (tokens[0] == "node") {
      if (tokens.size() != 2) fail(line_no, "expected 'node <label>'");
      if (g.find_node(tokens[1]).has_value()) fail(line_no, "duplicate node label");
      g.add_node(tokens[1]);
    } else if (tokens[0] == "edge") {
      if (tokens.size() != 3 && tokens.size() != 4) {
        fail(line_no, "expected 'edge <u> <v> [weight]'");
      }
      const NodeId u = get_or_add(tokens[1]);
      const NodeId v = get_or_add(tokens[2]);
      Weight w = 1.0;
      if (tokens.size() == 4) {
        try {
          w = std::stod(tokens[3]);
        } catch (const std::exception&) {
          fail(line_no, "bad weight '" + tokens[3] + "'");
        }
      }
      try {
        g.add_edge(u, v, w);
      } catch (const std::exception& ex) {
        fail(line_no, ex.what());
      }
    } else {
      fail(line_no, "unknown record '" + tokens[0] + "'");
    }
  }
  return g;
}

}  // namespace pr::graph
