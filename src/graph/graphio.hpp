// Plain-text edge-list serialisation, so users can load their own topologies
// into the library and round-trip the bundled ones.
//
// Format (one record per line, '#' starts a comment):
//   node <label>
//   edge <label-u> <label-v> [weight]
// Nodes may also be declared implicitly by their first appearance in an edge
// record.  Weights default to 1.
#pragma once

#include <string>
#include <string_view>

#include "graph/graph.hpp"

namespace pr::graph {

/// Serialises `g` in the format above (all nodes listed explicitly, then edges).
[[nodiscard]] std::string to_edge_list(const Graph& g);

/// Parses the format above.  Throws std::invalid_argument with a line number
/// on malformed input.
[[nodiscard]] Graph from_edge_list(std::string_view text);

/// Graphviz DOT rendering for visual inspection: failed edges (when a set is
/// given) are drawn dashed red, non-unit weights become labels.
[[nodiscard]] std::string to_dot(const Graph& g, const EdgeSet* failed = nullptr);

}  // namespace pr::graph
