// Core undirected multigraph used throughout the Packet Re-cycling library.
//
// The graph is deliberately phrased in terms of *darts* (directed edge-ends,
// also known as half-edges or arcs).  Every undirected edge e contributes two
// darts: dart 2e (from edge_u to edge_v) and dart 2e+1 (the reverse).  Darts
// are the natural currency of both
//   * router interfaces  -- the dart u->v is "the interface of u facing v", and
//   * cellular embeddings -- a rotation system is a permutation over darts.
//
// Nodes and edges are created once and never removed; failure is modelled as
// an overlay (EdgeSet of "down" edges) so that identifiers stay stable, which
// mirrors real routers whose interfaces do not disappear when a link fails.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace pr::graph {

using NodeId = std::uint32_t;
using EdgeId = std::uint32_t;
using DartId = std::uint32_t;
using Weight = double;

inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();
inline constexpr EdgeId kInvalidEdge = std::numeric_limits<EdgeId>::max();
inline constexpr DartId kInvalidDart = std::numeric_limits<DartId>::max();

/// Distance value for unreachable nodes in shortest-path structures.
inline constexpr Weight kUnreachable = std::numeric_limits<Weight>::infinity();

/// Dart helpers are free functions so they can be used without a Graph at hand.
[[nodiscard]] constexpr DartId make_dart(EdgeId e, unsigned side) noexcept {
  return static_cast<DartId>(2 * e + (side & 1U));
}
/// The oppositely-directed dart on the same edge.
[[nodiscard]] constexpr DartId reverse(DartId d) noexcept { return d ^ 1U; }
/// The undirected edge a dart belongs to.
[[nodiscard]] constexpr EdgeId dart_edge(DartId d) noexcept { return d >> 1U; }
/// 0 for the u->v dart, 1 for the v->u dart.
[[nodiscard]] constexpr unsigned dart_side(DartId d) noexcept { return d & 1U; }

/// A set of edges with O(1) membership, used to describe failure scenarios.
class EdgeSet {
 public:
  EdgeSet() = default;
  explicit EdgeSet(std::size_t edge_count) : member_(edge_count, 0) {}

  void insert(EdgeId e);
  void erase(EdgeId e);
  [[nodiscard]] bool contains(EdgeId e) const noexcept {
    return e < member_.size() && member_[e] != 0;
  }
  [[nodiscard]] std::size_t size() const noexcept { return elements_.size(); }
  [[nodiscard]] bool empty() const noexcept { return elements_.empty(); }
  void clear();

  /// Members in insertion order (duplicates impossible).
  [[nodiscard]] std::span<const EdgeId> elements() const noexcept { return elements_; }

  /// Capacity (number of edges this set was sized for).
  [[nodiscard]] std::size_t capacity() const noexcept { return member_.size(); }

 private:
  std::vector<std::uint8_t> member_;
  std::vector<EdgeId> elements_;
};

/// Undirected multigraph with stable identifiers, positive edge weights and
/// optional node labels.  Self-loops are rejected: they are meaningless for
/// routing (a router never forwards to itself over a loopback link).
class Graph {
 public:
  Graph() = default;
  /// Creates `node_count` unlabeled nodes.
  explicit Graph(std::size_t node_count);

  /// Adds a node; the label is optional but must be unique when non-empty.
  NodeId add_node(std::string label = {});

  /// Adds an undirected edge u--v of weight `w` (> 0).  Parallel edges are
  /// allowed; self-loops throw std::invalid_argument.
  EdgeId add_edge(NodeId u, NodeId v, Weight w = 1.0);

  [[nodiscard]] std::size_t node_count() const noexcept { return out_darts_.size(); }
  [[nodiscard]] std::size_t edge_count() const noexcept { return edges_.size(); }
  [[nodiscard]] std::size_t dart_count() const noexcept { return 2 * edges_.size(); }

  [[nodiscard]] NodeId edge_u(EdgeId e) const { return edges_.at(e).u; }
  [[nodiscard]] NodeId edge_v(EdgeId e) const { return edges_.at(e).v; }
  [[nodiscard]] Weight edge_weight(EdgeId e) const { return edges_.at(e).w; }
  void set_edge_weight(EdgeId e, Weight w);

  /// Node the dart points away from (the router that owns this interface).
  [[nodiscard]] NodeId dart_tail(DartId d) const;
  /// Node the dart points to (the neighbour across the link).
  [[nodiscard]] NodeId dart_head(DartId d) const;

  /// The dart leaving `u` over edge `e`; throws if `u` is not an endpoint.
  [[nodiscard]] DartId dart_from(NodeId u, EdgeId e) const;

  /// All darts whose tail is `v`, i.e. v's interfaces, in insertion order.
  [[nodiscard]] std::span<const DartId> out_darts(NodeId v) const {
    return out_darts_.at(v);
  }
  [[nodiscard]] std::size_t degree(NodeId v) const { return out_darts_.at(v).size(); }

  /// First edge between u and v if any (either orientation).
  [[nodiscard]] std::optional<EdgeId> find_edge(NodeId u, NodeId v) const;

  /// Dart u->v over the first edge between them, if any.
  [[nodiscard]] std::optional<DartId> find_dart(NodeId u, NodeId v) const;

  [[nodiscard]] const std::string& node_label(NodeId v) const { return labels_.at(v); }
  void set_node_label(NodeId v, std::string label);
  /// Looks a node up by label; empty labels never match.
  [[nodiscard]] std::optional<NodeId> find_node(std::string_view label) const;

  /// Label if set, otherwise "n<id>"; convenient for traces and reports.
  [[nodiscard]] std::string display_name(NodeId v) const;

  /// Human-readable "A->B" form of a dart, for diagnostics.
  [[nodiscard]] std::string dart_name(DartId d) const;

  /// Sum of all edge weights (used by stretch normalisation sanity checks).
  [[nodiscard]] Weight total_weight() const noexcept;

  /// Validates internal invariants; throws std::logic_error on corruption.
  /// Exposed so property tests can call it after generator runs.
  void check_invariants() const;

  /// Structure-version id: drawn from a process-wide counter at construction
  /// and re-drawn by every routing-relevant mutation (add_node, add_edge,
  /// set_edge_weight).  Two graphs with the same id are copies of the same
  /// structure; a graph allocated at a recycled address always has a fresh
  /// id.  Caches keyed by graph (e.g. route::ScenarioRoutingCache) compare
  /// (address, structure_id) so stale derived state can never be served
  /// after the object at that address was destroyed or mutated.
  [[nodiscard]] std::uint64_t structure_id() const noexcept { return structure_id_; }

 private:
  struct EdgeRec {
    NodeId u;
    NodeId v;
    Weight w;
  };

  [[nodiscard]] static std::uint64_t next_structure_id() noexcept;

  std::vector<EdgeRec> edges_;
  std::vector<std::vector<DartId>> out_darts_;
  std::vector<std::string> labels_;
  std::uint64_t structure_id_ = next_structure_id();
};

}  // namespace pr::graph
