#include "graph/dijkstra.hpp"

#include <algorithm>
#include <stdexcept>

#include "graph/spf_workspace.hpp"

namespace pr::graph {

bool ShortestPathTree::reachable(NodeId v) const {
  return v < dist.size() && dist[v] < kUnreachable;
}

ShortestPathTree shortest_paths_to(const Graph& g, NodeId destination,
                                   const EdgeSet* excluded) {
  const std::size_t n = g.node_count();
  ShortestPathTree spt;
  spt.destination = destination;
  spt.dist.resize(n);
  spt.hops.resize(n);
  spt.next_dart.resize(n);
  SpfWorkspace workspace;
  workspace.full_build(g, destination, excluded, spt.dist.data(), spt.hops.data(),
                       spt.next_dart.data());
  return spt;
}

std::vector<NodeId> extract_path(const Graph& g, const ShortestPathTree& spt,
                                 NodeId source) {
  std::vector<NodeId> nodes;
  if (!spt.reachable(source)) return nodes;
  NodeId v = source;
  nodes.push_back(v);
  while (v != spt.destination) {
    const DartId d = spt.next_dart[v];
    if (d == kInvalidDart) {
      throw std::logic_error("extract_path: broken shortest-path tree");
    }
    v = g.dart_head(d);
    nodes.push_back(v);
    if (nodes.size() > g.node_count()) {
      throw std::logic_error("extract_path: cycle in shortest-path tree");
    }
  }
  return nodes;
}

Weight path_cost(const Graph& g, const std::vector<NodeId>& nodes) {
  Weight sum = 0;
  for (std::size_t i = 0; i + 1 < nodes.size(); ++i) {
    const auto e = g.find_edge(nodes[i], nodes[i + 1]);
    if (!e.has_value()) {
      throw std::invalid_argument("path_cost: consecutive nodes not adjacent");
    }
    sum += g.edge_weight(*e);
  }
  return sum;
}

Weight weighted_diameter(const Graph& g) {
  Weight best = 0;
  for (NodeId t = 0; t < g.node_count(); ++t) {
    const auto spt = shortest_paths_to(g, t);
    for (NodeId v = 0; v < g.node_count(); ++v) {
      if (spt.reachable(v)) best = std::max(best, spt.dist[v]);
    }
  }
  return best;
}

std::uint32_t hop_diameter(const Graph& g) {
  // Unit-cost search independent of configured weights.
  std::uint32_t best = 0;
  const std::size_t n = g.node_count();
  std::vector<std::uint32_t> depth(n);
  std::vector<NodeId> fifo(n);
  for (NodeId s = 0; s < n; ++s) {
    std::fill(depth.begin(), depth.end(), std::numeric_limits<std::uint32_t>::max());
    std::size_t head = 0;
    std::size_t tail = 0;
    depth[s] = 0;
    fifo[tail++] = s;
    while (head < tail) {
      const NodeId v = fifo[head++];
      for (DartId d : g.out_darts(v)) {
        const NodeId u = g.dart_head(d);
        if (depth[u] == std::numeric_limits<std::uint32_t>::max()) {
          depth[u] = depth[v] + 1;
          best = std::max(best, depth[u]);
          fifo[tail++] = u;
        }
      }
    }
  }
  return best;
}

}  // namespace pr::graph
