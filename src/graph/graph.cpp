#include "graph/graph.hpp"

#include <algorithm>
#include <atomic>
#include <stdexcept>
#include <string>

namespace pr::graph {

std::uint64_t Graph::next_structure_id() noexcept {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

void EdgeSet::insert(EdgeId e) {
  if (e >= member_.size()) {
    throw std::out_of_range("EdgeSet::insert: edge id " + std::to_string(e) +
                            " out of range (capacity " + std::to_string(member_.size()) + ")");
  }
  if (member_[e] == 0) {
    member_[e] = 1;
    elements_.push_back(e);
  }
}

void EdgeSet::erase(EdgeId e) {
  if (e < member_.size() && member_[e] != 0) {
    member_[e] = 0;
    elements_.erase(std::find(elements_.begin(), elements_.end(), e));
  }
}

void EdgeSet::clear() {
  for (EdgeId e : elements_) member_[e] = 0;
  elements_.clear();
}

Graph::Graph(std::size_t node_count)
    : out_darts_(node_count), labels_(node_count) {}

NodeId Graph::add_node(std::string label) {
  if (!label.empty() && find_node(label).has_value()) {
    throw std::invalid_argument("Graph::add_node: duplicate label '" + label + "'");
  }
  out_darts_.emplace_back();
  labels_.push_back(std::move(label));
  structure_id_ = next_structure_id();
  return static_cast<NodeId>(out_darts_.size() - 1);
}

EdgeId Graph::add_edge(NodeId u, NodeId v, Weight w) {
  if (u >= node_count() || v >= node_count()) {
    throw std::out_of_range("Graph::add_edge: endpoint out of range");
  }
  if (u == v) {
    throw std::invalid_argument("Graph::add_edge: self-loops are not allowed");
  }
  if (!(w > 0)) {
    throw std::invalid_argument("Graph::add_edge: weight must be positive");
  }
  const auto e = static_cast<EdgeId>(edges_.size());
  edges_.push_back(EdgeRec{u, v, w});
  out_darts_[u].push_back(make_dart(e, 0));
  out_darts_[v].push_back(make_dart(e, 1));
  structure_id_ = next_structure_id();
  return e;
}

void Graph::set_edge_weight(EdgeId e, Weight w) {
  if (!(w > 0)) {
    throw std::invalid_argument("Graph::set_edge_weight: weight must be positive");
  }
  edges_.at(e).w = w;
  structure_id_ = next_structure_id();
}

NodeId Graph::dart_tail(DartId d) const {
  const auto& rec = edges_.at(dart_edge(d));
  return dart_side(d) == 0 ? rec.u : rec.v;
}

NodeId Graph::dart_head(DartId d) const {
  const auto& rec = edges_.at(dart_edge(d));
  return dart_side(d) == 0 ? rec.v : rec.u;
}

DartId Graph::dart_from(NodeId u, EdgeId e) const {
  const auto& rec = edges_.at(e);
  if (rec.u == u) return make_dart(e, 0);
  if (rec.v == u) return make_dart(e, 1);
  throw std::invalid_argument("Graph::dart_from: node is not an endpoint of edge");
}

std::optional<EdgeId> Graph::find_edge(NodeId u, NodeId v) const {
  if (u >= node_count()) return std::nullopt;
  for (DartId d : out_darts_[u]) {
    if (dart_head(d) == v) return dart_edge(d);
  }
  return std::nullopt;
}

std::optional<DartId> Graph::find_dart(NodeId u, NodeId v) const {
  if (u >= node_count()) return std::nullopt;
  for (DartId d : out_darts_[u]) {
    if (dart_head(d) == v) return d;
  }
  return std::nullopt;
}

void Graph::set_node_label(NodeId v, std::string label) {
  if (!label.empty()) {
    auto existing = find_node(label);
    if (existing.has_value() && *existing != v) {
      throw std::invalid_argument("Graph::set_node_label: duplicate label '" + label + "'");
    }
  }
  labels_.at(v) = std::move(label);
}

std::optional<NodeId> Graph::find_node(std::string_view label) const {
  if (label.empty()) return std::nullopt;
  for (NodeId v = 0; v < labels_.size(); ++v) {
    if (labels_[v] == label) return v;
  }
  return std::nullopt;
}

std::string Graph::display_name(NodeId v) const {
  const std::string& l = labels_.at(v);
  return l.empty() ? "n" + std::to_string(v) : l;
}

std::string Graph::dart_name(DartId d) const {
  return display_name(dart_tail(d)) + "->" + display_name(dart_head(d));
}

Weight Graph::total_weight() const noexcept {
  Weight sum = 0;
  for (const auto& rec : edges_) sum += rec.w;
  return sum;
}

void Graph::check_invariants() const {
  if (out_darts_.size() != labels_.size()) {
    throw std::logic_error("Graph: node arrays out of sync");
  }
  std::size_t dart_total = 0;
  for (NodeId v = 0; v < out_darts_.size(); ++v) {
    for (DartId d : out_darts_[v]) {
      if (dart_edge(d) >= edges_.size()) throw std::logic_error("Graph: dangling dart");
      if (dart_tail(d) != v) throw std::logic_error("Graph: dart filed under wrong node");
      ++dart_total;
    }
  }
  if (dart_total != 2 * edges_.size()) {
    throw std::logic_error("Graph: dart count mismatch");
  }
  for (const auto& rec : edges_) {
    if (rec.u == rec.v) throw std::logic_error("Graph: self-loop present");
    if (!(rec.w > 0)) throw std::logic_error("Graph: non-positive weight");
  }
}

}  // namespace pr::graph
