// Synthetic graph generators used by property tests, ablation benches and the
// embedding-quality studies.  All generators produce simple undirected graphs
// with unit weights unless stated otherwise, and all randomness flows through
// the caller-provided Rng.
#pragma once

#include <cstddef>

#include "graph/graph.hpp"
#include "graph/rng.hpp"

namespace pr::graph {

/// Cycle on n >= 3 nodes (the smallest 2-edge-connected family).
[[nodiscard]] Graph ring(std::size_t n);

/// Complete graph K_n (n >= 2).
[[nodiscard]] Graph complete(std::size_t n);

/// rows x cols grid; `wrap` adds the toroidal wrap-around links (making a
/// 4-regular torus, the classic genus-1 cellular-embedding example).
[[nodiscard]] Graph grid(std::size_t rows, std::size_t cols, bool wrap = false);

/// Torus == wrapped grid (requires rows >= 3 and cols >= 3 so the wrap edges
/// are not parallel duplicates).
[[nodiscard]] Graph torus(std::size_t rows, std::size_t cols);

/// Erdos-Renyi G(n, p).  The result may be disconnected; callers that need
/// connectivity should test for it or use random_two_edge_connected.
[[nodiscard]] Graph erdos_renyi(std::size_t n, double p, Rng& rng);

/// Waxman geometric random graph on the unit square:
/// P(u~v) = alpha * exp(-dist(u,v) / (beta * sqrt(2))).  A common model for
/// router-level ISP topologies.
[[nodiscard]] Graph waxman(std::size_t n, double alpha, double beta, Rng& rng);

/// Random 2-edge-connected graph: a Hamiltonian ring plus `extra_edges`
/// distinct random chords.  This is the workhorse of the PR property suites,
/// since the paper's single-failure guarantee assumes 2-edge-connectivity.
[[nodiscard]] Graph random_two_edge_connected(std::size_t n, std::size_t extra_edges,
                                              Rng& rng);

/// Random outerplanar 2-edge-connected graph: a Hamiltonian ring plus up to
/// `chords` pairwise non-crossing chords (fewer when the sampler cannot place
/// more).  Outerplanar graphs are always planar, making this the generator
/// for the genus-0 guarantee suites.
[[nodiscard]] Graph random_outerplanar(std::size_t n, std::size_t chords, Rng& rng);

/// Petersen graph: the classic small non-planar (genus 1) test case.
[[nodiscard]] Graph petersen();

/// K5 and K3,3: the Kuratowski minors, used to validate the planarity test.
[[nodiscard]] Graph k5();
[[nodiscard]] Graph k33();

}  // namespace pr::graph
