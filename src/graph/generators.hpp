// Synthetic graph generators used by property tests, ablation benches and the
// embedding-quality studies.  All generators produce simple undirected graphs
// with unit weights unless stated otherwise, and all randomness flows through
// the caller-provided Rng.
#pragma once

#include <cstddef>

#include "graph/graph.hpp"
#include "graph/rng.hpp"

namespace pr::graph {

/// Cycle on n >= 3 nodes (the smallest 2-edge-connected family).
[[nodiscard]] Graph ring(std::size_t n);

/// Complete graph K_n (n >= 2).
[[nodiscard]] Graph complete(std::size_t n);

/// rows x cols grid; `wrap` adds the toroidal wrap-around links (making a
/// 4-regular torus, the classic genus-1 cellular-embedding example).
[[nodiscard]] Graph grid(std::size_t rows, std::size_t cols, bool wrap = false);

/// Torus == wrapped grid (requires rows >= 3 and cols >= 3 so the wrap edges
/// are not parallel duplicates).
[[nodiscard]] Graph torus(std::size_t rows, std::size_t cols);

/// Erdos-Renyi G(n, p).  The result may be disconnected; callers that need
/// connectivity should test for it or use random_two_edge_connected.
[[nodiscard]] Graph erdos_renyi(std::size_t n, double p, Rng& rng);

/// Waxman geometric random graph on the unit square:
/// P(u~v) = alpha * exp(-dist(u,v) / (beta * sqrt(2))).  A common model for
/// router-level ISP topologies.
[[nodiscard]] Graph waxman(std::size_t n, double alpha, double beta, Rng& rng);

/// Random 2-edge-connected graph: a Hamiltonian ring plus `extra_edges`
/// distinct random chords.  This is the workhorse of the PR property suites,
/// since the paper's single-failure guarantee assumes 2-edge-connectivity.
[[nodiscard]] Graph random_two_edge_connected(std::size_t n, std::size_t extra_edges,
                                              Rng& rng);

/// Random outerplanar 2-edge-connected graph: a Hamiltonian ring plus up to
/// `chords` pairwise non-crossing chords (fewer when the sampler cannot place
/// more).  Outerplanar graphs are always planar, making this the generator
/// for the genus-0 guarantee suites.
[[nodiscard]] Graph random_outerplanar(std::size_t n, std::size_t chords, Rng& rng);

/// Parameters of the hierarchical ISP generator.  The defaults give a small
/// carrier-like network (~12 core + 36 aggregation + 216 edge routers);
/// benches and the backbone suites scale the per-tier counts up to the 1k-10k
/// regime.  Total nodes = core * (1 + aggs_per_core * (1 + edges_per_agg)).
struct IspParams {
  std::size_t core = 12;             ///< backbone routers (>= 3)
  std::size_t aggs_per_core = 3;     ///< aggregation routers homed per core
  std::size_t edges_per_agg = 6;     ///< access routers per aggregation
  std::size_t core_extra_chords = 6; ///< preferential core chords beyond the ring
  double agg_cross_link_prob = 0.3;  ///< chance an aggregation peers laterally
  Weight core_weight = 1.0;          ///< backbone link weight
  Weight agg_weight = 2.0;           ///< aggregation uplink weight
  Weight edge_weight = 4.0;          ///< access uplink weight
};

/// A generated hierarchy: node ids are tier-contiguous -- cores first
/// ([0, core_count)), then aggregations, then edge routers -- with labels
/// "c<i>" / "a<i>" / "e<i>".
struct IspTopology {
  Graph graph;
  std::size_t core_count = 0;
  std::size_t aggregation_count = 0;
  std::size_t edge_router_count = 0;
};

/// Hierarchical ISP topology in the style of Topology-Zoo carrier maps:
/// a 2-edge-connected core (ring + preferential-attachment chords, giving the
/// heavy-tailed backbone degrees real ISPs show), aggregation routers each
/// dual-homed to two distinct cores, and edge routers each dual-homed to two
/// distinct aggregations.  Every tier attaches by two disjoint uplinks, so
/// the whole graph is 2-edge-connected by construction -- the precondition of
/// the paper's single-failure guarantee.  Deterministic for a given (params,
/// rng state).
[[nodiscard]] IspTopology hierarchical_isp(const IspParams& params, Rng& rng);

/// IspParams whose tier counts multiply out to roughly `approx_nodes` total
/// routers (>= 27), keeping carrier-like tier ratios.  The shared sizing
/// helper of bench_backbone and the backbone test suites.
[[nodiscard]] IspParams sized_isp_params(std::size_t approx_nodes);

/// Petersen graph: the classic small non-planar (genus 1) test case.
[[nodiscard]] Graph petersen();

/// K5 and K3,3: the Kuratowski minors, used to validate the planarity test.
[[nodiscard]] Graph k5();
[[nodiscard]] Graph k33();

}  // namespace pr::graph
