// Interface transmission queues: capacity and loss beyond failures.
//
// The paper's motivation prices outages in packets ("a heavily loaded OC-192
// ... more than a quarter of a million packets"), which makes load a
// first-class quantity.  This model adds the two effects a real interface
// has and the plain event simulator lacks:
//   * serialization: a packet occupies the transmitter for
//     packet_bits / link_rate seconds, so back-to-back packets queue;
//   * finite buffers: when the backlog reaches queue_packets, new arrivals
//     are tail-dropped (DropReason::kCongestion).
// One queue per dart (per interface direction), as in real routers.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "net/network.hpp"

namespace pr::net {

class QueueModel {
 public:
  struct Config {
    double link_rate_bps = 10e9;     ///< per-interface line rate
    double packet_bits = 8000;       ///< the paper's 1 kB average packet
    std::size_t queue_packets = 64;  ///< buffer depth per interface
  };

  /// `net` must outlive the model.
  QueueModel(const Network& net, Config config);

  /// Per-edge line rates (one bps value per edge, both directions), e.g.
  /// traffic::CapacityPlan::link_rates_bps(): the event-sim queues then price
  /// links exactly like the analytic congestion model.  config.link_rate_bps
  /// is ignored; packet size and buffer depth still come from `config`.
  /// Throws std::invalid_argument on a size mismatch or non-positive rate.
  QueueModel(const Network& net, Config config, std::span<const double> edge_rate_bps);

  /// Admits a packet to dart `d`'s transmit queue at time `now`.  Returns the
  /// transmission-complete time, or nullopt when the buffer is full.
  [[nodiscard]] std::optional<SimTime> enqueue(graph::DartId d, SimTime now);

  /// Seconds one packet occupies the config-uniform transmitter.
  [[nodiscard]] SimTime transmission_time() const noexcept { return tx_time_; }

  /// Seconds one packet occupies dart `d`'s transmitter (differs from the
  /// uniform value only under the per-edge constructor).
  [[nodiscard]] SimTime transmission_time(graph::DartId d) const {
    return tx_time_per_dart_.empty() ? tx_time_ : tx_time_per_dart_.at(d);
  }

  /// Tail drops so far (the congestion-loss counter).
  [[nodiscard]] std::uint64_t tail_drops() const noexcept { return tail_drops_; }

  /// Resets queue state (buffers drain instantly); counters are kept.
  void flush();

  [[nodiscard]] const Config& config() const noexcept { return config_; }

 private:
  const Network* net_;
  Config config_;
  SimTime tx_time_;
  /// Empty for uniform models; else one service time per dart.
  std::vector<SimTime> tx_time_per_dart_;
  /// Per dart: when its transmitter becomes idle again.
  std::vector<SimTime> next_free_;
  std::uint64_t tail_drops_ = 0;
};

}  // namespace pr::net
