#include "net/network.hpp"

#include <stdexcept>

namespace pr::net {

Network::Network(const Graph& g)
    : graph_(&g), failed_(g.edge_count()), link_delay_(g.edge_count(), 1e-3) {}

void Network::fail_link(EdgeId e) {
  if (e >= graph_->edge_count()) {
    throw std::out_of_range("Network::fail_link: edge out of range");
  }
  failed_.insert(e);
}

void Network::restore_link(EdgeId e) {
  if (e >= graph_->edge_count()) {
    throw std::out_of_range("Network::restore_link: edge out of range");
  }
  failed_.erase(e);
}

void Network::fail_node(NodeId v) {
  for (DartId d : graph_->out_darts(v)) failed_.insert(graph::dart_edge(d));
}

void Network::reset() { failed_.clear(); }

void Network::set_link_delay(EdgeId e, SimTime delay) {
  if (delay < 0) throw std::invalid_argument("Network::set_link_delay: negative delay");
  link_delay_.at(e) = delay;
}

void Network::set_processing_delay(SimTime delay) {
  if (delay < 0) {
    throw std::invalid_argument("Network::set_processing_delay: negative delay");
  }
  processing_delay_ = delay;
}

}  // namespace pr::net
