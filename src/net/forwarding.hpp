// The forwarding-protocol interface and the synchronous packet walker.
//
// Every compared scheme (plain SPF, Reconvergence, FCP, LFA, Packet
// Re-cycling) implements ForwardingProtocol: a purely local decision made at
// one router from (incoming interface, packet header, local state, local link
// status).  The walker `route_packet` drives a single packet hop by hop and
// records the trace; the discrete-event simulator drives the same interface
// with timing.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "net/network.hpp"
#include "net/packet.hpp"

namespace pr::net {

enum class DropReason : std::uint8_t {
  kNone = 0,
  kNoRoute,        ///< protocol has no usable next hop (e.g. FCP found no path)
  kTtlExpired,     ///< walker guard fired (disconnected destination or bug)
  kPolicy,         ///< protocol chose to discard (e.g. reconvergence window)
  kCongestion,     ///< interface transmit queue overflowed (event sim only)
};

struct ForwardingDecision {
  enum class Action : std::uint8_t { kForward, kDeliver, kDrop };
  Action action = Action::kDrop;
  /// Valid when action == kForward; must be an out-dart of the deciding node
  /// over a link that is currently up.
  DartId out_dart = graph::kInvalidDart;
  DropReason reason = DropReason::kNone;

  [[nodiscard]] static ForwardingDecision forward(DartId d) {
    return {Action::kForward, d, DropReason::kNone};
  }
  [[nodiscard]] static ForwardingDecision deliver() {
    return {Action::kDeliver, graph::kInvalidDart, DropReason::kNone};
  }
  [[nodiscard]] static ForwardingDecision drop(DropReason r) {
    return {Action::kDrop, graph::kInvalidDart, r};
  }
};

/// A routing scheme's per-router forwarding logic.  Implementations must obey
/// locality: decisions may depend only on the arguments (which include the
/// deciding node's view of its *incident* link state via `net`) and on state
/// installed before the failures occurred (routing / cycle-following tables).
class ForwardingProtocol {
 public:
  virtual ~ForwardingProtocol() = default;

  /// Decides what router `at` does with `packet`, which arrived over
  /// `arrived_over` (kInvalidDart when `at` is the source).  May mutate the
  /// packet header (PR/DD bits, FCP failure list).
  [[nodiscard]] virtual ForwardingDecision forward(const Network& net, NodeId at,
                                                   DartId arrived_over,
                                                   Packet& packet) = 0;

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;
};

enum class DeliveryStatus : std::uint8_t { kDelivered, kDropped };

/// Everything a single packet experienced.
struct PathTrace {
  DeliveryStatus status = DeliveryStatus::kDropped;
  DropReason drop_reason = DropReason::kNone;
  /// Node visit sequence, starting at the source; for delivered packets the
  /// last entry is the destination.
  std::vector<NodeId> nodes;
  /// Sum of traversed link weights.
  double cost = 0.0;
  /// Number of links traversed (== nodes.size() - 1).
  std::uint32_t hops = 0;
  /// Header state at the end of the walk (DD bits, FCP list, ...).
  Packet final_packet;

  [[nodiscard]] bool delivered() const noexcept {
    return status == DeliveryStatus::kDelivered;
  }
};

/// Default TTL: generous multiple of the edge count so that correct protocols
/// never hit it while broken ones terminate.
[[nodiscard]] std::uint32_t default_ttl(const Graph& g) noexcept;

/// Stable lowercase name of a drop reason ("ttl-expired", "no-route", ...),
/// shared by trace rendering, the CLI and the examples.
[[nodiscard]] std::string_view drop_reason_name(DropReason r) noexcept;

/// "Seattle > Denver > KansasCity (delivered, 2 hops, cost 2)" rendering,
/// shared by the examples and the CLI.  Dropped packets include the reason:
/// "... (DROPPED after 3 hops: ttl-expired)".
[[nodiscard]] std::string trace_to_string(const Graph& g, const PathTrace& trace);

/// Drives one packet from `source` to `destination` under `protocol`.
/// `ttl` of 0 selects default_ttl(); `traffic_class` feeds Section-7 policy
/// gating.  Throws std::logic_error if the protocol violates the forwarding
/// contract (forwards over a down link or away from the deciding node).
[[nodiscard]] PathTrace route_packet(const Network& net, ForwardingProtocol& protocol,
                                     NodeId source, NodeId destination,
                                     std::uint32_t ttl = 0,
                                     std::uint8_t traffic_class = 0);

}  // namespace pr::net
