#include "net/event_sim.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "net/queueing.hpp"
#include "sim/forwarding_engine.hpp"

namespace pr::net {

void Simulator::at(SimTime t, std::function<void()> fn) {
  if (t < now_) throw std::invalid_argument("Simulator::at: time in the past");
  queue_.push_back(Event{t, next_seq_++, std::move(fn)});
  std::push_heap(queue_.begin(), queue_.end(), Later{});
}

void Simulator::after(SimTime delay, std::function<void()> fn) {
  if (delay < 0) throw std::invalid_argument("Simulator::after: negative delay");
  at(now_ + delay, std::move(fn));
}

void Simulator::run(SimTime limit) {
  while (!queue_.empty() && queue_.front().time <= limit) {
    std::pop_heap(queue_.begin(), queue_.end(), Later{});
    Event ev = std::move(queue_.back());
    queue_.pop_back();
    now_ = ev.time;
    ev.fn();
    ++processed_;
  }
  if (queue_.empty() && now_ < limit && limit < std::numeric_limits<SimTime>::infinity()) {
    now_ = limit;
  }
}

namespace {

// Per-flight state kept alive by shared_ptr captured in the event closures.
// The forwarding semantics live in the shared hop core (sim::ForwardingEngine);
// this file only adds wall-clock scheduling and transmit queueing on top.
struct Flight {
  sim::ForwardingEngine engine;
  QueueModel* queues = nullptr;
  sim::FlowState state;
  PathTrace trace;
  FlightCallback done;

  Flight(const Network& net, ForwardingProtocol& protocol) : engine(net, protocol) {}
};

void finish(const std::shared_ptr<Flight>& fl, DeliveryStatus status, DropReason reason) {
  fl->trace.status = status;
  fl->trace.drop_reason = reason;
  fl->trace.cost = fl->state.cost;
  fl->trace.hops = fl->state.hops;
  fl->trace.final_packet = fl->state.packet;
  fl->done(fl->trace);
}

void step(Simulator& sim, const std::shared_ptr<Flight>& fl) {
  const Network& net = fl->engine.network();
  const sim::HopDecision decision = fl->engine.decide(fl->state);
  if (decision.kind == sim::HopDecision::Kind::kDelivered) {
    finish(fl, DeliveryStatus::kDelivered, DropReason::kNone);
    return;
  }
  if (decision.kind == sim::HopDecision::Kind::kDropped) {
    finish(fl, DeliveryStatus::kDropped, decision.reason);
    return;
  }
  const DartId out = decision.out_dart;
  const graph::EdgeId e = graph::dart_edge(out);
  SimTime departure_delay = net.processing_delay();
  if (fl->queues != nullptr) {
    const auto tx_done = fl->queues->enqueue(out, sim.now() + departure_delay);
    if (!tx_done.has_value()) {
      finish(fl, DeliveryStatus::kDropped, DropReason::kCongestion);
      return;
    }
    departure_delay = *tx_done - sim.now();
  }
  fl->engine.commit(fl->state, out);
  fl->trace.nodes.push_back(fl->state.at);
  sim.after(departure_delay + net.link_delay(e), [&sim, fl]() { step(sim, fl); });
}

}  // namespace

void launch_packet(Simulator& sim, const Network& net, ForwardingProtocol& protocol,
                   NodeId source, NodeId destination, SimTime start, FlightCallback done,
                   std::uint32_t ttl, QueueModel* queues) {
  const Graph& g = net.graph();
  if (source >= g.node_count() || destination >= g.node_count()) {
    throw std::out_of_range("launch_packet: endpoint out of range");
  }
  auto fl = std::make_shared<Flight>(net, protocol);
  fl->queues = queues;
  fl->state.reset(source, destination, ttl == 0 ? default_ttl(g) : ttl);
  fl->trace.nodes.push_back(source);
  fl->done = std::move(done);
  sim.at(start, [&sim, fl]() { step(sim, fl); });
}

}  // namespace pr::net
