#include "net/event_sim.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "net/queueing.hpp"

namespace pr::net {

void Simulator::at(SimTime t, std::function<void()> fn) {
  if (t < now_) throw std::invalid_argument("Simulator::at: time in the past");
  queue_.push_back(Event{t, next_seq_++, std::move(fn)});
  std::push_heap(queue_.begin(), queue_.end(), Later{});
}

void Simulator::after(SimTime delay, std::function<void()> fn) {
  if (delay < 0) throw std::invalid_argument("Simulator::after: negative delay");
  at(now_ + delay, std::move(fn));
}

void Simulator::run(SimTime limit) {
  while (!queue_.empty() && queue_.front().time <= limit) {
    std::pop_heap(queue_.begin(), queue_.end(), Later{});
    Event ev = std::move(queue_.back());
    queue_.pop_back();
    now_ = ev.time;
    ev.fn();
    ++processed_;
  }
  if (queue_.empty() && now_ < limit && limit < std::numeric_limits<SimTime>::infinity()) {
    now_ = limit;
  }
}

namespace {

// Per-flight state kept alive by shared_ptr captured in the event closures.
struct Flight {
  const Network* net;
  ForwardingProtocol* protocol;
  QueueModel* queues = nullptr;
  Packet packet;
  PathTrace trace;
  NodeId at;
  DartId arrived_over = graph::kInvalidDart;
  FlightCallback done;
};

void step(Simulator& sim, const std::shared_ptr<Flight>& fl) {
  const Graph& g = fl->net->graph();
  if (fl->at == fl->packet.destination) {
    fl->trace.status = DeliveryStatus::kDelivered;
    fl->trace.final_packet = fl->packet;
    fl->done(fl->trace);
    return;
  }
  if (fl->packet.ttl == 0) {
    fl->trace.status = DeliveryStatus::kDropped;
    fl->trace.drop_reason = DropReason::kTtlExpired;
    fl->trace.final_packet = fl->packet;
    fl->done(fl->trace);
    return;
  }
  const ForwardingDecision decision =
      fl->protocol->forward(*fl->net, fl->at, fl->arrived_over, fl->packet);
  switch (decision.action) {
    case ForwardingDecision::Action::kDeliver:
      if (fl->at != fl->packet.destination) {
        throw std::logic_error("launch_packet: protocol delivered away from destination");
      }
      fl->trace.status = DeliveryStatus::kDelivered;
      fl->trace.final_packet = fl->packet;
      fl->done(fl->trace);
      return;
    case ForwardingDecision::Action::kDrop:
      fl->trace.status = DeliveryStatus::kDropped;
      fl->trace.drop_reason = decision.reason;
      fl->trace.final_packet = fl->packet;
      fl->done(fl->trace);
      return;
    case ForwardingDecision::Action::kForward:
      break;
  }
  const DartId out = decision.out_dart;
  if (out == graph::kInvalidDart || g.dart_tail(out) != fl->at) {
    throw std::logic_error("launch_packet: protocol forwarded from the wrong node");
  }
  if (!fl->net->dart_usable(out)) {
    throw std::logic_error("launch_packet: protocol forwarded over a failed link");
  }
  const graph::EdgeId e = graph::dart_edge(out);
  SimTime departure_delay = fl->net->processing_delay();
  if (fl->queues != nullptr) {
    const auto tx_done = fl->queues->enqueue(out, sim.now() + departure_delay);
    if (!tx_done.has_value()) {
      fl->trace.status = DeliveryStatus::kDropped;
      fl->trace.drop_reason = DropReason::kCongestion;
      fl->trace.final_packet = fl->packet;
      fl->done(fl->trace);
      return;
    }
    departure_delay = *tx_done - sim.now();
  }
  fl->trace.cost += g.edge_weight(e);
  ++fl->trace.hops;
  --fl->packet.ttl;
  fl->at = g.dart_head(out);
  fl->arrived_over = out;
  fl->trace.nodes.push_back(fl->at);
  sim.after(departure_delay + fl->net->link_delay(e),
            [&sim, fl]() { step(sim, fl); });
}

}  // namespace

void launch_packet(Simulator& sim, const Network& net, ForwardingProtocol& protocol,
                   NodeId source, NodeId destination, SimTime start, FlightCallback done,
                   std::uint32_t ttl, QueueModel* queues) {
  const Graph& g = net.graph();
  if (source >= g.node_count() || destination >= g.node_count()) {
    throw std::out_of_range("launch_packet: endpoint out of range");
  }
  auto fl = std::make_shared<Flight>();
  fl->net = &net;
  fl->protocol = &protocol;
  fl->queues = queues;
  fl->packet.source = source;
  fl->packet.destination = destination;
  fl->packet.ttl = ttl == 0 ? default_ttl(g) : ttl;
  fl->at = source;
  fl->trace.nodes.push_back(source);
  fl->done = std::move(done);
  sim.at(start, [&sim, fl]() { step(sim, fl); });
}

}  // namespace pr::net
