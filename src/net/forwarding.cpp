#include "net/forwarding.hpp"

#include <sstream>
#include <stdexcept>

namespace pr::net {

std::string trace_to_string(const Graph& g, const PathTrace& trace) {
  std::ostringstream out;
  for (std::size_t i = 0; i < trace.nodes.size(); ++i) {
    out << (i ? " > " : "") << g.display_name(trace.nodes[i]);
  }
  if (trace.delivered()) {
    out << " (delivered, " << trace.hops << " hops, cost " << trace.cost << ")";
  } else {
    out << " (DROPPED after " << trace.hops << " hops)";
  }
  return out.str();
}

std::uint32_t default_ttl(const Graph& g) noexcept {
  return static_cast<std::uint32_t>(4 * g.edge_count() + 16);
}

PathTrace route_packet(const Network& net, ForwardingProtocol& protocol, NodeId source,
                       NodeId destination, std::uint32_t ttl,
                       std::uint8_t traffic_class) {
  const Graph& g = net.graph();
  if (source >= g.node_count() || destination >= g.node_count()) {
    throw std::out_of_range("route_packet: endpoint out of range");
  }
  if (ttl == 0) ttl = default_ttl(g);

  Packet packet;
  packet.source = source;
  packet.destination = destination;
  packet.ttl = ttl;
  packet.traffic_class = traffic_class;

  PathTrace trace;
  trace.nodes.push_back(source);

  NodeId at = source;
  DartId arrived_over = graph::kInvalidDart;

  while (true) {
    if (at == destination) {
      trace.status = DeliveryStatus::kDelivered;
      break;
    }
    if (packet.ttl == 0) {
      trace.status = DeliveryStatus::kDropped;
      trace.drop_reason = DropReason::kTtlExpired;
      break;
    }
    const ForwardingDecision decision = protocol.forward(net, at, arrived_over, packet);
    if (decision.action == ForwardingDecision::Action::kDeliver) {
      // Protocols may only deliver at the destination.
      if (at != destination) {
        throw std::logic_error("route_packet: protocol delivered away from destination");
      }
      trace.status = DeliveryStatus::kDelivered;
      break;
    }
    if (decision.action == ForwardingDecision::Action::kDrop) {
      trace.status = DeliveryStatus::kDropped;
      trace.drop_reason = decision.reason;
      break;
    }
    const DartId out = decision.out_dart;
    if (out == graph::kInvalidDart || g.dart_tail(out) != at) {
      throw std::logic_error("route_packet: protocol forwarded from the wrong node");
    }
    if (!net.dart_usable(out)) {
      throw std::logic_error("route_packet: protocol forwarded over a failed link (" +
                             g.dart_name(out) + ")");
    }
    trace.cost += g.edge_weight(graph::dart_edge(out));
    ++trace.hops;
    --packet.ttl;
    at = g.dart_head(out);
    arrived_over = out;
    trace.nodes.push_back(at);
  }

  trace.final_packet = std::move(packet);
  return trace;
}

}  // namespace pr::net
