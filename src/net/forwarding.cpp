#include "net/forwarding.hpp"

#include <sstream>
#include <stdexcept>

#include "sim/forwarding_engine.hpp"

namespace pr::net {

std::string_view drop_reason_name(DropReason r) noexcept {
  switch (r) {
    case DropReason::kNone:
      return "none";
    case DropReason::kNoRoute:
      return "no-route";
    case DropReason::kTtlExpired:
      return "ttl-expired";
    case DropReason::kPolicy:
      return "policy";
    case DropReason::kCongestion:
      return "congestion";
  }
  return "unknown";
}

std::string trace_to_string(const Graph& g, const PathTrace& trace) {
  std::ostringstream out;
  for (std::size_t i = 0; i < trace.nodes.size(); ++i) {
    out << (i ? " > " : "") << g.display_name(trace.nodes[i]);
  }
  if (trace.delivered()) {
    out << " (delivered, " << trace.hops << " hops, cost " << trace.cost << ")";
  } else {
    out << " (DROPPED after " << trace.hops
        << " hops: " << drop_reason_name(trace.drop_reason) << ")";
  }
  return out.str();
}

std::uint32_t default_ttl(const Graph& g) noexcept {
  return static_cast<std::uint32_t>(4 * g.edge_count() + 16);
}

// Thin shim over the shared hop core (sim::ForwardingEngine); kept for API
// compatibility and for callers that want the full per-packet PathTrace
// including the final header state.
PathTrace route_packet(const Network& net, ForwardingProtocol& protocol, NodeId source,
                       NodeId destination, std::uint32_t ttl,
                       std::uint8_t traffic_class) {
  const Graph& g = net.graph();
  if (source >= g.node_count() || destination >= g.node_count()) {
    throw std::out_of_range("route_packet: endpoint out of range");
  }
  if (ttl == 0) ttl = default_ttl(g);

  const sim::ForwardingEngine engine(net, protocol);
  sim::FlowState fs;
  fs.reset(source, destination, ttl, traffic_class);

  PathTrace trace;
  trace.nodes.push_back(source);
  const sim::FlowOutcome outcome =
      engine.run(fs, [&trace](NodeId v) { trace.nodes.push_back(v); });

  trace.status = outcome.status;
  trace.drop_reason = outcome.reason;
  trace.cost = fs.cost;
  trace.hops = fs.hops;
  trace.final_packet = std::move(fs.packet);
  return trace;
}

}  // namespace pr::net
