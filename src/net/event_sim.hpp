// Minimal discrete-event engine plus packet-flight scheduling.
//
// The stretch experiments only need the synchronous walker (forwarding.hpp);
// the event engine adds wall-clock semantics for the scenarios where *when*
// matters: the reconvergence-loss experiment (E11), failure storms, and link
// flapping with hold-down timers (Section 7 of the paper).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "net/forwarding.hpp"
#include "net/network.hpp"

namespace pr::net {

/// Time-ordered callback queue.  Events at equal times run in scheduling
/// order (FIFO), which keeps runs deterministic.
class Simulator {
 public:
  /// Schedules `fn` at absolute time `t` (must be >= now()).
  void at(SimTime t, std::function<void()> fn);

  /// Schedules `fn` `delay` seconds from now.
  void after(SimTime delay, std::function<void()> fn);

  /// Runs until the queue drains or `limit` is reached (infinity = drain).
  void run(SimTime limit = std::numeric_limits<SimTime>::infinity());

  [[nodiscard]] SimTime now() const noexcept { return now_; }
  [[nodiscard]] std::size_t events_processed() const noexcept { return processed_; }
  [[nodiscard]] bool idle() const noexcept { return queue_.empty(); }

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  /// Max-heap comparator inverted so the earliest (time, seq) is on top.
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      return a.time > b.time || (a.time == b.time && a.seq > b.seq);
    }
  };

  std::vector<Event> queue_;  // heap ordered by Later
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::size_t processed_ = 0;
};

/// Completion callback for an in-flight packet.
using FlightCallback = std::function<void(const PathTrace&)>;

class QueueModel;

/// Injects a packet at `source` at time `start`; hops incur the network's
/// processing delay plus per-link propagation delay.  Link state is sampled
/// at each forwarding instant, so failures occurring mid-flight affect the
/// packet exactly as they would in a real network.  When `queues` is given,
/// each hop additionally serialises through the interface's transmit queue
/// and can tail-drop (DropReason::kCongestion).  Calls `done` with the final
/// trace.
void launch_packet(Simulator& sim, const Network& net, ForwardingProtocol& protocol,
                   NodeId source, NodeId destination, SimTime start, FlightCallback done,
                   std::uint32_t ttl = 0, QueueModel* queues = nullptr);

}  // namespace pr::net
