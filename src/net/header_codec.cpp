#include "net/header_codec.hpp"

#include <stdexcept>

namespace pr::net {

unsigned bits_for_value(std::uint64_t max_value) noexcept {
  unsigned bits = 0;
  while (max_value > 0) {
    ++bits;
    max_value >>= 1;
  }
  return bits;
}

PrHeaderLayout PrHeaderLayout::for_hop_diameter(std::uint32_t diameter) noexcept {
  return PrHeaderLayout{bits_for_value(diameter)};
}

PrHeaderLayout PrHeaderLayout::for_max_dd(std::uint64_t max_dd) noexcept {
  return PrHeaderLayout{bits_for_value(max_dd)};
}

std::uint8_t encode_dscp(const PrHeaderLayout& layout, bool pr_bit, std::uint32_t dd) {
  if (layout.total_bits() > 4) {
    throw std::invalid_argument(
        "encode_dscp: layout does not fit DSCP pool 2 (needs " +
        std::to_string(layout.total_bits()) + " bits, 4 available)");
  }
  if (dd > layout.max_encodable_dd()) {
    throw std::invalid_argument("encode_dscp: dd value " + std::to_string(dd) +
                                " exceeds layout capacity " +
                                std::to_string(layout.max_encodable_dd()));
  }
  const std::uint8_t payload =
      static_cast<std::uint8_t>((pr_bit ? 1u << layout.dd_bits : 0u) | dd);
  return static_cast<std::uint8_t>((payload << 2) | 0b11);  // pool-2 'xxxx11'
}

DecodedPrHeader decode_dscp(const PrHeaderLayout& layout, std::uint8_t codepoint) {
  if ((codepoint & 0b11) != 0b11) {
    throw std::invalid_argument("decode_dscp: not a DSCP pool-2 codepoint");
  }
  if (codepoint > 0b111111) {
    throw std::invalid_argument("decode_dscp: value exceeds the 6-bit DSCP field");
  }
  const std::uint8_t payload = static_cast<std::uint8_t>(codepoint >> 2);
  DecodedPrHeader out;
  out.pr_bit = (payload >> layout.dd_bits) & 1u;
  out.dd = payload & layout.max_encodable_dd();
  return out;
}

std::uint64_t fcp_header_bits(std::size_t failure_count, std::size_t edge_count) noexcept {
  const unsigned id_bits = bits_for_value(edge_count == 0 ? 0 : edge_count - 1);
  const unsigned count_bits = bits_for_value(edge_count);
  return static_cast<std::uint64_t>(count_bits) +
         static_cast<std::uint64_t>(failure_count) * id_bits;
}

}  // namespace pr::net
