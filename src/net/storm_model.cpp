#include "net/storm_model.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace pr::net {

StormModel::StormModel(const SrlgCatalog& catalog) : catalog_(&catalog) {}

void StormModel::sample(graph::Rng& rng, StormSample& out) const {
  out.groups.clear();
  sample_groups(rng, out.groups);
  std::sort(out.groups.begin(), out.groups.end());
  out.groups.erase(std::unique(out.groups.begin(), out.groups.end()), out.groups.end());

  const std::size_t edge_count = catalog_->graph().edge_count();
  if (out.failures.capacity() != edge_count) {
    out.failures = graph::EdgeSet(edge_count);
  } else {
    out.failures.clear();
  }
  for (const std::size_t g : out.groups) {
    for (const graph::EdgeId e : catalog_->members(g)) out.failures.insert(e);
  }
}

IndependentOutages::IndependentOutages(const SrlgCatalog& catalog,
                                       std::vector<double> probabilities)
    : StormModel(catalog), probabilities_(std::move(probabilities)) {
  if (probabilities_.size() != catalog.group_count()) {
    throw std::invalid_argument(
        "IndependentOutages: one probability per catalog group required");
  }
  for (const double p : probabilities_) {
    if (!(p >= 0.0 && p <= 1.0)) {  // also rejects NaN
      throw std::invalid_argument(
          "IndependentOutages: probabilities must be in [0, 1]");
    }
  }
}

IndependentOutages IndependentOutages::uniform(const SrlgCatalog& catalog, double p) {
  return IndependentOutages(catalog, std::vector<double>(catalog.group_count(), p));
}

void IndependentOutages::sample_groups(graph::Rng& rng,
                                       std::vector<std::size_t>& groups) const {
  // One Bernoulli draw per group, in group order: the variate count is fixed,
  // so the stream is identical whatever the outcome pattern.
  for (std::size_t g = 0; g < probabilities_.size(); ++g) {
    if (rng.chance(probabilities_[g])) groups.push_back(g);
  }
}

std::string IndependentOutages::describe() const {
  double min_p = 1.0;
  double max_p = 0.0;
  for (const double p : probabilities_) {
    min_p = std::min(min_p, p);
    max_p = std::max(max_p, p);
  }
  if (probabilities_.empty()) min_p = max_p = 0.0;
  std::ostringstream os;
  os << "independent-outages over " << catalog().group_count() << " groups, p in ["
     << min_p << ", " << max_p << "]";
  return os.str();
}

GeographicCut::GeographicCut(const SrlgCatalog& catalog) : StormModel(catalog) {
  if (catalog.group_count() == 0) {
    throw std::invalid_argument("GeographicCut: catalog has no groups");
  }
}

void GeographicCut::sample_groups(graph::Rng& rng,
                                  std::vector<std::size_t>& groups) const {
  groups.push_back(rng.below(catalog().group_count()));
}

std::string GeographicCut::describe() const {
  return "geographic-cut: 1 of " + std::to_string(catalog().group_count()) +
         " anchored bundles per scenario";
}

CompoundStorm::CompoundStorm(const SrlgCatalog& catalog, std::size_t k)
    : StormModel(catalog), k_(k) {
  if (k == 0 || k > catalog.group_count()) {
    throw std::invalid_argument(
        "CompoundStorm: k must be in [1, group_count()], got " + std::to_string(k));
  }
}

void CompoundStorm::sample_groups(graph::Rng& rng,
                                  std::vector<std::size_t>& groups) const {
  // Rejection draw of k distinct groups; k is small, so the linear membership
  // scan beats per-scenario set allocations.
  while (groups.size() < k_) {
    const std::size_t g = rng.below(catalog().group_count());
    if (std::find(groups.begin(), groups.end(), g) == groups.end()) {
      groups.push_back(g);
    }
  }
}

std::string CompoundStorm::describe() const {
  return "compound-storm: " + std::to_string(k_) + " distinct groups of " +
         std::to_string(catalog().group_count()) + " per scenario";
}

SrlgCatalog geographic_srlgs(const Graph& g, std::size_t radius) {
  if (radius == 0) throw std::invalid_argument("geographic_srlgs: radius must be > 0");
  if (g.edge_count() == 0) throw std::invalid_argument("geographic_srlgs: empty graph");

  SrlgCatalog catalog(g);
  std::vector<std::uint32_t> hops(g.node_count());
  std::vector<NodeId> frontier;
  std::vector<std::uint8_t> taken(g.edge_count());
  constexpr std::uint32_t kUnreached = std::numeric_limits<std::uint32_t>::max();

  for (NodeId anchor = 0; anchor < g.node_count(); ++anchor) {
    if (g.degree(anchor) == 0) continue;

    // BFS to hop distance radius - 1; every edge incident to a reached node
    // belongs to the anchor's bundle.
    std::fill(hops.begin(), hops.end(), kUnreached);
    std::fill(taken.begin(), taken.end(), 0);
    frontier.clear();
    frontier.push_back(anchor);
    hops[anchor] = 0;
    std::vector<graph::EdgeId> members;
    for (std::size_t i = 0; i < frontier.size(); ++i) {
      const NodeId v = frontier[i];
      for (const graph::DartId d : g.out_darts(v)) {
        const graph::EdgeId e = graph::dart_edge(d);
        if (taken[e] == 0) {
          taken[e] = 1;
          members.push_back(e);
        }
        const NodeId u = g.dart_head(d);
        if (hops[u] == kUnreached && hops[v] + 1 < radius) {
          hops[u] = hops[v] + 1;
          frontier.push_back(u);
        }
      }
    }
    std::sort(members.begin(), members.end());
    catalog.add_group(std::move(members));
  }
  return catalog;
}

std::vector<WeightedScenario> enumerate_outage_scenarios(
    const IndependentOutages& model) {
  const std::span<const double> probs = model.probabilities();
  const std::size_t groups = probs.size();
  if (groups > 20) {
    throw std::invalid_argument(
        "enumerate_outage_scenarios: catalog too large to enumerate (" +
        std::to_string(groups) + " groups > 20)");
  }
  std::vector<WeightedScenario> out;
  out.reserve(std::size_t{1} << groups);
  for (std::uint32_t mask = 0; mask < (std::uint32_t{1} << groups); ++mask) {
    WeightedScenario ws;
    ws.probability = 1.0;
    for (std::size_t g = 0; g < groups; ++g) {
      if (mask & (std::uint32_t{1} << g)) {
        ws.groups.push_back(g);
        ws.probability *= probs[g];
      } else {
        ws.probability *= 1.0 - probs[g];
      }
    }
    out.push_back(std::move(ws));
  }
  return out;
}

}  // namespace pr::net
