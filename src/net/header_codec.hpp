// Wire encoding of the Packet Re-cycling header bits.
//
// The paper proposes carrying the PR bit and the distance-discriminator (DD)
// bits inside DSCP pool 2 -- the 'xxxx11' codepoints of the 6-bit DiffServ
// field reserved for experimental/local use (RFC 2474).  Pool-2 codepoints
// leave 4 free bits, so PR fits whenever 1 + ceil(log2(d+1)) <= 4, i.e. for
// hop diameters up to 7.  Larger networks (or weighted discriminators) need
// additional header space; the codec reports the requirement either way and
// the header-overhead bench (E8) compares it against FCP's failure list.
#pragma once

#include <cstdint>

#include "net/packet.hpp"

namespace pr::net {

/// Number of bits needed to represent values 0..max_value.
[[nodiscard]] unsigned bits_for_value(std::uint64_t max_value) noexcept;

/// Bit budget of a PR header for a given maximum distance discriminator.
struct PrHeaderLayout {
  unsigned dd_bits = 0;

  /// Layout sized for hop-count discriminators on a network of hop diameter
  /// `diameter` (DD values range over 0..diameter).
  [[nodiscard]] static PrHeaderLayout for_hop_diameter(std::uint32_t diameter) noexcept;

  /// Layout sized for an arbitrary maximum DD value (weighted discriminators).
  [[nodiscard]] static PrHeaderLayout for_max_dd(std::uint64_t max_dd) noexcept;

  [[nodiscard]] unsigned total_bits() const noexcept { return 1 + dd_bits; }

  /// True when the header fits in the 4 free bits of a DSCP pool-2 codepoint.
  [[nodiscard]] bool fits_dscp_pool2() const noexcept { return total_bits() <= 4; }

  [[nodiscard]] std::uint32_t max_encodable_dd() const noexcept {
    return dd_bits >= 32 ? 0xFFFFFFFFu : (1u << dd_bits) - 1;
  }
};

/// Encodes (pr, dd) as a DSCP pool-2 codepoint: payload bits shifted over the
/// fixed '11' pool discriminator.  Throws std::invalid_argument when dd does
/// not fit the layout or the layout exceeds the 6-bit DSCP field.
[[nodiscard]] std::uint8_t encode_dscp(const PrHeaderLayout& layout, bool pr_bit,
                                       std::uint32_t dd);

/// Inverse of encode_dscp.  Throws std::invalid_argument when the codepoint is
/// not a pool-2 codepoint.
struct DecodedPrHeader {
  bool pr_bit = false;
  std::uint32_t dd = 0;
};
[[nodiscard]] DecodedPrHeader decode_dscp(const PrHeaderLayout& layout,
                                          std::uint8_t codepoint);

/// Header bits an FCP packet needs to name `failure_count` failed links out of
/// `edge_count` total: count field + one link id per failure.  Mirrors the
/// paper's argument that FCP "employs more bits than are currently available".
[[nodiscard]] std::uint64_t fcp_header_bits(std::size_t failure_count,
                                            std::size_t edge_count) noexcept;

}  // namespace pr::net
