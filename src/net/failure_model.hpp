// Failure injection: scenario sampling for the stretch experiments and
// time-driven failure processes (storms, flapping) for the event simulator.
//
// The paper's Figure 2 evaluates (a-c) every single link failure and (d-f)
// random multi-failure combinations; its Section 7 discusses link flapping,
// handled with a hold-down timer so that a packet that saw a link down never
// sees it up again while still cycle-following.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/graph.hpp"
#include "graph/rng.hpp"
#include "net/event_sim.hpp"
#include "net/network.hpp"

namespace pr::net {

/// All single-link failure scenarios (one EdgeSet per edge).
[[nodiscard]] std::vector<graph::EdgeSet> all_single_failures(const Graph& g);

/// All single-node failure scenarios: for each non-isolated node, the edge
/// set of its incident links (the paper's node-failure model, Section 4).
/// The failed node itself becomes unreachable; pairs involving it classify
/// as partitioned in the coverage experiment.
[[nodiscard]] std::vector<graph::EdgeSet> all_node_failures(const Graph& g);

/// Uniformly samples up to `scenarios` distinct k-subsets of edges whose
/// removal keeps the graph connected (the regime where PR guarantees
/// delivery).  Small subset spaces are enumerated exactly, so the result may
/// contain fewer than `scenarios` sets when fewer qualify.  Throws
/// std::invalid_argument when no qualifying subset exists (or none is found
/// within the attempt budget on large spaces).
[[nodiscard]] std::vector<graph::EdgeSet> sample_connected_failures(
    const Graph& g, std::size_t k, std::size_t scenarios, graph::Rng& rng,
    std::size_t max_attempts_per_scenario = 10000);

/// Samples k-subsets without the connectivity filter (used by the coverage
/// bench, which studies what happens when destinations become unreachable).
[[nodiscard]] std::vector<graph::EdgeSet> sample_any_failures(const Graph& g,
                                                              std::size_t k,
                                                              std::size_t scenarios,
                                                              graph::Rng& rng);

/// Every k-subset of edges, in lexicographic order.  Exponential; intended
/// for exhaustive small-graph property tests only.
[[nodiscard]] std::vector<graph::EdgeSet> enumerate_failures(const Graph& g,
                                                             std::size_t k);

/// Shared-risk link groups: links that fail together because they share a
/// physical resource (a conduit, a fibre span, a line card).  SRLG scenarios
/// are how "mission-critical" operators actually reason about the correlated
/// multi-failures the paper's multi-failure guarantee targets.
class SrlgCatalog {
 public:
  /// `g` must outlive the catalog.
  explicit SrlgCatalog(const Graph& g) : graph_(&g) {}

  [[nodiscard]] const Graph& graph() const noexcept { return *graph_; }

  /// Registers a group; members must be valid, duplicates are rejected.
  /// Returns the group id.
  std::size_t add_group(std::vector<graph::EdgeId> members);

  [[nodiscard]] std::size_t group_count() const noexcept { return groups_.size(); }
  [[nodiscard]] std::span<const graph::EdgeId> members(std::size_t group) const {
    return groups_.at(group);
  }

  /// The group as a failure scenario usable by the experiment harness.
  [[nodiscard]] graph::EdgeSet scenario(std::size_t group) const;

  /// Applies / clears the whole group on a network.
  void fail_group(Network& net, std::size_t group) const;
  void restore_group(Network& net, std::size_t group) const;

  /// Groups whose loss would disconnect the network -- the risk report an
  /// operator wants before buying into any FRR scheme.
  [[nodiscard]] std::vector<std::size_t> disconnecting_groups() const;

 private:
  const Graph* graph_;
  std::vector<std::vector<graph::EdgeId>> groups_;
};

/// Random geography-flavoured SRLGs: each group gathers `max_size` edges
/// around a randomly chosen anchor node (links sharing a conduit out of the
/// same site).  Deterministic in `rng`.
[[nodiscard]] SrlgCatalog random_srlgs(const Graph& g, std::size_t groups,
                                       std::size_t max_size, graph::Rng& rng);

/// Section 7 flap damping: requested restores take effect only after the link
/// has stayed failed for `hold_down` seconds; a new failure cancels a pending
/// restore.  Failures always apply immediately.
class FlapDamper {
 public:
  FlapDamper(Simulator& sim, Network& net, SimTime hold_down);

  /// Applies the failure now and cancels any pending restore of `e`.
  void fail(graph::EdgeId e);

  /// Requests a restore: the link comes back at now + hold_down unless it
  /// fails again first.
  void request_restore(graph::EdgeId e);

  [[nodiscard]] SimTime hold_down() const noexcept { return hold_down_; }

 private:
  Simulator* sim_;
  Network* net_;
  SimTime hold_down_;
  /// Generation counter per edge; a scheduled restore only fires if its
  /// generation still matches (i.e. no newer failure intervened).
  std::vector<std::uint64_t> generation_;
};

}  // namespace pr::net
