#include "net/queueing.hpp"

#include <algorithm>
#include <stdexcept>

namespace pr::net {

QueueModel::QueueModel(const Network& net, Config config)
    : net_(&net), config_(config) {
  if (config.link_rate_bps <= 0 || config.packet_bits <= 0) {
    throw std::invalid_argument("QueueModel: rate and packet size must be positive");
  }
  if (config.queue_packets == 0) {
    throw std::invalid_argument("QueueModel: queue must hold at least one packet");
  }
  tx_time_ = config.packet_bits / config.link_rate_bps;
  next_free_.assign(net.graph().dart_count(), 0.0);
}

QueueModel::QueueModel(const Network& net, Config config,
                       std::span<const double> edge_rate_bps)
    : QueueModel(net, config) {
  if (edge_rate_bps.size() != net.graph().edge_count()) {
    throw std::invalid_argument("QueueModel: one line rate per edge required");
  }
  tx_time_per_dart_.reserve(net.graph().dart_count());
  for (double rate : edge_rate_bps) {
    if (rate <= 0) {
      throw std::invalid_argument("QueueModel: line rates must be positive");
    }
    // Both darts of the edge, in dart order (2e, 2e+1).
    tx_time_per_dart_.push_back(config.packet_bits / rate);
    tx_time_per_dart_.push_back(config.packet_bits / rate);
  }
}

std::optional<SimTime> QueueModel::enqueue(graph::DartId d, SimTime now) {
  SimTime& free_at = next_free_.at(d);
  const SimTime tx = transmission_time(d);
  const SimTime start = std::max(now, free_at);
  // Packets currently queued ahead = waiting time over per-packet service.
  const double backlog = (start - now) / tx;
  if (backlog >= static_cast<double>(config_.queue_packets)) {
    ++tail_drops_;
    return std::nullopt;
  }
  free_at = start + tx;
  return free_at;
}

void QueueModel::flush() {
  std::fill(next_free_.begin(), next_free_.end(), 0.0);
}

}  // namespace pr::net
