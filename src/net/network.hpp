// The network under simulation: a graph plus mutable link state and timing
// parameters.  Failures are bidirectional (the paper's Section 4 assumption):
// a failed edge is unusable in both dart directions.  Node failure is
// modelled as all incident links failing.
#pragma once

#include <cstdint>

#include "graph/graph.hpp"

namespace pr::net {

using graph::DartId;
using graph::EdgeId;
using graph::Graph;
using graph::NodeId;

/// Simulation time in seconds.
using SimTime = double;

class Network {
 public:
  /// The graph must outlive the network.
  explicit Network(const Graph& g);

  [[nodiscard]] const Graph& graph() const noexcept { return *graph_; }

  [[nodiscard]] bool link_up(EdgeId e) const { return !failed_.contains(e); }
  /// A dart is usable iff its underlying link is up (bidirectional failures).
  [[nodiscard]] bool dart_usable(DartId d) const { return link_up(graph::dart_edge(d)); }

  void fail_link(EdgeId e);
  void restore_link(EdgeId e);
  /// Fails every link incident to `v`.
  void fail_node(NodeId v);
  /// Restores every link.
  void reset();

  /// The current failure scenario as an edge set (usable as a Dijkstra filter).
  [[nodiscard]] const graph::EdgeSet& failed_links() const noexcept { return failed_; }
  [[nodiscard]] std::size_t failure_count() const noexcept { return failed_.size(); }

  // -- timing (used by the discrete-event simulator) --

  /// Per-link propagation delay; default 1 ms.
  void set_link_delay(EdgeId e, SimTime delay);
  [[nodiscard]] SimTime link_delay(EdgeId e) const { return link_delay_.at(e); }

  /// Per-hop forwarding/processing delay applied at every router; default 10 us.
  void set_processing_delay(SimTime delay);
  [[nodiscard]] SimTime processing_delay() const noexcept { return processing_delay_; }

 private:
  const Graph* graph_;
  graph::EdgeSet failed_;
  std::vector<SimTime> link_delay_;
  SimTime processing_delay_ = 10e-6;
};

}  // namespace pr::net
