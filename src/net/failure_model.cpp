#include "net/failure_model.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

#include "graph/connectivity.hpp"

namespace pr::net {

using graph::EdgeId;
using graph::EdgeSet;

std::vector<EdgeSet> all_single_failures(const Graph& g) {
  std::vector<EdgeSet> out;
  out.reserve(g.edge_count());
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    EdgeSet s(g.edge_count());
    s.insert(e);
    out.push_back(std::move(s));
  }
  return out;
}

std::vector<EdgeSet> all_node_failures(const Graph& g) {
  std::vector<EdgeSet> out;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    if (g.degree(v) == 0) continue;
    EdgeSet s(g.edge_count());
    for (graph::DartId d : g.out_darts(v)) s.insert(graph::dart_edge(d));
    out.push_back(std::move(s));
  }
  return out;
}

std::vector<EdgeSet> sample_connected_failures(const Graph& g, std::size_t k,
                                               std::size_t scenarios, graph::Rng& rng,
                                               std::size_t max_attempts_per_scenario) {
  if (k > g.edge_count()) {
    throw std::invalid_argument("sample_connected_failures: k exceeds edge count");
  }

  // When the k-subset space is small, enumerate it instead of sampling: the
  // caller gets every qualifying scenario (possibly fewer than requested),
  // shuffled so that truncation by the caller stays unbiased.
  double combos = 1.0;
  for (std::size_t i = 0; i < k; ++i) {
    combos *= static_cast<double>(g.edge_count() - i) / static_cast<double>(i + 1);
  }
  if (combos <= static_cast<double>(std::max<std::size_t>(4 * scenarios, 4096))) {
    std::vector<EdgeSet> qualifying;
    for (auto& candidate : enumerate_failures(g, k)) {
      if (graph::is_connected(g, &candidate)) qualifying.push_back(std::move(candidate));
    }
    if (qualifying.empty()) {
      throw std::invalid_argument(
          "sample_connected_failures: no connectivity-preserving failure set of size " +
          std::to_string(k) + " exists");
    }
    std::shuffle(qualifying.begin(), qualifying.end(), rng.engine());
    if (qualifying.size() > scenarios) qualifying.resize(scenarios);
    return qualifying;
  }

  std::vector<EdgeSet> out;
  std::set<std::vector<EdgeId>> seen;  // avoid duplicate scenarios
  out.reserve(scenarios);
  while (out.size() < scenarios) {
    bool found = false;
    for (std::size_t attempt = 0; attempt < max_attempts_per_scenario; ++attempt) {
      EdgeSet candidate(g.edge_count());
      while (candidate.size() < k) {
        candidate.insert(static_cast<EdgeId>(rng.below(g.edge_count())));
      }
      if (!graph::is_connected(g, &candidate)) continue;
      std::vector<EdgeId> key(candidate.elements().begin(), candidate.elements().end());
      std::sort(key.begin(), key.end());
      // Duplicates are allowed once the space is almost exhausted, but prefer
      // fresh scenarios while they exist.
      if (seen.contains(key) && seen.size() < scenarios) continue;
      seen.insert(key);
      out.push_back(std::move(candidate));
      found = true;
      break;
    }
    if (!found) {
      throw std::invalid_argument(
          "sample_connected_failures: could not find a connectivity-preserving "
          "failure set of size " +
          std::to_string(k));
    }
  }
  return out;
}

std::vector<EdgeSet> sample_any_failures(const Graph& g, std::size_t k,
                                         std::size_t scenarios, graph::Rng& rng) {
  if (k > g.edge_count()) {
    throw std::invalid_argument("sample_any_failures: k exceeds edge count");
  }
  std::vector<EdgeSet> out;
  out.reserve(scenarios);
  for (std::size_t i = 0; i < scenarios; ++i) {
    EdgeSet candidate(g.edge_count());
    while (candidate.size() < k) {
      candidate.insert(static_cast<EdgeId>(rng.below(g.edge_count())));
    }
    out.push_back(std::move(candidate));
  }
  return out;
}

std::vector<EdgeSet> enumerate_failures(const Graph& g, std::size_t k) {
  std::vector<EdgeSet> out;
  const std::size_t m = g.edge_count();
  if (k > m) return out;
  std::vector<EdgeId> combo(k);
  for (std::size_t i = 0; i < k; ++i) combo[i] = static_cast<EdgeId>(i);
  while (true) {
    EdgeSet s(m);
    for (EdgeId e : combo) s.insert(e);
    out.push_back(std::move(s));
    // Next lexicographic combination.
    std::size_t i = k;
    while (i > 0) {
      --i;
      if (combo[i] + (k - i) < m) {
        ++combo[i];
        for (std::size_t j = i + 1; j < k; ++j) combo[j] = combo[j - 1] + 1;
        break;
      }
      if (i == 0) return out;
    }
    if (k == 0) return out;
  }
}

std::size_t SrlgCatalog::add_group(std::vector<graph::EdgeId> members) {
  std::vector<graph::EdgeId> sorted = members;
  std::sort(sorted.begin(), sorted.end());
  if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end()) {
    throw std::invalid_argument("SrlgCatalog::add_group: duplicate member");
  }
  for (graph::EdgeId e : sorted) {
    if (e >= graph_->edge_count()) {
      throw std::out_of_range("SrlgCatalog::add_group: edge out of range");
    }
  }
  if (sorted.empty()) {
    throw std::invalid_argument("SrlgCatalog::add_group: empty group");
  }
  groups_.push_back(std::move(members));
  return groups_.size() - 1;
}

graph::EdgeSet SrlgCatalog::scenario(std::size_t group) const {
  graph::EdgeSet out(graph_->edge_count());
  for (graph::EdgeId e : groups_.at(group)) out.insert(e);
  return out;
}

void SrlgCatalog::fail_group(Network& net, std::size_t group) const {
  for (graph::EdgeId e : groups_.at(group)) net.fail_link(e);
}

void SrlgCatalog::restore_group(Network& net, std::size_t group) const {
  for (graph::EdgeId e : groups_.at(group)) net.restore_link(e);
}

std::vector<std::size_t> SrlgCatalog::disconnecting_groups() const {
  std::vector<std::size_t> out;
  if (graph_->node_count() == 0) return out;
  // One EdgeSet and one component scratch reused across all groups: catalogs
  // built by geographic_srlgs() have one group per node, so the per-group
  // allocations the naive scenario()/is_connected() pair makes dominate on
  // backbone-sized graphs.
  graph::EdgeSet failures(graph_->edge_count());
  graph::ComponentScratch scratch;
  for (std::size_t i = 0; i < groups_.size(); ++i) {
    failures.clear();
    for (const graph::EdgeId e : groups_[i]) failures.insert(e);
    if (graph::connected_components_into(*graph_, &failures, scratch) != 1) {
      out.push_back(i);
    }
  }
  return out;
}

SrlgCatalog random_srlgs(const Graph& g, std::size_t groups, std::size_t max_size,
                         graph::Rng& rng) {
  if (max_size == 0) throw std::invalid_argument("random_srlgs: max_size must be > 0");
  if (g.edge_count() == 0) throw std::invalid_argument("random_srlgs: empty graph");
  SrlgCatalog catalog(g);
  for (std::size_t i = 0; i < groups; ++i) {
    // Anchor at a node with at least one link; gather incident links first,
    // then links of neighbours, until the group is full.
    NodeId anchor;
    do {
      anchor = static_cast<NodeId>(rng.below(g.node_count()));
    } while (g.degree(anchor) == 0);

    std::vector<graph::EdgeId> members;
    std::vector<std::uint8_t> taken(g.edge_count(), 0);
    const auto grab = [&](NodeId v) {
      for (graph::DartId d : g.out_darts(v)) {
        const graph::EdgeId e = graph::dart_edge(d);
        if (members.size() < max_size && taken[e] == 0 && rng.chance(0.6)) {
          taken[e] = 1;
          members.push_back(e);
        }
      }
    };
    grab(anchor);
    for (graph::DartId d : g.out_darts(anchor)) grab(g.dart_head(d));
    if (members.empty()) {
      // Guarantee at least the anchor's first link.
      members.push_back(graph::dart_edge(g.out_darts(anchor)[0]));
    }
    catalog.add_group(std::move(members));
  }
  return catalog;
}

FlapDamper::FlapDamper(Simulator& sim, Network& net, SimTime hold_down)
    : sim_(&sim), net_(&net), hold_down_(hold_down),
      generation_(net.graph().edge_count(), 0) {
  if (hold_down < 0) throw std::invalid_argument("FlapDamper: negative hold down");
}

void FlapDamper::fail(graph::EdgeId e) {
  ++generation_.at(e);  // invalidates any pending restore
  net_->fail_link(e);
}

void FlapDamper::request_restore(graph::EdgeId e) {
  const std::uint64_t gen = ++generation_.at(e);
  sim_->after(hold_down_, [this, e, gen]() {
    if (generation_.at(e) == gen) net_->restore_link(e);
  });
}

}  // namespace pr::net
