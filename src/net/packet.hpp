// The simulated packet.
//
// Carries exactly the header state the compared protocols need:
//   * PR bit + distance discriminator (Packet Re-cycling, Sections 4.2/4.3),
//   * the accumulated failed-link list (Failure-Carrying Packets baseline),
// plus bookkeeping (ttl, id) that belongs to the simulator, not the wire.
// The wire-format cost of the PR fields is modelled by net/header_codec.hpp.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace pr::net {

using graph::DartId;
using graph::EdgeId;
using graph::NodeId;

struct Packet {
  NodeId source = graph::kInvalidNode;
  NodeId destination = graph::kInvalidNode;

  /// Packet Re-cycling header: set => the packet is in cycle-following mode.
  bool pr_bit = false;
  /// Distance discriminator stamped by the first failure-detecting router.
  /// Meaningful only while pr_bit is set.
  std::uint32_t dd = 0;

  /// Failure-Carrying Packets baseline: links learned to be down, in
  /// discovery order (kept sorted-unique by the FCP protocol).
  std::vector<EdgeId> fcp_failures;

  /// Simulator guard against protocol bugs and genuinely disconnected
  /// destinations; decremented per hop.
  std::uint32_t ttl = 0;

  /// DSCP class selector (0..7); lets Section-7 policies scope PR protection
  /// to premium traffic classes.
  std::uint8_t traffic_class = 0;

  /// Simulator-assigned identifier for traces and logs.
  std::uint64_t id = 0;
};

}  // namespace pr::net
