// Sampled failure-scenario generators over shared-risk link groups: the
// storm models behind million-scenario Monte-Carlo sweeps.
//
// Exhaustive k-link enumeration explodes combinatorially, yet the paper's
// guarantee is phrased over arbitrary failure *combinations* -- and the
// combinations operators actually fear are correlated: a conduit cut takes
// every fibre inside, a storm front takes every bundle around a site, a
// maintenance window doubles an independent outage elsewhere.  A StormModel
// turns an SrlgCatalog into a scenario distribution that can be sampled
// forever in O(1) memory:
//   * IndependentOutages -- every group fails independently with its own
//                           outage probability (line cards, conduits with
//                           known MTBF);
//   * GeographicCut      -- one anchored edge bundle fails at a time, drawn
//                           uniformly (backhoe fades a random site); pair it
//                           with geographic_srlgs(), which builds one bundle
//                           of all links within a hop radius per anchor node;
//   * CompoundStorm      -- exactly k distinct groups fail together (the
//                           correlated multi-failure regime of eMRC-style
//                           recovery studies).
//
// Determinism: sample() is a pure function of the passed Rng state.  Sweep
// drivers reseed the worker Rng per scenario index (sim::split_seed), so
// scenario i draws the same groups at every thread count.  Sampled group
// lists are emitted sorted ascending; the failure EdgeSet is their member
// union.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "graph/rng.hpp"
#include "net/failure_model.hpp"

namespace pr::net {

/// One sampled scenario, phrased both ways the sweep needs it: the failed
/// group ids (for O(groups) incidence-union probes) and the failed-edge union
/// (for the Network overlay and residual-connectivity checks).  Reusable
/// scratch: sample() clears and refills it, keeping capacity.
struct StormSample {
  std::vector<std::size_t> groups;  ///< failed groups, ascending, deduped
  graph::EdgeSet failures;          ///< union of the groups' member edges
};

class StormModel {
 public:
  /// `catalog` (and its graph) must outlive the model.
  explicit StormModel(const SrlgCatalog& catalog);
  virtual ~StormModel() = default;

  [[nodiscard]] const SrlgCatalog& catalog() const noexcept { return *catalog_; }

  /// Draws one scenario into `out` (cleared first, capacity kept).  The
  /// group list is sorted ascending and deduped; `out.failures` is resized
  /// to the catalog graph's edge count on first use.
  void sample(graph::Rng& rng, StormSample& out) const;

  /// One-line description for bench preambles and reports.
  [[nodiscard]] virtual std::string describe() const = 0;

 protected:
  /// Fills `groups` with the failed group ids (any order, duplicates
  /// allowed -- sample() canonicalises).  Must draw a number of rng variates
  /// that depends only on the draw outcomes, never on external state.
  virtual void sample_groups(graph::Rng& rng, std::vector<std::size_t>& groups) const = 0;

 private:
  const SrlgCatalog* catalog_;
};

/// Every group fails independently with its own probability per scenario.
/// With small probabilities most scenarios are calm (no failed group) --
/// exactly the long-tail regime where streaming reducers earn their keep.
class IndependentOutages final : public StormModel {
 public:
  /// One probability in [0, 1] per catalog group (throws otherwise).
  IndependentOutages(const SrlgCatalog& catalog, std::vector<double> probabilities);

  /// Uniform shorthand: every group fails with probability `p`.
  [[nodiscard]] static IndependentOutages uniform(const SrlgCatalog& catalog, double p);

  [[nodiscard]] std::span<const double> probabilities() const noexcept {
    return probabilities_;
  }

  [[nodiscard]] std::string describe() const override;

 protected:
  void sample_groups(graph::Rng& rng, std::vector<std::size_t>& groups) const override;

 private:
  std::vector<double> probabilities_;
};

/// Exactly one catalog group per scenario, drawn uniformly.  Meant for
/// geographically built catalogs (geographic_srlgs below): each draw is one
/// conduit cut around a random anchor site.
class GeographicCut final : public StormModel {
 public:
  explicit GeographicCut(const SrlgCatalog& catalog);

  [[nodiscard]] std::string describe() const override;

 protected:
  void sample_groups(graph::Rng& rng, std::vector<std::size_t>& groups) const override;
};

/// Exactly `k` distinct groups fail together per scenario, drawn uniformly
/// without replacement: the compound-storm / correlated multi-failure regime.
/// Throws std::invalid_argument when k == 0 or k > group_count().
class CompoundStorm final : public StormModel {
 public:
  CompoundStorm(const SrlgCatalog& catalog, std::size_t k);

  [[nodiscard]] std::size_t k() const noexcept { return k_; }
  [[nodiscard]] std::string describe() const override;

 protected:
  void sample_groups(graph::Rng& rng, std::vector<std::size_t>& groups) const override;

 private:
  std::size_t k_;
};

/// Geographic SRLG builder: one group per anchor node containing every edge
/// with an endpoint within `radius - 1` hops of the anchor (radius 1 = the
/// anchor's incident links, i.e. a node outage; radius 2 adds the whole
/// neighbourhood's links -- a site-wide conduit cut).  Anchors whose bundle
/// would be empty (isolated nodes) are skipped.  Deterministic; no rng.
[[nodiscard]] SrlgCatalog geographic_srlgs(const Graph& g, std::size_t radius);

/// One subset of an enumerable catalog with its exact probability under an
/// IndependentOutages model.
struct WeightedScenario {
  std::vector<std::size_t> groups;  ///< ascending
  double probability = 0.0;
};

/// All 2^G group subsets with their exact probabilities, in bitmask order
/// (group 0 = lowest bit).  The exhaustive oracle sampled storm estimates
/// must converge to; gated to G <= 20 groups (std::invalid_argument above).
[[nodiscard]] std::vector<WeightedScenario> enumerate_outage_scenarios(
    const IndependentOutages& model);

}  // namespace pr::net
