#include "route/lfa.hpp"

namespace pr::route {

LfaRouting::LfaRouting(const RoutingDb& routes, LfaKind kind)
    : routes_(&routes), kind_(kind) {
  const Graph& g = routes.graph();
  const std::size_t n = g.node_count();
  alternate_.assign(n * n, graph::kInvalidDart);
  for (NodeId dest = 0; dest < n; ++dest) {
    for (NodeId v = 0; v < n; ++v) {
      alternate_[index(v, dest)] = compute_pair(g, v, dest);
    }
  }
  const auto dirty = routes.dirty_destinations();
  synced_dirty_.assign(dirty.begin(), dirty.end());
}

DartId LfaRouting::compute_pair(const Graph& g, NodeId v, NodeId dest) const {
  const RoutingDb& routes = *routes_;
  if (v == dest || !routes.reachable(v, dest)) return graph::kInvalidDart;
  const DartId primary = routes.next_dart(v, dest);
  const NodeId primary_hop = g.dart_head(primary);
  const Weight d_v_t = routes.cost(v, dest);
  Weight best_cost = graph::kUnreachable;
  DartId best = graph::kInvalidDart;
  for (DartId cand : g.out_darts(v)) {
    if (cand == primary) continue;
    const NodeId nb = g.dart_head(cand);
    if (!routes.reachable(nb, dest)) continue;
    const Weight d_n_t = routes.cost(nb, dest);
    const Weight d_n_v = routes.cost(nb, v);
    if (!(d_n_t < d_n_v + d_v_t)) continue;  // RFC 5286 loop-free condition
    if (kind_ == LfaKind::kNodeProtecting && nb != dest && primary_hop != dest) {
      // Must also avoid the primary next-hop router entirely.
      const Weight d_n_p = routes.cost(nb, primary_hop);
      const Weight d_p_t = routes.cost(primary_hop, dest);
      if (!(d_n_t < d_n_p + d_p_t)) continue;
    }
    const Weight via = g.edge_weight(graph::dart_edge(cand)) + d_n_t;
    if (via < best_cost) {
      best_cost = via;
      best = cand;
    }
  }
  return best;
}

void LfaRouting::resync() {
  const Graph& g = routes_->graph();
  const std::size_t n = g.node_count();
  const auto dirty = routes_->dirty_destinations();
  ++resyncs_;
  if (synced_dirty_.empty() && dirty.empty()) return;  // nothing moved
  col_flag_.assign(n, 0);
  for (const NodeId c : synced_dirty_) col_flag_[c] = 1;
  for (const NodeId c : dirty) col_flag_[c] = 1;
  for (NodeId v = 0; v < n; ++v) {
    for (NodeId t = 0; t < n; ++t) {
      bool stale = col_flag_[t] != 0 || col_flag_[v] != 0;
      if (!stale && kind_ == LfaKind::kNodeProtecting && v != t &&
          routes_->reachable(v, t)) {
        // Column t is clean here, so the current primary hop equals the one
        // the stored alternate was derived with -- flag on ITS column too.
        stale = col_flag_[g.dart_head(routes_->next_dart(v, t))] != 0;
      }
      if (stale) {
        alternate_[index(v, t)] = compute_pair(g, v, t);
        ++pairs_recomputed_;
      }
    }
  }
  synced_dirty_.assign(dirty.begin(), dirty.end());
}

net::ForwardingDecision LfaRouting::forward(const net::Network& net, NodeId at,
                                            DartId /*arrived_over*/,
                                            net::Packet& packet) {
  if (at == packet.destination) return net::ForwardingDecision::deliver();
  const DartId primary = routes_->next_dart(at, packet.destination);
  if (primary == graph::kInvalidDart) {
    return net::ForwardingDecision::drop(net::DropReason::kNoRoute);
  }
  if (net.dart_usable(primary)) return net::ForwardingDecision::forward(primary);
  const DartId alt = alternate_[index(at, packet.destination)];
  if (alt != graph::kInvalidDart && net.dart_usable(alt)) {
    return net::ForwardingDecision::forward(alt);
  }
  return net::ForwardingDecision::drop(net::DropReason::kNoRoute);
}

double LfaRouting::alternate_coverage() const {
  const Graph& g = routes_->graph();
  const std::size_t n = g.node_count();
  std::size_t pairs = 0;
  std::size_t covered = 0;
  for (NodeId v = 0; v < n; ++v) {
    for (NodeId t = 0; t < n; ++t) {
      if (v == t || !routes_->reachable(v, t)) continue;
      ++pairs;
      if (alternate_[index(v, t)] != graph::kInvalidDart) ++covered;
    }
  }
  return pairs == 0 ? 0.0 : static_cast<double>(covered) / static_cast<double>(pairs);
}

}  // namespace pr::route
