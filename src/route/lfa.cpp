#include "route/lfa.hpp"

namespace pr::route {

LfaRouting::LfaRouting(const RoutingDb& routes, LfaKind kind)
    : routes_(&routes), kind_(kind) {
  const Graph& g = routes.graph();
  const std::size_t n = g.node_count();
  alternate_.assign(n * n, graph::kInvalidDart);

  for (NodeId dest = 0; dest < n; ++dest) {
    for (NodeId v = 0; v < n; ++v) {
      if (v == dest || !routes.reachable(v, dest)) continue;
      const DartId primary = routes.next_dart(v, dest);
      const NodeId primary_hop = g.dart_head(primary);
      const Weight d_v_t = routes.cost(v, dest);
      Weight best_cost = graph::kUnreachable;
      DartId best = graph::kInvalidDart;
      for (DartId cand : g.out_darts(v)) {
        if (cand == primary) continue;
        const NodeId nb = g.dart_head(cand);
        if (!routes.reachable(nb, dest)) continue;
        const Weight d_n_t = routes.cost(nb, dest);
        const Weight d_n_v = routes.cost(nb, v);
        if (!(d_n_t < d_n_v + d_v_t)) continue;  // RFC 5286 loop-free condition
        if (kind_ == LfaKind::kNodeProtecting && nb != dest &&
            primary_hop != dest) {
          // Must also avoid the primary next-hop router entirely.
          const Weight d_n_p = routes.cost(nb, primary_hop);
          const Weight d_p_t = routes.cost(primary_hop, dest);
          if (!(d_n_t < d_n_p + d_p_t)) continue;
        }
        const Weight via = g.edge_weight(graph::dart_edge(cand)) + d_n_t;
        if (via < best_cost) {
          best_cost = via;
          best = cand;
        }
      }
      alternate_[index(v, dest)] = best;
    }
  }
}

net::ForwardingDecision LfaRouting::forward(const net::Network& net, NodeId at,
                                            DartId /*arrived_over*/,
                                            net::Packet& packet) {
  if (at == packet.destination) return net::ForwardingDecision::deliver();
  const DartId primary = routes_->next_dart(at, packet.destination);
  if (primary == graph::kInvalidDart) {
    return net::ForwardingDecision::drop(net::DropReason::kNoRoute);
  }
  if (net.dart_usable(primary)) return net::ForwardingDecision::forward(primary);
  const DartId alt = alternate_[index(at, packet.destination)];
  if (alt != graph::kInvalidDart && net.dart_usable(alt)) {
    return net::ForwardingDecision::forward(alt);
  }
  return net::ForwardingDecision::drop(net::DropReason::kNoRoute);
}

double LfaRouting::alternate_coverage() const {
  const Graph& g = routes_->graph();
  const std::size_t n = g.node_count();
  std::size_t pairs = 0;
  std::size_t covered = 0;
  for (NodeId v = 0; v < n; ++v) {
    for (NodeId t = 0; t < n; ++t) {
      if (v == t || !routes_->reachable(v, t)) continue;
      ++pairs;
      if (alternate_[index(v, t)] != graph::kInvalidDart) ++covered;
    }
  }
  return pairs == 0 ? 0.0 : static_cast<double>(covered) / static_cast<double>(pairs);
}

}  // namespace pr::route
