// Plain shortest-path forwarding with no repair: packets meeting a failed
// link are dropped.  This models a router between failure detection and
// routing-protocol reconvergence -- the loss window the paper's introduction
// quantifies (a loaded OC-192 drops >10^5 packets per second of outage).
#pragma once

#include "net/forwarding.hpp"
#include "route/routing_db.hpp"

namespace pr::route {

class StaticSpf final : public net::ForwardingProtocol {
 public:
  /// `routes` must outlive the protocol.
  explicit StaticSpf(const RoutingDb& routes) : routes_(&routes) {}

  [[nodiscard]] net::ForwardingDecision forward(const net::Network& net, NodeId at,
                                                DartId arrived_over,
                                                net::Packet& packet) override;

  [[nodiscard]] std::string_view name() const noexcept override { return "spf"; }

 private:
  const RoutingDb* routes_;
};

}  // namespace pr::route
