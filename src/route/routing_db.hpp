// Destination-indexed routing state: the conventional shortest-path tables
// every compared protocol starts from, extended with the paper's extra
// routing-table column (Section 4.3) -- the *distance discriminator*, a
// strictly increasing function of the links along the shortest path to each
// destination.  Two candidate functions from the paper are supported: hop
// count (default, needs ~log2(diameter) header bits) and weighted path cost
// (ablation A4, needs integer link weights to be header-encodable).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/dijkstra.hpp"
#include "graph/graph.hpp"

namespace pr::route {

using graph::DartId;
using graph::EdgeId;
using graph::Graph;
using graph::NodeId;
using graph::Weight;

enum class DiscriminatorKind : std::uint8_t {
  kHops,          ///< number of links to the destination (paper's default)
  kWeightedCost,  ///< sum of link weights (requires integral weights)
};

/// All-destinations routing database computed over a graph, optionally minus
/// an excluded (failed) edge set.  Conceptually one routing table per router;
/// stored destination-major for cache friendliness, with per-router
/// memory accounting for the E9 bench.
class RoutingDb {
 public:
  RoutingDb(const Graph& g, const graph::EdgeSet* excluded = nullptr,
            DiscriminatorKind kind = DiscriminatorKind::kHops);

  /// First dart of `at`'s shortest path toward `dest`; kInvalidDart when
  /// at == dest or dest is unreachable.
  [[nodiscard]] DartId next_dart(NodeId at, NodeId dest) const {
    return trees_[dest].next_dart[at];
  }

  [[nodiscard]] bool reachable(NodeId at, NodeId dest) const {
    return trees_[dest].reachable(at);
  }

  [[nodiscard]] Weight cost(NodeId at, NodeId dest) const {
    return trees_[dest].dist[at];
  }

  [[nodiscard]] std::uint32_t hops(NodeId at, NodeId dest) const {
    return trees_[dest].hops[at];
  }

  /// The distance discriminator from `at` to `dest` under the configured
  /// kind.  Throws std::logic_error for unreachable destinations (no
  /// discriminator exists; PR never needs one there).
  [[nodiscard]] std::uint32_t discriminator(NodeId at, NodeId dest) const;

  /// Largest finite discriminator in the table: sizes the DD header field.
  [[nodiscard]] std::uint32_t max_discriminator() const;

  [[nodiscard]] DiscriminatorKind discriminator_kind() const noexcept { return kind_; }
  [[nodiscard]] const Graph& graph() const noexcept { return *graph_; }

  /// Bytes a single router needs for its routing table: one (next-hop,
  /// discriminator) pair per destination.  The discriminator column is the
  /// only PR-specific addition, mirroring the paper's memory argument.
  [[nodiscard]] std::size_t memory_bytes_per_router() const noexcept;

  /// Underlying tree for a destination (used by analysis code).
  [[nodiscard]] const graph::ShortestPathTree& tree(NodeId dest) const {
    return trees_[dest];
  }

 private:
  const Graph* graph_;
  DiscriminatorKind kind_;
  std::vector<graph::ShortestPathTree> trees_;
};

}  // namespace pr::route
