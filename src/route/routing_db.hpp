// Destination-indexed routing state: the conventional shortest-path tables
// every compared protocol starts from, extended with the paper's extra
// routing-table column (Section 4.3) -- the *distance discriminator*, a
// strictly increasing function of the links along the shortest path to each
// destination.  Two candidate functions from the paper are supported: hop
// count (default, needs ~log2(diameter) header bits) and weighted path cost
// (ablation A4, needs integer link weights to be header-encodable).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/dijkstra.hpp"
#include "graph/graph.hpp"

namespace pr::route {

using graph::DartId;
using graph::EdgeId;
using graph::Graph;
using graph::NodeId;
using graph::Weight;

enum class DiscriminatorKind : std::uint8_t {
  kHops,          ///< number of links to the destination (paper's default)
  kWeightedCost,  ///< sum of link weights (requires integral weights)
};

/// All-destinations routing database computed over a graph, optionally minus
/// an excluded (failed) edge set.  Conceptually one routing table per router;
/// the hot lookup columns (next dart / cost / hops) are flattened into single
/// contiguous destination-major arrays so the forwarding engine's inner loop
/// touches one cache line per lookup instead of chasing a per-destination
/// vector-of-vectors.  Per-router memory accounting feeds the E9 bench.
class RoutingDb {
 public:
  RoutingDb(const Graph& g, const graph::EdgeSet* excluded = nullptr,
            DiscriminatorKind kind = DiscriminatorKind::kHops);

  /// First dart of `at`'s shortest path toward `dest`; kInvalidDart when
  /// at == dest or dest is unreachable.
  [[nodiscard]] DartId next_dart(NodeId at, NodeId dest) const {
    return next_dart_[flat_index(at, dest)];
  }

  [[nodiscard]] bool reachable(NodeId at, NodeId dest) const {
    return dist_[flat_index(at, dest)] != graph::kUnreachable;
  }

  [[nodiscard]] Weight cost(NodeId at, NodeId dest) const {
    return dist_[flat_index(at, dest)];
  }

  [[nodiscard]] std::uint32_t hops(NodeId at, NodeId dest) const {
    return hops_[flat_index(at, dest)];
  }

  /// The distance discriminator from `at` to `dest` under the configured
  /// kind.  Throws std::logic_error for unreachable destinations (no
  /// discriminator exists; PR never needs one there).
  [[nodiscard]] std::uint32_t discriminator(NodeId at, NodeId dest) const;

  /// Largest finite discriminator in the table: sizes the DD header field.
  [[nodiscard]] std::uint32_t max_discriminator() const;

  [[nodiscard]] DiscriminatorKind discriminator_kind() const noexcept { return kind_; }
  [[nodiscard]] const Graph& graph() const noexcept { return *graph_; }

  /// Bytes a single router needs for its routing table: one (next-hop,
  /// discriminator) pair per destination.  The discriminator column is the
  /// only PR-specific addition, mirroring the paper's memory argument.
  [[nodiscard]] std::size_t memory_bytes_per_router() const noexcept;

 private:
  [[nodiscard]] std::size_t flat_index(NodeId at, NodeId dest) const noexcept {
    return static_cast<std::size_t>(dest) * node_count_ + at;
  }

  const Graph* graph_;
  DiscriminatorKind kind_;
  std::size_t node_count_ = 0;
  // The per-destination trees, flattened into contiguous destination-major
  // columns (index dest * node_count + at); the only storage the DB keeps.
  std::vector<DartId> next_dart_;
  std::vector<Weight> dist_;
  std::vector<std::uint32_t> hops_;
};

}  // namespace pr::route
