// Destination-indexed routing state: the conventional shortest-path tables
// every compared protocol starts from, extended with the paper's extra
// routing-table column (Section 4.3) -- the *distance discriminator*, a
// strictly increasing function of the links along the shortest path to each
// destination.  Two candidate functions from the paper are supported: hop
// count (default, needs ~log2(diameter) header bits) and weighted path cost
// (ablation A4, needs integer link weights to be header-encodable).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "graph/spf_workspace.hpp"

namespace pr::route {

using graph::DartId;
using graph::EdgeId;
using graph::Graph;
using graph::NodeId;
using graph::Weight;

enum class DiscriminatorKind : std::uint8_t {
  kHops,          ///< number of links to the destination (paper's default)
  kWeightedCost,  ///< sum of link weights (requires integral weights)
};

/// How rebuild() drives the per-destination tree repairs of a scenario.
enum class RepairDrive : std::uint8_t {
  /// Batched fast path (default): orphan subtrees discovered by descending
  /// the pristine children index (O(region) per tree, epoch-stamped scratch),
  /// restores replay only the rows the previous scenario changed, and column
  /// maxima are maintained without full column scans.  Bit-identical output.
  kBatchedTrees,
  /// The pre-backbone scenario-at-a-time path: per-tree memoised-walk orphan
  /// classification plus dense column restores and scans, each O(n).  Kept as
  /// the measured baseline for bench_backbone and as a second oracle in the
  /// equivalence tests.
  kPerDestination,
};

/// All-destinations routing database computed over a graph, optionally minus
/// an excluded (failed) edge set.  Conceptually one routing table per router;
/// the hot lookup columns (next dart / cost / hops) are flattened into single
/// contiguous destination-major arrays so the forwarding engine's inner loop
/// touches one cache line per lookup instead of chasing a per-destination
/// vector-of-vectors.  Per-router memory accounting feeds the E9 bench.
///
/// A db built WITHOUT a baseline exclusion set additionally supports
/// rebuild(): in-place delta repair to an arbitrary failure scenario,
/// bit-identical to constructing a fresh db with that scenario excluded.  The
/// state powering it -- a pristine column snapshot plus an edge ->
/// destination-trees membership index -- is materialised lazily on the first
/// rebuild() call, so never-rebuilt dbs pay nothing for it.
class RoutingDb {
 public:
  RoutingDb(const Graph& g, const graph::EdgeSet* excluded = nullptr,
            DiscriminatorKind kind = DiscriminatorKind::kHops);

  /// Repairs the tables in place so they equal RoutingDb(graph(), &excluded,
  /// discriminator_kind()) bit for bit (next_dart / dist / hops), but at
  /// delta cost: destination trees that do not use any excluded edge are
  /// skipped outright (restored from the pristine copy when a previous
  /// rebuild dirtied them), and affected trees are repaired from the
  /// orphaned-subtree frontier instead of from scratch.  Rebuilding with an
  /// empty set restores the pristine tables exactly.  `workspace` supplies
  /// the reusable SPF scratch; only available on a db constructed without a
  /// baseline exclusion set (throws std::logic_error otherwise).
  void rebuild(const graph::EdgeSet& excluded, graph::SpfWorkspace& workspace,
               RepairDrive drive = RepairDrive::kBatchedTrees);

  /// Materialises the incremental-rebuild state (pristine snapshot, edge ->
  /// destination-tree index, children index) up front, so the first real
  /// rebuild -- or a reader of pristine_next_dart()/dirty_destinations() --
  /// pays no surprise O(n^2) pass.  Same restrictions as rebuild().
  void prepare_incremental();

  /// Destinations whose columns currently differ from the pristine tables
  /// (empty when never rebuilt or after an empty-set rebuild).  Consumers:
  /// sparse per-router overlays (route::RouterTableOverlay) and incremental
  /// LFA alternate resync.
  [[nodiscard]] std::span<const NodeId> dirty_destinations() const noexcept {
    return dirty_dests_;
  }

  /// The PRISTINE (no-failure) first dart of `at`'s path toward `dest`,
  /// regardless of what scenario the live tables currently reflect.  Before
  /// the first rebuild the live tables are the pristine tables, so this is
  /// total on any db built without a baseline exclusion set.
  [[nodiscard]] DartId pristine_next_dart(NodeId at, NodeId dest) const noexcept {
    return incremental_ready_ ? pristine_next_dart_[flat_index(at, dest)]
                              : next_dart_[flat_index(at, dest)];
  }

  /// First dart of `at`'s shortest path toward `dest`; kInvalidDart when
  /// at == dest or dest is unreachable.
  [[nodiscard]] DartId next_dart(NodeId at, NodeId dest) const {
    return next_dart_[flat_index(at, dest)];
  }

  [[nodiscard]] bool reachable(NodeId at, NodeId dest) const {
    return dist_[flat_index(at, dest)] != graph::kUnreachable;
  }

  [[nodiscard]] Weight cost(NodeId at, NodeId dest) const {
    return dist_[flat_index(at, dest)];
  }

  [[nodiscard]] std::uint32_t hops(NodeId at, NodeId dest) const {
    return hops_[flat_index(at, dest)];
  }

  /// The distance discriminator from `at` to `dest` under the configured
  /// kind.  Throws std::logic_error for unreachable destinations (no
  /// discriminator exists; PR never needs one there).
  [[nodiscard]] std::uint32_t discriminator(NodeId at, NodeId dest) const;

  /// Largest finite discriminator in the table: sizes the DD header field.
  /// Maintained per destination column at construction and across rebuilds,
  /// so reading it is free.
  [[nodiscard]] std::uint32_t max_discriminator() const noexcept {
    return max_discriminator_;
  }

  [[nodiscard]] DiscriminatorKind discriminator_kind() const noexcept { return kind_; }
  [[nodiscard]] const Graph& graph() const noexcept { return *graph_; }

  /// Bytes a single router needs for its routing table: one (next-hop,
  /// discriminator) pair per destination.  The discriminator column is the
  /// only PR-specific addition, mirroring the paper's memory argument.
  [[nodiscard]] std::size_t memory_bytes_per_router() const noexcept;

  /// Total process-memory footprint of this db: live columns plus (when
  /// materialised) the pristine snapshot and the rebuild indices.  Counts
  /// vector capacities, so it is what the allocator actually holds.  This is
  /// the number the COW-overlay benches compare against per-router copies.
  [[nodiscard]] std::size_t bytes() const noexcept;

 private:
  [[nodiscard]] std::size_t flat_index(NodeId at, NodeId dest) const noexcept {
    return static_cast<std::size_t>(dest) * node_count_ + at;
  }

  /// Single pass over destination `dest`'s flat columns (no per-pair
  /// reachability re-check).
  [[nodiscard]] std::uint32_t column_max_discriminator(NodeId dest) const noexcept;

  /// CSR index: for each edge, the destinations whose pristine tree uses it.
  void build_edge_dest_index();

  /// CSR index: for each (destination, node), the node's children in that
  /// destination's pristine tree -- what repair_tree descends to find orphan
  /// subtrees in O(region).
  void build_children_index();

  /// Lazily snapshots the pristine columns and builds the edge index on the
  /// first rebuild(), so dbs that never rebuild pay nothing extra.
  void ensure_incremental_state();

  /// Undoes the previous scenario: sparse row restores when the last rebuild
  /// recorded changed lists (batched drive), dense column memcpys otherwise.
  void restore_dirty_columns();

  [[nodiscard]] graph::SpfWorkspace::TreeChildren children_view(
      NodeId dest) const noexcept {
    return {child_offsets_.data() +
                static_cast<std::size_t>(dest) * (node_count_ + 1),
            child_ids_.data()};
  }

  /// Discriminator of one flat table cell (caller checks reachability).
  [[nodiscard]] std::uint32_t disc_at(std::size_t flat) const noexcept;

  const Graph* graph_;
  DiscriminatorKind kind_;
  std::size_t node_count_ = 0;
  // The per-destination trees, flattened into contiguous destination-major
  // columns (index dest * node_count + at); the only storage the hot
  // forwarding lookups touch.
  std::vector<DartId> next_dart_;
  std::vector<Weight> dist_;
  std::vector<std::uint32_t> hops_;

  // Cached global discriminator maximum (one flat pass at construction,
  // maintained via the per-column maxima across rebuilds).
  std::uint32_t max_discriminator_ = 0;
  std::vector<std::uint32_t> col_max_disc_;  ///< lazily sized with rebuild state

  // Incremental-rebuild state; populated lazily by the first rebuild() and
  // only when the baseline exclusion set is empty (the scenario-sweep case).
  bool baseline_excluded_ = false;
  bool incremental_ready_ = false;
  std::uint64_t graph_structure_id_ = 0;  ///< guards rebuild against mutation
  std::vector<DartId> pristine_next_dart_;
  std::vector<Weight> pristine_dist_;
  std::vector<std::uint32_t> pristine_hops_;
  std::vector<std::uint32_t> pristine_col_max_disc_;
  std::vector<std::uint32_t> edge_dest_offsets_;  ///< CSR offsets, edge-indexed
  std::vector<NodeId> edge_dest_ids_;             ///< CSR payload: destinations
  std::vector<NodeId> dirty_dests_;    ///< columns differing from pristine
  std::vector<std::uint8_t> dest_flag_;  ///< rebuild scratch: affected marks
  std::vector<NodeId> affected_dests_;   ///< rebuild scratch: affected list

  // Pristine-tree children in CSR form, all destinations sharing one payload:
  // dest's slice starts at child_offsets_ + dest * (n + 1), holding n + 1
  // absolute offsets into child_ids_.  repair_tree's O(region) orphan
  // discovery descends this.
  std::vector<std::uint32_t> child_offsets_;  ///< n * (n + 1) absolute offsets
  std::vector<NodeId> child_ids_;             ///< one entry per tree edge
  // Argmax node of each pristine column's discriminator: rebuilds only rescan
  // a column when its pristine argmax row was itself orphaned.
  std::vector<NodeId> pristine_col_argmax_;

  // Sparse-restore bookkeeping written by the batched drive: per dirty
  // destination, the rows the repair changed (slice c of changed_nodes_ is
  // changed_offsets_[c] .. changed_offsets_[c + 1]).  Empty changed_offsets_
  // marks "dense" -- the legacy drive ran, restore whole columns.
  std::vector<std::size_t> changed_offsets_;
  std::vector<NodeId> changed_nodes_;
};

}  // namespace pr::route
