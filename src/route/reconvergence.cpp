#include "route/reconvergence.hpp"

#include "route/scenario_cache.hpp"

namespace pr::route {

namespace {

net::ForwardingDecision forward_with(const RoutingDb& routes, const net::Network& net,
                                     NodeId at, net::Packet& packet) {
  if (at == packet.destination) return net::ForwardingDecision::deliver();
  const DartId out = routes.next_dart(at, packet.destination);
  if (out == graph::kInvalidDart || !net.dart_usable(out)) {
    return net::ForwardingDecision::drop(net::DropReason::kNoRoute);
  }
  return net::ForwardingDecision::forward(out);
}

}  // namespace

ReconvergedRouting::ReconvergedRouting(const net::Network& net, DiscriminatorKind kind)
    : owned_(std::make_unique<RoutingDb>(net.graph(), &net.failed_links(), kind)),
      routes_(owned_.get()) {}

ReconvergedRouting::ReconvergedRouting(const net::Network& /*net*/,
                                       const RoutingDb& shared)
    : routes_(&shared) {}

net::ForwardingDecision ReconvergedRouting::forward(const net::Network& net, NodeId at,
                                                    DartId /*arrived_over*/,
                                                    net::Packet& packet) {
  return forward_with(*routes_, net, at, packet);
}

TimedReconvergence::TimedReconvergence(const net::Network& net, const RoutingDb& before,
                                       ScenarioRoutingCache* cache)
    : net_(&net), before_(&before), cache_(cache) {}

void TimedReconvergence::complete_convergence() {
  if (cache_ != nullptr) {
    after_ = &cache_->tables(net_->graph(), net_->failed_links(),
                             before_->discriminator_kind());
    return;
  }
  owned_after_ = std::make_unique<RoutingDb>(net_->graph(), &net_->failed_links(),
                                             before_->discriminator_kind());
  after_ = owned_after_.get();
}

net::ForwardingDecision TimedReconvergence::forward(const net::Network& net, NodeId at,
                                                    DartId /*arrived_over*/,
                                                    net::Packet& packet) {
  if (after_ != nullptr) return forward_with(*after_, net, at, packet);
  if (at == packet.destination) return net::ForwardingDecision::deliver();
  const DartId out = before_->next_dart(at, packet.destination);
  if (out == graph::kInvalidDart) {
    return net::ForwardingDecision::drop(net::DropReason::kNoRoute);
  }
  if (!net.dart_usable(out)) {
    // Pre-convergence: no alternative installed yet, the packet is lost.
    return net::ForwardingDecision::drop(net::DropReason::kPolicy);
  }
  return net::ForwardingDecision::forward(out);
}

}  // namespace pr::route
