#include "route/routing_db.hpp"

#include <cmath>
#include <stdexcept>

namespace pr::route {

RoutingDb::RoutingDb(const Graph& g, const graph::EdgeSet* excluded,
                     DiscriminatorKind kind)
    : graph_(&g), kind_(kind), trees_(graph::all_shortest_path_trees(g, excluded)) {
  if (kind_ == DiscriminatorKind::kWeightedCost) {
    // Weighted discriminators ride in an integer header field; require the
    // configured weights to be integral so encoding is exact.
    for (EdgeId e = 0; e < g.edge_count(); ++e) {
      const Weight w = g.edge_weight(e);
      if (w != std::floor(w)) {
        throw std::invalid_argument(
            "RoutingDb: weighted discriminators require integer link weights");
      }
    }
  }
}

std::uint32_t RoutingDb::discriminator(NodeId at, NodeId dest) const {
  const auto& tree = trees_.at(dest);
  if (!tree.reachable(at)) {
    throw std::logic_error("RoutingDb::discriminator: destination unreachable");
  }
  if (kind_ == DiscriminatorKind::kHops) return tree.hops[at];
  return static_cast<std::uint32_t>(std::llround(tree.dist[at]));
}

std::uint32_t RoutingDb::max_discriminator() const {
  std::uint32_t best = 0;
  for (NodeId dest = 0; dest < graph_->node_count(); ++dest) {
    for (NodeId at = 0; at < graph_->node_count(); ++at) {
      if (trees_[dest].reachable(at)) {
        best = std::max(best, discriminator(at, dest));
      }
    }
  }
  return best;
}

std::size_t RoutingDb::memory_bytes_per_router() const noexcept {
  // Per destination: next-hop interface id (4 B) + discriminator column (4 B).
  return graph_->node_count() * (sizeof(DartId) + sizeof(std::uint32_t));
}

}  // namespace pr::route
