#include "route/routing_db.hpp"

#include <cmath>
#include <stdexcept>

namespace pr::route {

RoutingDb::RoutingDb(const Graph& g, const graph::EdgeSet* excluded,
                     DiscriminatorKind kind)
    : graph_(&g), kind_(kind), node_count_(g.node_count()) {
  next_dart_.resize(node_count_ * node_count_);
  dist_.resize(node_count_ * node_count_);
  hops_.resize(node_count_ * node_count_);
  for (NodeId dest = 0; dest < node_count_; ++dest) {
    // Flatten each tree into the contiguous columns, then discard it.
    const graph::ShortestPathTree tree = graph::shortest_paths_to(g, dest, excluded);
    const std::size_t base = static_cast<std::size_t>(dest) * node_count_;
    for (NodeId at = 0; at < node_count_; ++at) {
      next_dart_[base + at] = tree.next_dart[at];
      dist_[base + at] = tree.dist[at];
      hops_[base + at] = tree.hops[at];
    }
  }
  if (kind_ == DiscriminatorKind::kWeightedCost) {
    // Weighted discriminators ride in an integer header field; require the
    // configured weights to be integral so encoding is exact.
    for (EdgeId e = 0; e < g.edge_count(); ++e) {
      const Weight w = g.edge_weight(e);
      if (w != std::floor(w)) {
        throw std::invalid_argument(
            "RoutingDb: weighted discriminators require integer link weights");
      }
    }
  }
}

std::uint32_t RoutingDb::discriminator(NodeId at, NodeId dest) const {
  if (!reachable(at, dest)) {
    throw std::logic_error("RoutingDb::discriminator: destination unreachable");
  }
  if (kind_ == DiscriminatorKind::kHops) return hops(at, dest);
  return static_cast<std::uint32_t>(std::llround(cost(at, dest)));
}

std::uint32_t RoutingDb::max_discriminator() const {
  std::uint32_t best = 0;
  for (NodeId dest = 0; dest < graph_->node_count(); ++dest) {
    for (NodeId at = 0; at < graph_->node_count(); ++at) {
      if (reachable(at, dest)) {
        best = std::max(best, discriminator(at, dest));
      }
    }
  }
  return best;
}

std::size_t RoutingDb::memory_bytes_per_router() const noexcept {
  // Per destination: next-hop interface id (4 B) + discriminator column (4 B).
  return graph_->node_count() * (sizeof(DartId) + sizeof(std::uint32_t));
}

}  // namespace pr::route
