#include "route/routing_db.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace pr::route {

namespace {
template <typename T>
[[nodiscard]] std::size_t cap_bytes(const std::vector<T>& v) noexcept {
  return v.capacity() * sizeof(T);
}
}  // namespace

RoutingDb::RoutingDb(const Graph& g, const graph::EdgeSet* excluded,
                     DiscriminatorKind kind)
    : graph_(&g), kind_(kind), node_count_(g.node_count()) {
  if (kind_ == DiscriminatorKind::kWeightedCost) {
    // Weighted discriminators ride in an integer header field; require the
    // configured weights to be integral so encoding is exact.
    for (EdgeId e = 0; e < g.edge_count(); ++e) {
      const Weight w = g.edge_weight(e);
      if (w != std::floor(w)) {
        throw std::invalid_argument(
            "RoutingDb: weighted discriminators require integer link weights");
      }
    }
  }
  next_dart_.resize(node_count_ * node_count_);
  dist_.resize(node_count_ * node_count_);
  hops_.resize(node_count_ * node_count_);
  graph::SpfWorkspace workspace;
  for (NodeId dest = 0; dest < node_count_; ++dest) {
    // The SPF core writes each tree straight into the contiguous columns --
    // no per-destination ShortestPathTree allocations.
    const std::size_t base = static_cast<std::size_t>(dest) * node_count_;
    workspace.full_build(g, dest, excluded, dist_.data() + base,
                         hops_.data() + base, next_dart_.data() + base);
  }

  // One flat whole-table pass (no per-pair reachability re-check, no
  // allocation); the per-column breakdown that keeps this maintainable
  // across rebuilds is materialised lazily with the rest of the
  // incremental state.
  max_discriminator_ = 0;
  for (NodeId dest = 0; dest < node_count_; ++dest) {
    max_discriminator_ = std::max(max_discriminator_, column_max_discriminator(dest));
  }

  baseline_excluded_ = excluded != nullptr && !excluded->empty();
  graph_structure_id_ = g.structure_id();
}

void RoutingDb::ensure_incremental_state() {
  if (incremental_ready_) return;
  // Deferred to the first rebuild(): never-rebuilt dbs (a suite's pristine
  // tables, per-scenario throwaways) skip the 2x column snapshot and the
  // index pass entirely.  rebuild() is the only table mutator and dirty
  // columns are tracked from here on, so the columns are still pristine when
  // this snapshot is taken.
  pristine_next_dart_ = next_dart_;
  pristine_dist_ = dist_;
  pristine_hops_ = hops_;
  col_max_disc_.resize(node_count_);
  pristine_col_argmax_.resize(node_count_);
  for (NodeId dest = 0; dest < node_count_; ++dest) {
    // Track the argmax row alongside the max: a rebuild only rescans a column
    // when that one row was orphaned (every other row either keeps its
    // pristine discriminator or is in the orphan list the repair hands back).
    const std::size_t base = static_cast<std::size_t>(dest) * node_count_;
    std::uint32_t best = 0;
    NodeId best_at = dest;  // the dest row is always reachable with disc 0
    for (NodeId at = 0; at < node_count_; ++at) {
      if (dist_[base + at] == graph::kUnreachable) continue;
      const std::uint32_t d = disc_at(base + at);
      if (d > best) {
        best = d;
        best_at = at;
      }
    }
    col_max_disc_[dest] = best;
    pristine_col_argmax_[dest] = best_at;
  }
  pristine_col_max_disc_ = col_max_disc_;
  build_edge_dest_index();
  build_children_index();
  dest_flag_.assign(node_count_, 0);
  incremental_ready_ = true;
}

void RoutingDb::prepare_incremental() {
  if (baseline_excluded_) {
    throw std::logic_error(
        "RoutingDb::prepare_incremental: only supported on a db built without "
        "a baseline exclusion set");
  }
  ensure_incremental_state();
}

void RoutingDb::build_edge_dest_index() {
  const std::size_t edges = graph_->edge_count();
  edge_dest_offsets_.assign(edges + 1, 0);
  // A tree uses each edge at most once (two nodes pointing over the same edge
  // would form a 2-cycle), so the payload needs no dedup: count, prefix-sum,
  // fill.
  for (const DartId d : pristine_next_dart_) {
    if (d != graph::kInvalidDart) ++edge_dest_offsets_[graph::dart_edge(d) + 1];
  }
  for (std::size_t e = 0; e < edges; ++e) {
    edge_dest_offsets_[e + 1] += edge_dest_offsets_[e];
  }
  edge_dest_ids_.resize(edge_dest_offsets_[edges]);
  std::vector<std::uint32_t> cursor(edge_dest_offsets_.begin(),
                                    edge_dest_offsets_.end() - 1);
  for (NodeId dest = 0; dest < node_count_; ++dest) {
    const std::size_t base = static_cast<std::size_t>(dest) * node_count_;
    for (NodeId at = 0; at < node_count_; ++at) {
      const DartId d = pristine_next_dart_[base + at];
      if (d != graph::kInvalidDart) {
        edge_dest_ids_[cursor[graph::dart_edge(d)]++] = dest;
      }
    }
  }
}

void RoutingDb::build_children_index() {
  const std::size_t n = node_count_;
  child_offsets_.assign(n * (n + 1), 0);
  child_ids_.resize(edge_dest_ids_.size());  // one entry per tree edge, too
  std::vector<std::uint32_t> cursor(n);
  std::uint32_t running = 0;
  for (NodeId dest = 0; dest < n; ++dest) {
    const std::size_t base = dest * n;
    std::uint32_t* off = child_offsets_.data() + dest * (n + 1);
    // Count each node's children (child v's parent is the head of its next
    // dart), then prefix into absolute offsets continuing from the previous
    // destination's slice.
    for (NodeId v = 0; v < n; ++v) {
      const DartId d = pristine_next_dart_[base + v];
      if (d != graph::kInvalidDart) ++off[graph_->dart_head(d) + 1];
    }
    off[0] = running;
    for (std::size_t i = 1; i <= n; ++i) off[i] += off[i - 1];
    running = off[n];
    std::copy_n(off, n, cursor.data());
    for (NodeId v = 0; v < n; ++v) {
      const DartId d = pristine_next_dart_[base + v];
      if (d != graph::kInvalidDart) child_ids_[cursor[graph_->dart_head(d)]++] = v;
    }
  }
}

void RoutingDb::restore_dirty_columns() {
  // The batched drive records exactly which rows each repair changed, so
  // undoing the previous scenario replays those rows instead of memcpying
  // whole O(n) columns -- the second half of making a sweep step cost
  // O(damage).  The legacy drive leaves no row records (changed_offsets_
  // empty), falling back to dense column restores.
  const bool sparse = changed_offsets_.size() == dirty_dests_.size() + 1;
  for (std::size_t c = 0; c < dirty_dests_.size(); ++c) {
    const NodeId dest = dirty_dests_[c];
    const std::size_t base = static_cast<std::size_t>(dest) * node_count_;
    if (sparse) {
      for (std::size_t i = changed_offsets_[c]; i < changed_offsets_[c + 1]; ++i) {
        const std::size_t flat = base + changed_nodes_[i];
        next_dart_[flat] = pristine_next_dart_[flat];
        dist_[flat] = pristine_dist_[flat];
        hops_[flat] = pristine_hops_[flat];
      }
    } else {
      std::copy_n(pristine_next_dart_.data() + base, node_count_,
                  next_dart_.data() + base);
      std::copy_n(pristine_dist_.data() + base, node_count_, dist_.data() + base);
      std::copy_n(pristine_hops_.data() + base, node_count_, hops_.data() + base);
    }
    col_max_disc_[dest] = pristine_col_max_disc_[dest];
  }
  dirty_dests_.clear();
  changed_offsets_.clear();
  changed_nodes_.clear();
}

void RoutingDb::rebuild(const graph::EdgeSet& excluded,
                        graph::SpfWorkspace& workspace, RepairDrive drive) {
  if (baseline_excluded_) {
    throw std::logic_error(
        "RoutingDb::rebuild: only supported on a db built without a baseline "
        "exclusion set");
  }
  if (graph_->structure_id() != graph_structure_id_) {
    // Repair mixes the pristine snapshot with the live graph; a mutation in
    // between would silently corrupt the tables, so fail loudly instead.
    throw std::logic_error(
        "RoutingDb::rebuild: graph was mutated since this db was built");
  }
  ensure_incremental_state();

  // Destinations whose pristine tree uses a failed edge -- everything else is
  // provably identical to a from-scratch build and is skipped.
  affected_dests_.clear();
  for (const EdgeId e : excluded.elements()) {
    if (e >= graph_->edge_count()) continue;  // unknown edge id
    for (std::uint32_t i = edge_dest_offsets_[e]; i < edge_dest_offsets_[e + 1];
         ++i) {
      const NodeId dest = edge_dest_ids_[i];
      if (dest_flag_[dest] == 0) {
        dest_flag_[dest] = 1;
        affected_dests_.push_back(dest);
      }
    }
  }

  // Restore every row a previous rebuild modified; repair then starts from
  // the pristine tree state it requires.
  restore_dirty_columns();

  if (drive == RepairDrive::kPerDestination) {
    for (const NodeId dest : affected_dests_) {
      dest_flag_[dest] = 0;  // reset the scratch marks for the next rebuild
      const std::size_t base = static_cast<std::size_t>(dest) * node_count_;
      workspace.repair(*graph_, dest, excluded, dist_.data() + base,
                       hops_.data() + base, next_dart_.data() + base);
      col_max_disc_[dest] = column_max_discriminator(dest);
      dirty_dests_.push_back(dest);
    }
  } else {
    changed_offsets_.push_back(0);
    for (const NodeId dest : affected_dests_) {
      dest_flag_[dest] = 0;
      const std::size_t base = static_cast<std::size_t>(dest) * node_count_;
      const std::span<const NodeId> orphans = workspace.repair_tree(
          *graph_, excluded, dist_.data() + base, hops_.data() + base,
          next_dart_.data() + base, children_view(dest));
      if (orphans.empty()) continue;  // defensive: tree untouched, stay clean
      // The orphan list is exactly the set of rows that may now differ from
      // pristine: record it for the next restore, and fold the regrown rows
      // into the column maximum.  Non-orphan rows keep their pristine
      // discriminators, so unless the pristine argmax row itself was orphaned
      // the new maximum is max(pristine max, regrown rows' max) -- no column
      // scan.  (A regrown row CAN shrink its discriminator -- a costlier
      // surviving path may have fewer hops -- which is why the orphaned-
      // argmax case rescans instead of assuming monotonicity.)
      const NodeId argmax = pristine_col_argmax_[dest];
      bool argmax_orphaned = false;
      std::uint32_t orphan_max = 0;
      for (const NodeId v : orphans) {
        changed_nodes_.push_back(v);
        argmax_orphaned = argmax_orphaned || v == argmax;
        const std::size_t flat = base + v;
        if (dist_[flat] != graph::kUnreachable) {
          orphan_max = std::max(orphan_max, disc_at(flat));
        }
      }
      changed_offsets_.push_back(changed_nodes_.size());
      col_max_disc_[dest] =
          argmax_orphaned
              ? column_max_discriminator(dest)
              : std::max(pristine_col_max_disc_[dest], orphan_max);
      dirty_dests_.push_back(dest);
    }
  }

  max_discriminator_ = col_max_disc_.empty()
                           ? 0
                           : *std::max_element(col_max_disc_.begin(),
                                               col_max_disc_.end());
}

std::uint32_t RoutingDb::discriminator(NodeId at, NodeId dest) const {
  if (!reachable(at, dest)) {
    throw std::logic_error("RoutingDb::discriminator: destination unreachable");
  }
  if (kind_ == DiscriminatorKind::kHops) return hops(at, dest);
  return static_cast<std::uint32_t>(std::llround(cost(at, dest)));
}

std::uint32_t RoutingDb::disc_at(std::size_t flat) const noexcept {
  return kind_ == DiscriminatorKind::kHops
             ? hops_[flat]
             : static_cast<std::uint32_t>(std::llround(dist_[flat]));
}

std::uint32_t RoutingDb::column_max_discriminator(NodeId dest) const noexcept {
  const std::size_t base = static_cast<std::size_t>(dest) * node_count_;
  std::uint32_t best = 0;
  if (kind_ == DiscriminatorKind::kHops) {
    for (std::size_t i = base; i < base + node_count_; ++i) {
      if (dist_[i] != graph::kUnreachable) best = std::max(best, hops_[i]);
    }
  } else {
    for (std::size_t i = base; i < base + node_count_; ++i) {
      if (dist_[i] != graph::kUnreachable) {
        best = std::max(best, static_cast<std::uint32_t>(std::llround(dist_[i])));
      }
    }
  }
  return best;
}

std::size_t RoutingDb::memory_bytes_per_router() const noexcept {
  // Per destination: next-hop interface id (4 B) + discriminator column (4 B).
  return graph_->node_count() * (sizeof(DartId) + sizeof(std::uint32_t));
}

std::size_t RoutingDb::bytes() const noexcept {
  return sizeof(*this) + cap_bytes(next_dart_) + cap_bytes(dist_) +
         cap_bytes(hops_) + cap_bytes(col_max_disc_) +
         cap_bytes(pristine_next_dart_) + cap_bytes(pristine_dist_) +
         cap_bytes(pristine_hops_) + cap_bytes(pristine_col_max_disc_) +
         cap_bytes(pristine_col_argmax_) + cap_bytes(edge_dest_offsets_) +
         cap_bytes(edge_dest_ids_) + cap_bytes(child_offsets_) +
         cap_bytes(child_ids_) + cap_bytes(dirty_dests_) +
         cap_bytes(dest_flag_) + cap_bytes(affected_dests_) +
         cap_bytes(changed_offsets_) + cap_bytes(changed_nodes_);
}

}  // namespace pr::route
