// Loop-Free Alternates (RFC 5286), the paper's reference [2] and the most
// widely deployed IPFRR mechanism.  Included as an extra baseline for the
// coverage ablation (A2): LFA protects only those (router, destination)
// pairs that happen to have a loop-free neighbour, so its repair coverage is
// strictly partial -- exactly the gap PR closes.
//
// A neighbour n of router v is a loop-free alternate for destination t iff
//     dist(n, t) < dist(n, v) + dist(v, t)
// (the link-protection inequality: n's shortest path to t cannot return
// through v, hence cannot use the failed link v->next).  The stronger
// node-protecting variant additionally requires
//     dist(n, t) < dist(n, p) + dist(p, t)
// where p is the primary next hop, so the alternate also avoids p itself --
// fewer alternates, but they survive router (not just link) outages.
#pragma once

#include <vector>

#include "net/forwarding.hpp"
#include "route/routing_db.hpp"

namespace pr::route {

enum class LfaKind : std::uint8_t {
  kLinkProtecting,  ///< RFC 5286 basic inequality
  kNodeProtecting,  ///< + avoids the primary next-hop router
};

class LfaRouting final : public net::ForwardingProtocol {
 public:
  /// Precomputes primary next hops and the best (lowest alternate-path cost)
  /// loop-free alternate per (router, destination).  `routes` must outlive
  /// the protocol; the alternates reflect whatever scenario its tables hold
  /// at this moment (historically always pristine -- per-scenario alternate
  /// sets now come from resync() via ScenarioRoutingCache::lfa()).
  explicit LfaRouting(const RoutingDb& routes,
                      LfaKind kind = LfaKind::kLinkProtecting);

  /// Incrementally re-derives the alternates after the underlying tables were
  /// rebuilt to a new failure scenario, with results bit-identical to
  /// constructing a fresh LfaRouting over the rebuilt db.  Pair (v, t) reads
  /// only table columns t, v and -- node-protecting -- the primary next hop's
  /// column, so the only pairs recomputed are those touching a column that is
  /// dirty now or was dirty at the previous sync; everything else provably
  /// kept its value.  Cost: one O(n^2) flag scan plus the touched pairs'
  /// neighbour loops, instead of every pair's.
  void resync();

  /// Instrumentation: resync() invocations and pairs recomputed by them.
  [[nodiscard]] std::uint64_t resyncs() const noexcept { return resyncs_; }
  [[nodiscard]] std::uint64_t pairs_recomputed() const noexcept {
    return pairs_recomputed_;
  }

  [[nodiscard]] net::ForwardingDecision forward(const net::Network& net, NodeId at,
                                                DartId arrived_over,
                                                net::Packet& packet) override;

  [[nodiscard]] std::string_view name() const noexcept override {
    return kind_ == LfaKind::kLinkProtecting ? "lfa" : "lfa-node-protecting";
  }

  [[nodiscard]] LfaKind kind() const noexcept { return kind_; }

  /// Fraction of (router, destination) pairs with at least one loop-free
  /// alternate -- RFC 5286's classic coverage metric.
  [[nodiscard]] double alternate_coverage() const;

  /// The precomputed alternate for a pair (kInvalidDart when none exists).
  [[nodiscard]] DartId alternate(NodeId at, NodeId dest) const {
    return alternate_[index(at, dest)];
  }

 private:
  [[nodiscard]] std::size_t index(NodeId at, NodeId dest) const {
    return static_cast<std::size_t>(at) * routes_->graph().node_count() + dest;
  }

  /// The best alternate for one pair under the tables' CURRENT state
  /// (kInvalidDart when none / self / unreachable).
  [[nodiscard]] DartId compute_pair(const Graph& g, NodeId v, NodeId dest) const;

  const RoutingDb* routes_;
  LfaKind kind_;
  std::vector<DartId> alternate_;

  /// The dirty-destination set the alternates were last derived against
  /// (resync unions it with the tables' current one to find stale pairs).
  std::vector<NodeId> synced_dirty_;
  std::vector<std::uint8_t> col_flag_;  ///< resync scratch, node-indexed
  std::uint64_t resyncs_ = 0;
  std::uint64_t pairs_recomputed_ = 0;
};

}  // namespace pr::route
