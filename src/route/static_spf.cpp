#include "route/static_spf.hpp"

namespace pr::route {

net::ForwardingDecision StaticSpf::forward(const net::Network& net, NodeId at,
                                           DartId /*arrived_over*/,
                                           net::Packet& packet) {
  if (at == packet.destination) return net::ForwardingDecision::deliver();
  const DartId out = routes_->next_dart(at, packet.destination);
  if (out == graph::kInvalidDart) {
    return net::ForwardingDecision::drop(net::DropReason::kNoRoute);
  }
  if (!net.dart_usable(out)) {
    return net::ForwardingDecision::drop(net::DropReason::kNoRoute);
  }
  return net::ForwardingDecision::forward(out);
}

}  // namespace pr::route
