#include "route/fcp.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/telemetry.hpp"

namespace pr::route {

FcpRouting::FcpRouting(const Graph& g, std::size_t cache_capacity)
    : graph_(&g), capacity_(cache_capacity), excluded_(g.edge_count()) {
  if (capacity_ == 0) {
    throw std::invalid_argument("FcpRouting: cache capacity must be >= 1");
  }
}

const FcpRouting::Entry& FcpRouting::entry_for(const std::vector<EdgeId>& failures,
                                               NodeId dest) {
  CacheKey key{failures, dest};
  if (const auto it = entries_.find(key); it != entries_.end()) {
    // Promote to most-recently-used; the node itself (and the reference we
    // return) does not move.
    lru_.splice(lru_.begin(), lru_, it->second);
    obs::count(obs::Counter::kFcpMemoHits);
    return *it->second;
  }

  if (entries_.size() == capacity_) {
    // Coldest entry out, its node and column storage recycled in place for
    // the new fill -- a warm cache at capacity allocates nothing here beyond
    // the map key.
    entries_.erase(lru_.back().key);
    lru_.splice(lru_.begin(), lru_, std::prev(lru_.end()));
    ++evictions_;
    obs::count(obs::Counter::kFcpMemoEvictions);
  } else {
    lru_.emplace_front();
  }
  Entry& entry = lru_.front();
  entry.key = key;
  const std::size_t n = graph_->node_count();
  entry.dist.resize(n);
  entry.hops.resize(n);
  entry.next_dart.resize(n);

  excluded_.clear();
  for (EdgeId e : failures) excluded_.insert(e);
  ++spf_computations_;
  obs::count(obs::Counter::kFcpMemoFills);
  workspace_.full_build(*graph_, dest, &excluded_, entry.dist.data(),
                        entry.hops.data(), entry.next_dart.data());
  entries_.emplace(std::move(key), lru_.begin());
  return entry;
}

net::ForwardingDecision FcpRouting::forward(const net::Network& net, NodeId at,
                                            DartId /*arrived_over*/,
                                            net::Packet& packet) {
  if (at == packet.destination) return net::ForwardingDecision::deliver();

  // Learn, recompute and retry until a usable next hop emerges or the
  // destination is unreachable given everything this packet knows.
  while (true) {
    const auto& entry = entry_for(packet.fcp_failures, packet.destination);
    if (!entry.reachable(at)) {
      return net::ForwardingDecision::drop(net::DropReason::kNoRoute);
    }
    const DartId out = entry.next_dart[at];
    if (net.dart_usable(out)) return net::ForwardingDecision::forward(out);

    // Adjacent failure discovered: record it (sorted-unique) and recompute.
    const EdgeId failed = graph::dart_edge(out);
    const auto pos =
        std::lower_bound(packet.fcp_failures.begin(), packet.fcp_failures.end(), failed);
    if (pos != packet.fcp_failures.end() && *pos == failed) {
      // Already known yet still chosen: would be a routing contradiction.
      return net::ForwardingDecision::drop(net::DropReason::kNoRoute);
    }
    packet.fcp_failures.insert(pos, failed);
  }
}

}  // namespace pr::route
