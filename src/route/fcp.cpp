#include "route/fcp.hpp"

#include <algorithm>
#include <stdexcept>

namespace pr::route {

FcpRouting::FcpRouting(const Graph& g, std::size_t cache_capacity)
    : graph_(&g), capacity_(cache_capacity) {
  if (capacity_ == 0) {
    throw std::invalid_argument("FcpRouting: cache capacity must be >= 1");
  }
}

const graph::ShortestPathTree& FcpRouting::tree_for(const std::vector<EdgeId>& failures,
                                                    NodeId dest) {
  CacheKey key{failures, dest};
  if (const auto it = entries_.find(key); it != entries_.end()) {
    // Promote to most-recently-used; the node itself (and the reference we
    // return) does not move.
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->tree;
  }

  graph::EdgeSet excluded(graph_->edge_count());
  for (EdgeId e : failures) excluded.insert(e);
  ++spf_computations_;
  lru_.push_front(Entry{key, graph::shortest_paths_to(*graph_, dest, &excluded)});
  entries_.emplace(std::move(key), lru_.begin());

  if (entries_.size() > capacity_) {
    // Coldest entry out; never the one just inserted (capacity >= 1).
    entries_.erase(lru_.back().key);
    lru_.pop_back();
    ++evictions_;
  }
  return lru_.front().tree;
}

net::ForwardingDecision FcpRouting::forward(const net::Network& net, NodeId at,
                                            DartId /*arrived_over*/,
                                            net::Packet& packet) {
  if (at == packet.destination) return net::ForwardingDecision::deliver();

  // Learn, recompute and retry until a usable next hop emerges or the
  // destination is unreachable given everything this packet knows.
  while (true) {
    const auto& tree = tree_for(packet.fcp_failures, packet.destination);
    if (!tree.reachable(at)) {
      return net::ForwardingDecision::drop(net::DropReason::kNoRoute);
    }
    const DartId out = tree.next_dart[at];
    if (net.dart_usable(out)) return net::ForwardingDecision::forward(out);

    // Adjacent failure discovered: record it (sorted-unique) and recompute.
    const EdgeId failed = graph::dart_edge(out);
    const auto pos =
        std::lower_bound(packet.fcp_failures.begin(), packet.fcp_failures.end(), failed);
    if (pos != packet.fcp_failures.end() && *pos == failed) {
      // Already known yet still chosen: would be a routing contradiction.
      return net::ForwardingDecision::drop(net::DropReason::kNoRoute);
    }
    packet.fcp_failures.insert(pos, failed);
  }
}

}  // namespace pr::route
