#include "route/fcp.hpp"

#include <algorithm>

namespace pr::route {

const graph::ShortestPathTree& FcpRouting::tree_for(const std::vector<EdgeId>& failures,
                                                    NodeId dest) {
  CacheKey key{failures, dest};
  const auto it = cache_.find(key);
  if (it != cache_.end()) return it->second;

  graph::EdgeSet excluded(graph_->edge_count());
  for (EdgeId e : failures) excluded.insert(e);
  ++spf_computations_;
  auto [inserted, ok] =
      cache_.emplace(std::move(key), graph::shortest_paths_to(*graph_, dest, &excluded));
  return inserted->second;
}

net::ForwardingDecision FcpRouting::forward(const net::Network& net, NodeId at,
                                            DartId /*arrived_over*/,
                                            net::Packet& packet) {
  if (at == packet.destination) return net::ForwardingDecision::deliver();

  // Learn, recompute and retry until a usable next hop emerges or the
  // destination is unreachable given everything this packet knows.
  while (true) {
    const auto& tree = tree_for(packet.fcp_failures, packet.destination);
    if (!tree.reachable(at)) {
      return net::ForwardingDecision::drop(net::DropReason::kNoRoute);
    }
    const DartId out = tree.next_dart[at];
    if (net.dart_usable(out)) return net::ForwardingDecision::forward(out);

    // Adjacent failure discovered: record it (sorted-unique) and recompute.
    const EdgeId failed = graph::dart_edge(out);
    const auto pos =
        std::lower_bound(packet.fcp_failures.begin(), packet.fcp_failures.end(), failed);
    if (pos != packet.fcp_failures.end() && *pos == failed) {
      // Already known yet still chosen: would be a routing contradiction.
      return net::ForwardingDecision::drop(net::DropReason::kNoRoute);
    }
    packet.fcp_failures.insert(pos, failed);
  }
}

}  // namespace pr::route
