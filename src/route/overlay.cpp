#include "route/overlay.hpp"

namespace pr::route {

void RouterTableOverlay::reset(std::size_t dest_count) {
  if (slot_of_.size() != dest_count) {
    slot_of_.assign(dest_count, kNoSlot);
  } else {
    for (const NodeId dest : dests_) slot_of_[dest] = kNoSlot;
  }
  dests_.clear();
  next_.clear();
}

void RouterTableOverlay::assign_row(const RoutingDb& db, NodeId router) {
  for (const NodeId dest : dests_) slot_of_[dest] = kNoSlot;
  dests_.clear();
  next_.clear();
  for (const NodeId dest : db.dirty_destinations()) {
    const DartId now = db.next_dart(router, dest);
    if (now == db.pristine_next_dart(router, dest)) continue;
    slot_of_[dest] = static_cast<std::uint32_t>(dests_.size());
    dests_.push_back(dest);
    next_.push_back(now);
  }
}

}  // namespace pr::route
