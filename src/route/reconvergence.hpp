// The "Re-convergence" baseline of the paper's Figure 2.
//
// After a routing protocol reconverges, packets follow the true shortest
// paths of the surviving topology -- the optimal repair any scheme could
// achieve, bought at the cost of the convergence outage.  Two forms:
//
//  * ReconvergedRouting: the steady state after convergence, used for the
//    stretch comparison (its stretch CCDF lower-bounds FCP and PR).
//  * TimedReconvergence: pre-convergence packets behave like StaticSpf
//    (dropped at the failure); once `complete_convergence()` is called (the
//    bench schedules it at detection + convergence delay), forwarding flips
//    to the reconverged tables.  Used by the loss experiment E11.
#pragma once

#include <memory>

#include "net/forwarding.hpp"
#include "route/routing_db.hpp"

namespace pr::route {

class ScenarioRoutingCache;

class ReconvergedRouting final : public net::ForwardingProtocol {
 public:
  /// Computes post-convergence tables for the failure set currently installed
  /// in `net`.  The network's failure set must not change afterwards (build a
  /// new instance per scenario).
  explicit ReconvergedRouting(const net::Network& net,
                              DiscriminatorKind kind = DiscriminatorKind::kHops);

  /// Borrows `shared` as the post-convergence tables instead of computing
  /// them -- the sweep drivers pass delta-repaired tables from a per-worker
  /// ScenarioRoutingCache here.  `shared` must reflect the network's current
  /// failure set and outlive this instance.
  ReconvergedRouting(const net::Network& net, const RoutingDb& shared);

  [[nodiscard]] net::ForwardingDecision forward(const net::Network& net, NodeId at,
                                                DartId arrived_over,
                                                net::Packet& packet) override;

  [[nodiscard]] std::string_view name() const noexcept override {
    return "reconvergence";
  }

  [[nodiscard]] const RoutingDb& tables() const noexcept { return *routes_; }

 private:
  std::unique_ptr<RoutingDb> owned_;  ///< null when borrowing shared tables
  const RoutingDb* routes_;
};

class TimedReconvergence final : public net::ForwardingProtocol {
 public:
  /// `before` are the pristine tables; reconverged tables are computed from
  /// the network's failure set when convergence completes.  When `cache` is
  /// given, the reconverged tables are borrowed from it (delta-repaired)
  /// instead of built from scratch; the cache must outlive this instance and
  /// must not serve a different failure set while this one is forwarding.
  TimedReconvergence(const net::Network& net, const RoutingDb& before,
                     ScenarioRoutingCache* cache = nullptr);

  /// Switches every router to the reconverged tables (the bench schedules
  /// this at failure time + detection + SPF computation + FIB update).
  void complete_convergence();

  [[nodiscard]] bool converged() const noexcept { return after_ != nullptr; }

  [[nodiscard]] net::ForwardingDecision forward(const net::Network& net, NodeId at,
                                                DartId arrived_over,
                                                net::Packet& packet) override;

  [[nodiscard]] std::string_view name() const noexcept override {
    return "timed-reconvergence";
  }

 private:
  const net::Network* net_;
  const RoutingDb* before_;
  ScenarioRoutingCache* cache_;
  std::unique_ptr<RoutingDb> owned_after_;  ///< null when borrowing from cache
  const RoutingDb* after_ = nullptr;
};

}  // namespace pr::route
