// The "Re-convergence" baseline of the paper's Figure 2.
//
// After a routing protocol reconverges, packets follow the true shortest
// paths of the surviving topology -- the optimal repair any scheme could
// achieve, bought at the cost of the convergence outage.  Two forms:
//
//  * ReconvergedRouting: the steady state after convergence, used for the
//    stretch comparison (its stretch CCDF lower-bounds FCP and PR).
//  * TimedReconvergence: pre-convergence packets behave like StaticSpf
//    (dropped at the failure); once `complete_convergence()` is called (the
//    bench schedules it at detection + convergence delay), forwarding flips
//    to the reconverged tables.  Used by the loss experiment E11.
#pragma once

#include <memory>

#include "net/forwarding.hpp"
#include "route/routing_db.hpp"

namespace pr::route {

class ReconvergedRouting final : public net::ForwardingProtocol {
 public:
  /// Computes post-convergence tables for the failure set currently installed
  /// in `net`.  The network's failure set must not change afterwards (build a
  /// new instance per scenario).
  explicit ReconvergedRouting(const net::Network& net);

  [[nodiscard]] net::ForwardingDecision forward(const net::Network& net, NodeId at,
                                                DartId arrived_over,
                                                net::Packet& packet) override;

  [[nodiscard]] std::string_view name() const noexcept override {
    return "reconvergence";
  }

  [[nodiscard]] const RoutingDb& tables() const noexcept { return routes_; }

 private:
  RoutingDb routes_;
};

class TimedReconvergence final : public net::ForwardingProtocol {
 public:
  /// `before` are the pristine tables; reconverged tables are computed from
  /// the network's failure set when convergence completes.
  TimedReconvergence(const net::Network& net, const RoutingDb& before);

  /// Switches every router to the reconverged tables (the bench schedules
  /// this at failure time + detection + SPF computation + FIB update).
  void complete_convergence();

  [[nodiscard]] bool converged() const noexcept { return after_ != nullptr; }

  [[nodiscard]] net::ForwardingDecision forward(const net::Network& net, NodeId at,
                                                DartId arrived_over,
                                                net::Packet& packet) override;

  [[nodiscard]] std::string_view name() const noexcept override {
    return "timed-reconvergence";
  }

 private:
  const net::Network* net_;
  const RoutingDb* before_;
  std::unique_ptr<RoutingDb> after_;
};

}  // namespace pr::route
