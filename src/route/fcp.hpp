// Failure-Carrying Packets (Lakshminarayanan et al., SIGCOMM 2007) -- the
// paper's principal multi-failure-capable comparison point.
//
// Each packet carries the list of failed links it has learned about.  A
// router forwards along the shortest path in the topology minus that list;
// when the chosen link turns out to be down, the router appends it to the
// packet and recomputes.  Delivery is guaranteed whenever the destination
// stays connected, at the price of (a) per-packet header space proportional
// to the number of carried failures and (b) an SPF computation at every
// router that sees a new failure list.  This implementation memoises SPF
// results per (failure list, destination), which mirrors the paper's remark
// that FCP routers can cache per-flow routing state.
#pragma once

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "graph/dijkstra.hpp"
#include "net/forwarding.hpp"
#include "route/routing_db.hpp"

namespace pr::route {

class FcpRouting final : public net::ForwardingProtocol {
 public:
  /// `g` must outlive the protocol.
  explicit FcpRouting(const Graph& g) : graph_(&g) {}

  [[nodiscard]] net::ForwardingDecision forward(const net::Network& net, NodeId at,
                                                DartId arrived_over,
                                                net::Packet& packet) override;

  [[nodiscard]] std::string_view name() const noexcept override { return "fcp"; }

  /// Number of distinct (failure list, destination) SPF computations so far:
  /// the on-demand computation cost the paper contrasts with PR's zero.
  [[nodiscard]] std::size_t spf_computations() const noexcept {
    return spf_computations_;
  }

  /// Memoised entries currently cached (per-flow state analogue).
  [[nodiscard]] std::size_t cached_tables() const noexcept { return cache_.size(); }

 private:
  using CacheKey = std::pair<std::vector<EdgeId>, NodeId>;

  const graph::ShortestPathTree& tree_for(const std::vector<EdgeId>& failures,
                                          NodeId dest);

  const Graph* graph_;
  std::map<CacheKey, graph::ShortestPathTree> cache_;
  std::size_t spf_computations_ = 0;
};

}  // namespace pr::route
