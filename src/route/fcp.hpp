// Failure-Carrying Packets (Lakshminarayanan et al., SIGCOMM 2007) -- the
// paper's principal multi-failure-capable comparison point.
//
// Each packet carries the list of failed links it has learned about.  A
// router forwards along the shortest path in the topology minus that list;
// when the chosen link turns out to be down, the router appends it to the
// packet and recomputes.  Delivery is guaranteed whenever the destination
// stays connected, at the price of (a) per-packet header space proportional
// to the number of carried failures and (b) an SPF computation at every
// router that sees a new failure list.  This implementation memoises SPF
// results per (failure list, destination), which mirrors the paper's remark
// that FCP routers can cache per-flow routing state -- and, like a real
// router's finite FIB memory, bounds the memo with an LRU: the default
// capacity is far above what any bundled sweep touches (so small sweeps
// behave exactly as an unbounded cache), while adversarial multi-failure
// storms evict coldest-first instead of growing without limit.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <utility>
#include <vector>

#include "graph/dijkstra.hpp"
#include "net/forwarding.hpp"
#include "route/routing_db.hpp"

namespace pr::route {

/// Default LRU capacity of the memoised-tree cache: generously above the
/// distinct (failure list, destination) count of every bundled sweep, so the
/// bound only bites on workloads that would otherwise grow without limit.
inline constexpr std::size_t kDefaultFcpCacheCapacity = 4096;

class FcpRouting final : public net::ForwardingProtocol {
 public:
  /// `g` must outlive the protocol.  `cache_capacity` bounds the memoised
  /// (failure list, destination) trees; must be >= 1 (throws
  /// std::invalid_argument otherwise).
  explicit FcpRouting(const Graph& g,
                      std::size_t cache_capacity = kDefaultFcpCacheCapacity);

  [[nodiscard]] net::ForwardingDecision forward(const net::Network& net, NodeId at,
                                                DartId arrived_over,
                                                net::Packet& packet) override;

  [[nodiscard]] std::string_view name() const noexcept override { return "fcp"; }

  /// Number of distinct (failure list, destination) SPF computations so far:
  /// the on-demand computation cost the paper contrasts with PR's zero.
  /// Recomputations forced by eviction count again.
  [[nodiscard]] std::size_t spf_computations() const noexcept {
    return spf_computations_;
  }

  /// Memoised entries currently cached (per-flow state analogue).
  [[nodiscard]] std::size_t cached_tables() const noexcept { return entries_.size(); }

  /// The fixed LRU bound.
  [[nodiscard]] std::size_t cache_capacity() const noexcept { return capacity_; }

  /// Entries discarded to enforce the bound (0 on every bundled sweep at the
  /// default capacity).
  [[nodiscard]] std::size_t evictions() const noexcept { return evictions_; }

 private:
  using CacheKey = std::pair<std::vector<EdgeId>, NodeId>;
  struct Entry {
    CacheKey key;
    graph::ShortestPathTree tree;
  };

  /// The memoised tree for (failures, dest), computed on miss and promoted to
  /// most-recently-used on hit.  The reference is stable until this entry is
  /// itself evicted (list nodes do not move), which cannot happen before the
  /// next tree_for call.
  const graph::ShortestPathTree& tree_for(const std::vector<EdgeId>& failures,
                                          NodeId dest);

  const Graph* graph_;
  std::size_t capacity_;
  /// Most-recently-used first; eviction pops the back.
  std::list<Entry> lru_;
  std::map<CacheKey, std::list<Entry>::iterator> entries_;
  std::size_t spf_computations_ = 0;
  std::size_t evictions_ = 0;
};

}  // namespace pr::route
