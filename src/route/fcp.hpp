// Failure-Carrying Packets (Lakshminarayanan et al., SIGCOMM 2007) -- the
// paper's principal multi-failure-capable comparison point.
//
// Each packet carries the list of failed links it has learned about.  A
// router forwards along the shortest path in the topology minus that list;
// when the chosen link turns out to be down, the router appends it to the
// packet and recomputes.  Delivery is guaranteed whenever the destination
// stays connected, at the price of (a) per-packet header space proportional
// to the number of carried failures and (b) an SPF computation at every
// router that sees a new failure list.  This implementation memoises SPF
// results per (failure list, destination), which mirrors the paper's remark
// that FCP routers can cache per-flow routing state -- and, like a real
// router's finite FIB memory, bounds the memo with an LRU: the default
// capacity is far above what any bundled sweep touches (so small sweeps
// behave exactly as an unbounded cache), while adversarial multi-failure
// storms evict coldest-first instead of growing without limit.
//
// Memo entries are stored as flat SpfWorkspace columns (dist / hops /
// next_dart arrays filled in place by the protocol's own workspace), not
// ShortestPathTrees built through the reference shortest_paths_to wrapper:
// a cache fill reuses the per-protocol heap scratch, eviction recycles the
// coldest entry's column storage for the new fill, and the exclusion EdgeSet
// is a reusable member -- so a warm cache at capacity fills entries with no
// allocation beyond the map key.  Results are bit-identical to the wrapper
// (which is itself a thin shim over SpfWorkspace::full_build).
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <utility>
#include <vector>

#include "graph/spf_workspace.hpp"
#include "net/forwarding.hpp"
#include "route/routing_db.hpp"

namespace pr::route {

/// Default LRU capacity of the memoised-tree cache: generously above the
/// distinct (failure list, destination) count of every bundled sweep, so the
/// bound only bites on workloads that would otherwise grow without limit.
inline constexpr std::size_t kDefaultFcpCacheCapacity = 4096;

class FcpRouting final : public net::ForwardingProtocol {
 public:
  /// `g` must outlive the protocol.  `cache_capacity` bounds the memoised
  /// (failure list, destination) trees; must be >= 1 (throws
  /// std::invalid_argument otherwise).
  explicit FcpRouting(const Graph& g,
                      std::size_t cache_capacity = kDefaultFcpCacheCapacity);

  [[nodiscard]] net::ForwardingDecision forward(const net::Network& net, NodeId at,
                                                DartId arrived_over,
                                                net::Packet& packet) override;

  [[nodiscard]] std::string_view name() const noexcept override { return "fcp"; }

  /// Number of distinct (failure list, destination) SPF computations so far:
  /// the on-demand computation cost the paper contrasts with PR's zero.
  /// Recomputations forced by eviction count again.
  [[nodiscard]] std::size_t spf_computations() const noexcept {
    return spf_computations_;
  }

  /// Memoised entries currently cached (per-flow state analogue).
  [[nodiscard]] std::size_t cached_tables() const noexcept { return entries_.size(); }

  /// The fixed LRU bound.
  [[nodiscard]] std::size_t cache_capacity() const noexcept { return capacity_; }

  /// Entries discarded to enforce the bound (0 on every bundled sweep at the
  /// default capacity).
  [[nodiscard]] std::size_t evictions() const noexcept { return evictions_; }

 private:
  using CacheKey = std::pair<std::vector<EdgeId>, NodeId>;
  /// One memoised tree in SpfWorkspace column form.  `reachable(v)` matches
  /// graph::ShortestPathTree::reachable bit for bit.
  struct Entry {
    CacheKey key;
    std::vector<graph::Weight> dist;
    std::vector<std::uint32_t> hops;
    std::vector<DartId> next_dart;

    [[nodiscard]] bool reachable(NodeId v) const noexcept {
      return v < dist.size() && dist[v] < graph::kUnreachable;
    }
  };

  /// The memoised entry for (failures, dest), filled on miss (reusing the
  /// evicted entry's column storage when the cache is at capacity) and
  /// promoted to most-recently-used on hit.  The reference is stable until
  /// this entry is itself recycled (list nodes do not move), which cannot
  /// happen before the next entry_for call.
  const Entry& entry_for(const std::vector<EdgeId>& failures, NodeId dest);

  const Graph* graph_;
  std::size_t capacity_;
  /// Most-recently-used first; eviction recycles the back.
  std::list<Entry> lru_;
  std::map<CacheKey, std::list<Entry>::iterator> entries_;
  /// Per-protocol SPF scratch: every cache fill runs in here instead of
  /// allocating a fresh workspace through the reference wrapper.
  graph::SpfWorkspace workspace_;
  /// Reusable exclusion set for cache fills (sized once per graph).
  graph::EdgeSet excluded_;
  std::size_t spf_computations_ = 0;
  std::size_t evictions_ = 0;
};

}  // namespace pr::route
