// Event-driven link-state IGP convergence (OSPF-flavoured).
//
// The paper's "Re-convergence" baseline is the full routing-protocol machinery:
// failure detection, LSA flooding, throttled SPF recomputation and FIB update,
// during which packets are lost at the failure point and -- because routers
// update at different instants -- transient micro-loops can form.  This module
// models that process per router on the discrete-event simulator:
//
//   t0        link fails
//   +detection     adjacent routers notice and originate LSAs
//   flooding       LSAs propagate hop by hop over live links
//                  (link propagation delay + per-router processing)
//   +spf_delay     each router recomputes its table spf_delay after it first
//                  learns of a change (SPF throttle + FIB update)
//
// Restores are not modelled (the experiments fail links, measure, reset),
// which matches how the paper's loss window is defined.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "graph/spf_workspace.hpp"
#include "net/event_sim.hpp"
#include "net/forwarding.hpp"
#include "route/overlay.hpp"
#include "route/routing_db.hpp"

namespace pr::route {

class LinkStateIgp {
 public:
  struct Timings {
    net::SimTime detection_delay = 50e-3;  ///< carrier loss / BFD interval
    net::SimTime lsa_processing = 1e-3;    ///< per-router LSA handling
    net::SimTime spf_delay = 100e-3;       ///< SPF throttle + FIB update
  };

  /// `sim` and `network` must outlive the IGP.  All routers start with
  /// tables computed on the pristine topology.
  LinkStateIgp(net::Simulator& sim, net::Network& network, Timings timings);
  LinkStateIgp(net::Simulator& sim, net::Network& network);

  LinkStateIgp(const LinkStateIgp&) = delete;
  LinkStateIgp& operator=(const LinkStateIgp&) = delete;
  ~LinkStateIgp();

  /// Tells the IGP that `e` just failed (call right after Network::fail_link;
  /// detection and flooding unfold from sim.now()).
  void on_link_failure(graph::EdgeId e);

  /// The data-plane view: forwards with each router's CURRENT table; packets
  /// meeting a failed link at a stale router are dropped (kPolicy), and
  /// table inconsistencies can micro-loop until the walker TTL fires.
  [[nodiscard]] net::ForwardingProtocol& protocol() noexcept;

  /// True when router `v`'s table reflects every failure injected so far.
  [[nodiscard]] bool converged(graph::NodeId v) const;
  /// True when every router has converged.
  [[nodiscard]] bool fully_converged() const;

  /// Total LSA messages transmitted (the flooding overhead the paper contrasts
  /// with PR's zero signalling).
  [[nodiscard]] std::uint64_t lsa_messages() const noexcept { return lsa_messages_; }
  /// Simulation time of the most recent table update.
  [[nodiscard]] net::SimTime last_table_update() const noexcept {
    return last_update_;
  }
  /// SPF recomputations performed across all routers.
  [[nodiscard]] std::uint64_t spf_runs() const noexcept { return spf_runs_; }

  /// Total allocator footprint of the routing state: the shared db (live
  /// columns + pristine snapshot + rebuild indices) plus every router's COW
  /// overlay.  The number bench_router_memory compares against the O(n^3)
  /// per-router-copies design this replaced.
  [[nodiscard]] std::size_t table_bytes() const noexcept;

 private:
  class Forwarding;

  /// Router `v` learns that `e` failed (via detection or an LSA).
  void learn(graph::NodeId v, graph::EdgeId e);
  void flood_from(graph::NodeId v, graph::EdgeId e);
  void schedule_recompute(graph::NodeId v);

  net::Simulator* sim_;
  net::Network* network_;
  Timings timings_;

  /// Per-router link-state database (known failed edges), and the COW
  /// routing state: ONE shared db delta-rebuilt to a recomputing router's
  /// known-failure set (memoised via shared_failures_, so routers converging
  /// on the same knowledge share one repair), from which each router keeps
  /// only its sparse row overlay -- O(n^2) + damage across the network
  /// instead of the former n full RoutingDb copies (O(n^3)).  The data plane
  /// resolves lookups overlay-first against the shared pristine snapshot, so
  /// forwarding is bit-identical to the per-router-copies design.  The
  /// workspace is shared because the event simulator is single-threaded.
  std::vector<graph::EdgeSet> known_failures_;
  RoutingDb shared_db_;
  std::vector<graph::EdgeId> shared_failures_;  ///< set shared_db_ reflects
  std::vector<RouterTableOverlay> overlays_;
  graph::SpfWorkspace spf_workspace_;
  std::vector<std::uint8_t> recompute_pending_;
  std::size_t injected_failures_ = 0;

  std::unique_ptr<Forwarding> protocol_;
  std::uint64_t lsa_messages_ = 0;
  std::uint64_t spf_runs_ = 0;
  net::SimTime last_update_ = 0;
};

}  // namespace pr::route
