// Copy-on-write per-router routing state over a shared RoutingDb.
//
// The event-driven IGP used to give every router its own full RoutingDb --
// O(n^3) memory across the network, which is what capped the event-sim
// experiments at GEANT size (a 4k-router backbone would need ~1 TB).  The
// observation that fixes it: a router's data plane only ever reads ITS OWN
// row of the tables, and after any single rebuild that row differs from the
// pristine tables in at most the rebuild's dirty destinations.  So per-router
// state collapses to a sparse overlay -- the (destination -> next dart) pairs
// where this router's converged route differs from pristine -- resolved
// against one shared pristine snapshot on lookup.  Network-wide memory
// becomes one shared db plus O(total damage), not O(n) full copies.
#pragma once

#include <cstdint>
#include <vector>

#include "route/routing_db.hpp"

namespace pr::route {

class RouterTableOverlay {
 public:
  /// Sizes the dense slot map for `dest_count` destinations and empties the
  /// overlay (the router forwards purely on pristine state).  Capacity is
  /// retained, so re-assignments after the first allocate nothing.
  void reset(std::size_t dest_count);

  /// Replaces the overlay with router `router`'s diffs out of `db`, which
  /// must currently hold the converged tables this router should forward
  /// with (typically a shared db just rebuilt for the router's known-failure
  /// set).  Only db.dirty_destinations() can differ from pristine, so the
  /// scan is O(dirty), not O(n).
  void assign_row(const RoutingDb& db, NodeId router);

  /// The router's next dart toward `dest`: the overlay entry when one
  /// exists, else `pristine` (caller passes db.pristine_next_dart(...)).
  [[nodiscard]] DartId next_dart_or(NodeId dest, DartId pristine) const noexcept {
    const std::uint32_t slot = slot_of_[dest];
    return slot == kNoSlot ? pristine : next_[slot];
  }

  /// Number of (destination, next dart) diffs currently stored.
  [[nodiscard]] std::size_t entries() const noexcept { return dests_.size(); }

  /// Allocator footprint of this overlay (slot map + diff arrays).
  [[nodiscard]] std::size_t bytes() const noexcept {
    return sizeof(*this) + slot_of_.capacity() * sizeof(std::uint32_t) +
           dests_.capacity() * sizeof(NodeId) + next_.capacity() * sizeof(DartId);
  }

 private:
  static constexpr std::uint32_t kNoSlot = 0xffffffffU;

  std::vector<std::uint32_t> slot_of_;  ///< dest -> index into the diff arrays
  std::vector<NodeId> dests_;           ///< destinations with a diff entry
  std::vector<DartId> next_;            ///< the overriding next dart per entry
};

}  // namespace pr::route
