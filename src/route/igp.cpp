#include "route/igp.hpp"

#include <algorithm>

namespace pr::route {

using graph::EdgeId;
using graph::NodeId;

/// Data-plane forwarding against the per-router tables of the moment.
class LinkStateIgp::Forwarding final : public net::ForwardingProtocol {
 public:
  explicit Forwarding(LinkStateIgp& igp) : igp_(&igp) {}

  [[nodiscard]] net::ForwardingDecision forward(const net::Network& net, NodeId at,
                                                graph::DartId /*arrived_over*/,
                                                net::Packet& packet) override {
    if (at == packet.destination) return net::ForwardingDecision::deliver();
    // COW lookup: this router's overlay diff when it has one for the
    // destination, else the shared pristine snapshot.
    const graph::DartId out = igp_->overlays_[at].next_dart_or(
        packet.destination,
        igp_->shared_db_.pristine_next_dart(at, packet.destination));
    if (out == graph::kInvalidDart) {
      return net::ForwardingDecision::drop(net::DropReason::kNoRoute);
    }
    if (!net.dart_usable(out)) {
      // The router's own interface is down but its table still points there:
      // the classic pre-convergence loss.
      return net::ForwardingDecision::drop(net::DropReason::kPolicy);
    }
    return net::ForwardingDecision::forward(out);
  }

  [[nodiscard]] std::string_view name() const noexcept override { return "igp"; }

 private:
  LinkStateIgp* igp_;
};

LinkStateIgp::LinkStateIgp(net::Simulator& sim, net::Network& network)
    : LinkStateIgp(sim, network, Timings{}) {}

LinkStateIgp::~LinkStateIgp() = default;

net::ForwardingProtocol& LinkStateIgp::protocol() noexcept { return *protocol_; }

LinkStateIgp::LinkStateIgp(net::Simulator& sim, net::Network& network, Timings timings)
    : sim_(&sim),
      network_(&network),
      timings_(timings),
      shared_db_(network.graph()) {
  const auto& g = network.graph();
  // Snapshot the pristine columns up front: the data plane resolves overlay
  // misses against pristine_next_dart() from the very first packet, while the
  // shared live columns get rebuilt per recompute.
  shared_db_.prepare_incremental();
  known_failures_.reserve(g.node_count());
  overlays_.resize(g.node_count());
  recompute_pending_.assign(g.node_count(), 0);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    known_failures_.emplace_back(g.edge_count());
    overlays_[v].reset(g.node_count());
  }
  protocol_ = std::make_unique<Forwarding>(*this);
}

std::size_t LinkStateIgp::table_bytes() const noexcept {
  std::size_t total = shared_db_.bytes() +
                      shared_failures_.capacity() * sizeof(graph::EdgeId);
  for (const auto& overlay : overlays_) total += overlay.bytes();
  return total;
}

void LinkStateIgp::on_link_failure(EdgeId e) {
  ++injected_failures_;
  const auto& g = network_->graph();
  // Both endpoints detect the loss after the detection delay, adopt the
  // information and start flooding.
  for (const NodeId endpoint : {g.edge_u(e), g.edge_v(e)}) {
    sim_->after(timings_.detection_delay, [this, endpoint, e] { learn(endpoint, e); });
  }
}

void LinkStateIgp::learn(NodeId v, EdgeId e) {
  if (known_failures_[v].contains(e)) return;  // duplicate LSA: drop silently
  known_failures_[v].insert(e);
  schedule_recompute(v);
  flood_from(v, e);
}

void LinkStateIgp::flood_from(NodeId v, EdgeId e) {
  const auto& g = network_->graph();
  for (const graph::DartId d : g.out_darts(v)) {
    const EdgeId link = graph::dart_edge(d);
    // LSAs travel only over links the sender believes usable AND that are
    // physically up at transmission time.
    if (known_failures_[v].contains(link) || !network_->link_up(link)) continue;
    const NodeId neighbour = g.dart_head(d);
    ++lsa_messages_;
    sim_->after(network_->link_delay(link) + timings_.lsa_processing,
                [this, neighbour, e] { learn(neighbour, e); });
  }
}

void LinkStateIgp::schedule_recompute(NodeId v) {
  if (recompute_pending_[v] != 0) return;  // SPF throttled: one run pending
  recompute_pending_[v] = 1;
  sim_->after(timings_.spf_delay, [this, v] {
    recompute_pending_[v] = 0;
    // Delta-repair the SHARED db to this router's knowledge (skipped when the
    // previous recompute already left it there -- common once flooding has
    // equalised the link-state databases), then snapshot the router's sparse
    // row diff.  No per-router n^2 columns anywhere.
    const auto known = known_failures_[v].elements();
    if (known.size() != shared_failures_.size() ||
        !std::equal(known.begin(), known.end(), shared_failures_.begin())) {
      shared_db_.rebuild(known_failures_[v], spf_workspace_);
      shared_failures_.assign(known.begin(), known.end());
    }
    overlays_[v].assign_row(shared_db_, v);
    ++spf_runs_;
    last_update_ = sim_->now();
  });
}

bool LinkStateIgp::converged(NodeId v) const {
  // v is converged when it knows every injected failure and has folded that
  // knowledge into its table (no recompute pending).
  if (recompute_pending_[v] != 0) return false;
  const auto& actual = network_->failed_links();
  for (const EdgeId e : actual.elements()) {
    if (!known_failures_[v].contains(e)) return false;
  }
  return true;
}

bool LinkStateIgp::fully_converged() const {
  for (NodeId v = 0; v < network_->graph().node_count(); ++v) {
    if (!converged(v)) return false;
  }
  return true;
}

}  // namespace pr::route
