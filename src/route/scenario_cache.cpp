#include "route/scenario_cache.hpp"

#include <algorithm>

#include "obs/telemetry.hpp"

namespace pr::route {

const RoutingDb& ScenarioRoutingCache::tables(const graph::Graph& g,
                                              const graph::EdgeSet& failures,
                                              DiscriminatorKind kind) {
  if (db_ == nullptr || graph_ != &g || graph_structure_id_ != g.structure_id() ||
      kind_ != kind) {
    db_ = std::make_unique<RoutingDb>(g, nullptr, kind);
    graph_ = &g;
    graph_structure_id_ = g.structure_id();
    kind_ = kind;
    current_failures_.clear();
    ++pristine_builds_;
    obs::count(obs::Counter::kRouteCachePristineBuilds);
    if (failures.empty()) return *db_;
  } else {
    const auto elements = failures.elements();
    if (std::equal(elements.begin(), elements.end(), current_failures_.begin(),
                   current_failures_.end())) {
      ++hits_;
      obs::count(obs::Counter::kRouteCacheHits);
      return *db_;
    }
  }
  {
    obs::PhaseTimer timer(obs::Phase::kSpfRebuild);
    db_->rebuild(failures, workspace_);
  }
  const auto elements = failures.elements();
  current_failures_.assign(elements.begin(), elements.end());
  ++rebuilds_;
  obs::count(obs::Counter::kRouteCacheRebuilds);
  return *db_;
}

LfaRouting& ScenarioRoutingCache::lfa(const graph::Graph& g,
                                      const graph::EdgeSet& failures,
                                      LfaKind kind, DiscriminatorKind dkind) {
  // Sync the shared tables to the scenario first; the counters then tell this
  // slot exactly how stale its alternates are.
  (void)tables(g, failures, dkind);
  LfaSlot& slot = lfa_slots_[kind == LfaKind::kLinkProtecting ? 0 : 1];
  if (slot.lfa == nullptr || slot.synced_build != pristine_builds_) {
    // New graph / kind epoch: the whole alternate array must be rederived
    // (the LfaRouting constructor picks up the db's current scenario).
    slot.lfa = std::make_unique<LfaRouting>(*db_, kind);
  } else if (slot.synced_rebuild != rebuilds_) {
    slot.lfa->resync();
  }  // else: db untouched since this slot's last sync -- alternates current
  slot.synced_build = pristine_builds_;
  slot.synced_rebuild = rebuilds_;
  return *slot.lfa;
}

}  // namespace pr::route
