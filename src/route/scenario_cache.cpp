#include "route/scenario_cache.hpp"

#include <algorithm>

namespace pr::route {

const RoutingDb& ScenarioRoutingCache::tables(const graph::Graph& g,
                                              const graph::EdgeSet& failures,
                                              DiscriminatorKind kind) {
  if (db_ == nullptr || graph_ != &g || graph_structure_id_ != g.structure_id() ||
      kind_ != kind) {
    db_ = std::make_unique<RoutingDb>(g, nullptr, kind);
    graph_ = &g;
    graph_structure_id_ = g.structure_id();
    kind_ = kind;
    current_failures_.clear();
    ++pristine_builds_;
    if (failures.empty()) return *db_;
  } else {
    const auto elements = failures.elements();
    if (std::equal(elements.begin(), elements.end(), current_failures_.begin(),
                   current_failures_.end())) {
      ++hits_;
      return *db_;
    }
  }
  db_->rebuild(failures, workspace_);
  const auto elements = failures.elements();
  current_failures_.assign(elements.begin(), elements.end());
  ++rebuilds_;
  return *db_;
}

}  // namespace pr::route
