// Per-sweep-worker cache of delta-repaired routing tables.
//
// Failure sweeps ask the same question per scenario -- "what are the
// post-convergence tables with these links down?" -- and used to answer it by
// constructing a fresh RoutingDb (n full Dijkstras plus three n^2 column
// allocations) every time.  This cache owns ONE RoutingDb built on the
// pristine topology and answers each scenario by RoutingDb::rebuild(): only
// destination trees that actually use a failed edge are repaired, from the
// orphaned-subtree frontier, with results bit-identical to the from-scratch
// build.  One cache lives per sweep worker (sim::WorkerContext) and per
// serial driver, so no synchronisation is needed.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "graph/spf_workspace.hpp"
#include "route/lfa.hpp"
#include "route/routing_db.hpp"

namespace pr::route {

class ScenarioRoutingCache {
 public:
  ScenarioRoutingCache() = default;

  ScenarioRoutingCache(const ScenarioRoutingCache&) = delete;
  ScenarioRoutingCache& operator=(const ScenarioRoutingCache&) = delete;
  ScenarioRoutingCache(ScenarioRoutingCache&&) = default;
  ScenarioRoutingCache& operator=(ScenarioRoutingCache&&) = default;

  /// Tables equal (bit for bit) to RoutingDb(g, &failures, kind), produced by
  /// delta repair of the cached pristine db.  The first call for a given
  /// (graph, kind) pays one full pristine build; subsequent calls pay only
  /// the repair of the trees the failure set touches, and repeating the
  /// previous failure set verbatim is free.  The returned reference is owned
  /// by the cache and is overwritten by the next call with a different
  /// failure set -- borrow it for the current scenario only.
  [[nodiscard]] const RoutingDb& tables(
      const graph::Graph& g, const graph::EdgeSet& failures,
      DiscriminatorKind kind = DiscriminatorKind::kHops);

  /// Per-scenario LFA alternates, equal (bit for bit) to constructing
  /// LfaRouting(RoutingDb(g, &failures, dkind), kind) fresh -- but produced
  /// incrementally: the tables come from tables() above and the alternate
  /// array is kept per LfaKind across calls, re-deriving only the pairs whose
  /// table columns the scenario (or the previous one) touched.  Same
  /// borrowing rules as tables(); the reference is additionally invalidated
  /// by any later tables()/lfa() call with a different failure set or kind.
  [[nodiscard]] LfaRouting& lfa(const graph::Graph& g,
                                const graph::EdgeSet& failures, LfaKind kind,
                                DiscriminatorKind dkind = DiscriminatorKind::kHops);

  /// Instrumentation for benches and tests.
  [[nodiscard]] std::uint64_t pristine_builds() const noexcept {
    return pristine_builds_;
  }
  [[nodiscard]] std::uint64_t rebuilds() const noexcept { return rebuilds_; }
  [[nodiscard]] std::uint64_t hits() const noexcept { return hits_; }

 private:
  // Keyed by (address, structure_id): the id defeats address reuse -- a sweep
  // over successive topologies can see a new Graph allocated where a
  // destroyed one lived, and serving the old tables there would read out of
  // bounds.  It also invalidates on mutation of the same object.
  const graph::Graph* graph_ = nullptr;
  std::uint64_t graph_structure_id_ = 0;
  DiscriminatorKind kind_ = DiscriminatorKind::kHops;
  std::unique_ptr<RoutingDb> db_;
  graph::SpfWorkspace workspace_;
  /// The failure set the db currently reflects (element order included, so
  /// the comparison is exact and allocation-free on the hit path).
  std::vector<graph::EdgeId> current_failures_;
  std::uint64_t pristine_builds_ = 0;
  std::uint64_t rebuilds_ = 0;
  std::uint64_t hits_ = 0;

  /// Per-LfaKind persistent alternate state, lazily built over db_ and
  /// resynced to whatever scenario the db was rebuilt to since the slot's
  /// last sync (tracked via the build / rebuild counters above).
  struct LfaSlot {
    std::unique_ptr<LfaRouting> lfa;
    std::uint64_t synced_build = 0;    ///< pristine_builds_ at last sync
    std::uint64_t synced_rebuild = 0;  ///< rebuilds_ at last sync
  };
  LfaSlot lfa_slots_[2];
};

}  // namespace pr::route
