#include "analysis/coverage.hpp"

#include <stdexcept>

#include "graph/connectivity.hpp"
#include "sim/forwarding_engine.hpp"

namespace pr::analysis {

using graph::NodeId;

CoverageResult run_coverage_experiment(const graph::Graph& g,
                                       std::span<const graph::EdgeSet> scenarios,
                                       const std::vector<NamedFactory>& protocols) {
  if (protocols.empty()) {
    throw std::invalid_argument("run_coverage_experiment: no protocols given");
  }
  const route::RoutingDb pristine(g);

  CoverageResult result;
  result.scenarios = scenarios.size();
  for (const auto& p : protocols) {
    result.protocols.push_back(ProtocolCoverage{p.name, 0, 0, 0});
  }

  // Reused across scenarios and protocols: once warm, a sweep allocates
  // nothing per trial.
  std::vector<sim::FlowSpec> flows;
  std::vector<char> recoverable;
  sim::BatchResult batch;

  for (const auto& failures : scenarios) {
    net::Network network(g);
    for (graph::EdgeId e : failures.elements()) network.fail_link(e);
    const auto components = graph::connected_components(g, &failures);

    flows.clear();
    recoverable.clear();
    for (NodeId s = 0; s < g.node_count(); ++s) {
      for (NodeId t = 0; t < g.node_count(); ++t) {
        if (s == t || !path_affected(pristine, s, t, failures)) continue;
        flows.push_back(sim::FlowSpec{s, t});
        recoverable.push_back(components[s] == components[t] ? 1 : 0);
      }
    }
    if (flows.empty()) continue;

    for (std::size_t i = 0; i < protocols.size(); ++i) {
      const auto instance = protocols[i].make(network);
      sim::route_batch(network, *instance, flows, sim::TraceMode::kStats, batch);
      auto& agg = result.protocols[i];
      for (std::size_t f = 0; f < batch.size(); ++f) {
        if (batch[f].delivered()) {
          ++agg.delivered;
        } else if (recoverable[f] != 0) {
          ++agg.dropped_reachable;
        } else {
          ++agg.dropped_partitioned;
        }
      }
    }
  }
  return result;
}

}  // namespace pr::analysis
