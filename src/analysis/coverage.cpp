#include "analysis/coverage.hpp"

#include <stdexcept>

#include "graph/connectivity.hpp"

namespace pr::analysis {

using graph::NodeId;

CoverageResult run_coverage_experiment(const graph::Graph& g,
                                       std::span<const graph::EdgeSet> scenarios,
                                       const std::vector<NamedFactory>& protocols) {
  if (protocols.empty()) {
    throw std::invalid_argument("run_coverage_experiment: no protocols given");
  }
  const route::RoutingDb pristine(g);

  CoverageResult result;
  result.scenarios = scenarios.size();
  for (const auto& p : protocols) {
    result.protocols.push_back(ProtocolCoverage{p.name, 0, 0, 0});
  }

  for (const auto& failures : scenarios) {
    net::Network network(g);
    for (graph::EdgeId e : failures.elements()) network.fail_link(e);
    const auto components = graph::connected_components(g, &failures);

    std::vector<std::unique_ptr<net::ForwardingProtocol>> instances;
    instances.reserve(protocols.size());
    for (const auto& p : protocols) instances.push_back(p.make(network));

    for (NodeId s = 0; s < g.node_count(); ++s) {
      for (NodeId t = 0; t < g.node_count(); ++t) {
        if (s == t || !path_affected(pristine, s, t, failures)) continue;
        const bool recoverable = components[s] == components[t];
        for (std::size_t i = 0; i < instances.size(); ++i) {
          const auto trace = net::route_packet(network, *instances[i], s, t);
          auto& agg = result.protocols[i];
          if (trace.delivered()) {
            ++agg.delivered;
          } else if (recoverable) {
            ++agg.dropped_reachable;
          } else {
            ++agg.dropped_partitioned;
          }
        }
      }
    }
  }
  return result;
}

}  // namespace pr::analysis
