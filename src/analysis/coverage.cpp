#include "analysis/coverage.hpp"

#include <stdexcept>

#include "graph/connectivity.hpp"
#include "sim/forwarding_engine.hpp"
#include "sim/parallel_sweep.hpp"

namespace pr::analysis {

using graph::NodeId;

namespace {

/// Flow list of one scenario in canonical (s, t) order, with a parallel
/// recoverability flag per flow (same component in the failed graph).
void collect_classified_flows(const graph::Graph& g, const route::RoutingDb& pristine,
                              const graph::EdgeSet& failures,
                              std::vector<sim::FlowSpec>& flows,
                              std::vector<char>& recoverable) {
  const auto components = graph::connected_components(g, &failures);
  flows.clear();
  recoverable.clear();
  for (NodeId s = 0; s < g.node_count(); ++s) {
    for (NodeId t = 0; t < g.node_count(); ++t) {
      if (s == t || !path_affected(pristine, s, t, failures)) continue;
      flows.push_back(sim::FlowSpec{s, t});
      recoverable.push_back(components[s] == components[t] ? 1 : 0);
    }
  }
}

/// Classifies one routed batch into a coverage accumulator.
void classify_batch(const sim::BatchResult& batch, const std::vector<char>& recoverable,
                    ProtocolCoverage& agg) {
  for (std::size_t f = 0; f < batch.size(); ++f) {
    if (batch[f].delivered()) {
      ++agg.delivered;
    } else if (recoverable[f] != 0) {
      ++agg.dropped_reachable;
    } else {
      ++agg.dropped_partitioned;
    }
  }
}

}  // namespace

CoverageResult run_coverage_experiment(const graph::Graph& g,
                                       std::span<const graph::EdgeSet> scenarios,
                                       const std::vector<NamedFactory>& protocols) {
  if (protocols.empty()) {
    throw std::invalid_argument("run_coverage_experiment: no protocols given");
  }
  const route::RoutingDb pristine(g);

  CoverageResult result;
  result.scenarios = scenarios.size();
  for (const auto& p : protocols) {
    result.protocols.push_back(ProtocolCoverage{p.name, 0, 0, 0});
  }

  // Reused across scenarios and protocols: once warm, a sweep allocates
  // nothing per trial, and reconverging protocols borrow delta-repaired
  // tables from the cache.
  std::vector<sim::FlowSpec> flows;
  std::vector<char> recoverable;
  sim::BatchResult batch;
  route::ScenarioRoutingCache routing_cache;

  for (const auto& failures : scenarios) {
    net::Network network(g);
    for (graph::EdgeId e : failures.elements()) network.fail_link(e);

    collect_classified_flows(g, pristine, failures, flows, recoverable);
    if (flows.empty()) continue;

    for (std::size_t i = 0; i < protocols.size(); ++i) {
      const auto instance = make_protocol(protocols[i], network, routing_cache);
      sim::route_batch(network, *instance, flows, sim::TraceMode::kStats, batch);
      classify_batch(batch, recoverable, result.protocols[i]);
    }
  }
  return result;
}

CoverageResult run_coverage_experiment(const graph::Graph& g,
                                       std::span<const graph::EdgeSet> scenarios,
                                       const std::vector<NamedFactory>& protocols,
                                       sim::SweepExecutor& executor) {
  if (protocols.empty()) {
    throw std::invalid_argument("run_coverage_experiment: no protocols given");
  }
  const route::RoutingDb pristine(g);

  // One accumulator row per scenario, written by exactly one worker each.
  std::vector<std::vector<ProtocolCoverage>> partials(
      scenarios.size(), std::vector<ProtocolCoverage>(protocols.size()));

  executor.run(scenarios.size(), [&](std::size_t unit, sim::WorkerContext& ctx) {
    const graph::EdgeSet& failures = scenarios[unit];
    net::Network network(g);
    for (graph::EdgeId e : failures.elements()) network.fail_link(e);

    collect_classified_flows(g, pristine, failures, ctx.flows, ctx.flags);
    if (ctx.flows.empty()) return;

    for (std::size_t i = 0; i < protocols.size(); ++i) {
      const auto instance = make_protocol(protocols[i], network, ctx.routes);
      sim::route_batch(network, *instance, ctx.flows, sim::TraceMode::kStats,
                       ctx.batch);
      classify_batch(ctx.batch, ctx.flags, partials[unit][i]);
    }
  });

  CoverageResult result;
  result.scenarios = scenarios.size();
  for (const auto& p : protocols) {
    result.protocols.push_back(ProtocolCoverage{p.name, 0, 0, 0});
  }
  for (const auto& shard : partials) {  // canonical scenario order
    for (std::size_t i = 0; i < protocols.size(); ++i) {
      result.protocols[i].merge(shard[i]);
    }
  }
  return result;
}

}  // namespace pr::analysis
