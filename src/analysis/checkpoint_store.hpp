// Durable, generation-numbered store for checkpoint blobs.
//
// analysis/checkpoint.hpp made a sweep's reducer state an exact, checksummed
// byte string; this layer makes that string survive the PROCESS.  A store is
// a directory of monotonically numbered generation files
//
//   <dir>/ckpt-00000001.prckpt
//   <dir>/ckpt-00000002.prckpt        (newest = highest number)
//   <dir>/quarantine/ckpt-....prckpt  (corrupt generations, moved aside)
//
// written with the crash-consistent temp + fsync + rename idiom
// (util/atomic_file.hpp), so a generation file on disk is always a COMPLETE
// sealed blob: a crash mid-persist leaves the previous generations untouched
// and at worst an ignored dot-temp.  Rotation keeps the newest
// `keep_generations` files so an auto-checkpointing sweep never grows the
// directory without bound, and keeping more than one generation is itself a
// robustness feature: if the newest file fails validation (truncated by a
// dying filesystem, bit-rotted, half a disk), load_latest() QUARANTINES it --
// moves it aside with a reason suffix, never deletes evidence -- and falls
// back to the next older good one.  Resuming from an older generation is
// always correct, merely slower: checkpoints are canonical prefixes, so the
// sweep re-runs the tail deterministically (the crash-only design of
// conf_hotnets_LorLR10 applied to the analysis pipeline itself).
//
// Concurrency: one writer process per store directory at a time (the
// supervisor harness enforces this by construction -- it restarts the child
// only after waitpid).  load_latest() tolerates a concurrent writer appending
// NEW generations; it never touches files it did not fail to read.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace pr::analysis {

/// Filesystem-level store failure (create/list/rename errors).  Distinct from
/// CheckpointError, which reports what is INSIDE a blob.
class CheckpointStoreError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct CheckpointStoreOptions {
  /// Generations kept on disk; persisting past the bound deletes the oldest.
  /// Must be >= 1 (the constructor throws otherwise); >= 2 is what makes the
  /// corruption fallback non-vacuous.
  std::size_t keep_generations = 4;
};

/// A successfully loaded generation.
struct StoredCheckpoint {
  std::uint64_t generation = 0;
  std::string blob;
};

class CheckpointStore {
 public:
  /// Opens (creating if needed) the store at `directory` and scans existing
  /// generation files so numbering continues monotonically across processes.
  explicit CheckpointStore(std::string directory, CheckpointStoreOptions options = {});

  CheckpointStore(const CheckpointStore&) = delete;
  CheckpointStore& operator=(const CheckpointStore&) = delete;

  /// Durably persists `blob` as the next generation (atomic replace + fsync)
  /// and rotates generations beyond the keep bound.  Returns the new
  /// generation number.  Throws CheckpointStoreError on I/O failure -- the
  /// existing generations are untouched in that case.
  std::uint64_t persist(std::string_view blob);

  /// Loads the newest generation whose file is a structurally valid blob
  /// (magic + checksum, via CheckpointReader).  A generation that fails --
  /// unreadable, truncated, checksum mismatch -- is moved to quarantine/ and
  /// the scan falls back to the next older one.  Returns nullopt when no good
  /// generation exists.  Schema-level validation (kind, version, config echo)
  /// stays with the caller: a structurally valid blob for the WRONG
  /// experiment is a caller error, not store corruption.
  [[nodiscard]] std::optional<StoredCheckpoint> load_latest();

  /// Generation numbers currently on disk, ascending (fresh directory scan).
  [[nodiscard]] std::vector<std::uint64_t> generations() const;

  /// The newest generation number ever observed or written by this instance
  /// (0 = none).
  [[nodiscard]] std::uint64_t latest_generation() const noexcept { return latest_; }

  /// Generations this instance moved to quarantine/.
  [[nodiscard]] std::size_t quarantined() const noexcept { return quarantined_; }

  [[nodiscard]] const std::string& directory() const noexcept { return directory_; }
  [[nodiscard]] const CheckpointStoreOptions& options() const noexcept {
    return options_;
  }

  /// "ckpt-00000042.prckpt" -- zero-padded so lexical file order matches
  /// numeric generation order for the common case (parsing stays numeric).
  [[nodiscard]] static std::string generation_filename(std::uint64_t generation);

 private:
  [[nodiscard]] std::string generation_path(std::uint64_t generation) const;
  void quarantine(std::uint64_t generation, const std::string& reason);
  void rotate();

  std::string directory_;
  CheckpointStoreOptions options_;
  std::uint64_t latest_ = 0;
  std::size_t quarantined_ = 0;
};

}  // namespace pr::analysis
