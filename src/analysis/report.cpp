#include "analysis/report.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace pr::analysis {

std::vector<double> paper_stretch_axis() {
  std::vector<double> xs;
  for (int x = 1; x <= 15; ++x) xs.push_back(static_cast<double>(x));
  return xs;
}

std::string format_ccdf_table(
    std::span<const double> xs,
    const std::vector<std::pair<std::string, std::vector<double>>>& series) {
  std::ostringstream out;
  out << std::left << std::setw(10) << "stretch";
  for (const auto& [name, _] : series) out << std::setw(28) << name;
  out << "\n";
  for (std::size_t i = 0; i < xs.size(); ++i) {
    out << std::left << std::setw(10) << xs[i];
    for (const auto& [_, values] : series) {
      std::ostringstream cell;
      cell << std::fixed << std::setprecision(4)
           << (i < values.size() ? values[i] : 0.0);
      out << std::setw(28) << cell.str();
    }
    out << "\n";
  }
  return out.str();
}

std::string format_stretch_report(const StretchExperimentResult& result,
                                  std::span<const double> xs) {
  std::vector<std::pair<std::string, std::vector<double>>> series;
  series.reserve(result.protocols.size());
  for (const auto& p : result.protocols) {
    series.emplace_back(p.name, ccdf(p.stretches, xs));
  }
  std::ostringstream out;
  out << "P(Stretch > x | affected path)   scenarios=" << result.scenarios
      << "  affected-pairs=" << result.affected_pairs << "\n";
  out << format_ccdf_table(xs, series);
  for (const auto& p : result.protocols) {
    out << std::left << std::setw(28) << p.name << " delivered=" << p.delivered
        << " dropped=" << p.dropped << std::fixed << std::setprecision(3)
        << " mean-stretch=" << p.mean_finite_stretch()
        << " max-stretch=" << p.max_finite_stretch() << "\n";
  }
  return out.str();
}

std::string format_coverage_report(const CoverageResult& result) {
  std::ostringstream out;
  out << std::left << std::setw(28) << "protocol" << std::setw(12) << "delivered"
      << std::setw(20) << "dropped-reachable" << std::setw(20) << "dropped-partition"
      << "coverage\n";
  for (const auto& p : result.protocols) {
    out << std::left << std::setw(28) << p.name << std::setw(12) << p.delivered
        << std::setw(20) << p.dropped_reachable << std::setw(20)
        << p.dropped_partitioned << std::fixed << std::setprecision(4) << p.coverage()
        << "\n";
  }
  return out.str();
}

}  // namespace pr::analysis
