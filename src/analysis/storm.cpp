#include "analysis/storm.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "analysis/traffic.hpp"
#include "graph/connectivity.hpp"
#include "traffic/congestion.hpp"

namespace pr::analysis {

namespace {

/// One (scenario, protocol) cell of a storm sweep: the congestion metrics row
/// plus the storm-specific extras (worst stretch, re-routed flow count).
struct CellOutcome {
  traffic::CongestionMetrics metrics;
  double max_stretch = 1.0;
  std::size_t rerouted = 0;
};

/// The incremental cell core, SRLG-grained: probe the per-group incidence for
/// the flows this scenario's groups touch (the same set a per-edge probe of
/// the failure union finds), re-route only those with full traces, then
/// replay every flow in canonical flow order -- cached pristine rows for the
/// untouched majority, fresh paths for the rest.  Identical floating-point
/// sequence to analysis/traffic.hpp's incremental cell, with one extra
/// output: the worst path-cost stretch among delivered affected flows.
CellOutcome evaluate_storm_cell(
    const graph::Graph& g, const net::Network& network,
    std::span<const std::uint32_t> component, const NamedFactory& factory,
    route::ScenarioRoutingCache& cache, const traffic::FlowIncidenceIndex& index,
    const traffic::GroupIncidence& incidence, std::span<const std::size_t> groups,
    std::span<const double> pristine_costs, std::span<const sim::FlowSpec> flows,
    std::span<const double> demands, double offered_pps,
    const traffic::CapacityPlan& plan, sim::BatchResult& batch,
    traffic::LoadMap& load, traffic::IncidenceScratch& scratch) {
  incidence.affected_flows(groups, scratch.affected_mark, scratch.affected);

  batch.clear();
  if (!scratch.affected.empty()) {
    scratch.flows.clear();
    for (const std::uint32_t f : scratch.affected) scratch.flows.push_back(flows[f]);
    const auto instance = make_protocol(factory, network, cache);
    sim::route_batch(network, *instance, scratch.flows, sim::TraceMode::kFullTrace,
                     batch);
  }

  load.reset(g.dart_count());
  CellOutcome out;
  out.rerouted = scratch.affected.size();
  traffic::CongestionMetrics& m = out.metrics;
  m.offered_pps = offered_pps;
  std::size_t a = 0;  // cursor into the re-routed batch
  for (std::size_t f = 0; f < flows.size(); ++f) {
    const double rate = demands[f];
    bool delivered;
    if (scratch.affected_mark[f] != 0) {
      for (const graph::DartId d : batch.darts(a)) load.add(d, rate);
      delivered = batch[a].delivered();
      if (delivered && pristine_costs[f] > 0.0) {
        out.max_stretch = std::max(out.max_stretch, batch[a].cost / pristine_costs[f]);
      }
      ++a;
    } else {
      for (const graph::DartId d : index.flow_darts(f)) load.add(d, rate);
      delivered = index.pristine_delivered(f);
    }
    if (delivered) {
      m.delivered_pps += rate;
    } else if (component[flows[f].source] == component[flows[f].destination]) {
      m.lost_pps += rate;
    } else {
      m.stranded_pps += rate;
    }
  }
  traffic::apply_utilization(m, g, load, plan);
  return out;
}

/// Shared pristine-pass products every storm driver needs per protocol: the
/// flow incidence index, its SRLG-grained group view, and the per-flow
/// pristine path costs the stretch metric divides by.
struct ProtocolIndex {
  traffic::FlowIncidenceIndex flows;
  traffic::GroupIncidence groups;
  std::vector<double> pristine_costs;
};

std::vector<ProtocolIndex> build_storm_indexes(
    const graph::Graph& g, const net::SrlgCatalog& catalog,
    const std::vector<NamedFactory>& protocols, std::span<const sim::FlowSpec> flows,
    std::span<const double> demands, route::ScenarioRoutingCache& cache) {
  std::vector<ProtocolIndex> indexes(protocols.size());
  const net::Network pristine(g);
  sim::BatchResult batch;
  for (std::size_t i = 0; i < protocols.size(); ++i) {
    const auto instance = make_protocol(protocols[i], pristine, cache);
    indexes[i].flows.build(pristine, *instance, flows, demands);
    indexes[i].groups.build(indexes[i].flows, catalog);
    sim::route_batch(pristine, *instance, flows, sim::TraceMode::kStats, batch);
    indexes[i].pristine_costs.resize(flows.size());
    for (std::size_t f = 0; f < flows.size(); ++f) {
      indexes[i].pristine_costs[f] = batch[f].cost;
    }
  }
  return indexes;
}

void validate_quantiles(const std::vector<double>& quantiles) {
  if (quantiles.empty()) {
    throw std::invalid_argument("storm sweep: at least one quantile required");
  }
  for (const double q : quantiles) {
    if (!(q > 0.0 && q < 1.0)) {
      throw std::invalid_argument("storm sweep: quantiles must lie in (0, 1)");
    }
  }
}

void validate_inputs(const graph::Graph& g, const traffic::TrafficMatrix& demand,
                     const traffic::CapacityPlan& plan, const net::StormModel& model,
                     const std::vector<NamedFactory>& protocols) {
  if (protocols.empty()) {
    throw std::invalid_argument("storm sweep: no protocols given");
  }
  if (demand.node_count() != g.node_count()) {
    throw std::invalid_argument("storm sweep: demand matrix does not cover the graph");
  }
  if (plan.edge_count() != g.edge_count()) {
    throw std::invalid_argument("storm sweep: capacity plan does not cover the graph");
  }
  if (&model.catalog().graph() != &g) {
    throw std::invalid_argument("storm sweep: storm model is over a different graph");
  }
}

/// Exact quantile of a probability-weighted sample set: the smallest value
/// whose cumulative probability reaches q (values sorted ascending).
double weighted_quantile(std::vector<std::pair<double, double>>& samples, double q,
                         double total) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  double cumulative = 0.0;
  for (const auto& [value, probability] : samples) {
    cumulative += probability;
    if (cumulative >= q * total) return value;
  }
  return samples.back().first;
}

}  // namespace

StormExperimentResult run_storm_experiment(
    const graph::Graph& g, const traffic::TrafficMatrix& demand,
    const traffic::CapacityPlan& plan, const net::StormModel& model,
    const std::vector<NamedFactory>& protocols, const StormSweepConfig& config,
    sim::SweepExecutor& executor) {
  validate_inputs(g, demand, plan, model, protocols);
  validate_quantiles(config.quantiles);
  if (config.scenarios == 0) {
    throw std::invalid_argument("run_storm_experiment: scenarios must be > 0");
  }

  std::vector<sim::FlowSpec> flows;
  std::vector<double> demands;
  collect_demand_flows(demand, flows, demands);
  double offered = 0.0;
  for (const double d : demands) offered += d;

  // Pristine-pass products, built once and shared read-only by all workers.
  route::ScenarioRoutingCache pristine_cache;
  const std::vector<ProtocolIndex> indexes =
      build_storm_indexes(g, model.catalog(), protocols, flows, demands, pristine_cache);

  // Calm scenarios (no failed group) are the common case under realistic
  // outage probabilities; their cell is the pristine cell, computed once here
  // with the same code path a live evaluation would take.
  const auto pristine_component = graph::connected_components(g);
  std::vector<CellOutcome> pristine_cells(protocols.size());
  {
    const net::Network pristine(g);
    sim::BatchResult batch;
    traffic::LoadMap load;
    traffic::IncidenceScratch scratch;
    for (std::size_t i = 0; i < protocols.size(); ++i) {
      pristine_cells[i] = evaluate_storm_cell(
          g, pristine, pristine_component, protocols[i], pristine_cache,
          indexes[i].flows, indexes[i].groups, {}, indexes[i].pristine_costs, flows,
          demands, offered, plan, batch, load, scratch);
    }
  }

  // Flat-memory plumbing: a slot ring of the executor's reorder window, one
  // storm/component scratch and one overlay network per worker, and the
  // streaming reducers.  Nothing here grows with config.scenarios.
  struct WorkerScratch {
    net::StormSample sample;
    graph::ComponentScratch components;
  };
  struct Slot {
    std::vector<CellOutcome> cells;  // per protocol
    std::vector<std::size_t> groups;
    std::size_t failed_edges = 0;
    bool calm = false;
    bool disconnected = false;
  };
  const std::size_t window = executor.default_ordered_window();
  std::vector<Slot> slots(window);
  std::vector<WorkerScratch> scratches(executor.thread_count());
  std::vector<net::Network> networks;
  networks.reserve(executor.thread_count());
  for (std::size_t w = 0; w < executor.thread_count(); ++w) networks.emplace_back(g);

  StormExperimentResult result;
  result.scenarios = config.scenarios;
  result.flows_per_scenario = flows.size();
  result.offered_pps = offered;
  result.protocols.resize(protocols.size());
  for (std::size_t i = 0; i < protocols.size(); ++i) {
    result.protocols[i].name = protocols[i].name;
    result.protocols[i].quantiles = config.quantiles;
  }
  std::vector<P2QuantileSet> utilization_q(protocols.size(),
                                           P2QuantileSet(config.quantiles));
  std::vector<P2QuantileSet> stretch_q(protocols.size(),
                                       P2QuantileSet(config.quantiles));
  std::vector<TopK<StormScenarioRecord>> worst(
      protocols.size(), TopK<StormScenarioRecord>(config.top_k));

  executor.run_ordered(
      config.scenarios,
      [&](std::size_t unit, sim::WorkerContext& ctx) {
        Slot& slot = slots[unit % window];
        WorkerScratch& ws = scratches[ctx.worker()];
        net::Network& network = networks[ctx.worker()];

        model.sample(ctx.rng(), ws.sample);
        slot.groups.assign(ws.sample.groups.begin(), ws.sample.groups.end());
        slot.failed_edges = ws.sample.failures.size();
        slot.calm = ws.sample.groups.empty();
        slot.disconnected = false;
        slot.cells.resize(protocols.size());
        if (slot.calm) {
          for (std::size_t i = 0; i < protocols.size(); ++i) {
            slot.cells[i] = pristine_cells[i];
          }
          return;
        }

        for (const graph::EdgeId e : ws.sample.failures.elements()) {
          network.fail_link(e);
        }
        slot.disconnected =
            graph::connected_components_into(g, &ws.sample.failures, ws.components) > 1;
        for (std::size_t i = 0; i < protocols.size(); ++i) {
          slot.cells[i] = evaluate_storm_cell(
              g, network, ws.components.component, protocols[i], ctx.routes,
              indexes[i].flows, indexes[i].groups, slot.groups,
              indexes[i].pristine_costs, flows, demands, offered, plan, ctx.batch,
              ctx.load, ctx.incidence);
        }
        for (const graph::EdgeId e : ws.sample.failures.elements()) {
          network.restore_link(e);
        }
      },
      [&](std::size_t unit) {
        const Slot& slot = slots[unit % window];
        result.failed_groups.add(static_cast<double>(slot.groups.size()));
        result.failed_edges.add(static_cast<double>(slot.failed_edges));
        if (slot.calm) ++result.calm_scenarios;
        if (slot.disconnected) ++result.disconnected_scenarios;
        for (std::size_t i = 0; i < protocols.size(); ++i) {
          const CellOutcome& cell = slot.cells[i];
          const traffic::CongestionMetrics& m = cell.metrics;
          StormProtocolResult& p = result.protocols[i];
          p.utilization.add(m.max_utilization);
          p.stretch.add(cell.max_stretch);
          utilization_q[i].add(m.max_utilization);
          stretch_q[i].add(cell.max_stretch);
          p.delivered_pps += m.delivered_pps;
          p.lost_pps += m.lost_pps;
          p.stranded_pps += m.stranded_pps;
          p.overloaded_links += m.overloaded_links;
          if (m.overloaded_links > 0) ++p.overloaded_scenarios;
          if (m.lost_pps > 0.0) ++p.lossy_scenarios;
          p.rerouted_flows += cell.rerouted;
          worst[i].add(m.max_utilization, unit,
                       StormScenarioRecord{m.max_utilization, cell.max_stretch,
                                           m.lost_pps, m.stranded_pps, slot.groups,
                                           slot.failed_edges});
        }
      },
      config.seed);

  for (std::size_t i = 0; i < protocols.size(); ++i) {
    result.protocols[i].utilization_quantiles = utilization_q[i].estimates();
    result.protocols[i].stretch_quantiles = stretch_q[i].estimates();
    result.protocols[i].worst = worst[i].sorted();
  }
  return result;
}

StormOracleResult run_exhaustive_storm(const graph::Graph& g,
                                       const traffic::TrafficMatrix& demand,
                                       const traffic::CapacityPlan& plan,
                                       const net::IndependentOutages& model,
                                       const std::vector<NamedFactory>& protocols,
                                       const std::vector<double>& quantiles) {
  validate_inputs(g, demand, plan, model, protocols);
  validate_quantiles(quantiles);

  std::vector<sim::FlowSpec> flows;
  std::vector<double> demands;
  collect_demand_flows(demand, flows, demands);
  double offered = 0.0;
  for (const double d : demands) offered += d;

  route::ScenarioRoutingCache cache;
  const std::vector<ProtocolIndex> indexes =
      build_storm_indexes(g, model.catalog(), protocols, flows, demands, cache);

  const std::vector<net::WeightedScenario> enumeration =
      net::enumerate_outage_scenarios(model);

  StormOracleResult result;
  result.scenarios = enumeration.size();
  result.protocols.resize(protocols.size());
  for (std::size_t i = 0; i < protocols.size(); ++i) {
    result.protocols[i].name = protocols[i].name;
  }

  // Weighted per-scenario metric samples per protocol, kept for the exact
  // quantile pass; 2^G entries, which the <= 20 group gate keeps bounded.
  std::vector<std::vector<std::pair<double, double>>> util_samples(protocols.size());
  std::vector<std::vector<std::pair<double, double>>> stretch_samples(protocols.size());

  net::Network network(g);
  graph::EdgeSet failures(g.edge_count());
  graph::ComponentScratch components;
  sim::BatchResult batch;
  traffic::LoadMap load;
  traffic::IncidenceScratch scratch;

  for (const net::WeightedScenario& scenario : enumeration) {
    result.total_probability += scenario.probability;

    failures.clear();
    for (const std::size_t gid : scenario.groups) {
      for (const graph::EdgeId e : model.catalog().members(gid)) failures.insert(e);
    }
    for (const graph::EdgeId e : failures.elements()) network.fail_link(e);
    graph::connected_components_into(g, &failures, components);

    for (std::size_t i = 0; i < protocols.size(); ++i) {
      const CellOutcome cell = evaluate_storm_cell(
          g, network, components.component, protocols[i], cache, indexes[i].flows,
          indexes[i].groups, scenario.groups, indexes[i].pristine_costs, flows,
          demands, offered, plan, batch, load, scratch);
      StormOracleProtocol& p = result.protocols[i];
      const double w = scenario.probability;
      p.mean_max_utilization += w * cell.metrics.max_utilization;
      p.mean_max_stretch += w * cell.max_stretch;
      p.expected_delivered_pps += w * cell.metrics.delivered_pps;
      p.expected_lost_pps += w * cell.metrics.lost_pps;
      p.expected_stranded_pps += w * cell.metrics.stranded_pps;
      if (cell.metrics.overloaded_links > 0) p.overload_probability += w;
      if (cell.metrics.lost_pps > 0.0) p.loss_probability += w;
      util_samples[i].emplace_back(cell.metrics.max_utilization, w);
      stretch_samples[i].emplace_back(cell.max_stretch, w);
    }
    for (const graph::EdgeId e : failures.elements()) network.restore_link(e);
  }

  for (std::size_t i = 0; i < protocols.size(); ++i) {
    StormOracleProtocol& p = result.protocols[i];
    p.utilization_quantiles.reserve(quantiles.size());
    p.stretch_quantiles.reserve(quantiles.size());
    for (const double q : quantiles) {
      p.utilization_quantiles.push_back(
          weighted_quantile(util_samples[i], q, result.total_probability));
      p.stretch_quantiles.push_back(
          weighted_quantile(stretch_samples[i], q, result.total_probability));
    }
  }
  return result;
}

}  // namespace pr::analysis
