#include "analysis/storm.hpp"

#include <algorithm>
#include <stdexcept>
#include <string_view>
#include <utility>

#include "analysis/checkpoint.hpp"
#include "analysis/traffic.hpp"
#include "graph/connectivity.hpp"
#include "sim/fault_plan.hpp"
#include "traffic/congestion.hpp"

namespace pr::analysis {

namespace {

/// One (scenario, protocol) cell of a storm sweep: the congestion metrics row
/// plus the storm-specific extras (worst stretch, re-routed flow count).
struct CellOutcome {
  traffic::CongestionMetrics metrics;
  double max_stretch = 1.0;
  std::size_t rerouted = 0;
};

/// The incremental cell core, SRLG-grained: probe the per-group incidence for
/// the flows this scenario's groups touch (the same set a per-edge probe of
/// the failure union finds), re-route only those with full traces, then
/// replay every flow in canonical flow order -- cached pristine rows for the
/// untouched majority, fresh paths for the rest.  Identical floating-point
/// sequence to analysis/traffic.hpp's incremental cell, with one extra
/// output: the worst path-cost stretch among delivered affected flows.
CellOutcome evaluate_storm_cell(
    const graph::Graph& g, const net::Network& network,
    std::span<const std::uint32_t> component, const NamedFactory& factory,
    route::ScenarioRoutingCache& cache, const traffic::FlowIncidenceIndex& index,
    const traffic::GroupIncidence& incidence, std::span<const std::size_t> groups,
    std::span<const double> pristine_costs, std::span<const sim::FlowSpec> flows,
    std::span<const double> demands, double offered_pps,
    const traffic::CapacityPlan& plan, sim::BatchResult& batch,
    traffic::LoadMap& load, traffic::IncidenceScratch& scratch) {
  incidence.affected_flows(groups, scratch.affected_mark, scratch.affected);

  batch.clear();
  if (!scratch.affected.empty()) {
    scratch.flows.clear();
    for (const std::uint32_t f : scratch.affected) scratch.flows.push_back(flows[f]);
    const auto instance = make_protocol(factory, network, cache);
    sim::route_batch(network, *instance, scratch.flows, sim::TraceMode::kFullTrace,
                     batch);
  }

  load.reset(g.dart_count());
  CellOutcome out;
  out.rerouted = scratch.affected.size();
  traffic::CongestionMetrics& m = out.metrics;
  m.offered_pps = offered_pps;
  std::size_t a = 0;  // cursor into the re-routed batch
  for (std::size_t f = 0; f < flows.size(); ++f) {
    const double rate = demands[f];
    bool delivered;
    if (scratch.affected_mark[f] != 0) {
      for (const graph::DartId d : batch.darts(a)) load.add(d, rate);
      delivered = batch[a].delivered();
      if (delivered && pristine_costs[f] > 0.0) {
        out.max_stretch = std::max(out.max_stretch, batch[a].cost / pristine_costs[f]);
      }
      ++a;
    } else {
      for (const graph::DartId d : index.flow_darts(f)) load.add(d, rate);
      delivered = index.pristine_delivered(f);
    }
    if (delivered) {
      m.delivered_pps += rate;
    } else if (component[flows[f].source] == component[flows[f].destination]) {
      m.lost_pps += rate;
    } else {
      m.stranded_pps += rate;
    }
  }
  traffic::apply_utilization(m, g, load, plan);
  return out;
}

/// Shared pristine-pass products every storm driver needs per protocol: the
/// flow incidence index, its SRLG-grained group view, and the per-flow
/// pristine path costs the stretch metric divides by.
struct ProtocolIndex {
  traffic::FlowIncidenceIndex flows;
  traffic::GroupIncidence groups;
  std::vector<double> pristine_costs;
};

std::vector<ProtocolIndex> build_storm_indexes(
    const graph::Graph& g, const net::SrlgCatalog& catalog,
    const std::vector<NamedFactory>& protocols, std::span<const sim::FlowSpec> flows,
    std::span<const double> demands, route::ScenarioRoutingCache& cache) {
  std::vector<ProtocolIndex> indexes(protocols.size());
  const net::Network pristine(g);
  sim::BatchResult batch;
  for (std::size_t i = 0; i < protocols.size(); ++i) {
    const auto instance = make_protocol(protocols[i], pristine, cache);
    indexes[i].flows.build(pristine, *instance, flows, demands);
    indexes[i].groups.build(indexes[i].flows, catalog);
    sim::route_batch(pristine, *instance, flows, sim::TraceMode::kStats, batch);
    indexes[i].pristine_costs.resize(flows.size());
    for (std::size_t f = 0; f < flows.size(); ++f) {
      indexes[i].pristine_costs[f] = batch[f].cost;
    }
  }
  return indexes;
}

void validate_quantiles(const std::vector<double>& quantiles) {
  if (quantiles.empty()) {
    throw std::invalid_argument("storm sweep: at least one quantile required");
  }
  for (const double q : quantiles) {
    if (!(q > 0.0 && q < 1.0)) {
      throw std::invalid_argument("storm sweep: quantiles must lie in (0, 1)");
    }
  }
}

void validate_inputs(const graph::Graph& g, const traffic::TrafficMatrix& demand,
                     const traffic::CapacityPlan& plan, const net::StormModel& model,
                     const std::vector<NamedFactory>& protocols) {
  if (protocols.empty()) {
    throw std::invalid_argument("storm sweep: no protocols given");
  }
  if (demand.node_count() != g.node_count()) {
    throw std::invalid_argument("storm sweep: demand matrix does not cover the graph");
  }
  if (plan.edge_count() != g.edge_count()) {
    throw std::invalid_argument("storm sweep: capacity plan does not cover the graph");
  }
  if (&model.catalog().graph() != &g) {
    throw std::invalid_argument("storm sweep: storm model is over a different graph");
  }
}

// ---------------------------------------------------------------------------
// Checkpoint schema for storm sweeps.
//
// kind "storm-sweep" version 1: a config echo (seed, scenario target, top_k,
// quantiles, protocol names) the reader validates against the live
// experiment, the absolute scenario cursor, the scenario-shape reducers, and
// per protocol the two summaries, volume sums, counters, P^2 marker states
// and the top-K entry set (serialized via sorted(), whose order is
// deterministic; re-adding the entries restores behaviourally identical
// state because eviction and output are pure functions of the entry set).

constexpr std::string_view kStormCheckpointKind = "storm-sweep";
constexpr std::uint32_t kStormCheckpointVersion = 1;

void put_summary(CheckpointWriter& w, const RunningSummary& s) {
  w.u64(s.count);
  w.f64(s.sum);
  w.f64(s.min);
  w.f64(s.max);
}

RunningSummary get_summary(CheckpointReader& r) {
  RunningSummary s;
  s.count = r.u64();
  s.sum = r.f64();
  s.min = r.f64();
  s.max = r.f64();
  return s;
}

void put_p2_set(CheckpointWriter& w, const P2QuantileSet& set) {
  w.u64(set.size());
  for (std::size_t i = 0; i < set.size(); ++i) {
    const P2State s = set.at(i).state();
    w.f64(s.quantile);
    w.u64(s.count);
    for (const double h : s.heights) w.f64(h);
    for (const double p : s.positions) w.f64(p);
    for (const double d : s.desired) w.f64(d);
    for (const double d : s.desired_delta) w.f64(d);
  }
}

P2QuantileSet get_p2_set(CheckpointReader& r, const std::vector<double>& quantiles) {
  const std::uint64_t n = r.u64();
  if (n != quantiles.size()) {
    throw CheckpointError("storm checkpoint: quantile estimator count mismatch");
  }
  std::vector<P2Quantile> estimators;
  estimators.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    P2State s;
    s.quantile = r.f64();
    s.count = r.u64();
    for (double& h : s.heights) h = r.f64();
    for (double& p : s.positions) p = r.f64();
    for (double& d : s.desired) d = r.f64();
    for (double& d : s.desired_delta) d = r.f64();
    if (s.quantile != quantiles[i]) {
      throw CheckpointError("storm checkpoint: quantile value mismatch");
    }
    try {
      estimators.push_back(P2Quantile::from_state(s));
    } catch (const std::invalid_argument& e) {
      throw CheckpointError(std::string("storm checkpoint: ") + e.what());
    }
  }
  return P2QuantileSet(std::move(estimators));
}

void put_top_k(CheckpointWriter& w, const TopK<StormScenarioRecord>& top) {
  const auto entries = top.sorted();
  w.u64(entries.size());
  for (const auto& e : entries) {
    w.f64(e.key);
    w.u64(e.id);
    w.f64(e.value.max_utilization);
    w.f64(e.value.max_stretch);
    w.f64(e.value.lost_pps);
    w.f64(e.value.stranded_pps);
    w.u64(e.value.failed_groups.size());
    for (const std::size_t gid : e.value.failed_groups) w.u64(gid);
    w.u64(e.value.failed_edges);
  }
}

TopK<StormScenarioRecord> get_top_k(CheckpointReader& r, std::size_t k) {
  TopK<StormScenarioRecord> top(k);
  const std::uint64_t n = r.u64();
  if (n > k) {
    throw CheckpointError("storm checkpoint: top-K holds more entries than its capacity");
  }
  for (std::uint64_t i = 0; i < n; ++i) {
    const double key = r.f64();
    const std::uint64_t id = r.u64();
    StormScenarioRecord record;
    record.max_utilization = r.f64();
    record.max_stretch = r.f64();
    record.lost_pps = r.f64();
    record.stranded_pps = r.f64();
    record.failed_groups.resize(r.u64());
    for (std::size_t& gid : record.failed_groups) gid = r.u64();
    record.failed_edges = r.u64();
    top.add(key, id, record);
  }
  return top;
}

/// The mutable state of one storm sweep: everything a checkpoint must carry.
struct StormState {
  StormExperimentResult result;
  std::vector<P2QuantileSet> utilization_q;
  std::vector<P2QuantileSet> stretch_q;
  std::vector<TopK<StormScenarioRecord>> worst;
  std::size_t completed = 0;  ///< absolute scenario cursor
};

/// Seals the reducer prefix [0, completed) as a blob.  `completed` is passed
/// explicitly (not read from state) so the executor's auto-checkpoint hook
/// can seal a mid-run watermark while state.completed still holds the resume
/// offset -- the reducers themselves ARE the watermark prefix whenever this
/// runs under the executor's reduce lock.
std::string serialize_storm_state(const StormState& state, std::size_t completed,
                                  const StormSweepConfig& config,
                                  const std::vector<NamedFactory>& protocols,
                                  bool inject_failure) {
  CheckpointWriter w;
  w.str(kStormCheckpointKind);
  w.u32(kStormCheckpointVersion);
  w.u64(config.seed);
  w.u64(config.scenarios);
  w.u64(config.top_k);
  w.u64(config.quantiles.size());
  for (const double q : config.quantiles) w.f64(q);
  w.u64(protocols.size());
  for (const auto& p : protocols) w.str(p.name);
  w.u64(completed);
  w.u64(state.result.flows_per_scenario);
  w.f64(state.result.offered_pps);
  put_summary(w, state.result.failed_groups);
  put_summary(w, state.result.failed_edges);
  w.u64(state.result.calm_scenarios);
  w.u64(state.result.disconnected_scenarios);
  if (inject_failure) {
    throw CheckpointError("injected checkpoint failure (fault plan)");
  }
  for (std::size_t i = 0; i < protocols.size(); ++i) {
    const StormProtocolResult& p = state.result.protocols[i];
    put_summary(w, p.utilization);
    put_summary(w, p.stretch);
    w.f64(p.delivered_pps);
    w.f64(p.lost_pps);
    w.f64(p.stranded_pps);
    w.u64(p.overloaded_links);
    w.u64(p.overloaded_scenarios);
    w.u64(p.lossy_scenarios);
    w.u64(p.rerouted_flows);
    put_p2_set(w, state.utilization_q[i]);
    put_p2_set(w, state.stretch_q[i]);
    put_top_k(w, state.worst[i]);
  }
  return w.finish();
}

/// Restores `state` from a blob, validating every config echo against the
/// live experiment; throws CheckpointError on any mismatch.
void restore_storm_state(std::string_view blob, const StormSweepConfig& config,
                         const std::vector<NamedFactory>& protocols,
                         StormState& state) {
  CheckpointReader r(blob);
  if (r.str() != kStormCheckpointKind) {
    throw CheckpointError("storm checkpoint: wrong kind");
  }
  if (r.u32() != kStormCheckpointVersion) {
    throw CheckpointError("storm checkpoint: unsupported version");
  }
  if (r.u64() != config.seed) {
    throw CheckpointError("storm checkpoint: seed mismatch");
  }
  if (r.u64() != config.scenarios) {
    throw CheckpointError("storm checkpoint: scenario target mismatch");
  }
  if (r.u64() != config.top_k) {
    throw CheckpointError("storm checkpoint: top_k mismatch");
  }
  const std::uint64_t quantile_count = r.u64();
  if (quantile_count != config.quantiles.size()) {
    throw CheckpointError("storm checkpoint: quantile count mismatch");
  }
  for (const double q : config.quantiles) {
    if (r.f64() != q) throw CheckpointError("storm checkpoint: quantile mismatch");
  }
  const std::uint64_t protocol_count = r.u64();
  if (protocol_count != protocols.size()) {
    throw CheckpointError("storm checkpoint: protocol count mismatch");
  }
  for (const auto& p : protocols) {
    if (r.str() != p.name) {
      throw CheckpointError("storm checkpoint: protocol name mismatch");
    }
  }
  const std::uint64_t completed = r.u64();
  if (completed > config.scenarios) {
    throw CheckpointError("storm checkpoint: cursor past the scenario target");
  }
  const std::uint64_t flows_per_scenario = r.u64();
  if (flows_per_scenario != state.result.flows_per_scenario) {
    throw CheckpointError("storm checkpoint: flow count mismatch (different demand?)");
  }
  const double offered = r.f64();
  if (offered != state.result.offered_pps) {
    throw CheckpointError("storm checkpoint: offered volume mismatch (different demand?)");
  }
  state.completed = static_cast<std::size_t>(completed);
  state.result.failed_groups = get_summary(r);
  state.result.failed_edges = get_summary(r);
  state.result.calm_scenarios = r.u64();
  state.result.disconnected_scenarios = r.u64();
  for (std::size_t i = 0; i < protocols.size(); ++i) {
    StormProtocolResult& p = state.result.protocols[i];
    p.utilization = get_summary(r);
    p.stretch = get_summary(r);
    p.delivered_pps = r.f64();
    p.lost_pps = r.f64();
    p.stranded_pps = r.f64();
    p.overloaded_links = r.u64();
    p.overloaded_scenarios = r.u64();
    p.lossy_scenarios = r.u64();
    p.rerouted_flows = r.u64();
    state.utilization_q[i] = get_p2_set(r, config.quantiles);
    state.stretch_q[i] = get_p2_set(r, config.quantiles);
    state.worst[i] = get_top_k(r, config.top_k);
  }
  if (!r.exhausted()) {
    throw CheckpointError("storm checkpoint: trailing bytes (schema mismatch)");
  }
}

/// Exact quantile of a probability-weighted sample set: the smallest value
/// whose cumulative probability reaches q (values sorted ascending).
double weighted_quantile(std::vector<std::pair<double, double>>& samples, double q,
                         double total) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  double cumulative = 0.0;
  for (const auto& [value, probability] : samples) {
    cumulative += probability;
    if (cumulative >= q * total) return value;
  }
  return samples.back().first;
}

}  // namespace

StormRunResult run_storm_experiment_resilient(
    const graph::Graph& g, const traffic::TrafficMatrix& demand,
    const traffic::CapacityPlan& plan, const net::StormModel& model,
    const std::vector<NamedFactory>& protocols, const StormSweepConfig& config,
    sim::SweepExecutor& executor, const StormRunOptions& options) {
  validate_inputs(g, demand, plan, model, protocols);
  validate_quantiles(config.quantiles);
  if (config.scenarios == 0) {
    throw std::invalid_argument("run_storm_experiment: scenarios must be > 0");
  }
  if (options.persist_checkpoint && options.checkpoint_cadence.any() &&
      options.control == nullptr) {
    throw std::invalid_argument(
        "run_storm_experiment_resilient: auto-checkpointing requires a "
        "RunControl (an uncontrolled run cannot be interrupted, so a cadence "
        "on one is a configuration bug)");
  }

  std::vector<sim::FlowSpec> flows;
  std::vector<double> demands;
  collect_demand_flows(demand, flows, demands);
  double offered = 0.0;
  for (const double d : demands) offered += d;

  // Pristine-pass products, built once and shared read-only by all workers.
  route::ScenarioRoutingCache pristine_cache;
  const std::vector<ProtocolIndex> indexes =
      build_storm_indexes(g, model.catalog(), protocols, flows, demands, pristine_cache);

  // Calm scenarios (no failed group) are the common case under realistic
  // outage probabilities; their cell is the pristine cell, computed once here
  // with the same code path a live evaluation would take.
  const auto pristine_component = graph::connected_components(g);
  std::vector<CellOutcome> pristine_cells(protocols.size());
  {
    const net::Network pristine(g);
    sim::BatchResult batch;
    traffic::LoadMap load;
    traffic::IncidenceScratch scratch;
    for (std::size_t i = 0; i < protocols.size(); ++i) {
      pristine_cells[i] = evaluate_storm_cell(
          g, pristine, pristine_component, protocols[i], pristine_cache,
          indexes[i].flows, indexes[i].groups, {}, indexes[i].pristine_costs, flows,
          demands, offered, plan, batch, load, scratch);
    }
  }

  // Sweep state: the reducers a checkpoint carries.  Fresh here, then
  // overwritten by the resume blob when one was given.
  StormState state;
  state.result.flows_per_scenario = flows.size();
  state.result.offered_pps = offered;
  state.result.protocols.resize(protocols.size());
  for (std::size_t i = 0; i < protocols.size(); ++i) {
    state.result.protocols[i].name = protocols[i].name;
    state.result.protocols[i].quantiles = config.quantiles;
  }
  state.utilization_q.assign(protocols.size(), P2QuantileSet(config.quantiles));
  state.stretch_q.assign(protocols.size(), P2QuantileSet(config.quantiles));
  state.worst.assign(protocols.size(), TopK<StormScenarioRecord>(config.top_k));

  StormRunResult run;
  if (!options.resume_from.empty()) {
    restore_storm_state(options.resume_from, config, protocols, state);
    run.resumed = true;
  }
  const std::size_t offset = state.completed;
  const std::size_t remaining = config.scenarios - offset;
  const sim::FaultPlan* faults =
      options.control == nullptr ? nullptr : options.control->fault_plan();
  const std::size_t group_count = model.catalog().group_count();

  // Flat-memory plumbing: a slot ring of the executor's reorder window, one
  // storm/component scratch and one overlay network per worker, and the
  // streaming reducers.  Nothing here grows with config.scenarios.
  struct WorkerScratch {
    net::StormSample sample;
    graph::ComponentScratch components;
  };
  struct Slot {
    std::vector<CellOutcome> cells;  // per protocol
    std::vector<std::size_t> groups;
    std::size_t failed_edges = 0;
    bool calm = false;
    bool disconnected = false;
  };
  const std::size_t window = executor.default_ordered_window();
  std::vector<Slot> slots(window);
  std::vector<WorkerScratch> scratches(executor.thread_count());
  std::vector<net::Network> networks;
  networks.reserve(executor.thread_count());
  for (std::size_t w = 0; w < executor.thread_count(); ++w) networks.emplace_back(g);

  StormExperimentResult& result = state.result;
  std::vector<P2QuantileSet>& utilization_q = state.utilization_q;
  std::vector<P2QuantileSet>& stretch_q = state.stretch_q;
  std::vector<TopK<StormScenarioRecord>>& worst = state.worst;

  const sim::SweepExecutor::UnitFn unit_fn = [&](std::size_t unit,
                                                 sim::WorkerContext& ctx) {
    // Executor units are run-relative; `scenario` is the absolute index the
    // RNG stream, the top-K ids and the resume cursor are keyed on.  The
    // explicit reseed makes a resumed unit draw the stream of its absolute
    // scenario (for offset 0 it recomputes exactly what the executor seeded).
    const std::size_t scenario = offset + unit;
    ctx.rng() = graph::Rng(sim::split_seed(config.seed, scenario));
    Slot& slot = slots[unit % window];
    WorkerScratch& ws = scratches[ctx.worker()];
    net::Network& network = networks[ctx.worker()];

    model.sample(ctx.rng(), ws.sample);
    if (faults != nullptr && faults->malformed(unit)) {
      // Corrupt the draw the way a broken sampler or decoder would: a risk
      // group the catalog does not have.  Validation below must contain it.
      ws.sample.groups.push_back(group_count);
    }
    for (const std::size_t gid : ws.sample.groups) {
      if (gid >= group_count) {
        throw std::runtime_error("storm sweep: malformed scenario " +
                                 std::to_string(scenario) + ": risk group " +
                                 std::to_string(gid) + " out of range (catalog has " +
                                 std::to_string(group_count) + ")");
      }
    }
    slot.groups.assign(ws.sample.groups.begin(), ws.sample.groups.end());
    slot.failed_edges = ws.sample.failures.size();
    slot.calm = ws.sample.groups.empty();
    slot.disconnected = false;
    slot.cells.resize(protocols.size());
    if (slot.calm) {
      for (std::size_t i = 0; i < protocols.size(); ++i) {
        slot.cells[i] = pristine_cells[i];
      }
      return;
    }

    for (const graph::EdgeId e : ws.sample.failures.elements()) {
      network.fail_link(e);
    }
    slot.disconnected =
        graph::connected_components_into(g, &ws.sample.failures, ws.components) > 1;
    for (std::size_t i = 0; i < protocols.size(); ++i) {
      slot.cells[i] = evaluate_storm_cell(
          g, network, ws.components.component, protocols[i], ctx.routes,
          indexes[i].flows, indexes[i].groups, slot.groups,
          indexes[i].pristine_costs, flows, demands, offered, plan, ctx.batch,
          ctx.load, ctx.incidence);
    }
    for (const graph::EdgeId e : ws.sample.failures.elements()) {
      network.restore_link(e);
    }
  };
  const sim::SweepExecutor::ReduceFn reduce_fn = [&](std::size_t unit) {
    const std::size_t scenario = offset + unit;
    const Slot& slot = slots[unit % window];
    result.failed_groups.add(static_cast<double>(slot.groups.size()));
    result.failed_edges.add(static_cast<double>(slot.failed_edges));
    if (slot.calm) ++result.calm_scenarios;
    if (slot.disconnected) ++result.disconnected_scenarios;
    for (std::size_t i = 0; i < protocols.size(); ++i) {
      const CellOutcome& cell = slot.cells[i];
      const traffic::CongestionMetrics& m = cell.metrics;
      StormProtocolResult& p = result.protocols[i];
      p.utilization.add(m.max_utilization);
      p.stretch.add(cell.max_stretch);
      utilization_q[i].add(m.max_utilization);
      stretch_q[i].add(cell.max_stretch);
      p.delivered_pps += m.delivered_pps;
      p.lost_pps += m.lost_pps;
      p.stranded_pps += m.stranded_pps;
      p.overloaded_links += m.overloaded_links;
      if (m.overloaded_links > 0) ++p.overloaded_scenarios;
      if (m.lost_pps > 0.0) ++p.lossy_scenarios;
      p.rerouted_flows += cell.rerouted;
      worst[i].add(m.max_utilization, scenario,
                   StormScenarioRecord{m.max_utilization, cell.max_stretch,
                                       m.lost_pps, m.stranded_pps, slot.groups,
                                       slot.failed_edges});
    }
  };

  if (remaining == 0) {
    run.outcome.stop_reason = sim::StopReason::kCompleted;
  } else if (options.control == nullptr) {
    // Uncontrolled: the legacy run_ordered, with its rethrow-on-error
    // semantics (SweepUnitError) preserved exactly.
    executor.run_ordered(remaining, unit_fn, reduce_fn, config.seed);
    run.outcome.completed_units = remaining;
  } else if (options.persist_checkpoint && options.checkpoint_cadence.any()) {
    // Periodic durability: the monitor thread seals the reducers at its
    // watermark k (under the executor's reduce lock, so the blob is exactly
    // the prefix [0, k)) and hands the ABSOLUTE cursor offset + k to the
    // caller's persist hook off-lock.
    sim::AutoCheckpoint auto_ckpt;
    auto_ckpt.cadence = options.checkpoint_cadence;
    auto_ckpt.serialize = [&](std::size_t k) {
      return serialize_storm_state(state, offset + k, config, protocols,
                                   faults != nullptr && faults->fail_checkpoint());
    };
    auto_ckpt.persist = [&](std::size_t k, std::string&& blob) {
      options.persist_checkpoint(offset + k, std::move(blob));
    };
    run.outcome = executor.run_ordered(remaining, unit_fn, reduce_fn,
                                       *options.control, auto_ckpt, config.seed);
  } else {
    run.outcome = executor.run_ordered(remaining, unit_fn, reduce_fn,
                                       *options.control, config.seed);
  }
  state.completed = offset + run.outcome.completed_units;
  run.completed_scenarios = state.completed;

  result.scenarios = state.completed;
  for (std::size_t i = 0; i < protocols.size(); ++i) {
    result.protocols[i].utilization_quantiles = utilization_q[i].estimates();
    result.protocols[i].stretch_quantiles = stretch_q[i].estimates();
    result.protocols[i].worst = worst[i].sorted();
  }

  // Always emit a checkpoint at the new cursor; a serialization failure is
  // itself contained (the in-memory result stays valid, the caller sees why
  // the blob is missing).
  try {
    run.checkpoint = serialize_storm_state(
        state, state.completed, config, protocols,
        faults != nullptr && faults->fail_checkpoint());
  } catch (const CheckpointError& e) {
    run.checkpoint.clear();
    run.checkpoint_error = e.what();
  }
  run.result = std::move(state.result);
  return run;
}

StormExperimentResult run_storm_experiment(
    const graph::Graph& g, const traffic::TrafficMatrix& demand,
    const traffic::CapacityPlan& plan, const net::StormModel& model,
    const std::vector<NamedFactory>& protocols, const StormSweepConfig& config,
    sim::SweepExecutor& executor) {
  return run_storm_experiment_resilient(g, demand, plan, model, protocols, config,
                                        executor)
      .result;
}

StormOracleResult run_exhaustive_storm(const graph::Graph& g,
                                       const traffic::TrafficMatrix& demand,
                                       const traffic::CapacityPlan& plan,
                                       const net::IndependentOutages& model,
                                       const std::vector<NamedFactory>& protocols,
                                       const std::vector<double>& quantiles) {
  validate_inputs(g, demand, plan, model, protocols);
  validate_quantiles(quantiles);

  std::vector<sim::FlowSpec> flows;
  std::vector<double> demands;
  collect_demand_flows(demand, flows, demands);
  double offered = 0.0;
  for (const double d : demands) offered += d;

  route::ScenarioRoutingCache cache;
  const std::vector<ProtocolIndex> indexes =
      build_storm_indexes(g, model.catalog(), protocols, flows, demands, cache);

  const std::vector<net::WeightedScenario> enumeration =
      net::enumerate_outage_scenarios(model);

  StormOracleResult result;
  result.scenarios = enumeration.size();
  result.protocols.resize(protocols.size());
  for (std::size_t i = 0; i < protocols.size(); ++i) {
    result.protocols[i].name = protocols[i].name;
  }

  // Weighted per-scenario metric samples per protocol, kept for the exact
  // quantile pass; 2^G entries, which the <= 20 group gate keeps bounded.
  std::vector<std::vector<std::pair<double, double>>> util_samples(protocols.size());
  std::vector<std::vector<std::pair<double, double>>> stretch_samples(protocols.size());

  net::Network network(g);
  graph::EdgeSet failures(g.edge_count());
  graph::ComponentScratch components;
  sim::BatchResult batch;
  traffic::LoadMap load;
  traffic::IncidenceScratch scratch;

  for (const net::WeightedScenario& scenario : enumeration) {
    result.total_probability += scenario.probability;

    failures.clear();
    for (const std::size_t gid : scenario.groups) {
      for (const graph::EdgeId e : model.catalog().members(gid)) failures.insert(e);
    }
    for (const graph::EdgeId e : failures.elements()) network.fail_link(e);
    graph::connected_components_into(g, &failures, components);

    for (std::size_t i = 0; i < protocols.size(); ++i) {
      const CellOutcome cell = evaluate_storm_cell(
          g, network, components.component, protocols[i], cache, indexes[i].flows,
          indexes[i].groups, scenario.groups, indexes[i].pristine_costs, flows,
          demands, offered, plan, batch, load, scratch);
      StormOracleProtocol& p = result.protocols[i];
      const double w = scenario.probability;
      p.mean_max_utilization += w * cell.metrics.max_utilization;
      p.mean_max_stretch += w * cell.max_stretch;
      p.expected_delivered_pps += w * cell.metrics.delivered_pps;
      p.expected_lost_pps += w * cell.metrics.lost_pps;
      p.expected_stranded_pps += w * cell.metrics.stranded_pps;
      if (cell.metrics.overloaded_links > 0) p.overload_probability += w;
      if (cell.metrics.lost_pps > 0.0) p.loss_probability += w;
      util_samples[i].emplace_back(cell.metrics.max_utilization, w);
      stretch_samples[i].emplace_back(cell.max_stretch, w);
    }
    for (const graph::EdgeId e : failures.elements()) network.restore_link(e);
  }

  for (std::size_t i = 0; i < protocols.size(); ++i) {
    StormOracleProtocol& p = result.protocols[i];
    p.utilization_quantiles.reserve(quantiles.size());
    p.stretch_quantiles.reserve(quantiles.size());
    for (const double q : quantiles) {
      p.utilization_quantiles.push_back(
          weighted_quantile(util_samples[i], q, result.total_probability));
      p.stretch_quantiles.push_back(
          weighted_quantile(stretch_samples[i], q, result.total_probability));
    }
  }
  return result;
}

}  // namespace pr::analysis
