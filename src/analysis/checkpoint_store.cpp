#include "analysis/checkpoint_store.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "analysis/checkpoint.hpp"
#include "util/atomic_file.hpp"

namespace pr::analysis {
namespace fs = std::filesystem;

namespace {

constexpr std::string_view kPrefix = "ckpt-";
constexpr std::string_view kSuffix = ".prckpt";
constexpr std::string_view kQuarantineDir = "quarantine";

/// Parses "ckpt-<digits>.prckpt" -> generation; nullopt for anything else
/// (temps, quarantine dir, stray files), so foreign files are simply ignored.
std::optional<std::uint64_t> parse_generation(std::string_view name) {
  if (name.size() <= kPrefix.size() + kSuffix.size()) return std::nullopt;
  if (name.substr(0, kPrefix.size()) != kPrefix) return std::nullopt;
  if (name.substr(name.size() - kSuffix.size()) != kSuffix) return std::nullopt;
  const std::string_view digits =
      name.substr(kPrefix.size(), name.size() - kPrefix.size() - kSuffix.size());
  if (digits.empty() ||
      digits.find_first_not_of("0123456789") != std::string_view::npos) {
    return std::nullopt;
  }
  errno = 0;
  const unsigned long long value = std::strtoull(std::string(digits).c_str(), nullptr, 10);
  if (errno != 0) return std::nullopt;
  return static_cast<std::uint64_t>(value);
}

[[noreturn]] void fail(const std::string& what, const std::error_code& ec) {
  throw CheckpointStoreError("checkpoint store: " + what + ": " + ec.message());
}

}  // namespace

std::string CheckpointStore::generation_filename(std::uint64_t generation) {
  char digits[32];
  std::snprintf(digits, sizeof(digits), "%08llu",
                static_cast<unsigned long long>(generation));
  return std::string(kPrefix) + digits + std::string(kSuffix);
}

std::string CheckpointStore::generation_path(std::uint64_t generation) const {
  return directory_ + "/" + generation_filename(generation);
}

CheckpointStore::CheckpointStore(std::string directory, CheckpointStoreOptions options)
    : directory_(std::move(directory)), options_(options) {
  if (options_.keep_generations == 0) {
    throw CheckpointStoreError(
        "checkpoint store: keep_generations must be >= 1 (a store that keeps "
        "nothing cannot resume anything)");
  }
  std::error_code ec;
  fs::create_directories(directory_, ec);
  if (ec) fail("cannot create directory '" + directory_ + "'", ec);
  // Continue numbering where a previous process stopped: monotonic
  // generations are what let the supervisor (and humans) order the story of
  // a crash-looping sweep across incarnations.
  for (const std::uint64_t gen : generations()) latest_ = std::max(latest_, gen);
}

std::vector<std::uint64_t> CheckpointStore::generations() const {
  std::vector<std::uint64_t> out;
  std::error_code ec;
  fs::directory_iterator it(directory_, ec);
  if (ec) fail("cannot list directory '" + directory_ + "'", ec);
  for (const fs::directory_entry& entry : it) {
    if (const auto gen = parse_generation(entry.path().filename().string())) {
      out.push_back(*gen);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::uint64_t CheckpointStore::persist(std::string_view blob) {
  const std::uint64_t generation = latest_ + 1;
  try {
    util::atomic_write_file(generation_path(generation), blob);
  } catch (const util::AtomicWriteError& e) {
    throw CheckpointStoreError(std::string("checkpoint store: persist of generation ") +
                               std::to_string(generation) + " failed: " + e.what());
  }
  latest_ = generation;
  rotate();
  return generation;
}

void CheckpointStore::rotate() {
  std::vector<std::uint64_t> on_disk = generations();
  if (on_disk.size() <= options_.keep_generations) return;
  const std::size_t drop = on_disk.size() - options_.keep_generations;
  for (std::size_t i = 0; i < drop; ++i) {
    std::error_code ec;
    fs::remove(generation_path(on_disk[i]), ec);
    // A rotation failure is not worth failing a persist over: the new
    // generation IS durable, the directory is just larger than asked.
    (void)ec;
  }
}

void CheckpointStore::quarantine(std::uint64_t generation, const std::string& reason) {
  const std::string quarantine_dir = directory_ + "/" + std::string(kQuarantineDir);
  std::error_code ec;
  fs::create_directories(quarantine_dir, ec);
  if (!ec) {
    fs::rename(generation_path(generation),
               quarantine_dir + "/" + generation_filename(generation), ec);
  }
  if (ec) {
    // Could not move the evidence aside (read-only fs?): delete nothing,
    // report nothing fatal -- the fallback scan already skips this
    // generation; it will just be re-diagnosed on the next load.
    return;
  }
  ++quarantined_;
  std::ofstream note(quarantine_dir + "/" + generation_filename(generation) + ".reason");
  note << reason << "\n";
}

std::optional<StoredCheckpoint> CheckpointStore::load_latest() {
  std::vector<std::uint64_t> on_disk = generations();
  for (auto it = on_disk.rbegin(); it != on_disk.rend(); ++it) {
    const std::uint64_t generation = *it;
    std::string blob;
    {
      std::ifstream in(generation_path(generation), std::ios::binary);
      if (!in) {
        quarantine(generation, "unreadable generation file");
        continue;
      }
      std::ostringstream buffer;
      buffer << in.rdbuf();
      if (!in.good() && !in.eof()) {
        quarantine(generation, "read error mid-file");
        continue;
      }
      blob = std::move(buffer).str();
    }
    try {
      // Structural validation only: magic + checksum + well-formed framing.
      // Constructing the reader checks all three up front.
      CheckpointReader reader(blob);
      (void)reader;
    } catch (const CheckpointError& e) {
      quarantine(generation, e.what());
      continue;
    }
    latest_ = std::max(latest_, generation);
    return StoredCheckpoint{generation, std::move(blob)};
  }
  return std::nullopt;
}

}  // namespace pr::analysis
