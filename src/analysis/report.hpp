// Plain-text rendering of experiment results: the same rows/series the paper
// plots, printable by every bench binary.
#pragma once

#include <span>
#include <string>
#include <utility>
#include <vector>

#include "analysis/coverage.hpp"
#include "analysis/stretch.hpp"

namespace pr::analysis {

/// The x axis of the paper's Figure 2: stretch 1..15.
[[nodiscard]] std::vector<double> paper_stretch_axis();

/// Renders a CCDF table: one row per x, one column per named series.
[[nodiscard]] std::string format_ccdf_table(
    std::span<const double> xs,
    const std::vector<std::pair<std::string, std::vector<double>>>& series);

/// Renders the Figure-2-style comparison for a finished stretch experiment.
[[nodiscard]] std::string format_stretch_report(const StretchExperimentResult& result,
                                                std::span<const double> xs);

/// Renders the coverage table of ablation A2.
[[nodiscard]] std::string format_coverage_report(const CoverageResult& result);

}  // namespace pr::analysis
