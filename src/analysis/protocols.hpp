// Pre-wired protocol suite shared by benches, examples and integration tests.
//
// Owns everything a comparison needs exactly once per topology: the pristine
// routing tables (with the PR discriminator column), the offline cellular
// embedding and the cycle-following tables derived from it.  Factories hand
// out per-scenario protocol instances wired to that shared state.
#pragma once

#include <vector>

#include "analysis/stretch.hpp"
#include "core/cycle_table.hpp"
#include "core/pr_protocol.hpp"
#include "embed/embedder.hpp"
#include "route/fcp.hpp"
#include "route/lfa.hpp"
#include "route/reconvergence.hpp"
#include "route/routing_db.hpp"
#include "route/static_spf.hpp"

namespace pr::analysis {

/// Owns the per-topology state; factories hand out thin protocol instances
/// that reference it, so the suite must outlive every experiment that uses
/// its factories.
class ProtocolSuite {
 public:
  /// Computes tables and embedding for `g` (which must outlive the suite).
  explicit ProtocolSuite(const graph::Graph& g, embed::EmbedOptions embed_opts = {},
                         route::DiscriminatorKind dd_kind =
                             route::DiscriminatorKind::kHops);

  /// Builds the suite around an externally chosen embedding (e.g. the paper's
  /// Figure-1 rotation, or an ablation's random rotation).
  ProtocolSuite(const graph::Graph& g, embed::Embedding embedding,
                route::DiscriminatorKind dd_kind = route::DiscriminatorKind::kHops);

  ProtocolSuite(const ProtocolSuite&) = delete;
  ProtocolSuite& operator=(const ProtocolSuite&) = delete;

  [[nodiscard]] NamedFactory reconvergence() const;
  [[nodiscard]] NamedFactory fcp() const;
  [[nodiscard]] NamedFactory pr() const;
  [[nodiscard]] NamedFactory pr_single_bit() const;
  [[nodiscard]] NamedFactory lfa() const;
  [[nodiscard]] NamedFactory lfa_node_protecting() const;
  /// LFA with PER-SCENARIO alternates: the classic variants above derive
  /// alternates from the pristine tables once (what a router knows before
  /// convergence); this one re-derives them from the scenario's converged
  /// tables -- fresh per scenario via `make`, incrementally resynced through
  /// ScenarioRoutingCache::lfa() via `make_cached`.
  [[nodiscard]] NamedFactory lfa_post_convergence() const;
  [[nodiscard]] NamedFactory spf() const;

  /// The trio the paper's Figure 2 compares, in plot order.
  [[nodiscard]] std::vector<NamedFactory> paper_trio() const;

  [[nodiscard]] const graph::Graph& graph() const noexcept { return *graph_; }
  [[nodiscard]] const route::RoutingDb& routes() const noexcept { return routes_; }
  [[nodiscard]] const embed::Embedding& embedding() const noexcept { return embedding_; }
  [[nodiscard]] const core::CycleFollowingTable& cycle_table() const noexcept {
    return cycles_;
  }

 private:
  const graph::Graph* graph_;
  embed::Embedding embedding_;
  route::RoutingDb routes_;
  core::CycleFollowingTable cycles_;
  /// Shared pristine-table LFA instances: the alternates depend only on
  /// routes_, so building one per scenario (the old factory behaviour) was
  /// pure waste -- an O(n^2 * degree) precompute per scenario.  forward() is
  /// read-only, so sweep workers may share these concurrently; `mutable`
  /// because the ForwardingProtocol interface is non-const while the suite's
  /// factories are const.
  mutable route::LfaRouting lfa_link_;
  mutable route::LfaRouting lfa_node_;
};

}  // namespace pr::analysis
