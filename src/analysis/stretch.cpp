#include "analysis/stretch.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace pr::analysis {

using graph::NodeId;

std::vector<double> ccdf(std::span<const double> samples, std::span<const double> xs) {
  std::vector<double> out;
  out.reserve(xs.size());
  if (samples.empty()) {
    out.assign(xs.size(), 0.0);
    return out;
  }
  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  for (double x : xs) {
    const auto first_greater = std::upper_bound(sorted.begin(), sorted.end(), x);
    const auto count = static_cast<double>(sorted.end() - first_greater);
    out.push_back(count / static_cast<double>(sorted.size()));
  }
  return out;
}

bool path_affected(const route::RoutingDb& routes, NodeId s, NodeId t,
                   const graph::EdgeSet& failures) {
  if (s == t || !routes.reachable(s, t)) return false;
  const auto& tree = routes.tree(t);
  NodeId v = s;
  while (v != t) {
    const graph::DartId d = tree.next_dart[v];
    if (failures.contains(graph::dart_edge(d))) return true;
    v = routes.graph().dart_head(d);
  }
  return false;
}

double ProtocolStretch::max_finite_stretch() const {
  double best = 0;
  for (double s : stretches) {
    if (std::isfinite(s)) best = std::max(best, s);
  }
  return best;
}

double ProtocolStretch::mean_finite_stretch() const {
  double sum = 0;
  std::size_t n = 0;
  for (double s : stretches) {
    if (std::isfinite(s)) {
      sum += s;
      ++n;
    }
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

StretchExperimentResult run_stretch_experiment(
    const graph::Graph& g, std::span<const graph::EdgeSet> scenarios,
    const std::vector<NamedFactory>& protocols) {
  if (protocols.empty()) {
    throw std::invalid_argument("run_stretch_experiment: no protocols given");
  }
  const route::RoutingDb pristine(g);

  StretchExperimentResult result;
  result.protocols.reserve(protocols.size());
  for (const auto& p : protocols) result.protocols.push_back(ProtocolStretch{p.name, {}, 0, 0});
  result.scenarios = scenarios.size();

  for (const auto& failures : scenarios) {
    net::Network network(g);
    for (graph::EdgeId e : failures.elements()) network.fail_link(e);

    // Fresh protocol instances see this scenario's link state at build time
    // (ReconvergedRouting computes its post-convergence tables here).
    std::vector<std::unique_ptr<net::ForwardingProtocol>> instances;
    instances.reserve(protocols.size());
    for (const auto& p : protocols) instances.push_back(p.make(network));

    for (NodeId s = 0; s < g.node_count(); ++s) {
      for (NodeId t = 0; t < g.node_count(); ++t) {
        if (s == t || !path_affected(pristine, s, t, failures)) continue;
        ++result.affected_pairs;
        const double base_cost = pristine.cost(s, t);
        for (std::size_t i = 0; i < instances.size(); ++i) {
          const auto trace = net::route_packet(network, *instances[i], s, t);
          auto& agg = result.protocols[i];
          if (trace.delivered()) {
            ++agg.delivered;
            agg.stretches.push_back(trace.cost / base_cost);
          } else {
            ++agg.dropped;
            agg.stretches.push_back(std::numeric_limits<double>::infinity());
          }
        }
      }
    }
  }
  return result;
}

}  // namespace pr::analysis
