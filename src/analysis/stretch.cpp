#include "analysis/stretch.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "sim/forwarding_engine.hpp"
#include "sim/parallel_sweep.hpp"

namespace pr::analysis {

using graph::NodeId;

std::vector<double> ccdf(std::span<const double> samples, std::span<const double> xs) {
  std::vector<double> out;
  out.reserve(xs.size());
  if (samples.empty()) {
    out.assign(xs.size(), 0.0);
    return out;
  }
  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  for (double x : xs) {
    const auto first_greater = std::upper_bound(sorted.begin(), sorted.end(), x);
    const auto count = static_cast<double>(sorted.end() - first_greater);
    out.push_back(count / static_cast<double>(sorted.size()));
  }
  return out;
}

bool path_affected(const route::RoutingDb& routes, NodeId s, NodeId t,
                   const graph::EdgeSet& failures) {
  if (s == t || !routes.reachable(s, t)) return false;
  NodeId v = s;
  while (v != t) {
    const graph::DartId d = routes.next_dart(v, t);
    if (failures.contains(graph::dart_edge(d))) return true;
    v = routes.graph().dart_head(d);
  }
  return false;
}

double ProtocolStretch::max_finite_stretch() const {
  double best = 0;
  for (double s : stretches) {
    if (std::isfinite(s)) best = std::max(best, s);
  }
  return best;
}

double ProtocolStretch::mean_finite_stretch() const {
  double sum = 0;
  std::size_t n = 0;
  for (double s : stretches) {
    if (std::isfinite(s)) {
      sum += s;
      ++n;
    }
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

namespace {

/// Flow list of one scenario in the canonical (s, t) order every sweep uses:
/// all ordered pairs whose pristine path crosses a failed edge.
void collect_affected_flows(const graph::Graph& g, const route::RoutingDb& pristine,
                            const graph::EdgeSet& failures,
                            std::vector<sim::FlowSpec>& flows,
                            std::vector<double>& base_costs) {
  flows.clear();
  base_costs.clear();
  for (NodeId s = 0; s < g.node_count(); ++s) {
    for (NodeId t = 0; t < g.node_count(); ++t) {
      if (s == t || !path_affected(pristine, s, t, failures)) continue;
      flows.push_back(sim::FlowSpec{s, t});
      base_costs.push_back(pristine.cost(s, t));
    }
  }
}

}  // namespace

StretchExperimentResult run_stretch_experiment(
    const graph::Graph& g, std::span<const graph::EdgeSet> scenarios,
    const std::vector<NamedFactory>& protocols) {
  if (protocols.empty()) {
    throw std::invalid_argument("run_stretch_experiment: no protocols given");
  }
  const route::RoutingDb pristine(g);

  StretchExperimentResult result;
  result.protocols.reserve(protocols.size());
  for (const auto& p : protocols) result.protocols.push_back(ProtocolStretch{p.name, {}, 0, 0});
  result.scenarios = scenarios.size();

  // Reused across scenarios and protocols: once warm, a sweep allocates
  // nothing per trial (the point of the stats-only batched engine), and
  // reconverging protocols borrow delta-repaired tables from the cache
  // instead of rebuilding n Dijkstras per scenario.
  std::vector<sim::FlowSpec> flows;
  std::vector<double> base_costs;
  sim::BatchResult batch;
  route::ScenarioRoutingCache routing_cache;

  for (const auto& failures : scenarios) {
    net::Network network(g);
    for (graph::EdgeId e : failures.elements()) network.fail_link(e);

    collect_affected_flows(g, pristine, failures, flows, base_costs);
    result.affected_pairs += flows.size();
    if (flows.empty()) continue;

    // Fresh protocol instances see this scenario's link state at build time
    // (ReconvergedRouting borrows its post-convergence tables here).
    for (std::size_t i = 0; i < protocols.size(); ++i) {
      const auto instance = make_protocol(protocols[i], network, routing_cache);
      sim::route_batch(network, *instance, flows, sim::TraceMode::kStats, batch);
      auto& agg = result.protocols[i];
      for (std::size_t f = 0; f < batch.size(); ++f) {
        if (batch[f].delivered()) {
          ++agg.delivered;
          agg.stretches.push_back(batch[f].cost / base_costs[f]);
        } else {
          ++agg.dropped;
          agg.stretches.push_back(std::numeric_limits<double>::infinity());
        }
      }
    }
  }
  return result;
}

StretchExperimentResult run_stretch_experiment(
    const graph::Graph& g, std::span<const graph::EdgeSet> scenarios,
    const std::vector<NamedFactory>& protocols, sim::SweepExecutor& executor) {
  if (protocols.empty()) {
    throw std::invalid_argument("run_stretch_experiment: no protocols given");
  }
  const route::RoutingDb pristine(g);

  // One slot per scenario, written by exactly one worker each; stretch
  // samples land here in the serial sweep's per-scenario order.
  struct ScenarioPartial {
    std::size_t affected = 0;
    std::vector<std::size_t> delivered;          // per protocol
    std::vector<std::vector<double>> stretches;  // per protocol, in flow order
  };
  std::vector<ScenarioPartial> partials(scenarios.size());

  executor.run(scenarios.size(), [&](std::size_t unit, sim::WorkerContext& ctx) {
    const graph::EdgeSet& failures = scenarios[unit];
    net::Network network(g);
    for (graph::EdgeId e : failures.elements()) network.fail_link(e);

    collect_affected_flows(g, pristine, failures, ctx.flows, ctx.base_costs);
    ScenarioPartial& partial = partials[unit];
    partial.affected = ctx.flows.size();
    partial.delivered.assign(protocols.size(), 0);
    partial.stretches.resize(protocols.size());
    if (ctx.flows.empty()) return;

    for (std::size_t i = 0; i < protocols.size(); ++i) {
      const auto instance = make_protocol(protocols[i], network, ctx.routes);
      sim::route_batch(network, *instance, ctx.flows, sim::TraceMode::kStats,
                       ctx.batch);
      auto& samples = partial.stretches[i];
      samples.reserve(ctx.batch.size());
      for (std::size_t f = 0; f < ctx.batch.size(); ++f) {
        if (ctx.batch[f].delivered()) {
          ++partial.delivered[i];
          samples.push_back(ctx.batch[f].cost / ctx.base_costs[f]);
        } else {
          samples.push_back(std::numeric_limits<double>::infinity());
        }
      }
    }
  });

  // Canonical-order merge: concatenating per-scenario samples in scenario
  // order reproduces the serial sweep's sample sequence exactly.
  StretchExperimentResult result;
  result.scenarios = scenarios.size();
  result.protocols.reserve(protocols.size());
  for (const auto& p : protocols) result.protocols.push_back(ProtocolStretch{p.name, {}, 0, 0});
  for (std::size_t i = 0; i < protocols.size(); ++i) {
    std::size_t samples = 0;
    for (const ScenarioPartial& partial : partials) {
      if (i < partial.stretches.size()) samples += partial.stretches[i].size();
    }
    result.protocols[i].stretches.reserve(samples);
  }
  for (ScenarioPartial& partial : partials) {
    result.affected_pairs += partial.affected;
    for (std::size_t i = 0; i < partial.stretches.size(); ++i) {
      auto& agg = result.protocols[i];
      agg.delivered += partial.delivered[i];
      agg.dropped += partial.stretches[i].size() - partial.delivered[i];
      agg.stretches.insert(agg.stretches.end(), partial.stretches[i].begin(),
                           partial.stretches[i].end());
      // Release each shard as it merges so peak memory tracks the serial
      // sweep instead of holding a second full copy of the sample set.
      std::vector<double>().swap(partial.stretches[i]);
    }
  }
  return result;
}

}  // namespace pr::analysis
