#include "analysis/checkpoint.hpp"

#include <bit>

#include "obs/telemetry.hpp"

namespace pr::analysis {
namespace {

constexpr std::string_view kMagic = "PRCKPT01";
constexpr std::size_t kChecksumBytes = 8;

/// FNV-1a 64 over the given bytes: cheap, byte-order free, and plenty to
/// catch the truncation/bit-rot class of corruption a checkpoint meets in
/// practice (it is an integrity check, not an authenticity one).
std::uint64_t fnv1a(std::string_view bytes) noexcept {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

void append_u64(std::string& out, std::uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<char>((value >> shift) & 0xff));
  }
}

std::uint64_t read_u64(std::string_view bytes, std::size_t at) noexcept {
  std::uint64_t value = 0;
  for (int i = 7; i >= 0; --i) {
    value = (value << 8) |
            static_cast<unsigned char>(bytes[at + static_cast<std::size_t>(i)]);
  }
  return value;
}

}  // namespace

CheckpointWriter::CheckpointWriter() {
  buffer_.append(kMagic);
  if (obs::enabled()) obs_start_ns_ = obs::now_ns();
}

void CheckpointWriter::u32(std::uint32_t value) {
  for (int shift = 0; shift < 32; shift += 8) {
    buffer_.push_back(static_cast<char>((value >> shift) & 0xff));
  }
}

void CheckpointWriter::u64(std::uint64_t value) { append_u64(buffer_, value); }

void CheckpointWriter::f64(double value) {
  append_u64(buffer_, std::bit_cast<std::uint64_t>(value));
}

void CheckpointWriter::str(std::string_view value) {
  u64(value.size());
  buffer_.append(value);
}

std::string CheckpointWriter::finish() {
  if (finished_) {
    throw CheckpointError("CheckpointWriter::finish: already finished");
  }
  finished_ = true;
  append_u64(buffer_, fnv1a(buffer_));
  if (obs::Counters* s = obs::sink(); s != nullptr) {
    s->add(obs::Counter::kCheckpoints);
    s->add(obs::Counter::kCheckpointBytes, buffer_.size());
    if (obs_start_ns_ != 0) {
      s->add_phase(obs::Phase::kCheckpoint, obs::now_ns() - obs_start_ns_);
    }
  }
  return std::move(buffer_);
}

CheckpointReader::CheckpointReader(std::string_view blob) : blob_(blob) {
  if (blob_.size() < kMagic.size() + kChecksumBytes) {
    throw CheckpointError("checkpoint: blob too short: " +
                          std::to_string(blob_.size()) + " bytes, need at least " +
                          std::to_string(kMagic.size() + kChecksumBytes) +
                          " (magic + checksum)");
  }
  if (blob_.substr(0, kMagic.size()) != kMagic) {
    throw CheckpointError("checkpoint: bad magic at offset 0 (not a " +
                          std::string(kMagic) + " blob)");
  }
  end_ = blob_.size() - kChecksumBytes;
  const std::uint64_t want = read_u64(blob_, end_);
  const std::uint64_t got = fnv1a(blob_.substr(0, end_));
  if (want != got) {
    throw CheckpointError("checkpoint: checksum mismatch at offset " +
                          std::to_string(end_) + " (corrupted blob)");
  }
  cursor_ = kMagic.size();
}

void CheckpointReader::need(std::size_t bytes, const char* field) const {
  if (end_ - cursor_ < bytes) {
    throw CheckpointError("checkpoint: truncated " + std::string(field) +
                          " at offset " + std::to_string(cursor_) + ": need " +
                          std::to_string(bytes) + " byte(s), " +
                          std::to_string(end_ - cursor_) +
                          " remain before checksum (schema mismatch?)");
  }
}

std::uint32_t CheckpointReader::u32() {
  need(4, "u32");
  std::uint32_t value = 0;
  for (int i = 3; i >= 0; --i) {
    value = (value << 8) |
            static_cast<unsigned char>(blob_[cursor_ + static_cast<std::size_t>(i)]);
  }
  cursor_ += 4;
  return value;
}

std::uint64_t CheckpointReader::u64() {
  need(8, "u64");
  const std::uint64_t value = read_u64(blob_, cursor_);
  cursor_ += 8;
  return value;
}

double CheckpointReader::f64() { return std::bit_cast<double>(u64()); }

std::string CheckpointReader::str() {
  const std::uint64_t length = u64();
  need(length, "str payload");
  std::string out(blob_.substr(cursor_, length));
  cursor_ += length;
  return out;
}

std::uint64_t checkpoint_digest(std::string_view bytes) noexcept {
  return fnv1a(bytes);
}

}  // namespace pr::analysis
