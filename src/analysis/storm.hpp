// Million-scenario storm sweeps: sampled correlated-failure Monte Carlo with
// flat-memory streaming reduction.
//
// The traffic sweeps in analysis/traffic.hpp keep one metrics row per
// scenario -- right for hundreds of enumerated failure sets, fatal for the
// sampled storms a net::StormModel can produce forever.  This driver streams
// instead: scenarios are drawn on the fly from per-unit split-seed RNG
// streams, each is priced with the incremental LoadMap core (pristine replay
// + affected-flow re-route, probed through the SRLG-grained
// traffic::GroupIncidence), and everything folds into O(1) reducer state --
// P^2 quantile markers, running sums, a bounded top-K worst-scenario heap --
// through SweepExecutor::run_ordered, whose canonical-order reduce hook makes
// every reducer bit-identical at any thread count.  A 10^6-scenario sweep
// holds one slot ring of executor window size, per-worker scratch, and the
// reducers; nothing grows with the scenario count.
//
// Sampled estimates are validated against run_exhaustive_storm(), which
// enumerates all 2^G group subsets of an IndependentOutages model with their
// exact probabilities (net::enumerate_outage_scenarios) and computes exact
// probability-weighted means and quantiles: sampled values must converge to
// the oracle's as the scenario count grows (law of large numbers, NOT
// bit-identity -- bit-identity holds across thread counts of one sampled
// sweep, convergence across estimators).
//
// Resilience (PR 8): run_storm_experiment_resilient runs the same sweep
// under a sim::RunControl -- deadline, cancel, scenario budget, fault plan --
// and instead of all-or-nothing returns the canonical prefix it completed
// plus a versioned checkpoint blob.  Feeding that blob back via
// StormRunOptions::resume_from continues the sweep in a later call (or a
// later process) to results BIT-IDENTICAL to an uninterrupted run: the
// executor's deterministic truncation contract means the interrupted state
// is a clean prefix [0, k), split-seed RNG streams are stateless per
// scenario, and every reducer serializes its exact state
// (analysis/checkpoint.hpp).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/reducers.hpp"
#include "analysis/stretch.hpp"
#include "net/storm_model.hpp"
#include "sim/parallel_sweep.hpp"
#include "traffic/capacity.hpp"
#include "traffic/demand.hpp"

namespace pr::analysis {

struct StormSweepConfig {
  std::size_t scenarios = 0;     ///< sampled scenario count (> 0)
  std::uint64_t seed = 0;        ///< roots the per-scenario RNG streams
  std::size_t top_k = 10;        ///< worst-scenario table size per protocol
  /// Quantiles tracked for the per-scenario max-utilization and max-stretch
  /// streams; each must lie in (0, 1).
  std::vector<double> quantiles{0.5, 0.9, 0.99};
};

/// What made a scenario bad enough for the top-K table.
struct StormScenarioRecord {
  double max_utilization = 0.0;
  double max_stretch = 1.0;  ///< worst delivered affected-flow stretch
  double lost_pps = 0.0;
  double stranded_pps = 0.0;
  std::vector<std::size_t> failed_groups;  ///< ascending
  std::size_t failed_edges = 0;            ///< size of the group union
};

/// One protocol's streamed outcome over the whole storm.
struct StormProtocolResult {
  std::string name;

  /// Per-scenario max link utilization stream (count == scenarios).
  RunningSummary utilization;
  /// Per-scenario worst stretch among delivered affected flows (1.0 for calm
  /// scenarios and scenarios whose affected flows all dropped).
  RunningSummary stretch;

  /// config.quantiles and the matching P^2 estimates over the two streams.
  std::vector<double> quantiles;
  std::vector<double> utilization_quantiles;
  std::vector<double> stretch_quantiles;

  /// Volume sums over all scenarios, accumulated in canonical scenario order.
  double delivered_pps = 0.0;
  double lost_pps = 0.0;
  double stranded_pps = 0.0;

  std::size_t overloaded_links = 0;      ///< summed over scenarios
  std::size_t overloaded_scenarios = 0;  ///< scenarios with >= 1 overload
  std::size_t lossy_scenarios = 0;       ///< scenarios with lost_pps > 0
  std::size_t rerouted_flows = 0;        ///< affected flows actually re-routed

  /// Worst scenarios by max utilization (ties: earliest scenario id), key
  /// descending.  Entry::id is the scenario index, Entry::value the record.
  std::vector<TopK<StormScenarioRecord>::Entry> worst;

  /// Fraction of offered demand delivered across the sweep.
  [[nodiscard]] double delivered_fraction(double offered_pps,
                                          std::size_t scenarios) const {
    const double total = offered_pps * static_cast<double>(scenarios);
    return total == 0.0 ? 0.0 : delivered_pps / total;
  }
};

struct StormExperimentResult {
  std::vector<StormProtocolResult> protocols;
  std::size_t scenarios = 0;
  std::size_t flows_per_scenario = 0;
  double offered_pps = 0.0;  ///< per scenario (every scenario offers the matrix)

  /// Scenario-shape streams (protocol-independent): failed-group and
  /// failed-edge counts per scenario, plus how many scenarios were calm
  /// (no failed group) or partitioned the graph.
  RunningSummary failed_groups;
  RunningSummary failed_edges;
  std::size_t calm_scenarios = 0;
  std::size_t disconnected_scenarios = 0;
};

/// Samples config.scenarios scenarios from `model`, prices each against
/// `plan` under every protocol, and streams everything into the result's
/// reducers via run_ordered.  Scenario i is drawn from RNG stream
/// split_seed(config.seed, i), evaluated incrementally (pristine replay +
/// GroupIncidence-probed re-route), and reduced in canonical order: the
/// result is bit-identical for every executor thread count.  Memory is flat
/// in the scenario count.  Throws std::invalid_argument on empty protocol
/// lists, zero scenarios, mismatched matrix/plan sizes, or quantiles outside
/// (0, 1).
[[nodiscard]] StormExperimentResult run_storm_experiment(
    const graph::Graph& g, const traffic::TrafficMatrix& demand,
    const traffic::CapacityPlan& plan, const net::StormModel& model,
    const std::vector<NamedFactory>& protocols, const StormSweepConfig& config,
    sim::SweepExecutor& executor);

/// Knobs for a resilient storm run.
struct StormRunOptions {
  /// Stop signals + error policy + fault plan for the sweep; nullptr runs
  /// uncontrolled (to completion, worker exceptions rethrown as
  /// sim::SweepUnitError like run_storm_experiment).
  const sim::RunControl* control = nullptr;
  /// A checkpoint blob from a previous StormRunResult to resume from; empty
  /// starts fresh.  The blob must match this experiment exactly (same seed,
  /// scenario target, top_k, quantiles, protocol names, demand shape) --
  /// any mismatch or corruption throws CheckpointError.
  std::string_view resume_from{};
  /// Periodic auto-checkpointing during the sweep (sim::AutoCheckpoint under
  /// the hood): when `persist_checkpoint` is set and the cadence is active,
  /// the executor's monitor thread seals the reducer prefix [0, k) on cadence
  /// and hands `persist_checkpoint` the ABSOLUTE scenario cursor (resume
  /// offset included) plus the sealed blob -- typically forwarded straight to
  /// a CheckpointStore.  Requires `control` (throws std::invalid_argument
  /// otherwise: auto-checkpointing an uncontrolled run is a config bug).
  /// Durability only; results are bit-identical with or without it.
  sim::CheckpointCadence checkpoint_cadence{};
  std::function<void(std::size_t completed_scenarios, std::string&& blob)>
      persist_checkpoint;
};

/// Outcome of a resilient storm run: the (possibly partial) experiment
/// result over the first `completed_scenarios` scenarios, the executor's
/// stop report, and a checkpoint blob that resumes the sweep from exactly
/// here.  result.scenarios == completed_scenarios; every reducer holds the
/// canonical prefix [0, completed_scenarios) of the scenario stream, so
/// partial results are themselves bit-identical to a smaller run.
struct StormRunResult {
  StormExperimentResult result;
  sim::SweepOutcome outcome;
  /// Absolute scenario cursor (includes scenarios done before a resume).
  std::size_t completed_scenarios = 0;
  bool resumed = false;  ///< this run started from options.resume_from
  /// Sealed checkpoint at completed_scenarios; empty when serialization
  /// failed (see checkpoint_error) -- in-memory results are still valid.
  std::string checkpoint;
  std::string checkpoint_error;

  [[nodiscard]] bool complete() const noexcept {
    return outcome.stop_reason == sim::StopReason::kCompleted;
  }
};

/// run_storm_experiment under a RunControl, with checkpoint/resume.  The
/// sweep stops cooperatively at scenario boundaries on cancel/deadline/
/// budget and contains per-scenario failures per the control's error policy;
/// whatever the stop cause, the returned reducers cover exactly
/// [0, completed_scenarios) and resuming from the checkpoint -- at ANY
/// thread count -- finishes to results bit-identical to an uninterrupted
/// run.  Scenario draws are validated against the model's group catalog
/// (malformed samples are contained as unit errors, never dereferenced).
[[nodiscard]] StormRunResult run_storm_experiment_resilient(
    const graph::Graph& g, const traffic::TrafficMatrix& demand,
    const traffic::CapacityPlan& plan, const net::StormModel& model,
    const std::vector<NamedFactory>& protocols, const StormSweepConfig& config,
    sim::SweepExecutor& executor, const StormRunOptions& options = {});

/// One protocol's exact expectation under an enumerable outage model.
struct StormOracleProtocol {
  std::string name;
  double mean_max_utilization = 0.0;
  double mean_max_stretch = 0.0;
  /// Exact probability-weighted quantiles of the two per-scenario metrics
  /// (smallest value whose cumulative probability reaches q).
  std::vector<double> utilization_quantiles;
  std::vector<double> stretch_quantiles;
  double expected_delivered_pps = 0.0;  ///< per scenario
  double expected_lost_pps = 0.0;
  double expected_stranded_pps = 0.0;
  double overload_probability = 0.0;  ///< P(>= 1 overloaded link)
  double loss_probability = 0.0;      ///< P(lost_pps > 0)
};

struct StormOracleResult {
  std::vector<StormOracleProtocol> protocols;
  std::size_t scenarios = 0;        ///< 2^G enumerated subsets
  double total_probability = 0.0;   ///< sums to 1 up to rounding
};

/// The exhaustive oracle: enumerates every group subset of `model` with its
/// exact probability and computes exact weighted means, quantiles and
/// volume expectations per protocol.  Gated to <= 20 groups (the
/// enumeration's own limit).  Each subset is evaluated by the same cell core
/// the sampled sweep uses, so sampled estimates converge to these values.
[[nodiscard]] StormOracleResult run_exhaustive_storm(
    const graph::Graph& g, const traffic::TrafficMatrix& demand,
    const traffic::CapacityPlan& plan, const net::IndependentOutages& model,
    const std::vector<NamedFactory>& protocols,
    const std::vector<double>& quantiles = {0.5, 0.9, 0.99});

}  // namespace pr::analysis
