// Small summary-statistics helper shared by benches and reports.
#pragma once

#include <cstddef>
#include <span>
#include <string>

namespace pr::analysis {

/// Five-number-style summary over the finite entries of a sample set.
struct Summary {
  std::size_t count = 0;     ///< finite samples
  std::size_t infinite = 0;  ///< +inf entries (dropped packets)
  double mean = 0;
  double p50 = 0;
  double p90 = 0;
  double p99 = 0;
  double max = 0;
};

/// Computes the summary; infinite entries are counted separately and excluded
/// from the moments.  Percentiles use the nearest-rank method.
[[nodiscard]] Summary summarize(std::span<const double> samples);

/// "mean 2.38 | p50 2.00 | p99 8.50 | max 12.00 (+3 inf)" style rendering.
[[nodiscard]] std::string to_string(const Summary& s);

}  // namespace pr::analysis
