#include "analysis/reducers.hpp"

#include <cmath>
#include <stdexcept>

namespace pr::analysis {

P2Quantile::P2Quantile(double q) : q_(q) {
  if (!(q > 0.0 && q < 1.0)) {
    throw std::invalid_argument("P2Quantile: quantile must be in (0, 1)");
  }
}

void P2Quantile::add(double x) {
  if (!std::isfinite(x)) {
    throw std::invalid_argument("P2Quantile::add: sample must be finite");
  }

  if (count_ < 5) {
    heights_[count_] = x;
    ++count_;
    if (count_ == 5) {
      std::sort(heights_.begin(), heights_.end());
      for (std::size_t i = 0; i < 5; ++i) positions_[i] = static_cast<double>(i + 1);
      desired_ = {1.0, 1.0 + 2.0 * q_, 1.0 + 4.0 * q_, 3.0 + 2.0 * q_, 5.0};
      desired_delta_ = {0.0, q_ / 2.0, q_, (1.0 + q_) / 2.0, 1.0};
    }
    return;
  }

  // Locate the marker cell and update the extreme markers.
  std::size_t k;
  if (x < heights_[0]) {
    heights_[0] = x;
    k = 0;
  } else if (x >= heights_[4]) {
    heights_[4] = x;
    k = 3;
  } else {
    k = 0;
    while (k < 3 && !(heights_[k] <= x && x < heights_[k + 1])) ++k;
  }

  for (std::size_t i = k + 1; i < 5; ++i) positions_[i] += 1.0;
  for (std::size_t i = 0; i < 5; ++i) desired_[i] += desired_delta_[i];

  // Nudge the three interior markers towards their desired positions, with
  // the piecewise-parabolic (P^2) height prediction and a linear fallback
  // when the parabola would break marker monotonicity.
  for (std::size_t i = 1; i <= 3; ++i) {
    const double d = desired_[i] - positions_[i];
    const double ahead = positions_[i + 1] - positions_[i];
    const double behind = positions_[i - 1] - positions_[i];
    if ((d >= 1.0 && ahead > 1.0) || (d <= -1.0 && behind < -1.0)) {
      const double step = d >= 1.0 ? 1.0 : -1.0;
      const double span = positions_[i + 1] - positions_[i - 1];
      const double parabolic =
          heights_[i] +
          step / span *
              ((positions_[i] - positions_[i - 1] + step) *
                   (heights_[i + 1] - heights_[i]) / ahead +
               (positions_[i + 1] - positions_[i] - step) *
                   (heights_[i] - heights_[i - 1]) / (positions_[i] - positions_[i - 1]));
      if (heights_[i - 1] < parabolic && parabolic < heights_[i + 1]) {
        heights_[i] = parabolic;
      } else {
        const std::size_t j = step > 0 ? i + 1 : i - 1;
        heights_[i] += step * (heights_[j] - heights_[i]) / (positions_[j] - positions_[i]);
      }
      positions_[i] += step;
    }
  }
  ++count_;
}

double P2Quantile::estimate() const {
  if (count_ == 0) return 0.0;
  if (count_ <= 5) {
    // Exact nearest-rank over the raw sample buffer: sorted[ceil(q n) - 1].
    std::array<double, 5> sorted = heights_;
    std::sort(sorted.begin(), sorted.begin() + count_);
    const double rank = std::ceil(q_ * static_cast<double>(count_));
    std::size_t idx = rank <= 1.0 ? 0 : static_cast<std::size_t>(rank) - 1;
    if (idx >= count_) idx = count_ - 1;
    return sorted[idx];
  }
  return heights_[2];
}

P2Quantile P2Quantile::from_state(const P2State& state) {
  P2Quantile p(state.quantile);  // validates the quantile
  const std::size_t live = state.count < 5 ? state.count : 5;
  for (std::size_t i = 0; i < live; ++i) {
    if (!std::isfinite(state.heights[i])) {
      throw std::invalid_argument("P2Quantile::from_state: non-finite marker height");
    }
  }
  if (state.count >= 5) {
    for (std::size_t i = 0; i < 5; ++i) {
      if (!std::isfinite(state.positions[i]) || !std::isfinite(state.desired[i]) ||
          !std::isfinite(state.desired_delta[i])) {
        throw std::invalid_argument("P2Quantile::from_state: non-finite marker position");
      }
    }
  }
  p.count_ = state.count;
  p.heights_ = state.heights;
  p.positions_ = state.positions;
  p.desired_ = state.desired;
  p.desired_delta_ = state.desired_delta;
  return p;
}

P2QuantileSet::P2QuantileSet(std::vector<double> quantiles) {
  estimators_.reserve(quantiles.size());
  for (const double q : quantiles) estimators_.emplace_back(q);
}

std::vector<double> P2QuantileSet::estimates() const {
  std::vector<double> out;
  out.reserve(estimators_.size());
  for (const auto& e : estimators_) out.push_back(e.estimate());
  return out;
}

}  // namespace pr::analysis
