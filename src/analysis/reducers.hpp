// Streaming reducers: flat-memory sweep aggregation for unbounded scenario
// counts.
//
// The classic sweep drivers keep one result row per scenario, which is fine
// for hundreds of enumerated failure sets and fatal for sampled storms at the
// million-scenario scale.  These reducers hold O(1) state per metric instead:
//   * P2Quantile      -- the P^2 algorithm (Jain & Chlamtac, CACM 1985): five
//                        markers tracking one quantile of a stream without
//                        storing it;
//   * TopK            -- a bounded worst-scenario heap with a deterministic
//                        replacement rule;
//   * RunningSummary  -- count / sum / min / max accumulators.
//
// Determinism contract: every reducer is a pure function of its insertion
// SEQUENCE.  Feed them through SweepExecutor::run_ordered -- whose reduce
// hook fires in canonical unit order for every thread count -- and the final
// state is bit-identical at 1, 2 or 64 threads.  Feeding them in completion
// order would not be.
#pragma once

#include <algorithm>
#include <array>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace pr::analysis {

/// Complete serialized state of a P2Quantile: restoring it resumes the
/// estimator mid-stream BIT-IDENTICALLY -- every future add() and estimate()
/// behaves exactly as on the uninterrupted instance, including the exact
/// tiny-n path (heights_ doubles as the raw sample buffer while count <= 5).
/// This is what storm-sweep checkpoints persist (analysis/checkpoint.hpp).
struct P2State {
  double quantile = 0.0;
  std::size_t count = 0;
  std::array<double, 5> heights{};
  std::array<double, 5> positions{};
  std::array<double, 5> desired{};
  std::array<double, 5> desired_delta{};
};

/// Single-quantile P^2 estimator.  add() is O(1); estimate() is exact while
/// fewer than 6 samples have been seen (it sorts the marker buffer) and the
/// five-marker parabolic approximation afterwards.  Infinite or NaN samples
/// are rejected (std::invalid_argument): callers decide how to count drops,
/// the estimator only sees finite mass.
class P2Quantile {
 public:
  /// `q` in (0, 1); throws std::invalid_argument otherwise.
  explicit P2Quantile(double q);

  void add(double x);

  [[nodiscard]] double quantile() const noexcept { return q_; }
  [[nodiscard]] std::size_t count() const noexcept { return count_; }

  /// Current estimate; 0 when no sample has been seen.  With n <= 5 samples
  /// this is the exact nearest-rank quantile (sorted[ceil(q n) - 1]), so
  /// tiny-n streams agree bit-for-bit with a sorted-sample oracle.
  [[nodiscard]] double estimate() const;

  /// Snapshot of the full estimator state for checkpointing.
  [[nodiscard]] P2State state() const {
    return P2State{q_, count_, heights_, positions_, desired_, desired_delta_};
  }

  /// Rebuild an estimator from a state() snapshot; the result is
  /// indistinguishable from the instance that produced the snapshot.  Throws
  /// std::invalid_argument when the snapshot is structurally invalid (bad
  /// quantile, non-finite markers) -- a corrupted checkpoint must not become
  /// a silently-wrong estimator.
  [[nodiscard]] static P2Quantile from_state(const P2State& state);

 private:
  double q_;
  std::size_t count_ = 0;
  std::array<double, 5> heights_{};         // marker heights q0..q4
  std::array<double, 5> positions_{};       // actual marker positions n_i
  std::array<double, 5> desired_{};         // desired positions n'_i
  std::array<double, 5> desired_delta_{};   // dn'_i per observation
};

/// Convenience bundle: one P2Quantile per requested quantile over the same
/// stream (the storm sweeps track {p50, p90, p99} of two metrics).
class P2QuantileSet {
 public:
  explicit P2QuantileSet(std::vector<double> quantiles);

  /// Rebuild from restored estimators (checkpoint resume path).
  explicit P2QuantileSet(std::vector<P2Quantile> estimators)
      : estimators_(std::move(estimators)) {}

  void add(double x) {
    for (auto& e : estimators_) e.add(x);
  }

  [[nodiscard]] std::size_t size() const noexcept { return estimators_.size(); }
  [[nodiscard]] const P2Quantile& at(std::size_t i) const { return estimators_.at(i); }
  [[nodiscard]] std::vector<double> estimates() const;

 private:
  std::vector<P2Quantile> estimators_;
};

/// Bounded top-K heap over (key, id, payload) entries, keeping the K largest
/// keys seen.  Deterministic rule: an entry displaces the current minimum
/// only when its key is STRICTLY larger, or its key ties and its id is
/// strictly smaller -- so for any insertion sequence the surviving set (and
/// therefore sorted()) is a pure function of the multiset plus feed order,
/// and canonical-order feeding makes it thread-count independent.  merge()
/// folds another heap in by replaying its sorted entries, for callers that
/// reduce per-shard heaps in canonical shard order instead of streaming.
template <typename Payload>
class TopK {
 public:
  struct Entry {
    double key = 0.0;
    std::uint64_t id = 0;
    Payload value{};
  };

  explicit TopK(std::size_t k) : k_(k) {}

  [[nodiscard]] std::size_t capacity() const noexcept { return k_; }
  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }

  void add(double key, std::uint64_t id, const Payload& value) {
    if (k_ == 0) return;
    if (heap_.size() < k_) {
      heap_.push_back(Entry{key, id, value});
      std::push_heap(heap_.begin(), heap_.end(), HeapOrder{});
      return;
    }
    const Entry& weakest = heap_.front();
    if (key > weakest.key || (key == weakest.key && id < weakest.id)) {
      std::pop_heap(heap_.begin(), heap_.end(), HeapOrder{});
      heap_.back() = Entry{key, id, value};
      std::push_heap(heap_.begin(), heap_.end(), HeapOrder{});
    }
  }

  void merge(const TopK& other) {
    for (const Entry& e : other.sorted()) add(e.key, e.id, e.value);
  }

  /// Entries by key descending, ties by id ascending (worst first).
  [[nodiscard]] std::vector<Entry> sorted() const {
    std::vector<Entry> out = heap_;
    std::sort(out.begin(), out.end(), [](const Entry& a, const Entry& b) {
      if (a.key != b.key) return a.key > b.key;
      return a.id < b.id;
    });
    return out;
  }

 private:
  /// Min-heap order on (key asc, id desc): the front is the entry the
  /// deterministic rule evicts first -- smallest key, and among key ties the
  /// LARGEST id, so earlier scenarios win ties.
  struct HeapOrder {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.key != b.key) return a.key > b.key;
      return a.id < b.id;
    }
  };

  std::size_t k_;
  std::vector<Entry> heap_;
};

/// Count / sum / extrema accumulator.  Sums are plain left-to-right doubles:
/// fed in canonical order they are bit-identical to a serial sweep, which is
/// the whole point.
struct RunningSummary {
  std::size_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;

  void add(double x) noexcept {
    if (count == 0) {
      min = max = x;
    } else {
      if (x < min) min = x;
      if (x > max) max = x;
    }
    sum += x;
    ++count;
  }

  [[nodiscard]] double mean() const noexcept {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }

  friend bool operator==(const RunningSummary&, const RunningSummary&) = default;
};

}  // namespace pr::analysis
