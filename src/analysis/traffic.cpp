#include "analysis/traffic.hpp"

#include <cstdint>
#include <stdexcept>
#include <string>

#include "graph/connectivity.hpp"
#include "sim/parallel_sweep.hpp"

namespace pr::analysis {

using graph::NodeId;

void collect_demand_flows(const traffic::TrafficMatrix& demand,
                          std::vector<sim::FlowSpec>& flows,
                          std::vector<double>& demands) {
  flows.clear();
  demands.clear();
  const std::size_t n = demand.node_count();
  for (NodeId s = 0; s < n; ++s) {
    for (NodeId t = 0; t < n; ++t) {
      if (s == t || demand.demand(s, t) == 0.0) continue;
      flows.push_back(sim::FlowSpec{s, t});
      demands.push_back(demand.demand(s, t));
    }
  }
}

namespace {

/// Routes one (scenario, protocol) cell: demand-weighted batch into `load`,
/// then the full metrics row.  `component` holds the scenario's residual
/// component ids (graph minus failures) and splits dropped demand into lost
/// (path existed) vs stranded (partitioned) -- deliberately independent of
/// the routing cache, whose table storage the protocol instance may be
/// borrowing.
traffic::CongestionMetrics route_cell(const graph::Graph& g,
                                      const net::Network& network,
                                      std::span<const std::uint32_t> component,
                                      const NamedFactory& factory,
                                      route::ScenarioRoutingCache& cache,
                                      std::span<const sim::FlowSpec> flows,
                                      std::span<const double> demands,
                                      double offered_pps,
                                      const traffic::CapacityPlan& plan,
                                      sim::BatchResult& batch,
                                      traffic::LoadMap& load) {
  const auto instance = make_protocol(factory, network, cache);
  sim::route_batch(network, *instance, flows, demands, load,
                   sim::TraceMode::kStats, batch);

  traffic::CongestionMetrics m;
  m.offered_pps = offered_pps;
  traffic::apply_utilization(m, g, load, plan);
  for (std::size_t f = 0; f < flows.size(); ++f) {
    if (batch[f].delivered()) {
      m.delivered_pps += demands[f];
    } else if (component[flows[f].source] == component[flows[f].destination]) {
      m.lost_pps += demands[f];
    } else {
      m.stranded_pps += demands[f];
    }
  }
  return m;
}

/// The incremental counterpart: probe the pristine incidence index for the
/// flows this scenario's failures actually touch, re-route ONLY those (full
/// trace, so their fresh dart paths are known), then rebuild the scenario's
/// LoadMap by replaying every flow in canonical flow order -- cached pristine
/// rows for the untouched majority, the freshly routed paths for the rest.
/// The replay performs the exact floating-point additions (same values, same
/// order, per dart and per volume counter) that route_cell's full re-route
/// performs, so the metrics row and load map are bit-identical to it.
traffic::CongestionMetrics route_cell_incremental(
    const graph::Graph& g, const net::Network& network,
    std::span<const std::uint32_t> component, const NamedFactory& factory,
    route::ScenarioRoutingCache& cache, const traffic::FlowIncidenceIndex& index,
    std::span<const sim::FlowSpec> flows, std::span<const double> demands,
    double offered_pps, const traffic::CapacityPlan& plan, sim::BatchResult& batch,
    traffic::LoadMap& load, traffic::IncidenceScratch& scratch) {
  index.affected_flows(network.failed_links(), scratch.affected_mark,
                       scratch.affected);

  // Re-route the affected flows in canonical flow order.  When the scenario
  // touches no pristine path there is nothing to re-route: the protocol
  // instance (and any routing-table repair it would trigger) is skipped
  // entirely and the replay below is the whole answer.
  batch.clear();
  if (!scratch.affected.empty()) {
    scratch.flows.clear();
    for (const std::uint32_t f : scratch.affected) scratch.flows.push_back(flows[f]);
    const auto instance = make_protocol(factory, network, cache);
    sim::route_batch(network, *instance, scratch.flows, sim::TraceMode::kFullTrace,
                     batch);
  }

  load.reset(g.dart_count());
  traffic::CongestionMetrics m;
  m.offered_pps = offered_pps;
  std::size_t a = 0;  // cursor into the re-routed batch
  for (std::size_t f = 0; f < flows.size(); ++f) {
    const double rate = demands[f];
    bool delivered;
    if (scratch.affected_mark[f] != 0) {
      for (const graph::DartId d : batch.darts(a)) load.add(d, rate);
      delivered = batch[a].delivered();
      ++a;
    } else {
      for (const graph::DartId d : index.flow_darts(f)) load.add(d, rate);
      delivered = index.pristine_delivered(f);
    }
    if (delivered) {
      m.delivered_pps += rate;
    } else if (component[flows[f].source] == component[flows[f].destination]) {
      m.lost_pps += rate;
    } else {
      m.stranded_pps += rate;
    }
  }
  traffic::apply_utilization(m, g, load, plan);
  return m;
}

#ifndef NDEBUG
/// Debug builds re-price every incremental cell through the full oracle and
/// demand bit-identity -- the enforcement teeth of the failure-local protocol
/// contract documented in traffic/incidence.hpp.
void cross_check_incremental_cell(
    const graph::Graph& g, const net::Network& network,
    std::span<const std::uint32_t> component, const NamedFactory& factory,
    route::ScenarioRoutingCache& cache, std::span<const sim::FlowSpec> flows,
    std::span<const double> demands, double offered_pps,
    const traffic::CapacityPlan& plan, const traffic::CongestionMetrics& metrics,
    const traffic::LoadMap& load) {
  sim::BatchResult oracle_batch;
  traffic::LoadMap oracle_load;
  const traffic::CongestionMetrics oracle =
      route_cell(g, network, component, factory, cache, flows, demands,
                 offered_pps, plan, oracle_batch, oracle_load);
  const traffic::LoadMapDiff d = traffic::diff(load, oracle_load);
  if (!(metrics == oracle) || !d.identical()) {
    throw std::logic_error(
        "run_traffic_experiment: incremental cell diverged from the full "
        "re-route oracle (protocol '" +
        factory.name + "', " + std::to_string(d.differing) +
        " darts differ, max |delta| " + std::to_string(d.max_abs_delta) + ")");
  }
}
#endif

/// One pristine routing pass per protocol over the sweep's exact work-list.
/// `cache` warms with the pristine tables, which every scenario repair then
/// starts from.
std::vector<traffic::FlowIncidenceIndex> build_indexes(
    const graph::Graph& g, const std::vector<NamedFactory>& protocols,
    std::span<const sim::FlowSpec> flows, std::span<const double> demands,
    route::ScenarioRoutingCache& cache) {
  std::vector<traffic::FlowIncidenceIndex> indexes(protocols.size());
  const net::Network pristine(g);
  for (std::size_t i = 0; i < protocols.size(); ++i) {
    const auto instance = make_protocol(protocols[i], pristine, cache);
    indexes[i].build(pristine, *instance, flows, demands);
  }
  return indexes;
}

void validate(const graph::Graph& g, const traffic::TrafficMatrix& demand,
              const traffic::CapacityPlan& plan,
              const std::vector<NamedFactory>& protocols) {
  if (protocols.empty()) {
    throw std::invalid_argument("run_traffic_experiment: no protocols given");
  }
  if (demand.node_count() != g.node_count()) {
    throw std::invalid_argument(
        "run_traffic_experiment: demand matrix does not cover the graph");
  }
  if (plan.edge_count() != g.edge_count()) {
    throw std::invalid_argument(
        "run_traffic_experiment: capacity plan does not cover the graph");
  }
}

double sum_in_order(std::span<const double> demands) {
  double sum = 0.0;
  for (double d : demands) sum += d;
  return sum;
}

TrafficExperimentResult make_result(std::span<const graph::EdgeSet> scenarios,
                                    const std::vector<NamedFactory>& protocols,
                                    std::size_t flow_count, TrafficSweepMode mode) {
  TrafficExperimentResult result;
  result.scenarios = scenarios.size();
  result.flows_per_scenario = flow_count;
  result.mode = mode;
  result.protocols.reserve(protocols.size());
  for (const auto& p : protocols) {
    ProtocolTraffic pt;
    pt.name = p.name;
    pt.per_scenario.reserve(scenarios.size());
    result.protocols.push_back(std::move(pt));
  }
  return result;
}

}  // namespace

TrafficExperimentResult run_traffic_experiment(
    const graph::Graph& g, const traffic::TrafficMatrix& demand,
    const traffic::CapacityPlan& plan, std::span<const graph::EdgeSet> scenarios,
    const std::vector<NamedFactory>& protocols, TrafficSweepMode mode) {
  validate(g, demand, plan, protocols);

  std::vector<sim::FlowSpec> flows;
  std::vector<double> demands;
  collect_demand_flows(demand, flows, demands);
  const double offered = sum_in_order(demands);

  TrafficExperimentResult result = make_result(scenarios, protocols, flows.size(), mode);

  // Reused across scenarios and protocols; once warm, a scenario's routing
  // allocates nothing beyond the per-scenario metric rows and component ids.
  sim::BatchResult batch;
  traffic::LoadMap load;
  route::ScenarioRoutingCache cache;
  traffic::IncidenceScratch scratch;
  std::vector<traffic::FlowIncidenceIndex> indexes;
  if (mode == TrafficSweepMode::kIncremental) {
    indexes = build_indexes(g, protocols, flows, demands, cache);
  }

  for (const auto& failures : scenarios) {
    net::Network network(g);
    for (graph::EdgeId e : failures.elements()) network.fail_link(e);
    const auto component = graph::connected_components(g, &failures);

    for (std::size_t i = 0; i < protocols.size(); ++i) {
      auto& agg = result.protocols[i];
      if (mode == TrafficSweepMode::kFullReroute) {
        agg.per_scenario.push_back(route_cell(g, network, component, protocols[i],
                                              cache, flows, demands, offered, plan,
                                              batch, load));
        agg.rerouted_flows += flows.size();
      } else {
        agg.per_scenario.push_back(route_cell_incremental(
            g, network, component, protocols[i], cache, indexes[i], flows,
            demands, offered, plan, batch, load, scratch));
        agg.rerouted_flows += scratch.affected.size();
#ifndef NDEBUG
        cross_check_incremental_cell(g, network, component, protocols[i], cache,
                                     flows, demands, offered, plan,
                                     agg.per_scenario.back(), load);
#endif
      }
      agg.total_load.add(load);
    }
  }
  return result;
}

TrafficRunResult run_traffic_experiment_resilient(
    const graph::Graph& g, const traffic::TrafficMatrix& demand,
    const traffic::CapacityPlan& plan, std::span<const graph::EdgeSet> scenarios,
    const std::vector<NamedFactory>& protocols, sim::SweepExecutor& executor,
    const sim::RunControl& control, TrafficSweepMode mode) {
  validate(g, demand, plan, protocols);

  std::vector<sim::FlowSpec> flows;
  std::vector<double> demands;
  collect_demand_flows(demand, flows, demands);
  const double offered = sum_in_order(demands);

  // Per-protocol pristine indexes are built once, serially, then shared
  // read-only by every worker.
  std::vector<traffic::FlowIncidenceIndex> indexes;
  if (mode == TrafficSweepMode::kIncremental) {
    route::ScenarioRoutingCache pristine_cache;
    indexes = build_indexes(g, protocols, flows, demands, pristine_cache);
  }

  // One slot per scenario, written by exactly one worker each.
  struct ScenarioPartial {
    std::vector<traffic::CongestionMetrics> metrics;    // per protocol
    std::vector<traffic::LoadMapReduction> loads;       // per protocol, 1 scenario
    std::vector<std::size_t> rerouted;                  // per protocol
  };
  std::vector<ScenarioPartial> partials(scenarios.size());

  const sim::SweepExecutor::UnitFn unit_fn = [&](std::size_t unit,
                                                 sim::WorkerContext& ctx) {
    const graph::EdgeSet& failures = scenarios[unit];
    net::Network network(g);
    for (graph::EdgeId e : failures.elements()) network.fail_link(e);
    const auto component = graph::connected_components(g, &failures);

    ScenarioPartial& partial = partials[unit];
    partial.metrics.reserve(protocols.size());
    partial.loads.reserve(protocols.size());
    partial.rerouted.reserve(protocols.size());
    for (std::size_t i = 0; i < protocols.size(); ++i) {
      if (mode == TrafficSweepMode::kFullReroute) {
        partial.metrics.push_back(route_cell(g, network, component, protocols[i],
                                             ctx.routes, flows, demands, offered,
                                             plan, ctx.batch, ctx.load));
        partial.rerouted.push_back(flows.size());
      } else {
        partial.metrics.push_back(route_cell_incremental(
            g, network, component, protocols[i], ctx.routes, indexes[i], flows,
            demands, offered, plan, ctx.batch, ctx.load, ctx.incidence));
        partial.rerouted.push_back(ctx.incidence.affected.size());
#ifndef NDEBUG
        cross_check_incremental_cell(g, network, component, protocols[i],
                                     ctx.routes, flows, demands, offered, plan,
                                     partial.metrics.back(), ctx.load);
#endif
      }
      traffic::LoadMapReduction cell;
      cell.add(ctx.load);
      partial.loads.push_back(std::move(cell));
    }
  };
  TrafficRunResult run;
  run.outcome = executor.run(scenarios.size(), unit_fn, control);

  // Canonical-order merge over the surviving prefix: appending per-scenario
  // rows and merging the load reductions in scenario order performs the
  // serial driver's element-wise additions in the exact same sequence, so
  // the floating-point sums are bit-identical.  Only units inside the
  // executor's truncation prefix count -- anything beyond it (including
  // slots a worker wrote before the stop was observed) is discarded, and
  // contained-failure units (kContinue policy) merge nothing: their partial
  // vectors stayed empty.
  TrafficExperimentResult result = make_result(scenarios, protocols, flows.size(), mode);
  result.scenarios = run.outcome.completed_units;
  for (std::size_t s = 0; s < run.outcome.completed_units; ++s) {
    ScenarioPartial& partial = partials[s];
    for (std::size_t i = 0; i < partial.metrics.size(); ++i) {
      auto& agg = result.protocols[i];
      agg.per_scenario.push_back(partial.metrics[i]);
      agg.total_load.merge(partial.loads[i]);
      agg.rerouted_flows += partial.rerouted[i];
    }
    // Release each shard's load maps as they merge.
    std::vector<traffic::LoadMapReduction>().swap(partial.loads);
  }
  run.result = std::move(result);
  return run;
}

TrafficExperimentResult run_traffic_experiment(
    const graph::Graph& g, const traffic::TrafficMatrix& demand,
    const traffic::CapacityPlan& plan, std::span<const graph::EdgeSet> scenarios,
    const std::vector<NamedFactory>& protocols, sim::SweepExecutor& executor,
    TrafficSweepMode mode) {
  // An unconstrained control: the sweep runs to completion unless a unit
  // throws, in which case we surface it like the serial driver would.
  const sim::RunControl control;
  TrafficRunResult run = run_traffic_experiment_resilient(
      g, demand, plan, scenarios, protocols, executor, control, mode);
  if (!run.complete()) {
    const sim::UnitError* e = run.outcome.first_error();
    throw sim::SweepUnitError(e != nullptr ? e->unit : 0,
                              e != nullptr ? e->worker : 0,
                              e != nullptr ? e->what : "sweep did not complete");
  }
  return std::move(run.result);
}

}  // namespace pr::analysis
