#include "analysis/traffic.hpp"

#include <cstdint>
#include <stdexcept>

#include "graph/connectivity.hpp"
#include "sim/parallel_sweep.hpp"

namespace pr::analysis {

using graph::NodeId;

void collect_demand_flows(const traffic::TrafficMatrix& demand,
                          std::vector<sim::FlowSpec>& flows,
                          std::vector<double>& demands) {
  flows.clear();
  demands.clear();
  const std::size_t n = demand.node_count();
  for (NodeId s = 0; s < n; ++s) {
    for (NodeId t = 0; t < n; ++t) {
      if (s == t || demand.demand(s, t) == 0.0) continue;
      flows.push_back(sim::FlowSpec{s, t});
      demands.push_back(demand.demand(s, t));
    }
  }
}

namespace {

/// Routes one (scenario, protocol) cell: demand-weighted batch into `load`,
/// then the full metrics row.  `component` holds the scenario's residual
/// component ids (graph minus failures) and splits dropped demand into lost
/// (path existed) vs stranded (partitioned) -- deliberately independent of
/// the routing cache, whose table storage the protocol instance may be
/// borrowing.
traffic::CongestionMetrics route_cell(const graph::Graph& g,
                                      const net::Network& network,
                                      std::span<const std::uint32_t> component,
                                      const NamedFactory& factory,
                                      route::ScenarioRoutingCache& cache,
                                      std::span<const sim::FlowSpec> flows,
                                      std::span<const double> demands,
                                      double offered_pps,
                                      const traffic::CapacityPlan& plan,
                                      sim::BatchResult& batch,
                                      traffic::LoadMap& load) {
  const auto instance = make_protocol(factory, network, cache);
  sim::route_batch(network, *instance, flows, demands, load,
                   sim::TraceMode::kStats, batch);

  traffic::CongestionMetrics m;
  m.offered_pps = offered_pps;
  traffic::apply_utilization(m, g, load, plan);
  for (std::size_t f = 0; f < flows.size(); ++f) {
    if (batch[f].delivered()) {
      m.delivered_pps += demands[f];
    } else if (component[flows[f].source] == component[flows[f].destination]) {
      m.lost_pps += demands[f];
    } else {
      m.stranded_pps += demands[f];
    }
  }
  return m;
}

void validate(const graph::Graph& g, const traffic::TrafficMatrix& demand,
              const traffic::CapacityPlan& plan,
              const std::vector<NamedFactory>& protocols) {
  if (protocols.empty()) {
    throw std::invalid_argument("run_traffic_experiment: no protocols given");
  }
  if (demand.node_count() != g.node_count()) {
    throw std::invalid_argument(
        "run_traffic_experiment: demand matrix does not cover the graph");
  }
  if (plan.edge_count() != g.edge_count()) {
    throw std::invalid_argument(
        "run_traffic_experiment: capacity plan does not cover the graph");
  }
}

double sum_in_order(std::span<const double> demands) {
  double sum = 0.0;
  for (double d : demands) sum += d;
  return sum;
}

}  // namespace

TrafficExperimentResult run_traffic_experiment(
    const graph::Graph& g, const traffic::TrafficMatrix& demand,
    const traffic::CapacityPlan& plan, std::span<const graph::EdgeSet> scenarios,
    const std::vector<NamedFactory>& protocols) {
  validate(g, demand, plan, protocols);

  std::vector<sim::FlowSpec> flows;
  std::vector<double> demands;
  collect_demand_flows(demand, flows, demands);
  const double offered = sum_in_order(demands);

  TrafficExperimentResult result;
  result.scenarios = scenarios.size();
  result.flows_per_scenario = flows.size();
  result.protocols.reserve(protocols.size());
  for (const auto& p : protocols) {
    ProtocolTraffic pt;
    pt.name = p.name;
    pt.per_scenario.reserve(scenarios.size());
    result.protocols.push_back(std::move(pt));
  }

  // Reused across scenarios and protocols; once warm, a scenario's routing
  // allocates nothing beyond the per-scenario metric rows and component ids.
  sim::BatchResult batch;
  traffic::LoadMap load;
  route::ScenarioRoutingCache cache;

  for (const auto& failures : scenarios) {
    net::Network network(g);
    for (graph::EdgeId e : failures.elements()) network.fail_link(e);
    const auto component = graph::connected_components(g, &failures);

    for (std::size_t i = 0; i < protocols.size(); ++i) {
      auto& agg = result.protocols[i];
      agg.per_scenario.push_back(route_cell(g, network, component, protocols[i],
                                            cache, flows, demands, offered, plan,
                                            batch, load));
      agg.total_load.add(load);
    }
  }
  return result;
}

TrafficExperimentResult run_traffic_experiment(
    const graph::Graph& g, const traffic::TrafficMatrix& demand,
    const traffic::CapacityPlan& plan, std::span<const graph::EdgeSet> scenarios,
    const std::vector<NamedFactory>& protocols, sim::SweepExecutor& executor) {
  validate(g, demand, plan, protocols);

  std::vector<sim::FlowSpec> flows;
  std::vector<double> demands;
  collect_demand_flows(demand, flows, demands);
  const double offered = sum_in_order(demands);

  // One slot per scenario, written by exactly one worker each.
  struct ScenarioPartial {
    std::vector<traffic::CongestionMetrics> metrics;    // per protocol
    std::vector<traffic::LoadMapReduction> loads;       // per protocol, 1 scenario
  };
  std::vector<ScenarioPartial> partials(scenarios.size());

  executor.run(scenarios.size(), [&](std::size_t unit, sim::WorkerContext& ctx) {
    const graph::EdgeSet& failures = scenarios[unit];
    net::Network network(g);
    for (graph::EdgeId e : failures.elements()) network.fail_link(e);
    const auto component = graph::connected_components(g, &failures);

    ScenarioPartial& partial = partials[unit];
    partial.metrics.reserve(protocols.size());
    partial.loads.reserve(protocols.size());
    for (const NamedFactory& factory : protocols) {
      partial.metrics.push_back(route_cell(g, network, component, factory,
                                           ctx.routes, flows, demands, offered,
                                           plan, ctx.batch, ctx.load));
      traffic::LoadMapReduction cell;
      cell.add(ctx.load);
      partial.loads.push_back(std::move(cell));
    }
  });

  // Canonical-order merge: appending per-scenario rows and merging the load
  // reductions in scenario order performs the serial driver's element-wise
  // additions in the exact same sequence, so the floating-point sums are
  // bit-identical.
  TrafficExperimentResult result;
  result.scenarios = scenarios.size();
  result.flows_per_scenario = flows.size();
  result.protocols.reserve(protocols.size());
  for (const auto& p : protocols) {
    ProtocolTraffic pt;
    pt.name = p.name;
    pt.per_scenario.reserve(scenarios.size());
    result.protocols.push_back(std::move(pt));
  }
  for (ScenarioPartial& partial : partials) {
    for (std::size_t i = 0; i < partial.metrics.size(); ++i) {
      auto& agg = result.protocols[i];
      agg.per_scenario.push_back(partial.metrics[i]);
      agg.total_load.merge(partial.loads[i]);
    }
    // Release each shard's load maps as they merge.
    std::vector<traffic::LoadMapReduction>().swap(partial.loads);
  }
  return result;
}

}  // namespace pr::analysis
