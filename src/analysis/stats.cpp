#include "analysis/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <vector>

namespace pr::analysis {

Summary summarize(std::span<const double> samples) {
  Summary out;
  std::vector<double> finite;
  finite.reserve(samples.size());
  double sum = 0;
  for (double s : samples) {
    if (std::isfinite(s)) {
      finite.push_back(s);
      sum += s;
    } else {
      ++out.infinite;
    }
  }
  out.count = finite.size();
  if (finite.empty()) return out;
  std::sort(finite.begin(), finite.end());
  out.mean = sum / static_cast<double>(finite.size());
  const auto rank = [&finite](double q) {
    const auto idx = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(finite.size())));
    return finite[std::min(finite.size() - 1, idx == 0 ? 0 : idx - 1)];
  };
  out.p50 = rank(0.50);
  out.p90 = rank(0.90);
  out.p99 = rank(0.99);
  out.max = finite.back();
  return out;
}

std::string to_string(const Summary& s) {
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(2);
  out << "mean " << s.mean << " | p50 " << s.p50 << " | p90 " << s.p90 << " | p99 "
      << s.p99 << " | max " << s.max;
  if (s.infinite > 0) out << " (+" << s.infinite << " inf)";
  return out.str();
}

}  // namespace pr::analysis
