// Congestion-under-failure sweeps: the traffic-engineering view of the
// paper's comparison.
//
// The stretch and coverage experiments treat every flow as one unweighted
// probe.  This driver routes a full demand matrix (every ordered pair with
// non-zero demand) through every failure scenario under every protocol,
// accumulates demand-weighted per-interface load, and prices each scenario
// against a capacity plan: max link utilization, overloaded links, and
// delivered / lost / stranded traffic volume.  Like its siblings it has a
// serial reference path and a SweepExecutor overload that is bit-identical
// to it at every thread count (per-scenario units, canonical-order merge).
#pragma once

#include <span>
#include <string>
#include <vector>

#include "analysis/stretch.hpp"
#include "sim/forwarding_engine.hpp"
#include "traffic/capacity.hpp"
#include "traffic/congestion.hpp"
#include "traffic/demand.hpp"
#include "traffic/load_map.hpp"

namespace pr::analysis {

/// One protocol's outcome across the whole sweep.
struct ProtocolTraffic {
  std::string name;
  /// One entry per scenario, in the caller's scenario order.
  std::vector<traffic::CongestionMetrics> per_scenario;
  /// Per-dart load summed over all scenarios in canonical order (where
  /// rerouted demand concentrates across the sweep), plus the scenario count
  /// it covers.
  traffic::LoadMapReduction total_load;

  [[nodiscard]] traffic::CongestionSummary summary() const {
    return traffic::summarize(per_scenario);
  }
};

struct TrafficExperimentResult {
  std::vector<ProtocolTraffic> protocols;
  std::size_t scenarios = 0;
  std::size_t flows_per_scenario = 0;  ///< ordered pairs with non-zero demand
};

/// The sweep work-list every traffic driver routes: one FlowSpec per ordered
/// pair with non-zero demand, in the canonical (s, t) order, with the
/// matching per-flow demand vector.  Exposed so capacity-sizing callers (the
/// bench's pristine-load pass) build exactly the list the sweep will route.
void collect_demand_flows(const traffic::TrafficMatrix& demand,
                          std::vector<sim::FlowSpec>& flows,
                          std::vector<double>& demands);

/// Routes the demand matrix through every scenario under every protocol and
/// prices the resulting loads against `plan`.  Scenarios may disconnect the
/// graph: demand whose destination becomes unreachable is accounted as
/// stranded (no scheme can deliver it), demand dropped despite a surviving
/// path as lost.  Serial reference path.
[[nodiscard]] TrafficExperimentResult run_traffic_experiment(
    const graph::Graph& g, const traffic::TrafficMatrix& demand,
    const traffic::CapacityPlan& plan, std::span<const graph::EdgeSet> scenarios,
    const std::vector<NamedFactory>& protocols);

/// Parallel sharded variant: scenarios are work units on `executor`, each
/// routed with the worker's reusable batch and load buffers; per-scenario
/// metrics and load maps merge in canonical scenario order, so results are
/// bit-identical to the serial overload for every thread count.
[[nodiscard]] TrafficExperimentResult run_traffic_experiment(
    const graph::Graph& g, const traffic::TrafficMatrix& demand,
    const traffic::CapacityPlan& plan, std::span<const graph::EdgeSet> scenarios,
    const std::vector<NamedFactory>& protocols, sim::SweepExecutor& executor);

}  // namespace pr::analysis
