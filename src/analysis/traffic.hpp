// Congestion-under-failure sweeps: the traffic-engineering view of the
// paper's comparison.
//
// The stretch and coverage experiments treat every flow as one unweighted
// probe.  This driver routes a full demand matrix (every ordered pair with
// non-zero demand) through every failure scenario under every protocol,
// accumulates demand-weighted per-interface load, and prices each scenario
// against a capacity plan: max link utilization, overloaded links, and
// delivered / lost / stranded traffic volume.  Like its siblings it has a
// serial reference path and a SweepExecutor overload that is bit-identical
// to it at every thread count (per-scenario units, canonical-order merge).
//
// Two sweep modes share those drivers:
//   * kFullReroute -- the reference oracle: every scenario re-routes every
//     flow from scratch, O(flows) protocol decisions per scenario;
//   * kIncremental (default) -- one pristine routing pass per protocol builds
//     a traffic::FlowIncidenceIndex; each scenario then probes it for the
//     flows whose pristine path crosses a failed edge, re-routes ONLY those,
//     and replays the cached pristine dart paths for everyone else,
//     interleaved in canonical flow order.  Because the replay performs the
//     exact floating-point addition sequence the full re-route would, the
//     metric rows and merged LoadMaps are bit-identical to kFullReroute at
//     every thread count -- single-link sweeps pay for the affected fraction
//     (typically single-digit percent) instead of all n*(n-1) pairs.
//     Debug builds cross-check every incremental cell against the oracle.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "analysis/stretch.hpp"
#include "sim/forwarding_engine.hpp"
#include "sim/run_control.hpp"
#include "traffic/capacity.hpp"
#include "traffic/congestion.hpp"
#include "traffic/demand.hpp"
#include "traffic/incidence.hpp"
#include "traffic/load_map.hpp"

namespace pr::analysis {

/// How a traffic sweep prices each scenario; both modes produce bit-identical
/// results (the incremental path's replay reproduces the oracle's exact
/// floating-point operation sequence), so the oracle survives as the
/// reference for tests, benches and protocols outside the failure-local
/// contract documented in traffic/incidence.hpp.
enum class TrafficSweepMode : std::uint8_t {
  kFullReroute,  ///< re-route every flow per scenario (reference oracle)
  kIncremental,  ///< pristine-path replay + affected-flow re-route
};

/// One protocol's outcome across the whole sweep.
struct ProtocolTraffic {
  std::string name;
  /// One entry per scenario, in the caller's scenario order.
  std::vector<traffic::CongestionMetrics> per_scenario;
  /// Per-dart load summed over all scenarios in canonical order (where
  /// rerouted demand concentrates across the sweep), plus the scenario count
  /// it covers.
  traffic::LoadMapReduction total_load;
  /// Flows routed through a protocol instance, summed over scenarios: the
  /// affected-flow count in incremental mode, scenarios * flows in full mode.
  std::size_t rerouted_flows = 0;

  [[nodiscard]] traffic::CongestionSummary summary() const {
    return traffic::summarize(per_scenario);
  }
};

struct TrafficExperimentResult {
  std::vector<ProtocolTraffic> protocols;
  std::size_t scenarios = 0;
  std::size_t flows_per_scenario = 0;  ///< ordered pairs with non-zero demand
  TrafficSweepMode mode = TrafficSweepMode::kIncremental;

  /// Fraction of (scenario, flow) cells `p` actually routed: the per-sweep
  /// affected-flow fraction in incremental mode, 1.0 in full mode.
  [[nodiscard]] double rerouted_fraction(const ProtocolTraffic& p) const {
    const double total =
        static_cast<double>(scenarios) * static_cast<double>(flows_per_scenario);
    return total == 0.0 ? 0.0 : static_cast<double>(p.rerouted_flows) / total;
  }
};

/// The sweep work-list every traffic driver routes: one FlowSpec per ordered
/// pair with non-zero demand, in the canonical (s, t) order, with the
/// matching per-flow demand vector.  Exposed so capacity-sizing callers (the
/// bench's pristine-load pass) build exactly the list the sweep will route.
void collect_demand_flows(const traffic::TrafficMatrix& demand,
                          std::vector<sim::FlowSpec>& flows,
                          std::vector<double>& demands);

/// Routes the demand matrix through every scenario under every protocol and
/// prices the resulting loads against `plan`.  Scenarios may disconnect the
/// graph: demand whose destination becomes unreachable is accounted as
/// stranded (no scheme can deliver it), demand dropped despite a surviving
/// path as lost.  Serial reference path.  `mode` selects the incremental
/// core or the full-re-route oracle; results are bit-identical either way.
[[nodiscard]] TrafficExperimentResult run_traffic_experiment(
    const graph::Graph& g, const traffic::TrafficMatrix& demand,
    const traffic::CapacityPlan& plan, std::span<const graph::EdgeSet> scenarios,
    const std::vector<NamedFactory>& protocols,
    TrafficSweepMode mode = TrafficSweepMode::kIncremental);

/// Parallel sharded variant: scenarios are work units on `executor`, each
/// routed with the worker's reusable batch, load and incidence buffers
/// (sim::WorkerContext); the per-protocol incidence indexes are built once,
/// up front, and shared read-only by all workers.  Per-scenario metrics and
/// load maps merge in canonical scenario order, so results are bit-identical
/// to the serial overload -- and across both modes -- for every thread count.
[[nodiscard]] TrafficExperimentResult run_traffic_experiment(
    const graph::Graph& g, const traffic::TrafficMatrix& demand,
    const traffic::CapacityPlan& plan, std::span<const graph::EdgeSet> scenarios,
    const std::vector<NamedFactory>& protocols, sim::SweepExecutor& executor,
    TrafficSweepMode mode = TrafficSweepMode::kIncremental);

/// A resilient traffic run: the (possibly partial) result plus the
/// executor's stop report.  result.scenarios == outcome.completed_units and
/// every per-protocol row/load covers exactly the canonical scenario prefix
/// [0, completed_units) -- bit-identical to running just those scenarios.
struct TrafficRunResult {
  TrafficExperimentResult result;
  sim::SweepOutcome outcome;

  [[nodiscard]] bool complete() const noexcept {
    return outcome.stop_reason == sim::StopReason::kCompleted;
  }
};

/// The executor overload under a sim::RunControl: stops cooperatively at
/// scenario boundaries on cancel/deadline/budget, contains per-scenario
/// failures per the control's error policy, and returns the surviving
/// canonical prefix instead of throwing.  Scenario lists are enumerated
/// (unlike sampled storms), so "resume" is simply re-running with the
/// remaining span -- no checkpoint machinery needed here.
[[nodiscard]] TrafficRunResult run_traffic_experiment_resilient(
    const graph::Graph& g, const traffic::TrafficMatrix& demand,
    const traffic::CapacityPlan& plan, std::span<const graph::EdgeSet> scenarios,
    const std::vector<NamedFactory>& protocols, sim::SweepExecutor& executor,
    const sim::RunControl& control,
    TrafficSweepMode mode = TrafficSweepMode::kIncremental);

}  // namespace pr::analysis
