// Versioned, checksummed binary checkpoint codec for sweep resume.
//
// A checkpoint captures mid-sweep reducer state (P^2 markers, top-K entries,
// running summaries) plus the scenario cursor, so a storm sweep stopped at a
// deadline can resume in a later process and finish BIT-IDENTICAL to an
// uninterrupted run.  Two properties make that exactness possible upstream:
// the executor's deterministic truncation contract guarantees the state is a
// clean canonical prefix [0, k), and split-seed RNG streams are stateless per
// scenario, so "resume" needs only the cursor k, never generator state.
//
// Format: the 8-byte magic "PRCKPT01", then the writer's field stream --
// u32/u64 little-endian, f64 as the bit_cast'd u64 (exact round-trip for
// every value including -0.0 and the NaN payloads), strings as u64 length +
// raw bytes -- then a trailing FNV-1a 64 checksum of everything before it.
// The reader verifies magic + checksum up front and bounds-checks every
// read; any mismatch throws CheckpointError.  Schema layout and versioning
// are the CALLER's contract: writers put a kind/version pair right after the
// magic (see analysis/storm.cpp) and readers reject kinds/versions they do
// not understand.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

namespace pr::analysis {

/// Any structural problem with a checkpoint blob: bad magic, checksum
/// mismatch, truncation, or a field that fails the caller's validation.
class CheckpointError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Append-only field writer.  Call the typed appenders in schema order, then
/// finish() exactly once to seal the blob with its checksum.
class CheckpointWriter {
 public:
  CheckpointWriter();

  void u32(std::uint32_t value);
  void u64(std::uint64_t value);
  void f64(double value);
  void str(std::string_view value);

  /// Appends the checksum and returns the sealed blob; the writer must not
  /// be used afterwards.
  [[nodiscard]] std::string finish();

 private:
  std::string buffer_;
  bool finished_ = false;
  /// Construction timestamp when a telemetry sink is installed (0 otherwise):
  /// finish() attributes the whole construct-to-seal span to Phase::kCheckpoint.
  std::uint64_t obs_start_ns_ = 0;
};

/// Sequential field reader over a sealed blob.  The constructor validates
/// magic and checksum; the typed readers must be called in the writer's
/// schema order and throw CheckpointError on any overrun.
class CheckpointReader {
 public:
  explicit CheckpointReader(std::string_view blob);

  [[nodiscard]] std::uint32_t u32();
  [[nodiscard]] std::uint64_t u64();
  [[nodiscard]] double f64();
  [[nodiscard]] std::string str();

  /// True when every payload byte has been consumed (trailing garbage inside
  /// a checksummed blob indicates a schema mismatch -- callers should check
  /// this after the last field).
  [[nodiscard]] bool exhausted() const noexcept { return cursor_ == end_; }

 private:
  /// Throws CheckpointError naming `field`, the failing byte offset, and the
  /// byte counts involved -- a truncation report must locate itself.
  void need(std::size_t bytes, const char* field) const;

  std::string_view blob_;
  std::size_t cursor_ = 0;
  std::size_t end_ = 0;  // payload end: blob size minus trailing checksum
};

/// The FNV-1a 64 digest of arbitrary bytes -- the same function that seals
/// blobs.  Exposed so tools can print a short, stable fingerprint of a final
/// checkpoint ("state_digest") and tests can compare sweep state across
/// process boundaries without shipping whole blobs around.
[[nodiscard]] std::uint64_t checkpoint_digest(std::string_view bytes) noexcept;

}  // namespace pr::analysis
