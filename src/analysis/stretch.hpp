// Path-length stretch analysis (the paper's Section 6 metric).
//
// "We define the stretch of a path as the ratio between the total path cost
//  while cycle following and the path cost of the normal shortest path."
// The Figure 2 curves plot the complementary CDF P(Stretch > x | path),
// conditioned on paths affected by the failure scenario (unaffected pairs
// have stretch 1 under every scheme and carry no information).
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "net/forwarding.hpp"
#include "route/routing_db.hpp"
#include "route/scenario_cache.hpp"

namespace pr::sim {
class SweepExecutor;
}  // namespace pr::sim

namespace pr::analysis {

/// Empirical complementary CDF of `samples` evaluated at each x in `xs`:
/// P(sample > x).  Infinite samples (dropped packets) inflate every point.
[[nodiscard]] std::vector<double> ccdf(std::span<const double> samples,
                                       std::span<const double> xs);

/// True when the (pristine) shortest path from `s` to `t` recorded in
/// `routes` traverses at least one edge of `failures`.
[[nodiscard]] bool path_affected(const route::RoutingDb& routes, graph::NodeId s,
                                 graph::NodeId t, const graph::EdgeSet& failures);

/// Builds a fresh protocol instance for a scenario; the Network already has
/// the scenario's failures installed when the factory runs.
using ProtocolFactory =
    std::function<std::unique_ptr<net::ForwardingProtocol>(const net::Network&)>;

/// Cache-aware variant: sweep drivers own a ScenarioRoutingCache (one per
/// worker) and pass it here so protocols that reconverge can borrow
/// delta-repaired tables instead of building fresh RoutingDbs per scenario.
using CachedProtocolFactory = std::function<std::unique_ptr<net::ForwardingProtocol>(
    const net::Network&, route::ScenarioRoutingCache&)>;

struct NamedFactory {
  std::string name;
  ProtocolFactory make;
  /// Optional: preferred by drivers that own a cache.  When empty, `make`
  /// runs instead, so factories that never rebuild tables need not set it.
  CachedProtocolFactory make_cached{};
};

/// The one instantiation rule every sweep driver uses: the cache-aware maker
/// when the factory provides one, the plain maker otherwise.  Tables served
/// by the cache are bit-identical to from-scratch builds, so both paths
/// produce identical sweep results.
[[nodiscard]] inline std::unique_ptr<net::ForwardingProtocol> make_protocol(
    const NamedFactory& factory, const net::Network& net,
    route::ScenarioRoutingCache& cache) {
  return factory.make_cached ? factory.make_cached(net, cache) : factory.make(net);
}

/// Aggregate outcome of one protocol across all scenarios and affected pairs.
struct ProtocolStretch {
  std::string name;
  /// One entry per (scenario, affected ordered pair): cost ratio, or +inf for
  /// packets the protocol failed to deliver.
  std::vector<double> stretches;
  std::size_t delivered = 0;
  std::size_t dropped = 0;

  [[nodiscard]] double max_finite_stretch() const;
  [[nodiscard]] double mean_finite_stretch() const;
};

struct StretchExperimentResult {
  std::vector<ProtocolStretch> protocols;
  std::size_t scenarios = 0;
  std::size_t affected_pairs = 0;  ///< summed over scenarios
};

/// Runs every protocol over every failure scenario and every affected ordered
/// source/destination pair, measuring the cost of the route each packet
/// actually travelled against the pristine shortest-path cost.  This is the
/// serial reference path; the executor overload below is bit-identical to it.
[[nodiscard]] StretchExperimentResult run_stretch_experiment(
    const graph::Graph& g, std::span<const graph::EdgeSet> scenarios,
    const std::vector<NamedFactory>& protocols);

/// Parallel sharded variant: scenarios are work units on `executor`, each
/// routed with the worker's reusable batch buffers and merged in canonical
/// scenario order.  Results (counts, stretch samples and their order) are
/// bit-identical to the serial overload for every thread count.
[[nodiscard]] StretchExperimentResult run_stretch_experiment(
    const graph::Graph& g, std::span<const graph::EdgeSet> scenarios,
    const std::vector<NamedFactory>& protocols, sim::SweepExecutor& executor);

}  // namespace pr::analysis
