#include "analysis/protocols.hpp"

namespace pr::analysis {

ProtocolSuite::ProtocolSuite(const graph::Graph& g, embed::EmbedOptions embed_opts,
                             route::DiscriminatorKind dd_kind)
    : graph_(&g),
      embedding_(embed::embed(g, embed_opts)),
      routes_(g, nullptr, dd_kind),
      cycles_(embedding_.rotation) {}

ProtocolSuite::ProtocolSuite(const graph::Graph& g, embed::Embedding embedding,
                             route::DiscriminatorKind dd_kind)
    : graph_(&g),
      embedding_(std::move(embedding)),
      routes_(g, nullptr, dd_kind),
      cycles_(embedding_.rotation) {}

NamedFactory ProtocolSuite::reconvergence() const {
  NamedFactory factory;
  factory.name = "Re-convergence";
  const auto kind = routes_.discriminator_kind();
  // Reference path: one fresh RoutingDb (n full Dijkstras) per scenario.
  // Both paths build with the suite's discriminator kind so their tables
  // are interchangeable bit for bit.
  factory.make = [kind](const net::Network& net) {
    return std::make_unique<route::ReconvergedRouting>(net, kind);
  };
  // Sweep path: borrow the driver's delta-repaired tables -- bit-identical
  // to the fresh build, but only the trees touching a failed edge are
  // recomputed.
  factory.make_cached = [kind](const net::Network& net,
                               route::ScenarioRoutingCache& cache) {
    return std::make_unique<route::ReconvergedRouting>(
        net, cache.tables(net.graph(), net.failed_links(), kind));
  };
  return factory;
}

NamedFactory ProtocolSuite::fcp() const {
  return {"Failure-Carrying Packets", [this](const net::Network&) {
            return std::make_unique<route::FcpRouting>(*graph_);
          }};
}

NamedFactory ProtocolSuite::pr() const {
  return {"Packet Re-cycling", [this](const net::Network&) {
            return std::make_unique<core::PacketRecycling>(
                routes_, cycles_, core::PrVariant::kDistanceDiscriminator);
          }};
}

NamedFactory ProtocolSuite::pr_single_bit() const {
  return {"Packet Re-cycling (1-bit)", [this](const net::Network&) {
            return std::make_unique<core::PacketRecycling>(routes_, cycles_,
                                                           core::PrVariant::kSingleBit);
          }};
}

NamedFactory ProtocolSuite::lfa() const {
  return {"Loop-Free Alternates", [this](const net::Network&) {
            return std::make_unique<route::LfaRouting>(routes_);
          }};
}

NamedFactory ProtocolSuite::lfa_node_protecting() const {
  return {"LFA (node-protecting)", [this](const net::Network&) {
            return std::make_unique<route::LfaRouting>(routes_,
                                                       route::LfaKind::kNodeProtecting);
          }};
}

NamedFactory ProtocolSuite::spf() const {
  return {"Plain SPF", [this](const net::Network&) {
            return std::make_unique<route::StaticSpf>(routes_);
          }};
}

std::vector<NamedFactory> ProtocolSuite::paper_trio() const {
  return {reconvergence(), fcp(), pr()};
}

}  // namespace pr::analysis
