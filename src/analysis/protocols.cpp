#include "analysis/protocols.hpp"

namespace pr::analysis {

namespace {

/// Non-owning adapter so factories can hand out suite- or cache-owned
/// protocol instances through the unique_ptr-returning factory interface.
/// The referenced protocol must outlive the scenario (suite members do by
/// contract; cache-owned ones live until the cache's next different-scenario
/// call, exactly the borrowing rule ScenarioRoutingCache documents).
class BorrowedProtocol final : public net::ForwardingProtocol {
 public:
  explicit BorrowedProtocol(net::ForwardingProtocol& inner) : inner_(&inner) {}

  [[nodiscard]] net::ForwardingDecision forward(const net::Network& net,
                                                graph::NodeId at,
                                                graph::DartId arrived_over,
                                                net::Packet& packet) override {
    return inner_->forward(net, at, arrived_over, packet);
  }

  [[nodiscard]] std::string_view name() const noexcept override {
    return inner_->name();
  }

 private:
  net::ForwardingProtocol* inner_;
};

/// Owning per-scenario variant for drivers without a cache: converged tables
/// for the network's current failure set plus the alternates derived from
/// them.
class PostConvergenceLfa final : public net::ForwardingProtocol {
 public:
  PostConvergenceLfa(const net::Network& net, route::DiscriminatorKind kind)
      : db_(net.graph(), &net.failed_links(), kind),
        lfa_(db_, route::LfaKind::kLinkProtecting) {}

  [[nodiscard]] net::ForwardingDecision forward(const net::Network& net,
                                                graph::NodeId at,
                                                graph::DartId arrived_over,
                                                net::Packet& packet) override {
    return lfa_.forward(net, at, arrived_over, packet);
  }

  [[nodiscard]] std::string_view name() const noexcept override {
    return lfa_.name();
  }

 private:
  route::RoutingDb db_;
  route::LfaRouting lfa_;
};

}  // namespace

ProtocolSuite::ProtocolSuite(const graph::Graph& g, embed::EmbedOptions embed_opts,
                             route::DiscriminatorKind dd_kind)
    : graph_(&g),
      embedding_(embed::embed(g, embed_opts)),
      routes_(g, nullptr, dd_kind),
      cycles_(embedding_.rotation),
      lfa_link_(routes_, route::LfaKind::kLinkProtecting),
      lfa_node_(routes_, route::LfaKind::kNodeProtecting) {}

ProtocolSuite::ProtocolSuite(const graph::Graph& g, embed::Embedding embedding,
                             route::DiscriminatorKind dd_kind)
    : graph_(&g),
      embedding_(std::move(embedding)),
      routes_(g, nullptr, dd_kind),
      cycles_(embedding_.rotation),
      lfa_link_(routes_, route::LfaKind::kLinkProtecting),
      lfa_node_(routes_, route::LfaKind::kNodeProtecting) {}

NamedFactory ProtocolSuite::reconvergence() const {
  NamedFactory factory;
  factory.name = "Re-convergence";
  const auto kind = routes_.discriminator_kind();
  // Reference path: one fresh RoutingDb (n full Dijkstras) per scenario.
  // Both paths build with the suite's discriminator kind so their tables
  // are interchangeable bit for bit.
  factory.make = [kind](const net::Network& net) {
    return std::make_unique<route::ReconvergedRouting>(net, kind);
  };
  // Sweep path: borrow the driver's delta-repaired tables -- bit-identical
  // to the fresh build, but only the trees touching a failed edge are
  // recomputed.
  factory.make_cached = [kind](const net::Network& net,
                               route::ScenarioRoutingCache& cache) {
    return std::make_unique<route::ReconvergedRouting>(
        net, cache.tables(net.graph(), net.failed_links(), kind));
  };
  return factory;
}

NamedFactory ProtocolSuite::fcp() const {
  return {"Failure-Carrying Packets", [this](const net::Network&) {
            return std::make_unique<route::FcpRouting>(*graph_);
          }};
}

NamedFactory ProtocolSuite::pr() const {
  return {"Packet Re-cycling", [this](const net::Network&) {
            return std::make_unique<core::PacketRecycling>(
                routes_, cycles_, core::PrVariant::kDistanceDiscriminator);
          }};
}

NamedFactory ProtocolSuite::pr_single_bit() const {
  return {"Packet Re-cycling (1-bit)", [this](const net::Network&) {
            return std::make_unique<core::PacketRecycling>(routes_, cycles_,
                                                           core::PrVariant::kSingleBit);
          }};
}

NamedFactory ProtocolSuite::lfa() const {
  // Pristine-table alternates depend only on routes_, so all scenarios share
  // the suite-owned instance instead of re-deriving it per scenario.
  return {"Loop-Free Alternates", [this](const net::Network&) {
            return std::make_unique<BorrowedProtocol>(lfa_link_);
          }};
}

NamedFactory ProtocolSuite::lfa_node_protecting() const {
  return {"LFA (node-protecting)", [this](const net::Network&) {
            return std::make_unique<BorrowedProtocol>(lfa_node_);
          }};
}

NamedFactory ProtocolSuite::lfa_post_convergence() const {
  NamedFactory factory;
  factory.name = "LFA (post-convergence)";
  const auto kind = routes_.discriminator_kind();
  // Reference path: fresh converged tables + fresh alternate derivation.
  factory.make = [kind](const net::Network& net) {
    return std::make_unique<PostConvergenceLfa>(net, kind);
  };
  // Sweep path: delta-repaired tables + incrementally resynced alternates,
  // both borrowed from the driver's cache.
  factory.make_cached = [kind](const net::Network& net,
                               route::ScenarioRoutingCache& cache) {
    return std::make_unique<BorrowedProtocol>(
        cache.lfa(net.graph(), net.failed_links(),
                  route::LfaKind::kLinkProtecting, kind));
  };
  return factory;
}

NamedFactory ProtocolSuite::spf() const {
  return {"Plain SPF", [this](const net::Network&) {
            return std::make_unique<route::StaticSpf>(routes_);
          }};
}

std::vector<NamedFactory> ProtocolSuite::paper_trio() const {
  return {reconvergence(), fcp(), pr()};
}

}  // namespace pr::analysis
