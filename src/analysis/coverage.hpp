// Repair-coverage analysis (ablation A2): what fraction of failure scenarios
// does each scheme actually survive?
//
// For every scenario and every ordered affected pair we classify the outcome:
//   delivered          -- the packet reached its destination;
//   dropped-reachable  -- it was lost although a path still existed (a
//                         protocol coverage gap: LFA without an alternate,
//                         the 1-bit PR variant looping until TTL, ...);
//   dropped-partition  -- no path existed; no scheme can deliver.
// PR with DD bits must show zero dropped-reachable -- that is the paper's
// central guarantee -- and the property suites enforce it.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "analysis/stretch.hpp"

namespace pr::analysis {

struct ProtocolCoverage {
  std::string name;
  std::size_t delivered = 0;
  std::size_t dropped_reachable = 0;
  std::size_t dropped_partitioned = 0;

  [[nodiscard]] std::size_t total() const noexcept {
    return delivered + dropped_reachable + dropped_partitioned;
  }
  /// Fraction of *recoverable* packets delivered (partitioned pairs excluded).
  [[nodiscard]] double coverage() const noexcept {
    const std::size_t recoverable = delivered + dropped_reachable;
    return recoverable == 0 ? 1.0
                            : static_cast<double>(delivered) /
                                  static_cast<double>(recoverable);
  }
};

struct CoverageResult {
  std::vector<ProtocolCoverage> protocols;
  std::size_t scenarios = 0;
};

/// Routes every affected ordered pair of every scenario under every protocol
/// and classifies the outcomes.  Unlike the stretch experiment, scenarios may
/// disconnect the graph.
[[nodiscard]] CoverageResult run_coverage_experiment(
    const graph::Graph& g, std::span<const graph::EdgeSet> scenarios,
    const std::vector<NamedFactory>& protocols);

}  // namespace pr::analysis
