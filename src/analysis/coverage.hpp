// Repair-coverage analysis (ablation A2): what fraction of failure scenarios
// does each scheme actually survive?
//
// For every scenario and every ordered affected pair we classify the outcome:
//   delivered          -- the packet reached its destination;
//   dropped-reachable  -- it was lost although a path still existed (a
//                         protocol coverage gap: LFA without an alternate,
//                         the 1-bit PR variant looping until TTL, ...);
//   dropped-partition  -- no path existed; no scheme can deliver.
// PR with DD bits must show zero dropped-reachable -- that is the paper's
// central guarantee -- and the property suites enforce it.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "analysis/stretch.hpp"

namespace pr::analysis {

struct ProtocolCoverage {
  std::string name;
  std::size_t delivered = 0;
  std::size_t dropped_reachable = 0;
  std::size_t dropped_partitioned = 0;

  [[nodiscard]] std::size_t total() const noexcept {
    return delivered + dropped_reachable + dropped_partitioned;
  }
  /// Fraction of *recoverable* packets delivered (partitioned pairs excluded).
  ///
  /// Pinned corner semantics (regression-tested, always NaN-free): the
  /// vacuous 1.0 is reserved for genuinely empty sweeps -- nothing routed at
  /// all.  A sweep that routed traffic but had zero recoverable packets
  /// (every drop was a partition) reports 0.0: it delivered nothing, and
  /// advertising 100% coverage for a blackout would be misleading even when
  /// no scheme could have done better.
  [[nodiscard]] double coverage() const noexcept {
    const std::size_t recoverable = delivered + dropped_reachable;
    if (recoverable > 0) {
      return static_cast<double>(delivered) / static_cast<double>(recoverable);
    }
    return total() == 0 ? 1.0 : 0.0;
  }

  /// Accumulates another shard's counts (same protocol); counters are
  /// order-insensitive, but parallel sweeps still merge in canonical shard
  /// order to honour the executor's determinism contract.
  void merge(const ProtocolCoverage& other) noexcept {
    delivered += other.delivered;
    dropped_reachable += other.dropped_reachable;
    dropped_partitioned += other.dropped_partitioned;
  }
};

struct CoverageResult {
  std::vector<ProtocolCoverage> protocols;
  std::size_t scenarios = 0;
};

/// Routes every affected ordered pair of every scenario under every protocol
/// and classifies the outcomes.  Unlike the stretch experiment, scenarios may
/// disconnect the graph.  This is the serial reference path; the executor
/// overload below is bit-identical to it.
[[nodiscard]] CoverageResult run_coverage_experiment(
    const graph::Graph& g, std::span<const graph::EdgeSet> scenarios,
    const std::vector<NamedFactory>& protocols);

/// Parallel sharded variant: scenarios are work units on `executor`, each
/// classified with the worker's reusable batch buffers; per-shard
/// ProtocolCoverage accumulators merge in canonical scenario order.  Counts
/// are identical to the serial overload for every thread count.
[[nodiscard]] CoverageResult run_coverage_experiment(
    const graph::Graph& g, std::span<const graph::EdgeSet> scenarios,
    const std::vector<NamedFactory>& protocols, sim::SweepExecutor& executor);

}  // namespace pr::analysis
