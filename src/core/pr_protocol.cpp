#include "core/pr_protocol.hpp"

#include <stdexcept>

namespace pr::core {

using graph::DartId;
using graph::NodeId;
using net::DropReason;
using net::ForwardingDecision;

PacketRecycling::PacketRecycling(const route::RoutingDb& routes,
                                 const CycleFollowingTable& cycles, PrVariant variant)
    : routes_(&routes), cycles_(&cycles), variant_(variant) {
  if (&routes.graph() != &cycles.graph()) {
    throw std::invalid_argument(
        "PacketRecycling: routing and cycle tables built for different graphs");
  }
}

ForwardingDecision PacketRecycling::forward(const net::Network& net, NodeId at,
                                            DartId arrived_over, net::Packet& packet) {
  const graph::Graph& g = net.graph();
  const NodeId dest = packet.destination;
  if (at == dest) return ForwardingDecision::deliver();
  const std::size_t deg = g.degree(at);
  if (deg == 0) return ForwardingDecision::drop(DropReason::kNoRoute);

  // The candidate out-interface currently under consideration, or
  // kInvalidDart when the routing table should be consulted.
  DartId candidate = graph::kInvalidDart;
  if (packet.pr_bit) {
    if (arrived_over == graph::kInvalidDart) {
      // Defensive: a marked packet can only exist downstream of a detection,
      // so it always has an arrival interface.  Fall back to normal routing.
      packet.pr_bit = false;
    } else {
      candidate = cycles_->cycle_following(arrived_over);
    }
  }

  // Whether shortest-path forwarding has already been attempted at this node
  // during this decision (prevents livelock in the 1-bit variant, and caps
  // the loop: sigma cycles through at most deg candidates).
  bool tried_spf = false;
  const std::size_t max_steps = 2 * deg + 4;

  for (std::size_t step = 0; step < max_steps; ++step) {
    if (!packet.pr_bit) {
      // -- normal shortest-path mode --
      const DartId out = routes_->next_dart(at, dest);
      if (out == graph::kInvalidDart) {
        return ForwardingDecision::drop(DropReason::kNoRoute);
      }
      if (net.dart_usable(out)) return ForwardingDecision::forward(out);
      // Failure detected while routing: mark, stamp, divert (Section 4.2/4.3).
      tried_spf = true;
      packet.pr_bit = true;
      if (variant_ == PrVariant::kDistanceDiscriminator) {
        packet.dd = routes_->discriminator(at, dest);
      }
      candidate = cycles_->complementary(out);
      continue;
    }

    // -- cycle-following mode --
    if (net.dart_usable(candidate)) return ForwardingDecision::forward(candidate);

    // Failure encountered while cycle following: termination condition.
    ++termination_checks_;
    bool resume_spf = false;
    if (variant_ == PrVariant::kSingleBit) {
      // Section 4.2: meeting a failure again ends cycle following.
      resume_spf = !tried_spf;
    } else {
      const std::uint32_t own = routes_->discriminator(at, dest);
      resume_spf = own < packet.dd && !tried_spf;
    }
    if (resume_spf) {
      packet.pr_bit = false;  // next iteration consults the routing table
      continue;
    }
    // Continue along the complementary cycle of the failed interface
    // (equivalently: the next interface in rotation order -- right-hand rule).
    candidate = cycles_->complementary(candidate);
  }

  // Every incident link is down (possible mid-flight in the event simulator,
  // or at a fully disconnected source).
  return ForwardingDecision::drop(DropReason::kNoRoute);
}

}  // namespace pr::core
