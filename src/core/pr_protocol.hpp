// Packet Re-cycling forwarding (paper Sections 4.2 and 4.3) -- the core
// contribution.
//
// Normal operation is plain shortest-path forwarding.  When the chosen
// out-interface is down, the detecting router marks the packet (PR bit),
// stamps its own distance discriminator into the DD bits, and diverts the
// packet onto the complementary cycle of the failed interface.  Marked
// packets are forwarded by cycle-following tables (keyed on the incoming
// interface) instead of routing tables.  When a marked packet meets another
// failed interface, the router compares its own discriminator with the DD
// bits:
//
//   own < DD  ->  clear the PR bit and resume shortest-path forwarding
//   own >= DD ->  continue on the complementary cycle of the failed interface
//
// Two variants are provided:
//   kSingleBit (4.2):  no DD bits; a marked packet meeting a failure always
//                      resumes shortest-path routing.  Guarantees single-
//                      failure recovery in 2-edge-connected networks but can
//                      loop under failure combinations (the walker's TTL then
//                      expires; the coverage bench quantifies this).
//   kDistanceDiscriminator (4.3): full protocol; delivery guaranteed for any
//                      failure combination that keeps source and destination
//                      connected.
#pragma once

#include <cstdint>

#include "core/cycle_table.hpp"
#include "net/forwarding.hpp"
#include "route/routing_db.hpp"

namespace pr::core {

enum class PrVariant : std::uint8_t {
  kSingleBit,              ///< Section 4.2: PR bit only
  kDistanceDiscriminator,  ///< Section 4.3: PR bit + DD bits
};

class PacketRecycling final : public net::ForwardingProtocol {
 public:
  /// `routes` are the pristine-topology tables (with the discriminator
  /// column); `cycles` the embedding-derived cycle-following tables.  Both
  /// must outlive the protocol.  Nothing is ever recomputed at forwarding
  /// time -- the protocol's key property.
  PacketRecycling(const route::RoutingDb& routes, const CycleFollowingTable& cycles,
                  PrVariant variant = PrVariant::kDistanceDiscriminator);

  [[nodiscard]] net::ForwardingDecision forward(const net::Network& net,
                                                graph::NodeId at,
                                                graph::DartId arrived_over,
                                                net::Packet& packet) override;

  [[nodiscard]] std::string_view name() const noexcept override {
    return variant_ == PrVariant::kSingleBit ? "pr-1bit" : "pr";
  }

  [[nodiscard]] PrVariant variant() const noexcept { return variant_; }

  /// Failure encounters that triggered the termination comparison; exposed so
  /// tests can assert protocol dynamics.
  [[nodiscard]] std::uint64_t termination_checks() const noexcept {
    return termination_checks_;
  }

 private:
  const route::RoutingDb* routes_;
  const CycleFollowingTable* cycles_;
  PrVariant variant_;
  std::uint64_t termination_checks_ = 0;
};

}  // namespace pr::core
