// Cycle-following tables (paper Section 4.1, Table 1).
//
// Per router, a three-column table with one row per interface:
//
//   incoming interface | cycle-following out-interface | complementary out
//
// Both data columns are permutation lookups over the cellular embedding's
// face-successor phi:
//
//   cycle_following(in)  = phi(in)            -- continue the face (cycle)
//                                                the packet is following;
//   complementary(out)   = phi(reverse(out))  -- hop onto the complementary
//                                                cycle of a failed out-link.
//
// The whole-network object below stores phi once (two words per dart); a
// router's table is the slice touching its interfaces, and
// memory_bytes_per_router() prices exactly that slice for the E9 bench.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "embed/embedder.hpp"

namespace pr::core {

using embed::RotationSystem;
using graph::DartId;
using graph::Graph;
using graph::NodeId;

class CycleFollowingTable {
 public:
  /// Builds the tables from a cellular embedding's rotation system.  The
  /// rotation system (and its graph) must outlive the table.
  explicit CycleFollowingTable(const RotationSystem& rotation);

  /// Column 2: out-interface continuing the cycle of a packet that arrived
  /// over `arrived_over`.
  [[nodiscard]] DartId cycle_following(DartId arrived_over) const {
    return phi_.at(arrived_over);
  }

  /// Column 3 (failure avoidance): out-interface on the complementary cycle
  /// of the failed out-interface `failed_out`.  Equals sigma(failed_out): the
  /// next interface in rotation order -- the right-hand rule.
  [[nodiscard]] DartId complementary(DartId failed_out) const {
    return phi_.at(graph::reverse(failed_out));
  }

  /// One rendered row of the router's table (paper Table 1 layout).
  struct Row {
    DartId incoming;         ///< interface the packet arrived over
    DartId cycle_following;  ///< column 2
    DartId complementary;    ///< column 3: complementary of column 2's link
  };

  /// The rows of router `v`'s table, one per interface, in rotation order.
  [[nodiscard]] std::vector<Row> rows_for(NodeId v) const;

  /// Renders router `v`'s table like the paper's Table 1 (interface names
  /// I_XY, cycle ids from the face decomposition).
  [[nodiscard]] std::string render_table(NodeId v, const embed::FaceSet& faces) const;

  /// Bytes router `v` must store: two interface ids per incident interface.
  [[nodiscard]] std::size_t memory_bytes_per_router(NodeId v) const;

  [[nodiscard]] const Graph& graph() const noexcept { return *graph_; }

 private:
  const Graph* graph_;
  std::vector<DartId> phi_;
};

}  // namespace pr::core
