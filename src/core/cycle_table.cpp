#include "core/cycle_table.hpp"

#include <sstream>

namespace pr::core {

CycleFollowingTable::CycleFollowingTable(const RotationSystem& rotation)
    : graph_(&rotation.graph()), phi_(graph_->dart_count(), graph::kInvalidDart) {
  for (DartId d = 0; d < graph_->dart_count(); ++d) {
    phi_[d] = rotation.face_successor(d);
  }
}

std::vector<CycleFollowingTable::Row> CycleFollowingTable::rows_for(NodeId v) const {
  std::vector<Row> rows;
  rows.reserve(graph_->degree(v));
  for (DartId out : graph_->out_darts(v)) {
    // The incoming interface paired with out-dart `out` is its reverse: the
    // dart arriving at v from the same neighbour.
    const DartId incoming = graph::reverse(out);
    const DartId cf = cycle_following(incoming);
    rows.push_back(Row{incoming, cf, complementary(cf)});
  }
  return rows;
}

std::string CycleFollowingTable::render_table(NodeId v,
                                              const embed::FaceSet& faces) const {
  const Graph& g = *graph_;
  const auto iface = [&g](DartId d) {
    // Paper notation I_YX: interface at X receiving packets from Y -- i.e.
    // named after the dart Y->X for incoming, X->Z for outgoing.
    return "I_" + g.display_name(g.dart_tail(d)) + g.display_name(g.dart_head(d));
  };
  std::ostringstream out;
  out << "Cycle following table at node " << g.display_name(v) << "\n";
  out << "Incoming      Cycle Following    Complementary\n";
  for (const Row& row : rows_for(v)) {
    out << iface(row.incoming) << "          " << iface(row.cycle_following) << " (c"
        << faces.main_cycle_of(row.cycle_following) + 1 << ")          "
        << iface(row.complementary) << " (c"
        << faces.main_cycle_of(row.complementary) + 1 << ")\n";
  }
  return out.str();
}

std::size_t CycleFollowingTable::memory_bytes_per_router(NodeId v) const {
  // Two stored columns (cycle-following + complementary interface ids) per
  // incident interface; the incoming interface is the lookup key, not stored.
  return graph_->degree(v) * 2 * sizeof(DartId);
}

}  // namespace pr::core
