// Traffic-class-scoped Packet Re-cycling (paper Section 7).
//
// "Depending on the desired deployment strategy, ISPs can include extra rules
//  and policies to limit PR to certain types of traffic (for example by
//  limiting it to certain classes identifiable by the remaining DSCP bits)."
//
// PolicyGatedRecycling wraps the full PR protocol behind a per-class policy:
// packets whose traffic class is protected get cycle-following repair, the
// rest behave like plain shortest-path traffic (dropped at failures until the
// IGP reconverges).  This is how an operator would sell PR as a premium
// "loss-free" service tier without touching best-effort forwarding.
#pragma once

#include <bitset>
#include <initializer_list>

#include "core/pr_protocol.hpp"
#include "route/static_spf.hpp"

namespace pr::core {

/// Traffic classes are the eight DSCP class-selector values (0 = best
/// effort, 5 = expedited forwarding, ...).
inline constexpr std::size_t kTrafficClasses = 8;

class TrafficClassPolicy {
 public:
  TrafficClassPolicy() = default;
  TrafficClassPolicy(std::initializer_list<std::uint8_t> protected_classes) {
    for (auto c : protected_classes) protect(c);
  }

  void protect(std::uint8_t traffic_class) { classes_.set(index(traffic_class)); }
  void unprotect(std::uint8_t traffic_class) { classes_.reset(index(traffic_class)); }
  [[nodiscard]] bool protects(std::uint8_t traffic_class) const {
    return classes_.test(index(traffic_class));
  }
  [[nodiscard]] std::size_t protected_count() const noexcept { return classes_.count(); }

  /// Policy protecting every class (plain PR).
  [[nodiscard]] static TrafficClassPolicy all() {
    TrafficClassPolicy p;
    p.classes_.set();
    return p;
  }

 private:
  static std::size_t index(std::uint8_t traffic_class) {
    if (traffic_class >= kTrafficClasses) {
      throw std::invalid_argument("TrafficClassPolicy: class out of range");
    }
    return traffic_class;
  }

  std::bitset<kTrafficClasses> classes_;
};

class PolicyGatedRecycling final : public net::ForwardingProtocol {
 public:
  /// `routes` and `cycles` as for PacketRecycling; both must outlive this.
  PolicyGatedRecycling(const route::RoutingDb& routes, const CycleFollowingTable& cycles,
                       TrafficClassPolicy policy,
                       PrVariant variant = PrVariant::kDistanceDiscriminator)
      : recycling_(routes, cycles, variant), spf_(routes), policy_(policy) {}

  [[nodiscard]] net::ForwardingDecision forward(const net::Network& net,
                                                graph::NodeId at,
                                                graph::DartId arrived_over,
                                                net::Packet& packet) override {
    if (policy_.protects(packet.traffic_class)) {
      return recycling_.forward(net, at, arrived_over, packet);
    }
    return spf_.forward(net, at, arrived_over, packet);
  }

  [[nodiscard]] std::string_view name() const noexcept override {
    return "pr-policy-gated";
  }

  [[nodiscard]] const TrafficClassPolicy& policy() const noexcept { return policy_; }

 private:
  PacketRecycling recycling_;
  route::StaticSpf spf_;
  TrafficClassPolicy policy_;
};

}  // namespace pr::core
