#include "obs/telemetry.hpp"

#include <cstdarg>
#include <cstdio>

namespace pr::obs {

#if !defined(PR_OBS_DISABLED)
thread_local Counters* g_thread_sink = nullptr;
#endif

const char* to_string(Counter c) noexcept {
  switch (c) {
    case Counter::kSpfFullBuilds: return "spf_full_builds";
    case Counter::kSpfRepairs: return "spf_repairs";
    case Counter::kSpfTreeRepairs: return "spf_tree_repairs";
    case Counter::kSpfOrphanNodes: return "spf_orphan_nodes";
    case Counter::kRouteCachePristineBuilds: return "route_cache_pristine_builds";
    case Counter::kRouteCacheRebuilds: return "route_cache_rebuilds";
    case Counter::kRouteCacheHits: return "route_cache_hits";
    case Counter::kFcpMemoHits: return "fcp_memo_hits";
    case Counter::kFcpMemoFills: return "fcp_memo_fills";
    case Counter::kFcpMemoEvictions: return "fcp_memo_evictions";
    case Counter::kIncidenceProbes: return "incidence_probes";
    case Counter::kIncidenceAffectedFlows: return "incidence_affected_flows";
    case Counter::kIncidenceUniverseFlows: return "incidence_universe_flows";
    case Counter::kFlowsRouted: return "flows_routed";
    case Counter::kFlowsDelivered: return "flows_delivered";
    case Counter::kFlowsDropped: return "flows_dropped";
    case Counter::kForwardHops: return "forward_hops";
    case Counter::kCycleFollowFlows: return "cycle_follow_flows";
    case Counter::kCycleFollowHops: return "cycle_follow_hops";
    case Counter::kUnitsExecuted: return "units_executed";
    case Counter::kUnitErrors: return "unit_errors";
    case Counter::kReduceCalls: return "reduce_calls";
    case Counter::kCheckpoints: return "checkpoints";
    case Counter::kCheckpointBytes: return "checkpoint_bytes";
    case Counter::kCount: break;
  }
  return "unknown";
}

const char* to_string(Phase p) noexcept {
  switch (p) {
    case Phase::kUnit: return "unit";
    case Phase::kReduce: return "reduce";
    case Phase::kSpfRebuild: return "spf_rebuild";
    case Phase::kCheckpoint: return "checkpoint";
    case Phase::kCount: break;
  }
  return "unknown";
}

namespace {

// Ratio helper for the derived-rate block; 0/0 reports as 0 so a bench leg
// that never touched a subsystem still emits a well-formed number.
double ratio(std::uint64_t num, std::uint64_t den) {
  return den == 0 ? 0.0 : static_cast<double>(num) / static_cast<double>(den);
}

void append_fmt(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, fmt);
  const int n = std::vsnprintf(buf, sizeof buf, fmt, ap);
  va_end(ap);
  if (n > 0) out.append(buf, static_cast<std::size_t>(n) < sizeof buf ? static_cast<std::size_t>(n) : sizeof buf - 1);
}

}  // namespace

std::string telemetry_json(const Registry& registry, double elapsed_ms, int indent) {
  const Counters total = registry.aggregate();
  const std::string pad(static_cast<std::size_t>(indent < 0 ? 0 : indent), ' ');
  const std::string pad2 = pad + "  ";
  const std::string pad3 = pad2 + "  ";
  std::string out;
  out.reserve(4096);

  const std::uint64_t cache_hits = total.get(Counter::kRouteCacheHits);
  const std::uint64_t cache_lookups = cache_hits + total.get(Counter::kRouteCacheRebuilds) +
                                      total.get(Counter::kRouteCachePristineBuilds);
  const std::uint64_t repairs =
      total.get(Counter::kSpfRepairs) + total.get(Counter::kSpfTreeRepairs);
  const std::uint64_t spf_ops = repairs + total.get(Counter::kSpfFullBuilds);
  const std::uint64_t fcp_hits = total.get(Counter::kFcpMemoHits);
  const std::uint64_t fcp_lookups = fcp_hits + total.get(Counter::kFcpMemoFills);

  out += "{\n";
  append_fmt(out, "%s\"cache_hit_rate\": %.6f,\n", pad2.c_str(),
             ratio(cache_hits, cache_lookups));
  append_fmt(out, "%s\"repair_fraction\": %.6f,\n", pad2.c_str(), ratio(repairs, spf_ops));
  append_fmt(out, "%s\"fcp_memo_hit_rate\": %.6f,\n", pad2.c_str(),
             ratio(fcp_hits, fcp_lookups));
  append_fmt(out, "%s\"affected_flow_fraction\": %.6f,\n", pad2.c_str(),
             ratio(total.get(Counter::kIncidenceAffectedFlows),
                   total.get(Counter::kIncidenceUniverseFlows)));

  out += pad2 + "\"counters\": {\n";
  for (std::size_t i = 0; i < kCounterCount; ++i) {
    const auto c = static_cast<Counter>(i);
    append_fmt(out, "%s\"%s\": %llu%s\n", pad3.c_str(), to_string(c),
               static_cast<unsigned long long>(total.get(c)),
               i + 1 < kCounterCount ? "," : "");
  }
  out += pad2 + "},\n";

  out += pad2 + "\"phases\": {\n";
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    const auto p = static_cast<Phase>(i);
    append_fmt(out, "%s\"%s\": {\"ms\": %.3f, \"calls\": %llu}%s\n", pad3.c_str(),
               to_string(p), static_cast<double>(total.phase_nanos(p)) / 1e6,
               static_cast<unsigned long long>(total.phase_calls(p)),
               i + 1 < kPhaseCount ? "," : "");
  }
  out += pad2 + "},\n";

  // Per-worker rows keep only the scheduling-visible numbers: units executed,
  // busy unit time, and (when the caller supplies the job wall time) the
  // utilization each worker achieved.  Worker identity is scheduler noise, so
  // these rows are diagnostic, not part of any determinism check.
  out += pad2 + "\"per_worker\": [\n";
  for (std::size_t w = 0; w < registry.worker_count(); ++w) {
    const Counters& cell = registry.worker(w);
    const double busy_ms = static_cast<double>(cell.phase_nanos(Phase::kUnit)) / 1e6;
    append_fmt(out, "%s{\"worker\": %zu, \"units\": %llu, \"busy_ms\": %.3f", pad3.c_str(),
               w, static_cast<unsigned long long>(cell.get(Counter::kUnitsExecuted)),
               busy_ms);
    if (elapsed_ms > 0.0) {
      append_fmt(out, ", \"utilization\": %.4f", busy_ms / elapsed_ms);
    }
    out += w + 1 < registry.worker_count() ? "},\n" : "}\n";
  }
  out += pad2 + "]\n";
  out += pad + "}";
  return out;
}

}  // namespace pr::obs
