// Low-overhead, determinism-preserving telemetry for the sweep pipeline.
//
// The sweep stack is allocation-free, multi-threaded and incremental -- and
// therefore opaque: a cold routing cache, a repair path falling back to full
// rebuilds, or a starving worker is invisible in the end-to-end totals.  This
// layer makes the hot paths observable without perturbing them:
//
//   * Counters -- a fixed-size block of u64 cells (event counts plus per-phase
//     nanosecond/call accumulators).  One block lives per sweep worker
//     (obs::Registry) and instrumented code reaches it through a THREAD-LOCAL
//     sink pointer: obs::count(...) is a TLS load, a null test and an add.
//     With no sink installed (the default everywhere) every instrumentation
//     point costs one predictable branch; defining PR_OBS_DISABLED compiles
//     the calls out entirely.
//   * PhaseTimer -- RAII wall-time attribution into the same cells.  A timer
//     constructed while no sink is installed never reads the clock.
//   * Registry -- per-worker Counters blocks, merged into one aggregate view
//     in canonical worker order (0, 1, 2, ...) at sweep end.
//
// Determinism contract: telemetry only OBSERVES.  No counter or timer value
// ever feeds back into routing, scheduling or reduction, so enabling or
// disabling it cannot change a single result bit (obs_test pins sweep results
// and checkpoint blobs byte-identical either way, at 1/2/8 threads).
// Per-worker cell values may legitimately differ run to run -- which worker
// executed which unit is scheduler noise -- but aggregate event totals for a
// deterministic sweep are themselves deterministic.
#pragma once

#include <array>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace pr::obs {

/// Event counters, one cell each.  Keep groups together: the JSON report and
/// the derived rates (cache hit rate, repair fraction) are indexed by these.
enum class Counter : std::uint16_t {
  // graph::SpfWorkspace -- how scenarios pay for their routing tables.
  kSpfFullBuilds,    ///< from-scratch Dijkstra runs (full_build)
  kSpfRepairs,       ///< per-destination delta repairs (repair)
  kSpfTreeRepairs,   ///< batched-drive tree repairs (repair_tree)
  kSpfOrphanNodes,   ///< nodes regrown across all repair_tree calls
  // route::ScenarioRoutingCache -- the per-worker routing-table cache.
  kRouteCachePristineBuilds,
  kRouteCacheRebuilds,
  kRouteCacheHits,
  // route::FcpRouting -- the memoised-SPF LRU.
  kFcpMemoHits,
  kFcpMemoFills,  ///< misses, i.e. SPF computations triggered
  kFcpMemoEvictions,
  // traffic::FlowIncidenceIndex / GroupIncidence -- affected-flow probes.
  kIncidenceProbes,         ///< affected_flows() calls
  kIncidenceAffectedFlows,  ///< flows the probes collected, summed
  kIncidenceUniverseFlows,  ///< flow_count() per probe, summed (the denominator)
  // sim::route_batch / ForwardingEngine -- dataplane totals.
  kFlowsRouted,
  kFlowsDelivered,
  kFlowsDropped,
  kForwardHops,
  kCycleFollowFlows,  ///< flows that ended in PR cycle-follow mode (pr_bit set)
  kCycleFollowHops,   ///< hops of those flows
  // sim::SweepExecutor -- scheduling.
  kUnitsExecuted,
  kUnitErrors,
  kReduceCalls,
  // analysis::CheckpointWriter -- resume blobs.
  kCheckpoints,
  kCheckpointBytes,
  kCount
};

/// Wall-time phases accumulated by PhaseTimer (nanoseconds + call counts).
enum class Phase : std::uint8_t {
  kUnit,        ///< sweep unit execution (measured by the executor)
  kReduce,      ///< canonical-order reduction (under the executor lock)
  kSpfRebuild,  ///< scenario routing-table rebuild (ScenarioRoutingCache)
  kCheckpoint,  ///< checkpoint serialization (writer construction to seal)
  kCount
};

[[nodiscard]] const char* to_string(Counter c) noexcept;
[[nodiscard]] const char* to_string(Phase p) noexcept;

inline constexpr std::size_t kCounterCount = static_cast<std::size_t>(Counter::kCount);
inline constexpr std::size_t kPhaseCount = static_cast<std::size_t>(Phase::kCount);

/// Monotonic nanoseconds (steady_clock).  Telemetry-only: never used to make
/// routing or scheduling decisions.
[[nodiscard]] inline std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// One worker's (or one driver thread's) counter block.  Plain u64 cells,
/// no atomics: a block is only ever written by the thread it is installed on.
class Counters {
 public:
  void add(Counter c, std::uint64_t n = 1) noexcept {
    cells_[static_cast<std::size_t>(c)] += n;
  }
  void add_phase(Phase p, std::uint64_t ns) noexcept {
    phase_ns_[static_cast<std::size_t>(p)] += ns;
    ++phase_calls_[static_cast<std::size_t>(p)];
  }

  [[nodiscard]] std::uint64_t get(Counter c) const noexcept {
    return cells_[static_cast<std::size_t>(c)];
  }
  [[nodiscard]] std::uint64_t phase_nanos(Phase p) const noexcept {
    return phase_ns_[static_cast<std::size_t>(p)];
  }
  [[nodiscard]] std::uint64_t phase_calls(Phase p) const noexcept {
    return phase_calls_[static_cast<std::size_t>(p)];
  }

  /// Cell-wise accumulation; merging a set of blocks in any grouping yields
  /// the same totals (integer addition), but canonical callers (Registry)
  /// always merge in worker order so the operation is reproducible by
  /// construction, not by argument.
  void merge(const Counters& other) noexcept {
    for (std::size_t i = 0; i < kCounterCount; ++i) cells_[i] += other.cells_[i];
    for (std::size_t i = 0; i < kPhaseCount; ++i) {
      phase_ns_[i] += other.phase_ns_[i];
      phase_calls_[i] += other.phase_calls_[i];
    }
  }

  void reset() noexcept {
    cells_.fill(0);
    phase_ns_.fill(0);
    phase_calls_.fill(0);
  }

  [[nodiscard]] bool operator==(const Counters&) const noexcept = default;

 private:
  std::array<std::uint64_t, kCounterCount> cells_{};
  std::array<std::uint64_t, kPhaseCount> phase_ns_{};
  std::array<std::uint64_t, kPhaseCount> phase_calls_{};
};

#if !defined(PR_OBS_DISABLED)
/// The calling thread's counter sink; null (the default) disables every
/// instrumentation point on this thread at the cost of one branch each.
extern thread_local Counters* g_thread_sink;

[[nodiscard]] inline Counters* sink() noexcept { return g_thread_sink; }
[[nodiscard]] inline bool enabled() noexcept { return g_thread_sink != nullptr; }

/// The one call every instrumentation point makes.
inline void count(Counter c, std::uint64_t n = 1) noexcept {
  if (Counters* s = g_thread_sink; s != nullptr) s->add(c, n);
}
#else
[[nodiscard]] inline Counters* sink() noexcept { return nullptr; }
[[nodiscard]] inline bool enabled() noexcept { return false; }
inline void count(Counter, std::uint64_t = 1) noexcept {}
#endif

/// Installs `s` as the calling thread's sink for the scope; restores the
/// previous sink (sinks nest) on destruction.  Passing nullptr disables
/// telemetry for the scope.
class ScopedSink {
 public:
  explicit ScopedSink(Counters* s) noexcept
#if !defined(PR_OBS_DISABLED)
      : previous_(g_thread_sink) {
    g_thread_sink = s;
  }
  ~ScopedSink() { g_thread_sink = previous_; }
#else
  {
    (void)s;
  }
  ~ScopedSink() = default;
#endif

  ScopedSink(const ScopedSink&) = delete;
  ScopedSink& operator=(const ScopedSink&) = delete;

 private:
#if !defined(PR_OBS_DISABLED)
  Counters* previous_;
#endif
};

/// RAII wall-time attribution: adds the scope's duration (and one call) to
/// the sink installed at CONSTRUCTION.  With no sink installed the clock is
/// never read -- a disabled timer is two branches.
class PhaseTimer {
 public:
  explicit PhaseTimer(Phase p) noexcept : sink_(sink()), phase_(p) {
    if (sink_ != nullptr) start_ns_ = now_ns();
  }
  ~PhaseTimer() {
    if (sink_ != nullptr) sink_->add_phase(phase_, now_ns() - start_ns_);
  }

  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

 private:
  Counters* sink_;
  Phase phase_;
  std::uint64_t start_ns_ = 0;
};

/// Per-worker counter blocks plus the canonical merge.  The registry itself
/// does no synchronisation: each worker block is written only by its worker
/// thread, and aggregate()/report readers run after the sweep has joined
/// (SweepExecutor::run returns only when every worker is idle).
class Registry {
 public:
  explicit Registry(std::size_t workers = 0) : workers_(workers) {}

  /// Grows to at least `workers` blocks (never shrinks; existing cells keep
  /// their values).  SweepExecutor::set_telemetry calls this with its pool
  /// size, so a registry constructed with 0 still fits any executor.
  void ensure_workers(std::size_t workers) {
    if (workers > workers_.size()) workers_.resize(workers);
  }

  [[nodiscard]] std::size_t worker_count() const noexcept { return workers_.size(); }
  [[nodiscard]] Counters& worker(std::size_t w) { return workers_.at(w); }
  [[nodiscard]] const Counters& worker(std::size_t w) const { return workers_.at(w); }

  /// Canonical per-worker merge: workers folded in index order 0, 1, 2, ...
  [[nodiscard]] Counters aggregate() const {
    Counters total;
    for (const Counters& w : workers_) total.merge(w);
    return total;
  }

  void reset() noexcept {
    for (Counters& w : workers_) w.reset();
  }

 private:
  std::vector<Counters> workers_;
};

/// The "telemetry" JSON object every instrumented bench emits: derived rates
/// first (cache hit rate, SPF repair fraction, FCP memo hit rate, affected
/// flow fraction), then raw counter groups, phase wall times, and a
/// per-worker utilization table (busy phase-kUnit time over `elapsed_ms` of
/// wall clock; elapsed_ms <= 0 suppresses the utilization columns).  `indent`
/// spaces prefix every line after the first so the object nests under any
/// bench's hand-rolled emitter.
[[nodiscard]] std::string telemetry_json(const Registry& registry, double elapsed_ms,
                                         int indent = 2);

}  // namespace pr::obs
