#include "obs/trace_log.hpp"

#include "obs/telemetry.hpp"

#include <algorithm>
#include <cstdio>

namespace pr::obs {

const char* to_string(SpanKind k) noexcept {
  switch (k) {
    case SpanKind::kUnit: return "unit";
    case SpanKind::kReduce: return "reduce";
    case SpanKind::kCheckpoint: return "checkpoint";
    case SpanKind::kFault: return "fault";
    case SpanKind::kStall: return "stall";
    case SpanKind::kTruncate: return "truncate";
  }
  return "unknown";
}

TraceLog::TraceLog(std::size_t capacity) : spans_(capacity == 0 ? 1 : capacity) {}

void TraceLog::record(const TraceSpan& span) noexcept {
  const std::uint64_t slot = next_.fetch_add(1, std::memory_order_relaxed);
  if (slot >= spans_.size()) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  spans_[slot] = span;
}

void TraceLog::record_instant(SpanKind kind, std::uint32_t worker, std::uint64_t unit,
                              std::uint64_t detail) noexcept {
  TraceSpan s;
  s.kind = kind;
  s.worker = worker;
  s.unit = unit;
  s.start_ns = s.end_ns = now_ns();
  s.detail = detail;
  record(s);
}

std::size_t TraceLog::size() const noexcept {
  return std::min<std::uint64_t>(next_.load(std::memory_order_relaxed), spans_.size());
}

void TraceLog::clear() noexcept {
  next_.store(0, std::memory_order_relaxed);
  dropped_.store(0, std::memory_order_relaxed);
}

std::string TraceLog::export_chrome_json() const {
  const std::size_t n = size();
  std::uint64_t epoch = UINT64_MAX;
  for (std::size_t i = 0; i < n; ++i) epoch = std::min(epoch, spans_[i].start_ns);
  if (n == 0) epoch = 0;

  std::string out;
  out.reserve(n * 128 + 256);
  out += "{\"traceEvents\": [\n";
  char buf[320];
  for (std::size_t i = 0; i < n; ++i) {
    const TraceSpan& s = spans_[i];
    const double ts_us = static_cast<double>(s.start_ns - epoch) / 1e3;
    const bool instant = s.end_ns <= s.start_ns;
    int len;
    if (instant) {
      len = std::snprintf(buf, sizeof buf,
                          "  {\"name\": \"%s\", \"ph\": \"i\", \"s\": \"t\", "
                          "\"ts\": %.3f, \"pid\": 1, \"tid\": %u, "
                          "\"args\": {\"unit\": %llu, \"detail\": %llu}}",
                          to_string(s.kind), ts_us, s.worker,
                          static_cast<unsigned long long>(s.unit),
                          static_cast<unsigned long long>(s.detail));
    } else {
      const double dur_us = static_cast<double>(s.end_ns - s.start_ns) / 1e3;
      len = std::snprintf(buf, sizeof buf,
                          "  {\"name\": \"%s\", \"ph\": \"X\", \"ts\": %.3f, "
                          "\"dur\": %.3f, \"pid\": 1, \"tid\": %u, "
                          "\"args\": {\"unit\": %llu, \"detail\": %llu}}",
                          to_string(s.kind), ts_us, dur_us, s.worker,
                          static_cast<unsigned long long>(s.unit),
                          static_cast<unsigned long long>(s.detail));
    }
    if (len > 0) out.append(buf, static_cast<std::size_t>(len));
    out += i + 1 < n ? ",\n" : "\n";
  }
  out += "],\n";
  char tail[96];
  const int len = std::snprintf(tail, sizeof tail, "\"dropped\": %llu}\n",
                                static_cast<unsigned long long>(dropped()));
  if (len > 0) out.append(tail, static_cast<std::size_t>(len));
  return out;
}

}  // namespace pr::obs
