// Bounded in-memory span log of sweep lifecycle events, exportable as
// chrome://tracing JSON.
//
// Workers record fixed-size spans (unit execution, canonical reduce,
// checkpoint serialization, injected faults, stall detections, truncation)
// into a preallocated ring: recording is one atomic fetch_add to claim a slot
// plus plain stores into it -- no locks, no allocation, and nothing the sweep
// results can observe.  When the ring fills, further spans are counted in
// `dropped()` rather than blocking or resizing, so tracing a million-scenario
// storm costs a fixed memory budget.
//
// Reads (export, iteration) are only valid after the producing job has
// completed -- SweepExecutor::run joins all workers before returning, which
// gives the happens-before edge; TraceLog itself does not synchronise readers
// against in-flight writers.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace pr::obs {

enum class SpanKind : std::uint8_t {
  kUnit,        ///< one sweep unit, claim to completion
  kReduce,      ///< canonical-order reduce fold for one unit
  kCheckpoint,  ///< checkpoint blob serialization
  kFault,       ///< injected fault fired (throw/stall/malformed)
  kStall,       ///< stall detector flagged a worker
  kTruncate,    ///< sweep truncated to canonical prefix [0, detail)
};

[[nodiscard]] const char* to_string(SpanKind k) noexcept;

struct TraceSpan {
  SpanKind kind = SpanKind::kUnit;
  std::uint32_t worker = 0;    ///< recording worker lane (driver threads use 0)
  std::uint64_t unit = 0;      ///< sweep unit index (or kind-specific id)
  std::uint64_t start_ns = 0;  ///< obs::now_ns at span start
  std::uint64_t end_ns = 0;    ///< obs::now_ns at span end (== start for instants)
  std::uint64_t detail = 0;    ///< kind-specific payload (bytes, prefix, ...)
};

class TraceLog {
 public:
  /// `capacity` spans are preallocated up front; record() never allocates.
  explicit TraceLog(std::size_t capacity = 1 << 16);

  /// Claims a slot and stores `span`; counts a drop instead when full.
  /// Safe to call concurrently from any number of threads.
  void record(const TraceSpan& span) noexcept;

  /// Convenience for zero-duration marker events.
  void record_instant(SpanKind kind, std::uint32_t worker, std::uint64_t unit,
                      std::uint64_t detail = 0) noexcept;

  /// Spans recorded so far, capped at capacity.  Post-join read only.
  [[nodiscard]] std::size_t size() const noexcept;
  [[nodiscard]] std::size_t capacity() const noexcept { return spans_.size(); }
  [[nodiscard]] std::uint64_t dropped() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const TraceSpan& span(std::size_t i) const { return spans_[i]; }

  /// Drops all recorded spans (post-join only); capacity is kept.
  void clear() noexcept;

  /// chrome://tracing "traceEvents" JSON.  Durations become complete ("ph":
  /// "X") events, instants become "i" events; timestamps are microseconds
  /// relative to the earliest recorded span so the viewer opens at t=0.
  /// Worker lanes map to tids.  Load via chrome://tracing or
  /// https://ui.perfetto.dev.
  [[nodiscard]] std::string export_chrome_json() const;

 private:
  std::vector<TraceSpan> spans_;
  std::atomic<std::uint64_t> next_{0};
  std::atomic<std::uint64_t> dropped_{0};
};

}  // namespace pr::obs
