// Lock-light periodic progress for long sweeps: units completed, throughput,
// ETA, per-worker utilization, and a stall detector.
//
// Workers publish into fixed per-worker lanes of relaxed atomics (one store
// per unit start, a few per unit end); a monitor thread -- spawned by
// SweepExecutor::run_job when progress is attached -- calls tick() on its
// interval to snapshot the lanes, fire callbacks (the benches' stderr
// progress line), and flag stalls.  Nothing here feeds back into scheduling:
// a flagged stall is reported, never acted on, so the determinism contract is
// untouched.  All time flows through explicit `now_ns` parameters so tests
// drive the clock synthetically instead of sleeping.
//
// Stall detection complements sim::RunControl deadlines: a deadline bounds
// the whole sweep, the stall watermark names the specific worker (and unit)
// that has been in flight longer than `stall_after` -- exactly the signal a
// PR_FAULT_STALL_UNIT plan or a wedged syscall produces.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace pr::obs {

struct ProgressSnapshot {
  std::uint64_t now_ns = 0;
  std::uint64_t job_start_ns = 0;
  std::uint64_t units_done = 0;
  std::uint64_t units_total = 0;  ///< 0 when the total is unknown
  double units_per_sec = 0.0;     ///< cumulative, since job start
  double eta_sec = 0.0;           ///< 0 when total unknown or rate is 0
  std::size_t in_flight = 0;      ///< workers currently executing a unit
  /// Per-worker busy fraction since job start (unit execution time over
  /// elapsed wall time), indexed by worker lane.
  std::vector<double> utilization;
};

struct StallEvent {
  std::size_t worker = 0;
  std::uint64_t unit = 0;
  std::uint64_t in_flight_ns = 0;  ///< how long the unit has been running
};

/// Shared progress state for one sweep job at a time (begin_job resets).
/// Thread-safety: worker lanes are written only by their worker; tick(),
/// snapshot() and callback registration belong to the monitor/driver side.
/// Register callbacks before the job starts.
class SweepProgress {
 public:
  struct Options {
    std::uint64_t interval_ns = 1'000'000'000;     ///< tick cadence hint for the monitor
    std::uint64_t stall_after_ns = 5'000'000'000;  ///< in-flight time before a stall fires
  };

  SweepProgress();
  explicit SweepProgress(Options options);

  /// Reads PR_PROGRESS (interval, ms) and PR_STALL_MS (stall threshold, ms)
  /// on top of the defaults above.  PR_PROGRESS=0 keeps the default cadence.
  [[nodiscard]] static Options options_from_env();

  [[nodiscard]] const Options& options() const noexcept { return options_; }

  void on_snapshot(std::function<void(const ProgressSnapshot&)> cb);
  void on_stall(std::function<void(const StallEvent&)> cb);

  // -- executor side ------------------------------------------------------
  void begin_job(std::size_t workers, std::uint64_t units_total, std::uint64_t now_ns);
  void unit_started(std::size_t worker, std::uint64_t unit, std::uint64_t now_ns) noexcept;
  void unit_finished(std::size_t worker, std::uint64_t now_ns) noexcept;
  void end_job(std::uint64_t now_ns) noexcept;

  // -- monitor side -------------------------------------------------------
  /// Snapshots lanes, fires the snapshot callback, and checks each in-flight
  /// worker against stall_after_ns (each claim is reported at most once).
  void tick(std::uint64_t now_ns);
  [[nodiscard]] ProgressSnapshot snapshot(std::uint64_t now_ns) const;
  [[nodiscard]] std::uint64_t stalls_detected() const noexcept {
    return stalls_detected_;
  }

  /// One-line human rendering of a snapshot, e.g.
  /// `progress: 6400/20000 units (32.0%) 2134.5 units/s eta 6.4s busy 3/4 util 0.93`.
  [[nodiscard]] static std::string format_line(const ProgressSnapshot& s);

 private:
  struct Lane {
    std::atomic<std::uint64_t> units_done{0};
    std::atomic<std::uint64_t> busy_ns{0};
    /// Claim time of the unit in flight, 0 when idle.
    std::atomic<std::uint64_t> claim_ns{0};
    std::atomic<std::uint64_t> claim_unit{0};
    /// Claim timestamp of the last stall already reported, so each wedged
    /// unit fires exactly one StallEvent however many ticks observe it.
    std::uint64_t reported_stall_claim = 0;
  };

  Options options_;
  std::vector<Lane> lanes_;
  std::uint64_t job_start_ns_ = 0;
  std::uint64_t units_total_ = 0;
  std::uint64_t stalls_detected_ = 0;
  std::function<void(const ProgressSnapshot&)> snapshot_cb_;
  std::function<void(const StallEvent&)> stall_cb_;
};

}  // namespace pr::obs
