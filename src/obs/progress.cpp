#include "obs/progress.hpp"

#include <cstdio>
#include <cstdlib>

namespace pr::obs {

SweepProgress::SweepProgress() : SweepProgress(Options{}) {}

SweepProgress::SweepProgress(Options options) : options_(options) {}

SweepProgress::Options SweepProgress::options_from_env() {
  Options o;
  if (const char* v = std::getenv("PR_PROGRESS"); v != nullptr && *v != '\0') {
    const long ms = std::strtol(v, nullptr, 10);
    if (ms > 0) o.interval_ns = static_cast<std::uint64_t>(ms) * 1'000'000u;
  }
  if (const char* v = std::getenv("PR_STALL_MS"); v != nullptr && *v != '\0') {
    const long ms = std::strtol(v, nullptr, 10);
    if (ms > 0) o.stall_after_ns = static_cast<std::uint64_t>(ms) * 1'000'000u;
  }
  return o;
}

void SweepProgress::on_snapshot(std::function<void(const ProgressSnapshot&)> cb) {
  snapshot_cb_ = std::move(cb);
}

void SweepProgress::on_stall(std::function<void(const StallEvent&)> cb) {
  stall_cb_ = std::move(cb);
}

void SweepProgress::begin_job(std::size_t workers, std::uint64_t units_total,
                              std::uint64_t now_ns) {
  // Lane count only grows; atomics are not movable, so replace wholesale
  // when a bigger pool shows up.
  if (lanes_.size() < workers) {
    std::vector<Lane> bigger(workers);
    lanes_.swap(bigger);
  }
  for (Lane& lane : lanes_) {
    lane.units_done.store(0, std::memory_order_relaxed);
    lane.busy_ns.store(0, std::memory_order_relaxed);
    lane.claim_ns.store(0, std::memory_order_relaxed);
    lane.claim_unit.store(0, std::memory_order_relaxed);
    lane.reported_stall_claim = 0;
  }
  job_start_ns_ = now_ns;
  units_total_ = units_total;
  stalls_detected_ = 0;
}

void SweepProgress::unit_started(std::size_t worker, std::uint64_t unit,
                                 std::uint64_t now_ns) noexcept {
  if (worker >= lanes_.size()) return;
  Lane& lane = lanes_[worker];
  lane.claim_unit.store(unit, std::memory_order_relaxed);
  lane.claim_ns.store(now_ns, std::memory_order_relaxed);
}

void SweepProgress::unit_finished(std::size_t worker, std::uint64_t now_ns) noexcept {
  if (worker >= lanes_.size()) return;
  Lane& lane = lanes_[worker];
  const std::uint64_t claimed = lane.claim_ns.load(std::memory_order_relaxed);
  if (claimed != 0 && now_ns > claimed) {
    lane.busy_ns.fetch_add(now_ns - claimed, std::memory_order_relaxed);
  }
  lane.claim_ns.store(0, std::memory_order_relaxed);
  lane.units_done.fetch_add(1, std::memory_order_relaxed);
}

void SweepProgress::end_job(std::uint64_t now_ns) noexcept {
  (void)now_ns;
  for (Lane& lane : lanes_) lane.claim_ns.store(0, std::memory_order_relaxed);
}

ProgressSnapshot SweepProgress::snapshot(std::uint64_t now_ns) const {
  ProgressSnapshot s;
  s.now_ns = now_ns;
  s.job_start_ns = job_start_ns_;
  s.units_total = units_total_;
  s.utilization.reserve(lanes_.size());
  const std::uint64_t elapsed =
      now_ns > job_start_ns_ ? now_ns - job_start_ns_ : 0;
  for (const Lane& lane : lanes_) {
    s.units_done += lane.units_done.load(std::memory_order_relaxed);
    std::uint64_t busy = lane.busy_ns.load(std::memory_order_relaxed);
    const std::uint64_t claimed = lane.claim_ns.load(std::memory_order_relaxed);
    if (claimed != 0) {
      ++s.in_flight;
      if (now_ns > claimed) busy += now_ns - claimed;
    }
    s.utilization.push_back(
        elapsed == 0 ? 0.0 : static_cast<double>(busy) / static_cast<double>(elapsed));
  }
  if (elapsed > 0) {
    s.units_per_sec = static_cast<double>(s.units_done) * 1e9 / static_cast<double>(elapsed);
    if (s.units_total > s.units_done && s.units_per_sec > 0.0) {
      s.eta_sec = static_cast<double>(s.units_total - s.units_done) / s.units_per_sec;
    }
  }
  return s;
}

void SweepProgress::tick(std::uint64_t now_ns) {
  if (snapshot_cb_) snapshot_cb_(snapshot(now_ns));
  if (options_.stall_after_ns == 0) return;
  for (std::size_t w = 0; w < lanes_.size(); ++w) {
    Lane& lane = lanes_[w];
    const std::uint64_t claimed = lane.claim_ns.load(std::memory_order_relaxed);
    if (claimed == 0 || now_ns <= claimed) continue;
    const std::uint64_t in_flight = now_ns - claimed;
    if (in_flight < options_.stall_after_ns) continue;
    if (lane.reported_stall_claim == claimed) continue;  // already reported
    lane.reported_stall_claim = claimed;
    ++stalls_detected_;
    if (stall_cb_) {
      StallEvent e;
      e.worker = w;
      e.unit = lane.claim_unit.load(std::memory_order_relaxed);
      e.in_flight_ns = in_flight;
      stall_cb_(e);
    }
  }
}

std::string SweepProgress::format_line(const ProgressSnapshot& s) {
  double util_sum = 0.0;
  for (double u : s.utilization) util_sum += u;
  const double util_avg =
      s.utilization.empty() ? 0.0 : util_sum / static_cast<double>(s.utilization.size());
  char buf[256];
  int len;
  if (s.units_total > 0) {
    const double pct =
        100.0 * static_cast<double>(s.units_done) / static_cast<double>(s.units_total);
    len = std::snprintf(buf, sizeof buf,
                        "progress: %llu/%llu units (%.1f%%) %.1f units/s eta %.1fs "
                        "busy %zu/%zu util %.2f",
                        static_cast<unsigned long long>(s.units_done),
                        static_cast<unsigned long long>(s.units_total), pct,
                        s.units_per_sec, s.eta_sec, s.in_flight, s.utilization.size(),
                        util_avg);
  } else {
    len = std::snprintf(buf, sizeof buf,
                        "progress: %llu units %.1f units/s busy %zu/%zu util %.2f",
                        static_cast<unsigned long long>(s.units_done), s.units_per_sec,
                        s.in_flight, s.utilization.size(), util_avg);
  }
  return std::string(buf, len > 0 ? static_cast<std::size_t>(len) : 0);
}

}  // namespace pr::obs
