#include "embed/faces.hpp"

#include <stdexcept>

#include "graph/connectivity.hpp"

namespace pr::embed {

double FaceSet::average_face_length() const {
  if (faces.empty()) return 0.0;
  std::size_t darts = 0;
  for (const auto& f : faces) darts += f.size();
  return static_cast<double>(darts) / static_cast<double>(faces.size());
}

FaceSet trace_faces(const RotationSystem& rot) {
  const Graph& g = rot.graph();
  FaceSet out;
  out.face_of.assign(g.dart_count(), std::numeric_limits<std::uint32_t>::max());
  for (DartId start = 0; start < g.dart_count(); ++start) {
    if (out.face_of[start] != std::numeric_limits<std::uint32_t>::max()) continue;
    const auto face_idx = static_cast<std::uint32_t>(out.faces.size());
    std::vector<DartId> walk;
    DartId d = start;
    do {
      out.face_of[d] = face_idx;
      walk.push_back(d);
      d = rot.face_successor(d);
      if (walk.size() > g.dart_count()) {
        throw std::logic_error("trace_faces: phi orbit longer than dart count");
      }
    } while (d != start);
    out.faces.push_back(std::move(walk));
  }
  return out;
}

int euler_genus(const Graph& g, const FaceSet& faces) {
  const auto comp = graph::connected_components(g);
  std::uint32_t c = 0;
  for (std::uint32_t id : comp) c = std::max(c, id + 1);
  std::size_t isolated = 0;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    if (g.degree(v) == 0) ++isolated;
  }
  const auto v_count = static_cast<long>(g.node_count());
  const auto e_count = static_cast<long>(g.edge_count());
  const auto f_count = static_cast<long>(faces.face_count() + isolated);
  const long twice_genus = 2 * static_cast<long>(c) - (v_count - e_count + f_count);
  if (twice_genus < 0 || twice_genus % 2 != 0) {
    throw std::logic_error("euler_genus: inconsistent face set (2g = " +
                           std::to_string(twice_genus) + ")");
  }
  return static_cast<int>(twice_genus / 2);
}

int genus_of(const RotationSystem& rot) {
  return euler_genus(rot.graph(), trace_faces(rot));
}

void check_face_set(const RotationSystem& rot, const FaceSet& faces) {
  const Graph& g = rot.graph();
  if (faces.face_of.size() != g.dart_count()) {
    throw std::logic_error("check_face_set: face_of size mismatch");
  }
  std::vector<std::uint8_t> seen(g.dart_count(), 0);
  for (std::size_t i = 0; i < faces.faces.size(); ++i) {
    const auto& walk = faces.faces[i];
    if (walk.empty()) throw std::logic_error("check_face_set: empty face");
    for (std::size_t k = 0; k < walk.size(); ++k) {
      const DartId d = walk[k];
      if (seen[d] != 0) throw std::logic_error("check_face_set: dart on two faces");
      seen[d] = 1;
      if (faces.face_of[d] != i) throw std::logic_error("check_face_set: face_of wrong");
      const DartId successor = walk[(k + 1) % walk.size()];
      if (rot.face_successor(d) != successor) {
        throw std::logic_error("check_face_set: walk disagrees with phi");
      }
      // Consecutive darts must be head-to-tail: a closed walk on the graph.
      if (g.dart_head(d) != g.dart_tail(successor)) {
        throw std::logic_error("check_face_set: face walk not contiguous");
      }
    }
  }
  for (DartId d = 0; d < g.dart_count(); ++d) {
    if (seen[d] == 0) throw std::logic_error("check_face_set: dart on no face");
  }
  (void)euler_genus(g, faces);  // throws when inconsistent
}

std::vector<EdgeId> self_paired_edges(const Graph& g, const FaceSet& faces) {
  std::vector<EdgeId> out;
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    const DartId d = graph::make_dart(e, 0);
    if (faces.main_cycle_of(d) == faces.complementary_cycle_of(d)) out.push_back(e);
  }
  return out;
}

bool pr_safe(const Graph& g, const FaceSet& faces) {
  return self_paired_edges(g, faces).empty();
}

std::string face_to_string(const Graph& g, const std::vector<DartId>& face) {
  if (face.empty()) return "<empty>";
  std::string out = g.display_name(g.dart_tail(face.front()));
  for (DartId d : face) {
    out += "->";
    out += g.display_name(g.dart_head(d));
  }
  return out;
}

}  // namespace pr::embed
