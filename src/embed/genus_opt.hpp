// Heuristic genus minimisation for non-planar graphs.
//
// Minimum-genus embedding is NP-hard in general (the paper cites Mohar &
// Thomassen); PR however only needs *a* cellular embedding -- any rotation
// system works, lower genus merely shortens the backup cycles and hence the
// stretch.  This module provides the practical middle ground the paper's
// Section 7 sketches: a face-count-maximising local search over rotation
// systems (hill climbing with sideways moves and random restarts).
#pragma once

#include <cstdint>

#include "embed/faces.hpp"
#include "embed/rotation_system.hpp"

namespace pr::embed {

struct GenusSearchOptions {
  /// Total move budget across all restarts.  Each move costs one O(|E|) face
  /// trace, so the default stays well under a second for ISP-scale graphs.
  std::size_t max_iterations = 60000;
  /// Number of starting points (the first is the identity rotation, the rest
  /// are uniformly random).
  std::size_t restarts = 6;
  std::uint64_t seed = 0x5eed;
};

struct GenusSearchResult {
  RotationSystem rotation;
  int genus = 0;
  std::size_t iterations_used = 0;
};

/// Searches for a low-genus rotation system of `g`.  Deterministic for a
/// given option set.  The result is always a valid cellular embedding, even
/// when the search fails to reach the true minimum.
[[nodiscard]] GenusSearchResult minimize_genus(const Graph& g,
                                               const GenusSearchOptions& opts = {});

/// Exact minimum genus by exhausting the rotation-system space
/// (prod over nodes of (deg-1)!), feasible only for small graphs: Petersen is
/// 2^10 rotations, K5 is 6^5.  Throws std::invalid_argument when the space
/// exceeds `max_rotations`.  Used to validate the heuristic search and to
/// study how common PR-safe minimum-genus embeddings are.  The witness
/// `rotation` references `g`, which must outlive the result.
struct ExactGenusResult {
  RotationSystem rotation;  ///< one witness minimum-genus rotation
  int genus = 0;
  std::uint64_t rotations_tested = 0;
  std::uint64_t minimum_count = 0;  ///< rotations achieving the minimum
  std::uint64_t minimum_pr_safe = 0;  ///< ... of which are PR-safe
};
[[nodiscard]] ExactGenusResult exact_minimum_genus(const Graph& g,
                                                   std::uint64_t max_rotations = 2000000);

}  // namespace pr::embed
