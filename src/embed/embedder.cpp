#include "embed/embedder.hpp"

#include <stdexcept>
#include <utility>

namespace pr::embed {

namespace {

Embedding finish(RotationSystem rot, EmbedStrategy used) {
  FaceSet faces = trace_faces(rot);
  check_face_set(rot, faces);
  const int genus = euler_genus(rot.graph(), faces);
  return Embedding{std::move(rot), std::move(faces), genus, used};
}

}  // namespace

Embedding embed(const Graph& g, const EmbedOptions& opts) {
  switch (opts.strategy) {
    case EmbedStrategy::kIdentity:
      return finish(RotationSystem::identity(g), EmbedStrategy::kIdentity);

    case EmbedStrategy::kRandom: {
      graph::Rng rng(opts.random_seed);
      return finish(RotationSystem::random(g, rng), EmbedStrategy::kRandom);
    }

    case EmbedStrategy::kLocalSearch: {
      auto result = minimize_genus(g, opts.search);
      return finish(std::move(result.rotation), EmbedStrategy::kLocalSearch);
    }

    case EmbedStrategy::kPlanar: {
      auto result = planar_embedding(g);
      if (!result.planar) {
        throw std::invalid_argument("embed: graph is not planar (strategy kPlanar)");
      }
      return finish(std::move(*result.rotation), EmbedStrategy::kPlanar);
    }

    case EmbedStrategy::kAuto: {
      auto result = planar_embedding(g);
      if (result.planar) {
        return finish(std::move(*result.rotation), EmbedStrategy::kPlanar);
      }
      auto searched = minimize_genus(g, opts.search);
      return finish(std::move(searched.rotation), EmbedStrategy::kLocalSearch);
    }
  }
  throw std::logic_error("embed: unknown strategy");
}

}  // namespace pr::embed
