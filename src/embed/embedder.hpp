// Top-level embedding entry point: the "offline server" of the paper's
// Section 4.3, which computes the cellular embedding once and hands the
// resulting cycle system to every router.
#pragma once

#include "embed/faces.hpp"
#include "embed/genus_opt.hpp"
#include "embed/planar.hpp"
#include "embed/rotation_system.hpp"

namespace pr::embed {

enum class EmbedStrategy {
  kAuto,         ///< planar embedding when possible, local search otherwise
  kPlanar,       ///< DMP only; throws std::invalid_argument on non-planar input
  kLocalSearch,  ///< genus-minimising local search regardless of planarity
  kRandom,       ///< uniformly random rotation system (ablation A3 baseline)
  kIdentity,     ///< edge-insertion-order rotation system (cheapest possible)
};

struct EmbedOptions {
  EmbedStrategy strategy = EmbedStrategy::kAuto;
  GenusSearchOptions search;  ///< used by kAuto fallback and kLocalSearch
  std::uint64_t random_seed = 0x5eed;  ///< used by kRandom
};

/// A complete cellular embedding: rotation system + its face decomposition.
/// Holds a reference to the graph it embeds; the graph must outlive it.
struct Embedding {
  RotationSystem rotation;
  FaceSet faces;
  int genus = 0;
  EmbedStrategy strategy_used = EmbedStrategy::kAuto;

  [[nodiscard]] bool planar() const noexcept { return genus == 0; }

  /// True when every link separates two distinct cells -- the embedding
  /// quality PR's delivery guarantee rests on (see faces.hpp).
  [[nodiscard]] bool supports_pr() const {
    return pr_safe(rotation.graph(), faces);
  }
};

/// Computes a cellular embedding of `g` according to `opts`.  The result is
/// validated (every dart on exactly one face, Euler-consistent genus) before
/// being returned.
[[nodiscard]] Embedding embed(const Graph& g, const EmbedOptions& opts = {});

}  // namespace pr::embed
