// Face tracing and Euler genus.
//
// The orbits of the face-successor permutation phi partition the darts into
// directed face boundaries ("cellular cycles" in the paper's terminology).
// Every undirected link lies on exactly two of them, traversed in opposite
// directions -- the main and complementary cycles that Packet Re-cycling uses
// as backup paths.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "embed/rotation_system.hpp"

namespace pr::embed {

/// The face decomposition induced by a rotation system.
struct FaceSet {
  /// Each face is the dart orbit in traversal order (a closed directed walk).
  std::vector<std::vector<DartId>> faces;
  /// face_of[d] = index into `faces` of the unique face containing dart d.
  std::vector<std::uint32_t> face_of;

  [[nodiscard]] std::size_t face_count() const noexcept { return faces.size(); }

  /// Index of the face containing dart d (the "main cycle" of d).
  [[nodiscard]] std::uint32_t main_cycle_of(DartId d) const { return face_of.at(d); }

  /// Index of the face containing reverse(d) (the "complementary cycle").
  [[nodiscard]] std::uint32_t complementary_cycle_of(DartId d) const {
    return face_of.at(graph::reverse(d));
  }

  /// Mean boundary length 2|E| / F -- a proxy for expected recovery stretch.
  [[nodiscard]] double average_face_length() const;
};

/// Traces all orbits of phi.  O(|E|).
[[nodiscard]] FaceSet trace_faces(const RotationSystem& rot);

/// Orientable genus of the embedding described by `faces`:
///   genus = c - (V - E + F') / 2,
/// where c is the number of connected components and F' counts one extra face
/// per isolated node (a lone vertex on a sphere still bounds one face).
/// Always a non-negative integer for a valid face set.
[[nodiscard]] int euler_genus(const Graph& g, const FaceSet& faces);

/// Convenience: trace + genus in one call.
[[nodiscard]] int genus_of(const RotationSystem& rot);

/// Sanity check used by tests and the embedder: every dart on exactly one
/// face, every face a closed walk consistent with phi, genus non-negative.
/// Throws std::logic_error with a description on violation.
void check_face_set(const RotationSystem& rot, const FaceSet& faces);

/// Edges whose two darts lie on the SAME face -- the paper's "curved cell
/// that meets itself along l" case, where the main and complementary cycles
/// coincide.  Reproduction finding (see DESIGN.md section 8): when such a
/// link fails, the joined boundary splits into two components and cycle
/// following can strand the packet on the one without the exit point, so
/// PR's delivery guarantee requires an embedding with NO self-paired edges.
/// Planar embeddings of 2-edge-connected graphs never have any (their faces
/// are edge-simple); random rotation systems frequently do.
[[nodiscard]] std::vector<EdgeId> self_paired_edges(const Graph& g, const FaceSet& faces);

/// True when every link separates two distinct cells: the precondition for
/// the Packet Re-cycling guarantees.
[[nodiscard]] bool pr_safe(const Graph& g, const FaceSet& faces);

/// Human-readable rendering such as "A->B->D->A" for reports and examples.
[[nodiscard]] std::string face_to_string(const Graph& g, const std::vector<DartId>& face);

}  // namespace pr::embed
