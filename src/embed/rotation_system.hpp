// Rotation systems: the combinatorial description of a cellular embedding.
//
// A rotation system assigns to every node a cyclic order of its out-darts
// (interfaces).  By the Heffter-Edmonds principle, every rotation system of a
// connected graph corresponds to exactly one cellular embedding of the graph
// on an orientable closed surface, whose faces are recovered by tracing the
// face-successor permutation
//
//     phi(d) = sigma_head(d)( reverse(d) )
//
// i.e. "arrive at the far end of d, turn to the next interface after the one
// you arrived on".  This permutation is precisely the paper's cycle-following
// rule (Section 4.1): the cycle-following table at a router maps the incoming
// interface d to the outgoing interface phi(d), and the complementary
// interface of a failed outgoing dart o is phi(reverse(o)).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "graph/rng.hpp"

namespace pr::embed {

using graph::DartId;
using graph::EdgeId;
using graph::Graph;
using graph::NodeId;

/// Cyclic order of out-darts around every node; sigma and phi in O(1).
class RotationSystem {
 public:
  /// Rotation given by edge insertion order (arbitrary but deterministic).
  [[nodiscard]] static RotationSystem identity(const Graph& g);

  /// Uniformly random rotation at every node; used by ablation A3 and by the
  /// genus-minimising local search as a restart point.
  [[nodiscard]] static RotationSystem random(const Graph& g, graph::Rng& rng);

  /// Builds from explicit per-node dart orders.  `orders[v]` must be a
  /// permutation of g.out_darts(v); throws std::invalid_argument otherwise.
  [[nodiscard]] static RotationSystem from_orders(const Graph& g,
                                                  std::vector<std::vector<DartId>> orders);

  /// Convenience for simple graphs: per-node order given as neighbour node
  /// ids.  Rejects multigraphs (ambiguous) and malformed orders.
  [[nodiscard]] static RotationSystem from_neighbor_orders(
      const Graph& g, const std::vector<std::vector<NodeId>>& neighbor_orders);

  /// sigma: the next out-dart after `d` in the cyclic order around tail(d).
  [[nodiscard]] DartId next_at_node(DartId d) const { return sigma_next_.at(d); }
  /// sigma^-1.
  [[nodiscard]] DartId prev_at_node(DartId d) const { return sigma_prev_.at(d); }

  /// phi: the face successor -- also the paper's cycle-following interface for
  /// a packet that arrived over `d`.
  [[nodiscard]] DartId face_successor(DartId d) const {
    return sigma_next_.at(graph::reverse(d));
  }

  /// The cyclic order at `v` (starting point is arbitrary but stable).
  [[nodiscard]] std::span<const DartId> order_at(NodeId v) const {
    return orders_.at(v);
  }

  /// Replaces the cyclic order at `v`; validates it is a permutation of the
  /// node's out-darts.  Used by the genus-minimising local search.
  void set_order(NodeId v, std::vector<DartId> order);

  [[nodiscard]] const Graph& graph() const noexcept { return *graph_; }

  /// Full internal consistency check (permutations intact); throws on failure.
  void validate() const;

 private:
  RotationSystem(const Graph& g, std::vector<std::vector<DartId>> orders);

  void rebuild_node(NodeId v);

  const Graph* graph_ = nullptr;
  std::vector<std::vector<DartId>> orders_;
  std::vector<DartId> sigma_next_;
  std::vector<DartId> sigma_prev_;
};

}  // namespace pr::embed
