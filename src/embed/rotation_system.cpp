#include "embed/rotation_system.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace pr::embed {

RotationSystem::RotationSystem(const Graph& g, std::vector<std::vector<DartId>> orders)
    : graph_(&g),
      orders_(std::move(orders)),
      sigma_next_(g.dart_count(), graph::kInvalidDart),
      sigma_prev_(g.dart_count(), graph::kInvalidDart) {
  if (orders_.size() != g.node_count()) {
    throw std::invalid_argument("RotationSystem: one order per node required");
  }
  for (NodeId v = 0; v < g.node_count(); ++v) rebuild_node(v);
  validate();
}

void RotationSystem::rebuild_node(NodeId v) {
  const auto& order = orders_[v];
  const auto expected = graph_->out_darts(v);
  if (order.size() != expected.size()) {
    throw std::invalid_argument("RotationSystem: order size mismatch at node " +
                                std::to_string(v));
  }
  // Check the order is a permutation of the node's out-darts.
  std::vector<DartId> sorted_order(order.begin(), order.end());
  std::vector<DartId> sorted_expected(expected.begin(), expected.end());
  std::sort(sorted_order.begin(), sorted_order.end());
  std::sort(sorted_expected.begin(), sorted_expected.end());
  if (sorted_order != sorted_expected) {
    throw std::invalid_argument("RotationSystem: order is not a permutation of out-darts at node " +
                                std::to_string(v));
  }
  for (std::size_t i = 0; i < order.size(); ++i) {
    const DartId d = order[i];
    const DartId nxt = order[(i + 1) % order.size()];
    sigma_next_[d] = nxt;
    sigma_prev_[nxt] = d;
  }
}

RotationSystem RotationSystem::identity(const Graph& g) {
  std::vector<std::vector<DartId>> orders(g.node_count());
  for (NodeId v = 0; v < g.node_count(); ++v) {
    const auto outs = g.out_darts(v);
    orders[v].assign(outs.begin(), outs.end());
  }
  return RotationSystem(g, std::move(orders));
}

RotationSystem RotationSystem::random(const Graph& g, graph::Rng& rng) {
  std::vector<std::vector<DartId>> orders(g.node_count());
  for (NodeId v = 0; v < g.node_count(); ++v) {
    const auto outs = g.out_darts(v);
    orders[v].assign(outs.begin(), outs.end());
    std::shuffle(orders[v].begin(), orders[v].end(), rng.engine());
  }
  return RotationSystem(g, std::move(orders));
}

RotationSystem RotationSystem::from_orders(const Graph& g,
                                           std::vector<std::vector<DartId>> orders) {
  return RotationSystem(g, std::move(orders));
}

RotationSystem RotationSystem::from_neighbor_orders(
    const Graph& g, const std::vector<std::vector<NodeId>>& neighbor_orders) {
  if (neighbor_orders.size() != g.node_count()) {
    throw std::invalid_argument("from_neighbor_orders: one order per node required");
  }
  std::vector<std::vector<DartId>> orders(g.node_count());
  for (NodeId v = 0; v < g.node_count(); ++v) {
    orders[v].reserve(neighbor_orders[v].size());
    for (NodeId nb : neighbor_orders[v]) {
      const auto d = g.find_dart(v, nb);
      if (!d.has_value()) {
        throw std::invalid_argument("from_neighbor_orders: " + g.display_name(v) +
                                    " has no edge to " + g.display_name(nb));
      }
      // Reject multigraphs: a second parallel edge makes the mapping ambiguous.
      bool parallel = false;
      for (DartId other : g.out_darts(v)) {
        if (other != *d && g.dart_head(other) == nb) parallel = true;
      }
      if (parallel) {
        throw std::invalid_argument(
            "from_neighbor_orders: parallel edges present, use from_orders");
      }
      orders[v].push_back(*d);
    }
  }
  return RotationSystem(g, std::move(orders));
}

void RotationSystem::set_order(NodeId v, std::vector<DartId> order) {
  if (v >= orders_.size()) {
    throw std::out_of_range("RotationSystem::set_order: node out of range");
  }
  std::vector<DartId> saved = std::move(orders_[v]);
  orders_[v] = std::move(order);
  try {
    rebuild_node(v);
  } catch (...) {
    orders_[v] = std::move(saved);
    rebuild_node(v);
    throw;
  }
}

void RotationSystem::validate() const {
  const Graph& g = *graph_;
  for (DartId d = 0; d < g.dart_count(); ++d) {
    const DartId nxt = sigma_next_.at(d);
    if (nxt == graph::kInvalidDart) {
      throw std::logic_error("RotationSystem: dart with no successor");
    }
    if (g.dart_tail(nxt) != g.dart_tail(d)) {
      throw std::logic_error("RotationSystem: sigma leaves the node");
    }
    if (sigma_prev_.at(nxt) != d) {
      throw std::logic_error("RotationSystem: next/prev out of sync");
    }
  }
}

}  // namespace pr::embed
