// Planarity testing and planar (genus-0) embedding.
//
// Implements the Demoucron-Malgrange-Pertuiset (DMP) incremental algorithm:
// embed an initial cycle, then repeatedly choose a fragment ("bridge") of the
// remaining graph, a face whose boundary contains all of the fragment's
// attachment vertices, and a path through the fragment, splitting that face in
// two.  If some fragment has no admissible face the graph is non-planar.
// Blocks (biconnected components) are embedded independently and merged at cut
// vertices, which preserves genus 0.  O(V * E) overall -- ample for the
// ISP-scale topologies this library targets; the paper's reference [3]
// (Boyer-Myrvold) achieves O(n) but its complexity is not needed here.
#pragma once

#include <optional>

#include "embed/rotation_system.hpp"

namespace pr::embed {

/// Outcome of the planarity test.  `rotation` is set iff `planar`, and then
/// describes a genus-0 (sphere) cellular embedding of the whole graph.
struct PlanarResult {
  bool planar = false;
  std::optional<RotationSystem> rotation;
};

/// Tests planarity and, on success, returns a spherical rotation system.
[[nodiscard]] PlanarResult planar_embedding(const Graph& g);

/// Convenience wrapper.
[[nodiscard]] bool is_planar(const Graph& g);

}  // namespace pr::embed
