#include "embed/planar.hpp"

#include <algorithm>
#include <functional>
#include <optional>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "graph/connectivity.hpp"

namespace pr::embed {

namespace {

using graph::dart_edge;
using graph::kInvalidDart;
using graph::reverse;

// Plane embedding of one biconnected block, maintained as the set of face
// boundary walks.  All faces of a biconnected plane graph are simple cycles,
// which the splitting step relies on (each node appears at most once as a
// dart tail per face).
class BlockEmbedder {
 public:
  BlockEmbedder(const Graph& g, const std::vector<EdgeId>& block_edges)
      : g_(g), block_edges_(block_edges) {}

  /// Runs DMP; returns the face walks on success, nullopt when non-planar.
  std::optional<std::vector<std::vector<DartId>>> run() {
    if (block_edges_.size() == 1) {
      // A bridge block: one face walking the edge back and forth.
      const DartId d = graph::make_dart(block_edges_[0], 0);
      return std::vector<std::vector<DartId>>{{d, reverse(d)}};
    }
    init_membership();
    embed_initial_cycle();
    while (embedded_count_ < block_edges_.size()) {
      if (!embed_one_fragment_path()) return std::nullopt;  // non-planar
    }
    std::vector<std::vector<DartId>> result;
    for (std::size_t f = 0; f < faces_.size(); ++f) {
      if (alive_[f]) result.push_back(faces_[f]);
    }
    return result;
  }

 private:
  void init_membership() {
    in_block_edge_.assign(g_.edge_count(), 0);
    for (EdgeId e : block_edges_) in_block_edge_[e] = 1;
    embedded_edge_.assign(g_.edge_count(), 0);
    in_h_.assign(g_.node_count(), 0);
  }

  // DFS from a block node until a back edge closes a cycle.
  void embed_initial_cycle() {
    const NodeId root = g_.edge_u(block_edges_[0]);
    std::vector<DartId> entered_by(g_.node_count(), kInvalidDart);
    std::vector<std::uint8_t> visited(g_.node_count(), 0);
    std::vector<NodeId> order;

    struct Frame {
      NodeId v;
      std::size_t next = 0;
    };
    std::vector<Frame> stack{{root}};
    visited[root] = 1;
    std::vector<DartId> cycle;

    while (!stack.empty() && cycle.empty()) {
      Frame& fr = stack.back();
      const auto outs = g_.out_darts(fr.v);
      if (fr.next >= outs.size()) {
        stack.pop_back();
        continue;
      }
      const DartId d = outs[fr.next++];
      if (in_block_edge_[dart_edge(d)] == 0) continue;
      if (entered_by[fr.v] != kInvalidDart && d == reverse(entered_by[fr.v])) continue;
      const NodeId u = g_.dart_head(d);
      if (!visited[u]) {
        visited[u] = 1;
        entered_by[u] = d;
        stack.push_back(Frame{u});
        continue;
      }
      // Back edge to some visited node u: walk entered_by from fr.v to u.
      std::vector<DartId> up_path;  // darts u -> ... -> fr.v along the tree
      NodeId w = fr.v;
      while (w != u) {
        const DartId tree_dart = entered_by[w];
        if (tree_dart == kInvalidDart) {
          // u is not an ancestor of fr.v (cross edge cannot happen in
          // undirected DFS); defensive.
          throw std::logic_error("BlockEmbedder: broken DFS tree");
        }
        up_path.push_back(tree_dart);
        w = g_.dart_tail(tree_dart);
      }
      std::reverse(up_path.begin(), up_path.end());  // now u -> ... -> fr.v
      up_path.push_back(d);                          // close with fr.v -> u?
      // d goes fr.v -> u, so appending it after the tree path u->..->fr.v
      // yields the closed walk u -> ... -> fr.v -> u.
      cycle = std::move(up_path);
    }
    if (cycle.empty()) {
      throw std::logic_error("BlockEmbedder: block with >1 edge contains no cycle");
    }

    for (DartId d : cycle) {
      embedded_edge_[dart_edge(d)] = 1;
      in_h_[g_.dart_tail(d)] = 1;
      ++embedded_count_;
    }
    std::vector<DartId> mirrored(cycle.size());
    std::transform(cycle.rbegin(), cycle.rend(), mirrored.begin(),
                   [](DartId d) { return reverse(d); });
    add_face(std::move(cycle));
    add_face(std::move(mirrored));
  }

  struct Fragment {
    std::vector<EdgeId> edges;
    std::vector<NodeId> attachments;  // unique, sorted
  };

  std::vector<Fragment> compute_fragments() const {
    // Union-find over the non-embedded block edges; every non-embedded node
    // merges all its incident pending edges into one fragment.
    std::unordered_map<EdgeId, EdgeId> parent;
    std::vector<EdgeId> pending;
    for (EdgeId e : block_edges_) {
      if (!embedded_edge_[e]) {
        parent[e] = e;
        pending.push_back(e);
      }
    }
    std::function<EdgeId(EdgeId)> find = [&](EdgeId x) {
      while (parent[x] != x) {
        parent[x] = parent[parent[x]];
        x = parent[x];
      }
      return x;
    };
    const auto unite = [&](EdgeId a, EdgeId b) { parent[find(a)] = find(b); };

    for (NodeId v = 0; v < g_.node_count(); ++v) {
      if (in_h_[v]) continue;
      EdgeId first = graph::kInvalidEdge;
      for (DartId d : g_.out_darts(v)) {
        const EdgeId e = dart_edge(d);
        if (in_block_edge_[e] == 0 || embedded_edge_[e]) continue;
        if (first == graph::kInvalidEdge) {
          first = e;
        } else {
          unite(first, e);
        }
      }
    }

    std::unordered_map<EdgeId, std::size_t> root_to_idx;
    std::vector<Fragment> fragments;
    for (EdgeId e : pending) {
      const EdgeId r = find(e);
      auto [it, inserted] = root_to_idx.try_emplace(r, fragments.size());
      if (inserted) fragments.emplace_back();
      fragments[it->second].edges.push_back(e);
    }
    for (auto& frag : fragments) {
      for (EdgeId e : frag.edges) {
        for (NodeId endpoint : {g_.edge_u(e), g_.edge_v(e)}) {
          if (in_h_[endpoint]) frag.attachments.push_back(endpoint);
        }
      }
      std::sort(frag.attachments.begin(), frag.attachments.end());
      frag.attachments.erase(
          std::unique(frag.attachments.begin(), frag.attachments.end()),
          frag.attachments.end());
      if (frag.attachments.size() < 2) {
        throw std::logic_error("BlockEmbedder: fragment with <2 attachments in a block");
      }
    }
    return fragments;
  }

  [[nodiscard]] bool face_admits(std::size_t f, const Fragment& frag) const {
    return std::all_of(frag.attachments.begin(), frag.attachments.end(),
                       [&](NodeId a) { return face_has_node_[f][a] != 0; });
  }

  // Chooses fragment + face per DMP, finds a path, splits the face.
  // Returns false when some fragment has no admissible face (non-planar).
  bool embed_one_fragment_path() {
    const auto fragments = compute_fragments();
    std::optional<std::size_t> chosen_frag;
    std::optional<std::size_t> chosen_face;
    for (std::size_t i = 0; i < fragments.size(); ++i) {
      std::vector<std::size_t> admissible;
      for (std::size_t f = 0; f < faces_.size(); ++f) {
        if (alive_[f] && face_admits(f, fragments[i])) admissible.push_back(f);
      }
      if (admissible.empty()) return false;  // non-planar certificate
      if (admissible.size() == 1 || !chosen_frag.has_value()) {
        chosen_frag = i;
        chosen_face = admissible.front();
        if (admissible.size() == 1) break;  // forced placement: do it now
      }
    }
    if (!chosen_frag.has_value()) {
      throw std::logic_error("BlockEmbedder: no fragments while edges pending");
    }
    const Fragment& frag = fragments[*chosen_frag];
    const auto path = fragment_path(frag);
    split_face(*chosen_face, path);
    for (DartId d : path) {
      embedded_edge_[dart_edge(d)] = 1;
      in_h_[g_.dart_tail(d)] = 1;
      in_h_[g_.dart_head(d)] = 1;
      ++embedded_count_;
    }
    return true;
  }

  // BFS inside the fragment from one attachment to any other; interior nodes
  // must lie outside H.  Returns the dart path attachment -> attachment.
  std::vector<DartId> fragment_path(const Fragment& frag) const {
    std::vector<std::uint8_t> in_frag(g_.edge_count(), 0);
    for (EdgeId e : frag.edges) in_frag[e] = 1;
    const NodeId start = frag.attachments.front();

    std::vector<DartId> parent(g_.node_count(), kInvalidDart);
    std::vector<std::uint8_t> visited(g_.node_count(), 0);
    std::vector<NodeId> fifo{start};
    visited[start] = 1;
    for (std::size_t head = 0; head < fifo.size(); ++head) {
      const NodeId v = fifo[head];
      for (DartId d : g_.out_darts(v)) {
        if (in_frag[dart_edge(d)] == 0) continue;
        const NodeId u = g_.dart_head(d);
        if (visited[u]) continue;
        visited[u] = 1;
        parent[u] = d;
        if (in_h_[u]) {
          // Reached another attachment: reconstruct.
          std::vector<DartId> path;
          NodeId w = u;
          while (w != start) {
            path.push_back(parent[w]);
            w = g_.dart_tail(parent[w]);
          }
          std::reverse(path.begin(), path.end());
          return path;
        }
        fifo.push_back(u);
      }
    }
    throw std::logic_error("BlockEmbedder: fragment path not found");
  }

  void add_face(std::vector<DartId> walk) {
    std::vector<std::uint8_t> has(g_.node_count(), 0);
    for (DartId d : walk) has[g_.dart_tail(d)] = 1;
    faces_.push_back(std::move(walk));
    face_has_node_.push_back(std::move(has));
    alive_.push_back(1);
  }

  // Splits face `f` along `path` (a -> ... -> b with a,b on the boundary).
  void split_face(std::size_t f, const std::vector<DartId>& path) {
    const NodeId a = g_.dart_tail(path.front());
    const NodeId b = g_.dart_head(path.back());
    if (a == b) throw std::logic_error("BlockEmbedder: degenerate path");
    const auto& walk = faces_[f];
    std::optional<std::size_t> ia;
    std::optional<std::size_t> ib;
    for (std::size_t i = 0; i < walk.size(); ++i) {
      const NodeId tail = g_.dart_tail(walk[i]);
      if (tail == a) ia = i;
      if (tail == b) ib = i;
    }
    if (!ia || !ib) throw std::logic_error("BlockEmbedder: path endpoints off face");

    const auto segment = [&](std::size_t from, std::size_t to) {
      std::vector<DartId> out;
      for (std::size_t i = from; i != to; i = (i + 1) % walk.size()) {
        out.push_back(walk[i]);
      }
      return out;
    };
    std::vector<DartId> w1 = segment(*ia, *ib);  // a -> ... -> b
    std::vector<DartId> w2 = segment(*ib, *ia);  // b -> ... -> a

    // Face 1: boundary a->..->b (old walk) then b->..->a (path reversed).
    std::vector<DartId> f1 = std::move(w1);
    for (auto it = path.rbegin(); it != path.rend(); ++it) f1.push_back(reverse(*it));
    // Face 2: path a->..->b then old walk b->..->a.
    std::vector<DartId> f2(path.begin(), path.end());
    f2.insert(f2.end(), w2.begin(), w2.end());

    alive_[f] = 0;
    add_face(std::move(f1));
    add_face(std::move(f2));
  }

  const Graph& g_;
  const std::vector<EdgeId>& block_edges_;
  std::vector<std::uint8_t> in_block_edge_;
  std::vector<std::uint8_t> embedded_edge_;
  std::vector<std::uint8_t> in_h_;
  std::size_t embedded_count_ = 0;

  std::vector<std::vector<DartId>> faces_;
  std::vector<std::vector<std::uint8_t>> face_has_node_;
  std::vector<std::uint8_t> alive_;
};

}  // namespace

PlanarResult planar_embedding(const Graph& g) {
  // phi over the whole graph: face successor within each block's face set.
  std::vector<DartId> phi(g.dart_count(), kInvalidDart);

  for (const auto& block : graph::biconnected_components(g)) {
    BlockEmbedder embedder(g, block);
    auto faces = embedder.run();
    if (!faces.has_value()) return PlanarResult{false, std::nullopt};
    for (const auto& walk : *faces) {
      for (std::size_t i = 0; i < walk.size(); ++i) {
        phi[walk[i]] = walk[(i + 1) % walk.size()];
      }
    }
  }

  // sigma(y) = phi(reverse(y)); per node, chase sigma to linearise the cyclic
  // order.  Cut vertices carry darts of several blocks: each block contributes
  // one sigma-cycle, and concatenating the cycles keeps every block planar
  // while merging the embeddings at the shared vertex (genus stays 0).
  std::vector<std::vector<DartId>> orders(g.node_count());
  std::vector<std::uint8_t> placed(g.dart_count(), 0);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    orders[v].reserve(g.degree(v));
    for (DartId seed : g.out_darts(v)) {
      if (placed[seed]) continue;
      DartId d = seed;
      do {
        placed[d] = 1;
        orders[v].push_back(d);
        d = phi[reverse(d)];
        if (d == kInvalidDart || g.dart_tail(d) != v) {
          throw std::logic_error("planar_embedding: sigma derivation escaped the node");
        }
      } while (d != seed);
    }
  }

  return PlanarResult{true, RotationSystem::from_orders(g, std::move(orders))};
}

bool is_planar(const Graph& g) { return planar_embedding(g).planar; }

}  // namespace pr::embed
