#include "embed/genus_opt.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace pr::embed {

namespace {

/// Lexicographic objective: more faces first (lower genus), then more
/// PR-safe edges (edges whose two darts lie on distinct faces; see
/// faces.hpp for why safety matters to Packet Re-cycling).
struct Score {
  std::size_t faces = 0;
  std::size_t safe_edges = 0;

  bool operator==(const Score&) const noexcept = default;
  bool operator>(const Score& other) const noexcept {
    if (faces != other.faces) return faces > other.faces;
    return safe_edges > other.safe_edges;
  }
  bool operator>=(const Score& other) const noexcept {
    return *this > other || *this == other;
  }
};

Score score_of(const RotationSystem& rot) {
  const FaceSet faces = trace_faces(rot);
  const std::size_t unsafe = self_paired_edges(rot.graph(), faces).size();
  return Score{faces.face_count(), rot.graph().edge_count() - unsafe};
}

/// One local move: remove a dart from a node's cyclic order and reinsert it at
/// a different position.  Returns the previous order so the caller can revert.
std::vector<DartId> apply_move(RotationSystem& rot, NodeId v, std::size_t take,
                               std::size_t put) {
  const auto span = rot.order_at(v);
  std::vector<DartId> old_order(span.begin(), span.end());
  std::vector<DartId> new_order = old_order;
  const DartId d = new_order[take];
  new_order.erase(new_order.begin() + static_cast<std::ptrdiff_t>(take));
  new_order.insert(new_order.begin() + static_cast<std::ptrdiff_t>(put), d);
  rot.set_order(v, std::move(new_order));
  return old_order;
}

}  // namespace

GenusSearchResult minimize_genus(const Graph& g, const GenusSearchOptions& opts) {
  graph::Rng rng(opts.seed);

  // Only nodes of degree >= 3 have more than one cyclic order.
  std::vector<NodeId> movable;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    if (g.degree(v) >= 3) movable.push_back(v);
  }

  RotationSystem best = RotationSystem::identity(g);
  Score best_score = score_of(best);
  std::size_t used = 0;

  if (movable.empty() || opts.max_iterations == 0) {
    return GenusSearchResult{best, genus_of(best), used};
  }

  const auto is_perfect = [&](const Score& s) {
    // Cannot do better than a sphere embedding with every edge safe.
    return s.safe_edges == g.edge_count() && genus_of(best) == 0;
  };

  const std::size_t restarts = std::max<std::size_t>(1, opts.restarts);
  const std::size_t per_restart = std::max<std::size_t>(1, opts.max_iterations / restarts);

  for (std::size_t r = 0; r < restarts && used < opts.max_iterations; ++r) {
    RotationSystem current =
        (r == 0) ? RotationSystem::identity(g) : RotationSystem::random(g, rng);
    Score current_score = score_of(current);
    if (current_score > best_score) {
      best = current;
      best_score = current_score;
    }

    // Phase A (first half): maximise face count with full sideways mobility.
    // Phase B (second half): refine within the face-count plateau, accepting
    // only moves that do not lose safety -- this steers the walk toward
    // embeddings where every link separates two distinct cells.
    for (std::size_t i = 0; i < per_restart && used < opts.max_iterations; ++i, ++used) {
      const bool safety_phase = i >= per_restart / 2;
      const NodeId v = movable[rng.below(movable.size())];
      const std::size_t deg = g.degree(v);
      const std::size_t take = rng.below(deg);
      std::size_t put = rng.below(deg - 1);
      if (put >= take) ++put;
      const auto saved = apply_move(current, v, take, put);
      const Score moved = score_of(current);
      const bool accept = safety_phase ? moved >= current_score
                                       : moved.faces >= current_score.faces;
      if (accept) {
        current_score = moved;
        if (moved > best_score) {
          best = current;
          best_score = moved;
          if (is_perfect(best_score)) {
            return GenusSearchResult{best, 0, used + 1};
          }
        }
      } else {
        current.set_order(v, saved);  // revert
      }
    }
  }

  return GenusSearchResult{best, genus_of(best), used};
}

ExactGenusResult exact_minimum_genus(const Graph& g, std::uint64_t max_rotations) {
  // Size of the rotation space: the first dart of each node's cyclic order is
  // fixed (cyclic symmetry), the rest permute freely: prod (deg - 1)!.
  double space = 1.0;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    for (std::size_t k = 2; k < g.degree(v); ++k) {
      space *= static_cast<double>(k);
    }
  }
  if (space > static_cast<double>(max_rotations)) {
    throw std::invalid_argument(
        "exact_minimum_genus: rotation space too large (" + std::to_string(space) +
        " rotations)");
  }

  // Per-node permutable tails (all out-darts except the first).
  std::vector<std::vector<DartId>> tails(g.node_count());
  for (NodeId v = 0; v < g.node_count(); ++v) {
    const auto outs = g.out_darts(v);
    if (outs.size() > 1) tails[v].assign(outs.begin() + 1, outs.end());
    std::sort(tails[v].begin(), tails[v].end());
  }

  ExactGenusResult result{RotationSystem::identity(g), 0, 0, 0, 0};
  int best_genus = std::numeric_limits<int>::max();

  // Odometer over per-node permutations via std::next_permutation.
  std::vector<std::vector<DartId>> current = tails;
  const auto build = [&]() {
    std::vector<std::vector<DartId>> orders(g.node_count());
    for (NodeId v = 0; v < g.node_count(); ++v) {
      const auto outs = g.out_darts(v);
      orders[v].clear();
      if (!outs.empty()) orders[v].push_back(outs[0]);
      orders[v].insert(orders[v].end(), current[v].begin(), current[v].end());
    }
    return RotationSystem::from_orders(g, std::move(orders));
  };

  bool done = false;
  while (!done) {
    const RotationSystem rot = build();
    const FaceSet faces = trace_faces(rot);
    const int genus = euler_genus(g, faces);
    ++result.rotations_tested;
    if (genus < best_genus) {
      best_genus = genus;
      result.rotation = rot;
      result.genus = genus;
      result.minimum_count = 1;
      result.minimum_pr_safe = pr_safe(g, faces) ? 1 : 0;
    } else if (genus == best_genus) {
      ++result.minimum_count;
      if (pr_safe(g, faces)) ++result.minimum_pr_safe;
    }

    // Advance the odometer.
    done = true;
    for (NodeId v = 0; v < g.node_count(); ++v) {
      if (std::next_permutation(current[v].begin(), current[v].end())) {
        done = false;
        break;
      }
      // wrapped: current[v] is sorted again, carry to the next node
    }
  }
  return result;
}

}  // namespace pr::embed
