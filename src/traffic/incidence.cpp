#include "traffic/incidence.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/telemetry.hpp"

namespace pr::traffic {

void FlowIncidenceIndex::build(const net::Network& net,
                               net::ForwardingProtocol& protocol,
                               std::span<const sim::FlowSpec> flows,
                               std::span<const double> demands) {
  if (!net.failed_links().empty()) {
    throw std::invalid_argument(
        "FlowIncidenceIndex::build: network must be pristine (no failed links)");
  }
  if (demands.size() != flows.size()) {
    throw std::invalid_argument(
        "FlowIncidenceIndex::build: one demand per flow required");
  }

  // One pristine routing pass: stats, node/dart traces and the demand-weighted
  // load map all come from the same route_batch call the sweeps use, so the
  // recorded paths are exactly what a zero-failure scenario would walk.
  sim::BatchResult batch;
  sim::route_batch(net, protocol, flows, demands, pristine_load_,
                   sim::TraceMode::kFullTrace, batch);

  const std::size_t dart_count = net.graph().dart_count();
  path_offsets_.assign(1, 0);
  path_offsets_.reserve(flows.size() + 1);
  path_darts_.clear();
  delivered_.resize(flows.size());
  for (std::size_t f = 0; f < flows.size(); ++f) {
    const auto darts = batch.darts(f);
    path_darts_.insert(path_darts_.end(), darts.begin(), darts.end());
    path_offsets_.push_back(path_darts_.size());
    delivered_[f] = batch[f].delivered() ? 1 : 0;
  }

  // Reverse index, counting-sort style.  `last` dedupes repeated crossings of
  // the same dart within one flow (impossible for loop-free pristine paths,
  // but the index must not double-report a flow if a protocol ever loops).
  std::vector<std::size_t> count(dart_count, 0);
  std::vector<std::uint32_t> last(dart_count, UINT32_MAX);
  for (std::size_t f = 0; f < flows.size(); ++f) {
    for (const graph::DartId d : flow_darts(f)) {
      if (last[d] != f) {
        last[d] = static_cast<std::uint32_t>(f);
        ++count[d];
      }
    }
  }
  dart_offsets_.assign(dart_count + 1, 0);
  for (std::size_t d = 0; d < dart_count; ++d) {
    dart_offsets_[d + 1] = dart_offsets_[d] + count[d];
  }
  dart_flows_.resize(dart_offsets_.back());
  std::vector<std::size_t> fill(dart_offsets_.begin(), dart_offsets_.end() - 1);
  std::fill(last.begin(), last.end(), UINT32_MAX);
  for (std::size_t f = 0; f < flows.size(); ++f) {
    for (const graph::DartId d : flow_darts(f)) {
      if (last[d] != f) {
        last[d] = static_cast<std::uint32_t>(f);
        dart_flows_[fill[d]++] = static_cast<std::uint32_t>(f);
      }
    }
  }
  built_ = true;
}

void FlowIncidenceIndex::affected_flows(const graph::EdgeSet& failures,
                                        std::vector<std::uint8_t>& mark,
                                        std::vector<std::uint32_t>& out) const {
  mark.assign(flow_count(), 0);
  out.clear();
  for (const graph::EdgeId e : failures.elements()) {
    for (const unsigned side : {0U, 1U}) {
      const graph::DartId d = graph::make_dart(e, side);
      if (d >= dart_count()) continue;  // failure set over a larger graph
      for (const std::uint32_t f : dart_flows(d)) {
        if (mark[f] == 0) {
          mark[f] = 1;
          out.push_back(f);
        }
      }
    }
  }
  std::sort(out.begin(), out.end());
  obs::count(obs::Counter::kIncidenceProbes);
  obs::count(obs::Counter::kIncidenceAffectedFlows, out.size());
  obs::count(obs::Counter::kIncidenceUniverseFlows, flow_count());
}

void GroupIncidence::build(const FlowIncidenceIndex& index,
                           const net::SrlgCatalog& catalog) {
  if (!index.built()) {
    throw std::invalid_argument("GroupIncidence::build: index is not built");
  }
  if (catalog.graph().dart_count() != index.dart_count()) {
    throw std::invalid_argument(
        "GroupIncidence::build: catalog graph disagrees with index dart count");
  }

  flow_count_ = index.flow_count();
  group_offsets_.assign(1, 0);
  group_offsets_.reserve(catalog.group_count() + 1);
  group_flows_.clear();

  std::vector<std::uint8_t> mark(flow_count_, 0);
  std::vector<std::uint32_t> touched;
  for (std::size_t g = 0; g < catalog.group_count(); ++g) {
    touched.clear();
    for (const graph::EdgeId e : catalog.members(g)) {
      for (const unsigned side : {0U, 1U}) {
        for (const std::uint32_t f : index.dart_flows(graph::make_dart(e, side))) {
          if (mark[f] == 0) {
            mark[f] = 1;
            touched.push_back(f);
          }
        }
      }
    }
    std::sort(touched.begin(), touched.end());
    group_flows_.insert(group_flows_.end(), touched.begin(), touched.end());
    group_offsets_.push_back(group_flows_.size());
    for (const std::uint32_t f : touched) mark[f] = 0;  // cheap reset for next group
  }
  built_ = true;
}

void GroupIncidence::affected_flows(std::span<const std::size_t> groups,
                                    std::vector<std::uint8_t>& mark,
                                    std::vector<std::uint32_t>& out) const {
  mark.assign(flow_count_, 0);
  out.clear();
  for (const std::size_t g : groups) {
    for (const std::uint32_t f : group_flows(g)) {
      if (mark[f] == 0) {
        mark[f] = 1;
        out.push_back(f);
      }
    }
  }
  std::sort(out.begin(), out.end());
  obs::count(obs::Counter::kIncidenceProbes);
  obs::count(obs::Counter::kIncidenceAffectedFlows, out.size());
  obs::count(obs::Counter::kIncidenceUniverseFlows, flow_count_);
}

}  // namespace pr::traffic
