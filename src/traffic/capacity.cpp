#include "traffic/capacity.hpp"

#include <cmath>
#include <stdexcept>

namespace pr::traffic {

namespace {

void check_capacity(double pps) {
  if (!(pps > 0.0) || !std::isfinite(pps)) {
    throw std::invalid_argument("CapacityPlan: capacity must be finite and > 0");
  }
}

}  // namespace

CapacityPlan CapacityPlan::uniform(const Graph& g, double pps) {
  check_capacity(pps);
  CapacityPlan plan;
  plan.pps_.assign(g.edge_count(), pps);
  return plan;
}

CapacityPlan CapacityPlan::from_weights(const Graph& g, double pps_per_unit_weight) {
  check_capacity(pps_per_unit_weight);
  CapacityPlan plan;
  plan.pps_.reserve(g.edge_count());
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    plan.pps_.push_back(pps_per_unit_weight * g.edge_weight(e));
  }
  return plan;
}

CapacityPlan CapacityPlan::from_queue_config(const Graph& g,
                                             const net::QueueModel::Config& cfg) {
  if (!(cfg.link_rate_bps > 0.0) || !(cfg.packet_bits > 0.0)) {
    throw std::invalid_argument(
        "CapacityPlan: queue config rate and packet size must be positive");
  }
  return uniform(g, cfg.link_rate_bps / cfg.packet_bits);
}

void CapacityPlan::set_capacity_pps(EdgeId e, double pps) {
  check_capacity(pps);
  pps_.at(e) = pps;
}

std::vector<double> CapacityPlan::link_rates_bps(double packet_bits) const {
  if (!(packet_bits > 0.0)) {
    throw std::invalid_argument("CapacityPlan: packet size must be positive");
  }
  std::vector<double> rates;
  rates.reserve(pps_.size());
  for (double pps : pps_) rates.push_back(pps * packet_bits);
  return rates;
}

net::QueueModel::Config CapacityPlan::queue_config(double packet_bits,
                                                   std::size_t queue_packets) const {
  if (pps_.empty()) {
    throw std::logic_error("CapacityPlan::queue_config: empty plan");
  }
  for (double pps : pps_) {
    if (pps != pps_.front()) {
      throw std::logic_error(
          "CapacityPlan::queue_config: plan is not uniform; use link_rates_bps() "
          "with QueueModel's per-edge constructor");
    }
  }
  net::QueueModel::Config cfg;
  cfg.link_rate_bps = pps_.front() * packet_bits;
  cfg.packet_bits = packet_bits;
  cfg.queue_packets = queue_packets;
  return cfg;
}

}  // namespace pr::traffic
