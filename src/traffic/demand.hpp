// Demand matrices: who sends how much traffic to whom, in packets per second.
//
// The paper prices outages in traffic volume ("a heavily loaded OC-192 ...
// more than a quarter of a million packets"), so a workload is more than a
// set of probe pairs: every ordered (source, destination) pair carries a
// demand, and a failure's cost is the demand it strands or displaces.  This
// header provides the dense matrix plus the standard generator family used by
// traffic-engineering studies:
//   * uniform  -- every ordered pair carries the same rate;
//   * gravity  -- demand(s,t) proportional to mass(s) * mass(t), with node
//                 masses taken from degree (PoP size proxy) or incident link
//                 weight (capacity proxy);
//   * hotspot  -- a few randomly drawn sink nodes attract a configurable
//                 fraction of the total demand (content/datacenter skew);
//   * CSV      -- operator-supplied matrices, round-tripping exactly.
// All stochastic choices draw from an explicitly seeded graph::Rng, following
// the library-wide splitmix64 seeding discipline (graph::split_seed).
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "graph/graph.hpp"
#include "graph/rng.hpp"

namespace pr::traffic {

using graph::Graph;
using graph::NodeId;

/// Dense src x dst demand matrix in packets per second.  The diagonal is
/// identically zero (a router does not send traffic to itself), and all
/// entries are non-negative and finite.
class TrafficMatrix {
 public:
  TrafficMatrix() = default;
  /// All-zero matrix over `node_count` nodes.
  explicit TrafficMatrix(std::size_t node_count);

  [[nodiscard]] std::size_t node_count() const noexcept { return n_; }

  [[nodiscard]] double demand(NodeId s, NodeId t) const { return pps_.at(index(s, t)); }

  /// Sets one entry.  Throws std::invalid_argument for s == t, negative or
  /// non-finite rates; std::out_of_range for bad endpoints.
  void set_demand(NodeId s, NodeId t, double pps);
  void add_demand(NodeId s, NodeId t, double pps);

  /// Sum of all entries.
  [[nodiscard]] double total_pps() const noexcept;

  /// Ordered pairs with non-zero demand.
  [[nodiscard]] std::size_t pair_count() const noexcept;

  /// Rescales every entry so total_pps() == target.  Throws
  /// std::invalid_argument when the matrix is all-zero or target is negative.
  void scale_to_total(double target_pps);

  /// Row-major flat view (index s * node_count + t), for tests and reports.
  [[nodiscard]] std::span<const double> flat() const noexcept { return pps_; }

  friend bool operator==(const TrafficMatrix&, const TrafficMatrix&) = default;

 private:
  [[nodiscard]] std::size_t index(NodeId s, NodeId t) const {
    if (s >= n_ || t >= n_) throw std::out_of_range("TrafficMatrix: node out of range");
    return static_cast<std::size_t>(s) * n_ + t;
  }

  std::size_t n_ = 0;
  std::vector<double> pps_;
};

/// Every ordered pair carries total_pps / (n * (n-1)).
[[nodiscard]] TrafficMatrix uniform_demand(const Graph& g, double total_pps);

/// Node-mass choice for the gravity model.
enum class GravityMass : std::uint8_t {
  kDegree,  ///< interface count (PoP size proxy; the classic choice)
  kWeight,  ///< sum of incident link weights (capacity proxy, ablation)
};

/// Gravity model: demand(s,t) = total_pps * m_s * m_t / sum_{a != b} m_a m_b.
/// Deterministic in (graph, mass kind).
[[nodiscard]] TrafficMatrix gravity_demand(const Graph& g, double total_pps,
                                           GravityMass mass = GravityMass::kDegree);

/// Hotspot skew: `hotspots` distinct sink nodes drawn from `rng` attract
/// `hot_fraction` of total_pps (split uniformly over sources and hotspots);
/// the remainder is spread uniformly over all ordered pairs.  Deterministic
/// in the rng state, per the seeding discipline.
[[nodiscard]] TrafficMatrix hotspot_demand(const Graph& g, double total_pps,
                                           std::size_t hotspots, double hot_fraction,
                                           graph::Rng& rng);

/// CSV serialisation: one "src,dst,pps" record per line, '#' starts a
/// comment, endpoints are node display names (labels, or "n<id>" for
/// unlabeled nodes; on parse, labels take precedence).  Writing uses max
/// precision so matrices round-trip bit-exactly, and throws
/// std::invalid_argument when an unlabeled node with demand has a display
/// name that collides with another node's label (the record would re-read
/// ambiguously).
[[nodiscard]] std::string demand_to_csv(const Graph& g, const TrafficMatrix& m);

/// Parses the format above against an existing topology.  Throws
/// std::invalid_argument with a line number on malformed records, unknown
/// nodes, self-pairs, negative rates, or duplicate entries.
[[nodiscard]] TrafficMatrix demand_from_csv(const Graph& g, std::string_view text);

}  // namespace pr::traffic
