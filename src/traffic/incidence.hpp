// Flow->dart incidence: the pristine-routing index behind incremental
// traffic sweeps.
//
// A congestion-under-failure sweep re-prices the same demand matrix against
// hundreds of failure scenarios, yet in a single-link sweep the overwhelming
// majority of flows never touch the failed edge: their scenario path IS their
// pristine path, and they contribute exactly their pristine load.  This index
// captures one pristine routing pass of a protocol over a demand work-list in
// CSR form, twice over:
//   * per flow  -- the dart sequence its pristine path crossed (the replay
//                  rows that seed every scenario's LoadMap);
//   * per dart  -- the sorted set of flows whose pristine path crosses it
//                  (the reverse index a failure set probes to find the flows
//                  it actually affects).
// A scenario then re-routes only the affected flows and REPLAYS the pristine
// rows for everyone else, interleaved in canonical flow order -- the exact
// floating-point addition sequence a full re-route performs, which is what
// keeps incremental results bit-identical to the full oracle (see
// analysis/traffic.hpp).
//
// Validity: the index assumes protocols are failure-local -- a flow whose
// pristine path avoids every failed edge must behave identically under the
// scenario.  That holds for every analysis::ProtocolSuite factory: PR, LFA,
// FCP and static SPF forward on pristine tables and only deviate AT a failed
// link, and reconvergence's deterministic destination-based SPF provably
// keeps every next-hop on a surviving pristine path unchanged (removing
// edges cannot shorten surviving paths; see graph::SpfWorkspace::repair).
// The debug-mode cross-check in analysis::run_traffic_experiment enforces it.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "net/failure_model.hpp"
#include "sim/forwarding_engine.hpp"
#include "traffic/load_map.hpp"

namespace pr::traffic {

class FlowIncidenceIndex {
 public:
  FlowIncidenceIndex() = default;

  /// Routes every flow of `flows` through the pristine `net` under
  /// `protocol` (same order and hop semantics as the sweep's route_batch)
  /// and records the per-flow dart paths, per-dart flow incidence, per-flow
  /// delivery outcomes and the demand-weighted pristine LoadMap.  `net` must
  /// carry no failures and `demands` one rate per flow (throws
  /// std::invalid_argument otherwise).  Rebuilding reuses storage.
  void build(const net::Network& net, net::ForwardingProtocol& protocol,
             std::span<const sim::FlowSpec> flows, std::span<const double> demands);

  [[nodiscard]] bool built() const noexcept { return built_; }
  [[nodiscard]] std::size_t flow_count() const noexcept { return delivered_.size(); }
  [[nodiscard]] std::size_t dart_count() const noexcept {
    return dart_offsets_.empty() ? 0 : dart_offsets_.size() - 1;
  }

  /// Pristine path of flow `flow` as the dart sequence it crossed, in hop
  /// order (the partial path for a flow dropped in the pristine network).
  [[nodiscard]] std::span<const graph::DartId> flow_darts(std::size_t flow) const {
    return {path_darts_.data() + path_offsets_.at(flow),
            path_offsets_.at(flow + 1) - path_offsets_.at(flow)};
  }

  [[nodiscard]] bool pristine_delivered(std::size_t flow) const {
    return delivered_.at(flow) != 0;
  }

  /// Flows whose pristine path crosses dart `d`, sorted ascending, deduped.
  [[nodiscard]] std::span<const std::uint32_t> dart_flows(graph::DartId d) const {
    return {dart_flows_.data() + dart_offsets_.at(d),
            dart_offsets_.at(d + 1) - dart_offsets_.at(d)};
  }

  /// The demand-weighted per-dart load of the pristine routing pass (what a
  /// zero-failure scenario accumulates).
  [[nodiscard]] const LoadMap& pristine_load() const noexcept { return pristine_load_; }

  /// Collects into `out` the flows whose pristine path crosses any edge of
  /// `failures` (both darts), sorted ascending and deduped.  `mark` is
  /// caller-owned scratch, resized to flow_count() and left with mark[f] != 0
  /// exactly for the collected flows -- sweep cells reuse it to test
  /// affectedness per flow without a second lookup.
  void affected_flows(const graph::EdgeSet& failures, std::vector<std::uint8_t>& mark,
                      std::vector<std::uint32_t>& out) const;

 private:
  bool built_ = false;
  // Per-flow pristine paths, CSR over darts crossed.
  std::vector<std::size_t> path_offsets_;  ///< flow_count()+1 fenceposts
  std::vector<graph::DartId> path_darts_;
  std::vector<std::uint8_t> delivered_;  ///< pristine delivery per flow
  // Per-dart incidence, CSR over flow ids (sorted, deduped per dart).
  std::vector<std::size_t> dart_offsets_;  ///< dart count + 1 fenceposts
  std::vector<std::uint32_t> dart_flows_;
  LoadMap pristine_load_;
};

/// Per-risk-group affected-flow unions: the SRLG-grained reverse index the
/// storm sweeps probe.  A storm scenario arrives as a *group* list, and
/// probing FlowIncidenceIndex edge by edge costs O(failed edges x incident
/// flows) -- wasteful when geographic bundles put dozens of edges in one
/// group.  GroupIncidence precomputes, per catalog group, the sorted union of
/// flows whose pristine path crosses any member edge, so the per-scenario
/// probe is O(failed groups + affected flows).
class GroupIncidence {
 public:
  GroupIncidence() = default;

  /// Builds the group->flows CSR from a built `index` over `catalog`'s graph
  /// (throws std::invalid_argument if `index` is not built or its dart count
  /// disagrees with the catalog's graph).  Rebuilding reuses storage.
  void build(const FlowIncidenceIndex& index, const net::SrlgCatalog& catalog);

  [[nodiscard]] bool built() const noexcept { return built_; }
  [[nodiscard]] std::size_t group_count() const noexcept {
    return group_offsets_.empty() ? 0 : group_offsets_.size() - 1;
  }
  [[nodiscard]] std::size_t flow_count() const noexcept { return flow_count_; }

  /// Flows whose pristine path crosses any member edge of `group`, sorted
  /// ascending, deduped.
  [[nodiscard]] std::span<const std::uint32_t> group_flows(std::size_t group) const {
    return {group_flows_.data() + group_offsets_.at(group),
            group_offsets_.at(group + 1) - group_offsets_.at(group)};
  }

  /// Union over `groups`, same contract as FlowIncidenceIndex::affected_flows:
  /// `out` sorted ascending and deduped, `mark` resized to flow_count() with
  /// mark[f] != 0 exactly for collected flows.
  void affected_flows(std::span<const std::size_t> groups,
                      std::vector<std::uint8_t>& mark,
                      std::vector<std::uint32_t>& out) const;

 private:
  bool built_ = false;
  std::size_t flow_count_ = 0;
  // Per-group incidence, CSR over flow ids (sorted, deduped per group).
  std::vector<std::size_t> group_offsets_;  ///< group_count()+1 fenceposts
  std::vector<std::uint32_t> group_flows_;
};

/// Per-worker scratch for incremental sweep cells (affected-flow marks and
/// the compacted re-route list).  Lives in sim::WorkerContext and in each
/// serial driver so the per-scenario hot loop reuses capacity.
struct IncidenceScratch {
  std::vector<std::uint8_t> affected_mark;  ///< per-flow affectedness flags
  std::vector<std::uint32_t> affected;      ///< affected flow ids, ascending
  std::vector<sim::FlowSpec> flows;         ///< compacted specs for re-routing
};

}  // namespace pr::traffic
