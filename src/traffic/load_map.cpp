#include "traffic/load_map.hpp"

#include <cmath>
#include <stdexcept>

namespace pr::traffic {

void LoadMap::merge(const LoadMap& other) {
  if (other.pps_.size() != pps_.size()) {
    throw std::invalid_argument("LoadMap::merge: dart count mismatch");
  }
  for (std::size_t d = 0; d < pps_.size(); ++d) pps_[d] += other.pps_[d];
}

LoadMapDiff diff(const LoadMap& a, const LoadMap& b) {
  LoadMapDiff d;
  if (a.dart_count() != b.dart_count()) {
    d.size_mismatch = true;
    return d;
  }
  d.darts_compared = a.dart_count();
  for (std::size_t i = 0; i < a.dart_count(); ++i) {
    const double la = a.load(static_cast<graph::DartId>(i));
    const double lb = b.load(static_cast<graph::DartId>(i));
    if (la == lb) continue;
    ++d.differing;
    const double delta = std::abs(la - lb);
    if (delta >= d.max_abs_delta) {
      d.max_abs_delta = delta;
      d.worst_dart = static_cast<graph::DartId>(i);
    }
  }
  return d;
}

}  // namespace pr::traffic
