#include "traffic/load_map.hpp"

#include <stdexcept>

namespace pr::traffic {

void LoadMap::merge(const LoadMap& other) {
  if (other.pps_.size() != pps_.size()) {
    throw std::invalid_argument("LoadMap::merge: dart count mismatch");
  }
  for (std::size_t d = 0; d < pps_.size(); ++d) pps_[d] += other.pps_[d];
}

}  // namespace pr::traffic
