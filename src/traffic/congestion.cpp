#include "traffic/congestion.hpp"

#include <algorithm>
#include <stdexcept>

namespace pr::traffic {

void apply_utilization(CongestionMetrics& m, const graph::Graph& g,
                       const LoadMap& load, const CapacityPlan& plan) {
  if (load.dart_count() != g.dart_count()) {
    throw std::invalid_argument("apply_utilization: load map does not cover the graph");
  }
  if (plan.edge_count() != g.edge_count()) {
    throw std::invalid_argument("apply_utilization: plan does not cover the graph");
  }
  m.max_utilization = 0.0;
  m.overloaded_links = 0;
  for (graph::EdgeId e = 0; e < g.edge_count(); ++e) {
    const double capacity = plan.capacity_pps(e);
    const double fwd = load.load(graph::make_dart(e, 0)) / capacity;
    const double rev = load.load(graph::make_dart(e, 1)) / capacity;
    const double worst = std::max(fwd, rev);
    m.max_utilization = std::max(m.max_utilization, worst);
    if (worst > 1.0) ++m.overloaded_links;
  }
}

CongestionSummary summarize(std::span<const CongestionMetrics> per_scenario) {
  CongestionSummary s;
  s.scenarios = per_scenario.size();
  for (const CongestionMetrics& m : per_scenario) {
    s.worst_max_utilization = std::max(s.worst_max_utilization, m.max_utilization);
    s.mean_max_utilization += m.max_utilization;
    s.overloaded_links += m.overloaded_links;
    if (m.overloaded_links > 0) ++s.overloaded_scenarios;
    s.offered_pps += m.offered_pps;
    s.delivered_pps += m.delivered_pps;
    s.lost_pps += m.lost_pps;
    s.stranded_pps += m.stranded_pps;
  }
  if (s.scenarios > 0) {
    s.mean_max_utilization /= static_cast<double>(s.scenarios);
  }
  return s;
}

}  // namespace pr::traffic
