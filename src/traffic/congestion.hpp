// Congestion metrics: pricing a failure scenario in traffic, not probes.
//
// Given the per-interface load a demand-weighted sweep accumulated and the
// capacity plan pricing those interfaces, a scenario's cost has two axes:
//   * concentration -- how hard does rerouted demand hit the surviving links
//     (max utilization, overloaded-link count);
//   * volume        -- how much demand was delivered, lost although a path
//     existed (a protocol coverage gap priced in pps), or stranded because
//     the destination was partitioned off (no scheme can deliver it).
// The structs are plain mergeable values with defaulted equality so sweep
// determinism can be asserted bit for bit.
#pragma once

#include <cstddef>
#include <span>

#include "graph/graph.hpp"
#include "traffic/capacity.hpp"
#include "traffic/load_map.hpp"

namespace pr::traffic {

/// What one (scenario, protocol) cell of a traffic sweep experienced.
struct CongestionMetrics {
  /// max over interfaces of load / capacity (0 when nothing was loaded).
  double max_utilization = 0.0;
  /// Links (edges) with at least one direction loaded above capacity.
  std::size_t overloaded_links = 0;
  double offered_pps = 0.0;    ///< total demand routed into the scenario
  double delivered_pps = 0.0;  ///< demand of delivered flows
  double lost_pps = 0.0;       ///< demand dropped though the destination was reachable
  double stranded_pps = 0.0;   ///< demand whose destination was partitioned off

  friend bool operator==(const CongestionMetrics&, const CongestionMetrics&) = default;
};

/// Fills the utilization axis (max_utilization, overloaded_links) of `m` from
/// an accumulated load map; the volume axis is filled by the sweep driver,
/// which knows per-flow outcomes.  `load` must cover g.dart_count() darts and
/// `plan` g.edge_count() edges (throws std::invalid_argument otherwise).
void apply_utilization(CongestionMetrics& m, const graph::Graph& g,
                       const LoadMap& load, const CapacityPlan& plan);

/// Aggregate view of one protocol across a scenario sweep.
struct CongestionSummary {
  std::size_t scenarios = 0;
  double worst_max_utilization = 0.0;
  double mean_max_utilization = 0.0;
  /// Summed over scenarios (a link overloaded in k scenarios counts k times).
  std::size_t overloaded_links = 0;
  /// Scenarios with at least one overloaded link.
  std::size_t overloaded_scenarios = 0;
  double offered_pps = 0.0;
  double delivered_pps = 0.0;
  double lost_pps = 0.0;
  double stranded_pps = 0.0;

  friend bool operator==(const CongestionSummary&, const CongestionSummary&) = default;
};

/// Folds per-scenario metrics (in canonical scenario order, for deterministic
/// floating-point sums) into the aggregate view.
[[nodiscard]] CongestionSummary summarize(std::span<const CongestionMetrics> per_scenario);

}  // namespace pr::traffic
