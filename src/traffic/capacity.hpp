// Per-link capacity plan: the one place link speeds are decided, shared by
// the analytic congestion model (traffic/congestion.hpp) and the event
// simulator's interface queues (net::QueueModel).
//
// Both consumers price a link identically: a link of capacity C pps serialises
// packets at C per second per direction, so the batch-sim utilization
// load/C and the event-sim queue with link_rate_bps = C * packet_bits
// describe the same interface.  Plans come from uniform rates, from link
// weights (weight as a capacity proxy), or from an existing QueueModel
// config; they convert back to per-edge line rates for per-edge queues.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/graph.hpp"
#include "net/queueing.hpp"

namespace pr::traffic {

using graph::EdgeId;
using graph::Graph;

class CapacityPlan {
 public:
  CapacityPlan() = default;

  /// Every link gets `pps` capacity per direction.
  [[nodiscard]] static CapacityPlan uniform(const Graph& g, double pps);

  /// capacity(e) = pps_per_unit_weight * weight(e): link weights double as
  /// capacity annotations (heavier trunk = more capacity).
  [[nodiscard]] static CapacityPlan from_weights(const Graph& g,
                                                 double pps_per_unit_weight);

  /// The plan a uniform QueueModel::Config describes: every link serialises
  /// link_rate_bps / packet_bits packets per second.
  [[nodiscard]] static CapacityPlan from_queue_config(
      const Graph& g, const net::QueueModel::Config& cfg);

  [[nodiscard]] std::size_t edge_count() const noexcept { return pps_.size(); }
  [[nodiscard]] double capacity_pps(EdgeId e) const { return pps_.at(e); }

  /// Overrides one link (both directions).  Throws std::invalid_argument on
  /// non-positive or non-finite rates.
  void set_capacity_pps(EdgeId e, double pps);

  /// Per-edge line rates in bits per second for a given packet size -- the
  /// vector net::QueueModel's per-edge constructor takes, so event-sim queues
  /// price exactly the links this plan describes.
  [[nodiscard]] std::vector<double> link_rates_bps(double packet_bits) const;

  /// Uniform-plan shortcut back to a QueueModel::Config (throws
  /// std::logic_error when capacities differ across links -- use
  /// link_rates_bps() + the per-edge QueueModel constructor then).
  [[nodiscard]] net::QueueModel::Config queue_config(double packet_bits = 8000,
                                                     std::size_t queue_packets = 64) const;

  friend bool operator==(const CapacityPlan&, const CapacityPlan&) = default;

 private:
  std::vector<double> pps_;
};

}  // namespace pr::traffic
