// Per-interface offered load, accumulated by demand-weighted sweeps.
//
// A LoadMap holds one packets-per-second accumulator per dart (per interface
// direction, matching net::QueueModel's queue-per-dart view).  The batched
// forwarding engine adds a flow's demand to every dart the flow traverses --
// including the partial path of a dropped flow, since those packets occupy
// real transmitters before being lost.  Maps are plain flat vectors: reset()
// keeps capacity so the sweep hot loop never allocates, and merge() is an
// element-wise sum whose canonical call order (scenario order, enforced by
// the sweep drivers) makes parallel reductions bit-identical to serial ones.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace pr::traffic {

class LoadMap {
 public:
  LoadMap() = default;
  explicit LoadMap(std::size_t dart_count) : pps_(dart_count, 0.0) {}

  /// Sizes for `dart_count` darts and zeroes every accumulator; existing
  /// capacity is reused, so resetting per scenario is allocation-free once
  /// the first scenario warmed the buffer.
  void reset(std::size_t dart_count) {
    pps_.assign(dart_count, 0.0);
  }

  void add(graph::DartId d, double pps) { pps_.at(d) += pps; }

  [[nodiscard]] double load(graph::DartId d) const { return pps_.at(d); }
  [[nodiscard]] std::size_t dart_count() const noexcept { return pps_.size(); }
  [[nodiscard]] std::span<const double> darts() const noexcept { return pps_; }

  /// Sum of all per-dart loads (the demand-weighted link-hop volume).
  [[nodiscard]] double total_pps() const noexcept {
    double sum = 0.0;
    for (double v : pps_) sum += v;
    return sum;
  }

  /// Element-wise accumulation; both maps must cover the same dart count
  /// (throws std::invalid_argument otherwise).  Callers merging sweep shards
  /// must do so in canonical scenario order -- floating-point sums are order-
  /// sensitive, and the executor's determinism contract depends on it.
  void merge(const LoadMap& other);

  friend bool operator==(const LoadMap&, const LoadMap&) = default;

 private:
  std::vector<double> pps_;
};

/// Element-wise comparison report between two maps: how many darts differ
/// bit-for-bit and where the largest absolute delta sits.  Tests use it to
/// assert exact equality with a useful failure message, and the debug-mode
/// cross-check in analysis::run_traffic_experiment uses it to pinpoint any
/// divergence between the incremental and full-re-route sweep paths.
struct LoadMapDiff {
  bool size_mismatch = false;  ///< dart counts differ; no darts compared
  std::size_t darts_compared = 0;
  std::size_t differing = 0;  ///< darts whose loads are not bit-equal
  /// Dart with the largest |a - b| (kInvalidDart when none differ).
  graph::DartId worst_dart = graph::kInvalidDart;
  double max_abs_delta = 0.0;

  [[nodiscard]] bool identical() const noexcept {
    return !size_mismatch && differing == 0;
  }
};

/// Compares two maps element-wise.  Size mismatch is reported, not thrown,
/// so the helper is usable in failure paths.
[[nodiscard]] LoadMapDiff diff(const LoadMap& a, const LoadMap& b);

/// Mergeable sweep reduction: the summed load map plus the scenario count it
/// covers.  The traffic sweep drivers keep one per protocol: serial sweeps
/// add() each scenario's map in order, parallel sweeps merge() per-unit
/// reductions in canonical unit order -- the two perform the same element-
/// wise additions in the same sequence, which is what makes the summed map
/// bit-identical at every thread count.
struct LoadMapReduction {
  LoadMap load;
  std::size_t scenarios = 0;

  /// Folds one scenario's accumulated map in (adopts the size on first use).
  void add(const LoadMap& scenario_load) {
    if (load.dart_count() == 0) {
      load = scenario_load;
    } else {
      load.merge(scenario_load);
    }
    ++scenarios;
  }

  void merge(const LoadMapReduction& other) {
    if (load.dart_count() == 0) {
      load = other.load;
    } else if (other.load.dart_count() != 0) {
      load.merge(other.load);
    }
    scenarios += other.scenarios;
  }

  friend bool operator==(const LoadMapReduction&, const LoadMapReduction&) = default;
};

}  // namespace pr::traffic
