#include "traffic/demand.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace pr::traffic {

namespace {

void check_rate(double pps) {
  if (!(pps >= 0.0) || !std::isfinite(pps)) {
    throw std::invalid_argument("TrafficMatrix: demand must be finite and >= 0");
  }
}

[[noreturn]] void fail_line(std::size_t line_no, const std::string& what) {
  throw std::invalid_argument("demand csv line " + std::to_string(line_no) + ": " +
                              what);
}

/// Resolves a CSV endpoint: a node label, or the "n<id>" display name an
/// unlabeled node serialises as.
NodeId resolve_node(const Graph& g, const std::string& token, std::size_t line_no) {
  if (const auto v = g.find_node(token)) return *v;
  if (token.size() >= 2 && token[0] == 'n' &&
      std::all_of(token.begin() + 1, token.end(),
                  [](char c) { return c >= '0' && c <= '9'; })) {
    try {
      const unsigned long id = std::stoul(token.substr(1));
      if (id < g.node_count() && g.node_label(static_cast<NodeId>(id)).empty()) {
        return static_cast<NodeId>(id);
      }
    } catch (const std::exception&) {
      // falls through to the error below
    }
  }
  fail_line(line_no, "unknown node '" + token + "'");
}

}  // namespace

TrafficMatrix::TrafficMatrix(std::size_t node_count)
    : n_(node_count), pps_(node_count * node_count, 0.0) {}

void TrafficMatrix::set_demand(NodeId s, NodeId t, double pps) {
  if (s == t) throw std::invalid_argument("TrafficMatrix: self-demand (s == t)");
  check_rate(pps);
  pps_.at(index(s, t)) = pps;
}

void TrafficMatrix::add_demand(NodeId s, NodeId t, double pps) {
  if (s == t) throw std::invalid_argument("TrafficMatrix: self-demand (s == t)");
  check_rate(pps);
  pps_.at(index(s, t)) += pps;
}

double TrafficMatrix::total_pps() const noexcept {
  double sum = 0.0;
  for (double v : pps_) sum += v;
  return sum;
}

std::size_t TrafficMatrix::pair_count() const noexcept {
  return static_cast<std::size_t>(
      std::count_if(pps_.begin(), pps_.end(), [](double v) { return v != 0.0; }));
}

void TrafficMatrix::scale_to_total(double target_pps) {
  if (!(target_pps >= 0.0) || !std::isfinite(target_pps)) {
    throw std::invalid_argument("TrafficMatrix: scale target must be finite and >= 0");
  }
  const double total = total_pps();
  if (total <= 0.0) {
    throw std::invalid_argument("TrafficMatrix: cannot rescale an all-zero matrix");
  }
  const double factor = target_pps / total;
  for (double& v : pps_) v *= factor;
}

TrafficMatrix uniform_demand(const Graph& g, double total_pps) {
  check_rate(total_pps);
  const std::size_t n = g.node_count();
  if (n < 2) throw std::invalid_argument("uniform_demand: need at least two nodes");
  TrafficMatrix m(n);
  const double per_pair = total_pps / static_cast<double>(n * (n - 1));
  for (NodeId s = 0; s < n; ++s) {
    for (NodeId t = 0; t < n; ++t) {
      if (s != t) m.set_demand(s, t, per_pair);
    }
  }
  return m;
}

TrafficMatrix gravity_demand(const Graph& g, double total_pps, GravityMass mass) {
  check_rate(total_pps);
  const std::size_t n = g.node_count();
  if (n < 2) throw std::invalid_argument("gravity_demand: need at least two nodes");

  std::vector<double> masses(n, 0.0);
  for (NodeId v = 0; v < n; ++v) {
    if (mass == GravityMass::kDegree) {
      masses[v] = static_cast<double>(g.degree(v));
    } else {
      for (graph::DartId d : g.out_darts(v)) {
        masses[v] += g.edge_weight(graph::dart_edge(d));
      }
    }
  }

  double norm = 0.0;
  for (NodeId s = 0; s < n; ++s) {
    for (NodeId t = 0; t < n; ++t) {
      if (s != t) norm += masses[s] * masses[t];
    }
  }
  if (norm <= 0.0) {
    throw std::invalid_argument("gravity_demand: all node masses are zero");
  }

  TrafficMatrix m(n);
  for (NodeId s = 0; s < n; ++s) {
    for (NodeId t = 0; t < n; ++t) {
      if (s != t) m.set_demand(s, t, total_pps * masses[s] * masses[t] / norm);
    }
  }
  return m;
}

TrafficMatrix hotspot_demand(const Graph& g, double total_pps, std::size_t hotspots,
                             double hot_fraction, graph::Rng& rng) {
  check_rate(total_pps);
  const std::size_t n = g.node_count();
  if (n < 2) throw std::invalid_argument("hotspot_demand: need at least two nodes");
  if (hotspots == 0 || hotspots > n) {
    throw std::invalid_argument("hotspot_demand: hotspots must be in [1, node count]");
  }
  if (!(hot_fraction >= 0.0) || !(hot_fraction <= 1.0)) {
    throw std::invalid_argument("hotspot_demand: hot_fraction must be in [0, 1]");
  }

  // Distinct sinks, drawn in rng order (deterministic in the seed).
  std::vector<std::uint8_t> is_hot(n, 0);
  std::vector<NodeId> sinks;
  sinks.reserve(hotspots);
  while (sinks.size() < hotspots) {
    const auto v = static_cast<NodeId>(rng.below(n));
    if (is_hot[v] == 0) {
      is_hot[v] = 1;
      sinks.push_back(v);
    }
  }

  TrafficMatrix m = uniform_demand(g, total_pps * (1.0 - hot_fraction));
  const double hot_total = total_pps * hot_fraction;
  const double per_flow =
      hot_total / static_cast<double>(hotspots * (n - 1));  // sources per sink
  for (NodeId sink : sinks) {
    for (NodeId s = 0; s < n; ++s) {
      if (s != sink) m.add_demand(s, sink, per_flow);
    }
  }
  return m;
}

std::string demand_to_csv(const Graph& g, const TrafficMatrix& m) {
  if (m.node_count() != g.node_count()) {
    throw std::invalid_argument("demand_to_csv: matrix/graph node count mismatch");
  }
  // Round-trip exactness guards, checked for every node that carries demand:
  //   * an unlabeled node serialises as its "n<id>" display name and the
  //     parser resolves labels first, so if some OTHER node carries that
  //     string as its label the record would silently re-read as that node;
  //   * a label containing the CSV metacharacters (',' splits the record,
  //     '#' truncates it as a comment, newlines break framing) or
  //     surrounding whitespace (trimmed on parse) would not re-read as the
  //     same string.
  for (NodeId v = 0; v < g.node_count(); ++v) {
    bool involved = false;
    for (NodeId u = 0; u < g.node_count() && !involved; ++u) {
      involved = (u != v) && (m.demand(v, u) != 0.0 || m.demand(u, v) != 0.0);
    }
    if (!involved) continue;

    const std::string& label = g.node_label(v);
    if (label.empty()) {
      if (g.find_node(g.display_name(v)).has_value()) {
        throw std::invalid_argument(
            "demand_to_csv: unlabeled node " + std::to_string(v) +
            "'s display name '" + g.display_name(v) +
            "' collides with another node's label; label the node to "
            "serialise its demand unambiguously");
      }
      continue;
    }
    const bool has_meta =
        label.find_first_of(",#\n\r") != std::string::npos;
    const bool has_edge_space = label.front() == ' ' || label.front() == '\t' ||
                                label.back() == ' ' || label.back() == '\t';
    if (has_meta || has_edge_space) {
      throw std::invalid_argument(
          "demand_to_csv: label '" + label +
          "' contains CSV metacharacters or surrounding whitespace and would "
          "not round-trip; rename the node to serialise its demand");
    }
  }
  std::ostringstream out;
  out << "# demand matrix: " << m.node_count() << " nodes, " << m.pair_count()
      << " pairs\n";
  out << std::setprecision(17);  // doubles round-trip bit-exactly
  for (NodeId s = 0; s < m.node_count(); ++s) {
    for (NodeId t = 0; t < m.node_count(); ++t) {
      if (s == t || m.demand(s, t) == 0.0) continue;
      out << g.display_name(s) << "," << g.display_name(t) << "," << m.demand(s, t)
          << "\n";
    }
  }
  return out.str();
}

TrafficMatrix demand_from_csv(const Graph& g, std::string_view text) {
  TrafficMatrix m(g.node_count());
  // Seen-pair tracking independent of the rates, so a zero-rate record still
  // claims its pair (the duplicate contract holds regardless of values).
  std::vector<std::uint8_t> seen(g.node_count() * g.node_count(), 0);
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    std::string_view line = text.substr(
        pos, eol == std::string_view::npos ? std::string_view::npos : eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    ++line_no;

    if (const std::size_t hash = line.find('#'); hash != std::string_view::npos) {
      line = line.substr(0, hash);
    }
    // Trim surrounding whitespace; blank lines are fine.
    while (!line.empty() && (line.front() == ' ' || line.front() == '\t' ||
                             line.front() == '\r')) {
      line.remove_prefix(1);
    }
    while (!line.empty() &&
           (line.back() == ' ' || line.back() == '\t' || line.back() == '\r')) {
      line.remove_suffix(1);
    }
    if (line.empty()) continue;

    std::vector<std::string> fields;
    std::size_t start = 0;
    while (true) {
      const std::size_t comma = line.find(',', start);
      std::string_view field = line.substr(
          start, comma == std::string_view::npos ? std::string_view::npos
                                                 : comma - start);
      while (!field.empty() && (field.front() == ' ' || field.front() == '\t')) {
        field.remove_prefix(1);
      }
      while (!field.empty() && (field.back() == ' ' || field.back() == '\t')) {
        field.remove_suffix(1);
      }
      fields.emplace_back(field);
      if (comma == std::string_view::npos) break;
      start = comma + 1;
    }
    if (fields.size() != 3) fail_line(line_no, "expected 'src,dst,pps'");

    const NodeId s = resolve_node(g, fields[0], line_no);
    const NodeId t = resolve_node(g, fields[1], line_no);
    if (s == t) fail_line(line_no, "self-pair '" + fields[0] + "'");

    double pps = 0.0;
    try {
      std::size_t consumed = 0;
      pps = std::stod(fields[2], &consumed);
      if (consumed != fields[2].size()) throw std::invalid_argument("trailing junk");
    } catch (const std::exception&) {
      fail_line(line_no, "bad rate '" + fields[2] + "'");
    }
    if (!(pps >= 0.0) || !std::isfinite(pps)) {
      fail_line(line_no, "rate must be finite and >= 0");
    }
    std::uint8_t& pair_seen = seen[static_cast<std::size_t>(s) * g.node_count() + t];
    if (pair_seen != 0) {
      fail_line(line_no, "duplicate pair " + fields[0] + " -> " + fields[1]);
    }
    pair_seen = 1;
    m.set_demand(s, t, pps);
  }
  return m;
}

}  // namespace pr::traffic
