// Durable atomic file replacement: the write-to-temp + fsync + rename idiom,
// factored once so every artifact writer in the tree (checkpoint generations,
// BENCH_*.json, PR_TRACE_EXPORT dumps) shares it.
//
// The guarantee is crash-consistency for READERS: after atomic_write_file
// returns, the target path holds exactly `contents` and has been flushed
// through the page cache (fsync on the file, then on its directory so the
// rename itself is durable); if the process dies at ANY point before that,
// the target either still holds its previous contents or does not exist --
// it never holds a partial write.  A nightly job that uploads BENCH_*.json,
// or a resume that reads the newest checkpoint generation, can therefore
// never observe a torn artifact, only a missing or stale one.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

namespace pr::util {

/// Any failure inside atomic_write_file: open/write/fsync/rename errors.
/// The message names the path, the failing operation and the errno text.
class AtomicWriteError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Atomically replaces `path` with `contents`: writes a dot-prefixed
/// temporary in the same directory (same filesystem, so the rename is
/// atomic), fsyncs it, renames it over `path`, and fsyncs the directory.
/// On any failure the temporary is unlinked and AtomicWriteError is thrown;
/// the target is never left partially written.
void atomic_write_file(const std::string& path, std::string_view contents);

}  // namespace pr::util
