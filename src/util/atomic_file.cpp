#include "util/atomic_file.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace pr::util {
namespace {

[[noreturn]] void fail(const std::string& path, const char* op, int err) {
  throw AtomicWriteError("atomic_write_file: " + std::string(op) + " failed for '" +
                         path + "': " + std::strerror(err));
}

/// Directory part of `path` ("." for a bare filename), for the temp sibling
/// and the post-rename directory fsync.
std::string directory_of(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

std::string filename_of(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

}  // namespace

void atomic_write_file(const std::string& path, std::string_view contents) {
  const std::string dir = directory_of(path);
  // Dot-prefixed so directory scans over real artifacts (e.g. checkpoint
  // generation listings) never pick up an in-flight temp; PID-suffixed so two
  // processes replacing the same target never write through one temp.
  const std::string tmp =
      dir + "/." + filename_of(path) + ".tmp." + std::to_string(::getpid());

  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) fail(tmp, "open", errno);

  const char* cursor = contents.data();
  std::size_t remaining = contents.size();
  while (remaining > 0) {
    const ::ssize_t written = ::write(fd, cursor, remaining);
    if (written < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      ::close(fd);
      ::unlink(tmp.c_str());
      fail(tmp, "write", err);
    }
    cursor += written;
    remaining -= static_cast<std::size_t>(written);
  }
  if (::fsync(fd) != 0) {
    const int err = errno;
    ::close(fd);
    ::unlink(tmp.c_str());
    fail(tmp, "fsync", err);
  }
  if (::close(fd) != 0) {
    const int err = errno;
    ::unlink(tmp.c_str());
    fail(tmp, "close", err);
  }

  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const int err = errno;
    ::unlink(tmp.c_str());
    fail(path, "rename", err);
  }

  // The rename is only durable once the directory entry is flushed; without
  // this a crash after return could resurface the OLD file, which breaks the
  // checkpoint store's monotonic-generation reasoning.
  const int dirfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dirfd < 0) fail(dir, "open directory", errno);
  if (::fsync(dirfd) != 0) {
    const int err = errno;
    ::close(dirfd);
    fail(dir, "fsync directory", err);
  }
  ::close(dirfd);
}

}  // namespace pr::util
