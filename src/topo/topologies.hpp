// Bundled topologies: the paper's worked example (Figure 1) and the three ISP
// networks of its evaluation (Section 6).
//
// Provenance / substitutions (see DESIGN.md section 3):
//  * figure1       -- reconstructed exactly from the paper's narrative,
//                     including the embedding and the (unprinted) link
//                     weights pinned down by the worked scenarios.
//  * abilene       -- the public 11-node / 14-link Abilene core, exact.
//  * geant         -- 34-node / 55-link approximation of the 2009 GEANT2
//                     topology (the paper's snapshot is no longer published):
//                     dual-homed NRENs over a western-European core.
//  * teleglobe     -- 25-node / 45-link approximation of the Rocketfuel
//                     AS6453 PoP-level map (original dataset unavailable):
//                     NA / EU / Asia clusters with transoceanic trunks.
// All four are connected and 2-edge-connected (asserted by tests), which the
// paper's single-failure guarantee requires.
#pragma once

#include "embed/rotation_system.hpp"
#include "graph/graph.hpp"

namespace pr::topo {

/// The 6-node example network of the paper's Figure 1 (nodes labelled A-F).
[[nodiscard]] graph::Graph figure1();

/// The exact cellular embedding shown in Figure 1(a) (cycles c1-c4).
/// `g` must be the graph returned by figure1().
[[nodiscard]] embed::RotationSystem figure1_rotation(const graph::Graph& g);

/// Abilene (2004): 11 PoPs, 14 links, unit weights.
[[nodiscard]] graph::Graph abilene();

/// GEANT (2009-era approximation): 34 national nodes, 55 links, unit weights.
[[nodiscard]] graph::Graph geant();

/// Teleglobe / AS6453 (Rocketfuel-era approximation): 25 PoPs, 45 links,
/// unit weights.
[[nodiscard]] graph::Graph teleglobe();

/// Parameterised two-tier ISP for scaling studies (ablation A6): a backbone
/// ring of `core_size` PoPs thickened with non-crossing chords, plus
/// `access_pops` access PoPs, each dual-homed to two adjacent backbone nodes.
/// By construction the result is planar and 2-edge-connected at every size,
/// so PR's full guarantee applies and measurements isolate the effect of
/// scale.  Deterministic in `rng`.
[[nodiscard]] graph::Graph synthetic_isp(std::size_t core_size,
                                         std::size_t access_pops, graph::Rng& rng);

}  // namespace pr::topo
