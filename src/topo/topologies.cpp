#include "topo/topologies.hpp"

#include <stdexcept>
#include <string>

#include "graph/generators.hpp"

namespace pr::topo {

using graph::Graph;
using graph::NodeId;

namespace {

/// Adds an edge between two labelled nodes, creating nodes on first use.
void link(Graph& g, const char* a, const char* b, double w = 1.0) {
  const auto get = [&g](const char* label) -> NodeId {
    if (auto v = g.find_node(label)) return *v;
    return g.add_node(label);
  };
  g.add_edge(get(a), get(b), w);
}

}  // namespace

Graph figure1() {
  Graph g;
  for (const char* name : {"A", "B", "C", "D", "E", "F"}) g.add_node(name);
  // Weights are not printed in the paper; these reproduce its shortest-path
  // tree to F (A->B->D->E->F, C->E) with strict, tie-free shortest paths,
  // matching every hop of the worked scenarios in Sections 4.2/4.3.
  link(g, "A", "B", 1);
  link(g, "A", "C", 4);
  link(g, "B", "C", 2);
  link(g, "B", "D", 1);
  link(g, "C", "E", 1);
  link(g, "D", "E", 1);
  link(g, "D", "F", 4);
  link(g, "E", "F", 1);
  return g;
}

embed::RotationSystem figure1_rotation(const Graph& g) {
  const auto n = [&g](const char* label) -> NodeId {
    const auto v = g.find_node(label);
    if (!v.has_value()) {
      throw std::invalid_argument("figure1_rotation: expects the figure1() graph");
    }
    return *v;
  };
  const NodeId a = n("A");
  const NodeId b = n("B");
  const NodeId c = n("C");
  const NodeId d = n("D");
  const NodeId e = n("E");
  const NodeId f = n("F");
  // Derived from the paper's cycles: c1 = F>D>E>F, c2 = E>D>B>C>E,
  // c3 = B>A>C>B, c4 (outer) = A>B>D>F>E>C>A.
  return embed::RotationSystem::from_neighbor_orders(
      g, {/*A*/ {b, c},
          /*B*/ {a, d, c},
          /*C*/ {a, b, e},
          /*D*/ {b, f, e},
          /*E*/ {c, d, f},
          /*F*/ {d, e}});
}

Graph abilene() {
  Graph g;
  // The 2004 Abilene research backbone, PoP level, exact.
  link(g, "Seattle", "Sunnyvale");
  link(g, "Seattle", "Denver");
  link(g, "Sunnyvale", "LosAngeles");
  link(g, "Sunnyvale", "Denver");
  link(g, "LosAngeles", "Houston");
  link(g, "Denver", "KansasCity");
  link(g, "KansasCity", "Houston");
  link(g, "KansasCity", "Indianapolis");
  link(g, "Houston", "Atlanta");
  link(g, "Indianapolis", "Chicago");
  link(g, "Indianapolis", "Atlanta");
  link(g, "Chicago", "NewYork");
  link(g, "Atlanta", "Washington");
  link(g, "Washington", "NewYork");
  return g;
}

Graph geant() {
  Graph g;
  // Documented approximation of the 2009 GEANT2 backbone: a western core
  // (UK/FR/DE/NL/IT/CH/AT/ES) with every NREN at least dual-homed.
  // Austria
  link(g, "AT", "DE");
  link(g, "AT", "IT");
  link(g, "AT", "CZ");
  link(g, "AT", "SI");
  link(g, "AT", "HU");
  link(g, "AT", "SK");
  // Benelux
  link(g, "BE", "NL");
  link(g, "BE", "FR");
  link(g, "BE", "LU");
  link(g, "FR", "LU");
  link(g, "NL", "DE");
  link(g, "NL", "UK");
  // Balkans / south-east
  link(g, "BG", "RO");
  link(g, "BG", "GR");
  link(g, "BG", "HU");
  link(g, "RO", "HU");
  link(g, "RO", "TR");
  link(g, "TR", "GR");
  link(g, "HR", "SI");
  link(g, "HR", "HU");
  // Central
  link(g, "CH", "DE");
  link(g, "CH", "IT");
  link(g, "CH", "FR");
  link(g, "CZ", "DE");
  link(g, "CZ", "SK");
  link(g, "CZ", "PL");
  link(g, "HU", "SK");
  link(g, "PL", "DE");
  link(g, "PL", "LT");
  // East Mediterranean
  link(g, "CY", "GR");
  link(g, "CY", "IL");
  link(g, "IL", "IT");
  link(g, "GR", "IT");
  link(g, "MT", "IT");
  link(g, "MT", "GR");
  // Core west
  link(g, "DE", "FR");
  link(g, "DE", "DK");
  link(g, "DE", "RU");
  link(g, "FR", "UK");
  link(g, "FR", "ES");
  link(g, "ES", "PT");
  link(g, "ES", "IT");
  link(g, "PT", "UK");
  link(g, "IE", "UK");
  link(g, "IE", "FR");
  // Nordics / Baltics
  link(g, "DK", "SE");
  link(g, "DK", "NO");
  link(g, "DK", "IS");
  link(g, "IS", "NO");
  link(g, "NO", "SE");
  link(g, "SE", "FI");
  link(g, "FI", "EE");
  link(g, "FI", "RU");
  link(g, "EE", "LV");
  link(g, "LV", "LT");
  return g;
}

Graph teleglobe() {
  Graph g;
  // Documented approximation of the Rocketfuel AS6453 (Teleglobe) PoP map:
  // a global transit carrier with North American, European and Asian
  // clusters joined by transoceanic trunks.
  // North America
  link(g, "NewYork", "Newark");
  link(g, "NewYork", "Ashburn");
  link(g, "NewYork", "Montreal");
  link(g, "NewYork", "Chicago");
  link(g, "Newark", "Ashburn");
  link(g, "Newark", "Chicago");
  link(g, "Ashburn", "Atlanta");
  link(g, "Atlanta", "Miami");
  link(g, "Atlanta", "Dallas");
  link(g, "Miami", "Dallas");
  link(g, "Chicago", "Toronto");
  link(g, "Chicago", "Dallas");
  link(g, "Chicago", "Seattle");
  link(g, "Toronto", "Montreal");
  link(g, "Dallas", "LosAngeles");
  link(g, "LosAngeles", "PaloAlto");
  link(g, "PaloAlto", "Seattle");
  link(g, "PaloAlto", "Chicago");
  // Transatlantic
  link(g, "NewYork", "London");
  link(g, "Newark", "London");
  link(g, "Montreal", "Paris");
  link(g, "Ashburn", "Amsterdam");
  // Europe
  link(g, "London", "Paris");
  link(g, "London", "Amsterdam");
  link(g, "Paris", "Frankfurt");
  link(g, "Paris", "Marseille");
  link(g, "Amsterdam", "Frankfurt");
  link(g, "Frankfurt", "Marseille");
  link(g, "Madrid", "Marseille");
  link(g, "Madrid", "Paris");
  link(g, "Madrid", "London");
  // Middle East / Asia via Marseille and the Pacific
  link(g, "Marseille", "Mumbai");
  link(g, "Mumbai", "Chennai");
  link(g, "Chennai", "Singapore");
  link(g, "Mumbai", "Singapore");
  link(g, "Singapore", "HongKong");
  link(g, "HongKong", "Tokyo");
  link(g, "Tokyo", "Osaka");
  link(g, "Osaka", "HongKong");
  // Transpacific
  link(g, "Tokyo", "Seattle");
  link(g, "Tokyo", "PaloAlto");
  link(g, "HongKong", "LosAngeles");
  // Australia, dual-homed into Asia
  link(g, "Sydney", "Singapore");
  link(g, "Sydney", "HongKong");
  link(g, "Sydney", "LosAngeles");
  return g;
}

Graph synthetic_isp(std::size_t core_size, std::size_t access_pops, graph::Rng& rng) {
  if (core_size < 4) throw std::invalid_argument("synthetic_isp: need core_size >= 4");
  // Backbone: ring + non-crossing chords (outerplanar, hence planar), chord
  // budget roughly one per three core nodes.
  Graph g = graph::random_outerplanar(core_size, core_size / 3, rng);
  for (NodeId v = 0; v < core_size; ++v) {
    g.set_node_label(v, "core" + std::to_string(v));
  }
  // Access PoPs: dual-homed to two ADJACENT core nodes, which preserves
  // planarity (the new vertex sits inside a face bordered by that ring edge).
  for (std::size_t p = 0; p < access_pops; ++p) {
    const NodeId pop = g.add_node("pop" + std::to_string(p));
    const auto a = static_cast<NodeId>(rng.below(core_size));
    const auto b = static_cast<NodeId>((a + 1) % core_size);
    g.add_edge(pop, a);
    g.add_edge(pop, b);
  }
  return g;
}

}  // namespace pr::topo
