// Parameterized sweeps of the DSCP pool-2 header codec over every legal
// layout, and of the DMP planarity test over structured graph families.
#include <gtest/gtest.h>

#include "embed/faces.hpp"
#include "embed/planar.hpp"
#include "graph/generators.hpp"
#include "net/header_codec.hpp"

namespace pr {
namespace {

// ---- codec sweep over all pool-2 layouts ------------------------------------

class CodecLayoutSuite : public ::testing::TestWithParam<unsigned> {};

TEST_P(CodecLayoutSuite, EveryValueRoundTrips) {
  const net::PrHeaderLayout layout{GetParam()};
  ASSERT_TRUE(layout.fits_dscp_pool2());
  for (unsigned pr_bit = 0; pr_bit <= 1; ++pr_bit) {
    for (std::uint32_t dd = 0; dd <= layout.max_encodable_dd(); ++dd) {
      const auto code = net::encode_dscp(layout, pr_bit != 0, dd);
      EXPECT_EQ(code & 0b11u, 0b11u);
      EXPECT_LE(code, 0b111111u);
      const auto decoded = net::decode_dscp(layout, code);
      EXPECT_EQ(decoded.pr_bit, pr_bit != 0);
      EXPECT_EQ(decoded.dd, dd);
    }
  }
}

TEST_P(CodecLayoutSuite, DistinctInputsGetDistinctCodepoints) {
  const net::PrHeaderLayout layout{GetParam()};
  std::vector<std::uint8_t> seen;
  for (unsigned pr_bit = 0; pr_bit <= 1; ++pr_bit) {
    for (std::uint32_t dd = 0; dd <= layout.max_encodable_dd(); ++dd) {
      seen.push_back(net::encode_dscp(layout, pr_bit != 0, dd));
    }
  }
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(std::adjacent_find(seen.begin(), seen.end()), seen.end());
}

TEST_P(CodecLayoutSuite, OverflowRejected) {
  const net::PrHeaderLayout layout{GetParam()};
  EXPECT_THROW((void)net::encode_dscp(layout, false, layout.max_encodable_dd() + 1),
               std::invalid_argument);
}

INSTANTIATE_TEST_SUITE_P(DdBits, CodecLayoutSuite, ::testing::Values(0U, 1U, 2U, 3U));

// ---- DMP planarity over structured families ---------------------------------

class OuterplanarSuite : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OuterplanarSuite, AlwaysPlanarWithValidEmbedding) {
  graph::Rng rng(GetParam());
  const std::size_t n = 10 + rng.below(90);
  const auto g = graph::random_outerplanar(n, n / 2, rng);
  const auto result = embed::planar_embedding(g);
  ASSERT_TRUE(result.planar) << "outerplanar graphs are planar by construction";
  const auto faces = embed::trace_faces(*result.rotation);
  EXPECT_NO_THROW(embed::check_face_set(*result.rotation, faces));
  EXPECT_EQ(embed::euler_genus(g, faces), 0);
  EXPECT_TRUE(embed::pr_safe(g, faces));
}

INSTANTIATE_TEST_SUITE_P(Seeds, OuterplanarSuite, ::testing::Range<std::uint64_t>(0, 12));

namespace {

/// Subdivides every edge of `g` `cuts` times (inserting degree-2 nodes);
/// subdivision preserves (non-)planarity.
graph::Graph subdivide(const graph::Graph& g, std::size_t cuts) {
  graph::Graph out(g.node_count());
  for (graph::EdgeId e = 0; e < g.edge_count(); ++e) {
    graph::NodeId prev = g.edge_u(e);
    for (std::size_t i = 0; i < cuts; ++i) {
      const graph::NodeId mid = out.add_node();
      out.add_edge(prev, mid);
      prev = mid;
    }
    out.add_edge(prev, g.edge_v(e));
  }
  return out;
}

}  // namespace

class SubdivisionSuite : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SubdivisionSuite, KuratowskiSubdivisionsStayNonPlanar) {
  const std::size_t cuts = GetParam();
  EXPECT_FALSE(embed::is_planar(subdivide(graph::k5(), cuts)));
  EXPECT_FALSE(embed::is_planar(subdivide(graph::k33(), cuts)));
}

TEST_P(SubdivisionSuite, PlanarSubdivisionsStayPlanar) {
  const std::size_t cuts = GetParam();
  EXPECT_TRUE(embed::is_planar(subdivide(graph::complete(4), cuts)));
  EXPECT_TRUE(embed::is_planar(subdivide(graph::grid(3, 3), cuts)));
}

INSTANTIATE_TEST_SUITE_P(Cuts, SubdivisionSuite, ::testing::Values(1U, 2U, 5U));

TEST(PlanarFamilies, WheelsArePlanarAndMaximal) {
  // Wheel W_n: a hub joined to every node of an n-ring.  Planar for all n;
  // the embedding has exactly n + 1 faces (n triangles + the outer face).
  for (std::size_t n = 3; n <= 12; ++n) {
    graph::Graph g = graph::ring(n);
    const auto hub = g.add_node();
    for (graph::NodeId v = 0; v < n; ++v) g.add_edge(hub, v);
    const auto result = embed::planar_embedding(g);
    ASSERT_TRUE(result.planar) << "W_" << n;
    const auto faces = embed::trace_faces(*result.rotation);
    EXPECT_EQ(faces.face_count(), n + 1) << "W_" << n;
  }
}

TEST(PlanarFamilies, NestedRingsArePlanar) {
  // Pruefer-style torture: k concentric rings, consecutive rings joined by
  // spokes (a planar "onion").
  const std::size_t rings = 5;
  const std::size_t width = 6;
  graph::Graph g(rings * width);
  for (std::size_t r = 0; r < rings; ++r) {
    for (std::size_t c = 0; c < width; ++c) {
      const auto id = static_cast<graph::NodeId>(r * width + c);
      const auto right = static_cast<graph::NodeId>(r * width + (c + 1) % width);
      g.add_edge(id, right);
      if (r + 1 < rings) {
        g.add_edge(id, static_cast<graph::NodeId>((r + 1) * width + c));
      }
    }
  }
  const auto result = embed::planar_embedding(g);
  ASSERT_TRUE(result.planar);
  EXPECT_EQ(embed::genus_of(*result.rotation), 0);
}

}  // namespace
}  // namespace pr
