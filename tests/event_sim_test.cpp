// Unit tests for the discrete-event engine, packet flights, and failure
// processes (including the Section-7 flap damper).
#include "net/event_sim.hpp"

#include <gtest/gtest.h>

#include "graph/connectivity.hpp"
#include "graph/generators.hpp"
#include "net/failure_model.hpp"
#include "route/routing_db.hpp"
#include "route/static_spf.hpp"

namespace pr::net {
namespace {

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.at(3.0, [&] { order.push_back(3); });
  sim.at(1.0, [&] { order.push_back(1); });
  sim.at(2.0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
  EXPECT_EQ(sim.events_processed(), 3U);
}

TEST(Simulator, EqualTimesRunFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.at(1.0, [&order, i] { order.push_back(i); });
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, EventsMayScheduleEvents) {
  Simulator sim;
  int fired = 0;
  sim.at(1.0, [&] {
    ++fired;
    sim.after(1.0, [&] { ++fired; });
  });
  sim.run();
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
}

TEST(Simulator, RunUntilLimitStopsEarly) {
  Simulator sim;
  int fired = 0;
  sim.at(1.0, [&] { ++fired; });
  sim.at(5.0, [&] { ++fired; });
  sim.run(2.0);
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(sim.idle());
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, RejectsPastScheduling) {
  Simulator sim;
  sim.at(2.0, [] {});
  sim.run();
  EXPECT_THROW(sim.at(1.0, [] {}), std::invalid_argument);
  EXPECT_THROW(sim.after(-1.0, [] {}), std::invalid_argument);
}

TEST(LaunchPacket, DeliveryTimingAccountsForDelays) {
  graph::Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  Network net(g);
  net.set_processing_delay(0.0);
  net.set_link_delay(0, 0.5);
  net.set_link_delay(1, 0.25);
  const route::RoutingDb routes(g);
  route::StaticSpf spf(routes);

  Simulator sim;
  bool done = false;
  SimTime arrival = 0;
  launch_packet(sim, net, spf, 0, 2, /*start=*/1.0, [&](const PathTrace& trace) {
    done = true;
    arrival = sim.now();
    EXPECT_TRUE(trace.delivered());
    EXPECT_EQ(trace.hops, 2U);
  });
  sim.run();
  ASSERT_TRUE(done);
  EXPECT_DOUBLE_EQ(arrival, 1.0 + 0.5 + 0.25);
}

TEST(LaunchPacket, MidFlightFailureDropsSpfPacket) {
  graph::Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  Network net(g);
  const route::RoutingDb routes(g);
  route::StaticSpf spf(routes);

  Simulator sim;
  // Fail the second link while the packet is crossing the first one.
  sim.at(1.0005, [&] { net.fail_link(1); });
  bool done = false;
  launch_packet(sim, net, spf, 0, 2, 1.0, [&](const PathTrace& trace) {
    done = true;
    EXPECT_FALSE(trace.delivered());
    EXPECT_EQ(trace.drop_reason, DropReason::kNoRoute);
  });
  sim.run();
  EXPECT_TRUE(done);
}

TEST(FailureScenarios, AllSingleFailuresEnumerated) {
  const auto g = graph::ring(5);
  const auto scenarios = all_single_failures(g);
  ASSERT_EQ(scenarios.size(), g.edge_count());
  for (graph::EdgeId e = 0; e < g.edge_count(); ++e) {
    EXPECT_EQ(scenarios[e].size(), 1U);
    EXPECT_TRUE(scenarios[e].contains(e));
  }
}

TEST(FailureScenarios, SampledConnectedFailuresKeepConnectivity) {
  graph::Rng rng(9);
  const auto g = graph::random_two_edge_connected(10, 8, rng);
  const auto scenarios = sample_connected_failures(g, 3, 25, rng);
  ASSERT_EQ(scenarios.size(), 25U);
  for (const auto& s : scenarios) {
    EXPECT_EQ(s.size(), 3U);
    EXPECT_TRUE(graph::is_connected(g, &s));
  }
}

TEST(FailureScenarios, ImpossibleRequestThrows) {
  graph::Rng rng(10);
  const auto g = graph::ring(4);  // removing any 2 ring edges disconnects
  EXPECT_THROW((void)sample_connected_failures(g, 2, 1, rng, 200),
               std::invalid_argument);
  EXPECT_THROW((void)sample_connected_failures(g, 99, 1, rng), std::invalid_argument);
}

TEST(FailureScenarios, EnumerateCountsMatchBinomials) {
  const auto g = graph::ring(5);  // 5 edges
  EXPECT_EQ(enumerate_failures(g, 0).size(), 1U);
  EXPECT_EQ(enumerate_failures(g, 1).size(), 5U);
  EXPECT_EQ(enumerate_failures(g, 2).size(), 10U);
  EXPECT_EQ(enumerate_failures(g, 3).size(), 10U);
  EXPECT_EQ(enumerate_failures(g, 5).size(), 1U);
  EXPECT_EQ(enumerate_failures(g, 6).size(), 0U);
}

TEST(FailureScenarios, EnumerateSetsAreDistinctAndSized) {
  const auto g = graph::complete(5);  // 10 edges
  const auto all = enumerate_failures(g, 2);
  ASSERT_EQ(all.size(), 45U);
  for (const auto& s : all) EXPECT_EQ(s.size(), 2U);
}

TEST(FlapDamper, RestoreDelayedByHoldDown) {
  const auto g = graph::ring(3);
  Network net(g);
  Simulator sim;
  FlapDamper damper(sim, net, /*hold_down=*/5.0);

  sim.at(1.0, [&] { damper.fail(0); });
  sim.at(2.0, [&] { damper.request_restore(0); });
  sim.at(6.0, [&] { EXPECT_FALSE(net.link_up(0)); });  // still inside hold-down
  sim.run();
  EXPECT_TRUE(net.link_up(0));  // restored at t=7
  EXPECT_DOUBLE_EQ(sim.now(), 7.0);
}

TEST(FlapDamper, FlappingSuppressesRestore) {
  const auto g = graph::ring(3);
  Network net(g);
  Simulator sim;
  FlapDamper damper(sim, net, 5.0);

  sim.at(1.0, [&] { damper.fail(0); });
  sim.at(2.0, [&] { damper.request_restore(0); });
  sim.at(3.0, [&] { damper.fail(0); });  // flap: cancels the pending restore
  sim.run(100.0);
  EXPECT_FALSE(net.link_up(0));  // never restored
}

TEST(FlapDamper, SecondRestoreWindowWins) {
  const auto g = graph::ring(3);
  Network net(g);
  Simulator sim;
  FlapDamper damper(sim, net, 5.0);

  sim.at(1.0, [&] { damper.fail(0); });
  sim.at(2.0, [&] { damper.request_restore(0); });
  sim.at(3.0, [&] { damper.fail(0); });
  sim.at(4.0, [&] { damper.request_restore(0); });
  sim.run();
  EXPECT_TRUE(net.link_up(0));
  EXPECT_DOUBLE_EQ(sim.now(), 9.0);  // 4.0 + hold_down
}

TEST(FlapDamper, NegativeHoldDownRejected) {
  const auto g = graph::ring(3);
  Network net(g);
  Simulator sim;
  EXPECT_THROW(FlapDamper(sim, net, -1.0), std::invalid_argument);
}

}  // namespace
}  // namespace pr::net
