// Backbone-scale memory/tractability assertions: a 4k-router hierarchical
// ISP must support a cached single-link sweep and an event-sim convergence
// episode under hard memory ceilings -- the O(n^2)+damage regime the batched
// repair drive and the COW overlays exist for.  Excluded from the TSan CI
// regex (single-threaded, and sized for the Release / ASan tiers).
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/rng.hpp"
#include "net/event_sim.hpp"
#include "net/failure_model.hpp"
#include "route/igp.hpp"
#include "route/routing_db.hpp"
#include "route/scenario_cache.hpp"

namespace pr {
namespace {

using graph::EdgeSet;
using graph::Graph;
using graph::NodeId;
using route::RoutingDb;

/// Full 4k only on optimised builds; the Debug/sanitizer CI tiers run the
/// same assertions at 1k so the 300 s ctest timeout holds at -O0.
constexpr std::size_t kScaleNodes =
#ifdef NDEBUG
    4096;
#else
    1024;
#endif

TEST(BackboneScale, CachedSingleLinkSweepUnderMemoryCeiling) {
  graph::Rng rng(0x5CA1E);
  const graph::IspTopology isp =
      graph::hierarchical_isp(graph::sized_isp_params(kScaleNodes), rng);
  const Graph& g = isp.graph;
  const std::size_t n = g.node_count();
  ASSERT_GE(n, kScaleNodes * 8 / 10);

  route::ScenarioRoutingCache cache;
  EdgeSet failures(g.edge_count());
  std::uint64_t probe = 0;
  for (std::size_t i = 0; i < 24; ++i) {
    failures.clear();
    failures.insert(static_cast<graph::EdgeId>(rng.below(g.edge_count())));
    const RoutingDb& db = cache.tables(g, failures);
    // Touch a few rows so the sweep is not optimised away.
    probe += db.hops(static_cast<NodeId>(i % n), static_cast<NodeId>((i * 7) % n));
    // Live columns + pristine snapshot + rebuild indices all scale as n^2
    // with small constants; 60 B/entry is ~35% headroom over the measured
    // footprint.  The former per-scenario fresh-build path held TWO full
    // table sets at peak and the event-sim held n of them.
    EXPECT_LT(db.bytes(), 60U * n * n);
  }
  EXPECT_GT(probe, 0U);

  // One scratch-oracle spot check at scale: sampled rows, exact equality.
  failures.clear();
  failures.insert(0);
  const RoutingDb& repaired = cache.tables(g, failures);
  const RoutingDb fresh(g, &failures);
  for (NodeId at = 0; at < n; at += 97) {
    for (NodeId dest = 0; dest < n; dest += 101) {
      ASSERT_EQ(repaired.next_dart(at, dest), fresh.next_dart(at, dest));
      ASSERT_EQ(repaired.cost(at, dest), fresh.cost(at, dest));
    }
  }
}

TEST(BackboneScale, IgpConvergesWithCowOverlaysUnderMemoryCeiling) {
  graph::Rng rng(0xC0DE);
  const graph::IspTopology isp =
      graph::hierarchical_isp(graph::sized_isp_params(kScaleNodes), rng);
  Graph g = isp.graph;  // the fixture owns its copy
  const std::size_t n = g.node_count();

  net::Network network(g);
  net::Simulator sim;
  route::LinkStateIgp igp(sim, network);

  const graph::EdgeId victim = 0;  // a core ring link: every tier reroutes
  sim.at(0.0, [&] {
    network.fail_link(victim);
    igp.on_link_failure(victim);
  });
  sim.run();
  ASSERT_TRUE(igp.fully_converged());
  EXPECT_GT(igp.spf_runs(), 0U);

  // The whole point: n routers' worth of state in O(one shared db) + sparse
  // overlays.  The naive design this replaced held n full (next, dist, hops)
  // column sets -- 16 B * n^2 PER ROUTER.
  const std::size_t naive_copies = n * (n * n * 16);
  const std::size_t cow = igp.table_bytes();
  EXPECT_GT(cow, 0U);
  EXPECT_LT(cow, naive_copies / 50);
  EXPECT_LT(cow, 80U * n * n);  // absolute: ~1.3 GB at 4k, ~84 MB at 1k
}

}  // namespace
}  // namespace pr
