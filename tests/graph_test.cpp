// Unit tests for the core multigraph and dart machinery.
#include "graph/graph.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace pr::graph {
namespace {

TEST(DartHelpers, RoundTrip) {
  const EdgeId e = 7;
  const DartId fwd = make_dart(e, 0);
  const DartId rev = make_dart(e, 1);
  EXPECT_EQ(fwd, 14U);
  EXPECT_EQ(rev, 15U);
  EXPECT_EQ(reverse(fwd), rev);
  EXPECT_EQ(reverse(rev), fwd);
  EXPECT_EQ(dart_edge(fwd), e);
  EXPECT_EQ(dart_edge(rev), e);
  EXPECT_EQ(dart_side(fwd), 0U);
  EXPECT_EQ(dart_side(rev), 1U);
}

TEST(DartHelpers, ReverseIsInvolution) {
  for (DartId d = 0; d < 100; ++d) {
    EXPECT_EQ(reverse(reverse(d)), d);
    EXPECT_NE(reverse(d), d);
  }
}

TEST(Graph, EmptyGraph) {
  Graph g;
  EXPECT_EQ(g.node_count(), 0U);
  EXPECT_EQ(g.edge_count(), 0U);
  EXPECT_EQ(g.dart_count(), 0U);
  g.check_invariants();
}

TEST(Graph, PreallocatedNodes) {
  Graph g(4);
  EXPECT_EQ(g.node_count(), 4U);
  for (NodeId v = 0; v < 4; ++v) {
    EXPECT_TRUE(g.node_label(v).empty());
    EXPECT_EQ(g.degree(v), 0U);
  }
}

TEST(Graph, AddNodesAndLabels) {
  Graph g;
  const NodeId a = g.add_node("A");
  const NodeId b = g.add_node("B");
  const NodeId c = g.add_node();
  EXPECT_EQ(a, 0U);
  EXPECT_EQ(b, 1U);
  EXPECT_EQ(g.node_label(a), "A");
  EXPECT_EQ(g.display_name(c), "n2");
  EXPECT_EQ(g.find_node("B"), std::optional<NodeId>(b));
  EXPECT_FALSE(g.find_node("Z").has_value());
  EXPECT_FALSE(g.find_node("").has_value());
}

TEST(Graph, DuplicateLabelRejected) {
  Graph g;
  g.add_node("A");
  EXPECT_THROW(g.add_node("A"), std::invalid_argument);
}

TEST(Graph, SetNodeLabel) {
  Graph g(2);
  g.set_node_label(0, "x");
  EXPECT_EQ(g.node_label(0), "x");
  g.set_node_label(0, "x");  // relabelling with own label is fine
  EXPECT_THROW(g.set_node_label(1, "x"), std::invalid_argument);
}

TEST(Graph, AddEdgeBasics) {
  Graph g(3);
  const EdgeId e = g.add_edge(0, 1, 2.5);
  EXPECT_EQ(g.edge_count(), 1U);
  EXPECT_EQ(g.edge_u(e), 0U);
  EXPECT_EQ(g.edge_v(e), 1U);
  EXPECT_DOUBLE_EQ(g.edge_weight(e), 2.5);
  EXPECT_EQ(g.degree(0), 1U);
  EXPECT_EQ(g.degree(1), 1U);
  EXPECT_EQ(g.degree(2), 0U);
  g.check_invariants();
}

TEST(Graph, EdgeValidation) {
  Graph g(2);
  EXPECT_THROW(g.add_edge(0, 0), std::invalid_argument);   // self loop
  EXPECT_THROW(g.add_edge(0, 5), std::out_of_range);       // bad endpoint
  EXPECT_THROW(g.add_edge(0, 1, 0.0), std::invalid_argument);
  EXPECT_THROW(g.add_edge(0, 1, -1.0), std::invalid_argument);
}

TEST(Graph, SetEdgeWeight) {
  Graph g(2);
  const EdgeId e = g.add_edge(0, 1);
  g.set_edge_weight(e, 9.0);
  EXPECT_DOUBLE_EQ(g.edge_weight(e), 9.0);
  EXPECT_THROW(g.set_edge_weight(e, 0.0), std::invalid_argument);
}

TEST(Graph, DartEndpoints) {
  Graph g(3);
  const EdgeId e = g.add_edge(1, 2);
  const DartId fwd = make_dart(e, 0);
  EXPECT_EQ(g.dart_tail(fwd), 1U);
  EXPECT_EQ(g.dart_head(fwd), 2U);
  EXPECT_EQ(g.dart_tail(reverse(fwd)), 2U);
  EXPECT_EQ(g.dart_head(reverse(fwd)), 1U);
}

TEST(Graph, DartFrom) {
  Graph g(3);
  const EdgeId e = g.add_edge(1, 2);
  EXPECT_EQ(g.dart_from(1, e), make_dart(e, 0));
  EXPECT_EQ(g.dart_from(2, e), make_dart(e, 1));
  EXPECT_THROW((void)g.dart_from(0, e), std::invalid_argument);
}

TEST(Graph, OutDartsOrderAndOwnership) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(3, 0);
  const auto outs = g.out_darts(0);
  ASSERT_EQ(outs.size(), 3U);
  EXPECT_EQ(g.dart_head(outs[0]), 1U);
  EXPECT_EQ(g.dart_head(outs[1]), 2U);
  EXPECT_EQ(g.dart_head(outs[2]), 3U);
  for (DartId d : outs) EXPECT_EQ(g.dart_tail(d), 0U);
}

TEST(Graph, FindEdgeAndDart) {
  Graph g(3);
  const EdgeId e = g.add_edge(0, 1);
  EXPECT_EQ(g.find_edge(0, 1), std::optional<EdgeId>(e));
  EXPECT_EQ(g.find_edge(1, 0), std::optional<EdgeId>(e));
  EXPECT_FALSE(g.find_edge(0, 2).has_value());
  EXPECT_EQ(g.find_dart(0, 1), std::optional<DartId>(make_dart(e, 0)));
  EXPECT_EQ(g.find_dart(1, 0), std::optional<DartId>(make_dart(e, 1)));
  EXPECT_FALSE(g.find_dart(2, 0).has_value());
}

TEST(Graph, ParallelEdgesSupported) {
  Graph g(2);
  const EdgeId e1 = g.add_edge(0, 1);
  const EdgeId e2 = g.add_edge(0, 1);
  EXPECT_NE(e1, e2);
  EXPECT_EQ(g.degree(0), 2U);
  EXPECT_EQ(g.degree(1), 2U);
  g.check_invariants();
}

TEST(Graph, DartNameUsesLabels) {
  Graph g;
  g.add_node("A");
  g.add_node("B");
  const EdgeId e = g.add_edge(0, 1);
  EXPECT_EQ(g.dart_name(make_dart(e, 0)), "A->B");
  EXPECT_EQ(g.dart_name(make_dart(e, 1)), "B->A");
}

TEST(Graph, TotalWeight) {
  Graph g(3);
  g.add_edge(0, 1, 1.5);
  g.add_edge(1, 2, 2.5);
  EXPECT_DOUBLE_EQ(g.total_weight(), 4.0);
}

TEST(EdgeSet, InsertEraseContains) {
  EdgeSet s(5);
  EXPECT_TRUE(s.empty());
  s.insert(3);
  s.insert(1);
  s.insert(3);  // duplicate ignored
  EXPECT_EQ(s.size(), 2U);
  EXPECT_TRUE(s.contains(3));
  EXPECT_TRUE(s.contains(1));
  EXPECT_FALSE(s.contains(0));
  s.erase(3);
  EXPECT_FALSE(s.contains(3));
  EXPECT_EQ(s.size(), 1U);
  s.erase(3);  // erase of absent member is a no-op
  EXPECT_EQ(s.size(), 1U);
}

TEST(EdgeSet, OutOfRangeInsertThrows) {
  EdgeSet s(2);
  EXPECT_THROW(s.insert(2), std::out_of_range);
  EXPECT_FALSE(s.contains(99));  // contains is total
}

TEST(EdgeSet, ElementsPreserveInsertionOrder) {
  EdgeSet s(10);
  s.insert(7);
  s.insert(2);
  s.insert(5);
  const auto elems = s.elements();
  ASSERT_EQ(elems.size(), 3U);
  EXPECT_EQ(elems[0], 7U);
  EXPECT_EQ(elems[1], 2U);
  EXPECT_EQ(elems[2], 5U);
}

TEST(EdgeSet, Clear) {
  EdgeSet s(4);
  s.insert(0);
  s.insert(3);
  s.clear();
  EXPECT_TRUE(s.empty());
  EXPECT_FALSE(s.contains(0));
  s.insert(0);  // reusable after clear
  EXPECT_TRUE(s.contains(0));
}

}  // namespace
}  // namespace pr::graph
