// Unit + property tests for the synthetic graph generators.
#include "graph/generators.hpp"

#include <gtest/gtest.h>

#include "graph/connectivity.hpp"

namespace pr::graph {
namespace {

TEST(Ring, Shape) {
  const Graph g = ring(6);
  EXPECT_EQ(g.node_count(), 6U);
  EXPECT_EQ(g.edge_count(), 6U);
  for (NodeId v = 0; v < 6; ++v) EXPECT_EQ(g.degree(v), 2U);
  EXPECT_TRUE(is_two_edge_connected(g));
  EXPECT_THROW(ring(2), std::invalid_argument);
}

TEST(Complete, Shape) {
  const Graph g = complete(5);
  EXPECT_EQ(g.edge_count(), 10U);
  for (NodeId v = 0; v < 5; ++v) EXPECT_EQ(g.degree(v), 4U);
}

TEST(Grid, Shape) {
  const Graph g = grid(3, 4);
  EXPECT_EQ(g.node_count(), 12U);
  EXPECT_EQ(g.edge_count(), 3U * 3U + 2U * 4U);  // horizontal + vertical
  EXPECT_TRUE(is_connected(g));
  EXPECT_FALSE(is_two_edge_connected(Graph{grid(2, 2)}) == false)
      << "2x2 grid is a 4-ring and must be 2-edge-connected";
}

TEST(Torus, Shape) {
  const Graph g = torus(3, 4);
  EXPECT_EQ(g.node_count(), 12U);
  EXPECT_EQ(g.edge_count(), 24U);  // 4-regular
  for (NodeId v = 0; v < 12; ++v) EXPECT_EQ(g.degree(v), 4U);
  EXPECT_TRUE(is_two_edge_connected(g));
  EXPECT_THROW(torus(2, 4), std::invalid_argument);
}

TEST(ErdosRenyi, EdgeCountWithinBounds) {
  Rng rng(1);
  const Graph g = erdos_renyi(30, 0.2, rng);
  EXPECT_EQ(g.node_count(), 30U);
  EXPECT_LE(g.edge_count(), 30U * 29U / 2U);
  EXPECT_THROW(erdos_renyi(30, 1.5, rng), std::invalid_argument);
}

TEST(ErdosRenyi, ExtremeProbabilities) {
  Rng rng(2);
  EXPECT_EQ(erdos_renyi(10, 0.0, rng).edge_count(), 0U);
  EXPECT_EQ(erdos_renyi(10, 1.0, rng).edge_count(), 45U);
}

TEST(Waxman, ProducesSimpleGraph) {
  Rng rng(3);
  const Graph g = waxman(40, 0.8, 0.3, rng);
  g.check_invariants();
  for (EdgeId e = 0; e < g.edge_count(); ++e) EXPECT_NE(g.edge_u(e), g.edge_v(e));
}

TEST(RandomTwoEdgeConnected, AlwaysTwoEdgeConnected) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    Rng rng(seed);
    const Graph g = random_two_edge_connected(12, 6, rng);
    EXPECT_EQ(g.node_count(), 12U);
    EXPECT_EQ(g.edge_count(), 18U);
    EXPECT_TRUE(is_two_edge_connected(g)) << "seed " << seed;
    g.check_invariants();
  }
}

TEST(RandomTwoEdgeConnected, RejectsOverfullChordCount) {
  Rng rng(4);
  EXPECT_THROW(random_two_edge_connected(5, 100, rng), std::invalid_argument);
}

TEST(Petersen, Shape) {
  const Graph g = petersen();
  EXPECT_EQ(g.node_count(), 10U);
  EXPECT_EQ(g.edge_count(), 15U);
  for (NodeId v = 0; v < 10; ++v) EXPECT_EQ(g.degree(v), 3U);
  EXPECT_TRUE(is_two_edge_connected(g));
}

TEST(Kuratowski, Shapes) {
  EXPECT_EQ(k5().edge_count(), 10U);
  const Graph g = k33();
  EXPECT_EQ(g.edge_count(), 9U);
  for (NodeId v = 0; v < 6; ++v) EXPECT_EQ(g.degree(v), 3U);
}

TEST(Rng, Determinism) {
  Rng a(99);
  Rng b(99);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.below(1000), b.below(1000));
}

}  // namespace
}  // namespace pr::graph
