// Tests for Section-7 deployment features: traffic-class-scoped PR and
// shared-risk link groups.
#include <gtest/gtest.h>

#include "analysis/coverage.hpp"
#include "analysis/protocols.hpp"
#include "core/policy.hpp"
#include "graph/connectivity.hpp"
#include "graph/generators.hpp"
#include "net/failure_model.hpp"
#include "topo/topologies.hpp"

namespace pr::core {
namespace {

using graph::NodeId;

TEST(TrafficClassPolicy, ProtectAndUnprotect) {
  TrafficClassPolicy policy{5, 6};
  EXPECT_TRUE(policy.protects(5));
  EXPECT_TRUE(policy.protects(6));
  EXPECT_FALSE(policy.protects(0));
  EXPECT_EQ(policy.protected_count(), 2U);
  policy.unprotect(5);
  EXPECT_FALSE(policy.protects(5));
  policy.protect(0);
  EXPECT_TRUE(policy.protects(0));
}

TEST(TrafficClassPolicy, AllCoversEveryClass) {
  const auto policy = TrafficClassPolicy::all();
  for (std::uint8_t c = 0; c < kTrafficClasses; ++c) EXPECT_TRUE(policy.protects(c));
  EXPECT_EQ(policy.protected_count(), kTrafficClasses);
}

TEST(TrafficClassPolicy, OutOfRangeClassRejected) {
  TrafficClassPolicy policy;
  EXPECT_THROW(policy.protect(8), std::invalid_argument);
  EXPECT_THROW((void)policy.protects(200), std::invalid_argument);
}

class PolicyGating : public ::testing::Test {
 protected:
  PolicyGating()
      : g_(topo::abilene()),
        suite_(g_),
        gated_(suite_.routes(), suite_.cycle_table(), TrafficClassPolicy{5}) {}

  graph::Graph g_;
  analysis::ProtocolSuite suite_;
  PolicyGatedRecycling gated_;
};

TEST_F(PolicyGating, ProtectedClassGetsRepair) {
  net::Network network(g_);
  const auto denver = *g_.find_node("Denver");
  const auto kc = *g_.find_node("KansasCity");
  network.fail_link(*g_.find_edge(denver, kc));
  const auto trace =
      net::route_packet(network, gated_, denver, kc, 0, /*traffic_class=*/5);
  EXPECT_TRUE(trace.delivered());
}

TEST_F(PolicyGating, BestEffortClassIsDroppedAtFailure) {
  net::Network network(g_);
  const auto denver = *g_.find_node("Denver");
  const auto kc = *g_.find_node("KansasCity");
  network.fail_link(*g_.find_edge(denver, kc));
  const auto trace =
      net::route_packet(network, gated_, denver, kc, 0, /*traffic_class=*/0);
  EXPECT_FALSE(trace.delivered());
  EXPECT_EQ(trace.drop_reason, net::DropReason::kNoRoute);
}

TEST_F(PolicyGating, BothClassesForwardNormallyWithoutFailures) {
  net::Network network(g_);
  for (std::uint8_t cls : {0, 5}) {
    const auto trace = net::route_packet(network, gated_, 0, 6, 0, cls);
    ASSERT_TRUE(trace.delivered());
    EXPECT_DOUBLE_EQ(trace.cost, suite_.routes().cost(0, 6));
  }
}

TEST_F(PolicyGating, ProtectedTrafficNeverMarkedOffPath) {
  // Unprotected packets must never leave with a PR mark.
  net::Network network(g_);
  network.fail_link(0);
  for (NodeId s = 0; s < g_.node_count(); ++s) {
    for (NodeId t = 0; t < g_.node_count(); ++t) {
      if (s == t) continue;
      const auto trace = net::route_packet(network, gated_, s, t, 0, 0);
      EXPECT_FALSE(trace.final_packet.pr_bit);
    }
  }
}

TEST(Srlg, AddAndQueryGroups) {
  const auto g = topo::abilene();
  net::SrlgCatalog catalog(g);
  const auto id = catalog.add_group({0, 1, 2});
  EXPECT_EQ(id, 0U);
  EXPECT_EQ(catalog.group_count(), 1U);
  EXPECT_EQ(catalog.members(0).size(), 3U);
  const auto scenario = catalog.scenario(0);
  EXPECT_TRUE(scenario.contains(0));
  EXPECT_TRUE(scenario.contains(2));
  EXPECT_FALSE(scenario.contains(3));
}

TEST(Srlg, Validation) {
  const auto g = topo::abilene();
  net::SrlgCatalog catalog(g);
  EXPECT_THROW((void)catalog.add_group({}), std::invalid_argument);
  EXPECT_THROW((void)catalog.add_group({0, 0}), std::invalid_argument);
  EXPECT_THROW((void)catalog.add_group({999}), std::out_of_range);
}

TEST(Srlg, FailAndRestoreGroup) {
  const auto g = topo::abilene();
  net::SrlgCatalog catalog(g);
  catalog.add_group({1, 3, 5});
  net::Network network(g);
  catalog.fail_group(network, 0);
  EXPECT_FALSE(network.link_up(1));
  EXPECT_FALSE(network.link_up(3));
  EXPECT_FALSE(network.link_up(5));
  EXPECT_TRUE(network.link_up(0));
  catalog.restore_group(network, 0);
  EXPECT_EQ(network.failure_count(), 0U);
}

TEST(Srlg, DisconnectingGroupsDetected) {
  const auto g = graph::ring(4);
  net::SrlgCatalog catalog(g);
  catalog.add_group({0});          // single ring edge: survivable
  catalog.add_group({0, 2});       // opposite edges: partitions the ring
  const auto risky = catalog.disconnecting_groups();
  ASSERT_EQ(risky.size(), 1U);
  EXPECT_EQ(risky[0], 1U);
}

TEST(Srlg, RandomCatalogShapes) {
  const auto g = topo::geant();
  graph::Rng rng(55);
  const auto catalog = net::random_srlgs(g, 12, 4, rng);
  EXPECT_EQ(catalog.group_count(), 12U);
  for (std::size_t i = 0; i < catalog.group_count(); ++i) {
    EXPECT_GE(catalog.members(i).size(), 1U);
    EXPECT_LE(catalog.members(i).size(), 4U);
  }
}

TEST(Srlg, PrSurvivesAllNonDisconnectingGroupsOnGeant) {
  // The SRLG version of the paper's guarantee: correlated failures are just
  // failure combinations, so PR must deliver whenever the group loss keeps
  // the graph connected (GEANT is planar -> unconditional guarantee).
  const auto g = topo::geant();
  const analysis::ProtocolSuite suite(g);
  graph::Rng rng(56);
  const auto catalog = net::random_srlgs(g, 20, 4, rng);

  std::vector<graph::EdgeSet> scenarios;
  for (std::size_t i = 0; i < catalog.group_count(); ++i) {
    auto scenario = catalog.scenario(i);
    if (graph::is_connected(g, &scenario)) scenarios.push_back(std::move(scenario));
  }
  ASSERT_GE(scenarios.size(), 10U);

  const auto result = analysis::run_coverage_experiment(g, scenarios, {suite.pr()});
  EXPECT_EQ(result.protocols[0].dropped_reachable, 0U);
  EXPECT_DOUBLE_EQ(result.protocols[0].coverage(), 1.0);
}

}  // namespace
}  // namespace pr::core
