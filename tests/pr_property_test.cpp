// Property suites for Packet Re-cycling's central guarantees:
//
//  P1  single link failure in a 2-edge-connected network => delivery, for any
//      PR-safe embedding (every link separating two distinct cells);
//  P2  any failure combination with source and destination still connected
//      => delivery under the DD variant, verified exhaustively on small
//      graphs and by sampling on larger ones;
//  P3  the guarantee needs embedding quality, not low genus per se: PR-safe
//      random rotations work, self-paired ones provably strand packets
//      (reproduction finding, DESIGN.md section 8);
//  P4  measured stretch is always >= 1 and equals 1 on unaffected pairs.
#include <gtest/gtest.h>

#include <tuple>

#include "core/pr_protocol.hpp"
#include "embed/embedder.hpp"
#include "graph/connectivity.hpp"
#include "graph/generators.hpp"
#include "net/failure_model.hpp"
#include "route/fcp.hpp"
#include "topo/topologies.hpp"

namespace pr::core {
namespace {

using graph::EdgeSet;
using graph::Graph;
using graph::NodeId;

struct Fixture {
  Fixture(Graph graph, embed::EmbedOptions opts)
      : g(std::move(graph)),
        emb(embed::embed(g, opts)),
        routes(g),
        cycles(emb.rotation),
        pr(routes, cycles),
        pr1(routes, cycles, PrVariant::kSingleBit) {}

  Fixture(Graph graph, embed::RotationSystem rotation_for_copy)
      : g(std::move(graph)),
        emb(remake_embedding(g, rotation_for_copy)),
        routes(g),
        cycles(emb.rotation),
        pr(routes, cycles),
        pr1(routes, cycles, PrVariant::kSingleBit) {}

  static embed::Embedding remake_embedding(const Graph& g,
                                           const embed::RotationSystem& proto) {
    // Rebuild the rotation against the fixture's own graph instance.
    std::vector<std::vector<graph::DartId>> orders;
    orders.reserve(g.node_count());
    for (NodeId v = 0; v < g.node_count(); ++v) {
      const auto span = proto.order_at(v);
      orders.emplace_back(span.begin(), span.end());
    }
    auto rot = embed::RotationSystem::from_orders(g, std::move(orders));
    auto faces = embed::trace_faces(rot);
    const int genus = embed::euler_genus(g, faces);
    return embed::Embedding{std::move(rot), std::move(faces), genus,
                            embed::EmbedStrategy::kAuto};
  }

  Graph g;
  embed::Embedding emb;
  route::RoutingDb routes;
  CycleFollowingTable cycles;
  PacketRecycling pr;
  PacketRecycling pr1;
};

void expect_full_recovery(Fixture& fx, const EdgeSet& failures, PacketRecycling& proto,
                          const char* context) {
  net::Network network(fx.g);
  for (auto e : failures.elements()) network.fail_link(e);
  const auto components = graph::connected_components(fx.g, &failures);
  for (NodeId s = 0; s < fx.g.node_count(); ++s) {
    for (NodeId t = 0; t < fx.g.node_count(); ++t) {
      if (s == t) continue;
      const auto trace = net::route_packet(network, proto, s, t);
      if (components[s] == components[t]) {
        ASSERT_TRUE(trace.delivered())
            << context << ": s=" << s << " t=" << t << " should be recoverable";
        EXPECT_GE(trace.cost, fx.routes.cost(s, t) - 1e-9)
            << context << ": stretch below 1 is impossible";
      } else {
        EXPECT_FALSE(trace.delivered()) << context << ": s=" << s << " t=" << t;
      }
    }
  }
}

// ---- P1: single failures, many graphs, PR-safe embeddings -------------------

using GraphMaker = Graph (*)();

Graph make_figure1() { return topo::figure1(); }
Graph make_abilene() { return topo::abilene(); }
Graph make_teleglobe() { return topo::teleglobe(); }
Graph make_geant() { return topo::geant(); }
Graph make_petersen() { return graph::petersen(); }
Graph make_grid() { return graph::grid(4, 4); }
Graph make_torus() { return graph::torus(3, 4); }
Graph make_k5() { return graph::k5(); }

class SingleFailureSuite : public ::testing::TestWithParam<GraphMaker> {};

TEST_P(SingleFailureSuite, EverySingleFailureRecovered) {
  Fixture fx(GetParam()(), embed::EmbedOptions{});
  ASSERT_TRUE(graph::is_two_edge_connected(fx.g));
  ASSERT_TRUE(fx.emb.supports_pr())
      << "kAuto embedding must make every link separate two distinct cells";
  for (const auto& failures : net::all_single_failures(fx.g)) {
    expect_full_recovery(fx, failures, fx.pr, "P1/dd");
    expect_full_recovery(fx, failures, fx.pr1, "P1/1bit");
  }
}

INSTANTIATE_TEST_SUITE_P(Graphs, SingleFailureSuite,
                         ::testing::Values(make_figure1, make_abilene, make_teleglobe,
                                           make_geant, make_petersen, make_grid,
                                           make_torus, make_k5),
                         [](const ::testing::TestParamInfo<GraphMaker>& info) {
                           const GraphMaker m = info.param;
                           return std::string(m == make_figure1     ? "figure1"
                                              : m == make_abilene   ? "abilene"
                                              : m == make_teleglobe ? "teleglobe"
                                              : m == make_geant     ? "geant"
                                              : m == make_petersen  ? "petersen"
                                              : m == make_grid      ? "grid"
                                              : m == make_torus     ? "torus"
                                                                    : "k5");
                         });

// ---- P2: exhaustive multi-failure on small graphs ---------------------------

class ExhaustiveFailureSuite : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ExhaustiveFailureSuite, Figure1AllCombinations) {
  const std::size_t k = GetParam();
  Fixture fx(topo::figure1(), embed::EmbedOptions{});
  for (const auto& failures : net::enumerate_failures(fx.g, k)) {
    expect_full_recovery(fx, failures, fx.pr, "P2/figure1");
  }
}

INSTANTIATE_TEST_SUITE_P(UpToFiveSimultaneousFailures, ExhaustiveFailureSuite,
                         ::testing::Values(1U, 2U, 3U, 4U, 5U));

TEST(ExhaustiveFailures, Figure1PaperRotationAllTriples) {
  // The paper's own embedding, not just the DMP one.
  auto g = topo::figure1();
  auto rot = topo::figure1_rotation(g);
  Fixture fx(topo::figure1(), rot);
  ASSERT_TRUE(fx.emb.supports_pr());
  for (std::size_t k = 1; k <= 3; ++k) {
    for (const auto& failures : net::enumerate_failures(fx.g, k)) {
      expect_full_recovery(fx, failures, fx.pr, "P2/figure1-paper-rotation");
    }
  }
}

TEST(ExhaustiveFailures, AbileneAllPairsOfFailures) {
  Fixture fx(topo::abilene(), embed::EmbedOptions{});
  for (const auto& failures : net::enumerate_failures(fx.g, 2)) {
    expect_full_recovery(fx, failures, fx.pr, "P2/abilene");
  }
}

TEST(ExhaustiveFailures, AbileneAllTriplesOfFailures) {
  Fixture fx(topo::abilene(), embed::EmbedOptions{});
  for (const auto& failures : net::enumerate_failures(fx.g, 3)) {
    expect_full_recovery(fx, failures, fx.pr, "P2/abilene3");
  }
}

TEST(ExhaustiveFailures, K4AllTripleFailures) {
  Fixture fx(graph::complete(4), embed::EmbedOptions{});
  for (const auto& failures : net::enumerate_failures(fx.g, 3)) {
    expect_full_recovery(fx, failures, fx.pr, "P2/k4");
  }
}

TEST(ExhaustiveFailures, GridAllPairsOfFailures) {
  Fixture fx(graph::grid(3, 3), embed::EmbedOptions{});
  for (const auto& failures : net::enumerate_failures(fx.g, 2)) {
    expect_full_recovery(fx, failures, fx.pr, "P2/grid");
  }
}

// ---- P3: embedding quality is the real precondition -------------------------

class RandomPlanarSuite : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomPlanarSuite, SampledMultiFailuresRecoveredAtGenusZero) {
  const std::uint64_t seed = GetParam();
  graph::Rng rng(seed);
  const std::size_t n = 6 + rng.below(10);
  Graph g = graph::random_outerplanar(n, 1 + rng.below(n), rng);

  Fixture fx(std::move(g), embed::EmbedOptions{});
  ASSERT_EQ(fx.emb.genus, 0);
  ASSERT_TRUE(fx.emb.supports_pr());

  const std::size_t k = 1 + rng.below(std::max<std::size_t>(1, fx.g.edge_count() / 3));
  // Sampling without the connectivity filter also exercises partition cases.
  for (const auto& failures : net::sample_any_failures(fx.g, k, 12, rng)) {
    expect_full_recovery(fx, failures, fx.pr, "P3/planar");
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPlanarSuite,
                         ::testing::Range<std::uint64_t>(0, 24));

TEST(RandomNonPlanarSuite, SingleFailuresStillRecoveredWhenSafe) {
  // Single-failure recovery needs only PR safety, not genus 0: the diverted
  // packet walks the one complementary face, whose exit (the far side of the
  // failed link) always lies on that same face.
  std::size_t tested = 0;
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    graph::Rng rng(seed);
    const std::size_t n = 6 + rng.below(6);
    Graph g = graph::random_two_edge_connected(n, n, rng);
    Fixture fx(std::move(g), embed::EmbedOptions{});
    if (!fx.emb.supports_pr()) continue;  // search may fail on dense graphs
    ++tested;
    for (const auto& failures : net::all_single_failures(fx.g)) {
      expect_full_recovery(fx, failures, fx.pr, "P3/nonplanar-single");
    }
  }
  EXPECT_GE(tested, 6U) << "genus search found too few PR-safe embeddings";
}

TEST(NonPlanarLivelock, HandleBoundaryStrandsPacketDespiteSafety) {
  // Reproduction finding F2 (DESIGN.md section 8), pinned as a regression:
  // on a genus-5 PR-safe embedding of a dense 9-node graph, the failure set
  // {3-6, 7-8, 4-5, 0-2, 1-3} leaves 3 and 1 connected, yet the packet orbits
  // the joined-region boundary 3->8->4 forever: on a handle, a boundary
  // component need not separate the surface, so the decreasing-distance exit
  // of Section 4.3 is never reached.  The paper's Section 5.2 argument
  // implicitly assumes sphere-like separation.
  Graph g(9);
  const std::pair<NodeId, NodeId> edges[] = {
      {0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}, {6, 7}, {7, 8},
      {8, 0}, {1, 3}, {4, 6}, {0, 2}, {0, 7}, {0, 5}, {4, 7}, {3, 6},
      {5, 7}, {1, 6}, {4, 8}, {0, 3}, {3, 8}, {1, 7}, {1, 5}, {1, 4}};
  for (const auto& [u, v] : edges) g.add_edge(u, v);

  const std::vector<std::vector<NodeId>> orders = {
      {1, 5, 3, 7, 2, 8}, {2, 7, 3, 5, 4, 0, 6}, {3, 0, 1},
      {2, 0, 4, 1, 6, 8}, {6, 1, 5, 8, 3, 7},    {6, 7, 0, 4, 1},
      {1, 7, 4, 3, 5},    {6, 8, 0, 4, 5, 1},    {4, 7, 0, 3}};
  auto rot = embed::RotationSystem::from_neighbor_orders(g, orders);
  const auto faces = embed::trace_faces(rot);
  ASSERT_TRUE(embed::pr_safe(g, faces)) << "the finding is about SAFE embeddings";
  ASSERT_EQ(embed::euler_genus(g, faces), 5);

  const route::RoutingDb routes(g);
  const CycleFollowingTable cycles(rot);
  PacketRecycling pr(routes, cycles);

  net::Network network(g);
  for (const auto& [u, v] :
       {std::pair<NodeId, NodeId>{3, 6}, {7, 8}, {4, 5}, {0, 2}, {1, 3}}) {
    network.fail_link(*g.find_edge(u, v));
  }
  ASSERT_TRUE(graph::same_component(g, 3, 1, &network.failed_links()));

  const auto trace = net::route_packet(network, pr, 3, 1);
  EXPECT_FALSE(trace.delivered());
  EXPECT_EQ(trace.drop_reason, net::DropReason::kTtlExpired);
  // FCP, which carries explicit failure state, has no such blind spot.
  route::FcpRouting fcp(g);
  EXPECT_TRUE(net::route_packet(network, fcp, 3, 1).delivered());
}

TEST(EmbeddingQuality, SafeRandomRotationsRecoverSingleFailures) {
  // Random rotations that happen to be PR-safe still enjoy the single-failure
  // guarantee: low genus is an optimisation, safety is the requirement.
  graph::Rng rng(1234);
  const Graph proto_graph = topo::figure1();
  std::size_t safe_found = 0;
  for (int attempt = 0; attempt < 200 && safe_found < 5; ++attempt) {
    auto rot = embed::RotationSystem::random(proto_graph, rng);
    const auto faces = embed::trace_faces(rot);
    if (!embed::pr_safe(proto_graph, faces)) continue;
    ++safe_found;
    Fixture fx(topo::figure1(), rot);
    for (const auto& failures : net::all_single_failures(fx.g)) {
      expect_full_recovery(fx, failures, fx.pr, "P3/safe-random");
    }
  }
  EXPECT_GE(safe_found, 1U) << "no PR-safe random rotation found to test";
}

TEST(EmbeddingQuality, SelfPairedEdgesAreExactlyTheUnprotectedOnes) {
  // Characterisation of the reproduction finding: under figure1's identity
  // rotation (genus 1, two self-paired links B-D and C-E), failing a
  // self-paired link strands some recoverable packets, while every other
  // single failure is fully recovered.
  embed::EmbedOptions opts;
  opts.strategy = embed::EmbedStrategy::kIdentity;
  Fixture fx(topo::figure1(), opts);

  const auto unsafe = embed::self_paired_edges(fx.g, fx.emb.faces);
  ASSERT_EQ(unsafe.size(), 2U);
  const auto name = [&](graph::EdgeId e) {
    return fx.g.display_name(fx.g.edge_u(e)) + "-" + fx.g.display_name(fx.g.edge_v(e));
  };
  EXPECT_EQ(name(unsafe[0]), "B-D");
  EXPECT_EQ(name(unsafe[1]), "C-E");

  for (const auto& failures : net::all_single_failures(fx.g)) {
    const graph::EdgeId e = failures.elements()[0];
    const bool is_unsafe =
        std::find(unsafe.begin(), unsafe.end(), e) != unsafe.end();
    net::Network network(fx.g);
    network.fail_link(e);
    std::size_t drops = 0;
    for (NodeId s = 0; s < fx.g.node_count(); ++s) {
      for (NodeId t = 0; t < fx.g.node_count(); ++t) {
        if (s == t) continue;
        if (!net::route_packet(network, fx.pr, s, t).delivered()) ++drops;
      }
    }
    if (is_unsafe) {
      EXPECT_GT(drops, 0U) << "self-paired link " << name(e) << " must strand packets";
    } else {
      EXPECT_EQ(drops, 0U) << "safe link " << name(e) << " must be fully recovered";
    }
  }
}

// ---- P4: stretch sanity on the paper's topologies ---------------------------

TEST(StretchSanity, UnaffectedPairsKeepShortestPaths) {
  Fixture fx(topo::abilene(), embed::EmbedOptions{});
  const auto failed_edge =
      *fx.g.find_edge(*fx.g.find_node("Seattle"), *fx.g.find_node("Denver"));
  net::Network network(fx.g);
  network.fail_link(failed_edge);
  for (NodeId s = 0; s < fx.g.node_count(); ++s) {
    for (NodeId t = 0; t < fx.g.node_count(); ++t) {
      if (s == t) continue;
      const auto trace = net::route_packet(network, fx.pr, s, t);
      ASSERT_TRUE(trace.delivered());
      bool affected = false;
      {
        NodeId v = s;
        while (v != t) {
          const auto d = fx.routes.next_dart(v, t);
          if (graph::dart_edge(d) == failed_edge) {
            affected = true;
            break;
          }
          v = fx.g.dart_head(d);
        }
      }
      if (!affected) {
        EXPECT_DOUBLE_EQ(trace.cost, fx.routes.cost(s, t))
            << "unaffected pair took a detour: " << s << "->" << t;
      } else {
        EXPECT_GT(trace.cost, fx.routes.cost(s, t) - 1e-9);
      }
    }
  }
}

TEST(StretchSanity, OneBitVariantNeverBeatsShortestPath) {
  Fixture fx(topo::geant(), embed::EmbedOptions{});
  graph::Rng rng(77);
  for (const auto& failures : net::sample_connected_failures(fx.g, 1, 10, rng)) {
    net::Network network(fx.g);
    for (auto e : failures.elements()) network.fail_link(e);
    for (NodeId s = 0; s < fx.g.node_count(); s += 3) {
      for (NodeId t = 0; t < fx.g.node_count(); t += 3) {
        if (s == t) continue;
        const auto trace = net::route_packet(network, fx.pr1, s, t);
        ASSERT_TRUE(trace.delivered());
        EXPECT_GE(trace.cost, fx.routes.cost(s, t) - 1e-9);
      }
    }
  }
}

}  // namespace
}  // namespace pr::core
