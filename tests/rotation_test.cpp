// Unit tests for rotation systems (sigma) and the face successor (phi).
#include "embed/rotation_system.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/generators.hpp"

namespace pr::embed {
namespace {

using graph::Rng;

TEST(RotationSystem, IdentityCoversAllDarts) {
  const Graph g = graph::ring(5);
  const auto rot = RotationSystem::identity(g);
  rot.validate();
  for (NodeId v = 0; v < g.node_count(); ++v) {
    const auto order = rot.order_at(v);
    EXPECT_EQ(order.size(), g.degree(v));
  }
}

TEST(RotationSystem, SigmaIsCyclicPerNode) {
  const Graph g = graph::complete(4);
  const auto rot = RotationSystem::identity(g);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    const auto outs = g.out_darts(v);
    // Applying sigma degree-many times returns to the start.
    DartId d = outs[0];
    for (std::size_t i = 0; i < g.degree(v); ++i) d = rot.next_at_node(d);
    EXPECT_EQ(d, outs[0]);
  }
}

TEST(RotationSystem, NextAndPrevAreInverse) {
  Rng rng(11);
  const Graph g = graph::random_two_edge_connected(10, 8, rng);
  const auto rot = RotationSystem::random(g, rng);
  for (DartId d = 0; d < g.dart_count(); ++d) {
    EXPECT_EQ(rot.prev_at_node(rot.next_at_node(d)), d);
    EXPECT_EQ(rot.next_at_node(rot.prev_at_node(d)), d);
  }
}

TEST(RotationSystem, SigmaStaysAtNode) {
  Rng rng(12);
  const Graph g = graph::random_two_edge_connected(8, 5, rng);
  const auto rot = RotationSystem::random(g, rng);
  for (DartId d = 0; d < g.dart_count(); ++d) {
    EXPECT_EQ(g.dart_tail(rot.next_at_node(d)), g.dart_tail(d));
  }
}

TEST(RotationSystem, FaceSuccessorLeavesHead) {
  Rng rng(13);
  const Graph g = graph::random_two_edge_connected(8, 5, rng);
  const auto rot = RotationSystem::random(g, rng);
  for (DartId d = 0; d < g.dart_count(); ++d) {
    // phi(d) must depart from the node d points to: head-to-tail continuity.
    EXPECT_EQ(g.dart_tail(rot.face_successor(d)), g.dart_head(d));
  }
}

TEST(RotationSystem, FromOrdersValidation) {
  const Graph g = graph::ring(3);
  // Correct orders pass.
  std::vector<std::vector<DartId>> ok(g.node_count());
  for (NodeId v = 0; v < g.node_count(); ++v) {
    const auto outs = g.out_darts(v);
    ok[v].assign(outs.begin(), outs.end());
  }
  EXPECT_NO_THROW((void)RotationSystem::from_orders(g, ok));

  // Wrong size rejected.
  auto bad = ok;
  bad[0].pop_back();
  EXPECT_THROW((void)RotationSystem::from_orders(g, bad), std::invalid_argument);

  // Dart from another node rejected.
  bad = ok;
  bad[0][0] = ok[1][0];
  EXPECT_THROW((void)RotationSystem::from_orders(g, bad), std::invalid_argument);

  // Duplicate dart rejected.
  bad = ok;
  bad[0][1] = bad[0][0];
  EXPECT_THROW((void)RotationSystem::from_orders(g, bad), std::invalid_argument);
}

TEST(RotationSystem, FromNeighborOrders) {
  Graph g;
  const NodeId a = g.add_node("A");
  const NodeId b = g.add_node("B");
  const NodeId c = g.add_node("C");
  g.add_edge(a, b);
  g.add_edge(b, c);
  g.add_edge(c, a);
  const auto rot = RotationSystem::from_neighbor_orders(g, {{c, b}, {a, c}, {b, a}});
  rot.validate();
  // At A, the successor of the dart to C is the dart to B.
  const DartId a_to_c = *g.find_dart(a, c);
  const DartId a_to_b = *g.find_dart(a, b);
  EXPECT_EQ(rot.next_at_node(a_to_c), a_to_b);
  EXPECT_EQ(rot.next_at_node(a_to_b), a_to_c);
}

TEST(RotationSystem, FromNeighborOrdersErrors) {
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  // Missing neighbour.
  EXPECT_THROW((void)RotationSystem::from_neighbor_orders(g, {{2}, {0, 2}, {1}}),
               std::invalid_argument);
  // Multigraph rejected.
  Graph m(2);
  m.add_edge(0, 1);
  m.add_edge(0, 1);
  EXPECT_THROW((void)RotationSystem::from_neighbor_orders(m, {{1, 1}, {0, 0}}),
               std::invalid_argument);
}

TEST(RotationSystem, SetOrderValidatesAndReverts) {
  const Graph g = graph::complete(4);
  auto rot = RotationSystem::identity(g);
  const auto before = rot.order_at(0);
  std::vector<DartId> reversed(before.rbegin(), before.rend());
  rot.set_order(0, reversed);
  EXPECT_EQ(rot.order_at(0)[0], reversed[0]);
  rot.validate();

  // An invalid order throws and leaves the rotation untouched.
  std::vector<DartId> bogus(reversed);
  bogus[0] = g.out_darts(1)[0];
  EXPECT_THROW(rot.set_order(0, bogus), std::invalid_argument);
  rot.validate();
  EXPECT_EQ(rot.order_at(0)[0], reversed[0]);
}

TEST(RotationSystem, RandomIsDeterministicPerSeed) {
  const Graph g = graph::complete(5);
  Rng r1(77);
  Rng r2(77);
  const auto a = RotationSystem::random(g, r1);
  const auto b = RotationSystem::random(g, r2);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    const auto oa = a.order_at(v);
    const auto ob = b.order_at(v);
    EXPECT_TRUE(std::equal(oa.begin(), oa.end(), ob.begin(), ob.end()));
  }
}

}  // namespace
}  // namespace pr::embed
