// Unit + property tests for face tracing and Euler genus.
#include "embed/faces.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"

namespace pr::embed {
namespace {

using graph::Rng;

TEST(Faces, RingHasTwoFaces) {
  const Graph g = graph::ring(6);
  const auto rot = RotationSystem::identity(g);
  const auto faces = trace_faces(rot);
  EXPECT_EQ(faces.face_count(), 2U);
  EXPECT_EQ(euler_genus(g, faces), 0);
  for (const auto& f : faces.faces) EXPECT_EQ(f.size(), 6U);
}

TEST(Faces, SingleEdgeOneFace) {
  Graph g(2);
  g.add_edge(0, 1);
  const auto rot = RotationSystem::identity(g);
  const auto faces = trace_faces(rot);
  ASSERT_EQ(faces.face_count(), 1U);
  EXPECT_EQ(faces.faces[0].size(), 2U);  // there and back
  EXPECT_EQ(euler_genus(g, faces), 0);
}

TEST(Faces, TreesAlwaysGenusZero) {
  // Any rotation system of a tree embeds on the sphere with exactly one face.
  Rng rng(5);
  Graph g(7);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 3);
  g.add_edge(1, 4);
  g.add_edge(2, 5);
  g.add_edge(2, 6);
  for (int trial = 0; trial < 10; ++trial) {
    const auto rot = RotationSystem::random(g, rng);
    const auto faces = trace_faces(rot);
    EXPECT_EQ(faces.face_count(), 1U);
    EXPECT_EQ(euler_genus(g, faces), 0);
  }
}

TEST(Faces, CanonicalTorusRotationHasGenusOne) {
  // 3x3 wrapped grid with the up/right/down/left rotation at every node is the
  // canonical genus-1 embedding whose faces are the 9 unit squares.
  const std::size_t rows = 3;
  const std::size_t cols = 3;
  const Graph g = graph::torus(rows, cols);
  const auto id = [&](std::size_t r, std::size_t c) {
    return static_cast<NodeId>((r % rows) * cols + (c % cols));
  };
  std::vector<std::vector<NodeId>> neighbor_orders(g.node_count());
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      neighbor_orders[id(r, c)] = {id(r + rows - 1, c), id(r, c + 1), id(r + 1, c),
                                   id(r, c + cols - 1)};
    }
  }
  const auto rot = RotationSystem::from_neighbor_orders(g, neighbor_orders);
  const auto faces = trace_faces(rot);
  EXPECT_EQ(faces.face_count(), 9U);
  EXPECT_EQ(euler_genus(g, faces), 1);
  for (const auto& f : faces.faces) EXPECT_EQ(f.size(), 4U);
}

TEST(Faces, EveryDartOnExactlyOneFace) {
  Rng rng(17);
  for (int trial = 0; trial < 20; ++trial) {
    const Graph g = graph::random_two_edge_connected(4 + trial, 1 + trial % 7, rng);
    const auto rot = RotationSystem::random(g, rng);
    const auto faces = trace_faces(rot);
    EXPECT_NO_THROW(check_face_set(rot, faces)) << "trial " << trial;
  }
}

TEST(Faces, EveryEdgeOnAtMostTwoCycles) {
  // The cellular-cycle property the paper relies on: each link belongs to two
  // directed cycles (possibly the same face traversed twice).
  Rng rng(18);
  const Graph g = graph::random_two_edge_connected(12, 8, rng);
  const auto rot = RotationSystem::random(g, rng);
  const auto faces = trace_faces(rot);
  for (graph::EdgeId e = 0; e < g.edge_count(); ++e) {
    const DartId d = graph::make_dart(e, 0);
    const auto main = faces.main_cycle_of(d);
    const auto comp = faces.complementary_cycle_of(d);
    EXPECT_LT(main, faces.face_count());
    EXPECT_LT(comp, faces.face_count());
    EXPECT_EQ(comp, faces.main_cycle_of(graph::reverse(d)));
  }
}

TEST(Faces, GenusNeverNegativeUnderRandomRotations) {
  Rng rng(19);
  for (int trial = 0; trial < 30; ++trial) {
    const Graph g = graph::erdos_renyi(8, 0.4, rng);
    const auto rot = RotationSystem::random(g, rng);
    EXPECT_GE(genus_of(rot), 0) << "trial " << trial;
  }
}

TEST(Faces, IsolatedNodesCountedInGenus) {
  Graph g(3);
  g.add_edge(0, 1);  // node 2 isolated
  const auto rot = RotationSystem::identity(g);
  EXPECT_EQ(genus_of(rot), 0);
}

TEST(Faces, AverageFaceLength) {
  const Graph g = graph::ring(5);
  const auto faces = trace_faces(RotationSystem::identity(g));
  EXPECT_DOUBLE_EQ(faces.average_face_length(), 5.0);
}

TEST(Faces, FaceToString) {
  Graph g;
  g.add_node("A");
  g.add_node("B");
  g.add_node("C");
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);
  const auto rot = RotationSystem::identity(g);
  const auto faces = trace_faces(rot);
  bool found_triangle = false;
  for (const auto& f : faces.faces) {
    const auto s = face_to_string(g, f);
    EXPECT_FALSE(s.empty());
    if (s == "A->B->C->A" || s == "A->C->B->A" || s == "B->C->A->B" ||
        s == "B->A->C->B" || s == "C->A->B->C" || s == "C->B->A->C") {
      found_triangle = true;
    }
  }
  EXPECT_TRUE(found_triangle);
}

}  // namespace
}  // namespace pr::embed
