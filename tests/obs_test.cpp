// Telemetry subsystem contract (src/obs/): counter cells and scoped sinks,
// phase timers, registry merges, the bounded trace ring, synthetic-clock
// progress/stall detection -- and above all the determinism guarantee: a
// storm sweep with full telemetry attached (counters + trace + driver sink)
// produces results and checkpoint blobs BYTE-IDENTICAL to a telemetry-free
// run, at 1, 2 and 8 threads.  Telemetry observes; it must never steer.
#include <gtest/gtest.h>

#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include "analysis/protocols.hpp"
#include "analysis/storm.hpp"
#include "graph/graph.hpp"
#include "graph/rng.hpp"
#include "net/storm_model.hpp"
#include "obs/progress.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace_log.hpp"
#include "sim/fault_plan.hpp"
#include "sim/parallel_sweep.hpp"
#include "sim/run_control.hpp"
#include "topo/topologies.hpp"
#include "traffic/capacity.hpp"
#include "traffic/demand.hpp"

namespace pr {
namespace {

using obs::Counter;
using obs::Counters;
using obs::Phase;
using obs::ProgressSnapshot;
using obs::Registry;
using obs::ScopedSink;
using obs::SpanKind;
using obs::StallEvent;
using obs::SweepProgress;
using obs::TraceLog;
using obs::TraceSpan;

// ---- Counters / sinks ------------------------------------------------------

TEST(ObsCounters, AddGetMergeReset) {
  Counters a;
  a.add(Counter::kSpfRepairs);
  a.add(Counter::kSpfRepairs, 4);
  a.add_phase(Phase::kUnit, 100);
  a.add_phase(Phase::kUnit, 50);
  EXPECT_EQ(a.get(Counter::kSpfRepairs), 5u);
  EXPECT_EQ(a.phase_nanos(Phase::kUnit), 150u);
  EXPECT_EQ(a.phase_calls(Phase::kUnit), 2u);

  Counters b;
  b.add(Counter::kSpfRepairs, 10);
  b.add(Counter::kRouteCacheHits, 3);
  b.merge(a);
  EXPECT_EQ(b.get(Counter::kSpfRepairs), 15u);
  EXPECT_EQ(b.get(Counter::kRouteCacheHits), 3u);
  EXPECT_EQ(b.phase_nanos(Phase::kUnit), 150u);

  b.reset();
  EXPECT_EQ(b, Counters{});
}

TEST(ObsCounters, NoSinkByDefaultAndCountIsSafe) {
  EXPECT_FALSE(obs::enabled());
  EXPECT_EQ(obs::sink(), nullptr);
  obs::count(Counter::kSpfFullBuilds, 7);  // must be a harmless no-op
}

TEST(ObsCounters, ScopedSinkInstallsNestsAndRestores) {
  Counters outer_cell;
  Counters inner_cell;
  {
    ScopedSink outer(&outer_cell);
#if !defined(PR_OBS_DISABLED)
    EXPECT_TRUE(obs::enabled());
#endif
    obs::count(Counter::kFlowsRouted, 2);
    {
      ScopedSink inner(&inner_cell);
      obs::count(Counter::kFlowsRouted, 5);
      {
        ScopedSink off(nullptr);  // nullptr disables within the scope
        EXPECT_FALSE(obs::enabled());
        obs::count(Counter::kFlowsRouted, 100);
      }
    }
    obs::count(Counter::kFlowsRouted);  // back on the outer sink
  }
  EXPECT_FALSE(obs::enabled());
#if !defined(PR_OBS_DISABLED)
  EXPECT_EQ(outer_cell.get(Counter::kFlowsRouted), 3u);
  EXPECT_EQ(inner_cell.get(Counter::kFlowsRouted), 5u);
#endif
}

TEST(ObsCounters, PhaseTimerAttributesToSinkAtConstruction) {
  Counters cell;
  {
    ScopedSink sink(&cell);
    obs::PhaseTimer timer(Phase::kCheckpoint);
  }
#if !defined(PR_OBS_DISABLED)
  EXPECT_EQ(cell.phase_calls(Phase::kCheckpoint), 1u);
#endif
  {
    // No sink installed: the timer must not attribute anywhere (nor crash).
    obs::PhaseTimer timer(Phase::kCheckpoint);
  }
}

TEST(ObsRegistry, EnsureWorkersGrowsOnlyAndAggregatesCanonically) {
  Registry registry(2);
  registry.worker(0).add(Counter::kUnitsExecuted, 3);
  registry.worker(1).add(Counter::kUnitsExecuted, 4);
  registry.ensure_workers(4);
  EXPECT_EQ(registry.worker_count(), 4u);
  EXPECT_EQ(registry.worker(0).get(Counter::kUnitsExecuted), 3u);  // preserved
  registry.ensure_workers(1);  // never shrinks
  EXPECT_EQ(registry.worker_count(), 4u);
  registry.worker(3).add(Counter::kUnitsExecuted, 5);

  const Counters total = registry.aggregate();
  EXPECT_EQ(total.get(Counter::kUnitsExecuted), 12u);
  // Canonical merge is stable: repeated aggregation yields identical blocks.
  EXPECT_EQ(registry.aggregate(), total);
}

TEST(ObsTelemetryJson, EmitsDerivedRatesCountersAndPerWorkerRows) {
  Registry registry(2);
  registry.worker(0).add(Counter::kRouteCacheHits, 9);
  registry.worker(0).add(Counter::kRouteCacheRebuilds, 1);
  registry.worker(1).add(Counter::kSpfTreeRepairs, 3);
  registry.worker(1).add(Counter::kSpfFullBuilds, 1);
  registry.worker(1).add(Counter::kUnitsExecuted, 10);
  registry.worker(1).add_phase(Phase::kUnit, 5'000'000);

  const std::string json = obs::telemetry_json(registry, /*elapsed_ms=*/10.0);
  EXPECT_NE(json.find("\"cache_hit_rate\": 0.900000"), std::string::npos) << json;
  EXPECT_NE(json.find("\"repair_fraction\": 0.750000"), std::string::npos) << json;
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"route_cache_hits\": 9"), std::string::npos);
  EXPECT_NE(json.find("\"phases\""), std::string::npos);
  EXPECT_NE(json.find("\"per_worker\""), std::string::npos);
  EXPECT_NE(json.find("\"utilization\": 0.5000"), std::string::npos) << json;
  // elapsed_ms <= 0 suppresses the utilization column.
  EXPECT_EQ(obs::telemetry_json(registry, 0.0).find("utilization"),
            std::string::npos);
}

// ---- TraceLog --------------------------------------------------------------

TEST(ObsTraceLog, RecordsUpToCapacityThenCountsDrops) {
  TraceLog log(4);
  for (std::uint64_t i = 0; i < 6; ++i) {
    TraceSpan span;
    span.kind = SpanKind::kUnit;
    span.worker = 0;
    span.unit = i;
    span.start_ns = 100 + i;
    span.end_ns = 200 + i;
    log.record(span);
  }
  EXPECT_EQ(log.size(), 4u);
  EXPECT_EQ(log.capacity(), 4u);
  EXPECT_EQ(log.dropped(), 2u);
  EXPECT_EQ(log.span(3).unit, 3u);

  log.clear();
  EXPECT_EQ(log.size(), 0u);
  EXPECT_EQ(log.dropped(), 0u);
  log.record_instant(SpanKind::kStall, 1, 42, 7);
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log.span(0).start_ns, log.span(0).end_ns);
  EXPECT_EQ(log.span(0).detail, 7u);
}

TEST(ObsTraceLog, ExportsChromeTracingJson) {
  TraceLog log(8);
  TraceSpan span;
  span.kind = SpanKind::kUnit;
  span.worker = 2;
  span.unit = 11;
  span.start_ns = 5'000;
  span.end_ns = 9'000;
  log.record(span);
  log.record_instant(SpanKind::kFault, 1, 3);

  const std::string json = log.export_chrome_json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"dropped\": 0"), std::string::npos);
  // Durations are microseconds relative to the earliest span: 4000ns -> 4us.
  EXPECT_NE(json.find("\"dur\": 4"), std::string::npos) << json;
}

// ---- SweepProgress (synthetic clock) ---------------------------------------

TEST(ObsProgress, SnapshotMathUnderSyntheticClock) {
  SweepProgress progress;
  progress.begin_job(/*workers=*/2, /*units_total=*/10, /*now_ns=*/1'000);
  progress.unit_started(0, 7, 1'000);
  progress.unit_finished(0, 2'000);  // 1000ns busy
  ProgressSnapshot s = progress.snapshot(3'000);
  EXPECT_EQ(s.units_done, 1u);
  EXPECT_EQ(s.units_total, 10u);
  EXPECT_EQ(s.in_flight, 0u);
  EXPECT_DOUBLE_EQ(s.units_per_sec, 1e9 / 2'000.0);
  EXPECT_DOUBLE_EQ(s.eta_sec, 9.0 * 2'000.0 / 1e9);
  ASSERT_EQ(s.utilization.size(), 2u);
  EXPECT_DOUBLE_EQ(s.utilization[0], 0.5);
  EXPECT_DOUBLE_EQ(s.utilization[1], 0.0);

  // An in-flight unit earns partial busy credit and counts as in_flight.
  progress.unit_started(1, 8, 3'000);
  s = progress.snapshot(5'000);
  EXPECT_EQ(s.in_flight, 1u);
  EXPECT_DOUBLE_EQ(s.utilization[1], 2'000.0 / 4'000.0);

  const std::string line = SweepProgress::format_line(s);
  EXPECT_NE(line.find("progress: 1/10 units"), std::string::npos) << line;
  EXPECT_NE(line.find("eta"), std::string::npos) << line;
  EXPECT_NE(line.find("busy 1/2"), std::string::npos) << line;
}

TEST(ObsProgress, StallFiresOncePerClaim) {
  SweepProgress::Options options;
  options.stall_after_ns = 1'000;
  SweepProgress progress(options);
  std::vector<StallEvent> events;
  progress.on_stall([&](const StallEvent& e) { events.push_back(e); });

  progress.begin_job(1, 4, 0);
  progress.unit_started(0, 42, 100);
  progress.tick(1'000);  // in flight 900ns < threshold
  EXPECT_EQ(progress.stalls_detected(), 0u);
  progress.tick(1'200);  // 1100ns >= threshold -> fires
  progress.tick(5'000);  // same claim: must not fire again
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(progress.stalls_detected(), 1u);
  EXPECT_EQ(events[0].worker, 0u);
  EXPECT_EQ(events[0].unit, 42u);
  EXPECT_GE(events[0].in_flight_ns, 1'000u);

  // A new claim on the same lane is eligible again.
  progress.unit_finished(0, 5'100);
  progress.unit_started(0, 43, 5'200);
  progress.tick(7'000);
  EXPECT_EQ(progress.stalls_detected(), 2u);
  EXPECT_EQ(events.back().unit, 43u);

  // begin_job resets stall state along with the lanes.
  progress.begin_job(1, 4, 0);
  EXPECT_EQ(progress.stalls_detected(), 0u);
}

TEST(ObsProgress, OptionsFromEnvParsesMilliseconds) {
  const SweepProgress::Options defaults = SweepProgress::options_from_env();
  EXPECT_EQ(defaults.interval_ns, SweepProgress::Options{}.interval_ns);

  ::setenv("PR_PROGRESS", "250", 1);
  ::setenv("PR_STALL_MS", "1500", 1);
  const SweepProgress::Options opts = SweepProgress::options_from_env();
  EXPECT_EQ(opts.interval_ns, 250u * 1'000'000u);
  EXPECT_EQ(opts.stall_after_ns, 1'500u * 1'000'000u);

  ::setenv("PR_PROGRESS", "0", 1);  // 0 keeps the default cadence
  EXPECT_EQ(SweepProgress::options_from_env().interval_ns,
            SweepProgress::Options{}.interval_ns);
  ::unsetenv("PR_PROGRESS");
  ::unsetenv("PR_STALL_MS");
}

// ---- Executor integration --------------------------------------------------

TEST(ObsExecutor, CountersAndTraceFollowTheSweep) {
  constexpr std::size_t kUnits = 64;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    Registry registry;
    TraceLog trace(256);
    sim::SweepExecutor executor(threads);
    executor.set_telemetry(sim::SweepTelemetry{&registry, &trace, nullptr});
    std::vector<std::uint64_t> out(kUnits, 0);
    executor.run(kUnits, [&](std::size_t unit, sim::WorkerContext&) {
      out[unit] = unit * 3 + 1;
    });

    const Counters total = registry.aggregate();
#if !defined(PR_OBS_DISABLED)
    EXPECT_EQ(total.get(Counter::kUnitsExecuted), kUnits) << threads;
    EXPECT_EQ(total.phase_calls(Phase::kUnit), kUnits) << threads;
    EXPECT_EQ(total.get(Counter::kUnitErrors), 0u);
#endif
    std::size_t unit_spans = 0;
    for (std::size_t i = 0; i < trace.size(); ++i) {
      if (trace.span(i).kind == SpanKind::kUnit) ++unit_spans;
    }
    EXPECT_EQ(unit_spans, kUnits) << threads;
    for (std::size_t u = 0; u < kUnits; ++u) EXPECT_EQ(out[u], u * 3 + 1);
  }
}

TEST(ObsExecutor, ProgressSeesEveryUnit) {
  SweepProgress::Options options;
  options.interval_ns = 3'600'000'000'000ull;  // monitor effectively silent
  SweepProgress progress(options);
  sim::SweepExecutor executor(2);
  executor.set_telemetry(sim::SweepTelemetry{nullptr, nullptr, &progress});
  executor.run(40, [](std::size_t, sim::WorkerContext&) {});
  const ProgressSnapshot s = progress.snapshot(obs::now_ns());
  EXPECT_EQ(s.units_done, 40u);
  EXPECT_EQ(s.units_total, 40u);
  EXPECT_EQ(s.in_flight, 0u);  // end_job clears the claims
}

// ---- The determinism contract ----------------------------------------------

struct StormFixture {
  graph::Graph g = topo::abilene();
  analysis::ProtocolSuite suite{g};
  traffic::TrafficMatrix demand =
      traffic::gravity_demand(g, 1e5, traffic::GravityMass::kDegree);
  traffic::CapacityPlan plan = traffic::CapacityPlan::uniform(g, 5e4);
  graph::Rng catalog_rng{4};
  net::SrlgCatalog catalog = net::random_srlgs(g, 6, 3, catalog_rng);
  net::IndependentOutages model = net::IndependentOutages::uniform(catalog, 0.2);
  std::vector<analysis::NamedFactory> protocols = {suite.spf(),
                                                   suite.reconvergence()};
  analysis::StormSweepConfig config = [] {
    analysis::StormSweepConfig c;
    c.scenarios = 240;
    c.seed = 77;
    c.top_k = 5;
    return c;
  }();

  [[nodiscard]] analysis::StormRunResult run(sim::SweepExecutor& executor) {
    return analysis::run_storm_experiment_resilient(g, demand, plan, model,
                                                    protocols, config, executor);
  }
};

TEST(ObsDeterminism, TelemetryOnAndOffAreByteIdenticalAcrossThreadCounts) {
  StormFixture f;
  std::string baseline_checkpoint;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    // Telemetry-free run: the reference bytes for this thread count.
    sim::SweepExecutor plain_executor(threads);
    const analysis::StormRunResult plain = f.run(plain_executor);
    ASSERT_TRUE(plain.complete());
    ASSERT_FALSE(plain.checkpoint.empty());

    // Fully-instrumented run: per-worker counters, trace ring, progress
    // lanes, and a driver-thread sink (the bench setup for checkpoint
    // attribution) all attached.
    Registry registry;
    TraceLog trace(1 << 14);
    SweepProgress progress;
    sim::SweepExecutor executor(threads);
    executor.set_telemetry(sim::SweepTelemetry{&registry, &trace, &progress});
    registry.ensure_workers(executor.thread_count() + 1);
    analysis::StormRunResult observed;
    {
      ScopedSink driver_sink(&registry.worker(executor.thread_count()));
      observed = f.run(executor);
    }
    ASSERT_TRUE(observed.complete());

    // Byte-identical checkpoint blobs ARE the bit-identity check: the blob
    // serializes every reducer output, so equal bytes mean equal results.
    EXPECT_EQ(observed.checkpoint, plain.checkpoint) << threads << " threads";
    EXPECT_EQ(observed.completed_scenarios, plain.completed_scenarios);
    if (baseline_checkpoint.empty()) {
      baseline_checkpoint = plain.checkpoint;
    } else {
      EXPECT_EQ(plain.checkpoint, baseline_checkpoint) << threads << " threads";
    }

#if !defined(PR_OBS_DISABLED)
    // Aggregate event totals of a deterministic sweep are deterministic:
    // every scenario executed exactly once, whatever the thread count.
    const Counters total = registry.aggregate();
    EXPECT_EQ(total.get(Counter::kUnitsExecuted), f.config.scenarios)
        << threads << " threads";
    EXPECT_EQ(total.get(Counter::kUnitErrors), 0u);
    EXPECT_GT(total.get(Counter::kRouteCachePristineBuilds) +
                  total.get(Counter::kRouteCacheRebuilds) +
                  total.get(Counter::kRouteCacheHits),
              0u);
    // The driver lane saw the checkpoint serialization.
    EXPECT_GE(total.get(Counter::kCheckpoints), 1u);
    EXPECT_GE(total.get(Counter::kCheckpointBytes), observed.checkpoint.size());
#endif
    EXPECT_GT(trace.size(), 0u);
  }
}

TEST(ObsDeterminism, InjectedStallTripsTheDetectorWithoutChangingResults) {
  StormFixture f;
  f.config.scenarios = 60;
  sim::SweepExecutor reference_executor(2);
  const analysis::StormRunResult want = f.run(reference_executor);

  SweepProgress::Options options;
  options.interval_ns = 20'000'000;    // 20ms monitor cadence
  options.stall_after_ns = 60'000'000;  // 60ms in-flight -> stall
  SweepProgress progress(options);
  std::vector<StallEvent> events;
  progress.on_stall([&](const StallEvent& e) { events.push_back(e); });

  sim::SweepExecutor executor(2);
  executor.set_telemetry(sim::SweepTelemetry{nullptr, nullptr, &progress});
  sim::RunControl control;
  sim::FaultPlan faults;
  faults.stall_unit(40, std::chrono::milliseconds(250));
  control.set_fault_plan(&faults);
  analysis::StormRunOptions run_options;
  run_options.control = &control;
  const analysis::StormRunResult got = analysis::run_storm_experiment_resilient(
      f.g, f.demand, f.plan, f.model, f.protocols, f.config, executor,
      run_options);

  ASSERT_TRUE(got.complete());
  EXPECT_EQ(got.checkpoint, want.checkpoint);  // a stall never changes results
  ASSERT_GE(events.size(), 1u);
  EXPECT_GE(progress.stalls_detected(), 1u);
  bool saw_stalled_unit = false;
  for (const StallEvent& e : events) saw_stalled_unit |= (e.unit == 40u);
  EXPECT_TRUE(saw_stalled_unit);
}

}  // namespace
}  // namespace pr
