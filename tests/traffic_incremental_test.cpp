// Tests for the affected-flow incremental traffic sweep core: the
// FlowIncidenceIndex built from a pristine routing pass, the LoadMap diff
// helper, and -- the load-bearing guarantee -- bit-identical incremental vs
// full-re-route experiments across demand matrices, failure depths, every
// protocol factory and 1/2/8 threads.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "analysis/protocols.hpp"
#include "analysis/traffic.hpp"
#include "graph/generators.hpp"
#include "graph/rng.hpp"
#include "net/failure_model.hpp"
#include "route/routing_db.hpp"
#include "route/static_spf.hpp"
#include "sim/parallel_sweep.hpp"
#include "topo/topologies.hpp"
#include "traffic/capacity.hpp"
#include "traffic/demand.hpp"
#include "traffic/incidence.hpp"
#include "traffic/load_map.hpp"

namespace pr {
namespace {

using analysis::TrafficSweepMode;
using traffic::CapacityPlan;
using traffic::FlowIncidenceIndex;
using traffic::LoadMap;
using traffic::TrafficMatrix;

// ---------------------------------------------------------------------------
// FlowIncidenceIndex

TEST(FlowIncidenceIndex, RecordsPathsIncidenceAndPristineLoad) {
  // Path A-B-C under plain SPF: every structure the index caches is small
  // enough to check by hand.
  graph::Graph g;
  const auto a = g.add_node("A");
  const auto b = g.add_node("B");
  const auto c = g.add_node("C");
  const auto e_ab = g.add_edge(a, b);
  const auto e_bc = g.add_edge(b, c);

  const route::RoutingDb routes(g);
  route::StaticSpf spf(routes);
  const net::Network network(g);

  const std::vector<sim::FlowSpec> flows{{a, c}, {c, a}, {a, b}};
  const std::vector<double> demands{100.0, 40.0, 7.0};

  FlowIncidenceIndex index;
  EXPECT_FALSE(index.built());
  index.build(network, spf, flows, demands);
  ASSERT_TRUE(index.built());
  EXPECT_EQ(index.flow_count(), 3u);
  EXPECT_EQ(index.dart_count(), g.dart_count());

  const graph::DartId ab = g.dart_from(a, e_ab);
  const graph::DartId ba = g.dart_from(b, e_ab);
  const graph::DartId bc = g.dart_from(b, e_bc);
  const graph::DartId cb = g.dart_from(c, e_bc);

  ASSERT_EQ(index.flow_darts(0).size(), 2u);
  EXPECT_EQ(index.flow_darts(0)[0], ab);
  EXPECT_EQ(index.flow_darts(0)[1], bc);
  ASSERT_EQ(index.flow_darts(1).size(), 2u);
  EXPECT_EQ(index.flow_darts(1)[0], cb);
  EXPECT_EQ(index.flow_darts(1)[1], ba);
  ASSERT_EQ(index.flow_darts(2).size(), 1u);
  EXPECT_EQ(index.flow_darts(2)[0], ab);

  for (std::size_t f = 0; f < flows.size(); ++f) {
    EXPECT_TRUE(index.pristine_delivered(f)) << f;
  }

  // Reverse incidence: sorted flow ids per dart.
  ASSERT_EQ(index.dart_flows(ab).size(), 2u);
  EXPECT_EQ(index.dart_flows(ab)[0], 0u);
  EXPECT_EQ(index.dart_flows(ab)[1], 2u);
  ASSERT_EQ(index.dart_flows(bc).size(), 1u);
  EXPECT_EQ(index.dart_flows(bc)[0], 0u);
  ASSERT_EQ(index.dart_flows(cb).size(), 1u);
  EXPECT_EQ(index.dart_flows(cb)[0], 1u);

  // The cached pristine load is exactly what the demand-weighted batch
  // accumulates.
  EXPECT_DOUBLE_EQ(index.pristine_load().load(ab), 107.0);
  EXPECT_DOUBLE_EQ(index.pristine_load().load(bc), 100.0);
  EXPECT_DOUBLE_EQ(index.pristine_load().load(cb), 40.0);
  EXPECT_DOUBLE_EQ(index.pristine_load().load(ba), 40.0);

  // Affected-flow probe: failing B-C touches both A<->C flows but not A->B.
  std::vector<std::uint8_t> mark;
  std::vector<std::uint32_t> affected;
  graph::EdgeSet failures(g.edge_count());
  failures.insert(e_bc);
  index.affected_flows(failures, mark, affected);
  ASSERT_EQ(affected.size(), 2u);
  EXPECT_EQ(affected[0], 0u);
  EXPECT_EQ(affected[1], 1u);
  EXPECT_NE(mark[0], 0);
  EXPECT_NE(mark[1], 0);
  EXPECT_EQ(mark[2], 0);

  index.affected_flows(graph::EdgeSet(g.edge_count()), mark, affected);
  EXPECT_TRUE(affected.empty());
}

TEST(FlowIncidenceIndex, RejectsFailedNetworksAndBadDemands) {
  const auto g = graph::ring(4);
  const route::RoutingDb routes(g);
  route::StaticSpf spf(routes);
  const std::vector<sim::FlowSpec> flows{{0, 2}};
  FlowIncidenceIndex index;

  net::Network failed(g);
  failed.fail_link(0);
  EXPECT_THROW(index.build(failed, spf, flows, std::vector<double>{1.0}),
               std::invalid_argument);

  const net::Network pristine(g);
  EXPECT_THROW(index.build(pristine, spf, flows, std::vector<double>{1.0, 2.0}),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// LoadMap diff helper

TEST(LoadMapDiff, ReportsIdentityDeltasAndSizeMismatch) {
  LoadMap a(4);
  a.add(1, 10.0);
  a.add(3, 2.5);
  LoadMap b = a;

  const auto same = traffic::diff(a, b);
  EXPECT_TRUE(same.identical());
  EXPECT_EQ(same.darts_compared, 4u);
  EXPECT_EQ(same.differing, 0u);
  EXPECT_EQ(same.worst_dart, graph::kInvalidDart);
  EXPECT_DOUBLE_EQ(same.max_abs_delta, 0.0);

  b.add(1, 0.25);
  b.add(2, 1.0);
  const auto d = traffic::diff(a, b);
  EXPECT_FALSE(d.identical());
  EXPECT_EQ(d.differing, 2u);
  EXPECT_EQ(d.worst_dart, 2u);  // |0 - 1| beats |10 - 10.25|
  EXPECT_DOUBLE_EQ(d.max_abs_delta, 1.0);

  const auto mismatch = traffic::diff(a, LoadMap(3));
  EXPECT_TRUE(mismatch.size_mismatch);
  EXPECT_FALSE(mismatch.identical());
  EXPECT_EQ(mismatch.darts_compared, 0u);
}

// ---------------------------------------------------------------------------
// Incremental vs full-re-route equivalence

void expect_identical_results(const analysis::TrafficExperimentResult& oracle,
                              const analysis::TrafficExperimentResult& incremental,
                              const char* tag) {
  ASSERT_EQ(incremental.protocols.size(), oracle.protocols.size()) << tag;
  EXPECT_EQ(incremental.scenarios, oracle.scenarios) << tag;
  EXPECT_EQ(incremental.flows_per_scenario, oracle.flows_per_scenario) << tag;
  for (std::size_t i = 0; i < oracle.protocols.size(); ++i) {
    const auto& full = oracle.protocols[i];
    const auto& inc = incremental.protocols[i];
    EXPECT_EQ(inc.name, full.name) << tag;
    // Bit-identical doubles, not approximate equality: the incremental replay
    // must reproduce the oracle's exact floating-point operation sequence.
    EXPECT_EQ(inc.per_scenario, full.per_scenario) << full.name << " " << tag;
    EXPECT_EQ(inc.total_load.load, full.total_load.load) << full.name << " " << tag;
    EXPECT_EQ(inc.total_load.scenarios, full.total_load.scenarios)
        << full.name << " " << tag;
    EXPECT_EQ(inc.summary(), full.summary()) << full.name << " " << tag;
    // And the diff helper agrees there is nothing to report.
    EXPECT_TRUE(traffic::diff(inc.total_load.load, full.total_load.load).identical())
        << full.name << " " << tag;
    EXPECT_LE(inc.rerouted_flows, full.rerouted_flows) << full.name << " " << tag;
  }
}

std::vector<analysis::NamedFactory> all_factories(const analysis::ProtocolSuite& s) {
  return {s.pr(),  s.pr_single_bit(),       s.lfa(), s.lfa_node_protecting(),
          s.fcp(), s.reconvergence(),       s.spf()};
}

TEST(TrafficIncremental, BitIdenticalToFullRerouteAcrossMatricesAndProtocols) {
  const auto g = topo::abilene();
  const analysis::ProtocolSuite suite(g);
  const auto protocols = all_factories(suite);
  const auto plan = CapacityPlan::uniform(g, 2.5e5);

  auto scenarios = net::all_single_failures(g);
  graph::Rng rng(3);
  for (auto& s : net::sample_any_failures(g, 2, 6, rng)) {
    scenarios.push_back(std::move(s));
  }

  graph::Rng demand_rng(graph::split_seed(3, 7));
  const std::vector<std::pair<const char*, TrafficMatrix>> matrices = {
      {"uniform", traffic::uniform_demand(g, 1e6)},
      {"gravity", traffic::gravity_demand(g, 1e6)},
      {"hotspot", traffic::hotspot_demand(g, 1e6, 2, 0.5, demand_rng)},
  };

  for (const auto& [tag, demand] : matrices) {
    const auto oracle = analysis::run_traffic_experiment(
        g, demand, plan, scenarios, protocols, TrafficSweepMode::kFullReroute);
    EXPECT_EQ(oracle.mode, TrafficSweepMode::kFullReroute);
    const auto incremental = analysis::run_traffic_experiment(
        g, demand, plan, scenarios, protocols, TrafficSweepMode::kIncremental);
    EXPECT_EQ(incremental.mode, TrafficSweepMode::kIncremental);
    expect_identical_results(oracle, incremental, tag);

    // Full mode routes everything; incremental routes a strict subset on a
    // single-link-dominated sweep.
    for (const auto& p : oracle.protocols) {
      EXPECT_EQ(p.rerouted_flows, oracle.scenarios * oracle.flows_per_scenario);
      EXPECT_DOUBLE_EQ(oracle.rerouted_fraction(p), 1.0);
    }
    for (const auto& p : incremental.protocols) {
      EXPECT_GT(p.rerouted_flows, 0u) << p.name;
      EXPECT_LT(incremental.rerouted_fraction(p), 1.0) << p.name;
    }
  }
}

TEST(TrafficIncremental, BitIdenticalAcrossThreadCounts) {
  const auto g = topo::abilene();
  const analysis::ProtocolSuite suite(g);
  const std::vector<analysis::NamedFactory> protocols = {
      suite.pr(), suite.lfa(), suite.reconvergence(), suite.fcp()};
  const auto demand = traffic::gravity_demand(g, 1e6);
  const auto plan = CapacityPlan::uniform(g, 2.5e5);
  const auto scenarios = net::all_single_failures(g);

  const auto oracle = analysis::run_traffic_experiment(
      g, demand, plan, scenarios, protocols, TrafficSweepMode::kFullReroute);
  for (const std::size_t threads : {1U, 2U, 8U}) {
    sim::SweepExecutor executor(threads);
    const auto incremental = analysis::run_traffic_experiment(
        g, demand, plan, scenarios, protocols, executor,
        TrafficSweepMode::kIncremental);
    expect_identical_results(oracle, incremental, "threads");
    // The per-worker probe counts merge deterministically too.
    const auto serial_inc = analysis::run_traffic_experiment(
        g, demand, plan, scenarios, protocols, TrafficSweepMode::kIncremental);
    for (std::size_t i = 0; i < protocols.size(); ++i) {
      EXPECT_EQ(incremental.protocols[i].rerouted_flows,
                serial_inc.protocols[i].rerouted_flows)
          << protocols[i].name << " @ " << threads;
    }
  }
}

TEST(TrafficIncremental, PartitioningDualFailuresStayIdentical) {
  // Ring duals partition the graph, so stranded classification rides through
  // the incremental path on every scenario.
  const auto g = graph::ring(6);
  const analysis::ProtocolSuite suite(g);
  const std::vector<analysis::NamedFactory> protocols = {
      suite.pr(), suite.fcp(), suite.reconvergence()};
  const auto demand = traffic::uniform_demand(g, 6e5);
  const auto plan = CapacityPlan::uniform(g, 1e5);
  const auto scenarios = net::enumerate_failures(g, 2);

  const auto oracle = analysis::run_traffic_experiment(
      g, demand, plan, scenarios, protocols, TrafficSweepMode::kFullReroute);
  const auto incremental = analysis::run_traffic_experiment(
      g, demand, plan, scenarios, protocols, TrafficSweepMode::kIncremental);
  expect_identical_results(oracle, incremental, "ring duals");

  double stranded = 0.0;
  for (const auto& p : incremental.protocols) stranded += p.summary().stranded_pps;
  EXPECT_GT(stranded, 0.0);  // the partitions really were exercised

  sim::SweepExecutor executor(2);
  expect_identical_results(
      oracle,
      analysis::run_traffic_experiment(g, demand, plan, scenarios, protocols,
                                       executor, TrafficSweepMode::kIncremental),
      "ring duals @ 2");
}

TEST(TrafficIncremental, ScenarioTouchingNoPristinePathReroutesZeroFlows) {
  // Triangle with one expensive edge: no pristine shortest path crosses it,
  // so failing it must re-route nothing -- the replay alone is the answer --
  // while the metrics still match the full oracle bit for bit.
  graph::Graph g;
  const auto a = g.add_node("A");
  const auto b = g.add_node("B");
  const auto c = g.add_node("C");
  g.add_edge(a, b, 1.0);
  g.add_edge(b, c, 1.0);
  const auto e_heavy = g.add_edge(a, c, 10.0);

  const analysis::ProtocolSuite suite(g);
  const auto protocols = all_factories(suite);
  const auto demand = traffic::uniform_demand(g, 6000.0);
  const auto plan = CapacityPlan::uniform(g, 1e4);

  std::vector<graph::EdgeSet> scenarios(1, graph::EdgeSet(g.edge_count()));
  scenarios[0].insert(e_heavy);

  const auto oracle = analysis::run_traffic_experiment(
      g, demand, plan, scenarios, protocols, TrafficSweepMode::kFullReroute);
  const auto incremental = analysis::run_traffic_experiment(
      g, demand, plan, scenarios, protocols, TrafficSweepMode::kIncremental);
  expect_identical_results(oracle, incremental, "no-op failure");
  for (const auto& p : incremental.protocols) {
    EXPECT_EQ(p.rerouted_flows, 0u) << p.name;
    EXPECT_DOUBLE_EQ(incremental.rerouted_fraction(p), 0.0) << p.name;
    // Nothing was affected, so every scenario row equals the pristine price.
    ASSERT_EQ(p.per_scenario.size(), 1u);
    EXPECT_DOUBLE_EQ(p.per_scenario[0].delivered_pps, 6000.0) << p.name;
    EXPECT_DOUBLE_EQ(p.per_scenario[0].lost_pps, 0.0) << p.name;
  }
}

TEST(TrafficIncremental, RandomTopologiesMatchAcrossGeneratedWorkloads) {
  for (const std::uint64_t seed : {11ULL, 12ULL}) {
    graph::Rng rng(seed);
    const graph::Graph g = graph::random_two_edge_connected(10, 6, rng);
    const analysis::ProtocolSuite suite(g);
    const std::vector<analysis::NamedFactory> protocols = {
        suite.pr(), suite.lfa(), suite.reconvergence(), suite.fcp()};

    graph::Rng demand_rng(graph::split_seed(seed, 42));
    const auto demand = traffic::hotspot_demand(g, 5e5, 2, 0.4, demand_rng);
    const auto plan = CapacityPlan::from_weights(g, 1e4);

    auto scenarios = net::all_single_failures(g);
    for (auto& s : net::sample_any_failures(g, 2, 6, rng)) {
      scenarios.push_back(std::move(s));
    }

    const auto oracle = analysis::run_traffic_experiment(
        g, demand, plan, scenarios, protocols, TrafficSweepMode::kFullReroute);
    sim::SweepExecutor executor(8);
    expect_identical_results(
        oracle,
        analysis::run_traffic_experiment(g, demand, plan, scenarios, protocols,
                                         executor, TrafficSweepMode::kIncremental),
        "random topo");
  }
}

}  // namespace
}  // namespace pr
