// Durability layer of the crash-safe sweep stack: the atomic-write helper,
// the generation-numbered CheckpointStore (rotation, quarantine, cross-
// process numbering), the CheckpointReader's located error reports -- every
// single-byte corruption and every truncation of a sealed blob must throw
// CheckpointError, never misbehave (the table-driven loops below run under
// ASan/UBSan in CI) -- and the CheckpointCadence spec parser.  Ends with the
// integration that motivates all of it: a storm sweep auto-checkpointing
// into a real store mid-run, whose persisted generations resume to results
// bit-identical to an uninterrupted run.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "analysis/checkpoint.hpp"
#include "analysis/checkpoint_store.hpp"
#include "analysis/protocols.hpp"
#include "analysis/storm.hpp"
#include "graph/graph.hpp"
#include "graph/rng.hpp"
#include "net/storm_model.hpp"
#include "sim/parallel_sweep.hpp"
#include "sim/run_control.hpp"
#include "topo/topologies.hpp"
#include "traffic/capacity.hpp"
#include "traffic/demand.hpp"
#include "util/atomic_file.hpp"

namespace pr {
namespace {

namespace fs = std::filesystem;

using analysis::CheckpointError;
using analysis::CheckpointReader;
using analysis::CheckpointStore;
using analysis::CheckpointStoreError;
using analysis::CheckpointStoreOptions;
using analysis::CheckpointWriter;
using analysis::checkpoint_digest;
using sim::CheckpointCadence;
using sim::RunControl;
using sim::SweepExecutor;

/// A per-test scratch directory under the system temp root, wiped on both
/// ends so a crashed earlier run cannot leak state into this one.
struct TempDir {
  fs::path path;

  TempDir() {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    path = fs::temp_directory_path() /
           (std::string("pr_ckpt_store_test_") + info->test_suite_name() + "_" +
            info->name());
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }

  [[nodiscard]] std::string str() const { return path.string(); }
  [[nodiscard]] std::string file(const std::string& name) const {
    return (path / name).string();
  }
};

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

/// A structurally valid sealed blob whose payload varies with `tag`, so two
/// generations are distinguishable byte-for-byte.
std::string sealed_blob(std::uint64_t tag) {
  CheckpointWriter w;
  w.u32(7);
  w.u64(tag);
  w.f64(-0.0);
  w.str("generation payload " + std::to_string(tag));
  return w.finish();
}

// ---------------------------------------------------------------------------
// util::atomic_write_file

TEST(AtomicFile, RoundTripReplaceAndNoTempLeftovers) {
  TempDir dir;
  const std::string target = dir.file("artifact.json");

  util::atomic_write_file(target, "first contents");
  EXPECT_EQ(read_file(target), "first contents");

  // Replacement, including binary bytes and an embedded NUL.
  const std::string binary = std::string("a\0b\xff", 4) + "tail";
  util::atomic_write_file(target, binary);
  EXPECT_EQ(read_file(target), binary);

  // The dot-temp must be gone after every successful write: the directory
  // holds exactly the target.
  std::size_t entries = 0;
  for (const auto& entry : fs::directory_iterator(dir.path)) {
    ++entries;
    EXPECT_EQ(entry.path().filename().string(), "artifact.json");
  }
  EXPECT_EQ(entries, 1u);
}

TEST(AtomicFile, FailureNamesThePathAndLeavesNoTarget) {
  TempDir dir;
  const std::string target = dir.file("no_such_subdir/artifact.json");
  try {
    util::atomic_write_file(target, "contents");
    FAIL() << "expected AtomicWriteError";
  } catch (const util::AtomicWriteError& e) {
    EXPECT_NE(std::string(e.what()).find("no_such_subdir"), std::string::npos)
        << e.what();
  }
  EXPECT_FALSE(fs::exists(target));
}

// ---------------------------------------------------------------------------
// CheckpointStore

TEST(CheckpointStoreTest, GenerationsAreMonotonicAcrossInstances) {
  TempDir dir;
  EXPECT_EQ(CheckpointStore::generation_filename(42), "ckpt-00000042.prckpt");

  {
    CheckpointStore store(dir.str());
    EXPECT_EQ(store.latest_generation(), 0u);
    EXPECT_FALSE(store.load_latest().has_value());
    EXPECT_EQ(store.persist(sealed_blob(1)), 1u);
    EXPECT_EQ(store.persist(sealed_blob(2)), 2u);
    EXPECT_EQ(store.latest_generation(), 2u);
    EXPECT_EQ(store.generations(), (std::vector<std::uint64_t>{1, 2}));
    EXPECT_TRUE(fs::exists(dir.file("ckpt-00000002.prckpt")));
  }

  // A new instance over the same directory -- a restarted process -- must
  // continue the numbering, not restart it (the supervisor orders the story
  // of a crash-looping sweep by generation number).
  CheckpointStore store(dir.str());
  EXPECT_EQ(store.latest_generation(), 2u);
  EXPECT_EQ(store.persist(sealed_blob(3)), 3u);
  const auto loaded = store.load_latest();
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->generation, 3u);
  EXPECT_EQ(loaded->blob, sealed_blob(3));
}

TEST(CheckpointStoreTest, RotationKeepsOnlyTheNewest) {
  TempDir dir;
  CheckpointStoreOptions options;
  options.keep_generations = 3;
  CheckpointStore store(dir.str(), options);
  for (std::uint64_t tag = 1; tag <= 6; ++tag) {
    EXPECT_EQ(store.persist(sealed_blob(tag)), tag);
    EXPECT_LE(store.generations().size(), 3u);
  }
  EXPECT_EQ(store.generations(), (std::vector<std::uint64_t>{4, 5, 6}));
  EXPECT_FALSE(fs::exists(dir.file("ckpt-00000001.prckpt")));
  const auto loaded = store.load_latest();
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->generation, 6u);
  EXPECT_EQ(loaded->blob, sealed_blob(6));
}

TEST(CheckpointStoreTest, RejectsKeepZeroAndForeignFiles) {
  TempDir dir;
  EXPECT_THROW(CheckpointStore(dir.str(), CheckpointStoreOptions{0}),
               CheckpointStoreError);

  // Stray files that merely look similar are ignored by the scan, not
  // parsed, not rotated, not quarantined.
  util::atomic_write_file(dir.file("ckpt-notanumber.prckpt"), "junk");
  util::atomic_write_file(dir.file("README"), "not a checkpoint");
  CheckpointStore store(dir.str());
  EXPECT_EQ(store.latest_generation(), 0u);
  EXPECT_TRUE(store.generations().empty());
  EXPECT_FALSE(store.load_latest().has_value());
  EXPECT_EQ(store.quarantined(), 0u);
  EXPECT_TRUE(fs::exists(dir.file("ckpt-notanumber.prckpt")));
}

TEST(CheckpointStoreTest, CorruptNewestIsQuarantinedWithFallback) {
  TempDir dir;
  CheckpointStore store(dir.str());
  store.persist(sealed_blob(1));
  store.persist(sealed_blob(2));

  // Bit-rot the newest generation on disk (overwrite, keep the name).
  std::string corrupt = sealed_blob(2);
  corrupt[corrupt.size() / 2] ^= 0x20;
  util::atomic_write_file(dir.file("ckpt-00000002.prckpt"), corrupt);

  const auto loaded = store.load_latest();
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->generation, 1u);
  EXPECT_EQ(loaded->blob, sealed_blob(1));
  EXPECT_EQ(store.quarantined(), 1u);

  // The evidence moved aside -- with a reason note -- instead of vanishing.
  EXPECT_FALSE(fs::exists(dir.file("ckpt-00000002.prckpt")));
  const std::string quarantined = dir.file("quarantine/ckpt-00000002.prckpt");
  ASSERT_TRUE(fs::exists(quarantined));
  EXPECT_EQ(read_file(quarantined), corrupt);
  const std::string reason = read_file(quarantined + ".reason");
  EXPECT_NE(reason.find("checksum mismatch"), std::string::npos) << reason;
  EXPECT_EQ(store.generations(), (std::vector<std::uint64_t>{1}));

  // The next persist still numbers PAST the quarantined generation.
  EXPECT_EQ(store.persist(sealed_blob(3)), 3u);
}

TEST(CheckpointStoreTest, AllGenerationsCorruptYieldsNullopt) {
  TempDir dir;
  CheckpointStore store(dir.str());
  store.persist(sealed_blob(1));
  store.persist(sealed_blob(2));
  util::atomic_write_file(dir.file("ckpt-00000001.prckpt"), "short");
  std::string truncated = sealed_blob(2);
  truncated.resize(truncated.size() - 3);
  util::atomic_write_file(dir.file("ckpt-00000002.prckpt"), truncated);

  EXPECT_FALSE(store.load_latest().has_value());
  EXPECT_EQ(store.quarantined(), 2u);
  EXPECT_TRUE(store.generations().empty());
}

// ---------------------------------------------------------------------------
// CheckpointReader diagnostics and corruption hardening

TEST(CheckpointReaderTest, ErrorsNameFieldAndOffset) {
  try {  // shorter than magic + checksum
    CheckpointReader r("tiny");
    FAIL() << "expected CheckpointError";
  } catch (const CheckpointError& e) {
    EXPECT_NE(std::string(e.what()).find("blob too short"), std::string::npos)
        << e.what();
  }
  try {  // right length, wrong magic
    CheckpointReader r("XXXXXXXX01234567");
    FAIL() << "expected CheckpointError";
  } catch (const CheckpointError& e) {
    EXPECT_NE(std::string(e.what()).find("bad magic at offset 0"),
              std::string::npos)
        << e.what();
  }
  try {  // sealed, then flipped: checksum must locate itself
    std::string blob = sealed_blob(5);
    blob[10] ^= 0x01;
    CheckpointReader r(blob);
    FAIL() << "expected CheckpointError";
  } catch (const CheckpointError& e) {
    EXPECT_NE(std::string(e.what()).find("checksum mismatch at offset"),
              std::string::npos)
        << e.what();
  }

  {  // reading past the payload names the field and the failing offset
    CheckpointWriter w;
    w.u32(9);
    const std::string blob = w.finish();
    CheckpointReader r(blob);
    EXPECT_EQ(r.u32(), 9u);
    try {
      (void)r.u64();
      FAIL() << "expected CheckpointError";
    } catch (const CheckpointError& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find("truncated u64"), std::string::npos) << what;
      EXPECT_NE(what.find("offset"), std::string::npos) << what;
    }
  }
  {  // a length prefix larger than the remaining payload: the str payload
    // read must fail by bounds check, never by reading past the buffer
    CheckpointWriter w;
    w.u64(1000);  // masquerades as a string length when misread
    const std::string blob = w.finish();
    CheckpointReader r(blob);
    try {
      (void)r.str();
      FAIL() << "expected CheckpointError";
    } catch (const CheckpointError& e) {
      EXPECT_NE(std::string(e.what()).find("str payload"), std::string::npos)
          << e.what();
    }
  }
}

/// Constructing a reader over `blob` and draining the sealed_blob schema.
/// Either step may throw; finishing silently with WRONG values is the only
/// failure mode (checked by the caller where values are predictable).
void drain_sealed_schema(const std::string& blob) {
  CheckpointReader r(blob);
  (void)r.u32();
  (void)r.u64();
  (void)r.f64();
  (void)r.str();
}

TEST(CheckpointReaderTest, EveryByteFlipAndTruncationIsDetected) {
  const std::string blob = sealed_blob(99);

  // Flip every bit of every byte in turn: magic, payload, length prefixes,
  // checksum.  Each mutation must throw CheckpointError -- the FNV-1a seal
  // catches payload flips, the magic check catches header flips -- and must
  // never crash or read out of bounds (this loop is the ASan/UBSan payload).
  for (std::size_t i = 0; i < blob.size(); ++i) {
    for (const unsigned char mask : {0x01, 0x10, 0x80}) {
      std::string mutated = blob;
      mutated[i] = static_cast<char>(static_cast<unsigned char>(mutated[i]) ^ mask);
      EXPECT_THROW(drain_sealed_schema(mutated), CheckpointError)
          << "byte " << i << " mask " << static_cast<int>(mask);
    }
  }

  // Every proper prefix must be rejected too (truncation at any point).
  for (std::size_t len = 0; len < blob.size(); ++len) {
    EXPECT_THROW(drain_sealed_schema(blob.substr(0, len)), CheckpointError)
        << "truncated to " << len << " bytes";
  }
}

TEST(CheckpointDigestTest, MatchesFnv1a64AndSeparatesBlobs) {
  // Published FNV-1a 64 test vectors: the digest is a stable cross-process
  // fingerprint, so its values are part of the tool-output contract.
  EXPECT_EQ(checkpoint_digest(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(checkpoint_digest("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(checkpoint_digest(sealed_blob(1)), checkpoint_digest(sealed_blob(1)));
  EXPECT_NE(checkpoint_digest(sealed_blob(1)), checkpoint_digest(sealed_blob(2)));
}

// ---------------------------------------------------------------------------
// CheckpointCadence parsing

TEST(CheckpointCadenceTest, ParsesUnitAndTimeTerms) {
  EXPECT_FALSE(CheckpointCadence{}.any());

  CheckpointCadence c = CheckpointCadence::parse("500");
  EXPECT_EQ(c.units, 500u);
  EXPECT_EQ(c.period.count(), 0);
  EXPECT_TRUE(c.any());

  EXPECT_EQ(CheckpointCadence::parse("500u").units, 500u);
  EXPECT_EQ(CheckpointCadence::parse("250ms").period,
            std::chrono::milliseconds(250));
  EXPECT_EQ(CheckpointCadence::parse("2s").period,
            std::chrono::milliseconds(2000));

  c = CheckpointCadence::parse("100u,250ms");
  EXPECT_EQ(c.units, 100u);
  EXPECT_EQ(c.period, std::chrono::milliseconds(250));

  // Order-insensitive.
  c = CheckpointCadence::parse("1s,42");
  EXPECT_EQ(c.units, 42u);
  EXPECT_EQ(c.period, std::chrono::milliseconds(1000));
}

TEST(CheckpointCadenceTest, RejectsGarbageNamingVarAndValue) {
  const char* bad[] = {
      "",        // empty spec
      "0",       // zero units
      "0ms",     // zero period
      "12x",     // unknown suffix
      "ms",      // no digits
      "100,200", // duplicate unit terms
      "1s,2s",   // duplicate time terms
      "100u,",   // empty trailing term
      ",100",    // empty leading term
      "-5",      // not a count
  };
  for (const char* spec : bad) {
    try {
      (void)CheckpointCadence::parse(spec, "PR_CKPT_EVERY");
      FAIL() << "expected std::invalid_argument for '" << spec << "'";
    } catch (const std::invalid_argument& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find("PR_CKPT_EVERY"), std::string::npos)
          << spec << ": " << what;
      if (*spec != '\0') {
        EXPECT_NE(what.find(spec), std::string::npos) << spec << ": " << what;
      }
    }
  }
}

TEST(CheckpointCadenceTest, FromEnvReadsPrCkptEvery) {
  ::unsetenv("PR_CKPT_EVERY");
  EXPECT_FALSE(CheckpointCadence::from_env().any());

  ::setenv("PR_CKPT_EVERY", "50u,10ms", 1);
  const CheckpointCadence c = CheckpointCadence::from_env();
  EXPECT_EQ(c.units, 50u);
  EXPECT_EQ(c.period, std::chrono::milliseconds(10));

  ::setenv("PR_CKPT_EVERY", "oops", 1);
  EXPECT_THROW((void)CheckpointCadence::from_env(), std::invalid_argument);
  ::unsetenv("PR_CKPT_EVERY");
}

// ---------------------------------------------------------------------------
// Executor-level auto-checkpointing

TEST(AutoCheckpointTest, PersistedCursorsAreMonotonicCanonicalPrefixes) {
  SweepExecutor executor(4);
  RunControl control;
  constexpr std::size_t kUnits = 400;

  // Reducer state: the canonical-order running sum of unit indices; after
  // prefix [0, k) it is exactly k*(k-1)/2, so a serialized snapshot proves
  // the watermark was frozen while serialize ran.
  std::uint64_t sum = 0;
  std::vector<std::pair<std::size_t, std::string>> persisted;

  sim::AutoCheckpoint ckpt;
  ckpt.cadence.units = 25;
  ckpt.cadence.period = std::chrono::milliseconds(5);
  ckpt.serialize = [&](std::size_t k) {
    return std::to_string(k) + ":" + std::to_string(sum);
  };
  ckpt.persist = [&](std::size_t k, std::string&& blob) {
    persisted.emplace_back(k, std::move(blob));
  };

  const sim::SweepOutcome outcome = executor.run_ordered(
      kUnits,
      [](std::size_t, sim::WorkerContext&) {
        std::this_thread::sleep_for(std::chrono::microseconds(300));
      },
      [&](std::size_t unit) { sum += unit; }, control, ckpt);

  EXPECT_TRUE(outcome.complete());
  EXPECT_EQ(sum, static_cast<std::uint64_t>(kUnits) * (kUnits - 1) / 2);
  EXPECT_EQ(outcome.checkpoint_failures, 0u);
  EXPECT_EQ(outcome.auto_checkpoints, persisted.size());
  ASSERT_GE(persisted.size(), 1u) << "sweep finished before the first tick?";

  std::size_t last = 0;
  for (const auto& [k, blob] : persisted) {
    EXPECT_GT(k, last) << "persisted cursors must be strictly increasing";
    EXPECT_LE(k, kUnits);
    last = k;
    // The blob is the sealed prefix [0, k): sum frozen at k*(k-1)/2.
    const std::uint64_t prefix_sum =
        static_cast<std::uint64_t>(k) * (k - 1) / 2;
    EXPECT_EQ(blob, std::to_string(k) + ":" + std::to_string(prefix_sum));
  }
}

TEST(AutoCheckpointTest, FailuresAreCountedNeverFatal) {
  SweepExecutor executor(2);
  RunControl control;
  std::uint64_t sum = 0;

  sim::AutoCheckpoint ckpt;
  ckpt.cadence.period = std::chrono::milliseconds(2);
  ckpt.serialize = [](std::size_t) -> std::string {
    throw std::runtime_error("serializer down");
  };
  ckpt.persist = [](std::size_t, std::string&&) {};

  const sim::SweepOutcome outcome = executor.run_ordered(
      200,
      [](std::size_t, sim::WorkerContext&) {
        std::this_thread::sleep_for(std::chrono::microseconds(300));
      },
      [&](std::size_t unit) { sum += unit; }, control, ckpt);

  // Checkpointing is durability only: the sweep completes, results are
  // intact, the failures are merely counted.
  EXPECT_TRUE(outcome.complete());
  EXPECT_EQ(sum, 200ull * 199 / 2);
  EXPECT_EQ(outcome.auto_checkpoints, 0u);
  EXPECT_GE(outcome.checkpoint_failures, 1u);
}

// ---------------------------------------------------------------------------
// Storm integration: auto-checkpoint into a real store, resume bit-identical

TEST(AutoCheckpointTest, StormGenerationsResumeBitIdentical) {
  TempDir dir;
  graph::Graph g = topo::abilene();
  analysis::ProtocolSuite suite(g);
  const traffic::TrafficMatrix demand =
      traffic::gravity_demand(g, 1e5, traffic::GravityMass::kDegree);
  const traffic::CapacityPlan plan = traffic::CapacityPlan::uniform(g, 5e4);
  graph::Rng catalog_rng{4};
  const net::SrlgCatalog catalog = net::random_srlgs(g, 6, 3, catalog_rng);
  const net::IndependentOutages model =
      net::IndependentOutages::uniform(catalog, 0.2);
  const std::vector<analysis::NamedFactory> protocols = {
      suite.spf(), suite.reconvergence()};
  analysis::StormSweepConfig config;
  config.scenarios = 600;
  config.seed = 77;
  config.top_k = 5;

  // The uninterrupted reference, reduced to its final checkpoint bytes: two
  // runs agree exactly iff their blobs (which serialize every reducer field
  // plus the cursor) agree byte-for-byte.
  std::string reference;
  {
    SweepExecutor serial(1);
    RunControl control;
    analysis::StormRunOptions options;
    options.control = &control;
    const analysis::StormRunResult run = analysis::run_storm_experiment_resilient(
        g, demand, plan, model, protocols, config, serial, options);
    ASSERT_TRUE(run.complete());
    reference = run.checkpoint;
    ASSERT_FALSE(reference.empty());
  }

  // The instrumented run: auto-checkpoint every 25 scenarios or 1 ms into a
  // real CheckpointStore, at 4 threads.
  CheckpointStore store(dir.str());
  std::vector<std::size_t> cursors;
  {
    SweepExecutor executor(4);
    RunControl control;
    analysis::StormRunOptions options;
    options.control = &control;
    options.checkpoint_cadence.units = 25;
    options.checkpoint_cadence.period = std::chrono::milliseconds(1);
    options.persist_checkpoint = [&](std::size_t completed, std::string&& blob) {
      cursors.push_back(completed);
      store.persist(blob);
    };
    const analysis::StormRunResult run = analysis::run_storm_experiment_resilient(
        g, demand, plan, model, protocols, config, executor, options);
    ASSERT_TRUE(run.complete());
    EXPECT_EQ(run.outcome.auto_checkpoints, cursors.size());
    // The final state equals the reference regardless of checkpointing.
    EXPECT_EQ(run.checkpoint, reference);
  }
  ASSERT_GE(cursors.size(), 1u) << "sweep outran every cadence tick?";
  for (std::size_t i = 1; i < cursors.size(); ++i) {
    EXPECT_GT(cursors[i], cursors[i - 1]);
  }

  // Auto-checkpointing an uncontrolled run is a configuration bug.
  {
    SweepExecutor executor(2);
    analysis::StormRunOptions options;
    options.checkpoint_cadence.units = 10;
    options.persist_checkpoint = [](std::size_t, std::string&&) {};
    EXPECT_THROW((void)analysis::run_storm_experiment_resilient(
                     g, demand, plan, model, protocols, config, executor,
                     options),
                 std::invalid_argument);
  }

  // Resume from the newest stored generation -- the crash-recovery path the
  // supervisor exercises across processes, here in-process -- and finish to
  // the reference bytes.
  const auto latest = store.load_latest();
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(latest->generation, store.generations().back());
  {
    SweepExecutor executor(2);
    RunControl control;
    analysis::StormRunOptions options;
    options.control = &control;
    options.resume_from = latest->blob;
    const analysis::StormRunResult resumed = analysis::run_storm_experiment_resilient(
        g, demand, plan, model, protocols, config, executor, options);
    EXPECT_TRUE(resumed.resumed);
    ASSERT_TRUE(resumed.complete());
    EXPECT_EQ(resumed.completed_scenarios, config.scenarios);
    EXPECT_EQ(resumed.checkpoint, reference);
  }
}

}  // namespace
}  // namespace pr
