// Checkpoint/resume contract of run_storm_experiment_resilient: a storm
// sweep interrupted by ANY stop cause -- budget, deadline, cancel, injected
// worker exception, malformed scenario -- and resumed from its checkpoint
// blob (possibly in a different executor, at a different thread count, over
// several hops) must finish to reducer outputs BIT-IDENTICAL to an
// uninterrupted run.  Also covers the checkpoint codec's rejection paths:
// tampered, truncated and mismatched-config blobs all throw CheckpointError
// instead of resuming into silently wrong state.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "analysis/checkpoint.hpp"
#include "analysis/protocols.hpp"
#include "analysis/storm.hpp"
#include "graph/graph.hpp"
#include "graph/rng.hpp"
#include "net/storm_model.hpp"
#include "sim/fault_plan.hpp"
#include "sim/parallel_sweep.hpp"
#include "sim/run_control.hpp"
#include "topo/topologies.hpp"
#include "traffic/capacity.hpp"
#include "traffic/demand.hpp"

namespace pr {
namespace {

using analysis::CheckpointError;
using analysis::StormExperimentResult;
using analysis::StormRunOptions;
using analysis::StormRunResult;
using analysis::StormSweepConfig;
using graph::Graph;
using net::IndependentOutages;
using net::SrlgCatalog;
using sim::FaultPlan;
using sim::RunControl;
using sim::StopReason;
using sim::SweepExecutor;

struct ResumeFixture {
  Graph g = topo::abilene();
  analysis::ProtocolSuite suite{g};
  traffic::TrafficMatrix demand =
      traffic::gravity_demand(g, 1e5, traffic::GravityMass::kDegree);
  traffic::CapacityPlan plan = traffic::CapacityPlan::uniform(g, 5e4);
  graph::Rng catalog_rng{4};
  SrlgCatalog catalog = net::random_srlgs(g, 6, 3, catalog_rng);
  IndependentOutages model = IndependentOutages::uniform(catalog, 0.2);
  std::vector<analysis::NamedFactory> protocols = {suite.spf(),
                                                   suite.reconvergence()};
  StormSweepConfig config = [] {
    StormSweepConfig c;
    c.scenarios = 300;
    c.seed = 77;
    c.top_k = 5;
    return c;
  }();

  /// The uninterrupted reference every interrupted-then-resumed run must
  /// reproduce bit-for-bit.
  [[nodiscard]] StormExperimentResult reference() {
    SweepExecutor serial(1);
    return analysis::run_storm_experiment(g, demand, plan, model, protocols,
                                          config, serial);
  }

  [[nodiscard]] StormRunResult run(SweepExecutor& executor,
                                   const StormRunOptions& options = {}) {
    return analysis::run_storm_experiment_resilient(
        g, demand, plan, model, protocols, config, executor, options);
  }
};

/// Field-by-field bit-identity over every reducer output.
void expect_identical(const StormExperimentResult& want,
                      const StormExperimentResult& got) {
  EXPECT_EQ(got.scenarios, want.scenarios);
  EXPECT_EQ(got.flows_per_scenario, want.flows_per_scenario);
  EXPECT_EQ(got.offered_pps, want.offered_pps);
  EXPECT_EQ(got.calm_scenarios, want.calm_scenarios);
  EXPECT_EQ(got.disconnected_scenarios, want.disconnected_scenarios);
  EXPECT_TRUE(got.failed_groups == want.failed_groups);
  EXPECT_TRUE(got.failed_edges == want.failed_edges);
  ASSERT_EQ(got.protocols.size(), want.protocols.size());
  for (std::size_t i = 0; i < want.protocols.size(); ++i) {
    const auto& a = want.protocols[i];
    const auto& b = got.protocols[i];
    EXPECT_EQ(a.name, b.name);
    EXPECT_TRUE(a.utilization == b.utilization) << a.name;
    EXPECT_TRUE(a.stretch == b.stretch) << a.name;
    EXPECT_EQ(a.quantiles, b.quantiles) << a.name;
    EXPECT_EQ(a.utilization_quantiles, b.utilization_quantiles) << a.name;
    EXPECT_EQ(a.stretch_quantiles, b.stretch_quantiles) << a.name;
    EXPECT_EQ(a.delivered_pps, b.delivered_pps) << a.name;
    EXPECT_EQ(a.lost_pps, b.lost_pps) << a.name;
    EXPECT_EQ(a.stranded_pps, b.stranded_pps) << a.name;
    EXPECT_EQ(a.overloaded_links, b.overloaded_links) << a.name;
    EXPECT_EQ(a.overloaded_scenarios, b.overloaded_scenarios) << a.name;
    EXPECT_EQ(a.lossy_scenarios, b.lossy_scenarios) << a.name;
    EXPECT_EQ(a.rerouted_flows, b.rerouted_flows) << a.name;
    ASSERT_EQ(a.worst.size(), b.worst.size()) << a.name;
    for (std::size_t k = 0; k < a.worst.size(); ++k) {
      EXPECT_EQ(a.worst[k].key, b.worst[k].key) << a.name;
      EXPECT_EQ(a.worst[k].id, b.worst[k].id) << a.name;
      EXPECT_EQ(a.worst[k].value.max_utilization,
                b.worst[k].value.max_utilization)
          << a.name;
      EXPECT_EQ(a.worst[k].value.max_stretch, b.worst[k].value.max_stretch)
          << a.name;
      EXPECT_EQ(a.worst[k].value.lost_pps, b.worst[k].value.lost_pps) << a.name;
      EXPECT_EQ(a.worst[k].value.stranded_pps, b.worst[k].value.stranded_pps)
          << a.name;
      EXPECT_EQ(a.worst[k].value.failed_groups, b.worst[k].value.failed_groups)
          << a.name;
      EXPECT_EQ(a.worst[k].value.failed_edges, b.worst[k].value.failed_edges)
          << a.name;
    }
  }
}

/// Resumes `blob` to completion (no further interruption) and checks the
/// final result against the uninterrupted reference.
void resume_and_verify(ResumeFixture& f, const std::string& blob,
                       const StormExperimentResult& want,
                       std::size_t threads = 2) {
  SweepExecutor executor(threads);
  RunControl control;  // unconstrained: runs the remainder to completion
  StormRunOptions options;
  options.control = &control;
  options.resume_from = blob;
  const StormRunResult finished = f.run(executor, options);
  EXPECT_TRUE(finished.resumed);
  EXPECT_TRUE(finished.complete());
  EXPECT_EQ(finished.completed_scenarios, f.config.scenarios);
  expect_identical(want, finished.result);
}

TEST(StormResume, ResilientUncontrolledMatchesLegacy) {
  ResumeFixture f;
  const StormExperimentResult want = f.reference();
  SweepExecutor executor(4);
  const StormRunResult run = f.run(executor);
  EXPECT_TRUE(run.complete());
  EXPECT_FALSE(run.resumed);
  EXPECT_EQ(run.completed_scenarios, f.config.scenarios);
  EXPECT_FALSE(run.checkpoint.empty());
  EXPECT_TRUE(run.checkpoint_error.empty());
  expect_identical(want, run.result);
}

TEST(StormResume, BudgetInterruptThenResumeIsBitIdentical) {
  ResumeFixture f;
  const StormExperimentResult want = f.reference();
  // Interrupt at assorted cut points x thread counts, resume at a DIFFERENT
  // thread count: the checkpoint must not remember how it was produced.
  const std::size_t splits[] = {1, 37, 150, 299};
  const std::size_t threads[] = {1, 2, 8};
  for (const std::size_t split : splits) {
    for (std::size_t t = 0; t < 3; ++t) {
      SweepExecutor executor(threads[t]);
      RunControl control;
      control.set_unit_budget(split);
      StormRunOptions options;
      options.control = &control;
      const StormRunResult partial = f.run(executor, options);
      EXPECT_EQ(partial.outcome.stop_reason, StopReason::kBudget);
      EXPECT_EQ(partial.completed_scenarios, split);
      EXPECT_EQ(partial.result.scenarios, split);
      ASSERT_FALSE(partial.checkpoint.empty());
      resume_and_verify(f, partial.checkpoint, want,
                        /*threads=*/threads[(t + 1) % 3]);
    }
  }
}

TEST(StormResume, PartialResultIsItselfACleanPrefix) {
  // An interrupted run's in-memory reducers must equal a run whose TARGET was
  // the cut point: partial results are usable, not just resumable.
  ResumeFixture f;
  SweepExecutor executor(4);
  RunControl control;
  control.set_unit_budget(120);
  StormRunOptions options;
  options.control = &control;
  const StormRunResult partial = f.run(executor, options);
  ASSERT_EQ(partial.completed_scenarios, 120u);

  ResumeFixture small;
  small.config.scenarios = 120;
  expect_identical(small.reference(), partial.result);
}

TEST(StormResume, MultiStageResumeChain) {
  // 300 scenarios in budget-50 hops: six checkpoints, each feeding the next
  // process; the final reducers match the one-shot run exactly.
  ResumeFixture f;
  const StormExperimentResult want = f.reference();
  std::string blob;
  std::size_t done = 0;
  std::size_t hops = 0;
  StormRunResult last;
  while (done < f.config.scenarios) {
    SweepExecutor executor(1 + hops % 3);  // vary the thread count per hop
    RunControl control;
    control.set_unit_budget(50);
    StormRunOptions options;
    options.control = &control;
    options.resume_from = blob;
    last = f.run(executor, options);
    EXPECT_EQ(last.resumed, !blob.empty());
    ASSERT_FALSE(last.checkpoint.empty());
    ASSERT_GT(last.completed_scenarios, done) << "chain must make progress";
    done = last.completed_scenarios;
    blob = last.checkpoint;
    ++hops;
  }
  EXPECT_EQ(hops, 6u);
  EXPECT_TRUE(last.complete());
  expect_identical(want, last.result);
}

TEST(StormResume, InjectedWorkerExceptionThenResume) {
  ResumeFixture f;
  const StormExperimentResult want = f.reference();
  SweepExecutor executor(4);
  RunControl control;
  FaultPlan faults;
  faults.throw_in_unit(120);
  control.set_fault_plan(&faults);
  StormRunOptions options;
  options.control = &control;
  const StormRunResult partial = f.run(executor, options);
  EXPECT_EQ(partial.outcome.stop_reason, StopReason::kUnitError);
  EXPECT_EQ(partial.completed_scenarios, 120u);
  ASSERT_NE(partial.outcome.first_error(), nullptr);
  EXPECT_EQ(partial.outcome.first_error()->unit, 120u);
  ASSERT_FALSE(partial.checkpoint.empty());
  resume_and_verify(f, partial.checkpoint, want);
}

TEST(StormResume, MalformedScenarioIsContainedAndResumable) {
  ResumeFixture f;
  const StormExperimentResult want = f.reference();
  SweepExecutor executor(2);
  RunControl control;
  FaultPlan faults;
  faults.malformed_scenario(40);
  control.set_fault_plan(&faults);
  StormRunOptions options;
  options.control = &control;
  const StormRunResult partial = f.run(executor, options);
  EXPECT_EQ(partial.outcome.stop_reason, StopReason::kUnitError);
  EXPECT_EQ(partial.completed_scenarios, 40u);
  ASSERT_NE(partial.outcome.first_error(), nullptr);
  EXPECT_NE(partial.outcome.first_error()->what.find("malformed scenario"),
            std::string::npos);
  EXPECT_NE(partial.outcome.first_error()->what.find("out of range"),
            std::string::npos);
  ASSERT_FALSE(partial.checkpoint.empty());
  resume_and_verify(f, partial.checkpoint, want);
}

TEST(StormResume, DeadlineInterruptThenResume) {
  ResumeFixture f;
  const StormExperimentResult want = f.reference();
  SweepExecutor executor(2);
  RunControl control;
  control.set_timeout(std::chrono::milliseconds(2));
  StormRunOptions options;
  options.control = &control;
  const StormRunResult partial = f.run(executor, options);
  ASSERT_FALSE(partial.checkpoint.empty());
  if (partial.complete()) {
    // The machine outran the deadline; the contract below is vacuous but the
    // result must still be right.
    expect_identical(want, partial.result);
    return;
  }
  EXPECT_EQ(partial.outcome.stop_reason, StopReason::kDeadline);
  EXPECT_LT(partial.completed_scenarios, f.config.scenarios);
  resume_and_verify(f, partial.checkpoint, want);
}

TEST(StormResume, CancelFromAnotherThreadThenResume) {
  ResumeFixture f;
  const StormExperimentResult want = f.reference();
  SweepExecutor executor(2);
  RunControl control;
  std::thread canceller([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    control.cancel();
  });
  StormRunOptions options;
  options.control = &control;
  const StormRunResult partial = f.run(executor, options);
  canceller.join();
  ASSERT_FALSE(partial.checkpoint.empty());
  if (partial.complete()) {
    expect_identical(want, partial.result);
    return;
  }
  EXPECT_EQ(partial.outcome.stop_reason, StopReason::kCancelled);
  resume_and_verify(f, partial.checkpoint, want);
}

TEST(StormResume, CheckpointBytesEqualAcrossThreadCounts) {
  ResumeFixture f;
  std::string baseline;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    SweepExecutor executor(threads);
    RunControl control;
    control.set_unit_budget(150);
    StormRunOptions options;
    options.control = &control;
    const StormRunResult partial = f.run(executor, options);
    ASSERT_FALSE(partial.checkpoint.empty());
    if (baseline.empty()) {
      baseline = partial.checkpoint;
    } else {
      EXPECT_EQ(partial.checkpoint, baseline) << threads << " threads";
    }
  }
}

TEST(StormResume, CheckpointFailureKeepsInMemoryResult) {
  ResumeFixture f;
  // A prior good checkpoint to prove older blobs stay resumable.
  std::string earlier;
  {
    SweepExecutor executor(2);
    RunControl control;
    control.set_unit_budget(50);
    StormRunOptions options;
    options.control = &control;
    earlier = f.run(executor, options).checkpoint;
    ASSERT_FALSE(earlier.empty());
  }

  SweepExecutor executor(2);
  RunControl control;
  control.set_unit_budget(100);
  FaultPlan faults;
  faults.fail_at_checkpoint();
  control.set_fault_plan(&faults);
  StormRunOptions options;
  options.control = &control;
  const StormRunResult partial = f.run(executor, options);
  EXPECT_TRUE(partial.checkpoint.empty());
  EXPECT_NE(partial.checkpoint_error.find("injected checkpoint failure"),
            std::string::npos);
  // The sweep itself succeeded: in-memory reducers are the clean 100-prefix.
  EXPECT_EQ(partial.outcome.stop_reason, StopReason::kBudget);
  EXPECT_EQ(partial.completed_scenarios, 100u);
  ResumeFixture small;
  small.config.scenarios = 100;
  expect_identical(small.reference(), partial.result);

  // And the earlier blob still resumes to the full-run answer.
  resume_and_verify(f, earlier, f.reference());
}

TEST(StormResume, RejectsCorruptAndMismatchedBlobs) {
  ResumeFixture f;
  std::string blob;
  {
    SweepExecutor executor(2);
    RunControl control;
    control.set_unit_budget(80);
    StormRunOptions options;
    options.control = &control;
    blob = f.run(executor, options).checkpoint;
    ASSERT_FALSE(blob.empty());
  }
  SweepExecutor executor(2);
  RunControl control;
  StormRunOptions options;
  options.control = &control;

  {  // flipped byte in the middle -> checksum failure
    std::string tampered = blob;
    tampered[tampered.size() / 2] ^= 0x40;
    options.resume_from = tampered;
    EXPECT_THROW((void)f.run(executor, options), CheckpointError);
  }
  {  // truncated blob
    options.resume_from = std::string_view(blob).substr(0, blob.size() - 9);
    EXPECT_THROW((void)f.run(executor, options), CheckpointError);
  }
  {  // not a checkpoint at all
    options.resume_from = "definitely not a checkpoint";
    EXPECT_THROW((void)f.run(executor, options), CheckpointError);
  }
  {  // wrong experiment: different seed
    ResumeFixture other;
    other.config.seed = 78;
    SweepExecutor ex(2);
    RunControl ctl;
    StormRunOptions opt;
    opt.control = &ctl;
    opt.resume_from = blob;
    EXPECT_THROW((void)other.run(ex, opt), CheckpointError);
  }
  {  // wrong experiment: different protocol list
    ResumeFixture other;
    other.protocols = {other.suite.spf()};
    SweepExecutor ex(2);
    RunControl ctl;
    StormRunOptions opt;
    opt.control = &ctl;
    opt.resume_from = blob;
    EXPECT_THROW((void)other.run(ex, opt), CheckpointError);
  }
  {  // wrong experiment: different scenario target
    ResumeFixture other;
    other.config.scenarios = 400;
    SweepExecutor ex(2);
    RunControl ctl;
    StormRunOptions opt;
    opt.control = &ctl;
    opt.resume_from = blob;
    EXPECT_THROW((void)other.run(ex, opt), CheckpointError);
  }

  // The pristine blob still works after all the rejected attempts.
  options.resume_from = blob;
  const StormRunResult finished = f.run(executor, options);
  EXPECT_TRUE(finished.complete());
  expect_identical(f.reference(), finished.result);
}

}  // namespace
}  // namespace pr
