// Unit tests for the routing database and the distance-discriminator column.
#include "route/routing_db.hpp"

#include <gtest/gtest.h>

#include "graph/dijkstra.hpp"
#include "graph/generators.hpp"

namespace pr::route {
namespace {

TEST(RoutingDb, NextHopsOnRing) {
  const auto g = graph::ring(5);
  const RoutingDb db(g);
  // From node 1 to node 0: direct edge.
  EXPECT_EQ(g.dart_head(db.next_dart(1, 0)), 0U);
  // Destination entry has no next hop.
  EXPECT_EQ(db.next_dart(0, 0), graph::kInvalidDart);
  EXPECT_TRUE(db.reachable(3, 0));
  EXPECT_DOUBLE_EQ(db.cost(3, 0), 2.0);
  EXPECT_EQ(db.hops(3, 0), 2U);
}

TEST(RoutingDb, HopDiscriminatorIsStrictlyDecreasingAlongPaths) {
  graph::Rng rng(21);
  const auto g = graph::random_two_edge_connected(12, 6, rng);
  const RoutingDb db(g);
  for (graph::NodeId t = 0; t < g.node_count(); ++t) {
    for (graph::NodeId v = 0; v < g.node_count(); ++v) {
      if (v == t) continue;
      const auto next = g.dart_head(db.next_dart(v, t));
      // The paper requires a strictly increasing function of the links along
      // the shortest path; equivalently it strictly decreases hop by hop.
      EXPECT_LT(db.discriminator(next, t), db.discriminator(v, t));
    }
  }
}

TEST(RoutingDb, WeightedDiscriminator) {
  graph::Graph g(3);
  g.add_edge(0, 1, 2.0);
  g.add_edge(1, 2, 3.0);
  const RoutingDb db(g, nullptr, DiscriminatorKind::kWeightedCost);
  EXPECT_EQ(db.discriminator(0, 2), 5U);
  EXPECT_EQ(db.discriminator(1, 2), 3U);
  EXPECT_EQ(db.discriminator_kind(), DiscriminatorKind::kWeightedCost);
}

TEST(RoutingDb, WeightedDiscriminatorRejectsFractionalWeights) {
  graph::Graph g(2);
  g.add_edge(0, 1, 1.5);
  EXPECT_THROW(RoutingDb(g, nullptr, DiscriminatorKind::kWeightedCost),
               std::invalid_argument);
  // Hop discriminators do not care about fractional weights.
  EXPECT_NO_THROW(RoutingDb(g, nullptr, DiscriminatorKind::kHops));
}

TEST(RoutingDb, DiscriminatorThrowsWhenUnreachable) {
  graph::Graph g(3);
  g.add_edge(0, 1);
  const RoutingDb db(g);
  EXPECT_FALSE(db.reachable(0, 2));
  EXPECT_THROW((void)db.discriminator(0, 2), std::logic_error);
}

TEST(RoutingDb, MaxDiscriminatorEqualsHopDiameter) {
  const auto g = graph::ring(8);
  const RoutingDb db(g);
  EXPECT_EQ(db.max_discriminator(), graph::hop_diameter(g));
}

TEST(RoutingDb, ExcludedEdgesChangeRoutes) {
  const auto g = graph::ring(4);
  graph::EdgeSet down(g.edge_count());
  down.insert(*g.find_edge(0, 1));
  const RoutingDb db(g, &down);
  EXPECT_EQ(db.hops(0, 1), 3U);  // forced the long way round
}

TEST(RoutingDb, MemoryAccountingScalesWithNodeCount) {
  const auto small = graph::ring(4);
  const auto large = graph::ring(40);
  EXPECT_LT(RoutingDb(small).memory_bytes_per_router(),
            RoutingDb(large).memory_bytes_per_router());
}

}  // namespace
}  // namespace pr::route
