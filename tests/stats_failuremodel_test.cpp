// Tests for the summary-statistics helper and the extended failure models
// (node outages).
#include <gtest/gtest.h>

#include <limits>

#include "analysis/coverage.hpp"
#include "analysis/protocols.hpp"
#include "analysis/stats.hpp"
#include "graph/generators.hpp"
#include "net/failure_model.hpp"
#include "topo/topologies.hpp"

namespace pr::analysis {
namespace {

TEST(Summary, BasicMoments) {
  const std::vector<double> samples = {1.0, 2.0, 3.0, 4.0};
  const auto s = summarize(samples);
  EXPECT_EQ(s.count, 4U);
  EXPECT_EQ(s.infinite, 0U);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.p50, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
}

TEST(Summary, InfiniteEntriesCountedSeparately) {
  const std::vector<double> samples = {1.0, std::numeric_limits<double>::infinity(),
                                       3.0};
  const auto s = summarize(samples);
  EXPECT_EQ(s.count, 2U);
  EXPECT_EQ(s.infinite, 1U);
  EXPECT_DOUBLE_EQ(s.mean, 2.0);
}

TEST(Summary, EmptyAndAllInfinite) {
  EXPECT_EQ(summarize({}).count, 0U);
  const std::vector<double> infs = {std::numeric_limits<double>::infinity()};
  const auto s = summarize(infs);
  EXPECT_EQ(s.count, 0U);
  EXPECT_EQ(s.infinite, 1U);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(Summary, PercentilesNearestRank) {
  std::vector<double> samples;
  for (int i = 1; i <= 100; ++i) samples.push_back(i);
  const auto s = summarize(samples);
  EXPECT_DOUBLE_EQ(s.p50, 50.0);
  EXPECT_DOUBLE_EQ(s.p90, 90.0);
  EXPECT_DOUBLE_EQ(s.p99, 99.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
}

TEST(Summary, SingleSample) {
  const std::vector<double> one = {7.5};
  const auto s = summarize(one);
  EXPECT_DOUBLE_EQ(s.p50, 7.5);
  EXPECT_DOUBLE_EQ(s.p99, 7.5);
  EXPECT_DOUBLE_EQ(s.mean, 7.5);
}

TEST(Summary, Rendering) {
  const std::vector<double> samples = {1.0, 2.0,
                                       std::numeric_limits<double>::infinity()};
  const auto text = to_string(summarize(samples));
  EXPECT_NE(text.find("mean 1.50"), std::string::npos);
  EXPECT_NE(text.find("+1 inf"), std::string::npos);
}

TEST(NodeFailures, OneScenarioPerConnectedNode) {
  const auto g = topo::abilene();
  const auto scenarios = net::all_node_failures(g);
  EXPECT_EQ(scenarios.size(), g.node_count());  // no isolated nodes in Abilene
  // Seattle has degree 2: its scenario fails exactly those 2 links.
  const auto seattle = *g.find_node("Seattle");
  EXPECT_EQ(scenarios[seattle].size(), g.degree(seattle));
}

TEST(NodeFailures, IsolatedNodesSkipped) {
  graph::Graph g(3);
  g.add_edge(0, 1);  // node 2 isolated
  EXPECT_EQ(net::all_node_failures(g).size(), 2U);
}

TEST(NodeFailures, PrSurvivesEveryNodeOutageOnPlanarTopologies) {
  // The title's promise: node failures are covered too.  On Abilene and
  // GEANT (planar, 2-connected except for the dead node's own pairs), every
  // pair not involving the failed node must be delivered.
  for (const auto& g : {topo::abilene(), topo::geant()}) {
    const ProtocolSuite suite(g);
    const auto scenarios = net::all_node_failures(g);
    const auto result = run_coverage_experiment(g, scenarios, {suite.pr()});
    EXPECT_EQ(result.protocols[0].dropped_reachable, 0U);
    EXPECT_DOUBLE_EQ(result.protocols[0].coverage(), 1.0);
  }
}

TEST(NodeFailures, PairsThroughDeadRouterClassifiedPartitioned) {
  const auto g = graph::ring(4);
  const ProtocolSuite suite(g);
  std::vector<graph::EdgeSet> scenarios = net::all_node_failures(g);
  const auto result = run_coverage_experiment(g, scenarios, {suite.pr()});
  // On a 4-ring, killing any node leaves the other three connected: the only
  // unreachable pairs are those with the dead node as source or sink, and
  // those count as partitioned, never as protocol failures.
  EXPECT_EQ(result.protocols[0].dropped_reachable, 0U);
  EXPECT_GT(result.protocols[0].dropped_partitioned, 0U);
}

}  // namespace
}  // namespace pr::analysis
