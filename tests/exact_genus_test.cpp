// Exact minimum-genus enumeration: ground truth for the heuristic search,
// plus DOT export and trace rendering utilities.
#include <gtest/gtest.h>

#include "embed/genus_opt.hpp"
#include "graph/generators.hpp"
#include "graph/graphio.hpp"
#include "net/forwarding.hpp"
#include "route/routing_db.hpp"
#include "route/static_spf.hpp"
#include "topo/topologies.hpp"

namespace pr {
namespace {

TEST(ExactGenus, K4IsPlanar) {
  const auto result = embed::exact_minimum_genus(graph::complete(4));
  EXPECT_EQ(result.genus, 0);
  EXPECT_EQ(result.rotations_tested, 16U);  // (3-1)!^4
  EXPECT_GT(result.minimum_pr_safe, 0U);
}

TEST(ExactGenus, K5IsExactlyOne) {
  const auto result = embed::exact_minimum_genus(graph::k5());
  EXPECT_EQ(result.genus, 1);
  EXPECT_EQ(result.rotations_tested, 7776U);  // (4-1)!^5
  EXPECT_GT(result.minimum_count, 0U);
}

TEST(ExactGenus, K33IsExactlyOne) {
  const auto result = embed::exact_minimum_genus(graph::k33());
  EXPECT_EQ(result.genus, 1);
  EXPECT_EQ(result.rotations_tested, 64U);  // (3-1)!^6
}

TEST(ExactGenus, PetersenIsExactlyOne) {
  const auto result = embed::exact_minimum_genus(graph::petersen());
  EXPECT_EQ(result.genus, 1);
  EXPECT_EQ(result.rotations_tested, 1024U);  // (3-1)!^10
}

TEST(ExactGenus, Figure1IsPlanarWithSafeMinima) {
  const auto g = topo::figure1();
  const auto result = embed::exact_minimum_genus(g);
  EXPECT_EQ(result.genus, 0);
  // Planar embeddings of 2-edge-connected graphs are always PR-safe.
  EXPECT_EQ(result.minimum_pr_safe, result.minimum_count);
}

TEST(ExactGenus, HeuristicMatchesExactOnSmallGraphs) {
  // torus(3,3) is excluded: its degree-4 nodes give a 6^9 ~ 10M rotation
  // space, beyond what a unit test should exhaust.
  for (const auto& g : {graph::complete(4), graph::k33(), graph::petersen()}) {
    const auto exact = embed::exact_minimum_genus(g, 5000000);
    const auto heuristic = embed::minimize_genus(g);
    EXPECT_EQ(heuristic.genus, exact.genus);
  }
}

TEST(ExactGenus, RefusesHugeSpaces) {
  EXPECT_THROW((void)embed::exact_minimum_genus(graph::complete(7), 1000),
               std::invalid_argument);
}

TEST(ExactGenus, WitnessRotationIsValid) {
  // The witness rotation references the input graph, which must stay alive.
  const auto g = graph::petersen();
  const auto result = embed::exact_minimum_genus(g);
  const auto faces = embed::trace_faces(result.rotation);
  EXPECT_NO_THROW(embed::check_face_set(result.rotation, faces));
  EXPECT_EQ(embed::euler_genus(g, faces), result.genus);
}

TEST(ToDot, RendersNodesEdgesAndFailures) {
  auto g = topo::figure1();
  graph::EdgeSet failed(g.edge_count());
  failed.insert(*g.find_edge(*g.find_node("D"), *g.find_node("E")));
  const auto dot = graph::to_dot(g, &failed);
  EXPECT_NE(dot.find("graph network {"), std::string::npos);
  EXPECT_NE(dot.find("\"A\" -- \"B\""), std::string::npos);
  EXPECT_NE(dot.find("color=red"), std::string::npos);
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);
  EXPECT_NE(dot.find("label=\"4\""), std::string::npos);  // weight-4 links
}

TEST(ToDot, NoFailureDecorationWhenHealthy) {
  const auto g = graph::ring(3);
  const auto dot = graph::to_dot(g);
  EXPECT_EQ(dot.find("color=red"), std::string::npos);
}

TEST(TraceToString, DeliveredAndDropped) {
  graph::Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  const route::RoutingDb db(g);
  route::StaticSpf spf(db);
  net::Network network(g);
  const auto ok = net::route_packet(network, spf, 0, 2);
  const auto text = net::trace_to_string(g, ok);
  EXPECT_NE(text.find("n0 > n1 > n2"), std::string::npos);
  EXPECT_NE(text.find("delivered"), std::string::npos);

  network.fail_link(1);
  const auto bad = net::route_packet(network, spf, 0, 2);
  EXPECT_NE(net::trace_to_string(g, bad).find("DROPPED"), std::string::npos);
}

}  // namespace
}  // namespace pr
