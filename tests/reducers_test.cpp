// Tests for the streaming sweep reducers: the P^2 quantile estimator against
// an exact sorted-sample oracle (tiny-n exactness, duplicate-heavy and
// random streams), the bounded top-K heap's deterministic replacement and
// merge rules, and the running summary.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <random>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "analysis/checkpoint.hpp"
#include "analysis/reducers.hpp"

namespace pr {
namespace {

using analysis::P2Quantile;
using analysis::P2QuantileSet;
using analysis::RunningSummary;
using analysis::TopK;

/// Exact nearest-rank quantile: sorted[ceil(q n) - 1].
double exact_quantile(std::vector<double> values, double q) {
  std::sort(values.begin(), values.end());
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(values.size())));
  return values[std::max<std::size_t>(rank, 1) - 1];
}

// ---------------------------------------------------------------------------
// P2Quantile

TEST(P2Quantile, RejectsInvalidQuantilesAndSamples) {
  EXPECT_THROW(P2Quantile(0.0), std::invalid_argument);
  EXPECT_THROW(P2Quantile(1.0), std::invalid_argument);
  EXPECT_THROW(P2Quantile(-0.5), std::invalid_argument);

  P2Quantile p(0.5);
  EXPECT_THROW(p.add(std::numeric_limits<double>::quiet_NaN()), std::invalid_argument);
  EXPECT_THROW(p.add(std::numeric_limits<double>::infinity()), std::invalid_argument);
  EXPECT_EQ(p.count(), 0u);
}

TEST(P2Quantile, EmptyEstimateIsZero) {
  EXPECT_EQ(P2Quantile(0.9).estimate(), 0.0);
}

TEST(P2Quantile, TinyStreamsMatchSortedOracleExactly) {
  // With five or fewer samples the estimator must BE the nearest-rank
  // quantile, bit for bit, for every prefix and several quantiles.
  const std::vector<double> stream{7.5, -2.0, 7.5, 0.25, 3.0};
  for (const double q : {0.1, 0.5, 0.9, 0.99}) {
    P2Quantile estimator(q);
    std::vector<double> seen;
    for (const double x : stream) {
      estimator.add(x);
      seen.push_back(x);
      EXPECT_EQ(estimator.estimate(), exact_quantile(seen, q))
          << "q=" << q << " n=" << seen.size();
    }
  }
}

TEST(P2Quantile, ConstantStreamIsExactAtAnyLength) {
  P2Quantile estimator(0.9);
  for (int i = 0; i < 1000; ++i) estimator.add(4.25);
  EXPECT_EQ(estimator.estimate(), 4.25);
  EXPECT_EQ(estimator.count(), 1000u);
}

TEST(P2Quantile, DuplicateHeavyStreamStaysNearTheMass) {
  // 90% of the stream is the value 3.0; the median must sit on (or next to)
  // that plateau despite the parabolic marker updates.
  std::mt19937_64 engine(7);
  std::uniform_real_distribution<double> outlier(0.0, 100.0);
  P2Quantile median(0.5);
  std::vector<double> all;
  for (int i = 0; i < 1000; ++i) {
    const double x = (i % 10 == 9) ? outlier(engine) : 3.0;
    median.add(x);
    all.push_back(x);
  }
  EXPECT_EQ(exact_quantile(all, 0.5), 3.0);
  EXPECT_NEAR(median.estimate(), 3.0, 0.1);
}

TEST(P2Quantile, ConvergesToSortedOracleOnRandomStreams) {
  std::mt19937_64 engine(42);
  std::uniform_real_distribution<double> uniform(0.0, 1.0);
  std::vector<double> all;
  P2Quantile p50(0.5);
  P2Quantile p90(0.9);
  P2Quantile p99(0.99);
  for (int i = 0; i < 20000; ++i) {
    const double x = uniform(engine);
    all.push_back(x);
    p50.add(x);
    p90.add(x);
    p99.add(x);
  }
  EXPECT_NEAR(p50.estimate(), exact_quantile(all, 0.5), 0.02);
  EXPECT_NEAR(p90.estimate(), exact_quantile(all, 0.9), 0.02);
  EXPECT_NEAR(p99.estimate(), exact_quantile(all, 0.99), 0.02);
}

TEST(P2Quantile, IsAPureFunctionOfTheInsertionSequence) {
  // The determinism contract: identical sequences give bit-identical state.
  std::mt19937_64 engine(3);
  std::uniform_real_distribution<double> uniform(-5.0, 5.0);
  std::vector<double> stream;
  for (int i = 0; i < 500; ++i) stream.push_back(uniform(engine));

  P2Quantile a(0.9);
  P2Quantile b(0.9);
  for (const double x : stream) {
    a.add(x);
    b.add(x);
  }
  EXPECT_EQ(a.estimate(), b.estimate());
  EXPECT_EQ(a.count(), b.count());
}

TEST(P2QuantileSet, FansOutToEveryQuantile) {
  P2QuantileSet set({0.5, 0.9});
  for (int i = 1; i <= 100; ++i) set.add(static_cast<double>(i));
  const auto estimates = set.estimates();
  ASSERT_EQ(estimates.size(), 2u);
  EXPECT_NEAR(estimates[0], 50.0, 2.0);
  EXPECT_NEAR(estimates[1], 90.0, 2.0);
}

// ---------------------------------------------------------------------------
// TopK

TEST(TopK, KeepsTheKLargestKeys) {
  TopK<int> top(3);
  for (int i = 0; i < 10; ++i) {
    top.add(static_cast<double>(i % 7), static_cast<std::uint64_t>(i), i);
  }
  const auto sorted = top.sorted();
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_EQ(sorted[0].key, 6.0);
  EXPECT_EQ(sorted[1].key, 5.0);
  EXPECT_EQ(sorted[2].key, 4.0);
}

TEST(TopK, TiesKeepTheEarliestId) {
  // Five equal keys into a 2-slot heap: the deterministic rule keeps the two
  // smallest ids, whatever the arrival order.
  for (const std::vector<std::uint64_t>& order :
       {std::vector<std::uint64_t>{0, 1, 2, 3, 4},
        std::vector<std::uint64_t>{4, 3, 2, 1, 0},
        std::vector<std::uint64_t>{2, 4, 0, 3, 1}}) {
    TopK<int> top(2);
    for (const std::uint64_t id : order) top.add(1.0, id, 0);
    const auto sorted = top.sorted();
    ASSERT_EQ(sorted.size(), 2u);
    EXPECT_EQ(sorted[0].id, 0u);
    EXPECT_EQ(sorted[1].id, 1u);
  }
}

TEST(TopK, MergeOfShardsMatchesStreamingWithDistinctKeys) {
  // Distinct keys make top-K a pure set property, so sharding + canonical
  // merge must agree with one serial stream.
  std::mt19937_64 engine(11);
  std::vector<double> keys;
  for (int i = 0; i < 200; ++i) keys.push_back(static_cast<double>(i) + 0.5);
  std::shuffle(keys.begin(), keys.end(), engine);

  TopK<std::uint64_t> serial(8);
  std::vector<TopK<std::uint64_t>> shards(4, TopK<std::uint64_t>(8));
  for (std::size_t i = 0; i < keys.size(); ++i) {
    serial.add(keys[i], i, i);
    shards[i % 4].add(keys[i], i, i);
  }
  TopK<std::uint64_t> merged(8);
  for (const auto& shard : shards) merged.merge(shard);

  const auto a = serial.sorted();
  const auto b = merged.sorted();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].key, b[i].key);
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_EQ(a[i].value, b[i].value);
  }
}

TEST(TopK, ZeroCapacityStaysEmpty) {
  TopK<int> top(0);
  top.add(1.0, 0, 0);
  EXPECT_EQ(top.size(), 0u);
  EXPECT_TRUE(top.sorted().empty());
}

// ---------------------------------------------------------------------------
// RunningSummary

TEST(RunningSummary, TracksCountSumAndExtrema) {
  RunningSummary s;
  EXPECT_EQ(s.mean(), 0.0);
  s.add(2.0);
  s.add(-1.0);
  s.add(5.0);
  EXPECT_EQ(s.count, 3u);
  EXPECT_EQ(s.sum, 6.0);
  EXPECT_EQ(s.min, -1.0);
  EXPECT_EQ(s.max, 5.0);
  EXPECT_EQ(s.mean(), 2.0);
}

// ---------------------------------------------------------------------------
// Checkpoint serialization: state()/from_state() snapshots and the binary
// codec they travel through (PR 8).  The bar everywhere is bit-identity:
// a restored reducer must behave exactly like the instance it snapshot.

TEST(P2State, RoundTripMidStreamIsBitIdentical) {
  // Snapshot at n = 3 (inside the exact tiny-n path, heights_ is the raw
  // sample buffer), n = 5 (the marker-initialisation boundary) and n = 100
  // (steady parabolic state); the restored twin must track the original
  // bit-for-bit through arbitrary future samples.
  std::mt19937_64 rng(2024);
  std::uniform_real_distribution<double> dist(0.0, 10.0);
  for (const std::size_t cut : {3u, 5u, 100u}) {
    P2Quantile original(0.9);
    for (std::size_t i = 0; i < cut; ++i) original.add(dist(rng));

    P2Quantile restored = P2Quantile::from_state(original.state());
    EXPECT_EQ(restored.quantile(), original.quantile());
    EXPECT_EQ(restored.count(), original.count());
    EXPECT_EQ(restored.estimate(), original.estimate()) << "cut " << cut;

    for (std::size_t i = 0; i < 200; ++i) {
      const double x = dist(rng);
      original.add(x);
      restored.add(x);
      ASSERT_EQ(restored.estimate(), original.estimate())
          << "cut " << cut << " diverged after " << i << " more samples";
    }
    EXPECT_EQ(restored.count(), original.count());
  }
}

TEST(P2State, TinyNSnapshotKeepsExactOracle) {
  // Interrupt inside the exact regime, resume, finish: the estimate must
  // still equal the sorted-sample oracle over ALL samples.
  P2Quantile p(0.5);
  p.add(9.0);
  p.add(1.0);
  p.add(5.0);
  P2Quantile resumed = P2Quantile::from_state(p.state());
  resumed.add(3.0);
  EXPECT_EQ(resumed.estimate(), exact_quantile({9.0, 1.0, 5.0, 3.0}, 0.5));
}

TEST(P2State, RejectsStructurallyInvalidSnapshots) {
  P2Quantile p(0.5);
  for (double x : {1.0, 2.0, 3.0}) p.add(x);

  analysis::P2State bad_q = p.state();
  bad_q.quantile = 1.5;
  EXPECT_THROW((void)P2Quantile::from_state(bad_q), std::invalid_argument);

  analysis::P2State bad_height = p.state();
  bad_height.heights[1] = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW((void)P2Quantile::from_state(bad_height), std::invalid_argument);

  // Positions only matter once the markers are live (count >= 5).
  P2Quantile live(0.5);
  for (double x : {1.0, 2.0, 3.0, 4.0, 5.0, 6.0}) live.add(x);
  analysis::P2State bad_pos = live.state();
  bad_pos.positions[2] = std::numeric_limits<double>::infinity();
  EXPECT_THROW((void)P2Quantile::from_state(bad_pos), std::invalid_argument);
}

TEST(TopK, SortedReplayRestoresTheHeapExactly) {
  // Checkpoint restore rebuilds a TopK by re-adding its sorted() entries.
  // Ties are the hard case: the deterministic rule keeps the EARLIEST id on
  // key ties, and the restored heap must preserve that through future adds.
  TopK<int> original(3);
  original.add(5.0, 10, 1);
  original.add(5.0, 2, 2);   // ties 5.0: earlier id wins eventually
  original.add(5.0, 7, 3);
  original.add(5.0, 4, 4);   // displaces id 10 (largest id among the ties)
  original.add(1.0, 1, 5);   // too weak, dropped

  TopK<int> restored(3);
  for (const auto& e : original.sorted()) restored.add(e.key, e.id, e.value);
  ASSERT_EQ(restored.size(), original.size());

  // Same future stream into both; surviving sets must stay identical.
  const std::vector<std::pair<double, std::uint64_t>> more = {
      {5.0, 3}, {6.0, 50}, {5.0, 99}};
  for (const auto& [key, id] : more) {
    original.add(key, id, 7);
    restored.add(key, id, 7);
  }
  const auto a = original.sorted();
  const auto b = restored.sorted();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].key, b[i].key) << i;
    EXPECT_EQ(a[i].id, b[i].id) << i;
    EXPECT_EQ(a[i].value, b[i].value) << i;
  }
}

TEST(Checkpoint, FieldRoundTripIsExact) {
  analysis::CheckpointWriter w;
  w.u32(0xDEADBEEFu);
  w.u64(0x0123456789ABCDEFull);
  w.f64(0.1);                                        // not representable exactly
  w.f64(-0.0);                                       // sign bit must survive
  w.f64(std::numeric_limits<double>::denorm_min());  // subnormal
  w.f64(-std::numeric_limits<double>::infinity());
  w.str("storm-sweep");
  w.str("");  // empty string is a valid field
  w.str(std::string("\x00\x01\xFF", 3));  // embedded NUL and high bytes
  const std::string blob = w.finish();

  analysis::CheckpointReader r(blob);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.f64(), 0.1);
  const double neg_zero = r.f64();
  EXPECT_EQ(neg_zero, 0.0);
  EXPECT_TRUE(std::signbit(neg_zero));
  EXPECT_EQ(r.f64(), std::numeric_limits<double>::denorm_min());
  EXPECT_EQ(r.f64(), -std::numeric_limits<double>::infinity());
  EXPECT_EQ(r.str(), "storm-sweep");
  EXPECT_EQ(r.str(), "");
  EXPECT_EQ(r.str(), std::string("\x00\x01\xFF", 3));
  EXPECT_TRUE(r.exhausted());
}

TEST(Checkpoint, DetectsCorruptionAndTruncation) {
  analysis::CheckpointWriter w;
  w.u64(42);
  w.str("payload");
  const std::string blob = w.finish();

  // Every single-byte flip -- magic, payload or checksum -- must be caught.
  for (std::size_t i = 0; i < blob.size(); ++i) {
    std::string tampered = blob;
    tampered[i] = static_cast<char>(tampered[i] ^ 0x01);
    EXPECT_THROW((void)analysis::CheckpointReader(tampered),
                 analysis::CheckpointError)
        << "flip at byte " << i;
  }
  // Truncation at every prefix length.
  for (std::size_t len = 0; len < blob.size(); ++len) {
    EXPECT_THROW(
        (void)analysis::CheckpointReader(std::string_view(blob).substr(0, len)),
        analysis::CheckpointError)
        << "truncated to " << len;
  }
}

TEST(Checkpoint, ReadPastEndThrowsInsteadOfUB) {
  analysis::CheckpointWriter w;
  w.u32(7);
  const std::string blob = w.finish();
  analysis::CheckpointReader r(blob);
  EXPECT_EQ(r.u32(), 7u);
  EXPECT_THROW((void)r.u64(), analysis::CheckpointError);

  // A declared string length larger than the remaining payload must throw,
  // not allocate or read out of bounds.
  analysis::CheckpointWriter lying;
  lying.u64(1u << 20);  // "string of 1 MiB follows" -- but nothing does
  const std::string short_blob = lying.finish();
  analysis::CheckpointReader r2(short_blob);
  EXPECT_THROW((void)r2.str(), analysis::CheckpointError);
}

TEST(Checkpoint, WriterFinishIsSingleUse) {
  analysis::CheckpointWriter w;
  w.u32(1);
  (void)w.finish();
  EXPECT_THROW((void)w.finish(), analysis::CheckpointError);
}

}  // namespace
}  // namespace pr
