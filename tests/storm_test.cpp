// Tests for the sampled failure-storm stack: run_ordered's canonical-order
// streaming reduction, the storm scenario models over SRLG catalogs, the
// group-grained incidence probe, the shared-scratch disconnecting-group
// report, and run_storm_experiment's two contracts -- bit-identity across
// thread counts and convergence to the exhaustive weighted oracle.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <numeric>
#include <set>
#include <stdexcept>
#include <vector>

#include "analysis/protocols.hpp"
#include "analysis/storm.hpp"
#include "analysis/traffic.hpp"
#include "graph/connectivity.hpp"
#include "graph/graph.hpp"
#include "graph/rng.hpp"
#include "net/failure_model.hpp"
#include "net/network.hpp"
#include "net/storm_model.hpp"
#include "sim/parallel_sweep.hpp"
#include "topo/topologies.hpp"
#include "traffic/capacity.hpp"
#include "traffic/demand.hpp"
#include "traffic/incidence.hpp"

namespace pr {
namespace {

using analysis::StormExperimentResult;
using analysis::StormSweepConfig;
using graph::EdgeSet;
using graph::Graph;
using net::IndependentOutages;
using net::SrlgCatalog;
using net::StormSample;
using sim::SweepExecutor;
using sim::WorkerContext;

// ---------------------------------------------------------------------------
// SweepExecutor::run_ordered

TEST(RunOrdered, ReducesEveryUnitOnceInCanonicalOrder) {
  constexpr std::size_t kUnits = 500;
  for (const std::size_t threads : {1U, 2U, 8U}) {
    SweepExecutor executor(threads);
    const std::size_t window = executor.default_ordered_window();
    std::vector<std::uint64_t> ring(window, 0);
    std::vector<std::size_t> order;
    std::uint64_t sum = 0;
    executor.run_ordered(
        kUnits,
        [&](std::size_t unit, WorkerContext&) { ring[unit % window] = 3 * unit + 1; },
        [&](std::size_t unit) {
          order.push_back(unit);
          sum += ring[unit % window];
        });

    ASSERT_EQ(order.size(), kUnits) << threads << " threads";
    for (std::size_t i = 0; i < kUnits; ++i) {
      ASSERT_EQ(order[i], i) << threads << " threads";
    }
    std::uint64_t want = 0;
    for (std::size_t i = 0; i < kUnits; ++i) want += 3 * i + 1;
    EXPECT_EQ(sum, want) << threads << " threads";
  }
}

TEST(RunOrdered, WindowOneFullySerialisesThePipeline) {
  // With window == 1 a single slot is enough: unit u+1 may not start until
  // reduce(u) returned, so the slot is never overwritten early.
  SweepExecutor executor(8);
  constexpr std::size_t kUnits = 200;
  std::uint64_t slot = 0;
  std::vector<std::uint64_t> reduced;
  executor.run_ordered(
      kUnits, [&](std::size_t unit, WorkerContext&) { slot = unit * unit; },
      [&](std::size_t unit) {
        EXPECT_EQ(slot, unit * unit);
        reduced.push_back(slot);
      },
      /*seed=*/0, /*window=*/1);
  ASSERT_EQ(reduced.size(), kUnits);
  for (std::size_t i = 0; i < kUnits; ++i) EXPECT_EQ(reduced[i], i * i);
}

TEST(RunOrdered, PerUnitRngStreamsMatchPlainRun) {
  // run_ordered must reseed the worker Rng per unit exactly like run(): the
  // first draw of unit u depends only on (seed, u).
  constexpr std::size_t kUnits = 64;
  constexpr std::uint64_t kSeed = 0xFEED;
  std::vector<double> from_run(kUnits, 0.0);
  {
    SweepExecutor executor(4);
    executor.run(
        kUnits,
        [&](std::size_t unit, WorkerContext& ctx) { from_run[unit] = ctx.rng().unit(); },
        kSeed);
  }
  for (const std::size_t threads : {1U, 8U}) {
    SweepExecutor executor(threads);
    std::vector<double> slot(executor.default_ordered_window(), 0.0);
    std::vector<double> ordered(kUnits, 0.0);
    executor.run_ordered(
        kUnits,
        [&](std::size_t unit, WorkerContext& ctx) {
          slot[unit % slot.size()] = ctx.rng().unit();
        },
        [&](std::size_t unit) { ordered[unit] = slot[unit % slot.size()]; }, kSeed);
    EXPECT_EQ(ordered, from_run) << threads << " threads";
  }
}

TEST(RunOrdered, UnitExceptionPropagatesAndExecutorSurvives) {
  SweepExecutor executor(4);
  EXPECT_THROW(
      executor.run_ordered(
          100,
          [](std::size_t unit, WorkerContext&) {
            if (unit == 17) throw std::runtime_error("unit 17");
          },
          [](std::size_t) {}),
      std::runtime_error);

  // The pool must come back clean for the next job.
  std::size_t reduced = 0;
  executor.run_ordered(
      50, [](std::size_t, WorkerContext&) {}, [&](std::size_t) { ++reduced; });
  EXPECT_EQ(reduced, 50u);
}

TEST(RunOrdered, ReduceExceptionPropagatesAndExecutorSurvives) {
  SweepExecutor executor(4);
  EXPECT_THROW(
      executor.run_ordered(
          100, [](std::size_t, WorkerContext&) {},
          [](std::size_t unit) {
            if (unit == 5) throw std::runtime_error("reduce 5");
          }),
      std::runtime_error);

  std::size_t reduced = 0;
  executor.run_ordered(
      50, [](std::size_t, WorkerContext&) {}, [&](std::size_t) { ++reduced; });
  EXPECT_EQ(reduced, 50u);
}

// ---------------------------------------------------------------------------
// Storm models

TEST(StormModel, SampleIsCanonicalAndDeterministic) {
  const Graph g = topo::abilene();
  graph::Rng catalog_rng(1);
  const SrlgCatalog catalog = net::random_srlgs(g, 6, 3, catalog_rng);
  const IndependentOutages model = IndependentOutages::uniform(catalog, 0.4);

  StormSample a;
  StormSample b;
  for (std::uint64_t seed = 0; seed < 32; ++seed) {
    graph::Rng ra(seed);
    graph::Rng rb(seed);
    model.sample(ra, a);
    model.sample(rb, b);
    EXPECT_EQ(a.groups, b.groups) << "seed " << seed;

    // Groups ascending and deduped; failures exactly the member union.
    EXPECT_TRUE(std::is_sorted(a.groups.begin(), a.groups.end()));
    EXPECT_EQ(std::adjacent_find(a.groups.begin(), a.groups.end()), a.groups.end());
    EdgeSet want(g.edge_count());
    for (const std::size_t group : a.groups) {
      for (const graph::EdgeId e : catalog.members(group)) want.insert(e);
    }
    ASSERT_EQ(a.failures.size(), want.size()) << "seed " << seed;
    for (graph::EdgeId e = 0; e < g.edge_count(); ++e) {
      EXPECT_EQ(a.failures.contains(e), want.contains(e)) << "seed " << seed;
    }
  }
}

TEST(StormModel, DeterministicProbabilitiesForceTheOutcome) {
  const Graph g = topo::abilene();
  SrlgCatalog catalog(g);
  (void)catalog.add_group({0});
  (void)catalog.add_group({1, 2});
  (void)catalog.add_group({3});
  const IndependentOutages model(catalog, {1.0, 0.0, 1.0});

  StormSample sample;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    graph::Rng rng(seed);
    model.sample(rng, sample);
    EXPECT_EQ(sample.groups, (std::vector<std::size_t>{0, 2}));
    EXPECT_EQ(sample.failures.size(), 2u);
    EXPECT_TRUE(sample.failures.contains(0));
    EXPECT_TRUE(sample.failures.contains(3));
  }
}

TEST(StormModel, GeographicCutDrawsExactlyOneGroup) {
  const Graph g = topo::abilene();
  const SrlgCatalog catalog = net::geographic_srlgs(g, 1);
  const net::GeographicCut model(catalog);
  StormSample sample;
  graph::Rng rng(9);
  std::set<std::size_t> seen;
  for (int i = 0; i < 200; ++i) {
    model.sample(rng, sample);
    ASSERT_EQ(sample.groups.size(), 1u);
    ASSERT_LT(sample.groups[0], catalog.group_count());
    seen.insert(sample.groups[0]);
  }
  // Uniform over 11 groups: 200 draws hit every group with overwhelming odds.
  EXPECT_EQ(seen.size(), catalog.group_count());
}

TEST(StormModel, CompoundStormDrawsKDistinctGroups) {
  const Graph g = topo::abilene();
  graph::Rng catalog_rng(2);
  const SrlgCatalog catalog = net::random_srlgs(g, 8, 2, catalog_rng);
  EXPECT_THROW(net::CompoundStorm(catalog, 0), std::invalid_argument);
  EXPECT_THROW(net::CompoundStorm(catalog, 9), std::invalid_argument);

  const net::CompoundStorm model(catalog, 3);
  StormSample sample;
  graph::Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    model.sample(rng, sample);
    ASSERT_EQ(sample.groups.size(), 3u);
    EXPECT_TRUE(std::is_sorted(sample.groups.begin(), sample.groups.end()));
    EXPECT_EQ(std::adjacent_find(sample.groups.begin(), sample.groups.end()),
              sample.groups.end());
  }
}

TEST(StormModel, GeographicSrlgsRadiusOneAreNodeOutages) {
  // radius 1 bundles exactly the anchor's incident links -- the node-failure
  // scenarios the coverage experiments already enumerate.
  const Graph g = topo::abilene();
  const SrlgCatalog catalog = net::geographic_srlgs(g, 1);
  const auto node_failures = net::all_node_failures(g);
  ASSERT_EQ(catalog.group_count(), node_failures.size());
  for (std::size_t i = 0; i < node_failures.size(); ++i) {
    const EdgeSet bundle = catalog.scenario(i);
    ASSERT_EQ(bundle.size(), node_failures[i].size()) << "anchor " << i;
    for (graph::EdgeId e = 0; e < g.edge_count(); ++e) {
      EXPECT_EQ(bundle.contains(e), node_failures[i].contains(e)) << "anchor " << i;
    }
  }
}

TEST(StormModel, EnumerateOutageScenariosCoversAllSubsetsExactly) {
  const Graph g = topo::abilene();
  SrlgCatalog catalog(g);
  (void)catalog.add_group({0});
  (void)catalog.add_group({1});
  (void)catalog.add_group({2, 3});
  const IndependentOutages model(catalog, {0.5, 0.25, 0.1});

  const auto scenarios = net::enumerate_outage_scenarios(model);
  ASSERT_EQ(scenarios.size(), 8u);  // 2^3, bitmask order
  EXPECT_TRUE(scenarios[0].groups.empty());
  EXPECT_EQ(scenarios[1].groups, (std::vector<std::size_t>{0}));
  EXPECT_EQ(scenarios[5].groups, (std::vector<std::size_t>{0, 2}));
  EXPECT_EQ(scenarios[7].groups, (std::vector<std::size_t>{0, 1, 2}));

  double total = 0.0;
  for (const auto& s : scenarios) total += s.probability;
  EXPECT_NEAR(total, 1.0, 1e-12);
  // P({0}) = 0.5 * 0.75 * 0.9
  EXPECT_NEAR(scenarios[1].probability, 0.5 * 0.75 * 0.9, 1e-12);

  // The 2^G gate.
  SrlgCatalog big(g);
  for (int i = 0; i < 21; ++i) (void)big.add_group({static_cast<graph::EdgeId>(i % 4)});
  EXPECT_THROW(
      (void)net::enumerate_outage_scenarios(IndependentOutages::uniform(big, 0.1)),
      std::invalid_argument);
}

// ---------------------------------------------------------------------------
// GroupIncidence

TEST(GroupIncidence, MatchesThePerEdgeProbeOnEveryGroupSubset) {
  const Graph g = topo::abilene();
  const analysis::ProtocolSuite suite(g);
  const traffic::TrafficMatrix demand =
      traffic::gravity_demand(g, 1e5, traffic::GravityMass::kDegree);
  std::vector<sim::FlowSpec> flows;
  std::vector<double> demands;
  analysis::collect_demand_flows(demand, flows, demands);

  net::Network network(g);
  const auto protocol = suite.spf().make(network);
  traffic::FlowIncidenceIndex index;
  index.build(network, *protocol, flows, demands);

  graph::Rng catalog_rng(3);
  const SrlgCatalog catalog = net::random_srlgs(g, 7, 3, catalog_rng);
  traffic::GroupIncidence groups;
  groups.build(index, catalog);
  ASSERT_TRUE(groups.built());
  EXPECT_EQ(groups.group_count(), catalog.group_count());
  EXPECT_EQ(groups.flow_count(), index.flow_count());

  // Every subset of the catalog: the group-grained probe must collect
  // exactly the flows the per-edge probe finds on the member union.
  const std::size_t group_count = catalog.group_count();
  ASSERT_LE(group_count, 16u);
  std::vector<std::uint8_t> mark_groups;
  std::vector<std::uint32_t> out_groups;
  std::vector<std::uint8_t> mark_edges;
  std::vector<std::uint32_t> out_edges;
  for (std::uint32_t mask = 0; mask < (1U << group_count); ++mask) {
    std::vector<std::size_t> subset;
    EdgeSet failures(g.edge_count());
    for (std::size_t group = 0; group < group_count; ++group) {
      if ((mask >> group) & 1U) {
        subset.push_back(group);
        for (const graph::EdgeId e : catalog.members(group)) failures.insert(e);
      }
    }
    groups.affected_flows(subset, mark_groups, out_groups);
    index.affected_flows(failures, mark_edges, out_edges);
    ASSERT_EQ(out_groups, out_edges) << "mask " << mask;
    ASSERT_EQ(mark_groups, mark_edges) << "mask " << mask;
  }
}

TEST(GroupIncidence, RejectsAnUnbuiltIndex) {
  const Graph g = topo::abilene();
  const SrlgCatalog catalog = net::geographic_srlgs(g, 1);
  traffic::FlowIncidenceIndex index;
  traffic::GroupIncidence groups;
  EXPECT_THROW(groups.build(index, catalog), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// SrlgCatalog::disconnecting_groups (shared-scratch rewrite)

TEST(SrlgCatalog, DisconnectingGroupsMatchesNaiveRecomputation) {
  const Graph g = topo::geant();
  graph::Rng rng(11);
  const SrlgCatalog catalog = net::random_srlgs(g, 10, 4, rng);

  std::vector<std::size_t> naive;
  for (std::size_t group = 0; group < catalog.group_count(); ++group) {
    const EdgeSet scenario = catalog.scenario(group);
    if (!graph::is_connected(g, &scenario)) naive.push_back(group);
  }
  EXPECT_EQ(catalog.disconnecting_groups(), naive);

  // Radius-1 geographic bundles always disconnect: they isolate the anchor.
  const SrlgCatalog node_bundles = net::geographic_srlgs(g, 1);
  const auto risky = node_bundles.disconnecting_groups();
  ASSERT_EQ(risky.size(), node_bundles.group_count());
  for (std::size_t i = 0; i < risky.size(); ++i) EXPECT_EQ(risky[i], i);
}

// ---------------------------------------------------------------------------
// run_storm_experiment

struct StormFixture {
  Graph g = topo::abilene();
  analysis::ProtocolSuite suite{g};
  traffic::TrafficMatrix demand =
      traffic::gravity_demand(g, 1e5, traffic::GravityMass::kDegree);
  traffic::CapacityPlan plan = traffic::CapacityPlan::uniform(g, 5e4);
};

void expect_identical(const StormExperimentResult& want,
                      const StormExperimentResult& got) {
  EXPECT_EQ(got.calm_scenarios, want.calm_scenarios);
  EXPECT_EQ(got.disconnected_scenarios, want.disconnected_scenarios);
  EXPECT_TRUE(got.failed_groups == want.failed_groups);
  EXPECT_TRUE(got.failed_edges == want.failed_edges);
  ASSERT_EQ(got.protocols.size(), want.protocols.size());
  for (std::size_t i = 0; i < want.protocols.size(); ++i) {
    const auto& a = want.protocols[i];
    const auto& b = got.protocols[i];
    EXPECT_TRUE(a.utilization == b.utilization) << a.name;
    EXPECT_TRUE(a.stretch == b.stretch) << a.name;
    EXPECT_EQ(a.utilization_quantiles, b.utilization_quantiles) << a.name;
    EXPECT_EQ(a.stretch_quantiles, b.stretch_quantiles) << a.name;
    EXPECT_EQ(a.delivered_pps, b.delivered_pps) << a.name;
    EXPECT_EQ(a.lost_pps, b.lost_pps) << a.name;
    EXPECT_EQ(a.stranded_pps, b.stranded_pps) << a.name;
    EXPECT_EQ(a.overloaded_links, b.overloaded_links) << a.name;
    EXPECT_EQ(a.overloaded_scenarios, b.overloaded_scenarios) << a.name;
    EXPECT_EQ(a.lossy_scenarios, b.lossy_scenarios) << a.name;
    EXPECT_EQ(a.rerouted_flows, b.rerouted_flows) << a.name;
    ASSERT_EQ(a.worst.size(), b.worst.size()) << a.name;
    for (std::size_t k = 0; k < a.worst.size(); ++k) {
      EXPECT_EQ(a.worst[k].key, b.worst[k].key) << a.name;
      EXPECT_EQ(a.worst[k].id, b.worst[k].id) << a.name;
      EXPECT_EQ(a.worst[k].value.failed_groups, b.worst[k].value.failed_groups)
          << a.name;
      EXPECT_EQ(a.worst[k].value.lost_pps, b.worst[k].value.lost_pps) << a.name;
    }
  }
}

TEST(StormSweep, BitIdenticalAcrossThreadCounts) {
  StormFixture f;
  graph::Rng catalog_rng(4);
  const SrlgCatalog catalog = net::random_srlgs(f.g, 6, 3, catalog_rng);
  const IndependentOutages model = IndependentOutages::uniform(catalog, 0.2);
  const std::vector<analysis::NamedFactory> protocols = {f.suite.spf(),
                                                         f.suite.reconvergence()};
  StormSweepConfig config;
  config.scenarios = 400;
  config.seed = 77;
  config.top_k = 5;

  SweepExecutor serial(1);
  const StormExperimentResult want = analysis::run_storm_experiment(
      f.g, f.demand, f.plan, model, protocols, config, serial);
  EXPECT_EQ(want.scenarios, 400u);
  EXPECT_GT(want.flows_per_scenario, 0u);

  for (const std::size_t threads : {2U, 8U}) {
    SweepExecutor executor(threads);
    const StormExperimentResult got = analysis::run_storm_experiment(
        f.g, f.demand, f.plan, model, protocols, config, executor);
    expect_identical(want, got);
  }
}

TEST(StormSweep, ValidatesItsInputs) {
  StormFixture f;
  graph::Rng catalog_rng(4);
  const SrlgCatalog catalog = net::random_srlgs(f.g, 4, 2, catalog_rng);
  const IndependentOutages model = IndependentOutages::uniform(catalog, 0.2);
  const std::vector<analysis::NamedFactory> protocols = {f.suite.spf()};
  SweepExecutor executor(1);

  StormSweepConfig config;
  config.scenarios = 0;  // must be > 0
  EXPECT_THROW((void)analysis::run_storm_experiment(f.g, f.demand, f.plan, model,
                                                    protocols, config, executor),
               std::invalid_argument);

  config.scenarios = 10;
  EXPECT_THROW((void)analysis::run_storm_experiment(f.g, f.demand, f.plan, model, {},
                                                    config, executor),
               std::invalid_argument);

  config.quantiles = {0.5, 1.0};  // quantiles must lie in (0, 1)
  EXPECT_THROW((void)analysis::run_storm_experiment(f.g, f.demand, f.plan, model,
                                                    protocols, config, executor),
               std::invalid_argument);

  // Model built over a different graph than the sweep's.
  const Graph other = topo::geant();
  const SrlgCatalog foreign_catalog = net::geographic_srlgs(other, 1);
  const IndependentOutages foreign =
      IndependentOutages::uniform(foreign_catalog, 0.2);
  config.quantiles = {0.5};
  EXPECT_THROW((void)analysis::run_storm_experiment(f.g, f.demand, f.plan, foreign,
                                                    protocols, config, executor),
               std::invalid_argument);
}

TEST(StormSweep, ZeroOutageModelReproducesThePristineNetworkExactly) {
  // With every group probability 0 the only subset with mass is the empty
  // one: the oracle's expectations and the sampled streams must all collapse
  // to the pristine cell -- exactly, not approximately.
  StormFixture f;
  graph::Rng catalog_rng(6);
  const SrlgCatalog catalog = net::random_srlgs(f.g, 5, 3, catalog_rng);
  const IndependentOutages model = IndependentOutages::uniform(catalog, 0.0);
  const std::vector<analysis::NamedFactory> protocols = {f.suite.reconvergence()};

  const auto oracle =
      analysis::run_exhaustive_storm(f.g, f.demand, f.plan, model, protocols);
  ASSERT_EQ(oracle.protocols.size(), 1u);
  EXPECT_EQ(oracle.scenarios, 32u);  // 2^5 subsets, all but one weightless
  EXPECT_DOUBLE_EQ(oracle.total_probability, 1.0);
  EXPECT_EQ(oracle.protocols[0].loss_probability, 0.0);

  StormSweepConfig config;
  config.scenarios = 50;
  config.seed = 123;
  SweepExecutor executor(2);
  const auto sampled = analysis::run_storm_experiment(f.g, f.demand, f.plan, model,
                                                      protocols, config, executor);
  EXPECT_EQ(sampled.calm_scenarios, 50u);
  EXPECT_EQ(sampled.disconnected_scenarios, 0u);
  const auto& p = sampled.protocols[0];
  // Constant stream: min == mean == max == the pristine max utilization, and
  // every sampled quantile equals the oracle's weighted quantile exactly.
  EXPECT_DOUBLE_EQ(p.utilization.min, p.utilization.max);
  EXPECT_NEAR(p.utilization.mean(), oracle.protocols[0].mean_max_utilization, 1e-9);
  EXPECT_EQ(p.utilization_quantiles, oracle.protocols[0].utilization_quantiles);
  EXPECT_EQ(p.stretch_quantiles, oracle.protocols[0].stretch_quantiles);
  EXPECT_EQ(p.lost_pps, 0.0);
  EXPECT_EQ(p.lossy_scenarios, 0u);
  EXPECT_EQ(p.rerouted_flows, 0u);
}

TEST(StormSweep, SampledEstimatesConvergeToTheExhaustiveOracle) {
  // A fully enumerable 6-group catalog with heavy outage probabilities:
  // 2^6 = 64 exact weighted subsets vs a 3000-scenario sampled sweep.  The
  // law of large numbers, not bit-identity: means and probabilities must land
  // within a few standard errors of the oracle.
  StormFixture f;
  graph::Rng catalog_rng(8);
  const SrlgCatalog catalog = net::random_srlgs(f.g, 6, 3, catalog_rng);
  const IndependentOutages model = IndependentOutages::uniform(catalog, 0.25);
  const std::vector<analysis::NamedFactory> protocols = {f.suite.spf(),
                                                         f.suite.reconvergence()};

  const auto oracle =
      analysis::run_exhaustive_storm(f.g, f.demand, f.plan, model, protocols);
  ASSERT_EQ(oracle.scenarios, 64u);
  EXPECT_NEAR(oracle.total_probability, 1.0, 1e-9);

  StormSweepConfig config;
  config.scenarios = 3000;
  config.seed = 0xC0FFEE;
  SweepExecutor executor(2);
  const auto sampled = analysis::run_storm_experiment(f.g, f.demand, f.plan, model,
                                                      protocols, config, executor);

  const double n = static_cast<double>(sampled.scenarios);
  for (std::size_t i = 0; i < protocols.size(); ++i) {
    const auto& o = oracle.protocols[i];
    const auto& s = sampled.protocols[i];
    EXPECT_EQ(o.name, s.name);
    EXPECT_NEAR(s.utilization.mean(), o.mean_max_utilization,
                0.05 * o.mean_max_utilization + 1e-12)
        << o.name;
    EXPECT_NEAR(s.delivered_pps / n, o.expected_delivered_pps,
                0.02 * o.expected_delivered_pps + 1e-9)
        << o.name;
    EXPECT_NEAR(static_cast<double>(s.lossy_scenarios) / n, o.loss_probability, 0.05)
        << o.name;
    EXPECT_NEAR(static_cast<double>(s.overloaded_scenarios) / n,
                o.overload_probability, 0.05)
        << o.name;
  }
}

}  // namespace
}  // namespace pr
