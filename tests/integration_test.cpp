// End-to-end integration: the full experiment pipeline on every bundled
// topology, asserting the cross-module invariants the benches rely on.
#include <gtest/gtest.h>

#include "analysis/coverage.hpp"
#include "analysis/protocols.hpp"
#include "analysis/report.hpp"
#include "graph/connectivity.hpp"
#include "net/failure_model.hpp"
#include "net/header_codec.hpp"
#include "topo/topologies.hpp"

namespace pr {
namespace {

using analysis::ProtocolSuite;
using graph::Graph;

struct TopologyCase {
  const char* name;
  Graph (*make)();
  bool planar;  ///< planar topologies enjoy the unconditional guarantee
};

Graph make_figure1() { return topo::figure1(); }
Graph make_abilene() { return topo::abilene(); }
Graph make_teleglobe() { return topo::teleglobe(); }
Graph make_geant() { return topo::geant(); }

class TopologyPipeline : public ::testing::TestWithParam<TopologyCase> {};

TEST_P(TopologyPipeline, SuiteInvariants) {
  const auto& param = GetParam();
  const Graph g = param.make();
  const ProtocolSuite suite(g);

  // Embedding quality: PR-safe always; genus 0 exactly for planar inputs.
  EXPECT_TRUE(suite.embedding().supports_pr());
  if (param.planar) {
    EXPECT_EQ(suite.embedding().genus, 0);
  } else {
    EXPECT_GT(suite.embedding().genus, 0);
  }

  // Euler consistency.
  const long v = static_cast<long>(g.node_count());
  const long e = static_cast<long>(g.edge_count());
  const long f = static_cast<long>(suite.embedding().faces.face_count());
  EXPECT_EQ(v - e + f, 2 - 2 * suite.embedding().genus);

  // Header budget: every bundled topology fits the DSCP pool-2 proposal.
  const auto layout =
      net::PrHeaderLayout::for_hop_diameter(suite.routes().max_discriminator());
  EXPECT_LE(layout.total_bits(), 4U);
}

TEST_P(TopologyPipeline, SingleFailureFigureShape) {
  const auto& param = GetParam();
  const Graph g = param.make();
  const ProtocolSuite suite(g);
  const auto scenarios = net::all_single_failures(g);
  const auto result = analysis::run_stretch_experiment(g, scenarios, suite.paper_trio());

  ASSERT_EQ(result.protocols.size(), 3U);
  for (const auto& p : result.protocols) {
    EXPECT_EQ(p.dropped, 0U) << p.name;
    for (double s : p.stretches) EXPECT_GE(s, 1.0 - 1e-12);
  }
  // Protocol ordering, mean and pointwise CCDF.
  EXPECT_LE(result.protocols[0].mean_finite_stretch(),
            result.protocols[1].mean_finite_stretch() + 1e-12);
  EXPECT_LE(result.protocols[1].mean_finite_stretch(),
            result.protocols[2].mean_finite_stretch() + 1e-12);
  const auto xs = analysis::paper_stretch_axis();
  const auto reconv = analysis::ccdf(result.protocols[0].stretches, xs);
  const auto pr_curve = analysis::ccdf(result.protocols[2].stretches, xs);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    EXPECT_LE(reconv[i], pr_curve[i] + 1e-12);
    if (i > 0) {
      EXPECT_LE(pr_curve[i], pr_curve[i - 1] + 1e-12) << "CCDF must not increase";
    }
  }
}

TEST_P(TopologyPipeline, ExperimentsAreDeterministic) {
  const auto& param = GetParam();
  const Graph g = param.make();
  const ProtocolSuite suite(g);
  const auto scenarios = net::all_single_failures(g);
  const auto a = analysis::run_stretch_experiment(g, scenarios, {suite.pr()});
  const auto b = analysis::run_stretch_experiment(g, scenarios, {suite.pr()});
  ASSERT_EQ(a.protocols[0].stretches.size(), b.protocols[0].stretches.size());
  for (std::size_t i = 0; i < a.protocols[0].stretches.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.protocols[0].stretches[i], b.protocols[0].stretches[i]);
  }
}

TEST_P(TopologyPipeline, CoverageClassificationConsistent) {
  const auto& param = GetParam();
  const Graph g = param.make();
  const ProtocolSuite suite(g);
  graph::Rng rng(123);
  const auto scenarios = net::sample_any_failures(g, 3, 25, rng);
  const auto result = analysis::run_coverage_experiment(
      g, scenarios, {suite.pr(), suite.fcp(), suite.spf()});

  const auto& pr_cov = result.protocols[0];
  const auto& fcp_cov = result.protocols[1];
  const auto& spf_cov = result.protocols[2];
  // Totals agree across protocols (same pair population).
  EXPECT_EQ(pr_cov.total(), fcp_cov.total());
  EXPECT_EQ(pr_cov.total(), spf_cov.total());
  // Partition counts are protocol-independent facts of the scenario.
  EXPECT_EQ(pr_cov.dropped_partitioned, fcp_cov.dropped_partitioned);
  EXPECT_EQ(pr_cov.dropped_partitioned, spf_cov.dropped_partitioned);
  // FCP has full coverage everywhere; PR too on planar topologies.
  EXPECT_EQ(fcp_cov.dropped_reachable, 0U);
  if (param.planar) {
    EXPECT_EQ(pr_cov.dropped_reachable, 0U);
  }
  // SPF never exceeds PR.
  EXPECT_LE(spf_cov.delivered, pr_cov.delivered);
}

INSTANTIATE_TEST_SUITE_P(
    Bundled, TopologyPipeline,
    ::testing::Values(TopologyCase{"figure1", make_figure1, true},
                      TopologyCase{"abilene", make_abilene, true},
                      TopologyCase{"teleglobe", make_teleglobe, false},
                      TopologyCase{"geant", make_geant, true}),
    [](const ::testing::TestParamInfo<TopologyCase>& info) {
      return std::string(info.param.name);
    });

TEST(Integration, StretchExperimentMatchesManualComputation) {
  // Cross-check the harness against a hand-rolled loop on one scenario.
  const Graph g = topo::abilene();
  const ProtocolSuite suite(g);
  std::vector<graph::EdgeSet> scenarios;
  scenarios.emplace_back(g.edge_count());
  scenarios.back().insert(3);
  const auto result = analysis::run_stretch_experiment(g, scenarios, {suite.pr()});

  net::Network network(g);
  network.fail_link(3);
  std::size_t manual_pairs = 0;
  double manual_sum = 0;
  for (graph::NodeId s = 0; s < g.node_count(); ++s) {
    for (graph::NodeId t = 0; t < g.node_count(); ++t) {
      if (s == t ||
          !analysis::path_affected(suite.routes(), s, t, network.failed_links())) {
        continue;
      }
      ++manual_pairs;
      auto proto = suite.pr().make(network);
      const auto trace = net::route_packet(network, *proto, s, t);
      manual_sum += trace.cost / suite.routes().cost(s, t);
    }
  }
  EXPECT_EQ(result.affected_pairs, manual_pairs);
  EXPECT_NEAR(result.protocols[0].mean_finite_stretch(),
              manual_sum / static_cast<double>(manual_pairs), 1e-12);
}

TEST(Integration, AllSuiteProtocolsAgreeOnHealthyNetwork) {
  // With no failures every protocol must produce identical (optimal) costs.
  const Graph g = topo::geant();
  const ProtocolSuite suite(g);
  net::Network network(g);
  for (graph::NodeId s = 0; s < g.node_count(); s += 5) {
    for (graph::NodeId t = 0; t < g.node_count(); t += 3) {
      if (s == t) continue;
      const double expected = suite.routes().cost(s, t);
      for (const auto& factory :
           {suite.pr(), suite.pr_single_bit(), suite.fcp(), suite.lfa(), suite.spf(),
            suite.reconvergence()}) {
        auto proto = factory.make(network);
        const auto trace = net::route_packet(network, *proto, s, t);
        ASSERT_TRUE(trace.delivered()) << factory.name;
        EXPECT_DOUBLE_EQ(trace.cost, expected) << factory.name;
      }
    }
  }
}

}  // namespace
}  // namespace pr
