// Tests for the genus-minimising local search and the top-level embedder.
#include "embed/genus_opt.hpp"

#include <gtest/gtest.h>

#include "embed/embedder.hpp"
#include "graph/generators.hpp"

namespace pr::embed {
namespace {

TEST(GenusOpt, PlanarGraphReachesGenusZero) {
  const Graph g = graph::grid(3, 3);
  const auto result = minimize_genus(g);
  EXPECT_EQ(result.genus, 0);
}

TEST(GenusOpt, K5ReachesKnownMinimumGenusOne) {
  const Graph g = graph::k5();
  GenusSearchOptions opts;
  opts.max_iterations = 8000;
  const auto result = minimize_genus(g, opts);
  EXPECT_EQ(result.genus, 1);  // gamma(K5) = 1
}

TEST(GenusOpt, K33ReachesKnownMinimumGenusOne) {
  const Graph g = graph::k33();
  GenusSearchOptions opts;
  opts.max_iterations = 8000;
  const auto result = minimize_genus(g, opts);
  EXPECT_EQ(result.genus, 1);  // gamma(K3,3) = 1
}

TEST(GenusOpt, PetersenReachesKnownMinimumGenusOne) {
  const Graph g = graph::petersen();
  GenusSearchOptions opts;
  opts.max_iterations = 20000;
  const auto result = minimize_genus(g, opts);
  EXPECT_EQ(result.genus, 1);  // gamma(Petersen) = 1
}

TEST(GenusOpt, ResultAlwaysValidEmbedding) {
  graph::Rng rng(31);
  const Graph g = graph::erdos_renyi(9, 0.5, rng);
  GenusSearchOptions opts;
  opts.max_iterations = 500;
  const auto result = minimize_genus(g, opts);
  const auto faces = trace_faces(result.rotation);
  EXPECT_NO_THROW(check_face_set(result.rotation, faces));
  EXPECT_EQ(euler_genus(g, faces), result.genus);
}

TEST(GenusOpt, ZeroBudgetStillValid) {
  GenusSearchOptions opts;
  opts.max_iterations = 0;
  // The graph must outlive the result: RotationSystem references it, and
  // trace_faces below reads through that reference.
  const Graph g = graph::k5();
  const auto result = minimize_genus(g, opts);
  EXPECT_GE(result.genus, 1);
  EXPECT_NO_THROW(check_face_set(result.rotation, trace_faces(result.rotation)));
}

TEST(GenusOpt, DeterministicForFixedSeed) {
  const Graph g = graph::petersen();
  GenusSearchOptions opts;
  opts.max_iterations = 1000;
  const auto a = minimize_genus(g, opts);
  const auto b = minimize_genus(g, opts);
  EXPECT_EQ(a.genus, b.genus);
  EXPECT_EQ(a.iterations_used, b.iterations_used);
}

TEST(Embedder, AutoUsesPlanarWhenPossible) {
  const Graph g = graph::grid(4, 4);
  const auto emb = embed(g);
  EXPECT_EQ(emb.strategy_used, EmbedStrategy::kPlanar);
  EXPECT_EQ(emb.genus, 0);
  EXPECT_TRUE(emb.planar());
}

TEST(Embedder, AutoFallsBackToSearchOnNonPlanar) {
  const Graph g = graph::k5();
  const auto emb = embed(g);
  EXPECT_EQ(emb.strategy_used, EmbedStrategy::kLocalSearch);
  EXPECT_GE(emb.genus, 1);
}

TEST(Embedder, PlanarStrategyThrowsOnNonPlanar) {
  EmbedOptions opts;
  opts.strategy = EmbedStrategy::kPlanar;
  EXPECT_THROW((void)embed(graph::k33(), opts), std::invalid_argument);
}

TEST(Embedder, RandomAndIdentityAlwaysSucceed) {
  const Graph g = graph::petersen();
  for (EmbedStrategy s : {EmbedStrategy::kRandom, EmbedStrategy::kIdentity}) {
    EmbedOptions opts;
    opts.strategy = s;
    const auto emb = embed(g, opts);
    EXPECT_EQ(emb.strategy_used, s);
    EXPECT_GE(emb.genus, 1);  // Petersen cannot be genus 0
    EXPECT_NO_THROW(check_face_set(emb.rotation, emb.faces));
  }
}

TEST(Embedder, FacesMatchRotation) {
  const Graph g = graph::ring(8);
  const auto emb = embed(g);
  EXPECT_EQ(emb.faces.face_count(), 2U);
  EXPECT_EQ(emb.faces.face_of.size(), g.dart_count());
}

}  // namespace
}  // namespace pr::embed
