// Tests for the synthetic ISP generator and the node-protecting LFA variant.
#include <gtest/gtest.h>

#include "analysis/protocols.hpp"
#include "embed/planar.hpp"
#include "graph/generators.hpp"
#include "graph/connectivity.hpp"
#include "net/failure_model.hpp"
#include "route/lfa.hpp"
#include "topo/topologies.hpp"

namespace pr {
namespace {

using graph::NodeId;

class SyntheticIspSuite : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SyntheticIspSuite, AlwaysPlanarAndTwoEdgeConnected) {
  graph::Rng rng(GetParam());
  const std::size_t core = 6 + rng.below(30);
  const std::size_t pops = rng.below(core);
  const auto g = topo::synthetic_isp(core, pops, rng);
  EXPECT_EQ(g.node_count(), core + pops);
  EXPECT_TRUE(graph::is_two_edge_connected(g));
  EXPECT_TRUE(embed::is_planar(g));
  g.check_invariants();
}

TEST_P(SyntheticIspSuite, PrRecoversSampledSingleFailures) {
  graph::Rng rng(GetParam() + 100);
  const auto g = topo::synthetic_isp(12, 8, rng);
  const analysis::ProtocolSuite suite(g);
  ASSERT_TRUE(suite.embedding().supports_pr());
  for (const auto& failures : net::all_single_failures(g)) {
    net::Network network(g);
    for (auto e : failures.elements()) network.fail_link(e);
    auto proto = suite.pr().make(network);
    for (NodeId s = 0; s < g.node_count(); s += 2) {
      for (NodeId t = 0; t < g.node_count(); t += 3) {
        if (s == t) continue;
        EXPECT_TRUE(net::route_packet(network, *proto, s, t).delivered());
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SyntheticIspSuite, ::testing::Range<std::uint64_t>(0, 8));

TEST(SyntheticIsp, LabelsAndValidation) {
  graph::Rng rng(5);
  const auto g = topo::synthetic_isp(6, 2, rng);
  EXPECT_TRUE(g.find_node("core0").has_value());
  EXPECT_TRUE(g.find_node("pop1").has_value());
  EXPECT_THROW((void)topo::synthetic_isp(3, 1, rng), std::invalid_argument);
}

TEST(SyntheticIsp, AccessPopsAreDualHomed) {
  graph::Rng rng(6);
  const std::size_t core = 10;
  const std::size_t pops = 7;
  const auto g = topo::synthetic_isp(core, pops, rng);
  for (NodeId v = core; v < g.node_count(); ++v) {
    EXPECT_EQ(g.degree(v), 2U) << g.display_name(v);
  }
}

TEST(NodeProtectingLfa, StrictlyFewerOrEqualAlternates) {
  const auto g = topo::geant();
  const route::RoutingDb db(g);
  const route::LfaRouting link_lfa(db, route::LfaKind::kLinkProtecting);
  const route::LfaRouting node_lfa(db, route::LfaKind::kNodeProtecting);
  EXPECT_LE(node_lfa.alternate_coverage(), link_lfa.alternate_coverage());
  EXPECT_GT(node_lfa.alternate_coverage(), 0.0);
  // Every node-protecting alternate must also be link-protecting-admissible.
  for (NodeId v = 0; v < g.node_count(); ++v) {
    for (NodeId t = 0; t < g.node_count(); ++t) {
      if (v == t) continue;
      const auto alt = node_lfa.alternate(v, t);
      if (alt == graph::kInvalidDart) continue;
      const NodeId nb = g.dart_head(alt);
      EXPECT_LT(db.cost(nb, t), db.cost(nb, v) + db.cost(v, t));
    }
  }
}

TEST(NodeProtectingLfa, SurvivesPrimaryNextHopDeath) {
  // Where a node-protecting alternate exists, killing the primary next-hop
  // ROUTER (not just the link) must still deliver via one LFA deflection.
  const auto g = topo::geant();
  const route::RoutingDb db(g);
  route::LfaRouting node_lfa(db, route::LfaKind::kNodeProtecting);
  std::size_t exercised = 0;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    for (NodeId t = 0; t < g.node_count(); ++t) {
      if (v == t) continue;
      const auto alt = node_lfa.alternate(v, t);
      if (alt == graph::kInvalidDart) continue;
      const NodeId primary_hop = g.dart_head(db.next_dart(v, t));
      if (primary_hop == t) continue;  // cannot kill the destination
      net::Network network(g);
      network.fail_node(primary_hop);
      const auto trace = net::route_packet(network, node_lfa, v, t);
      // The deflection is guaranteed; the rest of the path may meet the dead
      // router again only if the alternate's shortest path used it -- which
      // the node-protecting condition forbids.
      EXPECT_TRUE(trace.delivered()) << g.display_name(v) << "->" << g.display_name(t);
      ++exercised;
    }
  }
  EXPECT_GT(exercised, 100U);
}

TEST(NodeProtectingLfa, NamesReflectKind) {
  const auto g = graph::complete(4);
  const route::RoutingDb db(g);
  EXPECT_EQ(route::LfaRouting(db).name(), "lfa");
  EXPECT_EQ(route::LfaRouting(db, route::LfaKind::kNodeProtecting).name(),
            "lfa-node-protecting");
}

}  // namespace
}  // namespace pr
