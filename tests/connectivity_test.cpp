// Unit tests for components, bridges, articulation points and blocks.
#include "graph/connectivity.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/generators.hpp"

namespace pr::graph {
namespace {

TEST(Components, SingleComponentRing) {
  const Graph g = ring(5);
  const auto comp = connected_components(g);
  EXPECT_TRUE(std::all_of(comp.begin(), comp.end(),
                          [](std::uint32_t c) { return c == 0; }));
  EXPECT_TRUE(is_connected(g));
}

TEST(Components, TwoIslands) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  const auto comp = connected_components(g);
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[2], comp[3]);
  EXPECT_NE(comp[0], comp[2]);
  EXPECT_FALSE(is_connected(g));
  EXPECT_TRUE(same_component(g, 0, 1));
  EXPECT_FALSE(same_component(g, 1, 2));
}

TEST(Components, ExclusionSplitsRing) {
  const Graph g = ring(4);
  EdgeSet down(g.edge_count());
  down.insert(*g.find_edge(0, 1));
  EXPECT_TRUE(is_connected(g, &down));  // one failure: still a path
  down.insert(*g.find_edge(2, 3));
  EXPECT_FALSE(is_connected(g, &down));  // opposite failures split the ring
  EXPECT_TRUE(same_component(g, 1, 2, &down));
  EXPECT_FALSE(same_component(g, 0, 2, &down));
}

TEST(Components, EmptyAndSingleton) {
  EXPECT_TRUE(is_connected(Graph{}));
  EXPECT_TRUE(is_connected(Graph{1}));
  EXPECT_FALSE(is_connected(Graph{2}));
}

TEST(Bridges, RingHasNone) { EXPECT_TRUE(bridges(ring(5)).empty()); }

TEST(Bridges, LineIsAllBridges) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  EXPECT_EQ(bridges(g).size(), 3U);
}

TEST(Bridges, Barbell) {
  // Two triangles joined by one edge: exactly that edge is a bridge.
  Graph g(6);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);
  g.add_edge(3, 4);
  g.add_edge(4, 5);
  g.add_edge(5, 3);
  const EdgeId middle = g.add_edge(2, 3);
  const auto b = bridges(g);
  ASSERT_EQ(b.size(), 1U);
  EXPECT_EQ(b[0], middle);
}

TEST(Bridges, ParallelPairIsNotABridge) {
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(0, 1);       // parallel
  const EdgeId lone = g.add_edge(1, 2);
  const auto b = bridges(g);
  ASSERT_EQ(b.size(), 1U);
  EXPECT_EQ(b[0], lone);
}

TEST(Articulation, RingHasNone) { EXPECT_TRUE(articulation_points(ring(5)).empty()); }

TEST(Articulation, BarbellCutVertices) {
  Graph g(5);
  // Triangles 0-1-2 and 2-3-4 share vertex 2.
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);
  g.add_edge(2, 3);
  g.add_edge(3, 4);
  g.add_edge(4, 2);
  const auto cuts = articulation_points(g);
  ASSERT_EQ(cuts.size(), 1U);
  EXPECT_EQ(cuts[0], 2U);
}

TEST(Articulation, LineInteriorNodes) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  const auto cuts = articulation_points(g);
  ASSERT_EQ(cuts.size(), 2U);
  EXPECT_EQ(cuts[0], 1U);
  EXPECT_EQ(cuts[1], 2U);
}

TEST(Articulation, StarCenter) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(0, 3);
  const auto cuts = articulation_points(g);
  ASSERT_EQ(cuts.size(), 1U);
  EXPECT_EQ(cuts[0], 0U);
}

TEST(TwoEdgeConnected, Classification) {
  EXPECT_TRUE(is_two_edge_connected(ring(4)));
  EXPECT_TRUE(is_two_edge_connected(complete(4)));
  EXPECT_TRUE(is_two_edge_connected(torus(3, 3)));
  Graph line(3);
  line.add_edge(0, 1);
  line.add_edge(1, 2);
  EXPECT_FALSE(is_two_edge_connected(line));
  EXPECT_FALSE(is_two_edge_connected(Graph{3}));  // disconnected
}

TEST(Biconnected, Classification) {
  EXPECT_TRUE(is_biconnected(ring(4)));
  Graph g(5);  // two triangles sharing node 2 are 2-edge-connected but not 2-connected
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);
  g.add_edge(2, 3);
  g.add_edge(3, 4);
  g.add_edge(4, 2);
  EXPECT_TRUE(is_two_edge_connected(g));
  EXPECT_FALSE(is_biconnected(g));
}

TEST(Blocks, BarbellSplitsIntoThree) {
  Graph g(6);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);
  g.add_edge(3, 4);
  g.add_edge(4, 5);
  g.add_edge(5, 3);
  g.add_edge(2, 3);  // bridge forms its own block
  const auto blocks = biconnected_components(g);
  ASSERT_EQ(blocks.size(), 3U);
  std::size_t total = 0;
  for (const auto& b : blocks) total += b.size();
  EXPECT_EQ(total, g.edge_count());  // blocks partition the edges
}

TEST(Blocks, BiconnectedGraphIsOneBlock) {
  const Graph g = complete(5);
  const auto blocks = biconnected_components(g);
  ASSERT_EQ(blocks.size(), 1U);
  EXPECT_EQ(blocks[0].size(), g.edge_count());
}

TEST(Blocks, EveryEdgeInExactlyOneBlock) {
  Rng rng(42);
  const Graph g = random_two_edge_connected(20, 10, rng);
  const auto blocks = biconnected_components(g);
  std::vector<int> seen(g.edge_count(), 0);
  for (const auto& b : blocks) {
    for (EdgeId e : b) ++seen[e];
  }
  for (EdgeId e = 0; e < g.edge_count(); ++e) EXPECT_EQ(seen[e], 1) << "edge " << e;
}

}  // namespace
}  // namespace pr::graph
