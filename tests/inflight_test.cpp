// Event-driven properties: failures landing while packets are in flight.
//
// The synchronous walker samples link state per hop; the event simulator
// makes that real -- a link can die between a packet's hops, or even while
// the packet is cycle-following around an earlier failure.  The protocol
// contract still holds: every packet ends delivered or cleanly dropped, and
// the simulator never observes a forward-over-down-link violation (which
// would throw).
#include <gtest/gtest.h>

#include "analysis/protocols.hpp"
#include "core/pr_protocol.hpp"
#include "graph/connectivity.hpp"
#include "graph/generators.hpp"
#include "net/event_sim.hpp"
#include "net/failure_model.hpp"
#include "topo/topologies.hpp"

namespace pr {
namespace {

using graph::NodeId;

class InFlightSuite : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(InFlightSuite, RandomMidFlightFailuresNeverViolateTheContract) {
  graph::Rng rng(GetParam());
  const auto g = topo::geant();
  const analysis::ProtocolSuite suite(g);
  core::PacketRecycling pr(suite.routes(), suite.cycle_table());

  net::Network network(g);
  net::Simulator sim;

  // 30 random failures at random times within the first 50 ms.
  for (int i = 0; i < 30; ++i) {
    const auto e = static_cast<graph::EdgeId>(rng.below(g.edge_count()));
    sim.at(rng.unit() * 0.05, [&network, e] { network.fail_link(e); });
  }
  // 200 packets between random pairs, launched across the same window.
  std::size_t done = 0;
  std::size_t delivered = 0;
  for (int i = 0; i < 200; ++i) {
    const auto s = static_cast<NodeId>(rng.below(g.node_count()));
    auto t = static_cast<NodeId>(rng.below(g.node_count() - 1));
    if (t >= s) ++t;
    net::launch_packet(sim, network, pr, s, t, rng.unit() * 0.05,
                       [&done, &delivered, t](const net::PathTrace& trace) {
                         ++done;
                         if (trace.delivered()) {
                           ++delivered;
                           EXPECT_EQ(trace.nodes.back(), t);
                         }
                       });
  }
  // Contract violations throw out of sim.run(); absence of throw = pass.
  EXPECT_NO_THROW(sim.run());
  EXPECT_EQ(done, 200U);
  EXPECT_GT(delivered, 0U);
}

TEST_P(InFlightSuite, PacketsInFlightAtFailureTimeStillGetRepaired) {
  // One long path, one failure timed to land exactly while packets traverse
  // it: all packets sent before AND after must be delivered, since the
  // network stays connected.
  graph::Rng rng(GetParam() + 500);
  const auto g = topo::abilene();
  const analysis::ProtocolSuite suite(g);
  core::PacketRecycling pr(suite.routes(), suite.cycle_table());

  const auto src = *g.find_node("Seattle");
  const auto dst = *g.find_node("Atlanta");
  const auto mid = *g.find_edge(*g.find_node("KansasCity"), *g.find_node("Houston"));

  net::Network network(g);
  net::Simulator sim;
  sim.at(0.0021, [&] { network.fail_link(mid); });

  std::size_t delivered = 0;
  std::size_t total = 0;
  for (double t = 0.0; t < 0.006; t += 0.0005) {
    ++total;
    net::launch_packet(sim, network, pr, src, dst, t,
                       [&delivered](const net::PathTrace& trace) {
                         if (trace.delivered()) ++delivered;
                       });
  }
  sim.run();
  EXPECT_EQ(delivered, total) << "connected network: PR must save every packet";
}

INSTANTIATE_TEST_SUITE_P(Seeds, InFlightSuite, ::testing::Range<std::uint64_t>(0, 8));

TEST(InFlight, FlapDamperKeepsCycleFollowingConsistent) {
  // Section 7: a restored link must not flip state under a packet that saw it
  // down.  With the damper, a packet that starts cycle-following just before
  // the restore request still completes its detour coherently.
  const auto g = topo::abilene();
  const analysis::ProtocolSuite suite(g);
  core::PacketRecycling pr(suite.routes(), suite.cycle_table());

  net::Network network(g);
  net::Simulator sim;
  net::FlapDamper damper(sim, network, /*hold_down=*/1.0);

  const auto src = *g.find_node("Seattle");
  const auto dst = *g.find_node("NewYork");
  const auto edge = *g.find_edge(*g.find_node("Chicago"), *g.find_node("NewYork"));

  sim.at(0.001, [&] { damper.fail(edge); });
  sim.at(0.002, [&] { damper.request_restore(edge); });

  std::size_t delivered = 0;
  for (double t = 0.0; t < 0.01; t += 0.001) {
    net::launch_packet(sim, network, pr, src, dst, t,
                       [&delivered](const net::PathTrace& trace) {
                         if (trace.delivered()) ++delivered;
                       });
  }
  sim.run();
  EXPECT_EQ(delivered, 10U);
  EXPECT_TRUE(network.link_up(edge));  // restore committed after hold-down
  EXPECT_GT(sim.now(), 1.0);           // ... which takes the full window
}

TEST(InFlight, StormWithDamperDeliversEverythingReachable) {
  // A reproducible storm where every failure is eventually restored: by the
  // end the network is whole, and during the storm PR loses only packets
  // whose destination was momentarily unreachable (none, on single failures
  // spaced out in time).
  const auto g = topo::geant();
  const analysis::ProtocolSuite suite(g);
  core::PacketRecycling pr(suite.routes(), suite.cycle_table());

  net::Network network(g);
  net::Simulator sim;
  net::FlapDamper damper(sim, network, 0.05);
  graph::Rng rng(99);

  for (int i = 0; i < 10; ++i) {
    const auto e = static_cast<graph::EdgeId>(rng.below(g.edge_count()));
    const double t0 = 0.1 * i;
    sim.at(t0 + 0.01, [&damper, e] { damper.fail(e); });
    sim.at(t0 + 0.02, [&damper, e] { damper.request_restore(e); });
  }
  std::size_t delivered = 0;
  std::size_t total = 0;
  for (double t = 0.0; t < 1.0; t += 0.007) {
    ++total;
    const auto s = static_cast<NodeId>(rng.below(g.node_count()));
    auto d = static_cast<NodeId>(rng.below(g.node_count() - 1));
    if (d >= s) ++d;
    net::launch_packet(sim, network, pr, s, d, t,
                       [&delivered](const net::PathTrace& trace) {
                         if (trace.delivered()) ++delivered;
                       });
  }
  sim.run();
  EXPECT_EQ(delivered, total);
  EXPECT_EQ(network.failure_count(), 0U);
}

}  // namespace
}  // namespace pr
