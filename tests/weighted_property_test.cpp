// Property suites over weighted graphs: the paper's cost model is "sum of
// link weights along the path", and everything -- shortest paths, stretch,
// the weighted distance discriminator -- must respect it.
#include <gtest/gtest.h>

#include "analysis/protocols.hpp"
#include "analysis/stretch.hpp"
#include "core/pr_protocol.hpp"
#include "embed/embedder.hpp"
#include "graph/connectivity.hpp"
#include "graph/generators.hpp"
#include "net/failure_model.hpp"
#include "route/reconvergence.hpp"

namespace pr {
namespace {

using graph::Graph;
using graph::NodeId;

/// Random planar 2-edge-connected graph with random integer weights 1..9.
Graph weighted_outerplanar(std::size_t n, graph::Rng& rng) {
  Graph g = graph::random_outerplanar(n, n / 2, rng);
  for (graph::EdgeId e = 0; e < g.edge_count(); ++e) {
    g.set_edge_weight(e, static_cast<double>(1 + rng.below(9)));
  }
  return g;
}

class WeightedSuite : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WeightedSuite, PrDeliversAllSingleFailuresWithBothDiscriminators) {
  graph::Rng rng(GetParam());
  const Graph g = weighted_outerplanar(7 + rng.below(8), rng);
  const auto emb = embed::embed(g);
  ASSERT_EQ(emb.genus, 0);
  const core::CycleFollowingTable cycles(emb.rotation);

  for (const auto kind :
       {route::DiscriminatorKind::kHops, route::DiscriminatorKind::kWeightedCost}) {
    const route::RoutingDb routes(g, nullptr, kind);
    core::PacketRecycling pr(routes, cycles);
    for (const auto& failures : net::all_single_failures(g)) {
      net::Network network(g);
      for (auto e : failures.elements()) network.fail_link(e);
      for (NodeId s = 0; s < g.node_count(); ++s) {
        for (NodeId t = 0; t < g.node_count(); ++t) {
          if (s == t) continue;
          const auto trace = net::route_packet(network, pr, s, t);
          ASSERT_TRUE(trace.delivered())
              << "kind=" << static_cast<int>(kind) << " s=" << s << " t=" << t;
          EXPECT_GE(trace.cost, routes.cost(s, t) - 1e-9);
        }
      }
    }
  }
}

TEST_P(WeightedSuite, ReconvergenceIsOptimalAndLowerBoundsEveryone) {
  graph::Rng rng(GetParam() + 1000);
  const Graph g = weighted_outerplanar(8 + rng.below(6), rng);
  const analysis::ProtocolSuite suite(g);
  for (const auto& failures : net::all_single_failures(g)) {
    net::Network network(g);
    for (auto e : failures.elements()) network.fail_link(e);
    const route::RoutingDb truth(g, &failures);
    route::ReconvergedRouting reconv(network);
    auto pr = suite.pr().make(network);
    auto fcp = suite.fcp().make(network);
    for (NodeId s = 0; s < g.node_count(); ++s) {
      for (NodeId t = 0; t < g.node_count(); ++t) {
        if (s == t || !truth.reachable(s, t)) continue;
        const auto r = net::route_packet(network, reconv, s, t);
        ASSERT_TRUE(r.delivered());
        EXPECT_DOUBLE_EQ(r.cost, truth.cost(s, t)) << "reconvergence not optimal";
        const auto p = net::route_packet(network, *pr, s, t);
        const auto f = net::route_packet(network, *fcp, s, t);
        ASSERT_TRUE(p.delivered());
        ASSERT_TRUE(f.delivered());
        EXPECT_LE(r.cost, p.cost + 1e-9);
        EXPECT_LE(r.cost, f.cost + 1e-9);
      }
    }
  }
}

TEST_P(WeightedSuite, WeightedDiscriminatorDecreasesAlongShortestPaths) {
  graph::Rng rng(GetParam() + 2000);
  const Graph g = weighted_outerplanar(10, rng);
  const route::RoutingDb routes(g, nullptr, route::DiscriminatorKind::kWeightedCost);
  for (NodeId t = 0; t < g.node_count(); ++t) {
    for (NodeId v = 0; v < g.node_count(); ++v) {
      if (v == t) continue;
      const NodeId next = g.dart_head(routes.next_dart(v, t));
      EXPECT_LT(routes.discriminator(next, t), routes.discriminator(v, t));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WeightedSuite, ::testing::Range<std::uint64_t>(0, 10));

TEST(WeightedStretch, UsesCostsNotHops) {
  // A failure that forces a 2-hop detour of total weight 2 over a direct
  // link of weight 4 must yield stretch 0.5 relative to... no: stretch is
  // detour/original, original = min(4, 2) = 2 via the two-hop path already.
  // Build it so the original best is the direct link and the detour is
  // *cheaper in hops but costlier in weight*: stretch must use weight.
  Graph g(3);
  const auto direct = g.add_edge(0, 1, 2.0);
  g.add_edge(0, 2, 3.0);
  g.add_edge(2, 1, 3.0);
  const analysis::ProtocolSuite suite(g);
  std::vector<graph::EdgeSet> scenarios;
  scenarios.emplace_back(g.edge_count());
  scenarios.back().insert(direct);
  const auto result = analysis::run_stretch_experiment(g, scenarios, {suite.pr()});
  ASSERT_EQ(result.protocols[0].stretches.size(), 2U);  // (0,1) and (1,0)
  for (double s : result.protocols[0].stretches) {
    EXPECT_DOUBLE_EQ(s, 3.0);  // (3+3)/2, by weight -- not 2.0 by hops
  }
}

}  // namespace
}  // namespace pr
