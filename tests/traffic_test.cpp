// Tests for the traffic workload subsystem: demand matrices and generators,
// CSV round-trips, the shared capacity plan, demand-weighted load
// accumulation in route_batch, congestion metrics, and -- the load-bearing
// guarantee -- bit-identical traffic sweeps at every thread count.
#include <gtest/gtest.h>

#include <cmath>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "analysis/protocols.hpp"
#include "analysis/traffic.hpp"
#include "graph/generators.hpp"
#include "graph/rng.hpp"
#include "net/failure_model.hpp"
#include "net/queueing.hpp"
#include "sim/fault_plan.hpp"
#include "sim/parallel_sweep.hpp"
#include "sim/run_control.hpp"
#include "topo/topologies.hpp"
#include "traffic/capacity.hpp"
#include "traffic/congestion.hpp"
#include "traffic/demand.hpp"
#include "traffic/load_map.hpp"

namespace pr {
namespace {

using traffic::CapacityPlan;
using traffic::LoadMap;
using traffic::TrafficMatrix;

// ---------------------------------------------------------------------------
// TrafficMatrix and generators

TEST(TrafficMatrix, BasicAccounting) {
  TrafficMatrix m(3);
  EXPECT_EQ(m.node_count(), 3u);
  EXPECT_DOUBLE_EQ(m.total_pps(), 0.0);
  m.set_demand(0, 1, 100.0);
  m.add_demand(0, 1, 50.0);
  m.set_demand(2, 0, 25.0);
  EXPECT_DOUBLE_EQ(m.demand(0, 1), 150.0);
  EXPECT_DOUBLE_EQ(m.total_pps(), 175.0);
  EXPECT_EQ(m.pair_count(), 2u);

  m.scale_to_total(350.0);
  EXPECT_DOUBLE_EQ(m.demand(0, 1), 300.0);
  EXPECT_DOUBLE_EQ(m.demand(2, 0), 50.0);
}

TEST(TrafficMatrix, RejectsBadEntries) {
  TrafficMatrix m(3);
  EXPECT_THROW(m.set_demand(1, 1, 5.0), std::invalid_argument);   // diagonal
  EXPECT_THROW(m.set_demand(0, 1, -1.0), std::invalid_argument);  // negative
  EXPECT_THROW(m.set_demand(0, 1, std::nan("")), std::invalid_argument);
  EXPECT_THROW(m.set_demand(0, 3, 1.0), std::out_of_range);
  EXPECT_THROW(m.scale_to_total(100.0), std::invalid_argument);  // all-zero
}

TEST(DemandGenerators, UniformSplitsEvenly) {
  const auto g = graph::ring(5);
  const auto m = traffic::uniform_demand(g, 1000.0);
  EXPECT_NEAR(m.total_pps(), 1000.0, 1e-9);
  EXPECT_EQ(m.pair_count(), 20u);
  EXPECT_DOUBLE_EQ(m.demand(0, 1), 50.0);
  EXPECT_DOUBLE_EQ(m.demand(4, 2), 50.0);
}

TEST(DemandGenerators, GravityFollowsNodeMasses) {
  // Star plus an edge: the hub has the largest degree, so hub-adjacent pairs
  // carry the most demand.
  graph::Graph g;
  for (int i = 0; i < 4; ++i) g.add_node();
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(0, 3);
  g.add_edge(1, 2);
  const auto m = traffic::gravity_demand(g, 900.0);
  EXPECT_NEAR(m.total_pps(), 900.0, 1e-9);
  // mass(0)=3, mass(1)=mass(2)=2, mass(3)=1.
  EXPECT_GT(m.demand(0, 1), m.demand(1, 3));
  EXPECT_GT(m.demand(1, 0), m.demand(3, 1));
  EXPECT_DOUBLE_EQ(m.demand(1, 2), m.demand(2, 1));  // symmetric masses

  // Weight masses differ once weights do.
  g.set_edge_weight(*g.find_edge(0, 3), 10.0);
  const auto mw = traffic::gravity_demand(g, 900.0, traffic::GravityMass::kWeight);
  EXPECT_GT(mw.demand(3, 1), mw.demand(1, 3) / 10.0);
  EXPECT_NEAR(mw.total_pps(), 900.0, 1e-9);
}

TEST(DemandGenerators, HotspotSkewsAndIsSeedDeterministic) {
  const auto g = topo::abilene();
  graph::Rng rng_a(graph::split_seed(7, 0));
  graph::Rng rng_b(graph::split_seed(7, 0));
  const auto a = traffic::hotspot_demand(g, 1e6, 2, 0.5, rng_a);
  const auto b = traffic::hotspot_demand(g, 1e6, 2, 0.5, rng_b);
  EXPECT_EQ(a, b);  // same seed, bit-identical matrix
  EXPECT_NEAR(a.total_pps(), 1e6, 1e-6);

  // Half the volume lands on 2 hotspot columns: their column sums dominate.
  std::vector<double> col(g.node_count(), 0.0);
  for (graph::NodeId s = 0; s < g.node_count(); ++s) {
    for (graph::NodeId t = 0; t < g.node_count(); ++t) {
      if (s != t) col[t] += a.demand(s, t);
    }
  }
  std::sort(col.begin(), col.end());
  const double hot_two = col[g.node_count() - 1] + col[g.node_count() - 2];
  EXPECT_GT(hot_two, 0.5 * 1e6);

  graph::Rng rng_c(graph::split_seed(7, 1));
  const auto c = traffic::hotspot_demand(g, 1e6, 2, 0.5, rng_c);
  EXPECT_NE(a, c);  // different stream, different hotspots (w.h.p.)

  EXPECT_THROW(traffic::hotspot_demand(g, 1e6, 0, 0.5, rng_c), std::invalid_argument);
  EXPECT_THROW(traffic::hotspot_demand(g, 1e6, 2, 1.5, rng_c), std::invalid_argument);
}

TEST(DemandCsv, RoundTripsBitExactly) {
  const auto g = topo::abilene();  // labelled nodes
  graph::Rng rng(11);
  const auto m = traffic::hotspot_demand(g, 123456.789, 3, 0.37, rng);
  const auto text = traffic::demand_to_csv(g, m);
  const auto back = traffic::demand_from_csv(g, text);
  EXPECT_EQ(m, back);  // bit-exact doubles via max-precision serialisation
}

TEST(DemandCsv, RoundTripsUnlabeledNodes) {
  const auto g = graph::ring(4);  // display names n0..n3
  TrafficMatrix m(4);
  m.set_demand(0, 3, 12.5);
  m.set_demand(2, 1, 0.25);
  const auto back = traffic::demand_from_csv(g, traffic::demand_to_csv(g, m));
  EXPECT_EQ(m, back);
}

TEST(DemandCsv, ParsesCommentsAndWhitespace) {
  const auto g = topo::abilene();
  const auto m = traffic::demand_from_csv(
      g, "# a comment line\n  Seattle , Denver , 100.5  # trailing\n\nDenver,Seattle,1\n");
  EXPECT_DOUBLE_EQ(m.demand(*g.find_node("Seattle"), *g.find_node("Denver")), 100.5);
  EXPECT_DOUBLE_EQ(m.demand(*g.find_node("Denver"), *g.find_node("Seattle")), 1.0);
  EXPECT_EQ(m.pair_count(), 2u);
}

TEST(DemandCsv, RefusesAmbiguousUnlabeledNodeNames) {
  // Node 0 is labelled "n1" while node 1 is unlabeled: node 1 would
  // serialise as "n1" and re-read as node 0, so serialisation must refuse.
  graph::Graph g;
  g.add_node("n1");
  g.add_node();
  g.add_node("C");
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  TrafficMatrix m(3);
  m.set_demand(1, 2, 5.0);
  EXPECT_THROW((void)traffic::demand_to_csv(g, m), std::invalid_argument);

  // With the ambiguous node uninvolved, serialisation works and the label
  // precedence resolves "n1" to the labelled node.
  TrafficMatrix ok(3);
  ok.set_demand(0, 2, 7.0);
  const auto back = traffic::demand_from_csv(g, traffic::demand_to_csv(g, ok));
  EXPECT_EQ(ok, back);
  EXPECT_DOUBLE_EQ(traffic::demand_from_csv(g, "n1,C,3\n").demand(0, 2), 3.0);
}

TEST(DemandCsv, RejectsMalformedRecordsWithLineNumbers) {
  const auto g = topo::abilene();
  const auto expect_throw_line = [&](std::string_view text, const char* line_tag) {
    try {
      (void)traffic::demand_from_csv(g, text);
      FAIL() << "no throw for: " << text;
    } catch (const std::invalid_argument& ex) {
      EXPECT_NE(std::string(ex.what()).find(line_tag), std::string::npos) << ex.what();
    }
  };
  expect_throw_line("Seattle,Denver\n", "line 1");            // missing rate
  expect_throw_line("\nNowhere,Denver,5\n", "line 2");        // unknown node
  expect_throw_line("Seattle,Seattle,5\n", "line 1");         // self-pair
  expect_throw_line("Seattle,Denver,-5\n", "line 1");         // negative
  expect_throw_line("Seattle,Denver,fast\n", "line 1");       // bad number
  expect_throw_line("Seattle,Denver,5\nSeattle,Denver,6\n", "line 2");  // duplicate
  // A zero-rate first record still claims the pair.
  expect_throw_line("Seattle,Denver,0\nSeattle,Denver,6\n", "line 2");
}

TEST(DemandCsv, RefusesLabelsThatWouldNotRoundTrip) {
  // Labels with CSV metacharacters or surrounding whitespace re-read as a
  // different string (or a different node), so serialisation refuses them.
  for (const char* bad : {"A,B", "A#B", " A", "A\t"}) {
    graph::Graph g;
    g.add_node(bad);
    g.add_node("B");
    g.add_edge(0, 1);
    TrafficMatrix m(2);
    m.set_demand(0, 1, 5.0);
    EXPECT_THROW((void)traffic::demand_to_csv(g, m), std::invalid_argument) << bad;
    // Uninvolved, the awkward label is fine.
    TrafficMatrix none(2);
    EXPECT_NO_THROW((void)traffic::demand_to_csv(g, none));
  }
}

// ---------------------------------------------------------------------------
// CapacityPlan and the shared QueueModel pricing

TEST(CapacityPlan, ConstructorsAndOverrides) {
  const auto g = topo::abilene();
  auto plan = CapacityPlan::uniform(g, 1000.0);
  EXPECT_EQ(plan.edge_count(), g.edge_count());
  EXPECT_DOUBLE_EQ(plan.capacity_pps(3), 1000.0);
  plan.set_capacity_pps(3, 2500.0);
  EXPECT_DOUBLE_EQ(plan.capacity_pps(3), 2500.0);
  EXPECT_THROW(plan.set_capacity_pps(3, 0.0), std::invalid_argument);
  EXPECT_THROW(CapacityPlan::uniform(g, -1.0), std::invalid_argument);

  graph::Graph wg;
  wg.add_node();
  wg.add_node();
  wg.add_node();
  wg.add_edge(0, 1, 1.0);
  wg.add_edge(1, 2, 4.0);
  const auto weighted = CapacityPlan::from_weights(wg, 100.0);
  EXPECT_DOUBLE_EQ(weighted.capacity_pps(0), 100.0);
  EXPECT_DOUBLE_EQ(weighted.capacity_pps(1), 400.0);
}

TEST(CapacityPlan, QueueConfigRoundTrip) {
  const auto g = topo::abilene();
  net::QueueModel::Config cfg;
  cfg.link_rate_bps = 8e6;
  cfg.packet_bits = 8000;
  cfg.queue_packets = 32;
  const auto plan = CapacityPlan::from_queue_config(g, cfg);
  EXPECT_DOUBLE_EQ(plan.capacity_pps(0), 1000.0);  // 8e6 / 8000

  const auto back = plan.queue_config(cfg.packet_bits, cfg.queue_packets);
  EXPECT_DOUBLE_EQ(back.link_rate_bps, cfg.link_rate_bps);
  EXPECT_EQ(back.queue_packets, cfg.queue_packets);

  auto mixed = plan;
  mixed.set_capacity_pps(0, 5000.0);
  EXPECT_THROW((void)mixed.queue_config(8000, 32), std::logic_error);
}

TEST(CapacityPlan, PerEdgeQueueModelPricesLinksLikeThePlan) {
  graph::Graph g;
  g.add_node();
  g.add_node();
  g.add_node();
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 4.0);
  const auto plan = CapacityPlan::from_weights(g, 1000.0);  // 1000 and 4000 pps
  net::Network network(g);
  net::QueueModel::Config cfg;
  cfg.packet_bits = 8000;
  const net::QueueModel queues(network, cfg, plan.link_rates_bps(cfg.packet_bits));
  // Service time per dart = 1 / capacity_pps, both directions of each edge.
  EXPECT_DOUBLE_EQ(queues.transmission_time(graph::make_dart(0, 0)), 1.0 / 1000.0);
  EXPECT_DOUBLE_EQ(queues.transmission_time(graph::make_dart(0, 1)), 1.0 / 1000.0);
  EXPECT_DOUBLE_EQ(queues.transmission_time(graph::make_dart(1, 0)), 1.0 / 4000.0);

  EXPECT_THROW(net::QueueModel(network, cfg, std::vector<double>{1.0}),
               std::invalid_argument);
  EXPECT_THROW(net::QueueModel(network, cfg, std::vector<double>{8e6, 0.0}),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// LoadMap and demand-weighted route_batch

TEST(LoadMap, AccumulatesAndMerges) {
  LoadMap a(4);
  a.add(0, 10.0);
  a.add(0, 5.0);
  a.add(3, 1.0);
  EXPECT_DOUBLE_EQ(a.load(0), 15.0);
  EXPECT_DOUBLE_EQ(a.total_pps(), 16.0);

  LoadMap b(4);
  b.add(0, 1.0);
  b.add(1, 2.0);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.load(0), 16.0);
  EXPECT_DOUBLE_EQ(a.load(1), 2.0);

  LoadMap wrong(3);
  EXPECT_THROW(a.merge(wrong), std::invalid_argument);

  a.reset(4);
  EXPECT_DOUBLE_EQ(a.total_pps(), 0.0);
}

TEST(LoadMapReduction, AddAndMergeAdoptSizesAndCountScenarios) {
  LoadMap s0(2);
  s0.add(0, 10.0);
  LoadMap s1(2);
  s1.add(1, 4.0);

  // Serial style: fold scenario maps directly.
  traffic::LoadMapReduction serial;
  serial.add(s0);
  serial.add(s1);
  EXPECT_EQ(serial.scenarios, 2u);
  EXPECT_DOUBLE_EQ(serial.load.load(0), 10.0);
  EXPECT_DOUBLE_EQ(serial.load.load(1), 4.0);

  // Parallel style: per-unit reductions merged in canonical order (the
  // empty-into-empty and empty-other corners included) equal the serial fold.
  traffic::LoadMapReduction u0;
  u0.add(s0);
  traffic::LoadMapReduction u1;
  u1.add(s1);
  traffic::LoadMapReduction total;
  total.merge(traffic::LoadMapReduction{});  // no-op
  total.merge(u0);
  total.merge(u1);
  total.merge(traffic::LoadMapReduction{});  // still a no-op on the map
  EXPECT_EQ(total.load, serial.load);
  EXPECT_EQ(total.scenarios, 2u);
}

TEST(RouteBatchDemand, ChargesEveryTraversedDart) {
  // Path A-B-C: flow A->C loads both darts along the path, nothing else.
  graph::Graph g;
  const auto a = g.add_node("A");
  const auto b = g.add_node("B");
  const auto c = g.add_node("C");
  const auto e_ab = g.add_edge(a, b);
  const auto e_bc = g.add_edge(b, c);

  const analysis::ProtocolSuite suite(g);
  net::Network network(g);
  const auto proto = suite.spf().make(network);

  const std::vector<sim::FlowSpec> flows{{a, c}, {c, a}};
  const std::vector<double> demands{100.0, 40.0};
  LoadMap load;
  sim::BatchResult batch;
  sim::route_batch(network, *proto, flows, demands, load, sim::TraceMode::kStats,
                   batch);

  EXPECT_EQ(batch.delivered_count(), 2u);
  EXPECT_DOUBLE_EQ(load.load(g.dart_from(a, e_ab)), 100.0);
  EXPECT_DOUBLE_EQ(load.load(g.dart_from(b, e_bc)), 100.0);
  EXPECT_DOUBLE_EQ(load.load(g.dart_from(c, e_bc)), 40.0);
  EXPECT_DOUBLE_EQ(load.load(g.dart_from(b, e_ab)), 40.0);
  EXPECT_DOUBLE_EQ(load.total_pps(), 280.0);

  EXPECT_THROW(sim::route_batch(network, *proto, flows, std::vector<double>{1.0},
                                load, sim::TraceMode::kStats, batch),
               std::invalid_argument);
}

TEST(RouteBatchDemand, DroppedFlowLoadsItsPartialPath) {
  // Path A-B-C with B-C failed: plain SPF drops at B after crossing A-B, so
  // the A-side dart carries the demand and the dead link carries none.
  graph::Graph g;
  const auto a = g.add_node("A");
  const auto b = g.add_node("B");
  const auto c = g.add_node("C");
  const auto e_ab = g.add_edge(a, b);
  const auto e_bc = g.add_edge(b, c);

  const analysis::ProtocolSuite suite(g);
  net::Network network(g);
  network.fail_link(e_bc);
  const auto proto = suite.spf().make(network);

  const std::vector<sim::FlowSpec> flows{{a, c}};
  const std::vector<double> demands{60.0};
  LoadMap load;
  sim::BatchResult batch;
  sim::route_batch(network, *proto, flows, demands, load, sim::TraceMode::kStats,
                   batch);

  EXPECT_EQ(batch.delivered_count(), 0u);
  EXPECT_DOUBLE_EQ(load.load(g.dart_from(a, e_ab)), 60.0);
  EXPECT_DOUBLE_EQ(load.load(g.dart_from(b, e_bc)), 0.0);
  EXPECT_DOUBLE_EQ(load.total_pps(), 60.0);
}

TEST(RouteBatchDemand, MatchesPlainOverloadOutcomes) {
  // The demand-weighted overload may never change routing results.
  const auto g = topo::abilene();
  const analysis::ProtocolSuite suite(g);
  net::Network network(g);
  network.fail_link(2);
  const auto flows = sim::all_pairs_flows(g);
  const std::vector<double> demands(flows.size(), 3.25);

  const auto p1 = suite.pr().make(network);
  const auto plain = sim::route_batch(network, *p1, flows);
  const auto p2 = suite.pr().make(network);
  LoadMap load;
  sim::BatchResult weighted;
  sim::route_batch(network, *p2, flows, demands, load, sim::TraceMode::kStats,
                   weighted);

  ASSERT_EQ(weighted.size(), plain.size());
  for (std::size_t f = 0; f < plain.size(); ++f) {
    EXPECT_EQ(weighted[f].status, plain[f].status);
    EXPECT_EQ(weighted[f].hops, plain[f].hops);
    EXPECT_EQ(weighted[f].cost, plain[f].cost);
  }
  // Load is demand-weighted hop volume: sum of hops times the uniform rate.
  std::uint64_t hops = 0;
  for (const auto& fs : plain.stats()) hops += fs.hops;
  EXPECT_NEAR(load.total_pps(), static_cast<double>(hops) * 3.25, 1e-6);
}

// ---------------------------------------------------------------------------
// Congestion metrics

TEST(Congestion, UtilizationAndSummary) {
  graph::Graph g;
  g.add_node();
  g.add_node();
  g.add_node();
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  const auto plan = CapacityPlan::uniform(g, 100.0);
  LoadMap load(g.dart_count());
  load.add(graph::make_dart(0, 0), 150.0);  // 1.5x on edge 0 forward
  load.add(graph::make_dart(1, 1), 50.0);   // 0.5x on edge 1 reverse

  traffic::CongestionMetrics m;
  traffic::apply_utilization(m, g, load, plan);
  EXPECT_DOUBLE_EQ(m.max_utilization, 1.5);
  EXPECT_EQ(m.overloaded_links, 1u);

  traffic::CongestionMetrics quiet;
  traffic::apply_utilization(quiet, g, LoadMap(g.dart_count()), plan);
  EXPECT_DOUBLE_EQ(quiet.max_utilization, 0.0);
  EXPECT_EQ(quiet.overloaded_links, 0u);

  m.offered_pps = 200.0;
  m.delivered_pps = 150.0;
  m.lost_pps = 30.0;
  m.stranded_pps = 20.0;
  const std::vector<traffic::CongestionMetrics> rows{m, quiet};
  const auto s = traffic::summarize(rows);
  EXPECT_EQ(s.scenarios, 2u);
  EXPECT_DOUBLE_EQ(s.worst_max_utilization, 1.5);
  EXPECT_DOUBLE_EQ(s.mean_max_utilization, 0.75);
  EXPECT_EQ(s.overloaded_links, 1u);
  EXPECT_EQ(s.overloaded_scenarios, 1u);
  EXPECT_DOUBLE_EQ(s.offered_pps, 200.0);
  EXPECT_DOUBLE_EQ(s.stranded_pps, 20.0);
}

// ---------------------------------------------------------------------------
// Traffic experiment: volume accounting and sweep determinism

TEST(TrafficExperiment, ClassifiesStrandedVsLostVolume) {
  // Ring of 4 with two failures partitioning node 1 away from node 3.
  const auto g = graph::ring(4);
  const analysis::ProtocolSuite suite(g);
  TrafficMatrix demand(g.node_count());
  demand.set_demand(0, 1, 100.0);
  demand.set_demand(3, 1, 50.0);
  const auto plan = CapacityPlan::uniform(g, 1000.0);

  // Failing both of node 1's links isolates it; all demand into 1 strands.
  std::vector<graph::EdgeSet> scenarios(1, graph::EdgeSet(g.edge_count()));
  scenarios[0].insert(*g.find_edge(0, 1));
  scenarios[0].insert(*g.find_edge(1, 2));

  const auto result = analysis::run_traffic_experiment(g, demand, plan, scenarios,
                                                       {suite.reconvergence()});
  ASSERT_EQ(result.protocols.size(), 1u);
  const auto& rows = result.protocols[0].per_scenario;
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_DOUBLE_EQ(rows[0].offered_pps, 150.0);
  EXPECT_DOUBLE_EQ(rows[0].delivered_pps, 0.0);
  EXPECT_DOUBLE_EQ(rows[0].lost_pps, 0.0);
  EXPECT_DOUBLE_EQ(rows[0].stranded_pps, 150.0);

  // A survivable single failure delivers everything under reconvergence.
  std::vector<graph::EdgeSet> single(1, graph::EdgeSet(g.edge_count()));
  single[0].insert(*g.find_edge(0, 1));
  const auto ok = analysis::run_traffic_experiment(g, demand, plan, single,
                                                   {suite.reconvergence()});
  EXPECT_DOUBLE_EQ(ok.protocols[0].per_scenario[0].delivered_pps, 150.0);
  EXPECT_DOUBLE_EQ(ok.protocols[0].per_scenario[0].stranded_pps, 0.0);
}

TEST(TrafficExperiment, LfaCoverageGapsPriceAsLostVolume) {
  // LFA drops recoverable demand where it lacks an alternate; that demand
  // must appear as lost (not stranded) because a path still existed.
  const auto g = topo::abilene();
  const analysis::ProtocolSuite suite(g);
  const auto demand = traffic::uniform_demand(g, 1e5);
  const auto plan = CapacityPlan::uniform(g, 1e5);
  const auto scenarios = net::all_single_failures(g);

  const auto result =
      analysis::run_traffic_experiment(g, demand, plan, scenarios, {suite.lfa()});
  const auto s = result.protocols[0].summary();
  EXPECT_GT(s.lost_pps, 0.0);
  EXPECT_DOUBLE_EQ(s.stranded_pps, 0.0);  // Abilene is 2-edge-connected
  EXPECT_NEAR(s.offered_pps, s.delivered_pps + s.lost_pps + s.stranded_pps, 1e-6);
}

void expect_identical_traffic(const analysis::TrafficExperimentResult& serial,
                              const analysis::TrafficExperimentResult& parallel,
                              std::size_t threads) {
  ASSERT_EQ(parallel.protocols.size(), serial.protocols.size());
  EXPECT_EQ(parallel.scenarios, serial.scenarios);
  EXPECT_EQ(parallel.flows_per_scenario, serial.flows_per_scenario);
  for (std::size_t i = 0; i < serial.protocols.size(); ++i) {
    const auto& s = serial.protocols[i];
    const auto& p = parallel.protocols[i];
    EXPECT_EQ(p.name, s.name);
    // Bit-identical doubles -- per-scenario metric rows, the summed load map
    // and the aggregate summary -- not approximate equality: canonical-order
    // merge makes the floating-point sums exact.
    EXPECT_EQ(p.per_scenario, s.per_scenario) << s.name << " @ " << threads;
    EXPECT_EQ(p.total_load, s.total_load) << s.name << " @ " << threads;
    EXPECT_EQ(p.summary(), s.summary()) << s.name << " @ " << threads;
  }
}

TEST(TrafficExperiment, WeightedCostDiscriminatorSuiteIsSafe) {
  // Regression guard: the driver's stranded/lost classification must not
  // borrow the ScenarioRoutingCache's table storage -- a kWeightedCost suite
  // makes cached factories request a different DiscriminatorKind from the
  // same per-worker cache, which reallocates the cached RoutingDb.  An
  // earlier draft held such a reference across make_protocol (use-after-free
  // under ASan); classification now uses residual components instead.
  const auto g = topo::abilene();
  const analysis::ProtocolSuite suite(g, embed::EmbedOptions{},
                                      route::DiscriminatorKind::kWeightedCost);
  const auto demand = traffic::uniform_demand(g, 1e4);
  const auto plan = CapacityPlan::uniform(g, 1e4);
  const auto scenarios = net::all_single_failures(g);
  const std::vector<analysis::NamedFactory> protocols = {suite.reconvergence(),
                                                         suite.pr()};

  const auto serial =
      analysis::run_traffic_experiment(g, demand, plan, scenarios, protocols);
  EXPECT_GT(serial.protocols[0].summary().delivered_pps, 0.0);
  sim::SweepExecutor executor(2);
  expect_identical_traffic(
      serial,
      analysis::run_traffic_experiment(g, demand, plan, scenarios, protocols,
                                       executor),
      2);
}

TEST(TrafficSweepDeterminismTest, BitIdenticalAcrossThreadCountsAndProtocols) {
  for (const std::uint64_t topo_seed : {1ULL, 2ULL}) {
    graph::Rng rng(topo_seed);
    const graph::Graph g = graph::random_two_edge_connected(10, 6, rng);
    const analysis::ProtocolSuite suite(g);
    const std::vector<analysis::NamedFactory> protocols = {
        suite.pr(), suite.lfa(), suite.reconvergence(), suite.fcp()};

    graph::Rng demand_rng(graph::split_seed(topo_seed, 42));
    const auto demand = traffic::hotspot_demand(g, 5e5, 2, 0.4, demand_rng);
    const auto plan = CapacityPlan::from_weights(g, 1e4);

    // Partitions included: stranded classification must be deterministic too.
    auto scenarios = net::all_single_failures(g);
    for (auto& s : net::sample_any_failures(g, 2, 8, rng)) {
      scenarios.push_back(std::move(s));
    }

    const auto serial =
        analysis::run_traffic_experiment(g, demand, plan, scenarios, protocols);
    for (const std::size_t threads : {1U, 2U, 8U}) {
      sim::SweepExecutor executor(threads);
      expect_identical_traffic(
          serial,
          analysis::run_traffic_experiment(g, demand, plan, scenarios, protocols,
                                           executor),
          threads);
    }
  }
}

TEST(TrafficSweepDeterminismTest, AbileneGravitySingleFailures) {
  const auto g = topo::abilene();
  const analysis::ProtocolSuite suite(g);
  const std::vector<analysis::NamedFactory> protocols = {suite.pr(), suite.lfa(),
                                                         suite.reconvergence()};
  const auto demand = traffic::gravity_demand(g, 1e6);
  const auto plan = CapacityPlan::uniform(g, 2.5e5);
  const auto scenarios = net::all_single_failures(g);

  const auto serial =
      analysis::run_traffic_experiment(g, demand, plan, scenarios, protocols);
  // Sanity: the sweep moves real volume and conserves it.
  for (const auto& p : serial.protocols) {
    const auto s = p.summary();
    EXPECT_NEAR(s.offered_pps, s.delivered_pps + s.lost_pps + s.stranded_pps, 1e-6)
        << p.name;
    EXPECT_GT(s.delivered_pps, 0.0) << p.name;
  }
  for (const std::size_t threads : {2U, 8U}) {
    sim::SweepExecutor executor(threads);
    expect_identical_traffic(
        serial,
        analysis::run_traffic_experiment(g, demand, plan, scenarios, protocols,
                                         executor),
        threads);
  }
}

// ---------------------------------------------------------------------------
// demand_from_csv hardening (PR 8): every malformed-input class must throw
// std::invalid_argument naming the RIGHT line, with no UB on the way (this
// suite runs under ASan/UBSan in CI).

TEST(DemandCsv, MalformedInputTableNamesLineAndCause) {
  const auto g = topo::abilene();
  struct Case {
    const char* text;
    const char* line_tag;
    const char* cause;
  };
  const Case cases[] = {
      // Field-count violations, including separators that never split.
      {"Seattle,Denver,5,9\n", "line 1", "expected 'src,dst,pps'"},
      {"Seattle;Denver;5\n", "line 1", "expected 'src,dst,pps'"},
      {"Seattle,Denver\n", "line 1", "expected 'src,dst,pps'"},
      // Endpoint resolution, including the empty token.
      {",Denver,5\n", "line 1", "unknown node ''"},
      {"Seattle,Atlantis,5\n", "line 1", "unknown node 'Atlantis'"},
      {"n99,Denver,5\n", "line 1", "unknown node 'n99'"},
      {"Seattle,Seattle,5\n", "line 1", "self-pair 'Seattle'"},
      // Rate parsing: junk, trailing junk, and out-of-double-range.
      {"Seattle,Denver,fast\n", "line 1", "bad rate 'fast'"},
      {"Seattle,Denver,5x\n", "line 1", "bad rate '5x'"},
      {"Seattle,Denver,1e999\n", "line 1", "bad rate '1e999'"},
      {"Seattle,Denver,\n", "line 1", "bad rate ''"},
      // Parses as a double but is not admissible demand.
      {"Seattle,Denver,-5\n", "line 1", "rate must be finite and >= 0"},
      {"Seattle,Denver,nan\n", "line 1", "rate must be finite and >= 0"},
      {"Seattle,Denver,inf\n", "line 1", "rate must be finite and >= 0"},
      // Line numbering must count comments and blank lines.
      {"# header\n\nSeattle,Denver,5\nDenver , Seattle , oops\n", "line 4",
       "bad rate 'oops'"},
      {"Seattle,Denver,5\n\n# note\nAtlantis,Denver,1\n", "line 4",
       "unknown node 'Atlantis'"},
      {"Seattle,Denver,1\n# again\nSeattle,Denver,2\n", "line 3",
       "duplicate pair Seattle -> Denver"},
  };
  for (const Case& c : cases) {
    try {
      (void)traffic::demand_from_csv(g, c.text);
      FAIL() << "no throw for: " << c.text;
    } catch (const std::invalid_argument& ex) {
      const std::string what = ex.what();
      EXPECT_NE(what.find("demand csv"), std::string::npos) << what;
      EXPECT_NE(what.find(c.line_tag), std::string::npos)
          << what << "  input: " << c.text;
      EXPECT_NE(what.find(c.cause), std::string::npos)
          << what << "  input: " << c.text;
    }
  }
}

TEST(DemandCsv, SurvivesHostileShapesWithoutUB) {
  // Inputs chosen to stress the scanner's boundary arithmetic: no trailing
  // newline, lone separators, CR-LF endings, comment-only and whitespace-only
  // bodies.  None of these should read out of bounds (ASan is the judge);
  // the valid ones must parse, the rest throw cleanly.
  const auto g = topo::abilene();
  EXPECT_EQ(traffic::demand_from_csv(g, "").total_pps(), 0.0);
  EXPECT_EQ(traffic::demand_from_csv(g, "\n\n\n").total_pps(), 0.0);
  EXPECT_EQ(traffic::demand_from_csv(g, "# only a comment").total_pps(), 0.0);
  EXPECT_EQ(traffic::demand_from_csv(g, "   \t  ").total_pps(), 0.0);
  // No trailing newline on the last (valid) record.
  EXPECT_DOUBLE_EQ(
      traffic::demand_from_csv(g, "Seattle,Denver,5").demand(*g.find_node("Seattle"),
                                                             *g.find_node("Denver")),
      5.0);
  // CR-LF line endings trim cleanly.
  EXPECT_DOUBLE_EQ(traffic::demand_from_csv(g, "Seattle,Denver,7\r\n")
                       .demand(*g.find_node("Seattle"), *g.find_node("Denver")),
                   7.0);
  // A lone comma line is two empty fields, not a crash.
  EXPECT_THROW((void)traffic::demand_from_csv(g, ","), std::invalid_argument);
  EXPECT_THROW((void)traffic::demand_from_csv(g, ",,"), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Resilient traffic sweeps: RunControl truncation over enumerated scenarios.

TEST(TrafficResilience, BudgetPrefixMatchesASmallerRun) {
  const auto g = topo::abilene();
  const analysis::ProtocolSuite suite(g);
  const auto demand = traffic::uniform_demand(g, 1e4);
  const auto plan = CapacityPlan::uniform(g, 1e4);
  const auto scenarios = net::all_single_failures(g);
  ASSERT_GT(scenarios.size(), 7u);
  const std::vector<analysis::NamedFactory> protocols = {suite.reconvergence(),
                                                         suite.pr()};

  const auto want = analysis::run_traffic_experiment(
      g, demand, plan,
      std::span<const graph::EdgeSet>(scenarios).first(7), protocols);

  for (const std::size_t threads : {1U, 2U, 8U}) {
    sim::SweepExecutor executor(threads);
    sim::RunControl control;
    control.set_unit_budget(7);
    const auto run = analysis::run_traffic_experiment_resilient(
        g, demand, plan, scenarios, protocols, executor, control);
    EXPECT_EQ(run.outcome.stop_reason, sim::StopReason::kBudget);
    EXPECT_EQ(run.outcome.completed_units, 7u);
    EXPECT_FALSE(run.complete());
    expect_identical_traffic(want, run.result, threads);
  }
}

TEST(TrafficResilience, InjectedFailureIsContainedWithContext) {
  const auto g = topo::abilene();
  const analysis::ProtocolSuite suite(g);
  const auto demand = traffic::uniform_demand(g, 1e4);
  const auto plan = CapacityPlan::uniform(g, 1e4);
  const auto scenarios = net::all_single_failures(g);
  const std::vector<analysis::NamedFactory> protocols = {suite.reconvergence()};

  sim::SweepExecutor executor(2);
  sim::RunControl control;
  sim::FaultPlan faults;
  faults.throw_in_unit(3);
  control.set_fault_plan(&faults);
  const auto run = analysis::run_traffic_experiment_resilient(
      g, demand, plan, scenarios, protocols, executor, control);
  EXPECT_EQ(run.outcome.stop_reason, sim::StopReason::kUnitError);
  EXPECT_EQ(run.outcome.completed_units, 3u);
  EXPECT_EQ(run.result.scenarios, 3u);
  ASSERT_NE(run.outcome.first_error(), nullptr);
  EXPECT_EQ(run.outcome.first_error()->unit, 3u);
  EXPECT_NE(run.outcome.first_error()->what.find("injected fault"),
            std::string::npos);

  // The legacy throwing overload reports the same context in its exception.
  try {
    (void)analysis::run_traffic_experiment(g, demand, plan, scenarios, protocols,
                                           executor);
    SUCCEED();  // no control, no faults: completes
  } catch (...) {
    FAIL() << "uncontrolled run must not throw without a fault plan";
  }
}

}  // namespace
}  // namespace pr
