// Tests for the bundled topologies: shapes, the properties the paper's
// guarantees require, and header-budget facts quoted in Section 6.
#include "topo/topologies.hpp"

#include <gtest/gtest.h>

#include "embed/planar.hpp"
#include "graph/connectivity.hpp"
#include "graph/dijkstra.hpp"
#include "net/header_codec.hpp"

namespace pr::topo {
namespace {

TEST(Figure1, Shape) {
  const auto g = figure1();
  EXPECT_EQ(g.node_count(), 6U);
  EXPECT_EQ(g.edge_count(), 8U);
  EXPECT_TRUE(graph::is_two_edge_connected(g));
  EXPECT_TRUE(embed::is_planar(g));
}

TEST(Figure1, RotationRequiresMatchingGraph) {
  const auto g = figure1();
  EXPECT_NO_THROW((void)figure1_rotation(g));
  const auto wrong = abilene();
  EXPECT_THROW((void)figure1_rotation(wrong), std::invalid_argument);
}

TEST(Abilene, ExactShape) {
  const auto g = abilene();
  EXPECT_EQ(g.node_count(), 11U);
  EXPECT_EQ(g.edge_count(), 14U);
  EXPECT_TRUE(graph::is_two_edge_connected(g));
  // The 2004 Abilene map is planar.
  EXPECT_TRUE(embed::is_planar(g));
  // Spot-check well-known adjacencies.
  const auto n = [&g](const char* l) { return *g.find_node(l); };
  EXPECT_TRUE(g.find_edge(n("Seattle"), n("Sunnyvale")).has_value());
  EXPECT_TRUE(g.find_edge(n("KansasCity"), n("Indianapolis")).has_value());
  EXPECT_TRUE(g.find_edge(n("Washington"), n("NewYork")).has_value());
  EXPECT_FALSE(g.find_edge(n("Seattle"), n("NewYork")).has_value());
}

TEST(Abilene, HeaderFitsDscpPool2) {
  // Abilene's hop diameter is 5, so PR needs 1 + 3 bits: within pool 2,
  // exactly the deployment story of Section 6.
  const auto g = abilene();
  const auto d = graph::hop_diameter(g);
  EXPECT_EQ(d, 5U);
  EXPECT_TRUE(net::PrHeaderLayout::for_hop_diameter(d).fits_dscp_pool2());
}

TEST(Geant, ApproximationShape) {
  const auto g = geant();
  EXPECT_EQ(g.node_count(), 34U);
  EXPECT_EQ(g.edge_count(), 55U);
  EXPECT_TRUE(graph::is_connected(g));
  EXPECT_TRUE(graph::is_two_edge_connected(g))
      << "every NREN must be dual-homed for the single-failure guarantee";
  for (graph::NodeId v = 0; v < g.node_count(); ++v) {
    EXPECT_GE(g.degree(v), 2U) << g.display_name(v);
  }
}

TEST(Geant, DiameterSmallEnoughForCompactDd) {
  const auto g = geant();
  const auto d = graph::hop_diameter(g);
  EXPECT_LE(d, 8U);
  EXPECT_LE(net::PrHeaderLayout::for_hop_diameter(d).total_bits(), 5U);
}

TEST(Teleglobe, ApproximationShape) {
  const auto g = teleglobe();
  EXPECT_EQ(g.node_count(), 25U);
  EXPECT_EQ(g.edge_count(), 45U);
  EXPECT_TRUE(graph::is_two_edge_connected(g));
  for (graph::NodeId v = 0; v < g.node_count(); ++v) {
    EXPECT_GE(g.degree(v), 2U) << g.display_name(v);
  }
}

TEST(Teleglobe, SizedBetweenAbileneAndGeant) {
  // The paper's failure counts (4 / 10 / 16) imply this ordering.
  EXPECT_GT(teleglobe().edge_count(), abilene().edge_count());
  EXPECT_LT(teleglobe().edge_count(), geant().edge_count());
}

TEST(AllTopologies, UnitWeightsExceptFigure1) {
  for (const auto& g : {abilene(), geant(), teleglobe()}) {
    for (graph::EdgeId e = 0; e < g.edge_count(); ++e) {
      EXPECT_DOUBLE_EQ(g.edge_weight(e), 1.0);
    }
  }
}

TEST(AllTopologies, LabelsAreUniqueAndNonEmpty) {
  for (const auto& g : {figure1(), abilene(), geant(), teleglobe()}) {
    for (graph::NodeId v = 0; v < g.node_count(); ++v) {
      EXPECT_FALSE(g.node_label(v).empty());
      EXPECT_EQ(g.find_node(g.node_label(v)), std::optional<graph::NodeId>(v));
    }
  }
}

}  // namespace
}  // namespace pr::topo
