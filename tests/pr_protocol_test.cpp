// Unit tests for cycle-following tables and the PacketRecycling protocol.
#include "core/pr_protocol.hpp"

#include <gtest/gtest.h>

#include "embed/embedder.hpp"
#include "graph/dijkstra.hpp"
#include "graph/generators.hpp"
#include "net/failure_model.hpp"
#include "topo/topologies.hpp"

namespace pr::core {
namespace {

using graph::DartId;
using graph::EdgeId;
using graph::NodeId;

TEST(CycleFollowingTable, PhiIdentities) {
  graph::Rng rng(41);
  const auto g = graph::random_two_edge_connected(10, 6, rng);
  const auto emb = embed::embed(g);
  const CycleFollowingTable table(emb.rotation);
  for (DartId d = 0; d < g.dart_count(); ++d) {
    // Column 2 is phi.
    EXPECT_EQ(table.cycle_following(d), emb.rotation.face_successor(d));
    // Column 3 equals sigma of the failed out-dart (right-hand rule).
    EXPECT_EQ(table.complementary(d), emb.rotation.next_at_node(d));
    // Both must leave the correct node.
    EXPECT_EQ(g.dart_tail(table.cycle_following(d)), g.dart_head(d));
    EXPECT_EQ(g.dart_tail(table.complementary(d)), g.dart_tail(d));
  }
}

TEST(CycleFollowingTable, RowsCoverEveryInterfaceOnce) {
  const auto g = topo::abilene();
  const auto emb = embed::embed(g);
  const CycleFollowingTable table(emb.rotation);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    const auto rows = table.rows_for(v);
    ASSERT_EQ(rows.size(), g.degree(v));
    for (const auto& row : rows) {
      EXPECT_EQ(g.dart_head(row.incoming), v);
      EXPECT_EQ(g.dart_tail(row.cycle_following), v);
      EXPECT_EQ(g.dart_tail(row.complementary), v);
    }
  }
}

TEST(CycleFollowingTable, CycleFollowingIsAPermutationOfInterfaces) {
  // The paper: "the forwarding table is a permutation over the output
  // interfaces".  At every node, distinct incoming interfaces map to
  // distinct outgoing ones.
  const auto g = topo::geant();
  const auto emb = embed::embed(g);
  const CycleFollowingTable table(emb.rotation);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    std::vector<DartId> outs;
    for (const auto& row : table.rows_for(v)) outs.push_back(row.cycle_following);
    std::sort(outs.begin(), outs.end());
    EXPECT_EQ(std::adjacent_find(outs.begin(), outs.end()), outs.end())
        << "duplicate cycle-following interface at node " << v;
  }
}

TEST(CycleFollowingTable, MemoryIsTwoWordsPerInterface) {
  const auto g = topo::abilene();
  const auto emb = embed::embed(g);
  const CycleFollowingTable table(emb.rotation);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    EXPECT_EQ(table.memory_bytes_per_router(v), g.degree(v) * 2 * sizeof(DartId));
  }
}

TEST(CycleFollowingTable, MismatchedGraphsRejected) {
  const auto g1 = graph::ring(4);
  const auto g2 = graph::ring(4);
  const auto emb1 = embed::embed(g1);
  const route::RoutingDb routes2(g2);
  const CycleFollowingTable cycles1(emb1.rotation);
  EXPECT_THROW(PacketRecycling(routes2, cycles1), std::invalid_argument);
}

class PrOnRing : public ::testing::Test {
 protected:
  PrOnRing()
      : g_(graph::ring(6)),
        emb_(embed::embed(g_)),
        routes_(g_),
        cycles_(emb_.rotation),
        pr_(routes_, cycles_) {}

  graph::Graph g_;
  embed::Embedding emb_;
  route::RoutingDb routes_;
  CycleFollowingTable cycles_;
  PacketRecycling pr_;
};

TEST_F(PrOnRing, NoFailureMeansShortestPath) {
  net::Network network(g_);
  for (NodeId s = 0; s < g_.node_count(); ++s) {
    for (NodeId t = 0; t < g_.node_count(); ++t) {
      const auto trace = net::route_packet(network, pr_, s, t);
      ASSERT_TRUE(trace.delivered());
      EXPECT_DOUBLE_EQ(trace.cost, routes_.cost(s, t));
      EXPECT_FALSE(trace.final_packet.pr_bit);
      EXPECT_TRUE(trace.final_packet.fcp_failures.empty());
    }
  }
}

TEST_F(PrOnRing, SingleFailureForcesTheLongWay) {
  net::Network network(g_);
  network.fail_link(*g_.find_edge(0, 1));
  const auto trace = net::route_packet(network, pr_, 0, 1);
  ASSERT_TRUE(trace.delivered());
  EXPECT_EQ(trace.hops, 5U);  // the ring's only detour
}

TEST_F(PrOnRing, PacketHeaderStateIsClearedOnExit) {
  net::Network network(g_);
  network.fail_link(*g_.find_edge(0, 1));
  const auto trace = net::route_packet(network, pr_, 0, 1);
  ASSERT_TRUE(trace.delivered());
  // On a ring the packet stays in cycle-following mode until the far side of
  // the failed link, which is the destination itself.
  EXPECT_LE(trace.final_packet.dd, graph::hop_diameter(g_));
}

TEST_F(PrOnRing, DisconnectedDestinationExpiresTtl) {
  net::Network network(g_);
  network.fail_link(*g_.find_edge(0, 1));
  network.fail_link(*g_.find_edge(3, 4));
  const auto trace = net::route_packet(network, pr_, 0, 2);
  // 0 and 2 are on opposite sides of the cut; PR guarantees nothing here and
  // loops until the walker's TTL fires.
  EXPECT_FALSE(trace.delivered());
  EXPECT_EQ(trace.drop_reason, net::DropReason::kTtlExpired);
}

TEST(PrProtocol, IsolatedSourceDropsCleanly) {
  const auto g = graph::ring(4);
  const auto emb = embed::embed(g);
  const route::RoutingDb routes(g);
  const CycleFollowingTable cycles(emb.rotation);
  PacketRecycling pr(routes, cycles);
  net::Network network(g);
  network.fail_node(0);  // both of node 0's links go down
  const auto trace = net::route_packet(network, pr, 0, 2);
  EXPECT_FALSE(trace.delivered());
  EXPECT_EQ(trace.drop_reason, net::DropReason::kNoRoute);
}

TEST(PrProtocol, NodeFailureRoutedAround) {
  // Node failure = all incident links down (Section 4 model).  K4 minus a
  // node keeps the rest connected.
  const auto g = graph::complete(4);
  const auto emb = embed::embed(g);
  const route::RoutingDb routes(g);
  const CycleFollowingTable cycles(emb.rotation);
  PacketRecycling pr(routes, cycles);
  net::Network network(g);
  network.fail_node(1);
  for (NodeId s : {0U, 2U, 3U}) {
    for (NodeId t : {0U, 2U, 3U}) {
      const auto trace = net::route_packet(network, pr, s, t);
      EXPECT_TRUE(trace.delivered()) << s << "->" << t;
    }
  }
}

TEST(PrProtocol, NameReflectsVariant) {
  const auto g = graph::ring(4);
  const auto emb = embed::embed(g);
  const route::RoutingDb routes(g);
  const CycleFollowingTable cycles(emb.rotation);
  EXPECT_EQ(PacketRecycling(routes, cycles, PrVariant::kSingleBit).name(), "pr-1bit");
  EXPECT_EQ(PacketRecycling(routes, cycles, PrVariant::kDistanceDiscriminator).name(),
            "pr");
}

TEST(PrProtocol, WeightedDiscriminatorVariantDelivers) {
  // Ablation A4: DD = weighted cost instead of hops.
  const auto g = topo::figure1();
  const auto rot = topo::figure1_rotation(g);
  const route::RoutingDb routes(g, nullptr, route::DiscriminatorKind::kWeightedCost);
  const CycleFollowingTable cycles(rot);
  PacketRecycling pr(routes, cycles);
  net::Network network(g);
  network.fail_link(*g.find_edge(*g.find_node("D"), *g.find_node("E")));
  network.fail_link(*g.find_edge(*g.find_node("B"), *g.find_node("C")));
  const auto trace = net::route_packet(network, pr, *g.find_node("A"), *g.find_node("F"));
  EXPECT_TRUE(trace.delivered());
}

}  // namespace
}  // namespace pr::core
