// Unit tests for the comparison protocols: StaticSpf, Reconvergence, FCP, LFA.
#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "net/failure_model.hpp"
#include "route/fcp.hpp"
#include "route/lfa.hpp"
#include "route/reconvergence.hpp"
#include "route/static_spf.hpp"
#include "topo/topologies.hpp"

namespace pr::route {
namespace {

using graph::NodeId;

TEST(StaticSpf, DeliversOnHealthyNetwork) {
  const auto g = topo::abilene();
  const RoutingDb db(g);
  StaticSpf spf(db);
  net::Network network(g);
  for (NodeId s = 0; s < g.node_count(); ++s) {
    for (NodeId t = 0; t < g.node_count(); ++t) {
      const auto trace = net::route_packet(network, spf, s, t);
      EXPECT_TRUE(trace.delivered());
      EXPECT_DOUBLE_EQ(trace.cost, db.cost(s, t));
    }
  }
}

TEST(StaticSpf, DropsAtFailure) {
  const auto g = graph::ring(4);
  const RoutingDb db(g);
  StaticSpf spf(db);
  net::Network network(g);
  network.fail_link(*g.find_edge(0, 1));
  const auto trace = net::route_packet(network, spf, 0, 1);
  EXPECT_FALSE(trace.delivered());
  EXPECT_EQ(trace.drop_reason, net::DropReason::kNoRoute);
}

TEST(Reconverged, FindsOptimalDetour) {
  const auto g = graph::ring(5);
  net::Network network(g);
  network.fail_link(*g.find_edge(0, 1));
  ReconvergedRouting proto(network);
  const auto trace = net::route_packet(network, proto, 0, 1);
  ASSERT_TRUE(trace.delivered());
  EXPECT_EQ(trace.hops, 4U);  // the only remaining path, which is optimal
}

TEST(Reconverged, DropsWhenPartitioned) {
  const auto g = graph::ring(4);  // 0-1-2-3-0
  net::Network network(g);
  network.fail_link(*g.find_edge(0, 1));
  network.fail_link(*g.find_edge(2, 3));
  ReconvergedRouting proto(network);
  // The two cuts leave components {0,3} and {1,2}.
  const auto across = net::route_packet(network, proto, 0, 2);
  EXPECT_FALSE(across.delivered());
  const auto within = net::route_packet(network, proto, 0, 3);
  EXPECT_TRUE(within.delivered());
}

TEST(Reconverged, StretchIsMinimalAmongDeliveries) {
  // Against every single failure on Abilene, the reconverged path cost must
  // equal the true post-failure shortest-path cost.
  const auto g = topo::abilene();
  for (const auto& failures : net::all_single_failures(g)) {
    net::Network network(g);
    for (auto e : failures.elements()) network.fail_link(e);
    ReconvergedRouting proto(network);
    const RoutingDb truth(g, &failures);
    for (NodeId s = 0; s < g.node_count(); ++s) {
      for (NodeId t = 0; t < g.node_count(); ++t) {
        if (s == t || !truth.reachable(s, t)) continue;
        const auto trace = net::route_packet(network, proto, s, t);
        ASSERT_TRUE(trace.delivered());
        EXPECT_DOUBLE_EQ(trace.cost, truth.cost(s, t));
      }
    }
  }
}

TEST(TimedReconvergence, FlipsBehaviourAtConvergence) {
  const auto g = graph::ring(5);
  const RoutingDb before(g);
  net::Network network(g);
  network.fail_link(*g.find_edge(0, 1));
  TimedReconvergence proto(network, before);

  EXPECT_FALSE(proto.converged());
  const auto pre = net::route_packet(network, proto, 0, 1);
  EXPECT_FALSE(pre.delivered());
  EXPECT_EQ(pre.drop_reason, net::DropReason::kPolicy);

  proto.complete_convergence();
  EXPECT_TRUE(proto.converged());
  const auto post = net::route_packet(network, proto, 0, 1);
  ASSERT_TRUE(post.delivered());
  EXPECT_EQ(post.hops, 4U);
}

TEST(Fcp, DeliversAroundSingleFailure) {
  const auto g = graph::ring(5);
  FcpRouting fcp(g);
  net::Network network(g);
  network.fail_link(*g.find_edge(0, 1));
  const auto trace = net::route_packet(network, fcp, 0, 1);
  ASSERT_TRUE(trace.delivered());
  EXPECT_EQ(trace.hops, 4U);
  // The packet learned exactly the one failure it met.
  ASSERT_EQ(trace.final_packet.fcp_failures.size(), 1U);
  EXPECT_EQ(trace.final_packet.fcp_failures[0], *g.find_edge(0, 1));
}

TEST(Fcp, DeliversUnderAnyConnectedMultiFailure) {
  graph::Rng rng(33);
  const auto g = graph::random_two_edge_connected(10, 6, rng);
  const auto scenarios = net::sample_connected_failures(g, 4, 30, rng);
  FcpRouting fcp(g);
  for (const auto& failures : scenarios) {
    net::Network network(g);
    for (auto e : failures.elements()) network.fail_link(e);
    for (NodeId s = 0; s < g.node_count(); ++s) {
      for (NodeId t = 0; t < g.node_count(); ++t) {
        if (s == t) continue;
        const auto trace = net::route_packet(network, fcp, s, t);
        EXPECT_TRUE(trace.delivered()) << "s=" << s << " t=" << t;
      }
    }
  }
}

TEST(Fcp, DropsWhenDestinationUnreachable) {
  const auto g = graph::ring(4);
  FcpRouting fcp(g);
  net::Network network(g);
  network.fail_link(*g.find_edge(0, 1));
  network.fail_link(*g.find_edge(1, 2));
  const auto trace = net::route_packet(network, fcp, 3, 1);
  EXPECT_FALSE(trace.delivered());
  EXPECT_EQ(trace.drop_reason, net::DropReason::kNoRoute);
}

TEST(Fcp, MemoisesSpfComputations) {
  const auto g = topo::abilene();
  FcpRouting fcp(g);
  net::Network network(g);
  network.fail_link(0);
  (void)net::route_packet(network, fcp, 1, 5);
  const auto first_round = fcp.spf_computations();
  (void)net::route_packet(network, fcp, 1, 5);  // same flow: all cache hits
  EXPECT_EQ(fcp.spf_computations(), first_round);
  EXPECT_GT(fcp.cached_tables(), 0U);
  // At the default capacity no bundled sweep ever evicts.
  EXPECT_EQ(fcp.evictions(), 0U);
  EXPECT_EQ(fcp.cache_capacity(), route::kDefaultFcpCacheCapacity);
}

TEST(Fcp, CacheCapacityValidation) {
  const auto g = graph::ring(4);
  EXPECT_THROW(FcpRouting(g, 0), std::invalid_argument);
}

TEST(Fcp, LruBoundCapsCacheAndCountsEvictions) {
  // All-pairs over many failure scenarios generates far more distinct
  // (failure list, destination) keys than a 4-entry cache holds: the bound
  // must cap cached_tables(), count the evictions, and keep every routing
  // outcome identical to the effectively-unbounded default.
  graph::Rng rng(91);
  const auto g = graph::random_two_edge_connected(9, 5, rng);
  const auto scenarios = net::sample_connected_failures(g, 2, 12, rng);

  FcpRouting unbounded(g);
  FcpRouting bounded(g, 4);
  for (const auto& failures : scenarios) {
    net::Network network(g);
    for (auto e : failures.elements()) network.fail_link(e);
    for (NodeId s = 0; s < g.node_count(); ++s) {
      for (NodeId t = 0; t < g.node_count(); ++t) {
        if (s == t) continue;
        const auto reference = net::route_packet(network, unbounded, s, t);
        const auto capped = net::route_packet(network, bounded, s, t);
        EXPECT_EQ(capped.delivered(), reference.delivered()) << "s=" << s << " t=" << t;
        EXPECT_EQ(capped.hops, reference.hops) << "s=" << s << " t=" << t;
        EXPECT_EQ(capped.cost, reference.cost) << "s=" << s << " t=" << t;
      }
    }
    EXPECT_LE(bounded.cached_tables(), 4U);
  }
  EXPECT_GT(bounded.evictions(), 0U);
  // Evictions force recomputation: strictly more SPF runs than unbounded.
  EXPECT_GT(bounded.spf_computations(), unbounded.spf_computations());
  EXPECT_EQ(unbounded.evictions(), 0U);
}

TEST(Fcp, LruKeepsHotEntryAtCapacityOne) {
  // Capacity 1 is the degenerate corner: the just-computed tree must survive
  // long enough to forward with, and repeated identical flows stay hits.
  const auto g = graph::ring(5);
  FcpRouting fcp(g, 1);
  net::Network network(g);
  network.fail_link(*g.find_edge(0, 1));
  const auto first = net::route_packet(network, fcp, 0, 1);
  ASSERT_TRUE(first.delivered());
  const auto spf_after_first = fcp.spf_computations();
  const auto again = net::route_packet(network, fcp, 0, 1);
  ASSERT_TRUE(again.delivered());
  EXPECT_EQ(again.hops, first.hops);
  EXPECT_LE(fcp.cached_tables(), 1U);
  // The flow alternates between the empty-list and learned-failure keys, so a
  // 1-entry cache thrashes: the repeat pays the same computations again.
  // Correctness is unchanged; only the computation count degrades.
  EXPECT_EQ(fcp.spf_computations(), 2 * spf_after_first);
  EXPECT_GT(fcp.evictions(), 0U);
}

TEST(Lfa, CoverageIsPartialOnAbilene) {
  const auto g = topo::abilene();
  const RoutingDb db(g);
  LfaRouting lfa(db);
  const double cov = lfa.alternate_coverage();
  // Classic result: sparse backbones have real but incomplete LFA coverage.
  EXPECT_GT(cov, 0.2);
  EXPECT_LT(cov, 1.0);
}

TEST(Lfa, UsesAlternateWhenPrimaryFails) {
  // Triangle: every node has an LFA for every destination.
  const auto g = graph::complete(3);
  const RoutingDb db(g);
  LfaRouting lfa(db);
  EXPECT_DOUBLE_EQ(lfa.alternate_coverage(), 1.0);
  net::Network network(g);
  network.fail_link(*g.find_edge(0, 1));
  const auto trace = net::route_packet(network, lfa, 0, 1);
  ASSERT_TRUE(trace.delivered());
  EXPECT_EQ(trace.hops, 2U);  // 0 -> 2 -> 1
}

TEST(Lfa, DropsWhenNoAlternateExists) {
  // Square ring, adjacent destination: the detour via the far side is never
  // strictly loop-free (dist(3,1) = 2 = dist(3,0) + dist(0,1)), so the pair
  // (0,1) is unprotected and its packet is lost.
  const auto g = graph::ring(4);
  const RoutingDb db(g);
  LfaRouting lfa(db);
  EXPECT_EQ(lfa.alternate(0, 1), graph::kInvalidDart);
  net::Network network(g);
  network.fail_link(*g.find_edge(0, 1));
  const auto trace = net::route_packet(network, lfa, 0, 1);
  EXPECT_FALSE(trace.delivered());
  // Coverage is partial, not zero: antipodal pairs do have alternates.
  EXPECT_GT(lfa.alternate_coverage(), 0.0);
  EXPECT_LT(lfa.alternate_coverage(), 1.0);
}

TEST(Lfa, AlternateNeverLoops) {
  // Property: after one LFA deflection, plain SPF from the alternate must
  // reach the destination without meeting the failed link again.
  const auto g = topo::abilene();
  const RoutingDb db(g);
  LfaRouting lfa(db);
  for (const auto& failures : net::all_single_failures(g)) {
    net::Network network(g);
    for (auto e : failures.elements()) network.fail_link(e);
    for (NodeId s = 0; s < g.node_count(); ++s) {
      for (NodeId t = 0; t < g.node_count(); ++t) {
        if (s == t) continue;
        const auto trace = net::route_packet(network, lfa, s, t);
        if (trace.delivered()) {
          EXPECT_LE(trace.hops, g.node_count()) << "LFA path visited a node twice";
        } else {
          EXPECT_EQ(trace.drop_reason, net::DropReason::kNoRoute);
        }
      }
    }
  }
}

}  // namespace
}  // namespace pr::route
