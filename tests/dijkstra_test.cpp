// Unit tests for reverse shortest-path trees.
#include "graph/dijkstra.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"

namespace pr::graph {
namespace {

Graph line_graph(std::size_t n) {
  Graph g(n);
  for (NodeId v = 0; v + 1 < n; ++v) g.add_edge(v, v + 1);
  return g;
}

TEST(Dijkstra, LineGraphDistances) {
  const Graph g = line_graph(5);
  const auto spt = shortest_paths_to(g, 4);
  for (NodeId v = 0; v < 5; ++v) {
    EXPECT_DOUBLE_EQ(spt.dist[v], 4.0 - v);
    EXPECT_EQ(spt.hops[v], 4U - v);
  }
  EXPECT_EQ(spt.next_dart[4], kInvalidDart);
}

TEST(Dijkstra, NextDartPointsTowardDestination) {
  const Graph g = line_graph(4);
  const auto spt = shortest_paths_to(g, 3);
  for (NodeId v = 0; v < 3; ++v) {
    const DartId d = spt.next_dart[v];
    ASSERT_NE(d, kInvalidDart);
    EXPECT_EQ(g.dart_tail(d), v);
    EXPECT_EQ(g.dart_head(d), v + 1);
  }
}

TEST(Dijkstra, WeightedShorterPathWins) {
  // 0 -1- 1 -1- 2  versus direct 0 -5- 2 : two-hop route is cheaper.
  Graph g(3);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(0, 2, 5.0);
  const auto spt = shortest_paths_to(g, 2);
  EXPECT_DOUBLE_EQ(spt.dist[0], 2.0);
  EXPECT_EQ(spt.hops[0], 2U);
  EXPECT_EQ(g.dart_head(spt.next_dart[0]), 1U);
}

TEST(Dijkstra, TieBrokenTowardFewerHops) {
  // Both routes cost 2, but the direct edge has fewer hops.
  Graph g(3);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(0, 2, 2.0);
  const auto spt = shortest_paths_to(g, 2);
  EXPECT_DOUBLE_EQ(spt.dist[0], 2.0);
  EXPECT_EQ(spt.hops[0], 1U);
  EXPECT_EQ(g.dart_head(spt.next_dart[0]), 2U);
}

TEST(Dijkstra, ExcludedEdgesAreAvoided) {
  Graph g = ring(4);  // 0-1-2-3-0
  EdgeSet down(g.edge_count());
  down.insert(*g.find_edge(0, 3));
  const auto spt = shortest_paths_to(g, 3, &down);
  EXPECT_DOUBLE_EQ(spt.dist[0], 3.0);  // forced the long way round
  EXPECT_EQ(g.dart_head(spt.next_dart[0]), 1U);
}

TEST(Dijkstra, UnreachableMarked) {
  Graph g(3);
  g.add_edge(0, 1);
  const auto spt = shortest_paths_to(g, 0);
  EXPECT_TRUE(spt.reachable(1));
  EXPECT_FALSE(spt.reachable(2));
  EXPECT_EQ(spt.next_dart[2], kInvalidDart);
}

TEST(Dijkstra, DestinationOutOfRangeThrows) {
  const Graph g = ring(3);
  EXPECT_THROW(shortest_paths_to(g, 99), std::out_of_range);
}

TEST(Dijkstra, ParallelEdgesUseCheapest) {
  Graph g(2);
  g.add_edge(0, 1, 5.0);
  const EdgeId cheap = g.add_edge(0, 1, 1.0);
  const auto spt = shortest_paths_to(g, 1);
  EXPECT_DOUBLE_EQ(spt.dist[0], 1.0);
  EXPECT_EQ(dart_edge(spt.next_dart[0]), cheap);
}

TEST(ExtractPath, EndToEnd) {
  const Graph g = line_graph(4);
  const auto spt = shortest_paths_to(g, 3);
  const auto path = extract_path(g, spt, 0);
  ASSERT_EQ(path.size(), 4U);
  for (NodeId v = 0; v < 4; ++v) EXPECT_EQ(path[v], v);
}

TEST(ExtractPath, SourceEqualsDestination) {
  const Graph g = ring(3);
  const auto spt = shortest_paths_to(g, 1);
  const auto path = extract_path(g, spt, 1);
  ASSERT_EQ(path.size(), 1U);
  EXPECT_EQ(path[0], 1U);
}

TEST(ExtractPath, UnreachableGivesEmpty) {
  Graph g(3);
  g.add_edge(0, 1);
  const auto spt = shortest_paths_to(g, 0);
  EXPECT_TRUE(extract_path(g, spt, 2).empty());
}

TEST(PathCost, SumsWeights) {
  Graph g(3);
  g.add_edge(0, 1, 1.5);
  g.add_edge(1, 2, 2.0);
  EXPECT_DOUBLE_EQ(path_cost(g, {0, 1, 2}), 3.5);
  EXPECT_DOUBLE_EQ(path_cost(g, {0}), 0.0);
  EXPECT_THROW((void)path_cost(g, {0, 2}), std::invalid_argument);
}

TEST(AllTrees, OneTreePerDestination) {
  const Graph g = ring(5);
  for (NodeId t = 0; t < 5; ++t) {
    const auto tree = shortest_paths_to(g, t);
    EXPECT_EQ(tree.destination, t);
    EXPECT_DOUBLE_EQ(tree.dist[t], 0.0);
  }
}

TEST(Diameter, RingAndGrid) {
  EXPECT_DOUBLE_EQ(weighted_diameter(ring(6)), 3.0);
  EXPECT_EQ(hop_diameter(ring(6)), 3U);
  EXPECT_EQ(hop_diameter(grid(3, 3)), 4U);
}

TEST(Diameter, HopDiameterIgnoresWeights) {
  Graph g = ring(6);
  for (EdgeId e = 0; e < g.edge_count(); ++e) g.set_edge_weight(e, 10.0);
  EXPECT_EQ(hop_diameter(g), 3U);
  EXPECT_DOUBLE_EQ(weighted_diameter(g), 30.0);
}

}  // namespace
}  // namespace pr::graph
