// Unit tests for edge-list parsing and serialisation.
#include "graph/graphio.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"

namespace pr::graph {
namespace {

TEST(FromEdgeList, ExplicitNodesAndEdges) {
  const Graph g = from_edge_list(
      "# comment line\n"
      "node A\n"
      "node B\n"
      "edge A B 2.5\n");
  EXPECT_EQ(g.node_count(), 2U);
  ASSERT_EQ(g.edge_count(), 1U);
  EXPECT_DOUBLE_EQ(g.edge_weight(0), 2.5);
  EXPECT_EQ(g.node_label(0), "A");
}

TEST(FromEdgeList, ImplicitNodes) {
  const Graph g = from_edge_list("edge X Y\nedge Y Z\n");
  EXPECT_EQ(g.node_count(), 3U);
  EXPECT_EQ(g.edge_count(), 2U);
  EXPECT_TRUE(g.find_node("Z").has_value());
}

TEST(FromEdgeList, DefaultWeightIsOne) {
  const Graph g = from_edge_list("edge A B\n");
  EXPECT_DOUBLE_EQ(g.edge_weight(0), 1.0);
}

TEST(FromEdgeList, TrailingCommentsAndBlankLines) {
  const Graph g = from_edge_list("\n  \nedge A B # inline comment\n\n");
  EXPECT_EQ(g.edge_count(), 1U);
}

TEST(FromEdgeList, Errors) {
  EXPECT_THROW((void)from_edge_list("frobnicate A B\n"), std::invalid_argument);
  EXPECT_THROW((void)from_edge_list("node\n"), std::invalid_argument);
  EXPECT_THROW((void)from_edge_list("node A\nnode A\n"), std::invalid_argument);
  EXPECT_THROW((void)from_edge_list("edge A B notaweight\n"), std::invalid_argument);
  EXPECT_THROW((void)from_edge_list("edge A A\n"), std::invalid_argument);  // self loop
  EXPECT_THROW((void)from_edge_list("edge A B 0\n"), std::invalid_argument);
}

TEST(RoundTrip, PreservesStructure) {
  Rng rng(7);
  const Graph original = random_two_edge_connected(9, 4, rng);
  const Graph copy = from_edge_list(to_edge_list(original));
  ASSERT_EQ(copy.node_count(), original.node_count());
  ASSERT_EQ(copy.edge_count(), original.edge_count());
  for (EdgeId e = 0; e < original.edge_count(); ++e) {
    EXPECT_DOUBLE_EQ(copy.edge_weight(e), original.edge_weight(e));
  }
}

TEST(RoundTrip, PreservesLabelsAndWeights) {
  Graph g;
  g.add_node("seattle");
  g.add_node("denver");
  g.add_edge(0, 1, 3.25);
  const Graph copy = from_edge_list(to_edge_list(g));
  EXPECT_EQ(copy.node_label(0), "seattle");
  EXPECT_DOUBLE_EQ(copy.edge_weight(0), 3.25);
}

}  // namespace
}  // namespace pr::graph
