// Tests for the analysis layer: CCDF, affectedness, the stretch experiment
// runner, coverage classification, and the Figure-2 shape on Abilene.
#include <gtest/gtest.h>

#include "analysis/coverage.hpp"
#include "analysis/protocols.hpp"
#include "analysis/report.hpp"
#include "analysis/stretch.hpp"
#include "graph/generators.hpp"
#include "net/failure_model.hpp"
#include "topo/topologies.hpp"

namespace pr::analysis {
namespace {

using graph::NodeId;

TEST(Ccdf, BasicPoints) {
  const std::vector<double> samples = {1.0, 1.0, 2.0, 3.0};
  const std::vector<double> xs = {0.5, 1.0, 2.0, 3.0, 4.0};
  const auto probs = ccdf(samples, xs);
  ASSERT_EQ(probs.size(), 5U);
  EXPECT_DOUBLE_EQ(probs[0], 1.0);    // all samples > 0.5
  EXPECT_DOUBLE_EQ(probs[1], 0.5);    // 2 of 4 strictly exceed 1
  EXPECT_DOUBLE_EQ(probs[2], 0.25);
  EXPECT_DOUBLE_EQ(probs[3], 0.0);
  EXPECT_DOUBLE_EQ(probs[4], 0.0);
}

TEST(Ccdf, EmptySamplesGiveZeros) {
  const std::vector<double> xs = {1.0, 2.0};
  const auto probs = ccdf({}, xs);
  EXPECT_DOUBLE_EQ(probs[0], 0.0);
  EXPECT_DOUBLE_EQ(probs[1], 0.0);
}

TEST(Ccdf, InfinityCountsAtEveryPoint) {
  const std::vector<double> samples = {1.0, std::numeric_limits<double>::infinity()};
  const auto probs = ccdf(samples, std::vector<double>{10.0, 1000.0});
  EXPECT_DOUBLE_EQ(probs[0], 0.5);
  EXPECT_DOUBLE_EQ(probs[1], 0.5);
}

TEST(Ccdf, MonotoneNonIncreasing) {
  const std::vector<double> samples = {1.1, 1.7, 2.0, 2.4, 9.0};
  const auto xs = paper_stretch_axis();
  const auto probs = ccdf(samples, xs);
  for (std::size_t i = 1; i < probs.size(); ++i) EXPECT_LE(probs[i], probs[i - 1]);
}

TEST(PathAffected, DetectsFailuresOnShortestPath) {
  const auto g = topo::abilene();
  const route::RoutingDb routes(g);
  const auto n = [&g](const char* l) { return *g.find_node(l); };
  graph::EdgeSet failures(g.edge_count());
  failures.insert(*g.find_edge(n("Denver"), n("KansasCity")));
  EXPECT_TRUE(path_affected(routes, n("Seattle"), n("KansasCity"), failures));
  EXPECT_FALSE(path_affected(routes, n("Atlanta"), n("Washington"), failures));
  EXPECT_FALSE(path_affected(routes, n("Seattle"), n("Seattle"), failures));
}

TEST(ProtocolSuite, FactoriesProduceWorkingProtocols) {
  const auto g = topo::abilene();
  const ProtocolSuite suite(g);
  net::Network network(g);
  for (const auto& factory :
       {suite.reconvergence(), suite.fcp(), suite.pr(), suite.pr_single_bit(),
        suite.lfa(), suite.spf()}) {
    const auto proto = factory.make(network);
    const auto trace = net::route_packet(network, *proto, 0, 5);
    EXPECT_TRUE(trace.delivered()) << factory.name;
  }
}

TEST(ProtocolSuite, PaperTrioOrder) {
  const auto g = topo::abilene();
  const ProtocolSuite suite(g);
  const auto trio = suite.paper_trio();
  ASSERT_EQ(trio.size(), 3U);
  EXPECT_EQ(trio[0].name, "Re-convergence");
  EXPECT_EQ(trio[1].name, "Failure-Carrying Packets");
  EXPECT_EQ(trio[2].name, "Packet Re-cycling");
}

TEST(StretchExperiment, AbileneSingleFailuresFigure2aShape) {
  // The qualitative content of Figure 2(a): under single failures all three
  // schemes deliver everything; reconvergence has the least stretch, FCP sits
  // between, PR pays the most.
  const auto g = topo::abilene();
  const ProtocolSuite suite(g);
  const auto scenarios = net::all_single_failures(g);
  const auto result = run_stretch_experiment(g, scenarios, suite.paper_trio());

  ASSERT_EQ(result.protocols.size(), 3U);
  const auto& reconv = result.protocols[0];
  const auto& fcp = result.protocols[1];
  const auto& pr = result.protocols[2];

  EXPECT_GT(result.affected_pairs, 0U);
  EXPECT_EQ(reconv.dropped, 0U);
  EXPECT_EQ(fcp.dropped, 0U);
  EXPECT_EQ(pr.dropped, 0U);

  EXPECT_LE(reconv.mean_finite_stretch(), fcp.mean_finite_stretch() + 1e-12);
  EXPECT_LE(fcp.mean_finite_stretch(), pr.mean_finite_stretch() + 1e-12);
  EXPECT_GE(reconv.mean_finite_stretch(), 1.0);

  // Every protocol's stretch is >= 1 by definition.
  for (const auto& p : result.protocols) {
    for (double s : p.stretches) EXPECT_GE(s, 1.0 - 1e-12);
  }
}

TEST(StretchExperiment, ReconvergenceCcdfDominatedByPr) {
  // Pointwise on the Figure-2 axis, P(stretch > x) for reconvergence can
  // never exceed PR's (reconvergence is optimal per pair).
  const auto g = topo::abilene();
  const ProtocolSuite suite(g);
  const auto scenarios = net::all_single_failures(g);
  const auto result = run_stretch_experiment(g, scenarios, suite.paper_trio());
  const auto xs = paper_stretch_axis();
  const auto reconv = ccdf(result.protocols[0].stretches, xs);
  const auto pr = ccdf(result.protocols[2].stretches, xs);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    EXPECT_LE(reconv[i], pr[i] + 1e-12) << "x=" << xs[i];
  }
}

TEST(StretchExperiment, RequiresProtocols) {
  const auto g = topo::abilene();
  const auto scenarios = net::all_single_failures(g);
  EXPECT_THROW((void)run_stretch_experiment(g, scenarios, {}), std::invalid_argument);
}

TEST(Coverage, ClassifiesPartitionsCorrectly) {
  // Two scenarios on a 4-ring: a recoverable single failure (SPF drops what
  // PR saves) and a partitioning double failure (nobody can deliver across).
  const auto g = graph::ring(4);
  const ProtocolSuite suite(g);
  std::vector<graph::EdgeSet> scenarios;
  {
    graph::EdgeSet single(g.edge_count());
    single.insert(*g.find_edge(0, 1));
    scenarios.push_back(std::move(single));
  }
  {
    graph::EdgeSet cut(g.edge_count());
    cut.insert(*g.find_edge(0, 1));
    cut.insert(*g.find_edge(2, 3));
    scenarios.push_back(std::move(cut));
  }

  const auto result = run_coverage_experiment(g, scenarios, {suite.pr(), suite.spf()});
  const auto& pr = result.protocols[0];
  const auto& spf = result.protocols[1];
  EXPECT_EQ(pr.dropped_reachable, 0U);
  EXPECT_GT(pr.dropped_partitioned, 0U);
  EXPECT_DOUBLE_EQ(pr.coverage(), 1.0);
  EXPECT_LT(spf.coverage(), 1.0);  // plain SPF drops recoverable packets
  EXPECT_EQ(pr.dropped_partitioned, spf.dropped_partitioned);
}

TEST(Coverage, PrDdHasFullCoverageOnAbileneDoubleFailures) {
  const auto g = topo::abilene();
  const ProtocolSuite suite(g);
  graph::Rng rng(5);
  const auto scenarios = net::sample_any_failures(g, 2, 40, rng);
  const auto result = run_coverage_experiment(
      g, scenarios, {suite.pr(), suite.pr_single_bit(), suite.lfa()});
  EXPECT_EQ(result.protocols[0].dropped_reachable, 0U);  // the paper's claim
  EXPECT_DOUBLE_EQ(result.protocols[0].coverage(), 1.0);
  // LFA cannot reach full coverage on a sparse backbone.
  EXPECT_LT(result.protocols[2].coverage(), 1.0);
}

TEST(Report, FormatsTables) {
  const auto xs = paper_stretch_axis();
  EXPECT_EQ(xs.size(), 15U);
  const auto table =
      format_ccdf_table(xs, {{"A", std::vector<double>(15, 0.5)},
                             {"B", std::vector<double>(15, 0.25)}});
  EXPECT_NE(table.find("stretch"), std::string::npos);
  EXPECT_NE(table.find("0.5000"), std::string::npos);
  EXPECT_NE(table.find("0.2500"), std::string::npos);
}

TEST(Report, StretchAndCoverageRendering) {
  const auto g = graph::ring(4);
  const ProtocolSuite suite(g);
  const auto scenarios = net::all_single_failures(g);
  const auto stretch = run_stretch_experiment(g, scenarios, {suite.pr()});
  const auto text = format_stretch_report(stretch, paper_stretch_axis());
  EXPECT_NE(text.find("Packet Re-cycling"), std::string::npos);
  EXPECT_NE(text.find("delivered="), std::string::npos);

  const auto coverage = run_coverage_experiment(g, scenarios, {suite.pr()});
  const auto cov_text = format_coverage_report(coverage);
  EXPECT_NE(cov_text.find("coverage"), std::string::npos);
}

}  // namespace
}  // namespace pr::analysis
