// Parity suite for the batched forwarding engine (sim/forwarding_engine.hpp).
//
// The engine is only allowed to be fast, not different: for every protocol,
// topology and failure set, route_batch must report bit-identical delivery
// status, drop reason, hop count, cost and (in full-trace mode) node sequence
// to the legacy synchronous walker, and the event simulator must agree with
// both because all three share the same hop core.
#include "sim/forwarding_engine.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "analysis/protocols.hpp"
#include "graph/generators.hpp"
#include "graph/rng.hpp"
#include "net/event_sim.hpp"
#include "net/failure_model.hpp"
#include "topo/topologies.hpp"

namespace pr {
namespace {

using sim::BatchResult;
using sim::FlowSpec;
using sim::TraceMode;

/// Every protocol the library ships, built over `suite`.
std::vector<analysis::NamedFactory> all_protocols(const analysis::ProtocolSuite& suite) {
  return {suite.spf(),          suite.reconvergence(), suite.fcp(),
          suite.lfa(),          suite.pr(),            suite.pr_single_bit()};
}

std::vector<FlowSpec> all_ordered_pairs(const graph::Graph& g) {
  return sim::all_pairs_flows(g);
}

/// Routes `flows` with the legacy walker and with route_batch (both trace
/// modes), asserting identical outcomes flow by flow.
void expect_parity(const net::Network& network, const analysis::NamedFactory& factory,
                   const std::vector<FlowSpec>& flows) {
  // Each side gets its own fresh instance and sees the flows in the same
  // order, so even stateful protocols (FCP's SPF cache) are comparable.
  const auto legacy_proto = factory.make(network);
  std::vector<net::PathTrace> legacy;
  legacy.reserve(flows.size());
  for (const auto& flow : flows) {
    legacy.push_back(
        net::route_packet(network, *legacy_proto, flow.source, flow.destination));
  }

  const auto stats_proto = factory.make(network);
  const BatchResult stats = sim::route_batch(network, *stats_proto, flows);
  const auto traced_proto = factory.make(network);
  const BatchResult traced =
      sim::route_batch(network, *traced_proto, flows, TraceMode::kFullTrace);

  ASSERT_EQ(stats.size(), flows.size());
  ASSERT_EQ(traced.size(), flows.size());
  std::size_t delivered = 0;
  for (std::size_t f = 0; f < flows.size(); ++f) {
    SCOPED_TRACE("protocol " + factory.name + ", flow " + std::to_string(f) + " (" +
                 std::to_string(flows[f].source) + " -> " +
                 std::to_string(flows[f].destination) + ")");
    for (const BatchResult* batch : {&stats, &traced}) {
      EXPECT_EQ((*batch)[f].status, legacy[f].status);
      EXPECT_EQ((*batch)[f].drop_reason, legacy[f].drop_reason);
      EXPECT_EQ((*batch)[f].hops, legacy[f].hops);
      EXPECT_DOUBLE_EQ((*batch)[f].cost, legacy[f].cost);
    }
    EXPECT_TRUE(stats.nodes(f).empty());  // stats mode records no sequences
    EXPECT_TRUE(stats.darts(f).empty());
    const auto nodes = traced.nodes(f);
    ASSERT_EQ(nodes.size(), legacy[f].nodes.size());
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      EXPECT_EQ(nodes[i], legacy[f].nodes[i]);
    }
    // The dart trace is the same walk seen as interfaces: one dart per hop,
    // each connecting the consecutive node pair.
    const auto darts = traced.darts(f);
    ASSERT_EQ(darts.size(), nodes.size() - 1);
    for (std::size_t i = 0; i < darts.size(); ++i) {
      EXPECT_EQ(network.graph().dart_tail(darts[i]), nodes[i]);
      EXPECT_EQ(network.graph().dart_head(darts[i]), nodes[i + 1]);
    }
    if (legacy[f].delivered()) ++delivered;
  }
  EXPECT_EQ(stats.delivered_count(), delivered);
  EXPECT_EQ(stats.dropped_count(), flows.size() - delivered);
  EXPECT_EQ(traced.delivered_count(), delivered);
}

TEST(RouteBatchParity, AbileneAllProtocolsAcrossFailureSets) {
  const graph::Graph g = topo::abilene();
  const analysis::ProtocolSuite suite(g);
  const auto flows = all_ordered_pairs(g);

  graph::Rng rng(0xBA7C4);
  for (std::size_t failures : {std::size_t{0}, std::size_t{1}, std::size_t{2}}) {
    net::Network network(g);
    for (std::size_t k = 0; k < failures; ++k) {
      network.fail_link(static_cast<graph::EdgeId>(rng.below(g.edge_count())));
    }
    for (const auto& factory : all_protocols(suite)) {
      expect_parity(network, factory, flows);
    }
  }
}

TEST(RouteBatchParity, RandomTopologiesWithArbitraryFailures) {
  graph::Rng rng(0x5EED);
  for (int round = 0; round < 4; ++round) {
    const auto n = static_cast<std::size_t>(8 + 2 * round);
    const graph::Graph g = graph::random_two_edge_connected(n, n / 2, rng);
    const analysis::ProtocolSuite suite(g);
    const auto flows = all_ordered_pairs(g);

    // Arbitrary failure sets -- possibly disconnecting, so drop parity
    // (status AND reason) is exercised, not just the happy path.
    net::Network network(g);
    const std::size_t failures = 1 + rng.below(3);
    for (std::size_t k = 0; k < failures; ++k) {
      network.fail_link(static_cast<graph::EdgeId>(rng.below(g.edge_count())));
    }
    for (const auto& factory : all_protocols(suite)) {
      expect_parity(network, factory, flows);
    }
  }
}

TEST(RouteBatchParity, EventSimulatorAgreesWithSharedCore) {
  // With static link state, a timed flight must land exactly where the
  // synchronous walk does: same status, hops, cost and node sequence.
  const graph::Graph g = topo::abilene();
  const analysis::ProtocolSuite suite(g);
  net::Network network(g);
  network.fail_link(0);
  network.fail_link(3);

  for (const auto& factory : all_protocols(suite)) {
    const auto sync_proto = factory.make(network);
    const auto timed_proto = factory.make(network);
    for (graph::NodeId s = 0; s < g.node_count(); ++s) {
      for (graph::NodeId t = 0; t < g.node_count(); ++t) {
        if (s == t) continue;
        const auto expected = net::route_packet(network, *sync_proto, s, t);
        net::Simulator sim_driver;
        bool completed = false;
        net::launch_packet(sim_driver, network, *timed_proto, s, t, /*start=*/0.0,
                           [&](const net::PathTrace& trace) {
                             completed = true;
                             EXPECT_EQ(trace.status, expected.status);
                             EXPECT_EQ(trace.drop_reason, expected.drop_reason);
                             EXPECT_EQ(trace.hops, expected.hops);
                             EXPECT_DOUBLE_EQ(trace.cost, expected.cost);
                             EXPECT_EQ(trace.nodes, expected.nodes);
                           });
        sim_driver.run();
        EXPECT_TRUE(completed) << factory.name << " " << s << "->" << t;
      }
    }
  }
}

TEST(RouteBatch, ReusedResultBufferIsEquivalent) {
  const graph::Graph g = topo::abilene();
  const analysis::ProtocolSuite suite(g);
  net::Network network(g);
  const auto flows = all_ordered_pairs(g);

  BatchResult reused;
  const auto first_proto = suite.pr().make(network);
  sim::route_batch(network, *first_proto, flows, TraceMode::kFullTrace, reused);
  const std::size_t first_delivered = reused.delivered_count();

  network.fail_link(2);
  const auto second_proto = suite.pr().make(network);
  sim::route_batch(network, *second_proto, flows, TraceMode::kStats, reused);
  EXPECT_EQ(reused.size(), flows.size());
  EXPECT_EQ(reused.mode(), TraceMode::kStats);
  EXPECT_TRUE(reused.nodes(0).empty());

  network.restore_link(2);
  const auto third_proto = suite.pr().make(network);
  sim::route_batch(network, *third_proto, flows, TraceMode::kStats, reused);
  EXPECT_EQ(reused.delivered_count(), first_delivered);
}

TEST(RouteBatch, RejectsOutOfRangeEndpoints) {
  const graph::Graph g = topo::abilene();
  const analysis::ProtocolSuite suite(g);
  const net::Network network(g);
  const auto proto = suite.spf().make(network);
  const std::vector<FlowSpec> flows{FlowSpec{0, static_cast<graph::NodeId>(999)}};
  EXPECT_THROW((void)sim::route_batch(network, *proto, flows), std::out_of_range);
}

TEST(TraceRendering, DroppedTracesNameTheReason) {
  graph::Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  const route::RoutingDb routes(g);
  route::StaticSpf spf(routes);
  net::Network network(g);
  network.fail_link(0);

  const auto trace = net::route_packet(network, spf, 0, 2);
  EXPECT_FALSE(trace.delivered());
  const auto text = net::trace_to_string(g, trace);
  EXPECT_NE(text.find("DROPPED"), std::string::npos);
  EXPECT_NE(text.find(net::drop_reason_name(trace.drop_reason)), std::string::npos);

  EXPECT_EQ(net::drop_reason_name(net::DropReason::kNoRoute), "no-route");
  EXPECT_EQ(net::drop_reason_name(net::DropReason::kTtlExpired), "ttl-expired");
  EXPECT_EQ(net::drop_reason_name(net::DropReason::kPolicy), "policy");
  EXPECT_EQ(net::drop_reason_name(net::DropReason::kCongestion), "congestion");
}

}  // namespace
}  // namespace pr
